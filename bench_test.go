package repro

// One benchmark per table and figure of the SoftMoW evaluation (§7), plus
// the §4.3 label-mechanism ablation. Each benchmark regenerates its
// artifact end-to-end at laptop scale (experiments.Small); run
// cmd/experiments -scale full for the paper-scale numbers recorded in
// EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/pathimpl"
)

// BenchmarkFig8HopCount regenerates Figure 8: end-to-end hop-count
// distributions for LTE vs 2/4/8-egress SoftMoW.
func BenchmarkFig8HopCount(b *testing.B) {
	p := experiments.Small()
	p.Prefixes = 80
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunRouting(p)
		if err != nil {
			b.Fatal(err)
		}
		if out.HopReductionPct <= 0 {
			b.Fatal("SoftMoW must reduce hop count vs LTE")
		}
	}
}

// BenchmarkFig9Latency regenerates Figure 9: the end-to-end RTT CDFs (the
// same driver produces Figs. 8 and 9; this benchmark validates the RTT
// side).
func BenchmarkFig9Latency(b *testing.B) {
	p := experiments.Small()
	p.Prefixes = 80
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunRouting(p)
		if err != nil {
			b.Fatal(err)
		}
		if out.RTT85ReductionPct <= 0 {
			b.Fatal("SoftMoW must reduce tail RTT vs LTE")
		}
		for _, r := range out.Results {
			if len(r.RTTCDF) == 0 {
				b.Fatal("missing RTT CDF")
			}
		}
	}
}

// BenchmarkFig10Discovery regenerates Figure 10: per-controller discovery
// convergence vs the flat LLDP baseline.
func BenchmarkFig10Discovery(b *testing.B) {
	ev, err := experiments.BuildEval(experiments.Small())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.RunDiscoveryConvergence(ev)
		for _, c := range out.PerController {
			if c.SoftMoW >= out.FlatTotal {
				b.Fatalf("%s did not beat flat discovery", c.Controller)
			}
		}
	}
}

// BenchmarkTable1Abstraction regenerates Table 1: per-controller
// discovered-vs-exposed statistics.
func BenchmarkTable1Abstraction(b *testing.B) {
	ev, err := experiments.BuildEval(experiments.Small())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.RunAbstractionStats(ev)
		if out.RootHiddenLinkPct <= 0 {
			b.Fatal("abstraction must hide links from the root")
		}
	}
}

// BenchmarkFig11Loads regenerates Figure 11: per-minute bearer/UE/handover
// load CDFs per leaf region over one diurnal day.
func BenchmarkFig11Loads(b *testing.B) {
	ev, err := experiments.BuildEval(experiments.Small())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.RunLoads(ev)
		if len(out.Series) == 0 {
			b.Fatal("no load series")
		}
	}
}

// BenchmarkFig12RegionOpt regenerates Figure 12: the 48-hour inter-region
// handover series with and without the greedy region optimization.
func BenchmarkFig12RegionOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunRegionOpt(experiments.Small(), 4)
		if err != nil {
			b.Fatal(err)
		}
		if out.ReductionPct <= 0 {
			b.Fatal("region optimization must reduce inter-region handovers")
		}
	}
}

// BenchmarkLabelSwapVsStack regenerates the §4.3 ablation: recursive label
// swapping (depth 1 always) vs label stacking (depth grows with hierarchy
// levels).
func BenchmarkLabelSwapVsStack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunLabelAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range out.Runs {
			if r.Mode == pathimpl.ModeSwap && r.MaxLabelDepth != 1 {
				b.Fatal("swap mode must keep packets at one label")
			}
			if r.Mode == pathimpl.ModeStack && r.MaxLabelDepth != r.Levels {
				b.Fatal("stack mode depth must equal hierarchy depth")
			}
		}
	}
}
