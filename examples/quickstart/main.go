// Quickstart: build a two-region SoftMoW deployment from scratch with the
// public packages, bootstrap the recursive control plane, admit one UE
// bearer, and watch a packet traverse the label-switched path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/reca"
)

func main() {
	// 1. Physical data plane: four switches in a line, a BS group's radio
	//    port on S1, an Internet egress on S4.
	//
	//    [gA]─S1 ─── S2 ─┄┄┄ S3 ─── S4 ─[Internet]
	//         region L1    │    region L2
	//                cross-region link
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		net.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"S1", "S2"}, {"S2", "S3"}, {"S3", "S4"}} {
		if _, err := net.Connect(pair[0], pair[1], 5*time.Millisecond, 1000); err != nil {
			log.Fatal(err)
		}
	}
	radio, err := net.AddRadioPort("S1", "gA")
	if err != nil {
		log.Fatal(err)
	}
	egress, err := net.AddEgress("E1", "S4", "example-isp")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Recursive control plane: two leaf controllers and a root. The
	//    bootstrap runs discovery bottom-up: each leaf finds its physical
	//    links, abstracts its region into a G-switch with a virtual
	//    fabric, and the root discovers the inter-G-switch link.
	h, err := core.NewTwoLevel(net, "root", []core.LeafSpec{
		{
			ID:       "L1",
			Switches: []dataplane.DeviceID{"S1", "S2"},
			Radios: []reca.RadioAttachment{{
				ID:     "gA",
				Attach: dataplane.PortRef{Dev: "S1", Port: radio.ID},
				Border: true,
			}},
			BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"bs-1": "gA"},
		},
		{
			ID:       "L2",
			Switches: []dataplane.DeviceID{"S3", "S4"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped: root sees %d G-switches and %d cross-region link(s)\n",
		len(h.Root.NIB.Devices(dataplane.KindGSwitch)), h.Root.NIB.NumLinks())

	// 3. Interdomain routes: the prefix is reachable via E1 (10 external
	//    hops). L2 learns it RCP-style and propagates it to the root.
	l2 := h.Controller("L2")
	l2.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "203.0.113.0/24", Egress: "E1", EgressSwitch: "S4",
		Metrics: interdomain.Metrics{Hops: 10, RTT: 20 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S4", Port: egress.Port})
	l2.PropagateInterdomain()

	// 4. A UE bearer request arrives at leaf L1. L1 has no local route, so
	//    the request delegates to the root, which implements a globally
	//    optimal cross-region path via recursive label swapping.
	l1 := h.Controller("L1")
	rec, err := l1.HandleBearerRequest(core.BearerRequest{
		UE: "alice", BS: "bs-1", Prefix: "203.0.113.0/24",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bearer admitted: resolved by %s (delegated=%v)\n",
		rec.HandledBy.OwnerID(), rec.HandledBy != core.PathOwner(l1))

	// 5. Drive a packet from the UE. Every physical link carries at most
	//    one label (§4.3), and the packet leaves unlabeled at the egress.
	pkt := &dataplane.Packet{UE: "alice", DstPrefix: "203.0.113.0/24"}
	res, err := net.Inject("S1", radio.ID, pkt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packet: %s at %v, path %v\n", res.Disposition, res.EgressPort, pkt.Path())
	fmt.Printf("hops=%d latency=%v max-label-depth=%d (single-label invariant holds: %v)\n",
		res.Hops, res.Latency, res.MaxLabelDepth, res.MaxLabelDepth <= 1)
}
