// Handover optimization: the §5.3 region optimization in action. The demo
// builds a workload whose handover communities straddle the initial region
// boundary, runs the greedy border-G-BS re-association at the root, and
// shows the inter-region handover load dropping while per-region load
// bounds hold.
//
//	go run ./examples/handoveropt
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/regionopt"
	"repro/internal/dataplane"
	"repro/internal/ltetrace"
)

func main() {
	// A handover graph like Fig. 7: regions A and B, border G-BSes 1-3,
	// internal aggregates IA/IB. G-BS 3 is assigned to B but most of its
	// handovers go to region A.
	g := ltetrace.NewHandoverGraph()
	g.Add("gbs3", "IA", 400)
	g.Add("gbs3", "gbs1", 100) // gbs1 in A
	g.Add("gbs3", "IB", 150)
	g.Add("gbs3", "gbs2", 50) // gbs2 in B
	g.Add("gbs1", "IA", 700)
	g.Add("gbs2", "IB", 650)
	g.Add("gbs1", "gbs2", 120) // unavoidable cross traffic

	assign := regionopt.Assignment{
		"gbs1": "A", "IA": "A",
		"gbs2": "B", "gbs3": "B", "IB": "B",
	}
	movable := map[dataplane.DeviceID]bool{"gbs1": true, "gbs2": true, "gbs3": true}
	load := map[dataplane.DeviceID]float64{
		"gbs1": 120, "gbs2": 110, "gbs3": 100, "IA": 900, "IB": 900,
	}
	initial := map[string]float64{"A": 1020 + 0, "B": 1110}
	bounds := regionopt.BoundsFromInitial(initial, 0.30)

	before := regionopt.CrossWeight(g, assign)
	fmt.Printf("inter-region handovers before optimization: %d\n", before)

	res := regionopt.Optimize(regionopt.Problem{
		Graph: g, Assign: assign, Movable: movable, Load: load, Bounds: bounds,
	})
	for _, mv := range res.Moves {
		fmt.Printf("  move %s: %s -> %s (gain %d handovers)\n", mv.GBS, mv.From, mv.To, mv.Gain)
	}
	fmt.Printf("after optimization: %d (%.1f%% reduction)\n",
		res.After, float64(before-res.After)/float64(before)*100)
	for r, l := range res.RegionLoad {
		b := bounds[r]
		fmt.Printf("  region %s load %.0f within [%.0f, %.0f]: %v\n",
			r, l, b.Lower, b.Upper, l >= b.Lower && l <= b.Upper)
	}
	if res.After > before {
		log.Fatal("optimization must never increase inter-region handovers")
	}
}
