// Path inflation: the paper's motivating workload (§1, Fig. 8/9). A rigid
// LTE region exits the Internet at its single PGW no matter where the
// destination peers, inflating paths; SoftMoW's inter-connected core picks
// the globally best egress per destination at the root controller.
//
//	go run ./examples/pathinflation
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	p := experiments.Small()
	p.Prefixes = 120

	fmt.Println("Measuring end-to-end paths for every (source G-BS, destination prefix) pair")
	fmt.Println("under four architectures (this composes a fresh WAN per configuration)...")
	out, err := experiments.RunRouting(p)
	if err != nil {
		log.Fatal(err)
	}

	t := metrics.NewTable("", "Architecture", "Avg hops", "Avg RTT (ms)", "P85 RTT (ms)")
	for _, r := range out.Results {
		t.AddRow(r.Config.Name, r.Hops.Mean, r.RTT.Mean, r.RTT.P85)
	}
	fmt.Println(t.String())
	fmt.Printf("SoftMoW (8 egress) vs rigid LTE: %.1f%% fewer hops, %.1f%% lower P85 RTT.\n",
		out.HopReductionPct, out.RTT85ReductionPct)
	fmt.Println("The paper reports the same ordering at metro scale (Figs. 8 and 9).")
}
