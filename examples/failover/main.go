// Failover: the §6 controller failure recovery. A master and hot-standby
// instance share a reliable NIB store and event log; the master logs each
// event before processing it. When the master dies mid-event, the standby
// detects the missed heartbeats, promotes itself, and redoes the
// unfinished work from the log.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"repro/internal/ha"
	"repro/internal/nib"
	"repro/internal/simnet"
)

func main() {
	sim := simnet.New()
	store := ha.NewSharedStore()

	var redone []string
	pair := ha.NewPair(sim, store, "ctrl-LA-master", "ctrl-LA-standby",
		func(e nib.LogEntry) error {
			redone = append(redone, fmt.Sprintf("%s(%v)", e.Kind, e.Payload))
			return nil
		})

	// Normal operation: events are logged, processed, and marked done.
	for i := 0; i < 3; i++ {
		req := fmt.Sprintf("bearer-%d", i)
		if err := pair.HandleEvent("bearer", req, func() error { return nil }); err != nil {
			panic(err)
		}
	}
	fmt.Printf("t=%v master=%s processed 3 bearer events\n", sim.Now(), pair.Master().ID)

	// The master logs two handover arrivals... and crashes before
	// finishing them.
	pair.LogOnly("handover", "ho-17")
	pair.LogOnly("handover", "ho-18")
	pair.KillMaster()
	fmt.Printf("t=%v master crashed with %d unfinished events in the log\n",
		sim.Now(), len(store.Log.Unfinished()))

	// Virtual time advances; heartbeats go missing; the standby promotes
	// itself and replays.
	sim.RunUntil(2 * time.Second)
	fmt.Printf("t=%v new master=%s (failovers: %d)\n", sim.Now(), pair.Master().ID, pair.Failovers)
	fmt.Printf("replayed events: %v\n", redone)
	fmt.Printf("unfinished events remaining: %d, masters alive: %d\n",
		len(store.Log.Unfinished()), pair.MasterCount())
}
