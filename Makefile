GO ?= go

.PHONY: build test vet race chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A longer randomized fault-injection run than the bounded tier-1 test;
# prints its seed so any violation can be replayed exactly.
chaos:
	$(GO) run ./cmd/chaos -events 1000

check: vet race
