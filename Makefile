GO ?= go

.PHONY: build test vet race chaos check bench docs-check lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A longer randomized fault-injection run than the bounded tier-1 test;
# prints its seed so any violation can be replayed exactly.
chaos:
	$(GO) run ./cmd/chaos -events 1000

# Fail when an exported symbol under internal/... lacks a doc comment.
docs-check:
	$(GO) run ./cmd/docscheck internal

# Enforce the lock, determinism, layering, and error-handling invariants
# over ./internal/... and ./cmd/... (see DESIGN.md "Enforced invariants").
lint:
	$(GO) run ./cmd/softmowlint

check: vet race docs-check lint

# Run the routing/abstraction/controller hot-path benchmarks and record the
# results as JSON lines in BENCH_routing.json (the committed baseline for
# spotting regressions; compare with `git diff BENCH_routing.json`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBuildGraph|BenchmarkShortestPath|BenchmarkMetricsFrom|BenchmarkPairMetrics|BenchmarkCompute|BenchmarkRouteRecursive|BenchmarkGraphCacheHit|BenchmarkBearerSetup' \
	  -benchmem ./internal/routing ./internal/reca ./internal/core \
	  | awk '/^Benchmark/ { gsub(/-[0-9]+$$/, "", $$1); printf("{\"name\":\"%s\",\"iters\":%s,\"ns_op\":%s,\"b_op\":%s,\"allocs_op\":%s}\n", $$1, $$2, $$3, $$5, $$7) }' \
	  | tee BENCH_routing.json
