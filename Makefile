GO ?= go

.PHONY: build test vet race chaos check bench bench-workload smoke-dist smoke-failover smoke-impaired docs-check lint fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A longer randomized fault-injection run than the bounded tier-1 test;
# prints its seed so any violation can be replayed exactly.
chaos:
	$(GO) run ./cmd/chaos -events 1000

# Fail when an exported symbol under internal/... lacks a doc comment.
docs-check:
	$(GO) run ./cmd/docscheck internal

# Enforce the lock, determinism, layering, error-handling, wire-parity,
# goroutine-lifecycle, metric-name, and stale-suppression invariants over
# ./internal/... and ./cmd/... (see DESIGN.md "Enforced invariants").
# Prints per-analyzer finding counts and wall time, and writes the table
# plus every finding to lint-report.txt (uploaded as a CI artifact).
lint:
	$(GO) run ./cmd/softmowlint -stats -report lint-report.txt

# Fuzz the southbound binary frame decoder (seed corpus committed under
# internal/southbound/testdata/fuzz). CI runs the same invocation; raise
# FUZZTIME for longer local campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/southbound -run '^$$' -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME)

check: vet race docs-check lint

# Run the routing/abstraction/controller hot-path benchmarks and record the
# results as JSON lines in BENCH_routing.json (the committed baseline for
# spotting regressions; compare with `git diff BENCH_routing.json`).
bench:
	( printf '{"config":{"go_version":"%s","gomaxprocs":%s,"num_cpu":%s}}\n' \
	    "$$($(GO) env GOVERSION)" "$${GOMAXPROCS:-$$(nproc)}" "$$(nproc)"; \
	  $(GO) test -run '^$$' -bench 'BenchmarkBuildGraph|BenchmarkShortestPath|BenchmarkMetricsFrom|BenchmarkPairMetrics|BenchmarkCompute|BenchmarkRouteRecursive|BenchmarkGraphCacheHit|BenchmarkBearerSetup' \
	  -benchmem ./internal/routing ./internal/reca ./internal/core \
	  | awk '/^Benchmark/ { gsub(/-[0-9]+$$/, "", $$1); printf("{\"name\":\"%s\",\"iters\":%s,\"ns_op\":%s,\"b_op\":%s,\"allocs_op\":%s}\n", $$1, $$2, $$3, $$5, $$7) }' ) \
	  | tee BENCH_routing.json

# Run the deterministic UE workload driver at benchmark scale and record
# BENCH_workload.json: sustained events/sec, p50/p99 per op type, replay
# digests, and the sharded-vs-single-mutex UE store comparison (-compare).
# Override scale with WORKLOAD_ARGS, e.g.
#   make bench-workload WORKLOAD_ARGS='-ues 100000 -events 400000 -regions 4'
WORKLOAD_ARGS ?= -seed 1 -regions 4 -ues 100000 -events 200000 -compare -shards 16
bench-workload:
	$(GO) run ./cmd/loadgen $(WORKLOAD_ARGS) -out BENCH_workload.json

# Distributed smoke: a fixed-seed 2-process cluster over localhost TCP
# whose replay digests must match the in-process run of the same seed
# (the CI multi-process gate, runnable locally).
smoke-dist:
	$(GO) run ./cmd/loadgen -seed 7 -regions 2 -ues 5000 -events 20000 \
	  -procs 2 -verify-inproc -out /tmp/BENCH_workload_dist.json

# Failover smoke: a fixed-seed run that kills the HA master mid-workload
# and promotes the standby from an incremental snapshot. Run twice: both
# runs must land on identical replay digests, and each run's failover
# passes must match its own plain run (bounded loss = zero lost events).
smoke-failover:
	$(GO) run ./cmd/loadgen -seed 7 -regions 2 -ues 5000 -events 20000 \
	  -chaos-failover -out /tmp/BENCH_failover_a.json
	$(GO) run ./cmd/loadgen -seed 7 -regions 2 -ues 5000 -events 20000 \
	  -chaos-failover -out /tmp/BENCH_failover_b.json
	@python3 -c "import json; \
a = json.load(open('/tmp/BENCH_failover_a.json')); \
b = json.load(open('/tmp/BENCH_failover_b.json')); \
assert a['state_digest'] == b['state_digest'] and a['trace_digest'] == b['trace_digest'], 'failover smoke not replayable'; \
assert a['failover']['digests_match'] and b['failover']['digests_match'], 'failover run diverged from plain run'; \
print('failover smoke: digests identical, %.0fx replay reduction' % a['failover']['replay_reduction'])"

# Impaired-WAN smoke: the fixed-seed scenario matrix (clean / lossy /
# jittery / combined / fixed-timeout baselines / scheduled partition),
# run twice. Every non-best-effort scenario must land on the clean run's
# replay digests with zero failures (loadgen enforces this per run), the
# two runs must be identical to each other (best-effort baselines are
# exempt: their failures are wall-clock-timing-dependent by design), and
# the clean digests must stay pinned — both at the seed-7 smoke config
# and at the canonical bench config the ISSUE pins (38b75103cf760429 /
# 904e505b89fcac36), proving impairment plumbing moved no digest.
smoke-impaired:
	$(GO) run ./cmd/loadgen -seed 7 -regions 2 -ues 5000 -events 20000 \
	  -impair-matrix -out /tmp/BENCH_impaired_a.json
	$(GO) run ./cmd/loadgen -seed 7 -regions 2 -ues 5000 -events 20000 \
	  -impair-matrix -out /tmp/BENCH_impaired_b.json
	$(GO) run ./cmd/loadgen -seed 1 -regions 4 -ues 100000 -events 200000 \
	  -shards 16 -out /tmp/BENCH_impaired_canon.json
	@python3 -c "import json; \
a = json.load(open('/tmp/BENCH_impaired_a.json')); \
b = json.load(open('/tmp/BENCH_impaired_b.json')); \
c = json.load(open('/tmp/BENCH_impaired_canon.json')); \
assert a['trace_digest'] == 'e9b3b20e1c21f4a7' and a['state_digest'] == 'cc4d4d83bbeb638e', 'impaired smoke moved the seed-7 clean digests: %s %s' % (a['trace_digest'], a['state_digest']); \
assert c['trace_digest'] == '38b75103cf760429' and c['state_digest'] == '904e505b89fcac36', 'impaired smoke moved the pinned canonical digests: %s %s' % (c['trace_digest'], c['state_digest']); \
sa = {s['name']: s for s in a['impairment']['scenarios']}; \
sb = {s['name']: s for s in b['impairment']['scenarios']}; \
assert sa.keys() == sb.keys(), 'scenario sets differ'; \
mismatch = [n for n in sa if not sa[n].get('best_effort') and (sa[n]['trace_digest'], sa[n]['state_digest']) != (sb[n]['trace_digest'], sb[n]['state_digest'])]; \
assert not mismatch, 'impaired smoke not replayable: %s' % mismatch; \
part = sa['partitioned']['partition']; \
assert part['links_restored'] and part['rediscoveries'] > 0, 'partition scenario did not recover via rediscovery'; \
print('impaired smoke: %d scenarios, digests identical across runs, canonical digests pinned, partition recovered (%d suspects, %d rediscoveries)' % (len(sa), part['suspects'], part['rediscoveries']))"
