// Command docscheck fails the build when an exported top-level symbol
// under the given roots (default: internal/...) lacks a doc comment. It
// is wired into `make docs-check` and CI so the public surface of every
// internal package stays navigable.
//
// The check is deliberately lenient about grouped declarations: a const
// or var block documented as a group passes, and so does a per-spec doc
// or trailing line comment. Test files and generated files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal"}
	}
	fset := token.NewFileSet()
	var bad []string
	files := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("docscheck: %s: %w", path, err)
			}
			files++
			bad = append(bad, checkFile(fset, f)...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported symbols\n", len(bad))
		os.Exit(1)
	}
	fmt.Printf("docscheck: all exported symbols documented across %d files\n", files)
}

// checkFile returns one finding per undocumented exported top-level
// symbol: functions, methods, types, and const/var names.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var bad []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				name := d.Name.Name
				if d.Recv != nil {
					r := recvName(d.Recv)
					if !ast.IsExported(r) {
						// An exported method on an unexported type (e.g. a
						// heap.Interface impl) is not reachable API surface.
						continue
					}
					name = r + "." + name
				}
				report(d.Pos(), "func", name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// recvName extracts the receiver type name for a method finding.
func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return "?"
		}
	}
}

// declKind labels a finding as const or var for readable output.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
