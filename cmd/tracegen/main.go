// Command tracegen emits a synthetic LTE event trace in the structure of
// the paper's bearer-level dataset (§7.1: radio bearer creation, UE
// arrival, handover events for a metropolitan network), as CSV on stdout:
//
//	tracegen -bs 200 -from 720 -to 725 -scale 0.05 > trace.csv
//
// Columns: offset_ms,kind,ue,bs,target_bs,qos
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ltetrace"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	bs := flag.Int("bs", 200, "base station count")
	from := flag.Int("from", 12*60, "start minute of trace (0 = midnight)")
	to := flag.Int("to", 12*60+5, "end minute of trace")
	scale := flag.Float64("scale", 0.05, "rate thinning factor (0,1]")
	groups := flag.Bool("groups", false, "emit the inferred BS groups instead of events")
	flag.Parse()

	model := ltetrace.New(ltetrace.Params{Seed: *seed, NumBS: *bs})
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *groups {
		fmt.Fprintln(w, "group,topology,members")
		for _, g := range model.Groups {
			fmt.Fprintf(w, "%s,%s,", g.ID, g.Topology)
			for i, m := range g.Members() {
				if i > 0 {
					fmt.Fprint(w, ";")
				}
				fmt.Fprint(w, m)
			}
			fmt.Fprintln(w)
		}
		return
	}

	events := model.SampleEvents(*from, *to, *scale)
	fmt.Fprintln(w, "offset_ms,kind,ue,bs,target_bs,qos")
	for _, e := range events {
		fmt.Fprintf(w, "%d,%s,%s,%s,%s,%d\n",
			e.At/time.Millisecond, e.Kind, e.UE, e.BS, e.Target, e.QoS)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d events over minutes [%d,%d) at scale %.3f\n",
		len(events), *from, *to, *scale)
}
