// Command region runs one region process of a distributed SoftMoW
// cluster. A launcher (cmd/loadgen -procs, or anything speaking the same
// stdio protocol) hands it a JSON RegionConfig on the first stdin line —
// the shared workload config plus the contiguous region slice this
// process owns — then sequences CONNECT/PROP/RUN/QUIT command lines. The
// process builds only its slice of the data plane, attaches each owned
// leaf controller to the launcher's root over the northbound wire
// (localhost TCP, length-prefixed binary frames), and executes its share
// of the deterministic schedule.
//
// On SIGTERM or SIGINT the process drains before exiting: outstanding
// northbound requests and southbound fences are given up to five seconds
// to complete so no half-installed batch is stranded behind a closing
// connection.
package main

import (
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/workload"
)

func main() {
	var cur atomic.Pointer[workload.RegionProc]
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sig
		if p := cur.Load(); p != nil {
			if err := p.Drain(5 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "region: drain:", err)
			}
			p.Close()
		}
		os.Exit(0)
	}()
	err := workload.RegionMain(os.Stdin, os.Stdout, func(p *workload.RegionProc) {
		cur.Store(p)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "region:", err)
		os.Exit(1)
	}
}
