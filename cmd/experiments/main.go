// Command experiments regenerates every table and figure of the SoftMoW
// evaluation (§7):
//
//	experiments -exp all                # everything, paper scale
//	experiments -exp fig8 -scale small  # one experiment, laptop scale
//
// Experiments: fig8 (hop counts), fig9 (RTT CDF; produced with fig8),
// fig10 (discovery convergence), table1 (abstraction stats), fig11
// (cellular loads), fig12 (handover optimization), labels (the §4.3
// swap-vs-stack ablation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig8|fig9|fig10|table1|fig11|fig12|labels")
	scale := flag.String("scale", "full", "scale: full (paper) or small (laptop)")
	seed := flag.Int64("seed", 42, "random seed")
	regions := flag.Int("regions", 0, "override region count")
	flag.Parse()

	var p experiments.Params
	switch *scale {
	case "full":
		p = experiments.Full()
	case "small":
		p = experiments.Small()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	p.Seed = *seed
	if *regions > 0 {
		p.Regions = *regions
	}

	want := func(name string) bool {
		return *exp == "all" || *exp == name ||
			(name == "fig8" && *exp == "fig9") // fig9 is produced with fig8
	}
	ran := false

	if want("fig8") {
		ran = true
		run("Figures 8 & 9 (routing performance)", func() (string, error) {
			out, err := experiments.RunRouting(p)
			if err != nil {
				return "", err
			}
			return experiments.RenderRouting(out), nil
		})
	}

	if want("fig10") || want("table1") {
		ran = true
		run("Figure 10 & Table 1 (discovery and abstraction)", func() (string, error) {
			ev, err := experiments.BuildEval(p)
			if err != nil {
				return "", err
			}
			s := ""
			if want("fig10") {
				s += experiments.RenderDiscovery(experiments.RunDiscoveryConvergence(ev)) + "\n"
			}
			if want("table1") {
				s += experiments.RenderAbstraction(experiments.RunAbstractionStats(ev))
			}
			return s, nil
		})
	}

	if want("fig11") {
		ran = true
		run("Figure 11 (cellular loads)", func() (string, error) {
			ev, err := experiments.BuildEval(p)
			if err != nil {
				return "", err
			}
			return experiments.RenderLoads(experiments.RunLoads(ev)), nil
		})
	}

	if want("fig12") {
		ran = true
		run("Figure 12 (inter-region handover optimization)", func() (string, error) {
			var outs []*experiments.RegionOptOutcome
			for _, k := range []int{4, 8} {
				o, err := experiments.RunRegionOpt(p, k)
				if err != nil {
					return "", err
				}
				outs = append(outs, o)
			}
			return experiments.RenderRegionOpt(outs), nil
		})
	}

	if want("labels") {
		ran = true
		run("Label ablation (§4.3)", func() (string, error) {
			out, err := experiments.RunLabelAblation()
			if err != nil {
				return "", err
			}
			return experiments.RenderLabels(out), nil
		})
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func run(title string, f func() (string, error)) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
	start := time.Now()
	s, err := f()
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(s)
	fmt.Printf("[%s in %v]\n\n", title, time.Since(start).Round(time.Millisecond))
}
