package main

import (
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Fixtures under testdata/src are invisible to go build but resolvable by
// the source loader; each declares its expected findings inline with
// `// want <check>` trailing comments.

var (
	loaderOnce sync.Once
	testLoader *Loader
	testModule string
	loaderErr  error
)

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() {
		var repoRoot string
		repoRoot, testModule, loaderErr = findRepoRoot(".")
		if loaderErr == nil {
			testLoader = NewLoader(repoRoot, testModule)
		}
	})
	if loaderErr != nil {
		t.Fatalf("findRepoRoot: %v", loaderErr)
	}
	p, err := testLoader.Load(testModule + "/cmd/softmowlint/testdata/src/" + name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p
}

var wantRE = regexp.MustCompile(`// want (\w+)`)

// wantSet parses the fixture's `// want <check>` comments into a multiset
// of "file:line:check" keys.
func wantSet(t *testing.T, p *Package) map[string]int {
	t.Helper()
	want := make(map[string]int)
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("read %s: %v", filename, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				want[key(pathBase(filename), i+1, m[1])]++
			}
		}
	}
	return want
}

func key(file string, line int, check string) string {
	return file + ":" + itoa(line) + ":" + check
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// checkFixture asserts the findings match the fixture's want comments
// exactly (same file, line, and check; no extras, no misses).
func checkFixture(t *testing.T, p *Package, findings []Finding) {
	t.Helper()
	want := wantSet(t, p)
	got := make(map[string]int)
	for _, f := range findings {
		got[key(pathBase(f.Pos.Filename), f.Pos.Line, f.Check)]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("want %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("unexpected finding(s) at %s (×%d)", k, n)
		}
	}
}

func TestLockguard(t *testing.T) {
	bad := fixture(t, "lockbad")
	checkFixture(t, bad, filterSuppressed(bad, lockguard(bad)))

	good := fixture(t, "lockgood")
	checkFixture(t, good, filterSuppressed(good, lockguard(good)))
}

func TestDeterminism(t *testing.T) {
	bad := fixture(t, "detbad")
	checkFixture(t, bad, filterSuppressed(bad, determinism(bad)))

	good := fixture(t, "detgood")
	checkFixture(t, good, filterSuppressed(good, determinism(good)))
}

func TestLayering(t *testing.T) {
	cfg := layeringConfig{
		AllowedFiles: map[string]bool{"allowed.go": true},
		FromPath:     "repro/internal/southbound",
		Forbidden: map[string]bool{
			"TypeFlowMod":        true,
			"TypeFlowModBatch":   true,
			"TypeBarrierRequest": true,
			"TypeBarrierReply":   true,
		},
	}

	bad := fixture(t, "laybad")
	cfg.PkgPath = bad.Path
	checkFixture(t, bad, filterSuppressed(bad, layering(bad, cfg)))

	good := fixture(t, "laygood")
	cfg.PkgPath = good.Path
	checkFixture(t, good, filterSuppressed(good, layering(good, cfg)))

	// The production config must not fire on fixture packages at all.
	if fs := layering(bad, coreLayering); len(fs) != 0 {
		t.Errorf("production layering config fired on a fixture package: %v", fs)
	}
}

func TestErrdiscard(t *testing.T) {
	bad := fixture(t, "errbad")
	checkFixture(t, bad, filterSuppressed(bad, errdiscard(bad, "repro/")))

	good := fixture(t, "errgood")
	checkFixture(t, good, filterSuppressed(good, errdiscard(good, "repro/")))
}

func TestWireparity(t *testing.T) {
	cfg := wireparityConfig{
		EnumType:      "MsgType",
		ConstPrefix:   "Type",
		EncodeFunc:    "appendBody",
		DecodeFunc:    "decodeBody",
		CorpusDir:     "testdata/fuzz/FuzzFrameDecode",
		TypeByteIndex: 1,
	}

	bad := fixture(t, "wirebad")
	cfg.PkgPath = bad.Path
	checkFixture(t, bad, filterSuppressed(bad, wireparity(bad, cfg)))

	good := fixture(t, "wiregood")
	cfg.PkgPath = good.Path
	checkFixture(t, good, filterSuppressed(good, wireparity(good, cfg)))

	// The production config must not fire on fixture packages at all.
	if fs := wireparity(bad, southboundWireparity); len(fs) != 0 {
		t.Errorf("production wireparity config fired on a fixture package: %v", fs)
	}
}

func TestGospawn(t *testing.T) {
	bad := fixture(t, "spawnbad")
	checkFixture(t, bad, filterSuppressed(bad, gospawn(bad)))

	good := fixture(t, "spawngood")
	checkFixture(t, good, filterSuppressed(good, gospawn(good)))
}

func TestMetricname(t *testing.T) {
	bad := fixture(t, "metbad")
	registry := map[string]map[string]bool{
		bad.Path: {"metbad.requests": true, "metbad.dead_entry": true},
	}
	checkFixture(t, bad, filterSuppressed(bad, metricname(bad, registry, metricsPkgPath)))

	good := fixture(t, "metgood")
	registry = map[string]map[string]bool{
		good.Path: {"metgood.requests": true, "metgood.latency": true},
	}
	checkFixture(t, good, filterSuppressed(good, metricname(good, registry, metricsPkgPath)))

	// A package minting metrics with no registry entry at all is flagged at
	// each literal-name constructor call.
	noEntry := 0
	for _, f := range metricname(bad, map[string]map[string]bool{}, metricsPkgPath) {
		if strings.Contains(f.Message, "no metric-name registry entry") {
			noEntry++
		}
	}
	if noEntry != 2 {
		t.Errorf("want 2 no-registry-entry findings, got %d", noEntry)
	}
}

// TestStaleallow runs the full production suppression pipeline: used
// annotations vanish, dead ones become staleallow findings, and a
// staleallow annotation can excuse a deliberately kept dead annotation.
func TestStaleallow(t *testing.T) {
	bad := fixture(t, "stalebad")
	checkFixture(t, bad, applySuppressions(bad, errdiscard(bad, "repro/")))

	good := fixture(t, "stalegood")
	checkFixture(t, good, applySuppressions(good, errdiscard(good, "repro/")))
}

// TestSuppressionDiagnostics checks that malformed annotations are findings
// themselves and register no suppression: the unknown-check and
// missing-reason sites each yield one "suppression" finding, and the error
// discards they fail to cover are still reported.
func TestSuppressionDiagnostics(t *testing.T) {
	p := fixture(t, "supbad")
	findings := filterSuppressed(p, errdiscard(p, "repro/"))
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Check]++
	}
	if counts["suppression"] != 2 {
		t.Errorf("want 2 suppression findings, got %d: %v", counts["suppression"], findings)
	}
	if counts["errdiscard"] != 2 {
		t.Errorf("want 2 uncovered errdiscard findings, got %d: %v", counts["errdiscard"], findings)
	}
}

// TestRepoClean runs the production configuration over every production
// package: the merged tree must stay lint-clean. Skipped under -short (it
// type-checks the whole module).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	repoRoot, module, err := findRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := listPackages(repoRoot, module, []string{"internal", "cmd"})
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(repoRoot, module)
	for _, ip := range pkgs {
		p, err := loader.Load(ip)
		if err != nil {
			t.Fatalf("load %s: %v", ip, err)
		}
		for _, f := range runConfigured(p, nil) {
			t.Errorf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	}
}
