package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, fully type-checked package of the repository.
type Package struct {
	// Path is the import path (e.g. repro/internal/core).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's per-expression results.
	Info *types.Info
	// Fset is the shared file set (positions).
	Fset *token.FileSet
}

// Loader resolves and type-checks repository packages from source. Imports
// of module packages (repro/...) are loaded recursively from the repo tree;
// everything else is delegated to the stdlib source importer so full type
// information is available without x/tools. Loaded packages are memoized.
type Loader struct {
	// RepoRoot is the directory containing go.mod.
	RepoRoot string
	// Module is the module path from go.mod (repro).
	Module string
	// Fset is shared across every parsed file, module and stdlib alike.
	Fset *token.FileSet

	std     types.ImporterFrom
	pkgs    map[string]*Package
	typed   map[string]*types.Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at repoRoot for the given module path.
func NewLoader(repoRoot, module string) *Loader {
	// The source importer type-checks stdlib dependencies from source; with
	// cgo disabled the pure-Go fallbacks of net et al. are selected, which
	// is all the type information the analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		RepoRoot: repoRoot,
		Module:   module,
		Fset:     fset,
		pkgs:     make(map[string]*Package),
		typed:    make(map[string]*types.Package),
		loading:  make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// Import implements types.Importer over both module and stdlib packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	tp, err := l.std.ImportFrom(path, l.RepoRoot, 0)
	if err != nil {
		return nil, err
	}
	l.typed[path] = tp
	return tp, nil
}

// Load parses and type-checks one module package (and, recursively, its
// module imports).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.Module), "/")
	dir := filepath.Join(l.RepoRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files in %s", importPath, dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info, Fset: l.Fset}
	l.pkgs[importPath] = p
	l.typed[importPath] = tpkg
	return p, nil
}

// findRepoRoot walks upward from dir to the directory containing go.mod and
// returns it along with the declared module path.
func findRepoRoot(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
