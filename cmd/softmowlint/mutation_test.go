package main

import (
	"go/ast"
	"strings"
	"testing"
)

// TestWireparityMutation is a mutation test of the wireparity analyzer
// against the real codec: it deletes the decodeBody case for one message
// type from the southbound package's AST and asserts the analyzer reports
// exactly that type with exactly that missing facet — drift detection,
// not just all-or-nothing presence. Skipped under -short (it type-checks
// the southbound package and its dependencies).
func TestWireparityMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the southbound package")
	}
	repoRoot, module, err := findRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	// A private loader: the mutation edits the package's AST in place and
	// must not leak into the shared fixture loader's cache.
	loader := NewLoader(repoRoot, module)
	p, err := loader.Load(module + "/internal/southbound")
	if err != nil {
		t.Fatal(err)
	}
	if fs := wireparity(p, southboundWireparity); len(fs) != 0 {
		t.Fatalf("baseline southbound package is not wireparity-clean: %v", fs)
	}

	const victim = "TypeNbTeardown"
	removed := false
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != southboundWireparity.DecodeFunc {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || removed {
					return !removed
				}
				kept := sw.Body.List[:0:0]
				for _, s := range sw.Body.List {
					if cc, ok := s.(*ast.CaseClause); ok && len(cc.List) == 1 {
						if id, ok := ast.Unparen(cc.List[0]).(*ast.Ident); ok && id.Name == victim {
							removed = true
							continue
						}
					}
					kept = append(kept, s)
				}
				sw.Body.List = kept
				return !removed
			})
		}
	}
	if !removed {
		t.Fatalf("no single-constant %s case for %s found to delete",
			southboundWireparity.DecodeFunc, victim)
	}

	fs := wireparity(p, southboundWireparity)
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding after deleting the %s case, got %d: %v", victim, len(fs), fs)
	}
	msg := fs[0].Message
	if !strings.HasPrefix(msg, victim+":") || !strings.Contains(msg, "no "+southboundWireparity.DecodeFunc+" case") {
		t.Fatalf("finding does not name the mutated case: %s", msg)
	}
	if strings.Contains(msg, southboundWireparity.EncodeFunc+" case") || strings.Contains(msg, "corpus") {
		t.Fatalf("finding reports facets the mutation did not remove: %s", msg)
	}
}
