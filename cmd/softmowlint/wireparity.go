package main

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// wireparityConfig scopes the wireparity analyzer to one codec package: the
// enum whose constants are the wire contract, the hand-coded encode/decode
// switches that must cover every constant, the committed fuzz corpus that
// must seed every type byte, and the package tests that must reference
// every constant (the round-trip suite enumerates them all).
type wireparityConfig struct {
	// PkgPath is the package defining the enum and the codec.
	PkgPath string
	// EnumType is the named type of the message-type enum (MsgType).
	EnumType string
	// ConstPrefix selects which of the enum's constants are enforced.
	ConstPrefix string
	// EncodeFunc and DecodeFunc name the codec switch functions; a
	// constant is covered when it appears in a case clause anywhere in the
	// function body (combined cases count for every listed constant).
	EncodeFunc string
	DecodeFunc string
	// CorpusDir is the fuzz seed corpus directory, relative to the package
	// directory.
	CorpusDir string
	// TypeByteIndex is the offset of the type byte within a corpus seed's
	// payload (frame layout: version byte, then type byte).
	TypeByteIndex int
}

// southboundWireparity is the production configuration: every Type*
// constant of southbound.MsgType needs an appendBody case, a decodeBody
// case, a committed FuzzFrameDecode seed, and a test reference — so the
// PR 6/7 binary codec can never silently drift from the message set.
var southboundWireparity = wireparityConfig{
	PkgPath:       "repro/internal/southbound",
	EnumType:      "MsgType",
	ConstPrefix:   "Type",
	EncodeFunc:    "appendBody",
	DecodeFunc:    "decodeBody",
	CorpusDir:     "testdata/fuzz/FuzzFrameDecode",
	TypeByteIndex: 1,
}

// wireparity enforces wire-protocol parity: each enum constant either has
// all four artifacts (encode case, decode case, corpus seed, test
// reference) or yields one finding at its declaration listing what is
// missing.
func wireparity(p *Package, cfg wireparityConfig) []Finding {
	if p.Path != cfg.PkgPath {
		return nil
	}
	type enumConst struct {
		name string
		val  int64
		pos  token.Position
	}
	var consts []enumConst
	constNames := make(map[types.Object]string)
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, cfg.ConstPrefix) {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != cfg.EnumType || named.Obj().Pkg() != p.Types {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			continue
		}
		consts = append(consts, enumConst{name: name, val: v, pos: p.Fset.Position(c.Pos())})
		constNames[c] = name
	}
	if len(consts) == 0 {
		return nil
	}

	enc := switchCaseConsts(p, cfg.EncodeFunc, constNames)
	dec := switchCaseConsts(p, cfg.DecodeFunc, constNames)
	corpus := corpusTypeBytes(filepath.Join(p.Dir, filepath.FromSlash(cfg.CorpusDir)), cfg.TypeByteIndex)
	testRefs := testFileIdents(p.Fset, p.Dir)

	var out []Finding
	for _, c := range consts {
		var missing []string
		if !enc[c.name] {
			missing = append(missing, "no "+cfg.EncodeFunc+" case")
		}
		if !dec[c.name] {
			missing = append(missing, "no "+cfg.DecodeFunc+" case")
		}
		if !corpus[c.val] {
			missing = append(missing, "no fuzz corpus seed in "+cfg.CorpusDir)
		}
		if !testRefs[c.name] {
			missing = append(missing, "no reference in the package tests")
		}
		if len(missing) > 0 {
			out = append(out, Finding{Pos: c.pos, Check: "wireparity",
				Message: c.name + ": " + strings.Join(missing, ", ") +
					" — codec coverage must not drift from the message set"})
		}
	}
	return out
}

// switchCaseConsts returns the names of the tracked constants referenced
// in case clauses anywhere inside the named function's body.
func switchCaseConsts(p *Package, fnName string, tracked map[types.Object]string) map[string]bool {
	covered := make(map[string]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fnName || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					var id *ast.Ident
					switch e := ast.Unparen(e).(type) {
					case *ast.Ident:
						id = e
					case *ast.SelectorExpr:
						id = e.Sel
					default:
						continue
					}
					if name, ok := tracked[p.Info.Uses[id]]; ok {
						covered[name] = true
					}
				}
				return true
			})
		}
	}
	return covered
}

// corpusTypeBytes parses every `go test fuzz v1` seed file in dir and
// returns the set of type-byte values present among the seeds. Payloads
// shorter than the type-byte offset contribute nothing; unreadable or
// non-corpus files are skipped (a missing directory simply yields the
// empty set, so every constant reports a missing seed).
func corpusTypeBytes(dir string, idx int) map[int64]bool {
	out := make(map[int64]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		lines := strings.Split(string(data), "\n")
		if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
			continue
		}
		for _, line := range lines[1:] {
			rest, ok := strings.CutPrefix(strings.TrimSpace(line), "[]byte(")
			if !ok {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(rest, ")"))
			if err != nil {
				continue
			}
			if idx < len(s) {
				out[int64(s[idx])] = true
			}
		}
	}
	return out
}

// testFileIdents parses the package directory's _test.go files (which the
// loader deliberately skips) as bare ASTs and returns every identifier
// they mention — enough to know whether a constant is exercised by the
// round-trip tests without type-checking the test archive.
func testFileIdents(fset *token.FileSet, dir string) map[string]bool {
	refs := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return refs
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				refs[id.Name] = true
			}
			return true
		})
	}
	return refs
}
