package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// gospawn enforces goroutine-lifecycle tracking under internal/: every go
// statement must spawn a body the analyzer can see terminating into a
// tracked lifecycle — a sync.WaitGroup Done, a receive from a signal
// (struct{}) channel such as a done/stop/wake select, a range over a work
// channel, or a close() announcing completion to a waiter (the
// northbound.startMods in-flight idiom). Spawns of function values or
// cross-package callees cannot be body-inspected and must carry a
// //softmow:allow gospawn annotation stating why the goroutine's lifetime
// is bounded. Leaked goroutines only surface under the million-UE
// workloads the ROADMAP targets; this makes them a build failure instead.
func gospawn(p *Package) []Finding {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				body = lit.Body
			} else if fn := calleeFunc(p, g.Call); fn != nil {
				if fd, ok := decls[fn]; ok {
					body = fd.Body
				}
			}
			var why string
			switch {
			case body == nil:
				why = "spawns a function value or cross-package callee the analyzer cannot inspect"
			case !lifecycleTracked(p, body):
				why = "has no tracked lifecycle (no WaitGroup Done, done/stop channel receive, channel range, or completion close)"
			default:
				return true
			}
			out = append(out, Finding{Pos: p.Fset.Position(g.Pos()), Check: "gospawn",
				Message: "goroutine " + why +
					"; tie it to a WaitGroup or done channel, or annotate //softmow:allow gospawn <reason>"})
			return true
		})
	}
	return out
}

// lifecycleTracked reports whether a goroutine body contains a completion
// or termination signal the repo's teardown paths can wait on.
func lifecycleTracked(p *Package, body *ast.BlockStmt) bool {
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				// close(ch): the body announces completion to a waiter.
				if fun.Name == "close" && len(n.Args) == 1 && isChan(p.Info.Types[n.Args[0]].Type) {
					tracked = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" && isWaitGroupMethod(p, fun) {
					tracked = true
				}
			}
		case *ast.UnaryExpr:
			// A receive from a struct{} channel is a done/stop/wake signal;
			// receives of data channels (timer.C, result channels) are not
			// termination evidence and deliberately do not count.
			if n.Op == token.ARROW && isSignalChan(p.Info.Types[n.X].Type) {
				tracked = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel terminates when the producer closes it.
			if isChan(p.Info.Types[n.X].Type) {
				tracked = true
			}
		}
		return !tracked
	})
	return tracked
}

// isWaitGroupMethod reports whether sel resolves to a method of
// sync.WaitGroup.
func isWaitGroupMethod(p *Package, sel *ast.SelectorExpr) bool {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isSignalChan reports whether t is a channel of empty structs — the
// repo's convention for pure-signal (done/stop/wake) channels.
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
