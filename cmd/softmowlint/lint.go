package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer report, anchored to a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// checkNames is the set of valid analyzer names a //softmow:allow
// annotation may reference.
var checkNames = map[string]bool{
	"lockguard":   true,
	"determinism": true,
	"layering":    true,
	"errdiscard":  true,
	"wireparity":  true,
	"gospawn":     true,
	"metricname":  true,
	"staleallow":  true,
}

// checkNameList returns the valid check names, sorted, for diagnostics.
func checkNameList() string {
	names := make([]string, 0, len(checkNames))
	for n := range checkNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// annotation is one well-formed //softmow:allow comment. used records
// whether the annotation suppressed at least one finding this run — the
// staleallow analyzer reports the ones that never fire.
type annotation struct {
	pos   token.Position
	check string
	used  bool
}

// suppressions indexes a package's annotations by the source lines they
// cover. An annotation suppresses findings on its own line and the line
// below it, so both trailing and standalone comment placement work:
//
//	x := f() //softmow:allow errdiscard best-effort notice
//
//	//softmow:allow errdiscard best-effort notice
//	x := f()
type suppressions struct {
	// byLine maps filename → covered line → annotations covering it.
	byLine map[string]map[int][]*annotation
	// list holds every annotation once, in collection order.
	list []*annotation
}

// collectSuppressions parses //softmow:allow annotations from every file of
// the package. Malformed annotations (unknown check, missing reason) are
// themselves findings — a suppression without a stated reason defeats the
// point of the annotation.
func collectSuppressions(p *Package) (*suppressions, []Finding) {
	sup := &suppressions{byLine: make(map[string]map[int][]*annotation)}
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//softmow:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0 || !checkNames[fields[0]]:
					bad = append(bad, Finding{Pos: pos, Check: "suppression",
						Message: "softmow:allow must name a check (" + checkNameList() + ")"})
					continue
				case len(fields) < 2:
					bad = append(bad, Finding{Pos: pos, Check: "suppression",
						Message: "softmow:allow " + fields[0] + " needs a reason"})
					continue
				}
				a := &annotation{pos: pos, check: fields[0]}
				sup.list = append(sup.list, a)
				byLine := sup.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*annotation)
					sup.byLine[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine[line] = append(byLine[line], a)
				}
			}
		}
	}
	return sup, bad
}

// allowed reports whether a finding at pos is covered by an annotation,
// marking every matching annotation as used.
func (s *suppressions) allowed(check string, pos token.Position) bool {
	hit := false
	for _, a := range s.byLine[pos.Filename][pos.Line] {
		if a.check == check {
			a.used = true
			hit = true
		}
	}
	return hit
}

// filterSuppressed drops findings covered by //softmow:allow annotations
// and appends findings for malformed annotations. Per-analyzer fixture
// tests use it directly; the production configuration goes through
// applySuppressions so unused annotations are reported too.
func filterSuppressed(p *Package, findings []Finding) []Finding {
	out, _ := suppressAndMark(p, findings)
	return out
}

// suppressAndMark filters findings through the package's annotations and
// returns the survivors (malformed-annotation findings prepended) along
// with the annotation index, whose used flags now reflect this finding
// set.
func suppressAndMark(p *Package, findings []Finding) ([]Finding, *suppressions) {
	sup, bad := collectSuppressions(p)
	out := bad
	for _, f := range findings {
		if !sup.allowed(f.Check, f.Pos) {
			out = append(out, f)
		}
	}
	return out, sup
}

// applySuppressions is the production filter: findings covered by
// annotations are dropped, malformed annotations are findings, and — the
// staleallow check — so is every well-formed annotation that suppressed
// nothing, because a dead //softmow:allow re-arms silently the next time
// the code regresses. Annotations naming staleallow itself are judged in a
// second phase against the stale findings, so a deliberately kept
// suppression can be excused like any other finding.
func applySuppressions(p *Package, findings []Finding) []Finding {
	out, sup := suppressAndMark(p, findings)
	staleMsg := func(check string) string {
		return "softmow:allow " + check + " suppresses nothing; remove the stale annotation"
	}
	for _, a := range sup.list {
		if a.used || a.check == "staleallow" {
			continue
		}
		f := Finding{Pos: a.pos, Check: "staleallow", Message: staleMsg(a.check)}
		if !sup.allowed(f.Check, f.Pos) {
			out = append(out, f)
		}
	}
	for _, a := range sup.list {
		if a.check == "staleallow" && !a.used {
			out = append(out, Finding{Pos: a.pos, Check: "staleallow", Message: staleMsg(a.check)})
		}
	}
	return out
}

// sortFindings orders findings by file, line, column, then check.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// ---------------------------------------------------------------------------
// lockguard

var guardedByRE = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardAnnotation extracts the mutex field name from a struct field's doc
// or trailing comment, if annotated.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockguard enforces the `// guarded by <mutexField>` field-comment
// contract: a guarded field may only be read or written inside a function
// that locks the named sibling mutex on the same base expression (c.mu for
// an access to c.devices), or inside a helper whose name ends in "Locked"
// (callers hold the lock by convention).
//
// The check is function-granular: it looks for a Lock/RLock call anywhere
// in the enclosing top-level function (including nested closures), not for
// a dominating critical section, so it cannot prove the access is inside
// the locked region — it catches the common bug of forgetting the lock
// entirely, which is the failure mode that matters during refactors.
func lockguard(p *Package) []Finding {
	guarded := make(map[*types.Var]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mux := guardAnnotation(fld)
				if mux == "" {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mux
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			locked := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
					locked[types.ExprString(sel.X)] = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := p.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				mux, isGuarded := guarded[v]
				if !isGuarded {
					return true
				}
				want := types.ExprString(sel.X) + "." + mux
				if !locked[want] {
					out = append(out, Finding{
						Pos:   p.Fset.Position(sel.Sel.Pos()),
						Check: "lockguard",
						Message: "field " + v.Name() + " is guarded by " + mux +
							", but " + fd.Name.Name + " never locks " + want,
					})
				}
				return true
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// determinism

// pkgFunc resolves a call of the form pkg.Fn where pkg is an imported
// package name, returning the package path and function name.
func pkgFunc(p *Package, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// isSortCall reports whether a call invokes package sort or a function
// whose name mentions sorting (dataplane.SortDeviceIDs, sortedBearers, …).
func isSortCall(p *Package, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sort" {
				return true
			}
		}
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// determinism flags constructs that break seed-replay in replay-critical
// packages: wall-clock reads (time.Now), the global math/rand generator
// (replay needs the splittable simnet.RNG streams), and iteration over a
// map whose body accumulates order (append), sends on a channel, or
// performs southbound I/O. A map-range that appends is accepted when the
// enclosing function sorts afterwards — collect-then-sort is the repo's
// canonical pattern for deterministic map traversal.
func determinism(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var sortPositions []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isSortCall(p, call) {
					sortPositions = append(sortPositions, call.Pos())
				}
				return true
			})
			sortedAfter := func(pos token.Pos) bool {
				for _, sp := range sortPositions {
					if sp > pos {
						return true
					}
				}
				return false
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					pkg, fn := pkgFunc(p, n)
					if pkg == "time" && fn == "Now" {
						out = append(out, Finding{
							Pos:     p.Fset.Position(n.Pos()),
							Check:   "determinism",
							Message: "time.Now in a seed-replay-critical package; use the simnet clock or annotate",
						})
					}
					if pkg == "math/rand" && fn != "New" && fn != "NewSource" {
						out = append(out, Finding{
							Pos:     p.Fset.Position(n.Pos()),
							Check:   "determinism",
							Message: "global math/rand " + fn + " breaks seed replay; use simnet.RNG streams",
						})
					}
				case *ast.RangeStmt:
					t := p.Info.Types[n.X].Type
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					kind := orderSensitive(p, n.Body)
					if kind == "" {
						return true
					}
					if kind == "append" && sortedAfter(n.Pos()) {
						return true
					}
					out = append(out, Finding{
						Pos:   p.Fset.Position(n.Pos()),
						Check: "determinism",
						Message: "range over map with order-sensitive body (" + kind +
							"): iteration order leaks into replayable behavior; sort first",
					})
				}
				return true
			})
		}
	}
	return out
}

// orderSensitive classifies whether a map-range body leaks iteration order:
// "append" (fixable by sorting afterwards), "channel send", or "southbound
// send" (a Send method call — rule programming or wire I/O in map order).
func orderSensitive(p *Package, body *ast.BlockStmt) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			kind = "channel send"
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && kind == "" {
					kind = "append"
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Send" {
					kind = "southbound send"
					return false
				}
			}
		}
		return true
	})
	return kind
}

// ---------------------------------------------------------------------------
// layering

// layeringConfig scopes the layering analyzer to one package and names the
// raw southbound message symbols it must not touch outside the allowed
// files.
type layeringConfig struct {
	// PkgPath is the package the rule applies to.
	PkgPath string
	// AllowedFiles (base names) may construct raw southbound messages —
	// the batched/rollback-safe pipeline lives there.
	AllowedFiles map[string]bool
	// FromPath is the package exporting the forbidden symbols.
	FromPath string
	// Forbidden names the symbols (message type constants) off limits.
	Forbidden map[string]bool
}

// coreLayering is the production configuration: internal/core may only
// speak raw FlowMod/FlowModBatch/Barrier southbound messages inside
// conndevice.go and batch.go, keeping every rule modification behind the
// batched, version-rollback-safe pipeline (DESIGN.md §7).
var coreLayering = layeringConfig{
	PkgPath:      "repro/internal/core",
	AllowedFiles: map[string]bool{"conndevice.go": true, "batch.go": true},
	FromPath:     "repro/internal/southbound",
	Forbidden: map[string]bool{
		"TypeFlowMod":        true,
		"TypeFlowModBatch":   true,
		"TypeBarrierRequest": true,
		"TypeBarrierReply":   true,
	},
}

// layering reports uses of forbidden southbound symbols outside the
// allowed files of the configured package.
func layering(p *Package, cfg layeringConfig) []Finding {
	if p.Path != cfg.PkgPath {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Pos())
		if cfg.AllowedFiles[pathBase(pos.Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == cfg.FromPath && cfg.Forbidden[obj.Name()] {
				out = append(out, Finding{
					Pos:   p.Fset.Position(sel.Sel.Pos()),
					Check: "layering",
					Message: obj.Name() + " outside " + allowedList(cfg) +
						": raw rule messages must go through the batched ConnDevice pipeline",
				})
			}
			return true
		})
	}
	return out
}

func allowedList(cfg layeringConfig) string {
	names := make([]string, 0, len(cfg.AllowedFiles))
	for n := range cfg.AllowedFiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

func pathBase(p string) string {
	if i := strings.LastIndexAny(p, `/\`); i >= 0 {
		return p[i+1:]
	}
	return p
}

// ---------------------------------------------------------------------------
// errdiscard

// errdiscard flags discarded error results: assignments of an error value
// to the blank identifier, and bare statement calls of module-internal
// functions that return an error. Stdlib calls (fmt.Fprintf on a builder,
// …) are deliberately exempt from the bare-statement rule — flagging them
// would bury the real signal, mirroring docscheck's documented leniency.
func errdiscard(p *Package, modulePrefix string) []Finding {
	errType := types.Universe.Lookup("error").Type()
	isError := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }

	var out []Finding
	report := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: p.Fset.Position(pos), Check: "errdiscard", Message: msg})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					var t types.Type
					if len(n.Rhs) == len(n.Lhs) {
						t = p.Info.Types[n.Rhs[i]].Type
					} else if len(n.Rhs) == 1 {
						if tup, ok := p.Info.Types[n.Rhs[0]].Type.(*types.Tuple); ok && i < tup.Len() {
							t = tup.At(i).Type()
						}
					}
					if isError(t) {
						report(id.Pos(), "error result discarded with _; handle it or annotate why it is safe to drop")
					}
				}
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), modulePrefix) {
					return true
				}
				if resultHasError(fn, isError) {
					report(call.Pos(), fn.Name()+" returns an error that is silently dropped; handle it or annotate why")
				}
			}
			return true
		})
	}
	return out
}

// calleeFunc resolves the *types.Func a call statically invokes, or nil
// for builtins, conversions, and calls through function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func resultHasError(fn *types.Func, isError func(types.Type) bool) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isError(res.At(i).Type()) {
			return true
		}
	}
	return false
}
