package main

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
)

// metricsPkgPath is the runtime-metrics package whose constructors the
// metricname analyzer watches.
const metricsPkgPath = "repro/internal/metrics"

// prodMetricRegistry is the single source of truth for metric names, per
// package: every metrics.NewCounter / metrics.NewDurationHist name must be
// a string literal drawn from here, and every registered name must be
// minted by its package. A typo'd name today silently creates a fresh
// counter and the dashboards lie; an unminted entry is a dashboard row
// that can never move.
var prodMetricRegistry = map[string]map[string]bool{
	"repro/internal/core": {
		"core.southbound.batches":           true,
		"core.southbound.flowmods":          true,
		"core.southbound.barriers":          true,
		"core.southbound.barrier_retries":   true,
		"core.southbound.sync_roundtrips":   true,
		"core.southbound.flush_rollbacks":   true,
		"core.southbound.flush_latency":     true,
		"core.southbound.rtt_samples":       true,
		"core.southbound.rtt_observed":      true,
		"core.southbound.rtt_timeout":       true,
		"core.southbound.rtt_stale_replies": true,
		"core.discovery.probes":             true,
		"core.discovery.probe_misses":       true,
		"core.discovery.suspects":           true,
		"core.discovery.rediscoveries":      true,
		"core.pathsetup.setup_latency":      true,
		"core.pathsetup.teardown_latency":   true,
		"core.pathsetup.reroute_latency":    true,
		"core.graph.cache_hits":             true,
		"core.graph.cache_misses":           true,
		"core.graph.rebuilds":               true,
		"core.graph.build_latency":          true,
	},
	"repro/internal/reca": {
		"reca.compute.count":   true,
		"reca.compute.latency": true,
		"reca.fabric.latency":  true,
	},
	"repro/internal/ha": {
		"ha.promotions":        true,
		"ha.promotion_latency": true,
		"ha.redone_entries":    true,
		"ha.replayed_entries":  true,
		"ha.snapshots":         true,
		"ha.snapshot_bytes":    true,
		"ha.truncated_entries": true,
	},
	"repro/internal/southbound": {
		"southbound.dropped_sends": true,
	},
	"repro/internal/netem": {
		"netem.sent":              true,
		"netem.delivered":         true,
		"netem.dropped_loss":      true,
		"netem.dropped_overflow":  true,
		"netem.dropped_partition": true,
		"netem.reordered":         true,
		"netem.delay":             true,
	},
}

// metricname enforces the metric-name registry: counter/histogram names
// must be string literals, the literal must be registered for the package,
// and every registered name must actually be minted. A package that calls
// the metrics constructors without a registry entry is flagged at each
// call — growing a new metrics surface means growing the registry with it.
func metricname(p *Package, registry map[string]map[string]bool, metricsPkg string) []Finding {
	known := registry[p.Path]
	minted := make(map[string]bool)
	var out []Finding
	var anchor token.Position
	for _, f := range p.Files {
		if anchor.Line == 0 {
			// Unminted-registry findings anchor at the first file's package
			// clause — they have no call site to point at.
			anchor = p.Fset.Position(f.Name.Pos())
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pkgFunc(p, call)
			if pkg != metricsPkg || (fn != "NewCounter" && fn != "NewDurationHist") {
				return true
			}
			pos := p.Fset.Position(call.Pos())
			if len(call.Args) < 1 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				out = append(out, Finding{Pos: pos, Check: "metricname",
					Message: "metric name must be a string literal from the package registry, not a computed value"})
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			minted[name] = true
			switch {
			case known == nil:
				out = append(out, Finding{Pos: pos, Check: "metricname",
					Message: "package " + p.Path + " has no metric-name registry entry; register its names in prodMetricRegistry"})
			case !known[name]:
				out = append(out, Finding{Pos: pos, Check: "metricname",
					Message: "metric name " + strconv.Quote(name) + " is not in the package registry; fix the typo or register it"})
			}
			return true
		})
	}
	if known != nil {
		names := make([]string, 0, len(known))
		for n := range known {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if !minted[n] {
				out = append(out, Finding{Pos: anchor, Check: "metricname",
					Message: "registered metric " + strconv.Quote(n) + " is never created in this package; remove the dead registry entry"})
			}
		}
	}
	return out
}
