// Package spawngood ties every goroutine to a tracked lifecycle: a
// WaitGroup Done, a completion close, a signal-channel receive, a channel
// range, or a tracked same-package callee.
package spawngood

import "sync"

func work() {}

func viaWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func viaClose(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

func viaSignal(stop chan struct{}, wake chan struct{}) {
	go func() {
		for {
			select {
			case <-wake:
				work()
			case <-stop:
				return
			}
		}
	}()
}

func viaRange(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

func loop(done chan struct{}) {
	<-done
}

func viaNamedCallee(done chan struct{}) {
	go loop(done)
}
