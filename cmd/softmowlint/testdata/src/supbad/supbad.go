// Package supbad exercises the suppression diagnostics: annotations with
// an unknown check name or a missing reason are findings themselves.
package supbad

import "errors"

func mayFail() error { return errors.New("boom") }

func unknownCheck() {
	_ = mayFail() //softmow:allow bogus this check name does not exist
}

func missingReason() {
	//softmow:allow errdiscard
	_ = mayFail()
}
