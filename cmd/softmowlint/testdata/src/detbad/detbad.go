// Package detbad violates the determinism contract for seed-replay-critical
// packages: wall-clock reads, the global math/rand generator, and map
// iteration whose order leaks into replayable behavior.
package detbad

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want determinism
}

func roll() int {
	return rand.Intn(6) // want determinism
}

func drain(m map[string]int, ch chan int) {
	for _, v := range m { // want determinism
		ch <- v
	}
}

func collectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m { // want determinism
		out = append(out, v)
	}
	return out
}

type sender struct{}

func (sender) Send(int) error { return nil }

func emit(m map[string]int, s sender) {
	for _, v := range m { // want determinism
		if err := s.Send(v); err != nil {
			return
		}
	}
}
