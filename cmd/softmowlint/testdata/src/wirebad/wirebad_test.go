package wirebad

import "testing"

// TestRoundTrip references the covered constants the way the real codec's
// round-trip suite enumerates the message set. TypeC is deliberately
// absent.
func TestRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{TypeA, TypeB} {
		if got := appendBody(nil, typ); len(got) != 1 {
			t.Fatalf("bad body for %d: %v", typ, got)
		}
	}
}
