// Package wirebad violates wire-protocol parity: TypeB has no decode
// case, and TypeC has no codec, corpus, or test coverage at all.
package wirebad

// MsgType is the fixture's wire message-type enum.
type MsgType uint8

// TypeA is fully covered; TypeB misses only the decode case; TypeC
// misses everything; TypeD misses everything but is annotated.
const (
	TypeA MsgType = iota
	TypeB // want wireparity
	TypeC // want wireparity
	//softmow:allow wireparity reserved type, its codec lands with the next protocol bump
	TypeD
)

func appendBody(buf []byte, t MsgType) []byte {
	switch t {
	case TypeA:
		return append(buf, 'a')
	case TypeB:
		return append(buf, 'b')
	}
	return buf
}

func decodeBody(t MsgType) bool {
	switch t {
	case TypeA:
		return true
	}
	return false
}
