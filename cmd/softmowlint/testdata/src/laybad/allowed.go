package laybad

import "repro/internal/southbound"

// pipelineMod lives in an allowed file (the test config whitelists
// allowed.go), so raw message construction is fine here.
func pipelineMod() southbound.Msg {
	return southbound.Msg{Type: southbound.TypeFlowModBatch}
}
