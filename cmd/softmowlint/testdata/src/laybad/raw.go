// Package laybad violates the layering contract: raw southbound message
// type constants are used outside the allowed pipeline files.
package laybad

import "repro/internal/southbound"

func rawMod() southbound.MsgType {
	return southbound.TypeFlowMod // want layering
}

func rawBarrier() southbound.Msg {
	return southbound.Msg{Type: southbound.TypeBarrierRequest} // want layering
}
