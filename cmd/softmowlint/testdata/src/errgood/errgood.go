// Package errgood satisfies the errdiscard contract: errors are handled,
// or their discard is annotated; stdlib bare calls are exempt by design.
package errgood

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func handled() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

func allowedDrop() {
	_ = mayFail() //softmow:allow errdiscard fixture demonstrating an annotated best-effort call
}

// stdlibBare shows the documented leniency: bare stdlib calls that return
// errors are not flagged (the signal lives in module-internal calls).
func stdlibBare() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ok")
	return b.String()
}
