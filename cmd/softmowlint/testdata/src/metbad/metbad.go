// Package metbad violates the metric-name registry contract: a typo'd
// literal, a computed name, and a registered name that is never minted
// (anchored at the package clause).
package metbad // want metricname

import "repro/internal/metrics"

var (
	requests = metrics.NewCounter("metbad.requests")
	typo     = metrics.NewCounter("metbad.reqests") // want metricname
)

func computed(name string) *metrics.Counter {
	return metrics.NewCounter(name) // want metricname
}

func annotatedComputed(name string) *metrics.Counter {
	//softmow:allow metricname harness-assembled name, validated by the caller against the registry
	return metrics.NewCounter(name)
}
