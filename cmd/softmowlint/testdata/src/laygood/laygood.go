// Package laygood satisfies the layering contract: the one raw message
// reference carries an annotation, everything else speaks Msg values
// without the forbidden type constants.
package laygood

import "repro/internal/southbound"

//softmow:allow layering wire-compat shim exercised by the suppression test
var raw = southbound.TypeFlowMod

func echo() southbound.Msg {
	return southbound.Msg{Type: southbound.TypeEchoRequest}
}
