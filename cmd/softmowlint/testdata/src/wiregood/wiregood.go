// Package wiregood keeps wire-protocol parity: every enum constant has
// an encode case, a decode case (via a combined clause), a corpus seed,
// and a test reference.
package wiregood

// MsgType is the fixture's wire message-type enum.
type MsgType uint8

// TypeOne and TypeTwo are both fully covered.
const (
	TypeOne MsgType = iota
	TypeTwo
)

func appendBody(buf []byte, t MsgType) []byte {
	switch t {
	case TypeOne:
		return append(buf, 1)
	case TypeTwo:
		return append(buf, 2)
	}
	return buf
}

func decodeBody(t MsgType) bool {
	switch t {
	case TypeOne, TypeTwo:
		return true
	}
	return false
}
