package wiregood

import "testing"

// TestRoundTrip references every constant.
func TestRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{TypeOne, TypeTwo} {
		if !decodeBody(typ) {
			t.Fatalf("decode failed for %d", typ)
		}
	}
}
