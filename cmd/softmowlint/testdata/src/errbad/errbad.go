// Package errbad violates the errdiscard contract: error results are
// dropped with _ or as bare statements without an annotation.
package errbad

import "errors"

func mayFail() error { return errors.New("boom") }

func twoVals() (int, error) { return 0, errors.New("boom") }

func drop() {
	_ = mayFail() // want errdiscard
}

func bare() {
	mayFail() // want errdiscard
}

func dropTuple() {
	_, _ = twoVals() // want errdiscard
}
