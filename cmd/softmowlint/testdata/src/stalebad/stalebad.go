// Package stalebad carries suppressions that no longer suppress
// anything: a dead errdiscard annotation and a dead staleallow
// annotation, alongside a live one that must not be flagged.
package stalebad

import "errors"

func mayFail() error { return errors.New("boom") }

func live() {
	_ = mayFail() //softmow:allow errdiscard the fixture only cares that this call happens
}

func dead() {
	//softmow:allow errdiscard nothing below discards an error anymore // want staleallow
	err := mayFail()
	if err != nil {
		return
	}
}

func deadStale() {
	//softmow:allow staleallow the annotation below is live, so this excuse is itself stale // want staleallow
	_ = mayFail() //softmow:allow errdiscard the fixture only cares that this call happens
}
