// Package lockgood satisfies the lockguard contract: guarded fields are
// only touched under their mutex, in *Locked helpers, or under an
// explicit annotation.
package lockgood

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the count, guarded by mu.
	n int
	// hint is unguarded; accesses anywhere are fine.
	hint int
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bumpLocked is called with c.mu held, per the *Locked naming convention.
func (c *counter) bumpLocked() {
	c.n++
}

func (c *counter) read() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// newCounter touches the field before the value escapes; the annotation
// records why that is safe.
func newCounter() *counter {
	c := &counter{}
	//softmow:allow lockguard construction, the value has not escaped yet
	c.n = 1
	c.hint = 2
	return c
}
