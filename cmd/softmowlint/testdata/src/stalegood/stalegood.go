// Package stalegood keeps its suppression inventory honest: the one
// annotation that is dead by design is excused by a staleallow
// annotation covering it.
package stalegood

import "errors"

func mayFail() error { return errors.New("boom") }

func live() {
	_ = mayFail() //softmow:allow errdiscard the fixture only cares that this call happens
}

func excused() {
	//softmow:allow staleallow the discard below returns with the next fixture revision
	//softmow:allow errdiscard kept for the next fixture revision
	err := mayFail()
	if err != nil {
		return
	}
}
