// Package lockbad violates the lockguard contract: a field annotated
// `guarded by mu` is accessed in functions that never lock the mutex.
package lockbad

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the count, guarded by mu.
	n int
}

func (c *counter) bump() {
	c.n++ // want lockguard
}

func (c *counter) read() int {
	return c.n // want lockguard
}

// wrongLock locks a different expression's mutex, which does not cover c.
func wrongLock(c, other *counter) {
	other.mu.Lock()
	defer other.mu.Unlock()
	c.n++ // want lockguard
}
