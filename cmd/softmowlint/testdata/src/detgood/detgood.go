// Package detgood satisfies the determinism contract: instance RNGs,
// collect-then-sort map traversal, and annotated metric timing.
package detgood

import (
	"math/rand"
	"sort"
	"time"
)

// seeded builds an instance generator — New/NewSource are the replayable
// way to use math/rand.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func stampAllowed() time.Time {
	return time.Now() //softmow:allow determinism metric timing only, never control decisions
}

func collectSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// readOnly ranges a map without leaking order anywhere.
func readOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
