// Package metgood mints exactly its registered names, all as string
// literals.
package metgood

import "repro/internal/metrics"

var (
	requests = metrics.NewCounter("metgood.requests")
	latency  = metrics.NewDurationHist("metgood.latency")
)
