// Package spawnbad leaks goroutines: go statements whose bodies carry no
// tracked lifecycle, and spawns the analyzer cannot inspect.
package spawnbad

import "sync"

func work() {}

func untrackedLit() {
	go func() { // want gospawn
		work()
	}()
}

func untrackedCallee() {
	go work() // want gospawn
}

func funcValue(f func()) {
	go f() // want gospawn
}

func annotatedValue(f func()) {
	//softmow:allow gospawn the callee's lifetime is bounded by the test that passes it in
	go f()
}

func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}
