// Command softmowlint enforces the repository's cross-cutting invariants as
// compile-gated static analysis, using only the standard library (go/parser,
// go/ast, go/types with a recursive source loader — the stdlib-only
// precedent set by cmd/docscheck). Eight analyzers run over ./internal/...
// and ./cmd/...:
//
//   - lockguard: struct fields annotated `// guarded by <mutexField>` may
//     only be accessed in functions that lock that mutex on the same base
//     expression, or in helpers named *Locked.
//   - determinism: seed-replay-critical packages must not read the wall
//     clock, use the global math/rand generator, or let map iteration order
//     reach replayable behavior (append without a later sort, channel or
//     southbound sends inside a map range).
//   - layering: outside conndevice.go/batch.go, internal/core must not
//     construct raw TypeFlowMod/TypeFlowModBatch/TypeBarrier* messages —
//     rule programming stays behind the batched, rollback-safe pipeline.
//   - errdiscard: no `_ =` or bare-statement discard of an error under
//     internal/ without an annotation stating why.
//   - wireparity: every southbound.MsgType constant must have an appendBody
//     encode case, a decodeBody decode case, a committed FuzzFrameDecode
//     corpus seed, and a reference in the package tests — codec coverage
//     cannot drift from the message set.
//   - gospawn: every go statement under internal/ must spawn a body tied to
//     a tracked lifecycle (WaitGroup Done, done/stop signal-channel receive,
//     channel range, or completion close), or carry an annotation saying
//     why fire-and-forget is safe.
//   - metricname: metrics counter/histogram names must be string literals
//     drawn from the per-package registry of known names, and every
//     registered name must be minted — a typo creates a silent new counter
//     and the dashboards lie.
//   - staleallow: a //softmow:allow annotation that no longer suppresses
//     any finding is itself a finding, keeping the suppression inventory
//     honest as code moves.
//
// Findings are suppressed in source with `//softmow:allow <check> <reason>`
// on the offending line or the line above; the reason is mandatory.
//
// Usage:
//
//	go run ./cmd/softmowlint [-stats] [-report file] [packages...]
//
// With no arguments every package under internal/ and cmd/ is checked
// (testdata trees excluded). -stats prints per-analyzer finding counts and
// wall time; -report writes the same table (plus every finding) to a file
// for CI artifacts. Exit status is 1 when any unsuppressed finding is
// reported and 2 when a package fails to load or type-check.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// determinismPkgs lists the seed-replay-critical packages: everything the
// chaos harness's byte-identical seed replay flows through (core rule
// programming, the harness itself, the wire protocol, the virtual clock)
// plus the NIB, whose accessor and notification order reaches the replay
// log, the workload engine, whose schedule and state digests must be
// pure functions of (seed, config), and the HA snapshot/promotion layer,
// whose checkpoint and redo order the failover smoke replays byte-for-byte,
// and the northbound wire link, whose message and interdomain push order
// the distributed replay-digest comparison depends on, and the netem
// impairment model, whose per-link drop/jitter streams must be pure
// functions of (seed, profile) for impaired-run digests to replay.
var determinismPkgs = map[string]bool{
	"repro/internal/core":       true,
	"repro/internal/chaos":      true,
	"repro/internal/southbound": true,
	"repro/internal/simnet":     true,
	"repro/internal/nib":        true,
	"repro/internal/workload":   true,
	"repro/internal/ha":         true,
	"repro/internal/northbound": true,
	"repro/internal/netem":      true,
}

// analyzerNames lists every analyzer in run order, for the stats table.
var analyzerNames = []string{
	"lockguard", "determinism", "layering", "errdiscard",
	"wireparity", "gospawn", "metricname", "staleallow",
}

// lintStats accumulates per-analyzer finding counts and wall time across a
// run; nil disables collection.
type lintStats struct {
	findings map[string]int
	elapsed  map[string]time.Duration
	packages int
}

func newLintStats() *lintStats {
	return &lintStats{findings: make(map[string]int), elapsed: make(map[string]time.Duration)}
}

// table renders the per-analyzer summary the -stats flag and the CI
// report artifact show.
func (st *lintStats) table(total time.Duration) string {
	var b strings.Builder
	all := 0
	for _, n := range st.findings {
		all += n
	}
	fmt.Fprintf(&b, "softmowlint: %d analyzers, %d packages, %d finding(s), %v total\n",
		len(analyzerNames), st.packages, all, total.Round(time.Millisecond))
	names := append([]string(nil), analyzerNames...)
	if st.findings["suppression"] > 0 {
		names = append(names, "suppression")
	}
	for _, name := range names {
		fmt.Fprintf(&b, "  %-12s %4d finding(s)  %8v\n",
			name, st.findings[name], st.elapsed[name].Round(time.Millisecond))
	}
	return b.String()
}

// runConfigured executes every analyzer that applies to the package under
// the production configuration, filters suppressed findings, and reports
// stale suppressions. st may be nil.
func runConfigured(p *Package, st *lintStats) []Finding {
	var fs []Finding
	run := func(name string, f func() []Finding) {
		start := time.Now()
		fs = append(fs, f()...)
		if st != nil {
			st.elapsed[name] += time.Since(start)
		}
	}
	run("lockguard", func() []Finding { return lockguard(p) })
	if determinismPkgs[p.Path] {
		run("determinism", func() []Finding { return determinism(p) })
	}
	run("layering", func() []Finding { return layering(p, coreLayering) })
	if strings.HasPrefix(p.Path, "repro/internal/") {
		run("errdiscard", func() []Finding { return errdiscard(p, "repro/") })
		run("gospawn", func() []Finding { return gospawn(p) })
	}
	run("wireparity", func() []Finding { return wireparity(p, southboundWireparity) })
	run("metricname", func() []Finding { return metricname(p, prodMetricRegistry, metricsPkgPath) })
	var out []Finding
	run("staleallow", func() []Finding { out = applySuppressions(p, fs); return nil })
	if st != nil {
		st.packages++
		for _, f := range out {
			st.findings[f.Check]++
		}
	}
	return out
}

// listPackages enumerates package import paths under the given roots
// (directories relative to repoRoot), skipping testdata trees and
// directories without non-test Go files.
func listPackages(repoRoot, module string, roots []string) ([]string, error) {
	var out []string
	for _, root := range roots {
		base := filepath.Join(repoRoot, root)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range entries {
				n := e.Name()
				if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
					rel, err := filepath.Rel(repoRoot, path)
					if err != nil {
						return err
					}
					out = append(out, module+"/"+filepath.ToSlash(rel))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func main() {
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall time")
	report := flag.String("report", "", "write findings and the per-analyzer table to this file")
	flag.Parse()
	start := time.Now()

	repoRoot, module, err := findRepoRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "softmowlint:", err)
		os.Exit(2)
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs, err = listPackages(repoRoot, module, []string{"internal", "cmd"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "softmowlint:", err)
			os.Exit(2)
		}
	}

	loader := NewLoader(repoRoot, module)
	st := newLintStats()
	loadFailed := false
	var findings []Finding
	for _, ip := range pkgs {
		p, err := loader.Load(ip)
		if err != nil {
			fmt.Fprintln(os.Stderr, "softmowlint:", err)
			loadFailed = true
			continue
		}
		findings = append(findings, runConfigured(p, st)...)
	}
	sortFindings(findings)
	var lines strings.Builder
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(repoRoot, rel); err == nil {
			rel = r
		}
		fmt.Fprintf(&lines, "%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
	}
	fmt.Fprint(os.Stderr, lines.String())
	table := st.table(time.Since(start))
	if *stats {
		fmt.Fprint(os.Stderr, table)
	}
	if *report != "" {
		if err := os.WriteFile(*report, []byte(table+lines.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "softmowlint: write report:", err)
		}
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "softmowlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
