// Command softmowlint enforces the repository's cross-cutting invariants as
// compile-gated static analysis, using only the standard library (go/parser,
// go/ast, go/types with a recursive source loader — the stdlib-only
// precedent set by cmd/docscheck). Four analyzers run over ./internal/...
// and ./cmd/...:
//
//   - lockguard: struct fields annotated `// guarded by <mutexField>` may
//     only be accessed in functions that lock that mutex on the same base
//     expression, or in helpers named *Locked.
//   - determinism: seed-replay-critical packages must not read the wall
//     clock, use the global math/rand generator, or let map iteration order
//     reach replayable behavior (append without a later sort, channel or
//     southbound sends inside a map range).
//   - layering: outside conndevice.go/batch.go, internal/core must not
//     construct raw TypeFlowMod/TypeFlowModBatch/TypeBarrier* messages —
//     rule programming stays behind the batched, rollback-safe pipeline.
//   - errdiscard: no `_ =` or bare-statement discard of an error under
//     internal/ without an annotation stating why.
//
// Findings are suppressed in source with `//softmow:allow <check> <reason>`
// on the offending line or the line above; the reason is mandatory.
//
// Usage:
//
//	go run ./cmd/softmowlint [packages...]
//
// With no arguments every package under internal/ and cmd/ is checked
// (testdata trees excluded). Exit status is 1 when any unsuppressed finding
// is reported and 2 when a package fails to load or type-check.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// determinismPkgs lists the seed-replay-critical packages: everything the
// chaos harness's byte-identical seed replay flows through (core rule
// programming, the harness itself, the wire protocol, the virtual clock)
// plus the NIB, whose accessor and notification order reaches the replay
// log, the workload engine, whose schedule and state digests must be
// pure functions of (seed, config), and the HA snapshot/promotion layer,
// whose checkpoint and redo order the failover smoke replays byte-for-byte.
var determinismPkgs = map[string]bool{
	"repro/internal/core":       true,
	"repro/internal/chaos":      true,
	"repro/internal/southbound": true,
	"repro/internal/simnet":     true,
	"repro/internal/nib":        true,
	"repro/internal/workload":   true,
	"repro/internal/ha":         true,
}

// runConfigured executes every analyzer that applies to the package under
// the production configuration and filters suppressed findings.
func runConfigured(p *Package) []Finding {
	var fs []Finding
	fs = append(fs, lockguard(p)...)
	if determinismPkgs[p.Path] {
		fs = append(fs, determinism(p)...)
	}
	fs = append(fs, layering(p, coreLayering)...)
	if strings.HasPrefix(p.Path, "repro/internal/") {
		fs = append(fs, errdiscard(p, "repro/")...)
	}
	return filterSuppressed(p, fs)
}

// listPackages enumerates package import paths under the given roots
// (directories relative to repoRoot), skipping testdata trees and
// directories without non-test Go files.
func listPackages(repoRoot, module string, roots []string) ([]string, error) {
	var out []string
	for _, root := range roots {
		base := filepath.Join(repoRoot, root)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range entries {
				n := e.Name()
				if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
					rel, err := filepath.Rel(repoRoot, path)
					if err != nil {
						return err
					}
					out = append(out, module+"/"+filepath.ToSlash(rel))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func main() {
	repoRoot, module, err := findRepoRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "softmowlint:", err)
		os.Exit(2)
	}
	pkgs := os.Args[1:]
	if len(pkgs) == 0 {
		pkgs, err = listPackages(repoRoot, module, []string{"internal", "cmd"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "softmowlint:", err)
			os.Exit(2)
		}
	}

	loader := NewLoader(repoRoot, module)
	loadFailed := false
	var findings []Finding
	for _, ip := range pkgs {
		p, err := loader.Load(ip)
		if err != nil {
			fmt.Fprintln(os.Stderr, "softmowlint:", err)
			loadFailed = true
			continue
		}
		findings = append(findings, runConfigured(p)...)
	}
	sortFindings(findings)
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(repoRoot, rel); err == nil {
			rel = r
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "softmowlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
