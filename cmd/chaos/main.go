// Command chaos runs the randomized fault-injection harness against a
// multi-region SoftMoW hierarchy, checking global invariants after every
// event. Every run prints its seed; replay a failure exactly with:
//
//	go run ./cmd/chaos -seed <printed seed> [-events N] [-regions R] [-v]
//
// With -events 0 the harness runs unbounded (batches of 100) until an
// invariant breaks or the process is killed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
)

func main() {
	seed := flag.Int64("seed", 0, "PRNG seed (0 = derive from wall clock)")
	events := flag.Int("events", 500, "number of fault events to inject (0 = unbounded)")
	regions := flag.Int("regions", 3, "number of leaf regions in the ring")
	verbose := flag.Bool("v", false, "stream the event log")
	snapEvery := flag.Int("snapshot-every", 64, "checkpoint each HA pair's replica every N committed log entries (0 = never snapshot, promotion replays full history)")
	showMetrics := flag.Bool("metrics", false, "dump runtime metrics (graph-cache counters, recompute latency) after the run")
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("chaos: seed %d (replay: go run ./cmd/chaos -seed %d -events %d -regions %d)\n",
		*seed, *seed, *events, *regions)

	h, err := chaos.New(chaos.Options{
		Seed: *seed, Regions: *regions, Verbose: *verbose, LogTo: os.Stdout,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "\nINVARIANT VIOLATION: %v\n", err)
		fmt.Fprintf(os.Stderr, "replay: go run ./cmd/chaos -seed %d -events %d -regions %d -v\n",
			*seed, *events, *regions)
		os.Exit(1)
	}

	if *events > 0 {
		if err := h.Run(*events); err != nil {
			fail(err)
		}
	} else {
		for {
			if err := h.Run(100); err != nil {
				fail(err)
			}
			fmt.Printf("chaos: %d events, all invariants hold\n", h.Stats().Events)
		}
	}

	s := h.Stats()
	fmt.Printf("chaos: PASS — %d events, %d bearers added, %d teardowns, %d link failures, "+
		"%d restores, %d flaps, %d silent port-downs, %d install-fault trials (%d fired), "+
		"%d failovers (%d redone, %d replayed on promote), %d reconfigs, %d repairs-by-probe, %d retries\n",
		s.Events, s.BearersAdded, s.Teardowns, s.LinkFails, s.LinkRestores, s.Flaps,
		s.SilentPortDowns, s.InstallFaults, s.FaultsInjected, s.Failovers,
		s.RedoneOnPromote, s.ReplayedOnPromote, s.Reconfigs, s.Redos, s.Retries)
	if *showMetrics {
		fmt.Println("runtime metrics:")
		metrics.WriteRuntime(os.Stdout)
	}
}
