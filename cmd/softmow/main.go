// Command softmow runs the full SoftMoW stack end-to-end on a synthetic
// cellular WAN: it generates a RocketFuel-class topology, partitions it
// into leaf regions, bootstraps the recursive controller hierarchy
// (discovery → abstraction → interdomain routes), admits UE bearers
// through the mobility application, drives real packets through the
// programmed data plane, performs intra- and inter-region handovers, and
// prints per-controller statistics.
//
//	softmow -switches 64 -regions 4 -bs 60 -ues 24
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/experiments"
	"repro/internal/interdomain"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func main() {
	switches := flag.Int("switches", 64, "core switch count")
	regions := flag.Int("regions", 4, "leaf region count")
	bs := flag.Int("bs", 60, "base station count")
	ues := flag.Int("ues", 24, "UE bearers to admit")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	if err := run(*switches, *regions, *bs, *ues, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "softmow: %v\n", err)
		os.Exit(1)
	}
}

func run(switches, regions, bs, ues int, seed int64) error {
	fmt.Printf("Composing cellular WAN: %d switches, %d regions, %d base stations...\n",
		switches, regions, bs)
	ev, err := experiments.BuildEval(experiments.Params{
		Seed: seed, Switches: switches, Regions: regions, BS: bs,
		Prefixes: 200, Egress: (regions+1)/2, UEs: 100000,
	})
	if err != nil {
		return err
	}
	h := ev.H

	fmt.Printf("Hierarchy: root + %d leaves; root discovered %d inter-G-switch links\n",
		len(h.Leaves), h.Root.NIB.NumLinks())
	for _, leaf := range h.Leaves {
		ab := leaf.Abstraction()
		fmt.Printf("  %s: %d switches, %d links, %d border ports exposed (%.1f%%)\n",
			leaf.ID, ab.Stats.Devices, ab.Stats.Links, ab.Stats.ExposedPorts, ab.Stats.ExposedPct())
	}

	// Admit bearers: one UE per sampled base station, prefix by index.
	fmt.Printf("\nAdmitting %d UE bearers...\n", ues)
	rng := simnet.RNG(seed, "softmow-demo")
	prefixes := ev.Table.Prefixes()
	type admitted struct {
		ue    string
		leaf  *core.Controller
		radio dataplane.PortRef
		pfx   interdomain.PrefixID
		qos   int
	}
	var flows []admitted
	delivered, local, delegated := 0, 0, 0
	for i := 0; i < ues; i++ {
		bsID := ev.Model.BSIDs[rng.Intn(len(ev.Model.BSIDs))]
		group := ev.Model.GroupOf[bsID]
		leaf := h.Leaves[ev.GroupRegion[group]]
		ue := fmt.Sprintf("ue%04d", i)
		pfx := prefixes[rng.Intn(len(prefixes))]
		qos := 1 + i%4
		rec, err := leaf.HandleBearerRequest(core.BearerRequest{
			UE: ue, BS: bsID, Prefix: pfx, QoS: qos,
		})
		if err != nil {
			fmt.Printf("  %s via %s: REJECTED (%v)\n", ue, leaf.ID, err)
			continue
		}
		if rec.HandledBy == leaf {
			local++
		} else {
			delegated++
		}
		flows = append(flows, admitted{ue: ue, leaf: leaf, radio: ev.GroupAttach[group], pfx: pfx, qos: qos})
	}
	fmt.Printf("  admitted %d (locally routed: %d, delegated to root: %d)\n",
		len(flows), local, delegated)

	// Drive packets through the physical data plane and verify the §4.3
	// single-label invariant.
	maxDepth := 0
	for _, f := range flows {
		pkt := &dataplane.Packet{UE: f.ue, DstPrefix: string(f.pfx), QoS: f.qos}
		res, err := ev.Topo.Net.Inject(f.radio.Dev, f.radio.Port, pkt)
		if err != nil {
			return err
		}
		if res.Disposition == dataplane.DispEgressed {
			delivered++
		}
		if res.MaxLabelDepth > maxDepth {
			maxDepth = res.MaxLabelDepth
		}
	}
	fmt.Printf("\nDrove %d packets: %d egressed to the Internet, max on-link label depth %d (invariant: ≤1)\n",
		len(flows), delivered, maxDepth)

	// Trace replay: two peak-hour minutes of the synthetic LTE trace
	// through the live control plane (bearers, intra/inter-region
	// handovers, packet validation).
	fmt.Println("\nReplaying 2 peak-hour trace minutes through the control plane...")
	stats, err := experiments.ReplayTrace(ev, 13*60, 13*60+2, 0.01)
	if err != nil {
		return err
	}
	fmt.Printf("  %d events: %d bearers admitted (%d rejected), %d intra-region + %d inter-region handovers\n",
		stats.Events, stats.Bearers, stats.BearerFailures, stats.IntraHandovers, stats.InterHandovers)
	fmt.Printf("  %d/%d packets egressed; max on-link label depth %d\n",
		stats.Delivered, stats.Delivered+stats.Undelivered, stats.MaxLabelDepth)

	// Controller statistics.
	t := metrics.NewTable("\nController statistics",
		"Controller", "Level", "Rules", "Translated", "Bearers", "Delegated", "Links")
	for _, c := range append(append([]*core.Controller{}, h.Leaves...), h.Root) {
		s := c.StatsSnapshot()
		t.AddRow(c.ID, c.Level, s.RulesInstalled, s.RulesTranslated,
			s.BearersHandled, s.DelegatedRequests, s.LinksDiscovered)
	}
	fmt.Println(t.String())
	return nil
}
