package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/workload"
)

// impairScenario is one row of the -impair-matrix run plan.
type impairScenario struct {
	name    string
	profile netem.Profile
	// fixed disables adaptive fence timeouts — the comparison baseline.
	fixed bool
	// fence overrides the fixed request timeout (0 = ConnDevice default).
	fence time.Duration
	// bestEffort exempts a deliberately mis-tuned baseline from the
	// zero-failure and digest-equality gates (its failures ARE the data).
	bestEffort bool
	// partition runs the schedule in two quiesced halves around a hard
	// region-0 control-channel partition with liveness-driven recovery.
	partition bool
}

// impairMatrix is the default scenario set: a clean reference, loss and
// jitter alone and combined, the combined profile under fixed timeouts
// (the baseline adaptive deadlines are measured against), and a
// scheduled partition with liveness recovery.
func impairMatrix() []impairScenario {
	lossy := netem.Profile{Loss: 0.01}
	jittery := netem.Profile{Jitter: 2 * time.Millisecond}
	both := netem.Profile{Loss: 0.01, Jitter: 2 * time.Millisecond}
	return []impairScenario{
		{name: "clean"},
		{name: "lossy", profile: lossy},
		{name: "jittery", profile: jittery},
		{name: "lossy+jittery", profile: both},
		// Two fixed-timeout baselines bracket the adaptive estimator: the
		// default (long) constant stalls a full RequestTimeout on every
		// loss, the tight constant fires spuriously under jitter — and at
		// scale exhausts its retry budget outright, so it is best-effort:
		// its failures are the pathology adaptive timeouts exist to avoid.
		{name: "lossy+jittery-fixed", profile: both, fixed: true},
		{name: "lossy+jittery-fixed-tight", profile: both, fixed: true,
			fence: 4 * time.Millisecond, bestEffort: true},
		{name: "partitioned", partition: true},
	}
}

// counterDelta reads the named process-global counter's growth since the
// snapshot in before.
func counterDelta(before map[string]int64, name string) int64 {
	return metrics.RuntimeCounters()[name] - before[name]
}

// runImpairMatrix executes every scenario at the shared (seed, config)
// and cross-checks that all of them land on the clean scenario's replay
// digests — impairment may move timings, never logical state. It returns
// the matrix section, or an error naming the first diverging scenario.
func runImpairMatrix(cfg workload.Config) (*workload.ImpairmentMatrix, error) {
	m := &workload.ImpairmentMatrix{}
	for _, sc := range impairMatrix() {
		row, err := runImpairScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		m.Scenarios = append(m.Scenarios, *row)
	}
	ref := m.Scenarios[0]
	for _, row := range m.Scenarios[1:] {
		if row.BestEffort {
			continue
		}
		if row.TraceDigest != ref.TraceDigest || row.StateDigest != ref.StateDigest {
			return nil, fmt.Errorf("scenario %s diverged from clean: trace %s/%s state %s/%s",
				row.Name, row.TraceDigest, ref.TraceDigest, row.StateDigest, ref.StateDigest)
		}
		if row.Failures > 0 {
			return nil, fmt.Errorf("scenario %s failed %d ops", row.Name, row.Failures)
		}
	}
	return m, nil
}

// runImpairScenario executes one scenario pass and assembles its row.
func runImpairScenario(cfg workload.Config, sc impairScenario) (*workload.ImpairmentScenario, error) {
	if !sc.profile.IsZero() {
		p := sc.profile
		cfg.Impair = &p
	} else {
		cfg.Impair = nil
	}
	cfg.FixedTimeout = sc.fixed
	cfg.FenceTimeout = sc.fence
	before := metrics.RuntimeCounters()
	eng, cl, err := workload.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	ops, err := workload.GenerateSchedule(cfg)
	if err != nil {
		return nil, err
	}
	row := &workload.ImpairmentScenario{
		Name:       sc.name,
		Profile:    cfg.EffectiveProfile(),
		Adaptive:   !sc.fixed,
		BestEffort: sc.bestEffort,
	}
	var res *workload.Result
	if sc.partition {
		res, row.Partition, err = runPartitioned(cfg, eng, cl, ops)
		if err != nil {
			return nil, err
		}
	} else {
		res = eng.RunOps(ops)
	}
	if res.FirstErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: impair %s: first failure: %v\n", sc.name, res.FirstErr)
	}
	row.Events = len(ops)
	row.Failures = res.Failures
	row.ElapsedSec = res.Elapsed.Seconds()
	row.EventsPerSec = res.EventsPerSec()
	row.TraceDigest = workload.TraceDigest(ops)
	row.StateDigest = workload.StateDigest(cl)
	row.Netem = cl.ImpairmentStats()
	row.RTTSamples = counterDelta(before, "core.southbound.rtt_samples")
	row.BarrierRetries = counterDelta(before, "core.southbound.barrier_retries")
	row.StaleReplies = counterDelta(before, "core.southbound.rtt_stale_replies")
	return row, nil
}

// runPartitioned executes the schedule in two quiesced halves around a
// hard partition of region 0's control channels: the first half runs
// clean, the liveness prober then detects the dark region (suspects, NIB
// links down), the partition heals, targeted rediscovery restores the
// links, and the second half runs to completion. Because the partition
// window contains no operations, the replay digests must still equal the
// clean scenario's.
func runPartitioned(cfg workload.Config, eng *workload.Engine, cl *workload.Cluster, ops []workload.Op) (*workload.Result, *workload.PartitionOutcome, error) {
	leaf := cl.Regions[0].Leaf
	upBefore := leaf.NIB.NumUpLinks()
	prober := core.NewLivenessProber(leaf, core.LivenessConfig{
		Interval:     time.Hour, // rounds driven explicitly below
		Timeout:      50 * time.Millisecond,
		SuspectAfter: 2,
	})
	half := len(ops) / 2
	res1 := eng.RunOps(ops[:half])

	cl.SetRegionDown(0, true)
	prober.ProbeOnce()
	prober.ProbeOnce()
	suspects := len(prober.Suspects())
	cl.SetRegionDown(0, false)
	prober.ProbeOnce()
	restored := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if leaf.NIB.NumUpLinks() == upBefore {
			restored = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := prober.Stats()
	outcome := &workload.PartitionOutcome{
		Suspects:      int64(suspects),
		Rediscoveries: st.Rediscoveries,
		LinksRestored: restored,
	}
	if suspects == 0 {
		return nil, nil, fmt.Errorf("partition declared no suspects")
	}
	if !restored {
		return nil, nil, fmt.Errorf("liveness recovery left %d/%d links up",
			leaf.NIB.NumUpLinks(), upBefore)
	}

	res2 := eng.RunOps(ops[half:])
	// The engine accumulates per-op histograms across both RunOps calls;
	// merge only the whole-run aggregates the row reports.
	res2.Elapsed += res1.Elapsed
	res2.Stalls += res1.Stalls
	if res2.FirstErr == nil {
		res2.FirstErr = res1.FirstErr
	}
	res2.Ops = ops
	return res2, outcome, nil
}
