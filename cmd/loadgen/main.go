// Command loadgen drives the deterministic UE workload engine against an
// N-region hierarchy and writes BENCH_workload.json: sustained events/sec,
// p50/p99 latency per operation type, replay digests, and (with -compare)
// the sharded-versus-single-mutex UE store throughput comparison.
//
// The schedule and final logical UE-table state depend only on the seed
// and config; two runs with the same -seed print identical trace_digest
// and state_digest values. Typical invocations:
//
//	go run ./cmd/loadgen -seed 1 -regions 4 -ues 100000 -events 400000
//	go run ./cmd/loadgen -seed 1 -compare -shards 16   # baseline speedup
//	go run ./cmd/loadgen -seed 1 -mode open -rate 20000 -inflight 256
//	go run ./cmd/loadgen -seed 1 -lte-minute 720       # noon diurnal mix
//
// With -procs N the run is distributed: the process becomes the cluster
// launcher, hosting the root controller and spawning N region processes
// (itself re-exec'd with -as-region, or the binary named by -region-bin,
// e.g. a built cmd/region). The regions are split contiguously among the
// processes, each builds only its slice of the data plane, and the tree
// is assembled over localhost TCP northbound connections. The schedule
// and final state are replay-identical to the in-process run at the same
// seed — -verify-inproc re-runs in-process and checks the digests match:
//
//	go run ./cmd/loadgen -seed 1 -procs 4 -regions 8 -ues 1000000
//	go run ./cmd/loadgen -seed 1 -procs 2 -verify-inproc
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/ltetrace"
	"repro/internal/workload"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the program body so profile-writing defers run before
// the exit status is set.
func realMain() int {
	var (
		seed      = flag.Int64("seed", 1, "schedule seed (replays exactly)")
		regions   = flag.Int("regions", 4, "leaf regions in the ring")
		bsPer     = flag.Int("bs-per-region", 4, "base stations per region")
		ues       = flag.Int("ues", 100_000, "UE population size")
		events    = flag.Int("events", 400_000, "operations to generate")
		shards    = flag.Int("shards", core.DefaultUEShards, "UE-store shards per controller (1 = coarse single-mutex baseline)")
		mode      = flag.String("mode", "closed", "pacing mode: closed | open")
		workers   = flag.Int("workers", 0, "execution lanes (0 = GOMAXPROCS)")
		inflight  = flag.Int("inflight", 0, "open-loop in-flight admission window (0 = 4x workers)")
		rate      = flag.Float64("rate", 0, "open-loop target events/sec (0 = window-limited)")
		lteMinute = flag.Int("lte-minute", -1, "derive the op mix from the ltetrace diurnal model at this minute of day (-1 = default mix)")
		remote    = flag.Float64("remote-share", 0.2, "probability an attach targets another region's prefix")
		ctrlDelay = flag.Duration("control-delay", 200*time.Microsecond, "emulated controller-switch propagation delay; switches attach over the real southbound protocol with replies held back this long (0 = direct in-process devices)")
		out       = flag.String("out", "BENCH_workload.json", "report path")
		trace     = flag.String("trace", "", "also write the replayable event trace to this path")
		compare   = flag.Bool("compare", false, "run a bearer-heavy pass at -shards 1 and again at -shards, report the speedup")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		mtxProf   = flag.String("mutexprofile", "", "write a mutex-contention profile of the run to this path")
		chaosFail = flag.Bool("chaos-failover", false, "kill the HA master mid-run and measure the promotion: runs the schedule twice (incremental snapshots, then full-history replay), asserts both land on the plain run's state digest, and emits the failover report section")
		killAt    = flag.Int("kill-at", 0, "op index at which the master dies under -chaos-failover (0 = halfway through the run)")
		lostCmts  = flag.Int("lost-commits", 3, "acked ops whose commits the dying master loses under -chaos-failover")
		abandonW  = flag.Int("abandon", 4, "in-flight ops the dying master abandons (logged, unprocessed) under -chaos-failover")
		snapEvery = flag.Int("snapshot-every", 64, "checkpoint the replicated UE table every N committed entries under -chaos-failover")
		impairMtx = flag.Bool("impair-matrix", false, "run the impaired-WAN scenario matrix (clean / lossy / jittery / combined / fixed-timeout baseline / scheduled partition) at the shared seed, require identical replay digests across scenarios, and emit the impairment report section")
		procs     = flag.Int("procs", 0, "region processes: >0 runs the distributed multi-process mode with the regions split contiguously among this many processes (0 = in-process)")
		regionBin = flag.String("region-bin", "", "region process binary for -procs (empty = re-exec this binary with -as-region)")
		verify    = flag.Bool("verify-inproc", false, "after a -procs run, re-run in-process and require identical replay digests")
		asRegion  = flag.Bool("as-region", false, "run as a region process under a launcher (internal; reads config and commands from stdin)")
	)
	flag.Parse()

	if *asRegion {
		return regionMode()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mtxProf != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			f, err := os.Create(*mtxProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := workload.Config{
		Seed: *seed, Regions: *regions, BSPerRegion: *bsPer,
		UEs: *ues, Events: *events, Shards: *shards,
		Mode: workload.Mode(*mode), Workers: *workers,
		MaxInFlight: *inflight, RatePerSec: *rate,
		RemotePrefixShare: *remote, ControlDelay: *ctrlDelay,
	}
	if *lteMinute >= 0 {
		cfg.Mix, cfg.BSWeights = workload.MixFromLTE(ltetrace.Params{}, *lteMinute, *regions, *bsPer)
	}

	var (
		rep *workload.Report
		err error
	)
	if *procs > 0 {
		argv, aerr := regionArgv(*regionBin)
		if aerr != nil {
			fatal(aerr)
		}
		rep, err = workload.RunDistributed(cfg, *procs, argv)
	} else {
		rep, err = run(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *verify {
		if *procs <= 0 {
			fatal(fmt.Errorf("-verify-inproc requires -procs"))
		}
		ref, rerr := run(cfg)
		if rerr != nil {
			fatal(fmt.Errorf("verify pass: %w", rerr))
		}
		fmt.Printf("loadgen: verify: distributed trace %s state %s ues %d | in-process trace %s state %s ues %d\n",
			rep.TraceDigest, rep.StateDigest, rep.FinalUEs,
			ref.TraceDigest, ref.StateDigest, ref.FinalUEs)
		if rep.TraceDigest != ref.TraceDigest || rep.StateDigest != ref.StateDigest ||
			rep.FinalUEs != ref.FinalUEs || rep.Failures != ref.Failures {
			fmt.Fprintln(os.Stderr, "loadgen: verify-inproc FAILED: distributed run diverged from in-process replay")
			return 1
		}
		fmt.Println("loadgen: verify-inproc OK: digests identical")
	}
	if *trace != "" {
		if err := writeTrace(*trace, cfg); err != nil {
			fatal(err)
		}
	}
	if *chaosFail {
		if *procs > 0 {
			fatal(fmt.Errorf("-chaos-failover runs in-process only (not with -procs)"))
		}
		sec, ferr := failoverPasses(cfg, rep.StateDigest, *killAt, *lostCmts, *abandonW, *snapEvery)
		if ferr != nil {
			fatal(ferr)
		}
		rep.Failover = sec
	}
	if *impairMtx {
		if *procs > 0 {
			fatal(fmt.Errorf("-impair-matrix runs in-process only (not with -procs)"))
		}
		m, merr := runImpairMatrix(cfg)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "loadgen: impair-matrix FAILED:", merr)
			return 1
		}
		rep.Impairment = m
	}
	if *compare {
		base, err := comparePass(cfg, 1)
		if err != nil {
			fatal(fmt.Errorf("baseline pass: %w", err))
		}
		shrd, err := comparePass(cfg, *shards)
		if err != nil {
			fatal(fmt.Errorf("sharded pass: %w", err))
		}
		rep.Baseline = &workload.BaselineComparison{
			BaselineShards: 1, ShardedShards: *shards,
			BaselineEPS: base, ShardedEPS: shrd,
			Speedup: shrd / base,
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("loadgen: seed %d: %d events, %.0f events/sec, %d failures, %d stalls\n",
		*seed, rep.Events, rep.EventsPerSec, rep.Failures, rep.Stalls)
	fmt.Printf("loadgen: trace %s state %s (%d UE rows) -> %s\n",
		rep.TraceDigest, rep.StateDigest, rep.FinalUEs, *out)
	if rep.Baseline != nil {
		fmt.Printf("loadgen: sharded (%d) %.0f ev/s vs coarse (1) %.0f ev/s: %.2fx\n",
			rep.Baseline.ShardedShards, rep.Baseline.ShardedEPS,
			rep.Baseline.BaselineEPS, rep.Baseline.Speedup)
	}
	if rep.Distributed != nil {
		for _, pp := range rep.Distributed.Per {
			fmt.Printf("loadgen: proc %d regions [%d,%d): %d events, %.0f ev/s\n",
				pp.Proc, pp.Lo, pp.Hi, pp.Events, pp.EventsPerSec)
		}
		fmt.Printf("loadgen: %d procs aggregate: %.0f ev/s\n",
			rep.Distributed.Procs, rep.Distributed.AggregateEPS)
	}
	if fo := rep.Failover; fo != nil {
		for _, p := range []*workload.FailoverPassStats{fo.Snapshot, fo.FullReplay} {
			kind := "snapshots off (full replay)"
			if p.SnapshotEvery > 0 {
				kind = fmt.Sprintf("snapshot every %d", p.SnapshotEvery)
			}
			fmt.Printf("loadgen: failover [%s]: kill@%d, promotion %.2fms (recovery %.2fms), "+
				"%d redone, %d replayed (snapshot %dB seq %d), %d dups caught, %d lost, log %d->%d entries\n",
				kind, p.KillAtOp, float64(p.PromotionLatencyNs)/1e6, float64(p.RecoveryWallNs)/1e6,
				p.RedoneEntries, p.ReplayedEntries, p.SnapshotBytes, p.SnapshotSeq,
				p.DuplicatesDetected, p.EventsLost, p.LogLenAtPromote, p.LogLenFinal)
		}
		fmt.Printf("loadgen: failover: replay reduction %.1fx, digests match plain run: %t\n",
			fo.ReplayReduction, fo.DigestsMatch)
		if !fo.DigestsMatch {
			fmt.Fprintln(os.Stderr, "loadgen: chaos-failover FAILED: a failover run diverged from the plain run")
			return 1
		}
	}
	if im := rep.Impairment; im != nil {
		for _, sc := range im.Scenarios {
			extra := ""
			if sc.Partition != nil {
				extra = fmt.Sprintf(", partition: %d suspects, %d rediscoveries, restored %t",
					sc.Partition.Suspects, sc.Partition.Rediscoveries, sc.Partition.LinksRestored)
			}
			fmt.Printf("loadgen: impair [%s]: %.0f ev/s, %d failures, "+
				"netem %d sent / %d dropped (%d loss, %d partition), %d reordered, "+
				"%d rtt samples, %d retries, %d stale replies%s\n",
				sc.Name, sc.EventsPerSec, sc.Failures,
				sc.Netem.Sent, sc.Netem.DroppedLoss+sc.Netem.DroppedOverflow+sc.Netem.DroppedPartition,
				sc.Netem.DroppedLoss, sc.Netem.DroppedPartition, sc.Netem.Reordered,
				sc.RTTSamples, sc.BarrierRetries, sc.StaleReplies, extra)
		}
	}
	if rep.Failures > 0 {
		return 1
	}
	return 0
}

// failoverPasses runs the schedule twice under a planned master crash —
// once with incremental snapshots, once with full-history replay — and
// cross-checks both final states against the plain run's digest.
func failoverPasses(cfg workload.Config, baseDigest string, killAt, lost, abandon, snapEvery int) (*workload.FailoverSection, error) {
	if killAt <= 0 {
		killAt = cfg.Events / 2
	}
	spec := chaos.FailoverSchedule{
		KillAt: killAt, LostCommits: lost, Abandon: abandon, SnapshotEvery: snapEvery,
	}
	_, _, snap, err := workload.RunFailoverPass(cfg, spec)
	if err != nil {
		return nil, fmt.Errorf("failover snapshot pass: %w", err)
	}
	spec.SnapshotEvery = 0
	_, _, full, err := workload.RunFailoverPass(cfg, spec)
	if err != nil {
		return nil, fmt.Errorf("failover full-replay pass: %w", err)
	}
	return workload.BuildFailoverSection(baseDigest, snap, full), nil
}

// regionMode serves the region-process protocol on stdio (the -as-region
// re-exec path), mirroring cmd/region including the SIGTERM drain.
func regionMode() int {
	var cur atomic.Pointer[workload.RegionProc]
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sig
		if p := cur.Load(); p != nil {
			if err := p.Drain(5 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: region drain:", err)
			}
			p.Close()
		}
		os.Exit(0)
	}()
	err := workload.RegionMain(os.Stdin, os.Stdout, func(p *workload.RegionProc) {
		cur.Store(p)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: region:", err)
		return 1
	}
	return 0
}

// regionArgv resolves the command line for spawned region processes.
func regionArgv(regionBin string) ([]string, error) {
	if regionBin != "" {
		return []string{regionBin}, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return []string{exe, "-as-region"}, nil
}

// run executes one configured pass and assembles its report.
func run(cfg workload.Config) (*workload.Report, error) {
	eng, cl, err := workload.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	res := eng.Run()
	rep := workload.BuildReport(cfg, cl, res)
	if res.FirstErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: first failure: %v\n", res.FirstErr)
	}
	return rep, nil
}

// comparePass measures closed-loop bearer-heavy throughput at a shard
// count: an attached population churning bearer setup/teardown, the §5.1
// hot path the sharded store parallelizes.
func comparePass(cfg workload.Config, shards int) (float64, error) {
	cfg.Shards = shards
	cfg.Mode = workload.ModeClosed
	cfg.Mix = workload.BearerHeavyMix()
	cfg.BSWeights = nil
	cfg.RatePerSec = 0
	eng, cl, err := workload.NewEngine(cfg)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	res := eng.Run()
	if res.FirstErr != nil {
		return 0, res.FirstErr
	}
	return res.EventsPerSec(), nil
}

// writeTrace regenerates the schedule (generation is cheap and pure) and
// writes one line per op.
func writeTrace(path string, cfg workload.Config) error {
	ops, err := workload.GenerateSchedule(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, op := range ops {
		fmt.Fprintln(w, op.TraceLine())
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(2)
}
