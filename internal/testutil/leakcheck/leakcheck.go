// Package leakcheck asserts that a test leaves no goroutines behind. It
// is deliberately stdlib-only and approximate: the check snapshots
// runtime.NumGoroutine at registration and, at cleanup, retries until the
// count returns to the baseline or a grace period elapses — absorbing
// pump goroutines that exit asynchronously after a Close. On timeout the
// failure message includes only the goroutine stacks that run repository
// code, so the leaking spawn site is named directly instead of buried
// under testing-framework frames.
//
// The gospawn analyzer proves every goroutine has a lifecycle hook to
// wait on; leakcheck proves the teardown paths actually use them.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace bounds how long the cleanup waits for goroutines that exit
// asynchronously after a Close (conn pumps, deadline loops) before
// declaring a leak.
const grace = 2 * time.Second

// Check snapshots the current goroutine count and registers a cleanup
// that fails the test if the count has not returned to that baseline
// within the grace period. Call it first in the test body, before the
// code under test spawns anything.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				t.Errorf("leakcheck: %d goroutines at baseline, %d after cleanup; stacks in repository code:\n%s",
					base, runtime.NumGoroutine(), repoStacks())
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// repoStacks dumps every goroutine stack and keeps only those mentioning
// a repository package frame — the candidates for the leak.
func repoStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var keep []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "repro/internal/") {
			keep = append(keep, g)
		}
	}
	if len(keep) == 0 {
		return "(none — the surplus goroutines are outside repository code)"
	}
	return strings.Join(keep, "\n\n")
}
