// Package pathimpl provides the label machinery behind SoftMoW's global
// path implementation (§4.3): per-controller label allocation from disjoint
// ranges, the flow-rule shapes used at classification, transit, ingress and
// egress points, and both translation strategies — the scalable recursive
// label *swapping* SoftMoW proposes (≤ 1 label per packet on any physical
// link) and the high-overhead label *stacking* baseline it compares against
// (k labels for a level-k path).
//
// The recursive translation driver that applies these rules through the
// controller hierarchy lives in internal/core; this package keeps the rule
// semantics independently testable.
package pathimpl

import (
	"fmt"
	"sync"

	"repro/internal/dataplane"
)

// Mode selects the translation strategy.
type Mode int

const (
	// ModeSwap is recursive label swapping (§4.3, SoftMoW's mechanism).
	ModeSwap Mode = iota
	// ModeStack is the label-stacking baseline (§4.3, "high-overhead
	// label stacking").
	ModeStack
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeStack {
		return "stack"
	}
	return "swap"
}

// labelSpaceBits is the per-controller label space width. Each controller
// owns a disjoint 2^20 range so any label's owner is recoverable.
const labelSpaceBits = 20

// Allocator hands out labels from one controller's range.
type Allocator struct {
	mu   sync.Mutex
	base dataplane.Label
	next dataplane.Label
	// released labels are recycled LIFO.
	free []dataplane.Label
}

// NewAllocator creates an allocator for the controller with the given
// global index (0-based). Index range is bounded by the 32-bit label width.
func NewAllocator(controllerIndex int) *Allocator {
	if controllerIndex < 0 || controllerIndex >= (1<<(32-labelSpaceBits))-1 {
		panic(fmt.Sprintf("pathimpl: controller index %d out of label space", controllerIndex))
	}
	base := dataplane.Label(controllerIndex+1) << labelSpaceBits
	return &Allocator{base: base, next: base + 1}
}

// Next allocates a fresh (or recycled) label.
func (a *Allocator) Next() dataplane.Label {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.free); n > 0 {
		l := a.free[n-1]
		a.free = a.free[:n-1]
		return l
	}
	l := a.next
	a.next++
	if a.next-a.base >= 1<<labelSpaceBits {
		panic("pathimpl: label space exhausted")
	}
	return l
}

// Release returns a label for reuse.
func (a *Allocator) Release(l dataplane.Label) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, l)
}

// Owner recovers the controller index that allocated a label.
func Owner(l dataplane.Label) int {
	return int(l>>labelSpaceBits) - 1
}

// ClassifyRule builds the access-switch classification rule: match the
// unlabeled flow, push the path label, forward (§4.3: "the access switch of
// base stations can perform fine-grained packet classification and push
// labels onto packets matching flow rules").
func ClassifyRule(match dataplane.Match, label dataplane.Label, out dataplane.PortID, owner string, version int) dataplane.Rule {
	m := match
	m.MatchNoLabel = true
	m.HasLabel = false
	return dataplane.Rule{
		Priority: 100,
		Match:    m,
		Actions:  []dataplane.Action{dataplane.Push(label), dataplane.Output(out)},
		Owner:    owner,
		Version:  version,
	}
}

// TransitRule forwards labeled traffic along a path segment.
func TransitRule(label dataplane.Label, in dataplane.PortID, out dataplane.PortID, owner string, version int) dataplane.Rule {
	return dataplane.Rule{
		Priority: 50,
		Match:    dataplane.Match{InPort: in, HasLabel: true, Label: label, QoS: -1},
		Actions:  []dataplane.Action{dataplane.Output(out)},
		Owner:    owner,
		Version:  version,
	}
}

// IngressRule builds the region-ingress rule translating a parent label to
// a local label. In swap mode the parent label is popped and replaced
// (packet keeps depth 1); in stack mode the local label stacks on top.
func IngressRule(mode Mode, parent, local dataplane.Label, in dataplane.PortID, out dataplane.PortID, owner string, version int) dataplane.Rule {
	var actions []dataplane.Action
	if mode == ModeSwap {
		actions = []dataplane.Action{dataplane.Swap(local), dataplane.Output(out)}
	} else {
		actions = []dataplane.Action{dataplane.Push(local), dataplane.Output(out)}
	}
	return dataplane.Rule{
		Priority: 60,
		Match:    dataplane.Match{InPort: in, HasLabel: true, Label: parent, QoS: -1},
		Actions:  actions,
		Owner:    owner,
		Version:  version,
	}
}

// EgressRule builds the region-egress rule restoring the parent label. In
// swap mode the local label is swapped back to the parent's (§4.3: "At the
// egress switch of its logical region, the controller aggregates the
// internal paths by popping their label. It then pushes back the
// ancestor's label"); in stack mode the local label pops off, exposing the
// parent's underneath.
func EgressRule(mode Mode, local, parent dataplane.Label, in dataplane.PortID, out dataplane.PortID, owner string, version int) dataplane.Rule {
	var actions []dataplane.Action
	if mode == ModeSwap {
		actions = []dataplane.Action{dataplane.Swap(parent), dataplane.Output(out)}
	} else {
		actions = []dataplane.Action{dataplane.Pop(), dataplane.Output(out)}
	}
	return dataplane.Rule{
		Priority: 60,
		Match:    dataplane.Match{InPort: in, HasLabel: true, Label: local, QoS: -1},
		Actions:  actions,
		Owner:    owner,
		Version:  version,
	}
}

// TerminalRule builds the path-end rule: pop the label and deliver out the
// final port (an Internet egress or a G-BS attachment).
func TerminalRule(label dataplane.Label, in dataplane.PortID, out dataplane.PortID, owner string, version int) dataplane.Rule {
	return dataplane.Rule{
		Priority: 60,
		Match:    dataplane.Match{InPort: in, HasLabel: true, Label: label, QoS: -1},
		Actions:  []dataplane.Action{dataplane.Pop(), dataplane.Output(out)},
		Owner:    owner,
		Version:  version,
	}
}

// VersionCounter issues monotonically increasing path-update versions for
// consistent updates (§6: "the new path and packets are assigned a new
// version number").
type VersionCounter struct {
	mu sync.Mutex
	v  int
}

// Next returns the next version (starting at 1).
func (c *VersionCounter) Next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v++
	return c.v
}

// Current returns the last issued version.
func (c *VersionCounter) Current() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}
