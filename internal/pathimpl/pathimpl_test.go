package pathimpl

import (
	"testing"
	"testing/quick"

	"repro/internal/dataplane"
)

func TestAllocatorDisjointRanges(t *testing.T) {
	a := NewAllocator(0)
	b := NewAllocator(1)
	seen := map[dataplane.Label]bool{}
	for i := 0; i < 1000; i++ {
		la, lb := a.Next(), b.Next()
		if seen[la] || seen[lb] || la == lb {
			t.Fatal("label collision")
		}
		seen[la], seen[lb] = true, true
		if Owner(la) != 0 {
			t.Fatalf("owner of %d = %d", la, Owner(la))
		}
		if Owner(lb) != 1 {
			t.Fatalf("owner of %d = %d", lb, Owner(lb))
		}
	}
}

func TestAllocatorNeverNoLabel(t *testing.T) {
	a := NewAllocator(0)
	for i := 0; i < 100; i++ {
		if a.Next() == dataplane.NoLabel {
			t.Fatal("allocated NoLabel")
		}
	}
}

func TestAllocatorRecycle(t *testing.T) {
	a := NewAllocator(3)
	l1 := a.Next()
	a.Release(l1)
	if got := a.Next(); got != l1 {
		t.Fatalf("recycled = %d, want %d", got, l1)
	}
}

func TestAllocatorBadIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAllocator(-1)
}

// Property: labels from distinct allocators never collide, and Owner
// round-trips.
func TestAllocatorOwnerQuick(t *testing.T) {
	f := func(idx uint8, draws uint8) bool {
		a := NewAllocator(int(idx))
		for i := 0; i < int(draws%50)+1; i++ {
			if Owner(a.Next()) != int(idx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyRuleShape(t *testing.T) {
	m := dataplane.Match{InPort: dataplane.PortAny, UE: "ue1", QoS: -1}
	r := ClassifyRule(m, 500, 3, "C1", 7)
	if !r.Match.MatchNoLabel {
		t.Fatal("classification must match unlabeled packets only")
	}
	if r.Match.HasLabel {
		t.Fatal("classification must not match a label")
	}
	if len(r.Actions) != 2 || r.Actions[0].Op != dataplane.OpPushLabel || r.Actions[1].Op != dataplane.OpOutput {
		t.Fatalf("actions = %v", r.Actions)
	}
	if r.Owner != "C1" || r.Version != 7 {
		t.Fatal("metadata lost")
	}
}

func TestTransitRuleShape(t *testing.T) {
	r := TransitRule(500, 1, 2, "C1", 1)
	if !r.Match.HasLabel || r.Match.Label != 500 || r.Match.InPort != 1 {
		t.Fatalf("match = %+v", r.Match)
	}
	if len(r.Actions) != 1 || r.Actions[0] != dataplane.Output(2) {
		t.Fatalf("actions = %v", r.Actions)
	}
}

// applyRule runs a rule's actions against a packet and returns the output
// port, mimicking the dataplane engine for shape checks.
func applyRule(r dataplane.Rule, p *dataplane.Packet) dataplane.PortID {
	for _, a := range r.Actions {
		switch a.Op {
		case dataplane.OpPushLabel:
			p.PushLabel(a.Label)
		case dataplane.OpPopLabel:
			p.PopLabel()
		case dataplane.OpSwapLabel:
			p.SwapLabel(a.Label)
		case dataplane.OpOutput:
			return a.Port
		}
	}
	return -1
}

func TestSwapModeKeepsDepthOne(t *testing.T) {
	parent, local := dataplane.Label(1<<20|1), dataplane.Label(2<<20|1)
	p := &dataplane.Packet{}
	p.PushLabel(parent)

	in := IngressRule(ModeSwap, parent, local, 1, 2, "C", 1)
	if !in.Match.Matches(1, p) {
		t.Fatal("ingress rule must match parent-labeled packet")
	}
	applyRule(in, p)
	if p.LabelDepth() != 1 {
		t.Fatalf("swap ingress depth = %d", p.LabelDepth())
	}
	if l, _ := p.TopLabel(); l != local {
		t.Fatalf("top = %d", l)
	}

	out := EgressRule(ModeSwap, local, parent, 3, 4, "C", 1)
	if !out.Match.Matches(3, p) {
		t.Fatal("egress rule must match local-labeled packet")
	}
	applyRule(out, p)
	if p.LabelDepth() != 1 {
		t.Fatalf("swap egress depth = %d", p.LabelDepth())
	}
	if l, _ := p.TopLabel(); l != parent {
		t.Fatalf("parent label not restored: %d", l)
	}
	if p.MaxLabelDepth != 1 {
		t.Fatalf("swap mode max depth = %d, must stay 1", p.MaxLabelDepth)
	}
}

func TestStackModeGrowsDepth(t *testing.T) {
	parent, local := dataplane.Label(1<<20|1), dataplane.Label(2<<20|1)
	p := &dataplane.Packet{}
	p.PushLabel(parent)

	in := IngressRule(ModeStack, parent, local, 1, 2, "C", 1)
	applyRule(in, p)
	if p.LabelDepth() != 2 {
		t.Fatalf("stack ingress depth = %d", p.LabelDepth())
	}
	out := EgressRule(ModeStack, local, parent, 3, 4, "C", 1)
	applyRule(out, p)
	if p.LabelDepth() != 1 {
		t.Fatalf("stack egress depth = %d", p.LabelDepth())
	}
	if l, _ := p.TopLabel(); l != parent {
		t.Fatalf("parent label must re-expose: %d", l)
	}
	if p.MaxLabelDepth != 2 {
		t.Fatalf("stack mode max depth = %d, want 2", p.MaxLabelDepth)
	}
}

func TestTerminalRulePopsAndDelivers(t *testing.T) {
	p := &dataplane.Packet{}
	p.PushLabel(99)
	r := TerminalRule(99, 1, 7, "C", 1)
	port := applyRule(r, p)
	if port != 7 {
		t.Fatalf("out port = %d", port)
	}
	if p.LabelDepth() != 0 {
		t.Fatal("terminal rule must pop")
	}
}

func TestVersionCounter(t *testing.T) {
	var c VersionCounter
	if c.Current() != 0 {
		t.Fatal("initial version")
	}
	if c.Next() != 1 || c.Next() != 2 {
		t.Fatal("sequence")
	}
	if c.Current() != 2 {
		t.Fatal("current")
	}
}

func TestModeString(t *testing.T) {
	if ModeSwap.String() != "swap" || ModeStack.String() != "stack" {
		t.Fatal("mode strings")
	}
}
