// Package discovery implements the building blocks of SoftMoW's recursive
// inter-G-switch link discovery protocol (§4.1): the stack-carrying
// discovery frame exchanged through the controller hierarchy, and the
// queueing model used to measure per-controller convergence time against a
// flat single-controller LLDP baseline (Fig. 10).
//
// The protocol logic itself — who pushes, translates, pops — lives in the
// controller (internal/core); this package keeps the frame mechanics and
// timing analysis independently testable.
package discovery

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataplane"
)

// StackEntry is one hierarchy hop recorded in a discovery frame: "(Controller
// ID, G-switch ID, G-switch port)" (§4.1.2).
type StackEntry struct {
	Controller string
	Device     dataplane.DeviceID
	Port       dataplane.PortID
}

// String implements fmt.Stringer.
func (e StackEntry) String() string {
	return fmt.Sprintf("(%s,%s,%d)", e.Controller, e.Device, e.Port)
}

// LinkMeta carries the traversed physical link's properties, filled by the
// emitting leaf controller (§4.1.2: "the meta data field carries the
// properties of the traversed physical link").
type LinkMeta struct {
	Latency   time.Duration
	Bandwidth float64
}

// Frame is a link-discovery message. The zero value is an empty frame.
type Frame struct {
	Stack []StackEntry
	Meta  LinkMeta
	// Receive records where the frame re-entered the control plane: the
	// (device, port) as seen by the controller currently holding it. It is
	// rewritten by each controller on the return path as it translates to
	// its own abstraction level.
	Receive StackEntry
}

// FillLinkMeta implements the southbound LinkMetaFiller contract: the
// transport records the crossed link's properties into the frame.
func (f *Frame) FillLinkMeta(latency time.Duration, bandwidthMbps float64) {
	f.Meta = LinkMeta{Latency: latency, Bandwidth: bandwidthMbps}
}

// Push appends a hierarchy hop on the origination path.
func (f *Frame) Push(e StackEntry) {
	f.Stack = append(f.Stack, e)
}

// Pop removes and returns the top entry; ok is false on an empty stack.
func (f *Frame) Pop() (StackEntry, bool) {
	if len(f.Stack) == 0 {
		return StackEntry{}, false
	}
	e := f.Stack[len(f.Stack)-1]
	f.Stack = f.Stack[:len(f.Stack)-1]
	return e, true
}

// Top returns the top entry without removing it.
func (f *Frame) Top() (StackEntry, bool) {
	if len(f.Stack) == 0 {
		return StackEntry{}, false
	}
	return f.Stack[len(f.Stack)-1], true
}

// Depth reports the stack depth.
func (f *Frame) Depth() int { return len(f.Stack) }

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Stack = append([]StackEntry(nil), f.Stack...)
	return &c
}

// String implements fmt.Stringer.
func (f *Frame) String() string {
	var b strings.Builder
	b.WriteString("frame[")
	for i, e := range f.Stack {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(e.String())
	}
	fmt.Fprintf(&b, "] recv=%s", f.Receive)
	return b.String()
}
