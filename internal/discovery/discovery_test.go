package discovery

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataplane"
)

func TestFrameStack(t *testing.T) {
	f := &Frame{}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop on empty")
	}
	if _, ok := f.Top(); ok {
		t.Fatal("top on empty")
	}
	e1 := StackEntry{Controller: "C0", Device: "GS1", Port: 1}
	e2 := StackEntry{Controller: "C1", Device: "SW2", Port: 2}
	f.Push(e1)
	f.Push(e2)
	if f.Depth() != 2 {
		t.Fatalf("depth = %d", f.Depth())
	}
	if top, _ := f.Top(); top != e2 {
		t.Fatalf("top = %v", top)
	}
	got, ok := f.Pop()
	if !ok || got != e2 {
		t.Fatalf("pop = %v", got)
	}
	if top, _ := f.Top(); top != e1 {
		t.Fatalf("after pop top = %v", top)
	}
}

func TestFrameClone(t *testing.T) {
	f := &Frame{}
	f.Push(StackEntry{Controller: "C0"})
	c := f.Clone()
	c.Push(StackEntry{Controller: "C1"})
	if f.Depth() != 1 || c.Depth() != 2 {
		t.Fatal("clone aliases stack")
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{}
	f.Push(StackEntry{Controller: "C0", Device: "GS1", Port: 1})
	s := f.String()
	if !strings.Contains(s, "(C0,GS1,1)") {
		t.Fatalf("frame string = %q", s)
	}
}

// Property: a frame behaves as a stack (LIFO).
func TestFrameLIFOQuick(t *testing.T) {
	f := func(ports []uint8) bool {
		fr := &Frame{}
		var model []StackEntry
		for _, p := range ports {
			e := StackEntry{Controller: "C", Port: dataplane.PortID(p)}
			fr.Push(e)
			model = append(model, e)
		}
		for i := len(model) - 1; i >= 0; i-- {
			got, ok := fr.Pop()
			if !ok || got != model[i] {
				return false
			}
		}
		_, ok := fr.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceSingleServerSerializes(t *testing.T) {
	tp := TimingParams{Service: 10 * time.Millisecond, Propagation: 0}
	probes := FlatBaseline("flat", 5, 3)
	fin := Convergence(probes, tp, nil)
	// 5 emissions + 3 responses = 8 services = 80ms
	if fin["flat"] != 80*time.Millisecond {
		t.Fatalf("flat convergence = %v", fin["flat"])
	}
}

func TestConvergenceParallelLeaves(t *testing.T) {
	tp := TimingParams{Service: 10 * time.Millisecond, Propagation: 0}
	var probes []Probe
	for _, leaf := range []string{"A", "B"} {
		for i := 0; i < 4; i++ {
			probes = append(probes, Probe{Owner: leaf, HasLink: true})
		}
	}
	fin := Convergence(probes, tp, nil)
	// each leaf: 4 emissions + 4 responses = 80ms, in parallel
	if fin["A"] != 80*time.Millisecond || fin["B"] != 80*time.Millisecond {
		t.Fatalf("leaf convergence = %v", fin)
	}
}

func TestHierarchyBeatsFlat(t *testing.T) {
	// Paper claim: per-controller convergence is 44–58% faster than flat
	// because most ports/links are masked from each controller.
	tp := DefaultTiming()

	// Flat: one controller sees 100 ports, 80 of which return links.
	flat := Convergence(FlatBaseline("flat", 100, 80), tp, nil)

	// SoftMoW: 4 leaves × 25 ports/20 links each (parallel), then a root
	// with 8 border ports / 6 cross links relayed through leaves.
	var probes []Probe
	for _, leaf := range []string{"A", "B", "C", "D"} {
		for i := 0; i < 25; i++ {
			probes = append(probes, Probe{Owner: leaf, HasLink: i < 20})
		}
	}
	leafFin := Convergence(probes, tp, nil)
	maxLeaf := time.Duration(0)
	for _, v := range leafFin {
		if v > maxLeaf {
			maxLeaf = v
		}
	}
	rootProbes := make([]Probe, 0, 8)
	leaves := []string{"A", "B", "C", "D"}
	for i := 0; i < 8; i++ {
		rootProbes = append(rootProbes, Probe{
			Owner:   "root",
			Relays:  []string{leaves[i%4]},
			HasLink: i < 6,
		})
	}
	start := map[string]time.Duration{"root": maxLeaf}
	rootFin := Convergence(rootProbes, tp, start)

	for name, v := range leafFin {
		if v >= flat["flat"] {
			t.Fatalf("leaf %s (%v) should beat flat (%v)", name, v, flat["flat"])
		}
	}
	if rootFin["root"] >= flat["flat"] {
		t.Fatalf("root (%v) should beat flat (%v)", rootFin["root"], flat["flat"])
	}
}

func TestRelaysAddLoad(t *testing.T) {
	tp := TimingParams{Service: 10 * time.Millisecond, Propagation: time.Millisecond}
	withRelay := Convergence([]Probe{{Owner: "root", Relays: []string{"leaf"}, HasLink: true}}, tp, nil)
	withoutRelay := Convergence([]Probe{{Owner: "root", HasLink: true}}, tp, nil)
	if withRelay["root"] <= withoutRelay["root"] {
		t.Fatalf("relay should add latency: %v vs %v", withRelay["root"], withoutRelay["root"])
	}
	if _, ok := withRelay["leaf"]; !ok {
		t.Fatal("relay controller should appear in result")
	}
}

func TestNoLinkProbeStillConverges(t *testing.T) {
	tp := TimingParams{Service: 5 * time.Millisecond, Propagation: 0}
	fin := Convergence([]Probe{{Owner: "c", HasLink: false}}, tp, nil)
	if fin["c"] != 5*time.Millisecond {
		t.Fatalf("no-link probe convergence = %v", fin["c"])
	}
}

func TestStartAtDelays(t *testing.T) {
	tp := TimingParams{Service: 10 * time.Millisecond, Propagation: 0}
	fin := Convergence(
		[]Probe{{Owner: "root", HasLink: true}},
		tp,
		map[string]time.Duration{"root": time.Second},
	)
	if fin["root"] != time.Second+20*time.Millisecond {
		t.Fatalf("delayed start convergence = %v", fin["root"])
	}
}

func TestSortedControllers(t *testing.T) {
	m := map[string]time.Duration{"b": 1, "a": 2, "c": 3}
	got := SortedControllers(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
}

func TestDefaultTimingSane(t *testing.T) {
	tp := DefaultTiming()
	if tp.Service <= tp.Propagation {
		t.Fatal("service must dominate propagation (paper's observation)")
	}
}
