package discovery

import (
	"sort"
	"time"

	"repro/internal/simnet"
)

// The Fig. 10 experiment measures per-controller discovery convergence:
// "The convergence time is measured per controller and starts from the
// beginning of a discovery period until all links and ports are discovered
// and become stable... We identified the queuing delay at controllers is
// the root cause of such differences and the propagation delays between the
// controllers and switches have insignificant effects. The queuing delay is
// in proportion to the number of ports and links in topology."
//
// We therefore model each controller as a FIFO server with a fixed
// per-message service time. A probe is one discovery emission: it is
// serviced by its owner, relayed down the hierarchy (one service per relay
// controller), crosses a link (propagation), and — if a discoverable link
// exists — returns through the relays to the owner, whose final service
// completes the discovery.

// TimingParams configures the queueing model.
type TimingParams struct {
	// Service is the per-message processing time at any controller.
	Service time.Duration
	// Propagation is the controller↔switch / link propagation delay
	// (insignificant per the paper, but modeled).
	Propagation time.Duration
}

// DefaultTiming mirrors the prototype's regime: service dominates
// propagation.
func DefaultTiming() TimingParams {
	return TimingParams{Service: 2 * time.Millisecond, Propagation: 250 * time.Microsecond}
}

// Probe is one discovery emission from an owner controller's port.
type Probe struct {
	// Owner is the controller that originates the probe and would discover
	// the link.
	Owner string
	// Relays lists descendant controllers that translate the frame on the
	// way down; the return path visits them in reverse.
	Relays []string
	// HasLink reports whether a discoverable link answers the probe (ports
	// facing the Internet or dead ends produce no response).
	HasLink bool
}

// Convergence simulates a discovery round and returns each controller's
// convergence time: the instant its last probe response (or emission, for
// responseless probes) finished processing, measured from t = 0. startAt
// delays a controller's emissions (bootstrap is sequential bottom-up,
// §2.2); nil means all start at zero.
func Convergence(probes []Probe, tp TimingParams, startAt map[string]time.Duration) map[string]time.Duration {
	sim := simnet.New()
	servers := make(map[string]*server)
	getServer := func(name string) *server {
		if s, ok := servers[name]; ok {
			return s
		}
		s := &server{sim: sim, service: tp.Service}
		servers[name] = s
		return s
	}
	finish := make(map[string]time.Duration)
	note := func(owner string, t time.Duration) {
		if t > finish[owner] {
			finish[owner] = t
		}
	}

	for i := range probes {
		p := probes[i]
		start := time.Duration(0)
		if startAt != nil {
			start = startAt[p.Owner]
		}
		// Build the probe's pipeline of stages.
		stages := make([]string, 0, 2*len(p.Relays)+2)
		stages = append(stages, p.Owner)
		stages = append(stages, p.Relays...)
		if p.HasLink {
			for j := len(p.Relays) - 1; j >= 0; j-- {
				stages = append(stages, p.Relays[j])
			}
			stages = append(stages, p.Owner)
		}
		runStages(sim, getServer, stages, start, tp.Propagation, func(done time.Duration) {
			note(p.Owner, done)
		})
	}
	sim.Run()
	// Controllers mentioned only as relays also converge (they finish when
	// idle); report at least their start time.
	for name := range servers {
		if _, ok := finish[name]; !ok {
			finish[name] = 0
		}
	}
	return finish
}

// runStages chains FIFO services with propagation between them.
func runStages(sim *simnet.Sim, getServer func(string) *server, stages []string, start time.Duration, prop time.Duration, done func(time.Duration)) {
	var step func(i int)
	step = func(i int) {
		if i >= len(stages) {
			done(sim.Now())
			return
		}
		getServer(stages[i]).enqueue(func() {
			sim.After(prop, func() { step(i + 1) })
		})
	}
	sim.At(start, func() { step(0) })
}

// server is a FIFO single-server queue on virtual time.
type server struct {
	sim     *simnet.Sim
	service time.Duration
	queue   []func()
	busy    bool
}

func (s *server) enqueue(onDone func()) {
	s.queue = append(s.queue, onDone)
	if !s.busy {
		s.next()
	}
}

func (s *server) next() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	s.busy = true
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.sim.After(s.service, func() {
		job()
		s.next()
	})
}

// FlatBaseline builds the probe set for a flat single-controller deployment
// (the standard LLDP comparison in Fig. 10): one controller owns every
// port, no relays.
func FlatBaseline(controller string, ports, linkEndpoints int) []Probe {
	probes := make([]Probe, 0, ports)
	for i := 0; i < ports; i++ {
		probes = append(probes, Probe{Owner: controller, HasLink: i < linkEndpoints})
	}
	return probes
}

// SortedControllers returns the map keys sorted, for stable reporting.
func SortedControllers(m map[string]time.Duration) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
