package core

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/pathimpl"
	"repro/internal/reca"
)

const timeMs = time.Millisecond

func TestTransferBorderGroup(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)

	// Put a UE on gB so its state must transfer.
	if _, err := f.l2.HandleBearerRequest(BearerRequest{UE: "u9", BS: "b3", Prefix: "pfxFar"}); err != nil {
		t.Fatal(err)
	}

	// Move gB (access switch S3) from L2 to L1. S3 has physical links to
	// both regions (S2 in L1, S4 in L2), as border groups do.
	if err := f.h.TransferBorderGroup("gB", f.l2, f.l1); err != nil {
		t.Fatal(err)
	}

	// Control moved: S3 is now under L1.
	if f.h.LeafOf("S3") != f.l1 {
		t.Fatal("S3 should be controlled by L1")
	}
	if f.l2.Device("S3") != nil {
		t.Fatal("L2 should no longer control S3")
	}

	// Intra-region links: L1 now sees S1-S2 and S2-S3; L2 sees none (S4 is
	// alone).
	if got := f.l1.NIB.NumLinks(); got != 2 {
		t.Fatalf("L1 links = %d, want 2", got)
	}
	if got := f.l2.NIB.NumLinks(); got != 0 {
		t.Fatalf("L2 links = %d, want 0", got)
	}

	// The root re-discovered the cross-region link, now S3-S4.
	if got := f.root.NIB.NumLinks(); got != 1 {
		t.Fatalf("root links = %d, want exactly 1 (re-discovered)", got)
	}

	// UE state transferred.
	if _, ok := f.l2.UE("u9"); ok {
		t.Fatal("u9 should have left L2's table")
	}
	rec, ok := f.l1.UE("u9")
	if !ok || rec.Group != "gB" {
		t.Fatalf("u9 at L1: %+v ok=%v", rec, ok)
	}
	if g, ok := f.l1.GroupOfBS("b3"); !ok || g != "gB" {
		t.Fatal("BS index not transferred")
	}

	// New bearers on the moved group work end-to-end: route must now
	// delegate to the root (pfxFar exits via L2's egress).
	newRec, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u10", BS: "b3", Prefix: "pfxFar"})
	if err != nil {
		t.Fatal(err)
	}
	if newRec.HandledBy != f.root {
		t.Fatalf("handled by %s", newRec.HandledBy.OwnerID())
	}
	pkt := &dataplane.Packet{UE: "u10", DstPrefix: "pfxFar"}
	res, err := f.net.Inject("S3", f.radioB.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("post-transfer path: %v at %v (%v)", res.Disposition, res.EgressPort, pkt)
	}
	if res.MaxLabelDepth > 1 {
		t.Fatalf("label invariant after transfer: %d", res.MaxLabelDepth)
	}
}

func TestTransferRejectsNonBorder(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	// Rebuild gB as internal.
	cfg := f.l2.Config()
	cfg.Radios[0].Border = false
	f.l2.SetConfig(cfg)
	f.l2.ComputeAbstraction()
	if err := f.h.TransferBorderGroup("gB", f.l2, f.l1); err == nil {
		t.Fatal("non-border group transfer should fail")
	}
}

func TestTransferUnknownGroup(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if err := f.h.TransferBorderGroup("ghost", f.l2, f.l1); err == nil {
		t.Fatal("unknown group transfer should fail")
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	// Fig. 1's shape: two parent regions under a root, over the physical
	// line S1(gA) - S2 - S3 - S4(egress). P1 = {L1:{S1}, L2:{S2}},
	// P2 = {L3:{S3,S4}}. The S1-S2 link is discovered by P1, S2-S3 by the
	// root, S3-S4 by L3.
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		net.AddSwitch(id)
	}
	link := func(a, b dataplane.DeviceID) {
		if _, err := net.Connect(a, b, 5*timeMs, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link("S1", "S2")
	link("S2", "S3")
	link("S3", "S4")
	rpA, _ := net.AddRadioPort("S1", "gA")
	ep, _ := net.AddEgress("E1", "S4", "isp")

	h, err := NewThreeLevel(net, "root", map[string][]LeafSpec{
		"P1": {
			{ID: "L1", Switches: []dataplane.DeviceID{"S1"},
				Radios: []reca.RadioAttachment{
					{ID: "gA", Attach: dataplane.PortRef{Dev: "S1", Port: rpA.ID},
						Border: true, Constituents: []dataplane.DeviceID{"gA"}},
				},
				BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"}},
			{ID: "L2", Switches: []dataplane.DeviceID{"S2"}},
		},
		"P2": {
			{ID: "L3", Switches: []dataplane.DeviceID{"S3", "S4"}},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	l1 := h.Controller("L1")
	l3 := h.Controller("L3")
	p1 := h.Controller("P1")
	p2 := h.Controller("P2")
	root := h.Root
	if root.Level != 3 || p1.Level != 2 || l1.Level != 1 {
		t.Fatalf("levels: root=%d p1=%d l1=%d", root.Level, p1.Level, l1.Level)
	}

	// Link ownership: exactly one controller discovers each physical link.
	if got := l1.NIB.NumLinks(); got != 0 {
		t.Fatalf("L1 links = %d", got)
	}
	if got := l3.NIB.NumLinks(); got != 1 {
		t.Fatalf("L3 links = %d", got)
	}
	if got := p1.NIB.NumLinks(); got != 1 {
		t.Fatalf("P1 links = %d (should own S1-S2)", got)
	}
	if got := p2.NIB.NumLinks(); got != 0 {
		t.Fatalf("P2 links = %d", got)
	}
	if got := root.NIB.NumLinks(); got != 1 {
		t.Fatalf("root links = %d (should own S2-S3)", got)
	}

	// Interdomain routes propagate L3 → P2 → root.
	l3.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfx", Egress: "E1", EgressSwitch: "S4",
			Metrics: interdomain.Metrics{Hops: 5, RTT: 10 * timeMs}},
	}, dataplane.PortRef{Dev: "S4", Port: ep.Port})
	l3.PropagateInterdomain()
	if len(root.RouteOptions("pfx")) != 1 {
		t.Fatal("root should have the propagated route")
	}
	if len(p1.RouteOptions("pfx")) != 0 {
		t.Fatal("P1 should not have P2's route")
	}

	// A bearer from gA delegates L1 → P1 → root; the implemented path
	// translates through three levels yet keeps label depth 1.
	rec, err := l1.HandleBearerRequest(BearerRequest{UE: "u3l", BS: "b1", Prefix: "pfx"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HandledBy != root {
		t.Fatalf("handled by %s, want root", rec.HandledBy.OwnerID())
	}
	pkt := &dataplane.Packet{UE: "u3l", DstPrefix: "pfx"}
	res, err := net.Inject("S1", rpA.ID, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("3-level path: %v at %v (%v)", res.Disposition, res.EgressPort, pkt)
	}
	if res.MaxLabelDepth != 1 {
		t.Fatalf("3-level swap-mode depth = %d, want 1", res.MaxLabelDepth)
	}
}

func TestThreeLevelStackDepth(t *testing.T) {
	// Same topology, stacking mode: a 3-level path stacks up to 3 labels.
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		net.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"S1", "S2"}, {"S2", "S3"}, {"S3", "S4"}} {
		if _, err := net.Connect(pair[0], pair[1], 5*timeMs, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rpA, _ := net.AddRadioPort("S1", "gA")
	ep, _ := net.AddEgress("E1", "S4", "isp")
	h, err := NewThreeLevel(net, "root", map[string][]LeafSpec{
		"P1": {
			{ID: "L1", Switches: []dataplane.DeviceID{"S1"},
				Radios: []reca.RadioAttachment{
					{ID: "gA", Attach: dataplane.PortRef{Dev: "S1", Port: rpA.ID},
						Border: true, Constituents: []dataplane.DeviceID{"gA"}},
				},
				BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"}},
			{ID: "L2", Switches: []dataplane.DeviceID{"S2"}},
		},
		"P2": {
			{ID: "L3", Switches: []dataplane.DeviceID{"S3", "S4"}},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range h.All {
		c.Mode = pathimpl.ModeStack
	}
	l3 := h.Controller("L3")
	l3.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfx", Egress: "E1", EgressSwitch: "S4",
			Metrics: interdomain.Metrics{Hops: 5, RTT: 10 * timeMs}},
	}, dataplane.PortRef{Dev: "S4", Port: ep.Port})
	l3.PropagateInterdomain()

	l1 := h.Controller("L1")
	if _, err := l1.HandleBearerRequest(BearerRequest{UE: "u3s", BS: "b1", Prefix: "pfx"}); err != nil {
		t.Fatal(err)
	}
	pkt := &dataplane.Packet{UE: "u3s", DstPrefix: "pfx"}
	res, err := net.Inject("S1", rpA.ID, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("stack 3-level path: %v at %v (%v)", res.Disposition, res.EgressPort, pkt)
	}
	if res.MaxLabelDepth < 2 {
		t.Fatalf("stack-mode 3-level depth = %d, want ≥ 2 (grows with hierarchy)", res.MaxLabelDepth)
	}
	if res.MaxLabelDepth <= 1 {
		t.Fatal("stacking must exceed swapping's depth")
	}
	if pkt.LabelDepth() != 0 {
		t.Fatal("packet must leave unlabeled")
	}
}
