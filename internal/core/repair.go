package core

import (
	"sort"

	"repro/internal/dataplane"
	"repro/internal/routing"
)

// Switch and link failure recovery (§6): "the controller finds affected
// local paths and implements alternative shortest paths with the same
// performance. ... If the failure affects the exposed G-switch and virtual
// fabric in a way that cannot be masked from the ancestor controllers,
// changes are reflected bottom up which may cause upper-level controllers
// to recompute new paths."

// RepairPaths re-routes every active path of this controller that
// traverses the given (now unusable) port. It returns the repaired and
// failed path IDs. Paths with no alternative stay broken (and deactivate),
// mirroring the escalation to ancestors in the paper.
func (c *Controller) RepairPaths(ref dataplane.PortRef) (repaired, failed []PathID) {
	type job struct {
		id   PathID
		path *routing.Path
	}
	var jobs []job
	c.mu.Lock()
	for id, rec := range c.paths {
		if !rec.Active || rec.lastPath == nil {
			continue
		}
		if pathUses(rec.lastPath, ref) {
			jobs = append(jobs, job{id: id, path: rec.lastPath})
		}
	}
	c.mu.Unlock()
	// Repair in path-id order, not map order: rule installs and removals
	// reach the seed-replayed data plane.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })

	// The NIB mutation for the failure advanced the generation, so this is
	// a fresh (cache-missed) view that excludes the failed link.
	g := c.Graph()
	for _, j := range jobs {
		src := j.path.Points[0]
		dst := j.path.Points[len(j.path.Points)-1]
		alt, err := g.ShortestPath(src, dst, routing.MinHops, routing.Constraints{})
		if err != nil {
			c.mu.Lock()
			rec, ok := c.paths[j.id]
			var owner string
			if ok {
				rec.Active = false
				owner = rec.Owner
			}
			c.mu.Unlock()
			if ok {
				// drop the dead rules so traffic punts instead of blackholing;
				// removals are idempotent filters and the path is already
				// marked failed, so a partial cleanup cannot make it worse
				//softmow:allow errdiscard best-effort cleanup of an already-failed path
				_ = c.runPerDevice(c.Devices(), func(d Device) error {
					return d.RemoveRules(owner)
				})
			}
			failed = append(failed, j.id)
			continue
		}
		if err := c.ReroutePath(j.id, alt); err != nil {
			failed = append(failed, j.id)
			continue
		}
		repaired = append(repaired, j.id)
	}
	return repaired, failed
}

// pathUses reports whether a path's point sequence touches the port.
func pathUses(p *routing.Path, ref dataplane.PortRef) bool {
	for _, pt := range p.Points {
		if pt == ref {
			return true
		}
	}
	return false
}

// HandleLinkFailure combines the NIB update with local path repair — the
// full §6 reaction to a Port-Status down event. It returns the repair
// outcome for observability.
func (c *Controller) HandleLinkFailure(dev dataplane.DeviceID, port dataplane.PortID) (repaired, failed []PathID) {
	ref := dataplane.PortRef{Dev: dev, Port: port}
	// Collect every far end first (a port can anchor several link records
	// after reconfigurations), so paths entering on any other side are
	// repaired too.
	var fars []dataplane.PortRef
	for _, l := range c.NIB.LinksOf(dev) {
		if l.A == ref {
			fars = append(fars, l.B)
		} else if l.B == ref {
			fars = append(fars, l.A)
		}
	}
	c.HandlePortStatus(dev, port, false)
	repaired, failed = c.RepairPaths(ref)
	for _, far := range fars {
		r2, f2 := c.RepairPaths(far)
		repaired = append(repaired, r2...)
		failed = append(failed, f2...)
	}
	return repaired, failed
}
