package core

import (
	"net"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/southbound"
)

// connHarness wires two switches with protocol agents and a controller
// that reaches them over southbound connections, as the paper's leaf
// prototype does over OpenFlow.
type connHarness struct {
	net  *dataplane.Network
	ctrl *Controller
	devs map[dataplane.DeviceID]*ConnDevice
}

func newConnHarness(t *testing.T) *connHarness {
	t.Helper()
	net := dataplane.NewNetwork()
	net.AddSwitch("S1")
	net.AddSwitch("S2")
	if _, err := net.Connect("S1", "S2", 5*time.Millisecond, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddEgress("E1", "S2", "isp"); err != nil {
		t.Fatal(err)
	}
	ctrl := NewController("L1", 1, 0)
	h := &connHarness{net: net, ctrl: ctrl, devs: map[dataplane.DeviceID]*ConnDevice{}}
	for _, id := range []dataplane.DeviceID{"S1", "S2"} {
		agent := southbound.NewSwitchAgent(net, net.Switch(id))
		a, b := southbound.Pipe(64)
		go agent.Serve(b)
		dev, err := DialDevice(a, ctrl.ID)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dev.Close() })
		if dev.ID() != id {
			t.Fatalf("dialed device id = %s", dev.ID())
		}
		ctrl.AttachDevice(dev)
		h.devs[id] = dev
	}
	return h
}

// waitLinks polls until the controller's NIB holds n links.
func (h *connHarness) waitLinks(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h.ctrl.NIB.NumLinks() >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("NIB has %d links, want %d", h.ctrl.NIB.NumLinks(), n)
}

func TestConnDeviceFeaturesAndNIB(t *testing.T) {
	h := newConnHarness(t)
	d, ok := h.ctrl.NIB.Device("S2")
	if !ok {
		t.Fatal("S2 not in NIB")
	}
	foundExt := false
	for _, p := range d.Ports {
		if p.External && p.ExternalDomain == "isp" {
			foundExt = true
		}
	}
	if !foundExt {
		t.Fatal("external port not learned over the wire")
	}
}

func TestConnDeviceDiscoveryOverProtocol(t *testing.T) {
	h := newConnHarness(t)
	h.ctrl.RunDiscovery()
	h.waitLinks(t, 1)
	l := h.ctrl.NIB.Links()[0]
	if l.Latency != 5*time.Millisecond {
		t.Fatalf("link meta not carried over the wire: %+v", l)
	}
	if l.Bandwidth != 1000 {
		t.Fatalf("bandwidth meta = %v", l.Bandwidth)
	}
}

func TestConnDeviceFlowModAndPacketIn(t *testing.T) {
	h := newConnHarness(t)
	dev := h.devs["S1"]
	if err := dev.InstallRule(dataplane.Rule{
		Priority: 10,
		Match:    dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1},
		Actions:  []dataplane.Action{dataplane.Output(1)},
		Owner:    "t",
	}); err != nil {
		t.Fatal(err)
	}
	if h.net.Switch("S1").Table.Len() != 1 {
		t.Fatal("rule not installed on the physical switch")
	}

	// An unmatched packet punts; the event arrives at the controller over
	// the connection.
	h.net.Inject("S1", dataplane.PortAny, &dataplane.Packet{UE: "other"})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h.ctrl.StatsSnapshot().PacketIns > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h.ctrl.StatsSnapshot().PacketIns == 0 {
		t.Fatal("packet-in never reached the controller")
	}

	if err := dev.RemoveRules("t"); err != nil {
		t.Fatal(err)
	}
	if h.net.Switch("S1").Table.Len() != 0 {
		t.Fatal("rule not removed")
	}
}

func TestConnDevicePortStatusEvent(t *testing.T) {
	h := newConnHarness(t)
	h.ctrl.RunDiscovery()
	h.waitLinks(t, 1)
	h.net.SetLinkState(h.net.Links()[0], false)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		// The record survives, marked down, ready for restoration.
		if h.ctrl.NIB.NumLinks() == 1 && h.ctrl.NIB.NumUpLinks() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("link failure event never marked the NIB link down (links=%d up=%d)",
		h.ctrl.NIB.NumLinks(), h.ctrl.NIB.NumUpLinks())
}

// TestEqualRoleRegionHandover exercises the §5.3.2 control-transfer dance
// over the wire protocol: the source controller grants the target EQUAL
// role (both see all events), then steps down to SLAVE, leaving the target
// as the sole writer.
func TestEqualRoleRegionHandover(t *testing.T) {
	net := dataplane.NewNetwork()
	sw := net.AddSwitch("SX")
	agent := southbound.NewSwitchAgent(net, sw)

	dial := func(name string) *ConnDevice {
		a, b := southbound.Pipe(64)
		go agent.Serve(b)
		dev, err := DialDevice(a, name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dev.Close() })
		return dev
	}
	src := dial("leaf-src")
	dst := dial("leaf-dst")

	// Step 1: the target connects with equal role — both may modify.
	if role, err := dst.SetRole("leaf-dst", southbound.RoleEqual); err != nil || role != southbound.RoleEqual {
		t.Fatalf("equal role: %v %v", role, err)
	}
	if err := dst.InstallRule(dataplane.Rule{Priority: 1, Match: dataplane.AnyMatch(), Owner: "dst"}); err != nil {
		t.Fatalf("equal-role install: %v", err)
	}

	// Step 2: both controllers receive duplicated events.
	roles := agent.Roles()
	if roles["leaf-src"] != southbound.RoleMaster || roles["leaf-dst"] != southbound.RoleEqual {
		t.Fatalf("roles = %v", roles)
	}

	// Step 3: the source steps down; its writes are now refused and the
	// target takes the master role.
	if _, err := src.SetRole("leaf-src", southbound.RoleSlave); err != nil {
		t.Fatal(err)
	}
	if err := src.InstallRule(dataplane.Rule{Priority: 1, Match: dataplane.AnyMatch(), Owner: "src"}); err == nil {
		t.Fatal("slave write should be refused")
	}
	if _, err := dst.SetRole("leaf-dst", southbound.RoleMaster); err != nil {
		t.Fatal(err)
	}
	if sw.Table.Len() != 1 {
		t.Fatalf("table has %d rules, want only the target's", sw.Table.Len())
	}
}

func TestConnDeviceOverTCP(t *testing.T) {
	southbound.RegisterGobTypes(&discovery.Frame{})
	net := dataplane.NewNetwork()
	net.AddSwitch("S1")
	net.AddSwitch("S2")
	net.Connect("S1", "S2", time.Millisecond, 100)
	ctrl := NewController("L1", 1, 0)

	for _, id := range []dataplane.DeviceID{"S1", "S2"} {
		agent := southbound.NewSwitchAgent(net, net.Switch(id))
		ln := newLocalListener(t)
		go func() {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			agent.Serve(southbound.NewGobConn(nc))
		}()
		nc := dialLocal(t, ln)
		dev, err := DialDevice(southbound.NewGobConn(nc), ctrl.ID)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dev.Close() })
		ctrl.AttachDevice(dev)
	}
	ctrl.RunDiscovery()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if ctrl.NIB.NumLinks() >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("TCP-backed discovery found %d links", ctrl.NIB.NumLinks())
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialLocal(t *testing.T, ln net.Listener) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return nc
}
