package core

import (
	"repro/internal/dataplane"
	"repro/internal/reca"
	"repro/internal/southbound"
)

// ComputeAbstraction runs RecA's topology abstraction (§4.1.3): the
// controller collapses its discovered topology into one G-switch with a
// virtual fabric, G-BSes (border ones one-to-one), and per-type
// G-middleboxes, ready to expose to the parent.
func (c *Controller) ComputeAbstraction() *reca.Abstraction {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	// Reuse the controller's cached routing graph for the fabric fill; it
	// is revalidated against the NIB generation, so it always reflects the
	// NIB contents the abstraction is computed from.
	ab := reca.ComputeWithGraph(c.ID, c.NIB, cfg, c.Graph())
	c.mu.Lock()
	c.abstraction = &ab
	c.stats.Reabstractions++
	c.mu.Unlock()
	return &ab
}

// Abstraction returns the last computed abstraction, or nil.
func (c *Controller) Abstraction() *reca.Abstraction {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abstraction
}

// RecAFeatures builds the feature reply the controller's RecA agent
// answers to its parent's feature request — the G-switch with its virtual
// fabric and attached logical devices (§3.3).
func (c *Controller) RecAFeatures() southbound.FeatureReply {
	ab := c.Abstraction()
	if ab == nil {
		ab = c.ComputeAbstraction()
	}
	fr := southbound.FeatureReply{
		Device: ab.GSwitch.ID,
		Kind:   dataplane.KindGSwitch,
		Fabric: ab.GSwitch.Fabric,
	}
	for _, gp := range ab.GSwitch.Ports {
		fr.Ports = append(fr.Ports, southbound.PortInfo{
			ID: gp.ID, Up: true, External: gp.External,
			ExternalDomain: gp.ExternalDomain, Radio: gp.GBS,
			Underlying: gp.Underlying,
		})
	}
	fr.GBSes = append(fr.GBSes, ab.GBSes...)
	fr.GMiddleboxes = append(fr.GMiddleboxes, ab.GMiddleboxes...)
	return fr
}

// RefreshFabric implements the §3.2 bandwidth-update protocol: "if the
// available bandwidth exposed for a port pair in the child controller's
// data plane changes more than a predetermined threshold, the child
// controller will recompute new bandwidths, update the vFabric and notify
// the parent." The controller re-measures its links (one discovery round),
// recomputes the fabric, and — only when the drift exceeds thresholdMbps —
// pushes the updated G-switch record to the parent's NIB. Reports whether
// a notification was sent.
func (c *Controller) RefreshFabric(thresholdMbps float64) bool {
	c.RunDiscovery() // refresh link records (available bandwidth rides the meta field)
	c.mu.Lock()
	cfg := c.cfg
	old := c.abstraction
	c.mu.Unlock()
	ab := reca.ComputeWithGraph(c.ID, c.NIB, cfg, c.Graph())
	var oldFabric *dataplane.VFabric
	if old != nil {
		oldFabric = old.GSwitch.Fabric
	}
	changed := ab.GSwitch.Fabric.DiffExceeds(oldFabric, thresholdMbps)
	if !changed {
		return false
	}
	c.mu.Lock()
	c.abstraction = &ab
	c.mu.Unlock()
	pl := c.ParentLinkRef()
	if pl == nil {
		return true
	}
	// Update the parent's device record in place — ports are unchanged, so
	// links survive and no rediscovery is needed.
	_ = pl.FabricUpdated(ab.GSwitch.Fabric) //softmow:allow errdiscard §3.2 update is advisory; a failed remote push retries on the next threshold crossing
	return true
}

// Reabstract recomputes this controller's abstraction and refreshes the
// parent's view, recursively updating ancestors ("the logical regions are
// updated from bottom to top in a recursive fashion", §5.3.2). The parent
// also re-runs discovery to find inter-G-switch links whose endpoints
// changed.
func (c *Controller) Reabstract() {
	c.ComputeAbstraction()
	pl := c.ParentLinkRef()
	if pl == nil {
		return
	}
	_ = pl.ChildRefreshed() //softmow:allow errdiscard a failed remote refresh surfaces on the conn; the next reabstraction re-pushes the full view
}
