package core

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/nib"
	"repro/internal/routing"
	"repro/internal/topo"
)

// Property-style invariant tests over generated topologies (DESIGN.md §5).

// buildHierarchyOver partitions a generated topology into k leaf regions
// (no radio) and bootstraps a 2-level hierarchy.
func buildHierarchyOver(t *testing.T, seed int64, switches, k int) (*topo.Topology, []topo.Region, *Hierarchy) {
	t.Helper()
	tp := topo.Generate(topo.Params{Seed: seed, NumSwitches: switches})
	regions := topo.Partition(tp, k)
	specs := make([]LeafSpec, len(regions))
	for i, r := range regions {
		specs[i] = LeafSpec{ID: "L" + r.ID, Switches: r.Switches}
	}
	h, err := NewTwoLevel(tp.Net, "root", specs)
	if err != nil {
		t.Fatal(err)
	}
	return tp, regions, h
}

// Invariant 2 (DESIGN.md): every physical link is discovered by exactly
// one controller — the leaf owning both endpoints, or the root for
// cross-region links.
func TestDiscoveryCompletenessAndUniqueness(t *testing.T) {
	for _, seed := range []int64{1, 7, 2026} {
		tp, regions, h := buildHierarchyOver(t, seed, 72, 4)
		regionOf := topo.RegionOf(regions)

		// Each physical link must appear in exactly one controller's NIB.
		leafLinks := make(map[nib.LinkKey]string)
		for _, leaf := range h.Leaves {
			for _, l := range leaf.NIB.Links() {
				k := l.Key()
				if prev, dup := leafLinks[k]; dup {
					t.Fatalf("seed %d: link %v discovered by %s and %s", seed, k, prev, leaf.ID)
				}
				leafLinks[k] = leaf.ID
			}
		}
		intra, cross := 0, 0
		for _, l := range tp.Net.Links() {
			ra, rb := regionOf[l.A.Dev], regionOf[l.B.Dev]
			k := nib.NewLinkKey(l.A, l.B)
			if ra == rb {
				intra++
				owner, ok := leafLinks[k]
				if !ok {
					t.Fatalf("seed %d: intra-region link %v undiscovered", seed, k)
				}
				if owner != "L"+regions[ra].ID {
					t.Fatalf("seed %d: link %v owned by %s, expected %s", seed, k, owner, regions[ra].ID)
				}
			} else {
				cross++
				if _, leaked := leafLinks[k]; leaked {
					t.Fatalf("seed %d: cross-region link %v visible at a leaf", seed, k)
				}
			}
		}
		// The root sees exactly one logical link per physical cross link.
		if got := h.Root.NIB.NumLinks(); got != cross {
			t.Fatalf("seed %d: root discovered %d links, want %d", seed, got, cross)
		}
		if intra == 0 || cross == 0 {
			t.Fatalf("seed %d: degenerate partition (intra=%d cross=%d)", seed, intra, cross)
		}
	}
}

// Invariant 3 (DESIGN.md): every reachable vFabric pair advertises exactly
// the shortest internal (hops, latency) between its underlying ports, and
// never overstates the bottleneck bandwidth.
func TestVFabricSoundness(t *testing.T) {
	_, _, h := buildHierarchyOver(t, 11, 48, 3)
	for _, leaf := range h.Leaves {
		ab := leaf.Abstraction()
		g := routing.BuildGraph(leaf.NIB)
		ports := ab.GSwitch.Ports
		checked := 0
		for i := 0; i < len(ports); i++ {
			for j := i + 1; j < len(ports); j++ {
				m, ok := ab.GSwitch.Fabric.Get(ports[i].ID, ports[j].ID)
				if !ok {
					t.Fatalf("%s: missing fabric pair %d-%d", leaf.ID, ports[i].ID, ports[j].ID)
				}
				p, err := g.ShortestPath(ports[i].Underlying, ports[j].Underlying,
					routing.MinHops, routing.Constraints{})
				if err != nil {
					if m.Reachable {
						t.Fatalf("%s: fabric says reachable, graph disagrees", leaf.ID)
					}
					continue
				}
				if !m.Reachable {
					t.Fatalf("%s: fabric says unreachable, graph found %d hops", leaf.ID, p.Cost.Hops)
				}
				if m.Hops != p.Cost.Hops || m.Latency != p.Cost.Latency {
					t.Fatalf("%s: fabric %d-%d advertises %dh/%v, shortest is %dh/%v",
						leaf.ID, ports[i].ID, ports[j].ID, m.Hops, m.Latency, p.Cost.Hops, p.Cost.Latency)
				}
				if m.Bandwidth > p.Cost.Bottleneck {
					t.Fatalf("%s: fabric overstates bandwidth (%v > %v)",
						leaf.ID, m.Bandwidth, p.Cost.Bottleneck)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s exposed no port pairs", leaf.ID)
		}
	}
}

// Invariant 4 (DESIGN.md): the root's route for the same request is never
// worse than any leaf's.
func TestRootNeverWorseThanLeaf(t *testing.T) {
	f := buildFig5(t, 0)
	for _, pfx := range []string{"pfxNear", "pfxFar"} {
		leafRes, leafErr := f.l1.Route(RouteRequest{From: f.radioA, Prefix: interdomain.PrefixID(pfx)})
		gbsPort, ok := f.root.AttachOfGroup("gA")
		if !ok {
			t.Fatal("no root attachment")
		}
		rootRes, rootErr := f.root.Route(RouteRequest{From: gbsPort, Prefix: interdomain.PrefixID(pfx)})
		if rootErr != nil {
			t.Fatalf("root cannot route %s: %v", pfx, rootErr)
		}
		if leafErr == nil && rootRes.TotalHops > leafRes.TotalHops {
			t.Fatalf("%s: root (%d hops) worse than leaf (%d)", pfx, rootRes.TotalHops, leafRes.TotalHops)
		}
	}
}

// Invariant 1 (DESIGN.md): with recursive swapping, every delivered packet
// observed depth ≤ 1 on all links for every admitted flow, across a
// generated multi-region scenario. Exercised end-to-end in
// TestDelegatedBearerPathCrossesRegions and cmd/softmow; here we recheck
// the whole flow table population for swap-breaking rule shapes.
func TestNoStackingRulesInSwapMode(t *testing.T) {
	f := buildFig5(t, 0)
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u", BS: "b1", Prefix: "pfxFar"}); err != nil {
		t.Fatal(err)
	}
	for _, sw := range f.net.Switches() {
		for _, r := range sw.Table.Rules() {
			pushes := 0
			for _, a := range r.Actions {
				if a.Op == dataplane.OpPushLabel {
					pushes++
				}
			}
			if pushes > 1 {
				t.Fatalf("swap-mode rule pushes %d labels on %s: %v", pushes, sw.ID, r)
			}
			// a rule that pushes must match unlabeled traffic only
			if pushes == 1 && !r.Match.MatchNoLabel {
				for _, a := range r.Actions {
					if a.Op == dataplane.OpPopLabel || a.Op == dataplane.OpSwapLabel {
						goto ok // pop+push or swap combinations keep depth
					}
				}
				t.Fatalf("rule grows label depth on labeled traffic: %v", r)
			}
		ok:
		}
	}
}

