package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/reca"
	"repro/internal/routing"
)

// TestLinkFlapFixpoint flaps the two diamond arms alternately: each flap
// fails the arm currently carrying the path, forcing a repair onto the
// other arm, then restores the link. After every cycle the controller must
// return to its pre-flap fixpoint — same active path count, same NIB link
// records (all up again), same installed-rule count — and traffic must
// still egress with at most one label per packet.
func TestLinkFlapFixpoint(t *testing.T) {
	f := buildRerouteFixture(t)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	if _, err := f.leaf.SetupPath(match, f.pathVia(t, routing.MinHops)); err != nil {
		t.Fatal(err)
	}

	countRules := func() int {
		total := 0
		for _, sw := range f.net.Switches() {
			total += sw.Table.Len()
		}
		return total
	}
	findLink := func(a, b dataplane.DeviceID) *dataplane.Link {
		for _, l := range f.net.Links() {
			if (l.A.Dev == a && l.B.Dev == b) || (l.A.Dev == b && l.B.Dev == a) {
				return l
			}
		}
		t.Fatalf("no %s-%s link", a, b)
		return nil
	}

	wantPaths := f.leaf.NumPaths()
	wantLinks := f.leaf.NIB.NumLinks()
	wantRules := countRules()

	arms := []*dataplane.Link{findLink("S1", "S2"), findLink("S1", "S3")}
	const flaps = 6
	for i := 0; i < flaps; i++ {
		l := arms[i%2] // always the arm the path currently uses
		f.net.SetLinkState(l, false)
		ref := l.A
		if ref.Dev != "S1" {
			ref = l.B
		}
		repaired, failed := f.leaf.HandleLinkFailure(ref.Dev, ref.Port)
		if len(failed) != 0 || len(repaired) != 1 {
			t.Fatalf("flap %d: repaired=%v failed=%v", i, repaired, failed)
		}
		f.net.SetLinkState(l, true)

		if got := f.leaf.NumPaths(); got != wantPaths {
			t.Fatalf("flap %d: paths=%d want %d", i, got, wantPaths)
		}
		if got := f.leaf.NIB.NumLinks(); got != wantLinks {
			t.Fatalf("flap %d: NIB links=%d want %d", i, got, wantLinks)
		}
		if got := f.leaf.NIB.NumUpLinks(); got != wantLinks {
			t.Fatalf("flap %d: up links=%d want %d (restore lost)", i, got, wantLinks)
		}
		if got := countRules(); got != wantRules {
			t.Fatalf("flap %d: rules=%d want %d", i, got, wantRules)
		}
		res := f.drive(t)
		if res.Disposition != dataplane.DispEgressed {
			t.Fatalf("flap %d: disposition %v", i, res.Disposition)
		}
		if res.MaxLabelDepth > 1 {
			t.Fatalf("flap %d: label depth %d", i, res.MaxLabelDepth)
		}
	}
}

// TestTranslateRuleRollbackOnInstallFault drives a classification fan-out
// (an internal G-BS with two constituent attachments) into an injected
// install failure at the second source: the first source's already
// installed rules must be rolled back so no rule under the parent's
// owner/version survives.
func TestTranslateRuleRollbackOnInstallFault(t *testing.T) {
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"A1", "A2", "E"} {
		net.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"A1", "E"}, {"A2", "E"}} {
		if _, err := net.Connect(pair[0], pair[1], time.Millisecond, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rp1, _ := net.AddRadioPort("A1", "g1")
	rp2, _ := net.AddRadioPort("A2", "g2")
	if _, err := net.AddEgress("E1", "E", "isp"); err != nil {
		t.Fatal(err)
	}
	h, err := NewTwoLevel(net, "root", []LeafSpec{{
		ID:       "L1",
		Switches: []dataplane.DeviceID{"A1", "A2", "E"},
		Radios: []reca.RadioAttachment{
			{ID: "g1", Attach: dataplane.PortRef{Dev: "A1", Port: rp1.ID}, Border: false},
			{ID: "g2", Attach: dataplane.PortRef{Dev: "A2", Port: rp2.ID}, Border: false},
		},
		BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "g1", "b2": "g2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	leaf := h.Leaves[0]
	ab := leaf.Abstraction()
	var gbsPort, egPort dataplane.PortID
	for _, gp := range ab.GSwitch.Ports {
		if gp.GBS != "" {
			gbsPort = gp.ID
		}
		if gp.External {
			egPort = gp.ID
		}
	}
	if gbsPort == 0 || egPort == 0 {
		t.Fatalf("fixture: gbsPort=%d egPort=%d", gbsPort, egPort)
	}

	// Fail every install on A2 — the second fan-out source — after A1's
	// path installed cleanly.
	net.SetInstallFault(func(sw dataplane.DeviceID, r *dataplane.Rule) error {
		if sw == "A2" {
			return fmt.Errorf("injected install fault on %s", sw)
		}
		return nil
	})
	vrule := dataplane.Rule{
		Priority: 100, Version: 7, Owner: "root/p99",
		Match:   dataplane.Match{InPort: gbsPort, MatchNoLabel: true, UE: "u1", QoS: -1},
		Actions: []dataplane.Action{dataplane.Push(42), dataplane.Output(egPort)},
	}
	installedBefore := leaf.StatsSnapshot().RulesInstalled
	if err := leaf.TranslateRule(vrule); err == nil {
		t.Fatal("expected the injected fault to fail the translation")
	}
	if leaf.StatsSnapshot().RulesInstalled <= installedBefore {
		t.Fatal("fixture did not install anything before the fault — rollback unexercised")
	}
	for _, sw := range net.Switches() {
		for _, r := range sw.Table.Rules() {
			if r.Owner == "root/p99" {
				t.Fatalf("partial install survived on %s: %v", sw.ID, r)
			}
		}
	}

	// With the fault cleared the same virtual rule installs end to end.
	net.SetInstallFault(nil)
	if err := leaf.TranslateRule(vrule); err != nil {
		t.Fatalf("clean retry failed: %v", err)
	}
	rules := 0
	for _, sw := range net.Switches() {
		for _, r := range sw.Table.Rules() {
			if r.Owner == "root/p99" {
				rules++
			}
		}
	}
	if rules == 0 {
		t.Fatal("clean retry installed nothing")
	}
}
