package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/nib"
	"repro/internal/southbound"
	"repro/internal/testutil/leakcheck"
)

// probeDev is a minimal single-port Device whose discovery frames loop
// straight back to the controller as arrivals at its peer — the in-test
// stand-in for a physical link.
type probeDev struct {
	id   dataplane.DeviceID
	ctrl *Controller
	peer dataplane.PortRef

	mu sync.Mutex
	// emits counts EmitDiscovery calls, guarded by mu.
	emits int
}

func (d *probeDev) ID() dataplane.DeviceID { return d.id }
func (d *probeDev) Features() southbound.FeatureReply {
	return southbound.FeatureReply{
		Device: d.id,
		Kind:   dataplane.KindSwitch,
		Ports:  []southbound.PortInfo{{ID: 1, Up: true}},
	}
}
func (d *probeDev) InstallRule(dataplane.Rule) error      { return nil }
func (d *probeDev) RemoveRules(string) error              { return nil }
func (d *probeDev) RemoveRulesBefore(string, int) error   { return nil }
func (d *probeDev) RemoveRulesVersion(string, int) error  { return nil }
func (d *probeDev) EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error {
	d.mu.Lock()
	d.emits++
	d.mu.Unlock()
	if d.ctrl != nil && d.peer.Dev != "" {
		d.ctrl.HandleDiscoveryArrival(d.peer.Dev, d.peer.Port, f)
	}
	return nil
}

func (d *probeDev) emitCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.emits
}

// pingableDev adds the Pinger extension with a switchable outage.
type pingableDev struct {
	probeDev
	down atomic.Bool
}

func (d *pingableDev) Ping(time.Duration) error {
	if d.down.Load() {
		return errors.New("probe lost")
	}
	return nil
}

// TestLivenessSuspectAndRediscovery walks the full sOFTDP-style cycle:
// healthy probes, consecutive misses crossing SuspectAfter (links marked
// down), a healed channel triggering a targeted rediscovery that restores
// the link — without the unreachable peer ever being re-probed in full.
func TestLivenessSuspectAndRediscovery(t *testing.T) {
	c := NewController("L", 0, 0)
	a := &pingableDev{}
	a.id, a.ctrl, a.peer = "SA", c, dataplane.PortRef{Dev: "SB", Port: 1}
	b := &probeDev{id: "SB", ctrl: c, peer: dataplane.PortRef{Dev: "SA", Port: 1}}
	c.AttachDevice(a)
	c.AttachDevice(b)
	link := nib.Link{
		A:  dataplane.PortRef{Dev: "SA", Port: 1},
		B:  dataplane.PortRef{Dev: "SB", Port: 1},
		Up: true,
	}
	c.NIB.PutLink(link)

	p := NewLivenessProber(c, LivenessConfig{
		Interval:     time.Hour, // rounds driven explicitly
		Timeout:      10 * time.Millisecond,
		SuspectAfter: 2,
	})

	p.ProbeOnce()
	if s := p.Stats(); s.Probes != 1 || s.Misses != 0 {
		t.Fatalf("healthy round: %+v (only SA implements Pinger)", s)
	}

	a.down.Store(true)
	p.ProbeOnce()
	if l, ok := c.NIB.LinkByKey(link.Key()); !ok || !l.Up {
		t.Fatalf("one miss must not mark the link down: %+v ok=%v", l, ok)
	}
	if len(p.Suspects()) != 0 {
		t.Fatalf("suspect after a single miss: %v", p.Suspects())
	}

	p.ProbeOnce() // second consecutive miss crosses SuspectAfter
	if got := p.Suspects(); len(got) != 1 || got[0] != "SA" {
		t.Fatalf("suspects = %v, want [SA]", got)
	}
	if l, ok := c.NIB.LinkByKey(link.Key()); !ok || l.Up {
		t.Fatalf("suspect device's link still up: %+v ok=%v", l, ok)
	}
	if s := p.Stats(); s.Suspects != 1 || s.Misses != 2 {
		t.Fatalf("after suspicion: %+v", s)
	}

	p.ProbeOnce() // third miss: already suspect, no re-declaration
	if s := p.Stats(); s.Suspects != 1 {
		t.Fatalf("suspect re-declared: %+v", s)
	}

	aEmits, bEmits := a.emitCount(), b.emitCount()
	a.down.Store(false)
	p.ProbeOnce()
	if got := p.Suspects(); len(got) != 0 {
		t.Fatalf("recovered device still suspect: %v", got)
	}
	if s := p.Stats(); s.Rediscoveries != 1 {
		t.Fatalf("rediscoveries = %d, want 1", s.Rediscoveries)
	}
	if a.emitCount() <= aEmits {
		t.Fatal("recovery did not re-emit discovery from the healed device")
	}
	if b.emitCount() != bEmits {
		t.Fatal("targeted rediscovery leaked into unrelated devices (full refresh)")
	}
	if l, ok := c.NIB.LinkByKey(link.Key()); !ok || !l.Up {
		t.Fatalf("rediscovery did not restore the link: %+v ok=%v", l, ok)
	}
}

// TestLivenessProberStartStop: the periodic loop probes on its own and
// Stop is idempotent and leak-free.
func TestLivenessProberStartStop(t *testing.T) {
	leakcheck.Check(t)
	c := NewController("L", 0, 0)
	d := &pingableDev{}
	d.id = "SA"
	c.AttachDevice(d)
	p := NewLivenessProber(c, LivenessConfig{Interval: time.Millisecond})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Probes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic loop never probed")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
}
