package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/pathimpl"
)

// TestLockUESerializesSameUE: a held per-UE operation lock blocks a second
// operation on the same UE until released.
func TestLockUESerializesSameUE(t *testing.T) {
	s := newUEState(8)
	release := s.lockUE("u1")
	acquired := make(chan struct{})
	go func() {
		done := s.lockUE("u1")
		close(acquired)
		done()
	}()
	select {
	case <-acquired:
		t.Fatal("second op on the same UE acquired while the first was held")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("second op never acquired after release")
	}
}

// TestLockUEParallelDistinctUEs: operations on different UEs do not block
// each other, even when they hash to the same shard.
func TestLockUEParallelDistinctUEs(t *testing.T) {
	s := newUEState(2) // 2 shards force plenty of same-shard UE pairs
	release := s.lockUE("u-held")
	defer release()
	for i := 0; i < 32; i++ {
		ue := fmt.Sprintf("u%d", i)
		acquired := make(chan struct{})
		go func() {
			done := s.lockUE(ue)
			close(acquired)
			done()
		}()
		select {
		case <-acquired:
		case <-time.After(time.Second):
			t.Fatalf("op on %s blocked behind unrelated held UE", ue)
		}
	}
}

// TestLockUEReclaimsOpLocks: released op locks leave the shard's ops map
// so the registry does not grow with the UE population.
func TestLockUEReclaimsOpLocks(t *testing.T) {
	s := newUEState(4)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			done := s.lockUE(fmt.Sprintf("u%d", i))
			done()
		}(i)
	}
	wg.Wait()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n := len(sh.ops)
		sh.mu.Unlock()
		if n != 0 {
			t.Fatalf("shard %d retains %d op locks after release", i, n)
		}
	}
}

// TestCoarseModeSerializesEverything: shard count 1 is the single-mutex
// baseline — even distinct UEs serialize.
func TestCoarseModeSerializesEverything(t *testing.T) {
	s := newUEState(1)
	if !s.coarse {
		t.Fatal("1-shard store should be coarse")
	}
	release := s.lockUE("a")
	acquired := make(chan struct{})
	go func() {
		done := s.lockUE("b")
		close(acquired)
		done()
	}()
	select {
	case <-acquired:
		t.Fatal("coarse mode let distinct UEs run concurrently")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("coarse lock never released")
	}
}

// TestSetUEShardCount: rounding to powers of two, coarse selection, and
// the non-empty-store panic.
func TestSetUEShardCount(t *testing.T) {
	c := NewController("c", 1, 0)
	if got := c.UEShardCount(); got != DefaultUEShards {
		t.Fatalf("default shards = %d, want %d", got, DefaultUEShards)
	}
	c.SetRadioIndex(map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"}, nil)
	c.SetUEShardCount(5)
	if got := c.UEShardCount(); got != 8 {
		t.Fatalf("shards after SetUEShardCount(5) = %d, want 8", got)
	}
	// The radio index survives the resize.
	if g, ok := c.GroupOfBS("b1"); !ok || g != "gA" {
		t.Fatal("radio index lost across SetUEShardCount")
	}
	c.SetUEShardCount(1)
	if !c.ue.coarse {
		t.Fatal("1 shard should select coarse mode")
	}
	c.ue.put(&UERecord{UE: "u1"})
	defer func() {
		if recover() == nil {
			t.Fatal("SetUEShardCount with existing UE rows should panic")
		}
	}()
	c.SetUEShardCount(4)
}

// TestReconcileRadioIndexDropsStale is the satellite fix at the unit
// level: reconcile replaces an index wholesale, merge does not, and nil
// leaves an index untouched.
func TestReconcileRadioIndexDropsStale(t *testing.T) {
	c := NewController("c", 2, 0)
	c.SetRadioIndex(
		map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"},
		map[dataplane.DeviceID]dataplane.PortRef{"gA": {Dev: "S1", Port: 1}},
	)
	// Merge keeps gA; reconcile with only gB must drop it.
	c.SetRadioIndex(nil, map[dataplane.DeviceID]dataplane.PortRef{"gB": {Dev: "S2", Port: 2}})
	if _, ok := c.AttachOfGroup("gA"); !ok {
		t.Fatal("merge dropped an unrelated entry")
	}
	c.ReconcileRadioIndex(nil, map[dataplane.DeviceID]dataplane.PortRef{"gB": {Dev: "S9", Port: 9}})
	if _, ok := c.AttachOfGroup("gA"); ok {
		t.Fatal("reconcile kept stale gA attachment")
	}
	ref, ok := c.AttachOfGroup("gB")
	if !ok || ref.Dev != "S9" {
		t.Fatalf("gB attach = %+v ok=%v", ref, ok)
	}
	// bsGroup was nil in the reconcile: untouched.
	if g, ok := c.GroupOfBS("b1"); !ok || g != "gA" {
		t.Fatal("nil bsGroup reconcile must leave the BS index alone")
	}
}

// TestRemoveRadioGroup: the explicit remove path drops the group's
// attachment and every BS mapped to it, leaving other groups alone.
func TestRemoveRadioGroup(t *testing.T) {
	c := NewController("c", 1, 0)
	c.SetRadioIndex(
		map[dataplane.DeviceID]dataplane.DeviceID{"b2": "gA", "b1": "gA", "b3": "gB"},
		map[dataplane.DeviceID]dataplane.PortRef{"gA": {Dev: "S1", Port: 1}, "gB": {Dev: "S3", Port: 1}},
	)
	removed := c.RemoveRadioGroup("gA")
	if len(removed) != 2 || removed[0] != "b1" || removed[1] != "b2" {
		t.Fatalf("removed = %v, want [b1 b2]", removed)
	}
	if _, ok := c.GroupOfBS("b1"); ok {
		t.Fatal("b1 still indexed after RemoveRadioGroup")
	}
	if _, ok := c.AttachOfGroup("gA"); ok {
		t.Fatal("gA attachment still indexed after RemoveRadioGroup")
	}
	if g, ok := c.GroupOfBS("b3"); !ok || g != "gB" {
		t.Fatal("unrelated group disturbed")
	}
}

// TestTransferReconcilesRadioIndexes is the satellite fix at the
// integration level: after a §5.3.2 border-group transfer, the source
// leaf's radio index must no longer resolve the moved group or its BSes,
// and the root's re-derived index must point the group's attachment at the
// target's G-switch, with no stale source entry surviving the reconcile.
func TestTransferReconcilesRadioIndexes(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	srcGSwitch := f.l2.GSwitchID()
	dstGSwitch := f.l1.GSwitchID()
	if ref, ok := f.root.AttachOfGroup("gB"); !ok || ref.Dev != srcGSwitch {
		t.Fatalf("precondition: root attach for gB = %+v ok=%v", ref, ok)
	}
	if err := f.h.TransferBorderGroup("gB", f.l2, f.l1); err != nil {
		t.Fatal(err)
	}
	// Source leaf: both halves of the index are scrubbed.
	if _, ok := f.l2.GroupOfBS("b3"); ok {
		t.Fatal("source leaf still maps b3 after the transfer")
	}
	if _, ok := f.l2.AttachOfGroup("gB"); ok {
		t.Fatal("source leaf still holds gB's attachment after the transfer")
	}
	// Target leaf adopted both halves.
	if g, ok := f.l1.GroupOfBS("b3"); !ok || g != "gB" {
		t.Fatal("target leaf did not adopt b3")
	}
	if _, ok := f.l1.AttachOfGroup("gB"); !ok {
		t.Fatal("target leaf did not adopt gB's attachment")
	}
	// The root re-derives its index from the children; the gB attachment
	// must move to the target's G-switch rather than merge alongside the
	// stale source-side entry.
	RefreshDerived(f.root)
	ref, ok := f.root.AttachOfGroup("gB")
	if !ok {
		t.Fatal("root lost gB after RefreshDerived")
	}
	if ref.Dev != dstGSwitch {
		t.Fatalf("root attach for gB = %+v, want on %s (stale entry kept?)", ref, dstGSwitch)
	}
}

// TestBearerReplacementReleasesOldPath: a repeat bearer request for an
// attached UE replaces the bearer make-before-break and releases the old
// path, so concurrent overlapping attaches cannot leak installed paths.
func TestBearerReplacementReleasesOldPath(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	first, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u1", BS: "b1", Prefix: "pfxNear"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u1", BS: "b2", Prefix: "pfxNear"})
	if err != nil {
		t.Fatal(err)
	}
	if old, ok := first.HandledBy.Path(first.PathID); !ok || old.Active {
		t.Fatalf("replaced path still active: %+v ok=%v", old, ok)
	}
	if cur, ok := second.HandledBy.Path(second.PathID); !ok || !cur.Active {
		t.Fatalf("replacement path not active: %+v ok=%v", cur, ok)
	}
	rec, _ := f.l1.UE("u1")
	if rec.PathID != second.PathID || rec.BS != "b2" {
		t.Fatalf("UE row not rewritten: %+v", rec)
	}
}

// TestConcurrentBearerOpsDistinctUEs drives parallel attach /
// intra-handover / teardown across many UEs (meaningful under -race) and
// checks the table and path books balance afterwards.
func TestConcurrentBearerOpsDistinctUEs(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ue := fmt.Sprintf("u%d", i)
			if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: ue, BS: "b1", Prefix: "pfxNear"}); err != nil {
				errs <- err
				return
			}
			if err := f.l1.Handover(ue, "gA", "b2"); err != nil {
				errs <- err
				return
			}
			if i%2 == 0 {
				if err := f.l1.DeactivateBearer(ue); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := f.l1.UECount(); got != n {
		t.Fatalf("UE count = %d, want %d", got, n)
	}
	active := 0
	for _, rec := range f.l1.UERecords() {
		if rec.Active {
			active++
			if pr, ok := rec.HandledBy.Path(rec.PathID); !ok || !pr.Active {
				t.Fatalf("active UE %s has dead path %d", rec.UE, rec.PathID)
			}
		}
	}
	if active != n/2 {
		t.Fatalf("active UEs = %d, want %d", active, n/2)
	}
}

// TestConcurrentSameUEOps hammers one UE from many goroutines; per-UE
// serialization must keep the row and the path table coherent whatever
// order wins.
func TestConcurrentSameUEOps(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u", BS: "b1", Prefix: "pfxNear"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				_, _ = f.l1.HandleBearerRequest(BearerRequest{UE: "u", BS: "b1", Prefix: "pfxNear"}) //softmow:allow errdiscard stress: failures are legal interleavings
			case 1:
				_ = f.l1.Handover("u", "gA", "b2") //softmow:allow errdiscard stress: failures are legal interleavings
			case 2:
				_ = f.l1.DeactivateBearer("u") //softmow:allow errdiscard stress: failures are legal interleavings
			}
		}(i)
	}
	wg.Wait()
	rec, ok := f.l1.UE("u")
	if !ok {
		t.Fatal("UE row vanished")
	}
	if rec.Active {
		if pr, ok := rec.HandledBy.Path(rec.PathID); !ok || !pr.Active {
			t.Fatalf("active row points at dead path: %+v", rec)
		}
	}
	// Settle to a known state and verify exactly one active path remains
	// across the hierarchy for this UE's owner space.
	if err := f.l1.DeactivateBearer("u"); err != nil {
		t.Fatal(err)
	}
	for _, c := range f.h.All {
		if n := c.NumPaths(); n != 0 {
			t.Fatalf("%s still has %d active paths after drain", c.ID, n)
		}
	}
}
