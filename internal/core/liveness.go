package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/dataplane"
	"repro/internal/metrics"
)

// Control-channel liveness observability: probe attempts, missed echoes,
// suspect declarations, and the targeted rediscoveries that healed them.
var (
	livenessProbes        = metrics.NewCounter("core.discovery.probes")
	livenessMisses        = metrics.NewCounter("core.discovery.probe_misses")
	livenessSuspects      = metrics.NewCounter("core.discovery.suspects")
	livenessRediscoveries = metrics.NewCounter("core.discovery.rediscoveries")
)

// Pinger is the optional Device extension for control-channel liveness:
// one bounded echo round trip. ConnDevice implements it; in-process
// simulated devices don't need it (their "channel" is a function call).
type Pinger interface {
	Ping(timeout time.Duration) error
}

// LivenessConfig parameterizes a prober (sOFTDP-style fast liveness:
// periodic echoes, suspicion after consecutive misses, targeted
// rediscovery on recovery instead of waiting for a full refresh).
type LivenessConfig struct {
	// Interval is the probe period per round.
	Interval time.Duration
	// Timeout bounds each echo round trip.
	Timeout time.Duration
	// SuspectAfter is how many consecutive misses declare the device's
	// control channel suspect.
	SuspectAfter int
}

func (cfg *LivenessConfig) normalize() {
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
}

// LivenessStats snapshots one prober's lifetime counts.
type LivenessStats struct {
	// Probes counts echo attempts.
	Probes int64 `json:"probes"`
	// Misses counts echoes that timed out or failed.
	Misses int64 `json:"misses"`
	// Suspects counts suspect declarations (a device can contribute
	// several across repeated partitions).
	Suspects int64 `json:"suspects"`
	// Rediscoveries counts targeted rediscoveries triggered by a suspect
	// device answering again.
	Rediscoveries int64 `json:"rediscoveries"`
}

// LivenessProber periodically pings every Pinger-capable device of one
// controller. After SuspectAfter consecutive misses the device's NIB
// links are marked down (routing immediately stops using them — the
// paper's reachability contract under a partitioned control channel);
// when a suspect device answers again, the prober triggers a targeted
// RediscoverDevice instead of a full RunDiscovery, so one healed WAN link
// does not cost a topology-wide refresh.
type LivenessProber struct {
	c   *Controller
	cfg LivenessConfig

	mu sync.Mutex
	// misses counts consecutive failed probes per device, guarded by mu.
	misses map[dataplane.DeviceID]int
	// suspect records devices currently declared suspect, guarded by mu.
	suspect map[dataplane.DeviceID]bool
	// stats accumulates lifetime counts, guarded by mu.
	stats LivenessStats

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewLivenessProber builds a prober for c's devices; call Start to probe
// periodically or ProbeOnce to drive rounds explicitly.
func NewLivenessProber(c *Controller, cfg LivenessConfig) *LivenessProber {
	cfg.normalize()
	return &LivenessProber{
		c:       c,
		cfg:     cfg,
		misses:  make(map[dataplane.DeviceID]int),
		suspect: make(map[dataplane.DeviceID]bool),
		stop:    make(chan struct{}),
	}
}

// Start launches the periodic probe loop; Stop terminates it.
func (p *LivenessProber) Start() {
	p.wg.Add(1)
	go p.loop()
}

// Stop halts the probe loop and waits for it to exit. Idempotent.
func (p *LivenessProber) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Stats snapshots the prober's lifetime counts.
func (p *LivenessProber) Stats() LivenessStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Suspects lists the devices currently declared suspect, in no
// particular order (callers needing determinism sort).
func (p *LivenessProber) Suspects() []dataplane.DeviceID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]dataplane.DeviceID, 0, len(p.suspect))
	for id := range p.suspect {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (p *LivenessProber) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.ProbeOnce()
		case <-p.stop:
			return
		}
	}
}

// ProbeOnce runs one probe round over every Pinger-capable device, in
// the controller's deterministic device order. Misses accumulate toward
// suspicion; a suspect device that answers recovers via targeted
// rediscovery.
func (p *LivenessProber) ProbeOnce() {
	for _, d := range p.c.Devices() {
		pinger, ok := d.(Pinger)
		if !ok {
			continue
		}
		livenessProbes.Inc()
		err := pinger.Ping(p.cfg.Timeout)
		p.mu.Lock()
		p.stats.Probes++
		id := d.ID()
		if err != nil {
			p.misses[id]++
			p.stats.Misses++
			newlySuspect := p.misses[id] == p.cfg.SuspectAfter && !p.suspect[id]
			if newlySuspect {
				p.suspect[id] = true
				p.stats.Suspects++
			}
			p.mu.Unlock()
			livenessMisses.Inc()
			if newlySuspect {
				livenessSuspects.Inc()
				p.markLinks(id, false)
			}
			continue
		}
		recovered := p.suspect[id]
		delete(p.suspect, id)
		p.misses[id] = 0
		if recovered {
			p.stats.Rediscoveries++
		}
		p.mu.Unlock()
		if recovered {
			livenessRediscoveries.Inc()
			// The channel is back: rediscover this device's links only.
			// Frames that complete the round trip re-Put their link with
			// Up=true, restoring reachability without touching the rest
			// of the topology.
			p.c.RediscoverDevice(id)
		}
	}
}

// markLinks flips every NIB link touching id to up=false (suspicion) —
// the links survive as records so rediscovery or a port-status can
// restore them.
func (p *LivenessProber) markLinks(id dataplane.DeviceID, up bool) {
	for _, l := range p.c.NIB.LinksOf(id) {
		p.c.NIB.SetLinkUp(l.Key(), up)
	}
}
