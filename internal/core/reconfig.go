package core

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/reca"
)

// TransferBorderGroup executes the §5.3.2 reconfiguration protocol for one
// border BS group: the management plane instructs the source leaf to hand
// the group's data-plane cut (its access switch) to the target leaf,
// transfers UE state, and drives the bottom-up re-abstraction so ancestors
// re-discover the changed inter-G-switch links.
//
// Only border groups are transferable ("the initiator detaches a border
// G-BS connected to a source G-switch and then re-associates it with a
// destination G-switch", §5.3.1).
func (h *Hierarchy) TransferBorderGroup(groupID dataplane.DeviceID, src, dst *Controller) error {
	// Locate the group's attachment in the source configuration.
	srcCfg := src.Config()
	var moved *reca.RadioAttachment
	keep := make([]reca.RadioAttachment, 0, len(srcCfg.Radios))
	for i := range srcCfg.Radios {
		r := srcCfg.Radios[i]
		if r.ID == groupID {
			rr := r
			moved = &rr
			continue
		}
		keep = append(keep, r)
	}
	if moved == nil {
		return fmt.Errorf("core: %s does not control group %s", src.ID, groupID)
	}
	if !moved.Border {
		return fmt.Errorf("core: group %s is not a border group", groupID)
	}

	// Find the cut: the access switch carrying the group.
	accessSW := moved.Attach.Dev
	dev := src.DetachDevice(accessSW)
	if dev == nil {
		return fmt.Errorf("core: access switch %s not under %s", accessSW, src.ID)
	}

	// Flush-on-handover: clear the moved switch's flow table (releasing its
	// bandwidth reservations) before the target assumes mastership. Rules
	// the source installed there through its translation bookkeeping — e.g.
	// for ancestor-owned paths transiting the cut — would otherwise become
	// unremovable: the source no longer owns the switch and the target
	// never installed them, so later teardowns would leak orphaned rules.
	// Affected paths punt at the clean table and are re-established by the
	// §6 repair machinery.
	h.Net.RemoveRulesIf(accessSW, func(*dataplane.Rule) bool { return true })

	// Transfer existing UE states and path information in advance
	// (§5.3.2: "the source controller transfers existing UE states and
	// path information to the target controller").
	transferUEState(src, dst, groupID)

	// Re-associate the data plane cut with the target leaf.
	dst.AttachDevice(dev)
	srcCfg.Radios = keep
	src.SetConfig(srcCfg)
	dstCfg := dst.Config()
	dstCfg.Radios = append(dstCfg.Radios, *moved)
	dst.SetConfig(dstCfg)
	dst.SetRadioIndex(nil, map[dataplane.DeviceID]dataplane.PortRef{groupID: moved.Attach})

	// Both leaves re-discover their (changed) physical regions…
	src.RunDiscovery()
	dst.RunDiscovery()
	// …and the logical data planes update bottom-up; each Reabstract also
	// makes the parent re-run discovery over the new border ports
	// ("Updating logical data planes", §5.3.2).
	src.Reabstract()
	dst.Reabstract()
	return nil
}

// transferUEState moves UE table rows for UEs camped on the moved group,
// plus the BS→group index entries. Shard-aware: takeGroup/putAll walk the
// striped tables (returning stable, sorted sets so any logging or
// follow-up per-UE work added here stays replay-deterministic), and
// RemoveRadioGroup is the explicit remove path that keeps the source's
// radio index from accumulating stale entries for the departed group. The
// §5.3.2 protocol drains the group's bearers before the transfer, so no
// per-UE operation is in flight on the moved rows.
func transferUEState(src, dst *Controller, groupID dataplane.DeviceID) {
	movedUEs := src.ue.takeGroup(groupID)
	movedBS := src.RemoveRadioGroup(groupID)

	dst.ue.putAll(movedUEs)
	adopt := make(map[dataplane.DeviceID]dataplane.DeviceID, len(movedBS))
	for _, bs := range movedBS {
		adopt[bs] = groupID
	}
	dst.SetRadioIndex(adopt, nil)
}
