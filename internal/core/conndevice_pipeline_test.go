package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/southbound"
)

// dialScripted dials a ConnDevice against a hand-scripted device side, so
// tests control exactly which replies are sent and when — including not
// sending them at all.
func dialScripted(t *testing.T) (*ConnDevice, southbound.Conn) {
	t.Helper()
	ctrlEnd, devEnd := southbound.Pipe(64)
	go func() {
		m, err := devEnd.Recv()
		if err != nil || m.Type != southbound.TypeHello {
			return
		}
		_ = devEnd.Send(southbound.Msg{Type: southbound.TypeHello,
			Body: southbound.Hello{Sender: "SX", Version: southbound.ProtocolVersion}})
		m, err = devEnd.Recv()
		if err != nil || m.Type != southbound.TypeFeatureRequest {
			return
		}
		_ = devEnd.Send(southbound.Msg{Type: southbound.TypeFeatureReply, Xid: m.Xid,
			Body: southbound.FeatureReply{Device: "SX", Kind: dataplane.KindSwitch}})
	}()
	dev, err := DialDevice(ctrlEnd, "L1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	return dev, devEnd
}

// recvType reads the next device-side message and requires its type.
func recvType(t *testing.T, c southbound.Conn, want southbound.MsgType) southbound.Msg {
	t.Helper()
	type res struct {
		m   southbound.Msg
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := c.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("device recv: %v", r.err)
		}
		if r.m.Type != want {
			t.Fatalf("device received %v, want %v", r.m.Type, want)
		}
		return r.m
	case <-time.After(2 * time.Second):
		t.Fatalf("device timed out waiting for %v", want)
	}
	return southbound.Msg{}
}

// TestStaleBarrierReplyDoesNotSatisfyNextFence pins the barrier-ID
// completion protocol: a barrier reply that arrives after its fence timed
// out must be dropped, never credited to the next outstanding fence. The
// old single-channel fence wait matched any barrier reply, so a slow
// device's late ack could "complete" a fence whose modification it never
// covered — silently breaking the §7 version-exact rollback contract.
func TestStaleBarrierReplyDoesNotSatisfyNextFence(t *testing.T) {
	dev, devEnd := dialScripted(t)
	dev.RequestTimeout = 40 * time.Millisecond
	dev.BarrierRetries = 0

	errc := make(chan error, 1)
	go func() { errc <- dev.InstallRule(dataplane.Rule{Priority: 1}) }()
	recvType(t, devEnd, southbound.TypeFlowMod)
	b1 := recvType(t, devEnd, southbound.TypeBarrierRequest)

	// The device swallows the barrier; the fence must time out.
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "fence failed") {
			t.Fatalf("first fence: got %v, want fence-failed timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first install did not resolve")
	}

	// Second install; its fence gets a fresh barrier xid.
	go func() { errc <- dev.InstallRule(dataplane.Rule{Priority: 2}) }()
	recvType(t, devEnd, southbound.TypeFlowMod)
	b2 := recvType(t, devEnd, southbound.TypeBarrierRequest)
	if b2.Xid == b1.Xid {
		t.Fatalf("fence reused barrier xid %d", b1.Xid)
	}

	// The late reply to the dead fence lands while the second fence is
	// outstanding. It must not complete it: the second fence times out too.
	if err := devEnd.Send(southbound.Msg{Type: southbound.TypeBarrierReply, Xid: b1.Xid,
		Body: southbound.Barrier{}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stale barrier reply satisfied the next fence")
		}
		if !strings.Contains(err.Error(), "fence failed") {
			t.Fatalf("second fence: got %v, want fence-failed timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second install did not resolve")
	}

	// A reply carrying the fence's current xid still completes it.
	go func() { errc <- dev.InstallRule(dataplane.Rule{Priority: 3}) }()
	recvType(t, devEnd, southbound.TypeFlowMod)
	b3 := recvType(t, devEnd, southbound.TypeBarrierRequest)
	if err := devEnd.Send(southbound.Msg{Type: southbound.TypeBarrierReply, Xid: b3.Xid,
		Body: southbound.Barrier{}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("fresh fence: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("third install did not resolve")
	}
}

// dialAgentDevice wires a real switch agent over an in-memory pipe — the
// minimal end-to-end request path for allocation accounting.
func dialAgentDevice(tb testing.TB) *ConnDevice {
	net := dataplane.NewNetwork()
	net.AddSwitch("S1")
	agent := southbound.NewSwitchAgent(net, net.Switch("S1"))
	ctrlEnd, devEnd := southbound.Pipe(64)
	go agent.Serve(devEnd)
	dev, err := DialDevice(ctrlEnd, "L1")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { dev.Close() })
	return dev
}

// TestSyncRequestAllocsBounded pins the allocation budget of a
// synchronous southbound round trip. The previous implementation armed a
// fresh time.After timer per request and abandoned it still running, so
// every request parked a RequestTimeout-long timer (plus its channel) in
// the runtime — at 10× event rates that is hundreds of thousands of live
// timers. With the pooled, stopped timer the steady-state budget is a
// handful of objects; a re-introduced per-op timer pushes it over the
// bound.
func TestSyncRequestAllocsBounded(t *testing.T) {
	dev := dialAgentDevice(t)
	for i := 0; i < 8; i++ { // warm the timer and frame pools
		if err := dev.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := dev.Barrier(); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 16
	if avg > maxAllocs {
		t.Fatalf("Barrier allocates %.1f objects/op, want <= %d (per-request timer pooling regressed?)", avg, maxAllocs)
	}
}

// BenchmarkConnDeviceBarrier measures the synchronous fence round trip;
// run with -benchmem to watch the per-op allocation count the test above
// pins.
func BenchmarkConnDeviceBarrier(b *testing.B) {
	dev := dialAgentDevice(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
}
