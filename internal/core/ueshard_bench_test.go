package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dataplane"
)

// Radio-index contention benchmarks (see EXPERIMENTS.md): GroupOfBS /
// AttachOfGroup are on every bearer-setup hot path, and before the
// radio-index split they took the full UE-table mutex — a burst of bearer
// record writes stalled every concurrent lookup. After the split the
// lookups take only the index's RWMutex read lock, so table writers cannot
// contend with them; the two benchmarks below measure the lookup with and
// without a saturating background table writer, and should be within noise
// of each other.

func benchRadioController() *Controller {
	c := NewController("bench", 1, 0)
	bsGroup := make(map[dataplane.DeviceID]dataplane.DeviceID)
	for i := 0; i < 64; i++ {
		bsGroup[dataplane.DeviceID(fmt.Sprintf("b%d", i))] = "gA"
	}
	c.SetRadioIndex(bsGroup, map[dataplane.DeviceID]dataplane.PortRef{"gA": {Dev: "S1", Port: 1}})
	return c
}

// BenchmarkGroupOfBSParallel measures the read-only index lookup alone.
func BenchmarkGroupOfBSParallel(b *testing.B) {
	c := benchRadioController()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			bs := dataplane.DeviceID(fmt.Sprintf("b%d", i&63))
			if _, ok := c.GroupOfBS(bs); !ok {
				b.Fatal("lookup failed")
			}
			i++
		}
	})
}

// BenchmarkGroupOfBSParallelWithTableWriters runs the same lookup while a
// background goroutine continuously rewrites UE table rows — the scenario
// that serialized on the old single UE-table mutex.
func BenchmarkGroupOfBSParallelWithTableWriters(b *testing.B) {
	c := benchRadioController()
	var stop atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		i := 0
		for !stop.Load() {
			ue := fmt.Sprintf("u%d", i&1023)
			c.ue.put(&UERecord{UE: ue, BS: "b0", Group: "gA", Active: true})
			i++
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			bs := dataplane.DeviceID(fmt.Sprintf("b%d", i&63))
			if _, ok := c.GroupOfBS(bs); !ok {
				b.Fatal("lookup failed")
			}
			i++
		}
	})
	b.StopTimer()
	stop.Store(true)
	<-writerDone
}

// BenchmarkLockUE measures the uncontended per-UE operation lock cycle
// (registry insert, lock, unlock, registry reclaim) added to every
// mobility operation by the sharded store.
func BenchmarkLockUE(b *testing.B) {
	s := newUEState(DefaultUEShards)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			done := s.lockUE(fmt.Sprintf("u%d", i&4095))
			done()
			i++
		}
	})
}
