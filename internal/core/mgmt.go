package core

import (
	"fmt"
	"sort"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/reca"
)

// Hierarchy is the management plane's view of one SoftMoW deployment: the
// controller tree plus the physical network (§3.3: "The management plane
// bootstraps the recursive control plane. It configures all controllers in
// the hierarchy via dedicated channels").
type Hierarchy struct {
	Net    *dataplane.Network
	Root   *Controller
	Leaves []*Controller
	// All lists every controller, leaves first, then ascending levels.
	All []*Controller
}

// LeafSpec configures one leaf controller.
type LeafSpec struct {
	ID          string
	Switches    []dataplane.DeviceID
	Radios      []reca.RadioAttachment
	Middleboxes []reca.MiddleboxAttachment
	// BSGroup maps base stations under this leaf to their group.
	BSGroup map[dataplane.DeviceID]dataplane.DeviceID
}

// NewTwoLevel builds and bootstraps the 2-level hierarchy the evaluation
// uses (§7.2: "a two-level architecture with 4 leaf regions"): leaves
// discover their physical regions and abstract them; the root discovers
// the inter-G-switch links.
func NewTwoLevel(net *dataplane.Network, rootID string, leaves []LeafSpec) (*Hierarchy, error) {
	h := &Hierarchy{Net: net}
	idx := 0
	for _, spec := range leaves {
		leaf := NewController(spec.ID, 1, idx)
		idx++
		if err := h.initLeaf(leaf, spec); err != nil {
			return nil, err
		}
		h.Leaves = append(h.Leaves, leaf)
		h.All = append(h.All, leaf)
	}
	root := NewController(rootID, 2, idx)
	for _, leaf := range h.Leaves {
		root.AttachChild(leaf)
	}
	h.Root = root
	h.All = append(h.All, root)
	h.finishLevel(root)
	return h, nil
}

// NewThreeLevel builds a 3-level hierarchy: named groups of leaves under
// mid-level controllers under one root (Fig. 1's shape). isBorder decides,
// for a mid-level controller, whether a leaf-exposed border G-BS remains a
// border at the mid level (nil keeps leaf flags).
func NewThreeLevel(net *dataplane.Network, rootID string, groups map[string][]LeafSpec, isBorder func(mid string, g dataplane.GBSInfo) bool) (*Hierarchy, error) {
	h := &Hierarchy{Net: net}
	names := make([]string, 0, len(groups))
	total := 0
	for name, specs := range groups {
		names = append(names, name)
		total += len(specs)
	}
	sort.Strings(names)

	idx := 0
	midIdx := total
	var mids []*Controller
	for _, name := range names {
		var leafCtrls []*Controller
		for _, spec := range groups[name] {
			leaf := NewController(spec.ID, 1, idx)
			idx++
			if err := h.initLeaf(leaf, spec); err != nil {
				return nil, err
			}
			h.Leaves = append(h.Leaves, leaf)
			h.All = append(h.All, leaf)
			leafCtrls = append(leafCtrls, leaf)
		}
		mid := NewController(name, 2, midIdx)
		midIdx++
		for _, leaf := range leafCtrls {
			mid.AttachChild(leaf)
		}
		var oracle func(dataplane.GBSInfo) bool
		if isBorder != nil {
			name := name
			oracle = func(g dataplane.GBSInfo) bool { return isBorder(name, g) }
		}
		h.finishLevelWith(mid, oracle)
		mids = append(mids, mid)
		h.All = append(h.All, mid)
	}
	root := NewController(rootID, 3, midIdx)
	for _, mid := range mids {
		root.AttachChild(mid)
	}
	h.Root = root
	h.All = append(h.All, root)
	h.finishLevel(root)
	return h, nil
}

func (h *Hierarchy) initLeaf(leaf *Controller, spec LeafSpec) error {
	for _, swID := range spec.Switches {
		sw := h.Net.Switch(swID)
		if sw == nil {
			return fmt.Errorf("core: leaf %s: unknown switch %s", spec.ID, swID)
		}
		leaf.AttachDevice(NewSwitchDevice(h.Net, sw))
	}
	leaf.SetConfig(reca.Config{Radios: spec.Radios, Middleboxes: spec.Middleboxes})
	groupAttach := make(map[dataplane.DeviceID]dataplane.PortRef, len(spec.Radios))
	for _, r := range spec.Radios {
		groupAttach[r.ID] = r.Attach
	}
	leaf.SetRadioIndex(spec.BSGroup, groupAttach)
	leaf.RunDiscovery()
	leaf.ComputeAbstraction()
	return nil
}

// BootstrapLeaf attaches a leaf controller to its region's switches and
// runs its bootstrap (config, radio index, discovery, abstraction) outside
// any Hierarchy — the entry point for distributed deployments where a
// region process builds only its own slice of the data plane and the tree
// is assembled over the northbound wire instead of AttachChild.
func BootstrapLeaf(net *dataplane.Network, leaf *Controller, spec LeafSpec) error {
	h := &Hierarchy{Net: net}
	return h.initLeaf(leaf, spec)
}

// finishLevel completes a non-leaf controller's bootstrap.
func (h *Hierarchy) finishLevel(c *Controller) { h.finishLevelWith(c, nil) }

func (h *Hierarchy) finishLevelWith(c *Controller, isBorder func(dataplane.GBSInfo) bool) {
	c.RunDiscovery()
	c.SetConfig(DerivedConfig(c, isBorder))
	indexRadioFromChildren(c)
	c.ComputeAbstraction()
}

// DerivedConfig builds a non-leaf controller's reca.Config from its
// children's exposed G-BSes and G-middleboxes. isBorder overrides the
// border flag (nil keeps the children's flags — correct for 2-level
// deployments where every leaf-border G-BS stays border).
func DerivedConfig(c *Controller, isBorder func(dataplane.GBSInfo) bool) reca.Config {
	var cfg reca.Config
	for _, d := range c.NIB.Devices(dataplane.KindGSwitch) {
		for _, g := range d.GBSes {
			border := g.Border
			if isBorder != nil {
				border = isBorder(g)
			}
			cfg.Radios = append(cfg.Radios, reca.RadioAttachment{
				ID:           g.ID,
				Attach:       dataplane.PortRef{Dev: d.ID, Port: g.AttachPort},
				Border:       border,
				Centroid:     g.Centroid,
				Constituents: g.Groups,
			})
		}
		for _, m := range d.GMiddleboxes {
			ports := m.AttachPorts
			var attach dataplane.PortRef
			if len(ports) > 0 {
				attach = dataplane.PortRef{Dev: d.ID, Port: ports[0]}
			}
			cfg.Middleboxes = append(cfg.Middleboxes, reca.MiddleboxAttachment{
				ID: m.ID, Type: m.Type, Attach: attach,
				Capacity: m.Capacity, Load: m.Load,
			})
		}
	}
	return cfg
}

// indexRadioFromChildren fills the controller's radio index so the
// mobility app can route from child-exposed G-BSes. The index is
// reconciled, not merged: after a reconfiguration moves a group between
// children, the group's old attachment (on the source child's G-switch)
// must disappear, or handovers would keep routing from the stale port.
func indexRadioFromChildren(c *Controller) {
	groupAttach := make(map[dataplane.DeviceID]dataplane.PortRef)
	for _, d := range c.NIB.Devices(dataplane.KindGSwitch) {
		for _, g := range d.GBSes {
			groupAttach[g.ID] = dataplane.PortRef{Dev: d.ID, Port: g.AttachPort}
		}
	}
	c.ReconcileRadioIndex(nil, groupAttach)
}

// RefreshDerived re-derives a non-leaf controller's configuration and
// radio index from its children's current exposures and recomputes its
// abstraction. The management plane calls it after a reconfiguration
// (§5.3.2) so the parent's G-BS attachment points track the moved groups.
func RefreshDerived(c *Controller) {
	c.SetConfig(DerivedConfig(c, nil))
	indexRadioFromChildren(c)
	c.ComputeAbstraction()
}

// Controller returns a controller by ID, or nil.
func (h *Hierarchy) Controller(id string) *Controller {
	for _, c := range h.All {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// LeafOf returns the leaf controller owning a device, or nil.
func (h *Hierarchy) LeafOf(dev dataplane.DeviceID) *Controller {
	for _, leaf := range h.Leaves {
		if leaf.Device(dev) != nil {
			return leaf
		}
	}
	return nil
}

// DistributeInterdomain loads one snapshot of interdomain routes into the
// leaf controllers hosting each egress point and propagates them up the
// tree (§4.2: "Leaf controllers forward the selected routes to their
// parent... This procedure finishes once the root receives interdomain
// routes from its G-switches").
func (h *Hierarchy) DistributeInterdomain(tbl *interdomain.Table, snapshot int) {
	for _, c := range h.All {
		c.ClearInterdomainRoutes()
	}
	for _, ep := range h.Net.EgressPoints() {
		leaf := h.LeafOf(ep.Switch)
		if leaf == nil {
			continue
		}
		routes := tbl.SelectRoutes(snapshot, ep.ID, ep.Switch)
		leaf.AddInterdomainRoutes(routes, dataplane.PortRef{Dev: ep.Switch, Port: ep.Port})
	}
	for _, leaf := range h.Leaves {
		leaf.PropagateInterdomain()
	}
}
