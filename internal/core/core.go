package core
