package core

import (
	"sort"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/routing"
)

// The routing optimization application (§3.3 lists it beside region
// optimization among the operator applications): periodically re-examine
// installed paths against the current topology and interdomain state —
// link failures repaired elsewhere, bandwidth drift, new interdomain
// snapshots — and migrate flows onto better routes with consistent
// (make-before-break) updates.

// RouteOptReport summarizes one optimization pass.
type RouteOptReport struct {
	Examined    int
	Rerouted    int
	HopsSaved   int
	RTTSaved    time.Duration
	Failed      int
}

// OptimizeRoutes re-routes every active path whose destination prefix now
// has a route at least minHopGain hops better (end-to-end, internal +
// external) than the installed one. Paths without a resolvable prefix or
// without improvement are left untouched.
func (c *Controller) OptimizeRoutes(minHopGain int) RouteOptReport {
	if minHopGain < 1 {
		minHopGain = 1
	}
	var report RouteOptReport

	type job struct {
		id     PathID
		src    dataplane.PortRef
		dst    dataplane.PortRef
		prefix interdomain.PrefixID
		demand float64
	}
	var jobs []job
	c.mu.Lock()
	for id, rec := range c.paths {
		if !rec.Active || rec.lastPath == nil || rec.Match.DstPrefix == "" {
			continue
		}
		jobs = append(jobs, job{
			id:     id,
			src:    rec.lastPath.Points[0],
			dst:    rec.lastPath.Points[len(rec.lastPath.Points)-1],
			prefix: interdomain.PrefixID(rec.Match.DstPrefix),
			demand: rec.demand,
		})
	}
	c.mu.Unlock()
	// Examine in path-id order, not map order: reroutes mutate switch rule
	// tables, and concurrent paths can contend for bandwidth, so the
	// winner must be deterministic under seed replay.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })

	g := c.Graph()
	for _, j := range jobs {
		report.Examined++
		constraints := routing.Constraints{MinBandwidth: j.demand}

		// Current total: the installed route re-priced on today's graph
		// and interdomain state.
		curInternal, err := g.ShortestPath(j.src, j.dst, routing.MinHops, constraints)
		curTotal := int(1) << 30
		var curRTT time.Duration
		if err == nil {
			if ext, ok := c.externalFor(j.prefix, j.dst); ok {
				curTotal = curInternal.Cost.Hops + ext.Hops
				curRTT = 2*curInternal.Cost.Latency + ext.RTT
			}
		}

		// Best current route, including egress choice.
		best, err := c.Route(RouteRequest{From: j.src, Prefix: j.prefix, Constraints: constraints})
		if err != nil {
			continue
		}
		if best.TotalHops+minHopGain > curTotal {
			continue // not enough gain
		}
		if err := c.ReroutePath(j.id, best.Path); err != nil {
			report.Failed++
			continue
		}
		report.Rerouted++
		report.HopsSaved += curTotal - best.TotalHops
		if curRTT > best.TotalRTT {
			report.RTTSaved += curRTT - best.TotalRTT
		}
	}
	return report
}

// externalFor returns the external metrics of the route option exiting at
// the given egress port, if any.
func (c *Controller) externalFor(prefix interdomain.PrefixID, egress dataplane.PortRef) (interdomain.Metrics, bool) {
	for _, opt := range c.RouteOptions(prefix) {
		if opt.Ref == egress {
			return opt.External, true
		}
	}
	return interdomain.Metrics{}, false
}
