package core

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/pathimpl"
	"repro/internal/routing"
)

// TestBandwidthAdmission: two 600 Mbps bearers cannot share a 1000 Mbps
// arm of the diamond — the second must take the other arm; a third is
// rejected when nothing fits.
func TestBandwidthAdmission(t *testing.T) {
	f := buildRerouteFixture(t) // diamond, 1000 Mbps links
	g := f.leaf.Graph()
	dst := dataplane.PortRef{Dev: "S4", Port: f.eport}

	setup := func(ue string) error {
		p, err := g.ShortestPath(f.radio, dst, routing.MinHops,
			routing.Constraints{MinBandwidth: 600})
		if err != nil {
			return err
		}
		match := dataplane.Match{InPort: dataplane.PortAny, UE: ue, QoS: -1}
		_, err = f.leaf.SetupPathWithDemand(match, p, 600)
		if err != nil {
			return err
		}
		// Refresh the NIB so the next routing decision sees the remaining
		// bandwidth (§3.2 update flow).
		f.leaf.RunDiscovery()
		g = f.leaf.Graph()
		return nil
	}

	if err := setup("u1"); err != nil {
		t.Fatalf("first bearer: %v", err)
	}
	if err := setup("u2"); err != nil {
		t.Fatalf("second bearer should fit on the other arm: %v", err)
	}
	// Both diamond arms now hold 600/1000: a third 600 Mbps path must fail
	// at the routing stage (no link with 600 free).
	if _, err := g.ShortestPath(f.radio, dst, routing.MinHops,
		routing.Constraints{MinBandwidth: 600}); err == nil {
		t.Fatal("third 600 Mbps bearer should be inadmissible")
	}

	// The arms really carry one reservation each.
	armsUsed := map[dataplane.DeviceID]bool{}
	for _, l := range f.net.Links() {
		if l.Available() < l.Bandwidth {
			armsUsed[l.A.Dev] = true
			armsUsed[l.B.Dev] = true
		}
	}
	if !armsUsed["S2"] || !armsUsed["S3"] {
		t.Fatalf("reservations should spread across both arms: %v", armsUsed)
	}
}

// TestReservationReleaseOnTeardown: tearing a path down returns its
// bandwidth.
func TestReservationReleaseOnTeardown(t *testing.T) {
	f := buildRerouteFixture(t)
	g := f.leaf.Graph()
	p, err := g.ShortestPath(f.radio, dataplane.PortRef{Dev: "S4", Port: f.eport},
		routing.MinHops, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	id, err := f.leaf.SetupPathWithDemand(match, p, 900)
	if err != nil {
		t.Fatal(err)
	}
	reserved := 0
	for _, l := range f.net.Links() {
		if l.Available() < l.Bandwidth {
			reserved++
		}
	}
	if reserved == 0 {
		t.Fatal("no reservations taken")
	}
	if err := f.leaf.TeardownPath(id); err != nil {
		t.Fatal(err)
	}
	for _, l := range f.net.Links() {
		if l.Available() != l.Bandwidth {
			t.Fatalf("leaked reservation on %v: %v free", l, l.Available())
		}
	}
}

// TestAdmissionFailureRollsBack: an over-subscribed install leaves no
// partial rules or reservations.
func TestAdmissionFailureRollsBack(t *testing.T) {
	f := buildRerouteFixture(t)
	g := f.leaf.Graph()
	p, err := g.ShortestPath(f.radio, dataplane.PortRef{Dev: "S4", Port: f.eport},
		routing.MinHops, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	if _, err := f.leaf.SetupPathWithDemand(match, p, 5000); err == nil {
		t.Fatal("5 Gbps demand on 1 Gbps links must be rejected")
	}
	for _, sw := range f.net.Switches() {
		if sw.Table.Len() != 0 {
			t.Fatalf("partial rules left on %s", sw.ID)
		}
	}
	for _, l := range f.net.Links() {
		if l.Available() != l.Bandwidth {
			t.Fatalf("leaked reservation on %v", l)
		}
	}
}

// TestDemandTranslatesAcrossRegions: a delegated (root-implemented)
// bearer's demand reserves bandwidth in both leaf regions.
func TestDemandTranslatesAcrossRegions(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	_, err := f.l1.HandleBearerRequest(BearerRequest{
		UE: "u1", BS: "b1", Prefix: "pfxFar",
		Constraints: routing.Constraints{MinBandwidth: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	reservedLinks := 0
	for _, l := range f.net.Links() {
		if l.Available() == l.Bandwidth-400 {
			reservedLinks++
		}
	}
	// S1-S2 (L1), S2-S3 (cross), S3-S4 (L2) all carry the flow.
	if reservedLinks != 3 {
		t.Fatalf("reserved links = %d, want 3", reservedLinks)
	}
}

// TestRefreshFabricNotifiesOnDrift: reserving most of a region's internal
// bandwidth must push an updated vFabric to the parent once the drift
// crosses the threshold.
func TestRefreshFabricNotifiesOnDrift(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)

	fabricAtRoot := func() dataplane.PathMetrics {
		d, ok := f.root.NIB.Device(f.l1.GSwitchID())
		if !ok {
			t.Fatal("root lost GS-L1")
		}
		ab := f.l1.Abstraction()
		var gbsPort, crossPort dataplane.PortID
		for _, p := range ab.GSwitch.Ports {
			if p.GBS != "" {
				gbsPort = p.ID
			} else if !p.External {
				crossPort = p.ID
			}
		}
		m, ok := d.Fabric.Get(gbsPort, crossPort)
		if !ok {
			t.Fatal("pair missing at root")
		}
		return m
	}
	before := fabricAtRoot()

	// No drift yet: refresh must not notify.
	if f.l1.RefreshFabric(50) {
		t.Fatal("no-change refresh should not notify")
	}

	// Reserve 700 Mbps on L1's internal link, then refresh.
	var intra *dataplane.Link
	for _, l := range f.net.Links() {
		if (l.A.Dev == "S1" && l.B.Dev == "S2") || (l.A.Dev == "S2" && l.B.Dev == "S1") {
			intra = l
		}
	}
	if err := intra.Reserve(700); err != nil {
		t.Fatal(err)
	}
	if !f.l1.RefreshFabric(50) {
		t.Fatal("700 Mbps drift must notify the parent")
	}
	after := fabricAtRoot()
	if after.Bandwidth >= before.Bandwidth {
		t.Fatalf("root fabric bandwidth should drop: %v -> %v", before.Bandwidth, after.Bandwidth)
	}
	if after.Bandwidth != 300 {
		t.Fatalf("root sees %v Mbps, want 300", after.Bandwidth)
	}
	// The cross-region link view at the root is untouched (update in
	// place, no rediscovery needed).
	if f.root.NIB.NumLinks() != 1 {
		t.Fatalf("root links = %d", f.root.NIB.NumLinks())
	}
}

// TestConnDeviceAdmissionError: over the wire protocol, an inadmissible
// FlowAdd surfaces as an error on the controller side.
func TestConnDeviceAdmissionError(t *testing.T) {
	h := newConnHarness(t)
	dev := h.devs["S1"]
	rule := dataplane.Rule{
		Priority: 1,
		Match:    dataplane.AnyMatch(),
		Actions:  []dataplane.Action{dataplane.Output(1)},
		Owner:    "t",
		Demand:   5000, // 1 Gbps link
	}
	if err := dev.InstallRule(rule); err == nil {
		t.Fatal("over-subscription must be refused over the wire")
	}
	if h.net.Switch("S1").Table.Len() != 0 {
		t.Fatal("refused rule must not be installed")
	}
	rule.Demand = 500
	if err := dev.InstallRule(rule); err != nil {
		t.Fatal(err)
	}
	if err := dev.RemoveRules("t"); err != nil {
		t.Fatal(err)
	}
	if got := h.net.Links()[0].Available(); got != 1000 {
		t.Fatalf("reservation leaked over the wire: %v", got)
	}
}
