package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/reca"
	"repro/internal/routing"
)

// benchWAN builds a fresh Fig.5-style two-region WAN outside the testing.T
// helpers so benchmarks can use it.
func benchWAN(b *testing.B) (*dataplane.Network, *Hierarchy, dataplane.PortRef) {
	b.Helper()
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		net.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"S1", "S2"}, {"S2", "S3"}, {"S3", "S4"}} {
		if _, err := net.Connect(pair[0], pair[1], 5*time.Millisecond, 1000); err != nil {
			b.Fatal(err)
		}
	}
	rp, _ := net.AddRadioPort("S1", "gA")
	ep, _ := net.AddEgress("E1", "S4", "isp")
	h, err := NewTwoLevel(net, "root", []LeafSpec{
		{ID: "L1", Switches: []dataplane.DeviceID{"S1", "S2"},
			Radios: []reca.RadioAttachment{{ID: "gA",
				Attach: dataplane.PortRef{Dev: "S1", Port: rp.ID}, Border: true}},
			BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"}},
		{ID: "L2", Switches: []dataplane.DeviceID{"S3", "S4"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	l2 := h.Controller("L2")
	l2.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfx", Egress: "E1", EgressSwitch: "S4",
		Metrics: interdomain.Metrics{Hops: 5, RTT: 10 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S4", Port: ep.Port})
	l2.PropagateInterdomain()
	return net, h, dataplane.PortRef{Dev: "S1", Port: rp.ID}
}

// BenchmarkBootstrapTwoLevel measures the full bottom-up bootstrap:
// discovery, abstraction, cross-region discovery.
func BenchmarkBootstrapTwoLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, h, _ := benchWAN(b)
		if h.Root.NIB.NumLinks() == 0 {
			b.Fatal("bootstrap found no cross link")
		}
	}
}

// BenchmarkBearerSetup measures one delegated bearer admission: routing at
// the root plus recursive label-swapped path installation in both leaves.
func BenchmarkBearerSetup(b *testing.B) {
	_, h, _ := benchWAN(b)
	l1 := h.Controller("L1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ue := fmt.Sprintf("u%d", i)
		rec, err := l1.HandleBearerRequest(BearerRequest{UE: ue, BS: "b1", Prefix: "pfx"})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = rec.HandledBy.TeardownPath(rec.PathID)
		b.StartTimer()
	}
}

// BenchmarkEndToEndPacket measures a packet riding an installed
// cross-region label-switched path.
func BenchmarkEndToEndPacket(b *testing.B) {
	net, h, radio := benchWAN(b)
	l1 := h.Controller("L1")
	if _, err := l1.HandleBearerRequest(BearerRequest{UE: "u", BS: "b1", Prefix: "pfx"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &dataplane.Packet{UE: "u", DstPrefix: "pfx"}
		res, err := net.Inject(radio.Dev, radio.Port, pkt)
		if err != nil || res.Disposition != dataplane.DispEgressed {
			b.Fatalf("delivery failed: %v %v", res.Disposition, err)
		}
	}
}

// BenchmarkRouteRecursive measures the leaf→root delegation path of the
// routing service. The NIB does not change between iterations, so this is
// the graph-cache-hit steady state (the common case: every bearer request
// between topology events).
func BenchmarkRouteRecursive(b *testing.B) {
	_, h, radio := benchWAN(b)
	l1 := h.Controller("L1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := l1.RouteRecursive(RouteRequest{From: radio, Prefix: "pfx", Objective: routing.MinHops})
		if err != nil || res.ResolvedBy != h.Root {
			b.Fatalf("delegation failed: %v", err)
		}
	}
}

// BenchmarkRouteRecursiveCacheMiss is the cache-miss variant: every
// iteration dirties both the leaf's and the root's NIB (re-putting an
// existing link bumps the generation without changing topology), forcing
// full graph rebuilds on the delegation path.
func BenchmarkRouteRecursiveCacheMiss(b *testing.B) {
	_, h, radio := benchWAN(b)
	l1 := h.Controller("L1")
	leafLink := l1.NIB.Links()[0]
	rootLink := h.Root.NIB.Links()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.NIB.PutLink(leafLink)
		h.Root.NIB.PutLink(rootLink)
		res, err := l1.RouteRecursive(RouteRequest{From: radio, Prefix: "pfx", Objective: routing.MinHops})
		if err != nil || res.ResolvedBy != h.Root {
			b.Fatalf("delegation failed: %v", err)
		}
	}
}

// BenchmarkGraphCacheHit isolates the Graph() fast path: two atomic loads
// against a clean cache.
func BenchmarkGraphCacheHit(b *testing.B) {
	_, h, _ := benchWAN(b)
	l1 := h.Controller("L1")
	l1.Graph() // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := l1.Graph(); g == nil {
			b.Fatal("nil graph")
		}
	}
}
