package core

import "repro/internal/dataplane"

// Invariant probes: read-only views exported for the fault-injection
// harness (internal/chaos) so it can check global properties — every
// installed rule's owner maps to a live path, NIB links mirror device port
// state — without reaching into controller internals.

// PathOwnerInfo summarizes one path record for ownership accounting.
type PathOwnerInfo struct {
	ID      PathID
	Version int
	Active  bool
}

// PathOwners returns every path owner tag this controller has ever issued,
// with the path's current version and activity. Rules found in the data
// plane whose owner is missing from the union of all controllers' maps —
// or which belong to an inactive path, or carry a version other than the
// record's current one after a committed update — are orphans.
func (c *Controller) PathOwners() map[string]PathOwnerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]PathOwnerInfo, len(c.paths))
	for id, rec := range c.paths {
		out[rec.Owner] = PathOwnerInfo{ID: id, Version: rec.Version, Active: rec.Active}
	}
	return out
}

// ExposedPortFor maps an underlying (device, port) in this controller's
// region to the G-switch port it is exposed through, if it is a border
// port. The harness uses it to translate physical link endpoints into the
// parent's logical coordinates.
func (c *Controller) ExposedPortFor(ref dataplane.PortRef) (dataplane.PortID, bool) {
	return c.exposedPortFor(ref)
}
