package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/southbound"
)

// ConnDevice is a Device implementation speaking the southbound wire
// protocol over a southbound.Conn — the deployment mode of the paper's
// prototype where "leaf controllers use the OpenFlow protocol to
// communicate with switches" (§7.1). It pairs with
// southbound.SwitchAgent.Serve on the device side and works over both
// in-process pipes and gob/TCP connections.
//
// A pump goroutine dispatches asynchronous events (Packet-In, Port-Status)
// to the owning controller and routes replies to waiting synchronous
// requests by transaction ID.
type ConnDevice struct {
	id   dataplane.DeviceID
	conn southbound.Conn

	mu sync.Mutex
	// ctrl is the attached controller, guarded by mu.
	ctrl *Controller
	// pending maps in-flight request xids to reply channels, guarded by mu.
	pending map[uint32]chan southbound.Msg
	// closed records connection teardown, guarded by mu.
	closed bool
	// backlog holds events that arrived during the feature handshake,
	// before any controller was attached; setController replays them.
	// guarded by mu.
	backlog []southbound.Msg

	xid atomic.Uint32

	// RequestTimeout bounds synchronous request round-trips.
	RequestTimeout time.Duration
	// BarrierRetries is how many extra barrier attempts a fence makes after
	// a timeout before the operation is reported failed (each attempt is
	// itself bounded by RequestTimeout). Closed connections never retry.
	BarrierRetries int
	// DisableBatch forces InstallRules back to one synchronous
	// FlowMod+barrier round trip per rule — the pre-batching behaviour,
	// kept for wire compatibility with old agents and as the benchmark
	// baseline.
	DisableBatch bool
}

// DialDevice completes the Hello handshake as controllerID and returns a
// running ConnDevice for the switch at the far end.
func DialDevice(conn southbound.Conn, controllerID string) (*ConnDevice, error) {
	if err := southbound.Handshake(conn, controllerID); err != nil {
		return nil, err
	}
	d := &ConnDevice{
		conn:           conn,
		pending:        make(map[uint32]chan southbound.Msg),
		RequestTimeout: 5 * time.Second,
		BarrierRetries: 2,
	}
	// Learn the device ID via an initial feature request, synchronously,
	// before the pump starts (no concurrent readers yet).
	x := d.xid.Add(1)
	if err := conn.Send(southbound.Msg{Type: southbound.TypeFeatureRequest, Xid: x, Body: southbound.FeatureRequest{}}); err != nil {
		return nil, err
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		if m.Type == southbound.TypeFeatureReply && m.Xid == x {
			fr, ok := m.Body.(southbound.FeatureReply)
			if !ok {
				return nil, fmt.Errorf("core: malformed feature reply %T", m.Body)
			}
			d.id = fr.Device
			break
		}
		// Events racing the handshake are buffered and replayed to the
		// controller once one attaches (setController); dropping them here
		// used to lose e.g. the first port flap after an agent restart.
		if m.Type == southbound.TypePacketIn || m.Type == southbound.TypePortStatus {
			//softmow:allow lockguard pump has not started, this goroutine is the only accessor
			d.backlog = append(d.backlog, m)
		}
	}
	go d.pump()
	return d, nil
}

func (d *ConnDevice) setController(c *Controller) {
	d.mu.Lock()
	d.ctrl = c
	var backlog []southbound.Msg
	if c != nil {
		backlog, d.backlog = d.backlog, nil
	}
	d.mu.Unlock()
	// Replay handshake-raced events outside the lock, in arrival order.
	for _, m := range backlog {
		d.dispatchEvent(c, m)
	}
}

func (d *ConnDevice) controller() *Controller {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctrl
}

// Close tears down the connection and fails pending requests.
func (d *ConnDevice) Close() error {
	d.mu.Lock()
	d.closed = true
	pend := d.pending
	d.pending = make(map[uint32]chan southbound.Msg)
	d.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
	return d.conn.Close()
}

func (d *ConnDevice) pump() {
	for {
		m, err := d.conn.Recv()
		if err != nil {
			return
		}
		// Reply routing.
		if m.Xid != 0 {
			d.mu.Lock()
			ch, ok := d.pending[m.Xid]
			if ok {
				delete(d.pending, m.Xid)
			}
			d.mu.Unlock()
			if ok {
				ch <- m
				continue
			}
		}
		// Event dispatch.
		c := d.controller()
		if c == nil {
			continue
		}
		d.dispatchEvent(c, m)
	}
}

// dispatchEvent hands one asynchronous device event (Packet-In or
// Port-Status) to the controller. Shared by the pump loop and the
// handshake-backlog replay in setController.
func (d *ConnDevice) dispatchEvent(c *Controller, m southbound.Msg) {
	switch m.Type {
	case southbound.TypePacketIn:
		pi, ok := m.Body.(southbound.PacketIn)
		if !ok {
			return
		}
		if f, isFrame := pi.Control.(*discovery.Frame); isFrame {
			c.HandleDiscoveryArrival(d.id, pi.InPort, f)
			return
		}
		if pi.Packet != nil {
			c.HandlePacketIn(d.id, pi.InPort, pi.Packet)
		}
	case southbound.TypePortStatus:
		ps, ok := m.Body.(southbound.PortStatus)
		if !ok {
			return
		}
		c.HandlePortStatus(d.id, ps.Port, ps.Up)
	}
}

// request performs one synchronous round-trip.
func (d *ConnDevice) request(m southbound.Msg) (southbound.Msg, error) {
	connSyncRoundTrips.Inc()
	x := d.xid.Add(1)
	m.Xid = x
	ch := make(chan southbound.Msg, 1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return southbound.Msg{}, southbound.ErrClosed
	}
	d.pending[x] = ch
	d.mu.Unlock()
	if err := d.conn.Send(m); err != nil {
		d.mu.Lock()
		delete(d.pending, x)
		d.mu.Unlock()
		return southbound.Msg{}, err
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return southbound.Msg{}, southbound.ErrClosed
		}
		if reply.Type == southbound.TypeError {
			if e, ok := reply.Body.(southbound.Error); ok {
				return reply, fmt.Errorf("core: device %s: %s (code %d)", d.id, e.Message, e.Code)
			}
			return reply, fmt.Errorf("core: device %s returned an error", d.id)
		}
		return reply, nil
	case <-time.After(d.RequestTimeout):
		d.mu.Lock()
		delete(d.pending, x)
		d.mu.Unlock()
		return southbound.Msg{}, fmt.Errorf("core: request to %s timed out", d.id)
	}
}

// ID implements Device.
func (d *ConnDevice) ID() dataplane.DeviceID { return d.id }

// remoteSouthbound marks the device for concurrent batch fan-out: its
// installs are wire round trips worth overlapping across devices.
func (d *ConnDevice) remoteSouthbound() {}

// Features implements Device.
func (d *ConnDevice) Features() southbound.FeatureReply {
	reply, err := d.request(southbound.Msg{Type: southbound.TypeFeatureRequest, Body: southbound.FeatureRequest{}})
	if err != nil {
		return southbound.FeatureReply{Device: d.id, Kind: dataplane.KindSwitch}
	}
	fr, _ := reply.Body.(southbound.FeatureReply)
	return fr
}

// InstallRule implements Device: a FlowMod followed by a barrier so the
// rule is in place when the call returns. Device-side refusals (e.g. a
// slave-role write) surface as errors.
func (d *ConnDevice) InstallRule(r dataplane.Rule) error {
	return d.sendModAndBarrier(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowAdd, Rule: r}})
}

// InstallRules implements BatchInstaller: the rules ride one pipelined
// FlowModBatch fenced by a single barrier, so a whole per-device batch
// costs one synchronous round trip instead of one per rule. The agent
// applies the batch in order and stops at the first failure, so on error
// the device may hold a prefix of the batch — callers (flushBatch) roll
// the affected version back with RemoveRulesVersion.
func (d *ConnDevice) InstallRules(rules []dataplane.Rule) error {
	switch {
	case len(rules) == 0:
		return nil
	case len(rules) == 1:
		return d.InstallRule(rules[0])
	case d.DisableBatch:
		for _, r := range rules {
			if err := d.InstallRule(r); err != nil {
				return err
			}
		}
		return nil
	}
	mods := make([]southbound.FlowMod, len(rules))
	for i, r := range rules {
		mods[i] = southbound.FlowMod{Command: southbound.FlowAdd, Rule: r}
	}
	connBatches.Inc()
	connFlowMods.Add(int64(len(rules)))
	return d.sendModAndBarrier(southbound.Msg{Type: southbound.TypeFlowModBatch,
		Body: southbound.FlowModBatch{Mods: mods}})
}

// RemoveRules implements Device.
func (d *ConnDevice) RemoveRules(owner string) error {
	return d.sendModAndBarrier(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowDeleteOwner, Owner: owner}})
}

// RemoveRulesBefore implements Device.
func (d *ConnDevice) RemoveRulesBefore(owner string, version int) error {
	return d.sendModAndBarrier(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowDeleteOwnerBefore, Owner: owner, Version: version}})
}

// RemoveRulesVersion implements Device.
func (d *ConnDevice) RemoveRulesVersion(owner string, version int) error {
	return d.sendModAndBarrier(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowDeleteOwnerVersion, Owner: owner, Version: version}})
}

// sendModAndBarrier sends a modification (single FlowMod or a whole
// FlowModBatch) with a tracked transaction ID, enqueues it without
// waiting, and fences it with one retried barrier. The agent processes a
// connection's messages in order, so an error for the mod is delivered
// before the barrier reply.
func (d *ConnDevice) sendModAndBarrier(m southbound.Msg) error {
	if m.Type == southbound.TypeFlowMod {
		connFlowMods.Inc()
	}
	x := d.xid.Add(1)
	m.Xid = x
	ch := make(chan southbound.Msg, 1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return southbound.ErrClosed
	}
	d.pending[x] = ch
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.pending, x)
		d.mu.Unlock()
	}()
	if err := d.conn.Send(m); err != nil {
		return err
	}
	if err := d.fence(); err != nil {
		return err
	}
	select {
	case reply := <-ch:
		if reply.Type == southbound.TypeError {
			if e, ok := reply.Body.(southbound.Error); ok {
				return fmt.Errorf("core: device %s refused modification: %s (code %d)", d.id, e.Message, e.Code)
			}
			return fmt.Errorf("core: device %s refused modification", d.id)
		}
		return nil
	default:
		return nil
	}
}

// EmitDiscovery implements Device: the frame rides a Packet-Out across the
// port's link and returns to the control plane on the far side.
func (d *ConnDevice) EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error {
	return d.conn.Send(southbound.Msg{Type: southbound.TypePacketOut,
		Body: southbound.PacketOut{OutPort: port, Control: f}})
}

// Barrier fences all previously sent modifications.
func (d *ConnDevice) Barrier() error {
	connBarriers.Inc()
	_, err := d.request(southbound.Msg{Type: southbound.TypeBarrierRequest, Body: southbound.Barrier{}})
	return err
}

// fence bounds a logical operation with a barrier, retrying up to
// BarrierRetries times on timeout. A closed connection fails immediately:
// retrying cannot succeed and would stall rollback of the other path
// devices behind BarrierRetries×RequestTimeout of dead air.
func (d *ConnDevice) fence() error {
	var err error
	for attempt := 0; attempt <= d.BarrierRetries; attempt++ {
		if attempt > 0 {
			connBarrierRetries.Inc()
		}
		err = d.Barrier()
		if err == nil || errors.Is(err, southbound.ErrClosed) {
			return err
		}
	}
	return fmt.Errorf("core: device %s: fence failed after %d attempts: %w", d.id, d.BarrierRetries+1, err)
}

// SetRole requests a controller role on the device (§5.3.2's
// OFPCR_ROLE_EQUAL dance during region handover).
func (d *ConnDevice) SetRole(controller string, role southbound.Role) (southbound.Role, error) {
	reply, err := d.request(southbound.Msg{Type: southbound.TypeRoleRequest,
		Body: southbound.RoleRequest{Controller: controller, Role: role}})
	if err != nil {
		return 0, err
	}
	rr, ok := reply.Body.(southbound.RoleReply)
	if !ok {
		return 0, fmt.Errorf("core: malformed role reply %T", reply.Body)
	}
	return rr.Role, nil
}
