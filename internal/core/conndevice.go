package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/southbound"
)

// ConnDevice is a Device implementation speaking the southbound wire
// protocol over a southbound.Conn — the deployment mode of the paper's
// prototype where "leaf controllers use the OpenFlow protocol to
// communicate with switches" (§7.1). It pairs with
// southbound.SwitchAgent.Serve on the device side and works over both
// in-process pipes and binary- or gob-framed TCP connections.
//
// A pump goroutine dispatches asynchronous events (Packet-In, Port-Status)
// to the owning controller and routes replies by transaction ID. Fences
// are asynchronous completions: each outstanding barrier lives in a table
// keyed by its current barrier xid, and its callback fires when the reply
// arrives, when the retry budget is exhausted, or when the connection
// dies. The synchronous Device methods are thin waits over that table, so
// callers that can overlap fences (the batch pipeline) share the conn with
// callers that cannot.
type ConnDevice struct {
	id   dataplane.DeviceID
	conn southbound.Conn

	mu sync.Mutex
	// ctrl is the attached controller, guarded by mu.
	ctrl *Controller
	// pending maps synchronous request xids (features, roles, explicit
	// barriers) to reply channels, guarded by mu.
	pending map[uint32]chan southbound.Msg
	// mods maps fenced modification xids to the device's error reply, if
	// one arrived (nil until then), guarded by mu. Entries are consumed
	// when the covering fence completes.
	mods map[uint32]error
	// barriers maps each outstanding fence's CURRENT barrier xid to its
	// completion, guarded by mu. A timed-out attempt re-keys the
	// completion under a fresh xid, so a stale reply to the old xid finds
	// nothing to satisfy — it cannot complete a newer fence.
	barriers map[uint32]*barrierComp
	// dl is the fence deadline queue sorted by expiry (adaptive timeouts
	// and retry backoff make deadlines non-monotonic, so entries insert
	// in order rather than append FIFO), guarded by mu.
	dl []dlEntry
	// srtt is the smoothed round-trip estimate (Jacobson/Karels EWMA,
	// gain 1/8), guarded by mu.
	srtt time.Duration
	// rttvar is the smoothed mean RTT deviation (gain 1/4), guarded by mu.
	rttvar time.Duration
	// rttSamples counts accepted RTT observations, guarded by mu.
	rttSamples int64
	// closed records connection teardown, guarded by mu.
	closed bool
	// backlog holds events that arrived during the feature handshake,
	// before any controller was attached; setController replays them.
	// guarded by mu.
	backlog []southbound.Msg
	// peerHandler receives child-originated northbound requests (messages
	// whose type reports PeerRequest) when the far end of this conn is a
	// child controller's RecA agent rather than a switch. guarded by mu.
	peerHandler func(southbound.Msg)

	// dlKick wakes the deadline loop after an append to an empty queue.
	dlKick chan struct{}
	// done is closed on teardown to stop the deadline loop.
	done     chan struct{}
	doneOnce sync.Once

	// loops tracks the pump and deadline goroutines; peerWG tracks
	// in-flight peer-request handler goroutines. WaitStopped waits on both
	// so teardown paths (and leak-checked tests) can prove the device left
	// nothing running.
	loops  sync.WaitGroup
	peerWG sync.WaitGroup

	xid atomic.Uint32

	// RequestTimeout bounds synchronous request round-trips and each fence
	// attempt. With AdaptiveTimeout it becomes the ceiling the RTT
	// estimator can never exceed (and the timeout used before the first
	// sample arrives).
	RequestTimeout time.Duration
	// BarrierRetries is how many extra barrier attempts a fence makes after
	// a timeout before the operation is reported failed (each attempt is
	// itself bounded by the attempt timeout). Closed connections never
	// retry.
	BarrierRetries int
	// AdaptiveTimeout sizes fence deadlines from the measured RTT
	// (srtt + 4·rttvar, Jacobson/Karels) instead of the constant
	// RequestTimeout, with exponential backoff across fence retries. On a
	// continent-scale WAN the constant is either hopelessly conservative
	// (5s stalls behind a single lost reply) or spuriously aggressive
	// (2ms jitter trips a 5ms constant); the estimator tracks the
	// channel. Samples obey Karn's rule: retransmitted fences never feed
	// the estimator. Only fences adapt: a spurious fence fire costs one
	// retransmission, while a single-shot synchronous request has no
	// retry path, so those stay bounded by the RequestTimeout ceiling
	// (a large fragmented transfer outruns an RTO sized from small-frame
	// samples).
	AdaptiveTimeout bool
	// MinRTO floors the adaptive timeout so microsecond in-process RTTs
	// don't arm hair-trigger deadlines that fire on any scheduling blip.
	MinRTO time.Duration
	// DisableBatch forces InstallRules back to one synchronous
	// FlowMod+barrier round trip per rule — the pre-batching behaviour,
	// kept for wire compatibility with old agents and as the benchmark
	// baseline.
	DisableBatch bool
}

// barrierComp is one outstanding fence: the callback to fire exactly once,
// the modification xid the fence covers, the retry budget consumed, and
// when the current attempt went on the wire (for RTT sampling; zero after
// a retransmit per Karn's rule).
type barrierComp struct {
	cb       func(error)
	modXid   uint32
	attempts int
	sentAt   time.Time
}

// dlEntry is one scheduled fence timeout. xid snapshots the barrier xid
// the entry was armed for: after a re-key, the old entry's xid no longer
// maps to comp in the barrier table and the entry is ignored.
type dlEntry struct {
	comp *barrierComp
	xid  uint32
	at   time.Time
}

// DialDevice completes the Hello handshake as controllerID and returns a
// running ConnDevice for the switch at the far end. On connections that
// support write deadlines (the binary codec), each Send is bounded by the
// device's RequestTimeout so a stalled peer fails fast instead of wedging
// the conn.
func DialDevice(conn southbound.Conn, controllerID string) (*ConnDevice, error) {
	if err := southbound.Handshake(conn, controllerID); err != nil {
		return nil, err
	}
	d := &ConnDevice{
		conn:            conn,
		pending:         make(map[uint32]chan southbound.Msg),
		mods:            make(map[uint32]error),
		barriers:        make(map[uint32]*barrierComp),
		dlKick:          make(chan struct{}, 1),
		done:            make(chan struct{}),
		RequestTimeout:  5 * time.Second,
		BarrierRetries:  2,
		AdaptiveTimeout: true,
		MinRTO:          5 * time.Millisecond,
	}
	if wd, ok := conn.(southbound.WriteDeadliner); ok {
		wd.SetWriteTimeout(d.RequestTimeout)
	}
	// Learn the device ID via an initial feature request, synchronously,
	// before the pump starts (no concurrent readers yet).
	x := d.xid.Add(1)
	if err := conn.Send(southbound.Msg{Type: southbound.TypeFeatureRequest, Xid: x, Body: southbound.FeatureRequest{}}); err != nil {
		return nil, err
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		if m.Type == southbound.TypeFeatureReply && m.Xid == x {
			fr, ok := m.Body.(southbound.FeatureReply)
			if !ok {
				return nil, fmt.Errorf("core: malformed feature reply %T", m.Body)
			}
			d.id = fr.Device
			break
		}
		// Events racing the handshake are buffered and replayed to the
		// controller once one attaches (setController); dropping them here
		// used to lose e.g. the first port flap after an agent restart.
		if m.Type == southbound.TypePacketIn || m.Type == southbound.TypePortStatus {
			//softmow:allow lockguard pump has not started, this goroutine is the only accessor
			d.backlog = append(d.backlog, m)
		}
	}
	d.loops.Add(2)
	go d.pump()
	go d.deadlineLoop()
	return d, nil
}

func (d *ConnDevice) setController(c *Controller) {
	d.mu.Lock()
	d.ctrl = c
	var backlog []southbound.Msg
	if c != nil {
		backlog, d.backlog = d.backlog, nil
	}
	d.mu.Unlock()
	// Replay handshake-raced events outside the lock, in arrival order.
	for _, m := range backlog {
		d.dispatchEvent(c, m)
	}
}

func (d *ConnDevice) controller() *Controller {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctrl
}

// SetPeerHandler installs the callback for child-originated northbound
// requests arriving on this conn (delegation, handover ascent, interdomain
// pushes). The handler runs on its own goroutine per request and may issue
// synchronous southbound operations back through this device.
func (d *ConnDevice) SetPeerHandler(h func(southbound.Msg)) {
	d.mu.Lock()
	d.peerHandler = h
	d.mu.Unlock()
}

func (d *ConnDevice) peerHandlerRef() func(southbound.Msg) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peerHandler
}

// Drain waits for every in-flight modification, fence, and synchronous
// request on this device to complete, or for the timeout to elapse. A
// region process calls it on SIGTERM so a cluster teardown never strands a
// half-installed batch behind a closed connection.
func (d *ConnDevice) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //softmow:allow determinism shutdown pacing only, never feeds replayable state
	for {
		d.mu.Lock()
		n := len(d.mods) + len(d.barriers) + len(d.pending)
		closed := d.closed
		d.mu.Unlock()
		if n == 0 || closed {
			return nil
		}
		if !time.Now().Before(deadline) { //softmow:allow determinism shutdown pacing only, never feeds replayable state
			return fmt.Errorf("core: device %s: %d operations still in flight after %v", d.id, n, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close tears down the connection, fails pending requests, and completes
// every outstanding fence with ErrClosed. It does not wait for the pump
// and deadline goroutines — controller event handlers run on the pump, so
// a Close issued from one would self-deadlock; callers that must prove
// quiescence follow up with WaitStopped from a different goroutine.
func (d *ConnDevice) Close() error {
	d.failAll()
	return d.conn.Close()
}

// WaitStopped blocks until the device's pump and deadline goroutines and
// every in-flight peer-request handler have exited. Call it after Close
// (or after the conn died), never from a controller event handler — those
// run on the pump goroutine and would deadlock waiting on themselves.
func (d *ConnDevice) WaitStopped() {
	d.loops.Wait()
	d.peerWG.Wait()
}

// failAll marks the device closed and fails everything outstanding:
// pending sync requests, fenced modifications, and barrier completions.
// Idempotent; shared by Close and the pump's connection-death path, so a
// device that dies mid-operation unwedges its callers immediately instead
// of leaving them to time out through the retry budget.
func (d *ConnDevice) failAll() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	pend := d.pending
	d.pending = make(map[uint32]chan southbound.Msg)
	comps := make([]*barrierComp, 0, len(d.barriers))
	//softmow:allow determinism every completion gets the same ErrClosed and callbacks are mutually independent, so collection order is not replay-visible
	for _, comp := range d.barriers {
		comps = append(comps, comp)
	}
	d.barriers = make(map[uint32]*barrierComp)
	d.mods = make(map[uint32]error)
	d.dl = nil
	d.mu.Unlock()
	d.doneOnce.Do(func() { close(d.done) })
	for _, ch := range pend {
		close(ch)
	}
	// Map order is fine here: every completion gets the same ErrClosed and
	// callbacks are independent of each other.
	for _, comp := range comps {
		comp.cb(southbound.ErrClosed)
	}
}

func (d *ConnDevice) pump() {
	defer d.loops.Done()
	// A dead connection fails all outstanding work: retrying fences into a
	// closed conn cannot succeed and would stall rollback of the other
	// path devices behind BarrierRetries×RequestTimeout of dead air.
	defer d.failAll()
	for {
		m, err := d.conn.Recv()
		if err != nil {
			return
		}
		// Child-originated northbound requests carry xids from the CHILD's
		// counter, which collides with this side's fence xids — route them
		// by type before any xid table is consulted. Each request runs on
		// its own goroutine: handlers do southbound work back over this
		// very conn, so handling inline would deadlock the fences the
		// handler waits on.
		if m.Type.PeerRequest() {
			if h := d.peerHandlerRef(); h != nil {
				d.peerWG.Add(1)
				go func() {
					defer d.peerWG.Done()
					h(m)
				}()
			}
			continue
		}
		// Reply routing.
		if m.Xid != 0 {
			d.mu.Lock()
			// Outstanding fence? Only a reply carrying the fence's CURRENT
			// barrier xid completes it; replies to timed-out attempts fall
			// through every table and are dropped below.
			if comp, ok := d.barriers[m.Xid]; ok {
				delete(d.barriers, m.Xid)
				if comp.attempts == 0 && !comp.sentAt.IsZero() {
					//softmow:allow determinism RTT measurement shapes timeout pacing only, never replayable state
					d.observeRTTLocked(time.Now().Sub(comp.sentAt))
				}
				ferr := d.takeModErrLocked(comp)
				d.mu.Unlock()
				if m.Type == southbound.TypeError && ferr == nil {
					ferr = d.errorFrom(m)
				}
				comp.cb(ferr)
				continue
			}
			// Fenced modification? Stash its error for the covering fence.
			//softmow:allow errdiscard presence probe only; the stored error is consumed at fence completion
			if _, ok := d.mods[m.Xid]; ok {
				if m.Type == southbound.TypeError {
					d.mods[m.Xid] = d.modRefused(m)
				}
				d.mu.Unlock()
				continue
			}
			ch, ok := d.pending[m.Xid]
			if ok {
				delete(d.pending, m.Xid)
			}
			d.mu.Unlock()
			if ok {
				ch <- m
				continue
			}
			if m.Type != southbound.TypePacketIn && m.Type != southbound.TypePortStatus {
				if m.Type == southbound.TypeBarrierReply {
					// A barrier answered after its fence timed out and was
					// re-keyed (or failed): the fingerprint of a spurious
					// retry — the deadline fired on a live, merely slow
					// channel. Adaptive timeouts exist to keep this near 0.
					connStaleBarrierReplies.Inc()
				}
				continue // stale reply (e.g. a barrier answered after its fence expired)
			}
		}
		// Event dispatch.
		c := d.controller()
		if c == nil {
			continue
		}
		d.dispatchEvent(c, m)
	}
}

// takeModErrLocked consumes the error recorded for the fence's
// modification; caller holds mu.
func (d *ConnDevice) takeModErrLocked(comp *barrierComp) error {
	err := d.mods[comp.modXid]
	delete(d.mods, comp.modXid)
	return err
}

func (d *ConnDevice) modRefused(m southbound.Msg) error {
	if e, ok := m.Body.(southbound.Error); ok {
		return fmt.Errorf("core: device %s refused modification: %s (code %d)", d.id, e.Message, e.Code)
	}
	return fmt.Errorf("core: device %s refused modification", d.id)
}

func (d *ConnDevice) errorFrom(m southbound.Msg) error {
	if e, ok := m.Body.(southbound.Error); ok {
		return fmt.Errorf("core: device %s: %s (code %d)", d.id, e.Message, e.Code)
	}
	return fmt.Errorf("core: device %s returned an error", d.id)
}

// dispatchEvent hands one asynchronous device event (Packet-In or
// Port-Status) to the controller. Shared by the pump loop and the
// handshake-backlog replay in setController.
func (d *ConnDevice) dispatchEvent(c *Controller, m southbound.Msg) {
	switch m.Type {
	case southbound.TypePacketIn:
		pi, ok := m.Body.(southbound.PacketIn)
		if !ok {
			return
		}
		if f, isFrame := pi.Control.(*discovery.Frame); isFrame {
			c.HandleDiscoveryArrival(d.id, pi.InPort, f)
			return
		}
		if pi.Packet != nil {
			c.HandlePacketIn(d.id, pi.InPort, pi.Packet)
		}
	case southbound.TypePortStatus:
		ps, ok := m.Body.(southbound.PortStatus)
		if !ok {
			return
		}
		c.HandlePortStatus(d.id, ps.Port, ps.Up)
	}
}

// timerPool recycles request timers so each synchronous round trip stops
// and reuses its timer instead of leaking a live RequestTimeout-long timer
// into the runtime per call (the cost of the old time.After pattern at 10×
// event rates).
var timerPool sync.Pool

func getTimer(dur time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(dur)
		return t
	}
	return time.NewTimer(dur)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// observeRTTLocked folds one round-trip sample into the Jacobson/Karels
// estimator (srtt gain 1/8, rttvar gain 1/4); caller holds mu.
func (d *ConnDevice) observeRTTLocked(sample time.Duration) {
	if sample < 0 {
		return
	}
	if d.rttSamples == 0 {
		d.srtt = sample
		d.rttvar = sample / 2
	} else {
		diff := d.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		d.rttvar += (diff - d.rttvar) / 4
		d.srtt += (sample - d.srtt) / 8
	}
	d.rttSamples++
	connRTTSamples.Inc()
	connRTTObserved.Observe(sample)
}

// RTTEstimate reports the device's smoothed RTT, mean deviation, and the
// number of samples folded in so far (all zero before the first reply).
func (d *ConnDevice) RTTEstimate() (srtt, rttvar time.Duration, samples int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.srtt, d.rttvar, d.rttSamples
}

// rtoLocked computes the current attempt timeout: RequestTimeout until
// adaptive mode has a sample, then srtt + 4·rttvar clamped to
// [MinRTO, RequestTimeout]; caller holds mu.
func (d *ConnDevice) rtoLocked() time.Duration {
	if !d.AdaptiveTimeout || d.rttSamples == 0 {
		return d.RequestTimeout
	}
	rto := d.srtt + 4*d.rttvar
	if rto < d.MinRTO {
		rto = d.MinRTO
	}
	if rto > d.RequestTimeout {
		rto = d.RequestTimeout
	}
	return rto
}

// request performs one synchronous round-trip bounded by the
// RequestTimeout ceiling, not the adaptive RTO: a single-shot request
// has no retransmit path, so a deadline that fires early (e.g. on a
// multi-fragment transfer that takes longer than small-frame RTT
// samples predict) is an unrecoverable failure rather than a retry.
func (d *ConnDevice) request(m southbound.Msg) (southbound.Msg, error) {
	d.mu.Lock()
	timeout := d.RequestTimeout
	d.mu.Unlock()
	return d.requestT(m, timeout)
}

// requestT performs one synchronous round-trip bounded by an explicit
// timeout. Successful round trips feed the RTT estimator.
func (d *ConnDevice) requestT(m southbound.Msg, timeout time.Duration) (southbound.Msg, error) {
	connSyncRoundTrips.Inc()
	x := d.xid.Add(1)
	m.Xid = x
	ch := make(chan southbound.Msg, 1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return southbound.Msg{}, southbound.ErrClosed
	}
	d.pending[x] = ch
	d.mu.Unlock()
	start := time.Now() //softmow:allow determinism RTT measurement shapes timeout pacing only, never replayable state
	if err := d.conn.Send(m); err != nil {
		d.mu.Lock()
		delete(d.pending, x)
		d.mu.Unlock()
		return southbound.Msg{}, err
	}
	t := getTimer(timeout)
	defer putTimer(t)
	select {
	case reply, ok := <-ch:
		if !ok {
			return southbound.Msg{}, southbound.ErrClosed
		}
		d.mu.Lock()
		//softmow:allow determinism RTT measurement shapes timeout pacing only, never replayable state
		d.observeRTTLocked(time.Now().Sub(start))
		d.mu.Unlock()
		if reply.Type == southbound.TypeError {
			return reply, d.errorFrom(reply)
		}
		return reply, nil
	case <-t.C:
		d.mu.Lock()
		delete(d.pending, x)
		d.mu.Unlock()
		return southbound.Msg{}, fmt.Errorf("core: request to %s timed out", d.id)
	}
}

// Ping measures channel liveness with one echo round trip bounded by
// timeout (not the adaptive RTO: a liveness probe deciding suspicion
// wants the prober's deadline, not the transport's). A successful ping
// feeds the RTT estimator like any other reply.
func (d *ConnDevice) Ping(timeout time.Duration) error {
	_, err := d.requestT(southbound.Msg{Type: southbound.TypeEchoRequest,
		Body: southbound.Echo{Payload: "liveness"}}, timeout)
	return err
}

// Request performs one synchronous request round trip on the device's
// conn with a fresh transaction ID, returning the typed reply. It is the
// entry point for northbound pushes that ride a device channel — UE-state
// transfers to a remote child — without exposing the xid machinery.
func (d *ConnDevice) Request(m southbound.Msg) (southbound.Msg, error) { return d.request(m) }

// ID implements Device.
func (d *ConnDevice) ID() dataplane.DeviceID { return d.id }

// remoteSouthbound marks the device for concurrent batch fan-out: its
// installs are wire round trips worth overlapping across devices.
func (d *ConnDevice) remoteSouthbound() {}

// Features implements Device.
func (d *ConnDevice) Features() southbound.FeatureReply {
	reply, err := d.request(southbound.Msg{Type: southbound.TypeFeatureRequest, Body: southbound.FeatureRequest{}})
	if err != nil {
		return southbound.FeatureReply{Device: d.id, Kind: dataplane.KindSwitch}
	}
	fr, _ := reply.Body.(southbound.FeatureReply)
	return fr
}

// InstallRule implements Device: a FlowMod followed by a barrier so the
// rule is in place when the call returns. Device-side refusals (e.g. a
// slave-role write) surface as errors.
func (d *ConnDevice) InstallRule(r dataplane.Rule) error {
	connFlowMods.Inc()
	return d.awaitFence(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowAdd, Rule: r}})
}

// InstallRules implements BatchInstaller: the rules ride one pipelined
// FlowModBatch fenced by a single barrier, so a whole per-device batch
// costs one synchronous round trip instead of one per rule. The agent
// applies the batch in order and stops at the first failure, so on error
// the device may hold a prefix of the batch — callers (flushBatch) roll
// the affected version back with RemoveRulesVersion.
func (d *ConnDevice) InstallRules(rules []dataplane.Rule) error {
	ch := make(chan error, 1)
	if !d.tryInstallRulesAsync(rules, func(err error) { ch <- err }) {
		// Per-rule compatibility mode: one synchronous round trip per rule.
		for _, r := range rules {
			if err := d.InstallRule(r); err != nil {
				return err
			}
		}
		return nil
	}
	return <-ch
}

// tryInstallRulesAsync enqueues the rules (batched when possible) and
// fences them, invoking cb with the outcome when the fence completes; it
// reports false — and does nothing — when the device is configured for
// per-rule synchronous installs. cb runs on the device's pump or deadline
// goroutine and must not block or issue synchronous southbound I/O.
func (d *ConnDevice) tryInstallRulesAsync(rules []dataplane.Rule, cb func(error)) bool {
	if d.DisableBatch {
		return false
	}
	switch len(rules) {
	case 0:
		cb(nil)
		return true
	case 1:
		connFlowMods.Inc()
		d.modAsync(southbound.Msg{Type: southbound.TypeFlowMod,
			Body: southbound.FlowMod{Command: southbound.FlowAdd, Rule: rules[0]}}, cb)
		return true
	}
	mods := make([]southbound.FlowMod, len(rules))
	for i, r := range rules {
		mods[i] = southbound.FlowMod{Command: southbound.FlowAdd, Rule: r}
	}
	connBatches.Inc()
	connFlowMods.Add(int64(len(rules)))
	d.modAsync(southbound.Msg{Type: southbound.TypeFlowModBatch,
		Body: southbound.FlowModBatch{Mods: mods}}, cb)
	return true
}

// tryRemoveRulesAsync enqueues one delete command and fences it, invoking
// cb when the fence completes. Deletes are single mods on every
// configuration, so this is always capable. cb must not block.
func (d *ConnDevice) tryRemoveRulesAsync(cmd southbound.FlowModCommand, owner string, version int, cb func(error)) bool {
	connFlowMods.Inc()
	d.modAsync(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: cmd, Owner: owner, Version: version}}, cb)
	return true
}

// RemoveRules implements Device.
func (d *ConnDevice) RemoveRules(owner string) error {
	connFlowMods.Inc()
	return d.awaitFence(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowDeleteOwner, Owner: owner}})
}

// RemoveRulesBefore implements Device.
func (d *ConnDevice) RemoveRulesBefore(owner string, version int) error {
	connFlowMods.Inc()
	return d.awaitFence(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowDeleteOwnerBefore, Owner: owner, Version: version}})
}

// RemoveRulesVersion implements Device.
func (d *ConnDevice) RemoveRulesVersion(owner string, version int) error {
	connFlowMods.Inc()
	return d.awaitFence(southbound.Msg{Type: southbound.TypeFlowMod,
		Body: southbound.FlowMod{Command: southbound.FlowDeleteOwnerVersion, Owner: owner, Version: version}})
}

// awaitFence is the synchronous face of the completion table: enqueue the
// modification, fence it, wait for the callback.
func (d *ConnDevice) awaitFence(m southbound.Msg) error {
	ch := make(chan error, 1)
	d.modAsync(m, func(err error) { ch <- err })
	return <-ch
}

// modAsync sends a modification (single FlowMod or a whole FlowModBatch)
// with a tracked transaction ID and fences it; cb fires exactly once with
// the operation's outcome. The agent processes a connection's messages in
// order, so an error reply for the mod is recorded before the fence's
// barrier reply is routed — the completion resolves mod errors without a
// read-after-fence race.
func (d *ConnDevice) modAsync(m southbound.Msg, cb func(error)) {
	x := d.xid.Add(1)
	m.Xid = x
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		cb(southbound.ErrClosed)
		return
	}
	d.mods[x] = nil
	d.mu.Unlock()
	if err := d.conn.Send(m); err != nil {
		d.mu.Lock()
		delete(d.mods, x)
		d.mu.Unlock()
		cb(err)
		return
	}
	d.fenceAsync(x, cb)
}

// fenceAsync registers a barrier completion covering modification modXid
// and sends the first barrier attempt. Timeouts and retries are driven by
// the deadline loop; each attempt re-keys the completion under a fresh
// barrier xid.
func (d *ConnDevice) fenceAsync(modXid uint32, cb func(error)) {
	connBarriers.Inc()
	bx := d.xid.Add(1)
	comp := &barrierComp{cb: cb, modXid: modXid}
	d.mu.Lock()
	if d.closed {
		delete(d.mods, modXid)
		d.mu.Unlock()
		cb(southbound.ErrClosed)
		return
	}
	timeout := d.rtoLocked()
	comp.sentAt = wallDeadline(0)
	d.barriers[bx] = comp
	d.insertDeadlineLocked(dlEntry{comp: comp, xid: bx, at: wallDeadline(timeout)})
	d.mu.Unlock()
	connRTTTimeout.Observe(timeout)
	d.kickDeadlines()
	if err := d.conn.Send(southbound.Msg{Type: southbound.TypeBarrierRequest, Xid: bx, Body: southbound.Barrier{}}); err != nil {
		if merr, ok := d.completeFence(bx, comp); ok {
			if merr == nil {
				merr = err
			}
			cb(merr)
		}
	}
}

// wallDeadline computes a fence expiry on the wall clock; fence pacing is
// measurement-side machinery and never feeds replayable state.
func wallDeadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) //softmow:allow determinism fence timeout scheduling, never feeds replayable state
}

// insertDeadlineLocked inserts e into the expiry-sorted deadline queue
// (adaptive timeouts and retry backoff make arrival order non-monotonic);
// caller holds mu. Insertion is O(n) in the worst case but the common
// case — a stable RTO — appends at the tail.
func (d *ConnDevice) insertDeadlineLocked(e dlEntry) {
	i := sort.Search(len(d.dl), func(i int) bool { return d.dl[i].at.After(e.at) })
	d.dl = append(d.dl, dlEntry{})
	copy(d.dl[i+1:], d.dl[i:])
	d.dl[i] = e
}

// completeFence removes the fence from the table iff it is still keyed by
// xid and owned by comp, consuming its mod error. It reports whether the
// caller now owns the completion (and must invoke cb exactly once).
func (d *ConnDevice) completeFence(xid uint32, comp *barrierComp) (error, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.barriers[xid]; !ok || cur != comp {
		return nil, false
	}
	delete(d.barriers, xid)
	return d.takeModErrLocked(comp), true
}

func (d *ConnDevice) kickDeadlines() {
	select {
	case d.dlKick <- struct{}{}:
	default:
	}
}

// deadlineLoop drives fence timeouts off one reusable timer, always armed
// for the head of the expiry-sorted queue. A kick mid-wait re-arms: with
// adaptive timeouts a newly fenced mod can carry a deadline earlier than
// the one the timer is sleeping toward.
func (d *ConnDevice) deadlineLoop() {
	defer d.loops.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		d.mu.Lock()
		hasWork := len(d.dl) > 0
		var wait time.Duration
		if hasWork {
			wait = time.Until(d.dl[0].at)
		}
		d.mu.Unlock()
		if !hasWork {
			select {
			case <-d.dlKick:
				continue
			case <-d.done:
				return
			}
		}
		if wait > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-d.dlKick:
				continue // head may have moved earlier; recompute
			case <-d.done:
				return
			}
		}
		d.fireDeadlines()
	}
}

// fireDeadlines expires every due fence: attempts with retry budget left
// are re-keyed under a fresh barrier xid and their barrier resent; the
// rest fail with the fence-timeout error. Stale entries — fences already
// completed or re-keyed — are skipped because their xid snapshot no longer
// matches the barrier table.
func (d *ConnDevice) fireDeadlines() {
	now := time.Now() //softmow:allow determinism fence timeout detection, never feeds replayable state
	type resend struct {
		comp *barrierComp
		xid  uint32
	}
	var resends []resend
	var failed []*barrierComp
	d.mu.Lock()
	for len(d.dl) > 0 && !d.dl[0].at.After(now) {
		e := d.dl[0]
		d.dl = d.dl[1:]
		comp, ok := d.barriers[e.xid]
		if !ok || comp != e.comp {
			continue
		}
		delete(d.barriers, e.xid)
		if comp.attempts < d.BarrierRetries && !d.closed {
			comp.attempts++
			// Karn's rule: a retransmitted fence's reply time is ambiguous
			// (it may answer either attempt), so it never feeds the
			// estimator.
			comp.sentAt = time.Time{}
			// Exponential backoff: each retry doubles the attempt timeout,
			// capped at the constant ceiling.
			backoff := d.rtoLocked() << uint(comp.attempts)
			if backoff > d.RequestTimeout {
				backoff = d.RequestTimeout
			}
			nx := d.xid.Add(1)
			d.barriers[nx] = comp
			d.insertDeadlineLocked(dlEntry{comp: comp, xid: nx, at: now.Add(backoff)})
			resends = append(resends, resend{comp: comp, xid: nx})
		} else {
			d.takeModErrLocked(comp) //softmow:allow errdiscard timeout wins over any recorded mod error; the stash is drained so it cannot leak to a later fence
			failed = append(failed, comp)
		}
	}
	d.mu.Unlock()
	for _, r := range resends {
		connBarrierRetries.Inc()
		connBarriers.Inc()
		if err := d.conn.Send(southbound.Msg{Type: southbound.TypeBarrierRequest, Xid: r.xid, Body: southbound.Barrier{}}); err != nil {
			//softmow:allow errdiscard the send error is the authoritative failure; any stashed mod error died with the conn
			if _, ok := d.completeFence(r.xid, r.comp); ok {
				r.comp.cb(err)
			}
		}
	}
	for _, comp := range failed {
		comp.cb(fmt.Errorf("core: device %s: fence failed after %d attempts: %w",
			d.id, d.BarrierRetries+1, fmt.Errorf("core: request to %s timed out", d.id)))
	}
}

// EmitDiscovery implements Device: the frame rides a Packet-Out across the
// port's link and returns to the control plane on the far side.
func (d *ConnDevice) EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error {
	return d.conn.Send(southbound.Msg{Type: southbound.TypePacketOut,
		Body: southbound.PacketOut{OutPort: port, Control: f}})
}

// Barrier fences all previously sent modifications synchronously.
func (d *ConnDevice) Barrier() error {
	connBarriers.Inc()
	_, err := d.request(southbound.Msg{Type: southbound.TypeBarrierRequest, Body: southbound.Barrier{}})
	return err
}

// SetRole requests a controller role on the device (§5.3.2's
// OFPCR_ROLE_EQUAL dance during region handover).
func (d *ConnDevice) SetRole(controller string, role southbound.Role) (southbound.Role, error) {
	reply, err := d.request(southbound.Msg{Type: southbound.TypeRoleRequest,
		Body: southbound.RoleRequest{Controller: controller, Role: role}})
	if err != nil {
		return 0, err
	}
	rr, ok := reply.Body.(southbound.RoleReply)
	if !ok {
		return 0, fmt.Errorf("core: malformed role reply %T", reply.Body)
	}
	return rr.Role, nil
}
