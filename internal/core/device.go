package core

import (
	"fmt"
	"sync"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/southbound"
)

// Device is a controller's handle on one of its data-plane devices: a
// physical switch at the leaf level, a child-exposed gigantic switch above
// (§3.3: "NOS communicates with switches (logical or physical) using a
// southbound API"). The prototype matches the paper's: "Leaf controllers
// use the OpenFlow protocol to communicate with switches while other
// controllers interact with logical data plane elements through a custom
// API similar to OpenFlow" (§7.1).
type Device interface {
	// ID returns the device's data-plane identifier.
	ID() dataplane.DeviceID
	// Features returns the device description (ports, kind, and the
	// virtual fabric for G-switches).
	Features() southbound.FeatureReply
	// InstallRule installs one flow rule. On a G-switch this triggers the
	// child controller's recursive translation (§4.3).
	InstallRule(r dataplane.Rule) error
	// RemoveRules removes all rules installed under an owner tag,
	// recursively for G-switches.
	RemoveRules(owner string) error
	// RemoveRulesBefore removes an owner's rules older than version —
	// the cleanup step of a consistent path update (§6).
	RemoveRulesBefore(owner string, version int) error
	// RemoveRulesVersion removes exactly an owner's rules of one version —
	// the rollback of a partially installed translation, which must not
	// touch older versions still carrying traffic mid-update (§6).
	RemoveRulesVersion(owner string, version int) error
	// EmitDiscovery sends a link-discovery frame out of a port (§4.1.2).
	EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error
}

// SwitchDevice adapts a physical dataplane switch for direct in-process
// control. It installs itself as the switch's controller hook so punted
// packets and port events reach the owning controller.
type SwitchDevice struct {
	net *dataplane.Network
	sw  *dataplane.Switch

	mu sync.Mutex
	// ctrl is the attached controller, guarded by mu.
	ctrl *Controller
}

// NewSwitchDevice wraps a switch and registers the event hook.
func NewSwitchDevice(net *dataplane.Network, sw *dataplane.Switch) *SwitchDevice {
	d := &SwitchDevice{net: net, sw: sw}
	sw.SetHook(d)
	return d
}

// Switch exposes the underlying switch (tests, reconfiguration).
func (d *SwitchDevice) Switch() *dataplane.Switch { return d.sw }

func (d *SwitchDevice) setController(c *Controller) {
	d.mu.Lock()
	d.ctrl = c
	d.mu.Unlock()
}

func (d *SwitchDevice) controller() *Controller {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctrl
}

// ID implements Device.
func (d *SwitchDevice) ID() dataplane.DeviceID { return d.sw.ID }

// Features implements Device.
func (d *SwitchDevice) Features() southbound.FeatureReply {
	return southbound.BuildFeatures(d.sw)
}

// InstallRule implements Device, taking any bandwidth reservation the
// rule's Demand requires (admission control, §3.2).
func (d *SwitchDevice) InstallRule(r dataplane.Rule) error {
	return d.net.InstallRule(d.sw.ID, r)
}

// RemoveRules implements Device, releasing reservations.
func (d *SwitchDevice) RemoveRules(owner string) error {
	d.net.RemoveRulesOwner(d.sw.ID, owner, nil)
	return nil
}

// RemoveRulesBefore implements Device.
func (d *SwitchDevice) RemoveRulesBefore(owner string, version int) error {
	d.net.RemoveRulesOwner(d.sw.ID, owner, func(r *dataplane.Rule) bool {
		return r.Version < version
	})
	return nil
}

// RemoveRulesVersion implements Device.
func (d *SwitchDevice) RemoveRulesVersion(owner string, version int) error {
	d.net.RemoveRulesOwner(d.sw.ID, owner, func(r *dataplane.Rule) bool {
		return r.Version == version
	})
	return nil
}

// EmitDiscovery implements Device: the frame crosses the physical link (if
// any) and arrives at the far switch's controller, exactly like an LLDP
// packet-out (§4.1.2). The link's properties fill the frame's meta field.
func (d *SwitchDevice) EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error {
	p := d.sw.PortByID(port)
	if p == nil {
		return fmt.Errorf("core: %s has no port %d", d.sw.ID, port)
	}
	if p.External || p.Radio != "" || p.Link == nil || !p.Link.Up() {
		return nil // frames die on external, radio, and down ports
	}
	far, ok := p.Link.Other(d.sw.ID)
	if !ok {
		return nil
	}
	farSw := d.net.Switch(far.Dev)
	if farSw == nil {
		return nil
	}
	f.Meta = discovery.LinkMeta{Latency: p.Link.Latency, Bandwidth: p.Link.Available()}
	hook := farSw.Hook()
	if hook == nil {
		return nil
	}
	if fd, ok := hook.(*SwitchDevice); ok {
		if c := fd.controller(); c != nil {
			c.HandleDiscoveryArrival(far.Dev, far.Port, f)
		}
	}
	return nil
}

// PacketIn implements dataplane.ControllerHook: punted data packets become
// Packet-In events at the owning controller.
func (d *SwitchDevice) PacketIn(sw dataplane.DeviceID, inPort dataplane.PortID, p *dataplane.Packet) {
	if c := d.controller(); c != nil {
		c.HandlePacketIn(sw, inPort, p)
	}
}

// PortStatus implements dataplane.ControllerHook.
func (d *SwitchDevice) PortStatus(sw dataplane.DeviceID, port dataplane.PortID, up bool) {
	if c := d.controller(); c != nil {
		c.HandlePortStatus(sw, port, up)
	}
}

// logicalDevice is a parent controller's handle on a child-exposed
// G-switch: the "custom API similar to OpenFlow" of §7.1. Every call
// delegates to the child controller's RecA.
type logicalDevice struct {
	child *Controller
}

// ID implements Device.
func (d *logicalDevice) ID() dataplane.DeviceID { return d.child.GSwitchID() }

// Features implements Device.
func (d *logicalDevice) Features() southbound.FeatureReply {
	return d.child.RecAFeatures()
}

// remoteSouthbound marks the device for concurrent batch fan-out: each
// install is a whole recursive translation in the child, so sibling
// G-switches on a path are worth programming in parallel.
func (d *logicalDevice) remoteSouthbound() {}

// InstallRule implements Device: the child translates the virtual rule
// onto its own (physical or logical) topology (§4.3).
func (d *logicalDevice) InstallRule(r dataplane.Rule) error {
	return d.child.TranslateRule(r)
}

// InstallRules implements BatchInstaller: virtual rules translate in
// order; the first failure aborts the rest. The child's own flush rolls
// back the failing translation's devices, and the parent's batch
// rollback (RemoveRulesVersion → RemoveTranslatedVersion) scrubs
// whatever earlier rules of the batch reached this child.
func (d *logicalDevice) InstallRules(rules []dataplane.Rule) error {
	for _, r := range rules {
		if err := d.child.TranslateRule(r); err != nil {
			return err
		}
	}
	return nil
}

// RemoveRules implements Device: recursive removal by owner tag.
func (d *logicalDevice) RemoveRules(owner string) error {
	return d.child.RemoveTranslated(owner)
}

// RemoveRulesBefore implements Device: recursive version-scoped removal.
func (d *logicalDevice) RemoveRulesBefore(owner string, version int) error {
	return d.child.RemoveTranslatedBefore(owner, version)
}

// RemoveRulesVersion implements Device: recursive exact-version removal.
func (d *logicalDevice) RemoveRulesVersion(owner string, version int) error {
	return d.child.RemoveTranslatedVersion(owner, version)
}

// EmitDiscovery implements Device: the child maps the G-switch port to its
// underlying attachment, pushes its own stack entry and recurses (§4.1.2).
func (d *logicalDevice) EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error {
	return d.child.RecAEmitDiscovery(port, f)
}
