package core

import (
	"sort"
	"sync"

	"repro/internal/dataplane"
)

// The sharded UE store. The §5.1 UE table used to be three maps behind one
// mutex, which made every attach, bearer setup, and handover on a
// controller serialize; under a region's full event rate that single lock
// is the first thing to saturate. The store is now split three ways:
//
//   - The UE table is hash-striped across ueShard buckets (FNV-1a on the
//     UE ID), so table reads and writes for different UEs contend only
//     within a shard.
//   - Mobility operations are serialized per UE through refcounted
//     operation locks (lockUE): two concurrent operations on the same UE
//     never interleave — the second waits for the first's route, install,
//     and record write to complete — while operations on different UEs run
//     in parallel even when they hash to the same shard.
//   - The radio index (BS→group, group→attach) moves behind its own
//     RWMutex (radioIndex): it is read on every bearer setup but written
//     only by management-plane (re)configuration, so hot-path lookups
//     never contend with bearer record writers.
//
// A shard count of 1 selects the coarse compatibility mode: lockUE
// degenerates to one store-wide operation mutex, reproducing the
// single-mutex design where a controller processes mobility events one at
// a time. cmd/loadgen uses it as the scaling baseline.

// DefaultUEShards is the UE-table stripe count controllers start with.
// Power of two; see Controller.SetUEShardCount for tuning.
const DefaultUEShards = 16

// SetUEShardCount resizes the UE store's lock striping. n is rounded up
// to a power of two; n = 1 selects the coarse single-mutex compatibility
// mode (the scaling baseline cmd/loadgen measures against). Bootstrap
// only: it must run before any UE rows exist — nothing rehashes — and is
// not safe concurrently with mobility operations. The radio index (which
// the management plane may already have configured) is preserved.
func (c *Controller) SetUEShardCount(n int) {
	if c.ue.count() != 0 {
		panic("core: SetUEShardCount called with existing UE state")
	}
	fresh := newUEState(n)
	fresh.radio = c.ue.radio
	c.ue = fresh
}

// UEShardCount reports the store's stripe count (1 in coarse mode).
func (c *Controller) UEShardCount() int {
	return len(c.ue.shards)
}

// ueState is the sharded §5.1 UE table plus the radio index.
type ueState struct {
	// shards is immutable after construction (len is a power of two);
	// SetUEShardCount swaps in a whole new ueState during bootstrap.
	shards []ueShard
	// coarse marks the single-shard compatibility mode in which every
	// mobility operation serializes on opMu.
	coarse bool
	// opMu is the store-wide operation lock used only in coarse mode.
	opMu sync.Mutex

	radio *radioIndex
}

// ueShard is one stripe of the UE table.
type ueShard struct {
	mu sync.Mutex
	// table maps UE IDs to their table rows, guarded by mu.
	table map[string]*UERecord
	// ops holds the per-UE operation locks of UEs with a mobility
	// operation in flight, guarded by mu.
	ops map[string]*ueOpLock
}

// ueOpLock serializes mobility operations on one UE.
type ueOpLock struct {
	// mu is held for the full duration of one mobility operation.
	mu sync.Mutex
	// refs counts holders and waiters; it is read and written only while
	// holding the owning shard's mutex, and the lock is dropped from the
	// shard's ops map when it reaches zero.
	refs int
}

// radioIndex is the management-plane radio configuration the mobility
// application reads on every bearer request.
type radioIndex struct {
	mu sync.RWMutex
	// bsGroup maps base stations to their BS group, guarded by mu.
	bsGroup map[dataplane.DeviceID]dataplane.DeviceID
	// groupAttach maps BS groups to their radio attachment port, guarded by mu.
	groupAttach map[dataplane.DeviceID]dataplane.PortRef
}

// newUEState builds a store with shardCount stripes (rounded up to a power
// of two; 1 selects the coarse single-mutex mode).
func newUEState(shardCount int) *ueState {
	n := 1
	for n < shardCount {
		n <<= 1
	}
	s := &ueState{
		shards: make([]ueShard, n),
		coarse: n == 1,
		radio: &radioIndex{
			bsGroup:     make(map[dataplane.DeviceID]dataplane.DeviceID),
			groupAttach: make(map[dataplane.DeviceID]dataplane.PortRef),
		},
	}
	for i := range s.shards {
		s.shards[i] = ueShard{
			table: make(map[string]*UERecord),
			ops:   make(map[string]*ueOpLock),
		}
	}
	return s
}

// shardOf picks the stripe owning a UE (FNV-1a, masked — len(shards) is a
// power of two).
func (s *ueState) shardOf(ue string) *ueShard {
	var h uint32 = 2166136261
	for i := 0; i < len(ue); i++ {
		h ^= uint32(ue[i])
		h *= 16777619
	}
	return &s.shards[h&uint32(len(s.shards)-1)]
}

// lockUE serializes mobility operations per UE and returns the release
// function the caller must invoke when its operation completes. While
// held, no other operation on the same UE can start; operations on other
// UEs are unaffected (coarse mode instead serializes everything on one
// mutex).
func (s *ueState) lockUE(ue string) func() {
	if s.coarse {
		s.opMu.Lock()
		return s.opMu.Unlock
	}
	sh := s.shardOf(ue)
	sh.mu.Lock()
	l := sh.ops[ue]
	if l == nil {
		l = &ueOpLock{}
		sh.ops[ue] = l
	}
	l.refs++
	sh.mu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		sh.mu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(sh.ops, ue)
		}
		sh.mu.Unlock()
	}
}

// get returns a copy of a UE's table row.
func (s *ueState) get(ue string) (UERecord, bool) {
	sh := s.shardOf(ue)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.table[ue]
	if !ok {
		return UERecord{}, false
	}
	return *r, true
}

// put inserts or replaces a UE's table row.
func (s *ueState) put(rec *UERecord) {
	sh := s.shardOf(rec.UE)
	sh.mu.Lock()
	sh.table[rec.UE] = rec
	sh.mu.Unlock()
}

// update applies f to a UE's table row under the shard lock, reporting
// whether the row existed.
func (s *ueState) update(ue string, f func(*UERecord)) bool {
	sh := s.shardOf(ue)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.table[ue]
	if !ok {
		return false
	}
	f(r)
	return true
}

// remove deletes a UE's table row, reporting whether it existed.
func (s *ueState) remove(ue string) bool {
	sh := s.shardOf(ue)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.table[ue]
	delete(sh.table, ue)
	return ok
}

// count reports the number of UE table rows across all shards.
func (s *ueState) count() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}

// snapshot copies every UE table row, sorted by UE ID (deterministic for
// digests, invariant checks, and tests).
func (s *ueState) snapshot() []UERecord {
	var out []UERecord
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, r := range sh.table {
			out = append(out, *r)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UE < out[j].UE })
	return out
}

// takeGroup removes and returns every row camped on a BS group, sorted by
// UE ID (§5.3.2 state transfer). The reconfiguration protocol drains the
// group before calling, so no per-UE operation is in flight on the moved
// rows.
func (s *ueState) takeGroup(groupID dataplane.DeviceID) []*UERecord {
	var moved []*UERecord
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for ue, rec := range sh.table {
			if rec.Group == groupID {
				moved = append(moved, rec)
				delete(sh.table, ue)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i].UE < moved[j].UE })
	return moved
}

// putAll inserts rows (the receiving half of a §5.3.2 transfer).
func (s *ueState) putAll(recs []*UERecord) {
	for _, rec := range recs {
		s.put(rec)
	}
}

// merge adds entries from both maps, leaving existing entries for other
// keys in place (bootstrap configuration and incremental group adoption).
func (r *radioIndex) merge(bsGroup map[dataplane.DeviceID]dataplane.DeviceID, groupAttach map[dataplane.DeviceID]dataplane.PortRef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range bsGroup {
		r.bsGroup[k] = v
	}
	for k, v := range groupAttach {
		r.groupAttach[k] = v
	}
}

// reconcile replaces each non-nil index wholesale, dropping entries absent
// from the replacement (nil leaves that index untouched).
func (r *radioIndex) reconcile(bsGroup map[dataplane.DeviceID]dataplane.DeviceID, groupAttach map[dataplane.DeviceID]dataplane.PortRef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bsGroup != nil {
		r.bsGroup = make(map[dataplane.DeviceID]dataplane.DeviceID, len(bsGroup))
		for k, v := range bsGroup {
			r.bsGroup[k] = v
		}
	}
	if groupAttach != nil {
		r.groupAttach = make(map[dataplane.DeviceID]dataplane.PortRef, len(groupAttach))
		for k, v := range groupAttach {
			r.groupAttach[k] = v
		}
	}
}

// removeGroup deletes a BS group's attachment and every BS mapped to it,
// returning the removed BSes sorted (the explicit remove path for region
// reconfiguration).
func (r *radioIndex) removeGroup(group dataplane.DeviceID) []dataplane.DeviceID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var removed []dataplane.DeviceID
	for bs, g := range r.bsGroup {
		if g == group {
			removed = append(removed, bs)
		}
	}
	for _, bs := range removed {
		delete(r.bsGroup, bs)
	}
	delete(r.groupAttach, group)
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return removed
}

// groupOf resolves a base station's BS group.
func (r *radioIndex) groupOf(bs dataplane.DeviceID) (dataplane.DeviceID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.bsGroup[bs]
	return g, ok
}

// attachOf resolves a BS group's radio attachment.
func (r *radioIndex) attachOf(g dataplane.DeviceID) (dataplane.PortRef, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ref, ok := r.groupAttach[g]
	return ref, ok
}
