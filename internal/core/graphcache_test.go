package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/nib"
	"repro/internal/routing"
)

// cacheTestController builds a controller whose NIB holds two independent
// two-switch components: S1—S2 (asserted on by the main goroutine) and
// S3—S4 (flapped by a background writer to create concurrent mutations).
func cacheTestController() (*Controller, nib.Link, nib.Link) {
	c := NewController("L", 1, 0)
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		c.NIB.PutDevice(nib.Device{ID: id, Kind: dataplane.KindSwitch,
			Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}})
	}
	l12 := nib.Link{A: dataplane.PortRef{Dev: "S1", Port: 1},
		B: dataplane.PortRef{Dev: "S2", Port: 1},
		Latency: time.Millisecond, Bandwidth: 1000, Up: true}
	l34 := nib.Link{A: dataplane.PortRef{Dev: "S3", Port: 1},
		B: dataplane.PortRef{Dev: "S4", Port: 1},
		Latency: time.Millisecond, Bandwidth: 1000, Up: true}
	c.NIB.PutLink(l12)
	c.NIB.PutLink(l34)
	return c, l12, l34
}

// TestGraphCacheReturnsFreshGraph asserts the cache contract on one
// goroutine: after any completed NIB mutation, the next Graph() reflects
// it (down links disappear, restored links reappear, removed and re-added
// records behave identically).
func TestGraphCacheReturnsFreshGraph(t *testing.T) {
	c, l12, _ := cacheTestController()
	src := dataplane.PortRef{Dev: "S1", Port: 2}
	dst := dataplane.PortRef{Dev: "S2", Port: 2}

	reachable := func() bool {
		_, err := c.Graph().ShortestPath(src, dst, routing.MinHops, routing.Constraints{})
		if err != nil && !errors.Is(err, routing.ErrNoPath) {
			t.Fatalf("ShortestPath: %v", err)
		}
		return err == nil
	}

	if !reachable() {
		t.Fatal("baseline: S1—S2 should route")
	}
	if g1, g2 := c.Graph(), c.Graph(); g1 != g2 {
		t.Fatal("unchanged NIB should return the identical cached graph")
	}
	for i := 0; i < 50; i++ {
		c.NIB.SetLinkUp(l12.Key(), false)
		if reachable() {
			t.Fatalf("iteration %d: stale graph still routes over a down link", i)
		}
		c.NIB.SetLinkUp(l12.Key(), true)
		if !reachable() {
			t.Fatalf("iteration %d: restored link missing from fresh graph", i)
		}
		c.NIB.RemoveLink(l12.Key())
		if reachable() {
			t.Fatalf("iteration %d: stale graph still routes over a removed link", i)
		}
		c.NIB.PutLink(l12)
		if !reachable() {
			t.Fatalf("iteration %d: re-added link missing from fresh graph", i)
		}
	}
}

// TestGraphCacheConcurrent exercises the cache under -race: reader
// goroutines hammer Graph() and run SSSPs (sharing pooled scratch state)
// while one writer flaps an independent link and the main goroutine
// mutates and immediately asserts freshness. Readers must never crash or
// observe a torn graph, and the main goroutine must never observe a stale
// one.
func TestGraphCacheConcurrent(t *testing.T) {
	c, l12, l34 := cacheTestController()
	src := dataplane.PortRef{Dev: "S1", Port: 2}
	dst := dataplane.PortRef{Dev: "S2", Port: 2}
	bgSrc := dataplane.PortRef{Dev: "S3", Port: 2}
	bgDst := dataplane.PortRef{Dev: "S4", Port: 2}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 16)

	// Readers: concurrent Graph() + path queries over both components.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := c.Graph()
				if g == nil {
					errc <- errors.New("Graph() returned nil")
					return
				}
				// Outcomes vary with the flapping; only invariants are
				// checked: no panic, no torn state, metrics consistent.
				if _, err := g.ShortestPath(src, dst, routing.MinHops, routing.Constraints{}); err != nil && !errors.Is(err, routing.ErrNoPath) {
					errc <- fmt.Errorf("reader ShortestPath: %w", err)
					return
				}
				row := g.MetricsFrom(bgSrc)
				if m, ok := row[bgDst]; ok && m.Reachable && m.Hops == 0 && bgSrc != bgDst {
					errc <- fmt.Errorf("torn metrics: reachable with 0 hops")
					return
				}
			}
		}()
	}

	// Writer: flap the independent S3—S4 link and its port records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		up := false
		for !stop.Load() {
			c.NIB.SetLinkUp(l34.Key(), up)
			c.HandlePortStatus("S3", 1, up)
			up = !up
		}
	}()

	// Main goroutine: mutate S1—S2 and assert the very next Graph() call
	// reflects the completed mutation.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		c.NIB.SetLinkUp(l12.Key(), false)
		if _, err := c.Graph().ShortestPath(src, dst, routing.MinHops, routing.Constraints{}); !errors.Is(err, routing.ErrNoPath) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("iteration %d: stale graph: down link S1—S2 still routes (err=%v)", i, err)
		}
		c.NIB.SetLinkUp(l12.Key(), true)
		if _, err := c.Graph().ShortestPath(src, dst, routing.MinHops, routing.Constraints{}); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("iteration %d: restored link S1—S2 missing: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
