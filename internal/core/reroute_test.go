package core

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/pathimpl"
	"repro/internal/reca"
	"repro/internal/routing"
)

// rerouteFixture builds a diamond inside one leaf region so two disjoint
// internal routes exist:
//
//	        S2
//	S1 <          > S4(E1)
//	        S3
type rerouteFixture struct {
	net   *dataplane.Network
	leaf  *Controller
	radio dataplane.PortRef
	g     *routing.Graph
	eport dataplane.PortID
}

func buildRerouteFixture(t *testing.T) *rerouteFixture {
	t.Helper()
	_ = pathimpl.ModeSwap
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		net.AddSwitch(id)
	}
	link := func(a, b dataplane.DeviceID, lat time.Duration) {
		if _, err := net.Connect(a, b, lat, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link("S1", "S2", 5*time.Millisecond)
	link("S2", "S4", 5*time.Millisecond)
	link("S1", "S3", 20*time.Millisecond)
	link("S3", "S4", 20*time.Millisecond)
	rp, _ := net.AddRadioPort("S1", "gA")
	ep, _ := net.AddEgress("E1", "S4", "isp")
	h, err := NewTwoLevel(net, "root", []LeafSpec{{
		ID:       "L1",
		Switches: []dataplane.DeviceID{"S1", "S2", "S3", "S4"},
		Radios: []reca.RadioAttachment{{
			ID: "gA", Attach: dataplane.PortRef{Dev: "S1", Port: rp.ID}, Border: true,
		}},
		BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	leaf := h.Leaves[0]
	return &rerouteFixture{
		net: net, leaf: leaf,
		radio: dataplane.PortRef{Dev: "S1", Port: rp.ID},
		g:     leaf.Graph(),
		eport: ep.Port,
	}
}

func (f *rerouteFixture) pathVia(t *testing.T, obj routing.Objective) *routing.Path {
	t.Helper()
	p, err := f.g.ShortestPath(f.radio, dataplane.PortRef{Dev: "S4", Port: f.eport}, obj, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *rerouteFixture) drive(t *testing.T) dataplane.TraversalResult {
	t.Helper()
	pkt := &dataplane.Packet{UE: "u1", DstPrefix: "pfx", QoS: -0}
	pkt.QoS = 0
	res, err := f.net.Inject("S1", f.radio.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReroutePathMakeBeforeBreak(t *testing.T) {
	f := buildRerouteFixture(t)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}

	viaS2 := f.pathVia(t, routing.MinHops) // S1-S2-S4
	id, err := f.leaf.SetupPath(match, viaS2)
	if err != nil {
		t.Fatal(err)
	}
	res := f.drive(t)
	if res.Disposition != dataplane.DispEgressed || res.Packet.Path()[1] != "S2" {
		t.Fatalf("initial path: %v via %v", res.Disposition, res.Packet.Path())
	}

	// New route via S3 (simulate policy change). Prepare: both versions
	// coexist, new classification wins.
	viaS3 := forceVia(t, f, "S3")
	if err := f.leaf.PrepareReroute(id, viaS3); err != nil {
		t.Fatal(err)
	}
	res = f.drive(t)
	if res.Disposition != dataplane.DispEgressed || res.Packet.Path()[1] != "S3" {
		t.Fatalf("after prepare: %v via %v", res.Disposition, res.Packet.Path())
	}
	// Old rules still present (reachability for in-flight versions).
	oldRules := 0
	for _, sw := range f.net.Switches() {
		for _, r := range sw.Table.Rules() {
			rec, _ := f.leaf.Path(id)
			if r.Owner == rec.Owner && r.Version < rec.Version {
				oldRules++
			}
		}
	}
	if oldRules == 0 {
		t.Fatal("prepare must keep the old version installed")
	}

	if err := f.leaf.CommitReroute(id); err != nil {
		t.Fatal(err)
	}
	res = f.drive(t)
	if res.Disposition != dataplane.DispEgressed || res.Packet.Path()[1] != "S3" {
		t.Fatalf("after commit: %v via %v", res.Disposition, res.Packet.Path())
	}
	// Old version gone.
	for _, sw := range f.net.Switches() {
		for _, r := range sw.Table.Rules() {
			rec, _ := f.leaf.Path(id)
			if r.Owner == rec.Owner && r.Version < rec.Version {
				t.Fatalf("stale rule survived commit: %v on %s", r, sw.ID)
			}
		}
	}
	if res.MaxLabelDepth > 1 {
		t.Fatal("label invariant across reroute")
	}
}

// forceVia computes the S1→egress path through a required middle switch by
// taking the long diamond arm.
func forceVia(t *testing.T, f *rerouteFixture, via dataplane.DeviceID) *routing.Path {
	t.Helper()
	// leg1: radio → S3 side; leg2: → egress. Build with MinLatency vs
	// MinHops: MinHops gives S2 (both 2 hops... S1-S2-S4 and S1-S3-S4 are
	// both 2 hops; tie-break by latency gives S2). To force S3, compute
	// legs explicitly and stitch.
	leg1, err := f.g.ShortestPath(f.radio, dataplane.PortRef{Dev: via, Port: 1}, routing.MinHops, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	leg2, err := f.g.ShortestPath(dataplane.PortRef{Dev: via, Port: 1},
		dataplane.PortRef{Dev: "S4", Port: f.eport}, routing.MinHops, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	stitched := &routing.Path{
		Points:        append(append([]dataplane.PortRef{}, leg1.Points...), leg2.Points[1:]...),
		LinkCrossings: append(append([]bool{}, leg1.LinkCrossings...), leg2.LinkCrossings...),
		Cost: routing.Cost{
			Hops:    leg1.Cost.Hops + leg2.Cost.Hops,
			Latency: leg1.Cost.Latency + leg2.Cost.Latency,
		},
	}
	return stitched
}

func TestReroutePathFull(t *testing.T) {
	f := buildRerouteFixture(t)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	id, err := f.leaf.SetupPath(match, f.pathVia(t, routing.MinHops))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.leaf.ReroutePath(id, forceVia(t, f, "S3")); err != nil {
		t.Fatal(err)
	}
	res := f.drive(t)
	if res.Disposition != dataplane.DispEgressed || res.Packet.Path()[1] != "S3" {
		t.Fatalf("rerouted path: %v via %v", res.Disposition, res.Packet.Path())
	}
}

func TestPrepareRerouteRollback(t *testing.T) {
	f := buildRerouteFixture(t)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	id, err := f.leaf.SetupPath(match, f.pathVia(t, routing.MinHops))
	if err != nil {
		t.Fatal(err)
	}
	// A path referencing an unknown device fails mid-install; the old
	// route must be restored.
	bad := &routing.Path{
		Points: []dataplane.PortRef{
			{Dev: "S1", Port: f.radio.Port}, {Dev: "S1", Port: 1},
			{Dev: "GHOST", Port: 1}, {Dev: "GHOST", Port: 2},
		},
		LinkCrossings: []bool{false, true, false},
	}
	if err := f.leaf.PrepareReroute(id, bad); err == nil {
		t.Fatal("expected failure")
	}
	res := f.drive(t)
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("old path must survive failed reroute: %v", res.Disposition)
	}
	rec, _ := f.leaf.Path(id)
	if !rec.Active {
		t.Fatal("path should remain active after rollback")
	}
}

func TestRerouteUnknownPath(t *testing.T) {
	f := buildRerouteFixture(t)
	if err := f.leaf.ReroutePath(999, f.pathVia(t, routing.MinHops)); err == nil {
		t.Fatal("unknown path must fail")
	}
}
