package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/southbound"
)

// serveEchoSwallowBarriers answers echo requests on the device side and
// silently swallows everything else (FlowMods, barriers) — a live but
// write-blackholed channel, the scenario adaptive fences must fail fast
// on. Exits when the conn closes.
func serveEchoSwallowBarriers(c southbound.Conn) {
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		if m.Type == southbound.TypeEchoRequest {
			_ = c.Send(southbound.Msg{Type: southbound.TypeEchoReply, Xid: m.Xid, Body: m.Body})
		}
	}
}

// TestRTTEstimatorConverges: echo round trips feed the Jacobson/Karels
// estimator; after a handful of pings the estimate is positive, sane, and
// the sample count matches.
func TestRTTEstimatorConverges(t *testing.T) {
	dev, devEnd := dialScripted(t)
	go serveEchoSwallowBarriers(devEnd)
	for i := 0; i < 10; i++ {
		if err := dev.Ping(time.Second); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	srtt, rttvar, n := dev.RTTEstimate()
	if n != 10 {
		t.Fatalf("samples = %d, want 10", n)
	}
	if srtt <= 0 || srtt > 100*time.Millisecond {
		t.Fatalf("srtt = %v, want a sane in-process RTT", srtt)
	}
	if rttvar < 0 {
		t.Fatalf("rttvar = %v, negative", rttvar)
	}
}

// TestAdaptiveFenceFailsFast: once the estimator has samples, a
// blackholed fence exhausts its retry budget on RTT-scale deadlines —
// orders of magnitude before the constant RequestTimeout would have
// noticed.
func TestAdaptiveFenceFailsFast(t *testing.T) {
	dev, devEnd := dialScripted(t)
	go serveEchoSwallowBarriers(devEnd)
	dev.RequestTimeout = 2 * time.Second
	dev.BarrierRetries = 2
	dev.MinRTO = time.Millisecond
	for i := 0; i < 5; i++ {
		if err := dev.Ping(time.Second); err != nil {
			t.Fatalf("ping: %v", err)
		}
	}
	start := time.Now()
	err := dev.InstallRule(dataplane.Rule{Priority: 1})
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "fence failed") {
		t.Fatalf("install on a blackholed channel: %v, want fence-failed", err)
	}
	// Budget: 1ms + 2ms + 4ms of backoff plus scheduling slop — nowhere
	// near the 2s constant (×3 attempts = 6s) the fixed baseline needs.
	if elapsed > time.Second {
		t.Fatalf("adaptive fence took %v, wanted RTT-scale failure", elapsed)
	}
}

// TestFixedTimeoutBaseline: with AdaptiveTimeout off the constant
// RequestTimeout still governs, samples or not — the comparison baseline
// the impairment scenario matrix measures against.
func TestFixedTimeoutBaseline(t *testing.T) {
	dev, devEnd := dialScripted(t)
	go serveEchoSwallowBarriers(devEnd)
	dev.AdaptiveTimeout = false
	dev.RequestTimeout = 30 * time.Millisecond
	dev.BarrierRetries = 0
	for i := 0; i < 5; i++ {
		if err := dev.Ping(time.Second); err != nil {
			t.Fatalf("ping: %v", err)
		}
	}
	start := time.Now()
	err := dev.InstallRule(dataplane.Rule{Priority: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("install on a blackholed channel succeeded")
	}
	if elapsed < 25*time.Millisecond {
		t.Fatalf("fixed-timeout fence failed after %v, before RequestTimeout", elapsed)
	}
}

// TestShortDeadlineOvertakesLong: the deadline queue is sorted and the
// loop re-arms on insert, so a fresh RTT-scale fence expires while an
// older constant-scale fence is still pending — the ordering property
// the old FIFO queue could not express.
func TestShortDeadlineOvertakesLong(t *testing.T) {
	dev, devEnd := dialScripted(t)
	go serveEchoSwallowBarriers(devEnd)
	dev.RequestTimeout = time.Second
	dev.BarrierRetries = 0
	dev.MinRTO = time.Millisecond

	// Fence A arms before any sample exists → constant 1s deadline.
	errA := make(chan error, 1)
	go func() { errA <- dev.InstallRule(dataplane.Rule{Priority: 1}) }()
	// Wait until A's barrier is actually outstanding.
	for i := 0; i < 200; i++ {
		dev.mu.Lock()
		n := len(dev.barriers)
		dev.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Seed the estimator, then arm fence B → ~1ms deadline.
	for i := 0; i < 5; i++ {
		if err := dev.Ping(time.Second); err != nil {
			t.Fatalf("ping: %v", err)
		}
	}
	errB := make(chan error, 1)
	go func() { errB <- dev.InstallRule(dataplane.Rule{Priority: 2}) }()

	select {
	case err := <-errB:
		if err == nil {
			t.Fatal("fence B succeeded on a blackholed channel")
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("fence B did not expire ahead of fence A: deadline queue not re-armed")
	}
	select {
	case err := <-errA:
		t.Fatalf("fence A resolved early: %v", err)
	default: // still pending, as its 1s deadline demands
	}
	if err := <-errA; err == nil {
		t.Fatal("fence A succeeded on a blackholed channel")
	}
}
