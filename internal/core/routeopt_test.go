package core

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/pathimpl"
)

// TestOptimizeRoutesMovesFlowToBetterEgress: a flow installed when E-far
// was the only option migrates to E-near once a much better route appears
// (an interdomain snapshot change).
func TestOptimizeRoutesMovesFlowToBetterEgress(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)

	// "pfxMoving" is initially reachable only via E-far.
	f.l2.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfxMoving", Egress: "E-far", EgressSwitch: "S4",
		Metrics: interdomain.Metrics{Hops: 12, RTT: 24 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S4", Port: f.farEgress.Port})
	f.l2.PropagateInterdomain()

	rec, err := f.l1.HandleBearerRequest(BearerRequest{UE: "um", BS: "b1", Prefix: "pfxMoving"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HandledBy != f.root {
		t.Fatalf("setup should delegate to root, got %s", rec.HandledBy.OwnerID())
	}
	pkt := &dataplane.Packet{UE: "um", DstPrefix: "pfxMoving"}
	res, _ := f.net.Inject("S1", f.radioA.Port, pkt)
	if res.EgressPort.Dev != "S4" {
		t.Fatalf("precondition: flow exits at %v", res.EgressPort)
	}

	// Routing change: E-near now reaches pfxMoving in 2 hops.
	f.l1.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfxMoving", Egress: "E-near", EgressSwitch: "S2",
		Metrics: interdomain.Metrics{Hops: 2, RTT: 4 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S2", Port: f.nearEgress.Port})
	f.l1.PropagateInterdomain()

	report := f.root.OptimizeRoutes(1)
	if report.Examined == 0 || report.Rerouted != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report.HopsSaved <= 0 {
		t.Fatalf("hops saved = %d", report.HopsSaved)
	}

	pkt2 := &dataplane.Packet{UE: "um", DstPrefix: "pfxMoving"}
	res2, _ := f.net.Inject("S1", f.radioA.Port, pkt2)
	if res2.Disposition != dataplane.DispEgressed {
		t.Fatalf("post-opt delivery: %v", res2.Disposition)
	}
	if res2.EgressPort.Dev != "S2" {
		t.Fatalf("flow should migrate to E-near (S2), exits at %v", res2.EgressPort)
	}
	if res2.MaxLabelDepth > 1 {
		t.Fatal("label invariant across optimization")
	}
}

// TestOptimizeRoutesLeavesGoodPathsAlone: no churn when nothing improved.
func TestOptimizeRoutesLeavesGoodPathsAlone(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u1", BS: "b1", Prefix: "pfxNear"}); err != nil {
		t.Fatal(err)
	}
	report := f.l1.OptimizeRoutes(1)
	if report.Rerouted != 0 {
		t.Fatalf("spurious reroutes: %+v", report)
	}
	if report.Examined != 1 {
		t.Fatalf("examined = %d", report.Examined)
	}
}

// TestOptimizeRoutesRespectsGainThreshold: marginal gains below the
// threshold do not trigger churn.
func TestOptimizeRoutesRespectsGainThreshold(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	f.l1.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfxT", Egress: "E-near", EgressSwitch: "S2",
		Metrics: interdomain.Metrics{Hops: 10, RTT: 20 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S2", Port: f.nearEgress.Port})
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u1", BS: "b1", Prefix: "pfxT"}); err != nil {
		t.Fatal(err)
	}
	// A new option that saves just one hop.
	f.l1.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfxT", Egress: "E-near", EgressSwitch: "S2",
		Metrics: interdomain.Metrics{Hops: 9, RTT: 18 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S2", Port: f.nearEgress.Port})
	report := f.l1.OptimizeRoutes(5)
	if report.Rerouted != 0 {
		t.Fatalf("threshold ignored: %+v", report)
	}
}
