package core

import (
	"errors"
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/routing"
)

// The mobility application (§5) implements UE bearer management and
// handovers on top of the NOS northbound API. It maintains the two §5.1
// tables: the UE table (bearer request → local path ID) and the path table
// (held by the controller's path records). UE state lives in the sharded
// store (ueshard.go): public entry points acquire the per-UE operation
// lock and delegate to *Locked helpers, so concurrent operations on one UE
// serialize while different UEs proceed in parallel.

// BearerRequest is the §5.1 "(UE ID, BS ID, SRC IP, DST IP, REQ)" tuple.
type BearerRequest struct {
	UE     string
	BS     dataplane.DeviceID
	SrcIP  string
	Prefix interdomain.PrefixID
	QoS    int
	// Constraints carries the REQ QoS bounds.
	Constraints  routing.Constraints
	MaxTotalHops int
	Objective    routing.Objective
}

// UERecord is one UE table row.
type UERecord struct {
	UE     string
	BS     dataplane.DeviceID
	Group  dataplane.DeviceID
	Prefix interdomain.PrefixID
	QoS    int
	// PathID is the path at the resolving controller.
	PathID PathID
	// HandledBy is the controller that computed and owns the path (§5.1:
	// "whether the UE request has been handled locally or by the parent").
	// In one process it is the owning *Controller; in a distributed tree a
	// northbound proxy that forwards teardowns over the wire.
	HandledBy PathOwner
	Active    bool
}

// SetRadioIndex merges entries into the BS→group and group→attachment maps
// the mobility application needs (management-plane configuration).
// Existing entries for other keys are left in place — TransferBorderGroup
// relies on merge semantics to adopt one group into a live target leaf.
// Callers rebuilding an index from scratch (so stale entries must
// disappear) use ReconcileRadioIndex instead.
func (c *Controller) SetRadioIndex(bsGroup map[dataplane.DeviceID]dataplane.DeviceID, groupAttach map[dataplane.DeviceID]dataplane.PortRef) {
	c.ue.radio.merge(bsGroup, groupAttach)
}

// ReconcileRadioIndex replaces each non-nil index wholesale: entries
// absent from the replacement are dropped. A nil map leaves that index
// untouched. Non-leaf controllers re-deriving their radio view from
// children after a reconfiguration (§5.3.2) use this so a group moved
// between children does not leave a stale attachment behind.
func (c *Controller) ReconcileRadioIndex(bsGroup map[dataplane.DeviceID]dataplane.DeviceID, groupAttach map[dataplane.DeviceID]dataplane.PortRef) {
	c.ue.radio.reconcile(bsGroup, groupAttach)
}

// RemoveRadioGroup deletes a BS group's attachment and every BS mapped to
// it from the radio index, returning the removed BSes in sorted order —
// the explicit remove path a source leaf runs when a group leaves its
// region.
func (c *Controller) RemoveRadioGroup(group dataplane.DeviceID) []dataplane.DeviceID {
	return c.ue.radio.removeGroup(group)
}

// GroupOfBS resolves a base station's BS group (read-lock only; never
// contends with bearer record writers).
func (c *Controller) GroupOfBS(bs dataplane.DeviceID) (dataplane.DeviceID, bool) {
	return c.ue.radio.groupOf(bs)
}

// AttachOfGroup resolves a BS group's radio attachment (read-lock only).
func (c *Controller) AttachOfGroup(g dataplane.DeviceID) (dataplane.PortRef, bool) {
	return c.ue.radio.attachOf(g)
}

// UE returns a UE table row.
func (c *Controller) UE(ue string) (UERecord, bool) {
	return c.ue.get(ue)
}

// UECount reports the number of UE table rows.
func (c *Controller) UECount() int {
	return c.ue.count()
}

// UERecords returns a copy of every UE table row, sorted by UE ID.
func (c *Controller) UERecords() []UERecord {
	return c.ue.snapshot()
}

// ErrUnknownBS is returned for bearer requests from unconfigured base
// stations.
var ErrUnknownBS = errors.New("core: unknown base station")

// HandleBearerRequest processes a UE bearer request at a leaf controller
// (§5.1): route locally, delegating to ancestors when the local region
// cannot satisfy the QoS, then implement the path and record it. A repeat
// request for an attached UE replaces its default bearer make-before-break
// (the new path is installed before the old one is released).
func (c *Controller) HandleBearerRequest(req BearerRequest) (*UERecord, error) {
	done := c.ue.lockUE(req.UE)
	defer done()
	return c.handleBearerRequestLocked(req)
}

// handleBearerRequestLocked is HandleBearerRequest under the caller-held
// per-UE operation lock.
func (c *Controller) handleBearerRequestLocked(req BearerRequest) (*UERecord, error) {
	group, ok := c.GroupOfBS(req.BS)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBS, req.BS)
	}
	attach, ok := c.AttachOfGroup(group)
	if !ok {
		return nil, fmt.Errorf("core: group %s has no attachment", group)
	}
	routeReq := RouteRequest{
		From:         attach,
		Prefix:       req.Prefix,
		Objective:    req.Objective,
		Constraints:  req.Constraints,
		MaxTotalHops: req.MaxTotalHops,
	}
	match := dataplane.Match{
		InPort: dataplane.PortAny, UE: req.UE, SrcIP: req.SrcIP,
		DstPrefix: string(req.Prefix), QoS: req.QoS,
	}
	// Route locally first; when this region cannot satisfy the QoS the
	// request ascends the northbound (§4.2) and the resolving ancestor
	// implements the path and returns its handle.
	var pathID PathID
	var owner PathOwner
	if res, err := c.Route(routeReq); err == nil {
		if pathID, err = c.SetupPathWithDemand(match, res.Path, req.Constraints.MinBandwidth); err != nil {
			return nil, err
		}
		owner = c
	} else {
		pl := c.ParentLinkRef()
		if pl == nil {
			return nil, ErrNoRoute
		}
		gport, ok := c.sourceGPort(routeReq.From)
		if !ok {
			return nil, fmt.Errorf("%w: source %v not exposed to parent", ErrNoRoute, routeReq.From)
		}
		c.mu.Lock()
		c.stats.DelegatedRequests++
		c.mu.Unlock()
		up := routeReq
		up.From = dataplane.PortRef{Dev: c.GSwitchID(), Port: gport}
		if pathID, owner, err = pl.DelegateBearer(up, match, req.Constraints.MinBandwidth); err != nil {
			return nil, err
		}
	}
	// Re-admission replaces the UE's default bearer: release the previous
	// path so a repeated attach (or an intra-region handover) cannot leak
	// an installed path no table row records. The new path is already
	// carrying traffic (its classify rules outrank the old version's), so
	// the release is best-effort cleanup.
	if old, ok := c.ue.get(req.UE); ok && old.Active {
		_ = old.HandledBy.TeardownPath(old.PathID) //softmow:allow errdiscard best-effort release of the replaced bearer path; teardown is idempotent
	}
	rec := &UERecord{
		UE: req.UE, BS: req.BS, Group: group, Prefix: req.Prefix, QoS: req.QoS,
		PathID: pathID, HandledBy: owner, Active: true,
	}
	c.ue.put(rec)
	c.mu.Lock()
	c.stats.BearersHandled++
	c.mu.Unlock()
	out := *rec
	return &out, nil
}

// DeactivateBearer tears down a UE's path when it goes idle (§5.1: "If the
// UE bearer has been handled by the parent controller, the mobility
// application continues to request bearer deactivation from its parent via
// RecA").
func (c *Controller) DeactivateBearer(ue string) error {
	done := c.ue.lockUE(ue)
	defer done()
	return c.deactivateBearerLocked(ue)
}

// deactivateBearerLocked is DeactivateBearer under the caller-held per-UE
// operation lock.
func (c *Controller) deactivateBearerLocked(ue string) error {
	var rec UERecord
	ok := c.ue.update(ue, func(r *UERecord) {
		r.Active = false
		rec = *r
	})
	if !ok {
		return fmt.Errorf("core: unknown UE %s", ue)
	}
	return rec.HandledBy.TeardownPath(rec.PathID)
}

// Detach removes a UE from the network entirely: its bearer path (if
// still active) is torn down via the controller that owns it and its UE
// table row is deleted. Detach is the terminal transition of the §5.1 UE
// lifecycle; re-attaching later is a fresh HandleBearerRequest.
func (c *Controller) Detach(ue string) error {
	done := c.ue.lockUE(ue)
	defer done()
	rec, ok := c.ue.get(ue)
	if !ok {
		return fmt.Errorf("core: unknown UE %s", ue)
	}
	var err error
	if rec.Active {
		err = rec.HandledBy.TeardownPath(rec.PathID)
	}
	c.ue.remove(ue)
	return err
}

// HandoverRequest is the §5.2 inter-region handover request: "contains at
// least source and target G-BS IDs and BS IDs".
type HandoverRequest struct {
	UE        string
	SrcGBS    dataplane.DeviceID
	SrcBS     dataplane.DeviceID
	DstGBS    dataplane.DeviceID
	DstBS     dataplane.DeviceID
	Prefix    interdomain.PrefixID
	QoS       int
	Objective routing.Objective
}

// Handover moves a UE between base stations. When both stations are in
// this leaf's region the intra-region procedure applies; otherwise the
// request ascends to the lowest ancestor controlling both G-BSes (§5.2).
func (c *Controller) Handover(ue string, dstGBS, dstBS dataplane.DeviceID) error {
	done := c.ue.lockUE(ue)
	defer done()
	return c.handoverLocked(ue, dstGBS, dstBS)
}

// handoverLocked is Handover under the caller-held per-UE operation lock.
func (c *Controller) handoverLocked(ue string, dstGBS, dstBS dataplane.DeviceID) error {
	rec, ok := c.ue.get(ue)
	if !ok {
		return fmt.Errorf("core: unknown UE %s", ue)
	}
	if _, local := c.GroupOfBS(dstBS); local {
		// Intra-region handover: recompute the path from the new group.
		// handleBearerRequestLocked installs the new path first and then
		// releases the replaced one (make-before-break), rewriting the UE
		// table row itself.
		if _, err := c.handleBearerRequestLocked(BearerRequest{
			UE: ue, BS: dstBS, Prefix: rec.Prefix, QoS: rec.QoS,
		}); err != nil {
			return err
		}
		c.mu.Lock()
		c.stats.HandoversHandled++
		c.mu.Unlock()
		return nil
	}
	// Inter-region: find this UE's source G-BS and ascend.
	srcGBS, ok := c.gbsOfGroup(rec.Group)
	if !ok {
		return fmt.Errorf("core: group %s has no exposed G-BS", rec.Group)
	}
	pl := c.ParentLinkRef()
	if pl == nil {
		return fmt.Errorf("core: no ancestor for inter-region handover of %s", ue)
	}
	req := HandoverRequest{
		UE: ue, SrcGBS: srcGBS, SrcBS: rec.BS, DstGBS: dstGBS, DstBS: dstBS,
		Prefix: rec.Prefix, QoS: rec.QoS,
	}
	newPath, handledBy, err := pl.InterRegionHandover(req)
	if err != nil {
		return err
	}
	// Release the old path and update the UE record (§5.2: "Once the
	// handover finishes, the root asks G-BS1 to release the resources. It
	// then removes old paths").
	if rec.Active {
		// The new path is installed and the handover has succeeded; failing
		// it now over an old-path cleanup error would strand the UE worse
		// than a leaked (idempotent, re-removable) rule does.
		_ = rec.HandledBy.TeardownPath(rec.PathID) //softmow:allow errdiscard §5.2 old-path release is best-effort after a committed handover
	}
	c.ue.update(ue, func(r *UERecord) {
		r.BS = dstBS
		r.Group = "" // now controlled by the target leaf
		r.PathID = newPath
		r.HandledBy = handledBy
		// The handover just installed a live path, so the row is active
		// even if the UE was idle before — otherwise the new path could
		// never be deactivated or detached.
		r.Active = true
	})
	c.mu.Lock()
	c.stats.HandoversHandled++
	c.mu.Unlock()
	return nil
}

// gbsOfGroup maps a local BS group to the G-BS exposing it.
func (c *Controller) gbsOfGroup(group dataplane.DeviceID) (dataplane.DeviceID, bool) {
	ab := c.Abstraction()
	if ab == nil {
		return "", false
	}
	for _, g := range ab.GBSes {
		for _, member := range g.Groups {
			if member == group {
				return g.ID, true
			}
		}
	}
	return "", false
}

// handleInterRegionHandover runs the §5.2 ancestor procedure: if this
// controller sees both G-BSes it implements the new path (and a transfer
// path for in-flight packets); otherwise it delegates upward.
func (c *Controller) handleInterRegionHandover(req HandoverRequest) (PathID, PathOwner, error) {
	srcPort, srcOK := c.findGBSPort(req.SrcGBS)
	dstPort, dstOK := c.findGBSPort(req.DstGBS)
	if !srcOK || !dstOK {
		pl := c.ParentLinkRef()
		if pl == nil {
			return 0, nil, fmt.Errorf("core: no common ancestor for %s -> %s", req.SrcGBS, req.DstGBS)
		}
		c.mu.Lock()
		c.stats.DelegatedRequests++
		c.mu.Unlock()
		return pl.InterRegionHandover(req)
	}

	// New egress path for the UE from the target G-BS.
	res, err := c.Route(RouteRequest{From: dstPort, Prefix: req.Prefix, Objective: req.Objective})
	if err != nil {
		return 0, nil, fmt.Errorf("core: handover path for %s: %w", req.UE, err)
	}
	match := dataplane.Match{InPort: dataplane.PortAny, UE: req.UE, DstPrefix: string(req.Prefix), QoS: req.QoS}
	pathID, err := c.SetupPath(match, res.Path)
	if err != nil {
		return 0, nil, err
	}

	// Transfer path from source to target G-BS for in-flight downlink
	// packets (§5.2: "implements a new path between G-BS1 and G-BS2 to
	// transfer in-flight packets"). Best-effort: a missing path (e.g.
	// detached regions) does not fail the handover.
	g := c.Graph()
	if tp, err := g.ShortestPath(srcPort, dstPort, routing.MinHops, routing.Constraints{}); err == nil {
		transferMatch := dataplane.Match{InPort: dataplane.PortAny, UE: req.UE, QoS: -1}
		if tid, err := c.SetupPath(transferMatch, tp); err == nil {
			// In-flight transfer paths are short-lived; tear down
			// immediately after the switchover in this synchronous model.
			_ = c.TeardownPath(tid) //softmow:allow errdiscard transfer path just created above, teardown cannot hit unknown-path
		}
	}

	c.mu.Lock()
	c.stats.InterRegionHandovers++
	c.mu.Unlock()
	return pathID, c, nil
}

// findGBSPort locates the port (on a child G-switch in this controller's
// topology) attaching the named G-BS.
func (c *Controller) findGBSPort(gbs dataplane.DeviceID) (dataplane.PortRef, bool) {
	for _, d := range c.NIB.Devices(dataplane.KindGSwitch) {
		for _, p := range d.Ports {
			if p.Radio == gbs {
				return dataplane.PortRef{Dev: d.ID, Port: p.ID}, true
			}
		}
	}
	// Leaf level: the G-BS may be a local group exposed by this controller
	// itself.
	if ref, ok := c.ue.radio.attachOf(gbs); ok {
		return ref, true
	}
	return dataplane.PortRef{}, false
}
