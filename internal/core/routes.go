package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/routing"
)

// RouteOption is one way out of this controller's region toward a prefix:
// a local egress port plus the externally measured path quality (§4.2).
type RouteOption struct {
	Egress   string
	Ref      dataplane.PortRef // egress port in this controller's topology
	External interdomain.Metrics
}

// AddInterdomainRoutes stores selected interdomain routes for the egress
// port at ref (an RCP-style selection result, §4.2). Leaf controllers call
// this directly; ancestors receive translated routes via
// PropagateInterdomain.
func (c *Controller) AddInterdomainRoutes(routes []interdomain.Route, ref dataplane.PortRef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range routes {
		c.routes[r.Prefix] = append(c.routes[r.Prefix], RouteOption{
			Egress: r.Egress, Ref: ref, External: r.Metrics,
		})
	}
}

// ClearInterdomainRoutes drops all stored routes (used when replaying a new
// snapshot).
func (c *Controller) ClearInterdomainRoutes() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routes = make(map[interdomain.PrefixID][]RouteOption)
}

// RouteOptions returns the stored options for a prefix.
func (c *Controller) RouteOptions(prefix interdomain.PrefixID) []RouteOption {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RouteOption(nil), c.routes[prefix]...)
}

// PropagateInterdomain forwards this controller's interdomain routes to its
// parent, translating egress refs to the exposed G-switch ports (§4.2:
// "Recursively, the RecA agent reads the interdomain routes from NIB and
// sends it to the parent (with translation to the G-switch)").
func (c *Controller) PropagateInterdomain() {
	_ = c.propagateInterdomain() //softmow:allow errdiscard in-process push cannot fail; remote children call PropagateInterdomainErr to surface wire errors
}

// PropagateInterdomainErr is PropagateInterdomain with the northbound
// push error surfaced — a remote child's serve loop uses it to
// acknowledge the propagation honestly.
func (c *Controller) PropagateInterdomainErr() error {
	return c.propagateInterdomain()
}

func (c *Controller) propagateInterdomain() error {
	pl := c.ParentLinkRef()
	if pl == nil {
		return nil
	}
	c.mu.Lock()
	// Snapshot in sorted prefix order: the append order below decides how
	// the parent's Route() breaks ties between equal-cost options, so map
	// iteration order must not leak into route selection.
	prefixes := make([]interdomain.PrefixID, 0, len(c.routes))
	for p := range c.routes {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
	all := make([][]RouteOption, len(prefixes))
	for i, p := range prefixes {
		all[i] = append([]RouteOption(nil), c.routes[p]...)
	}
	c.mu.Unlock()
	gsw := c.GSwitchID()
	var out []TranslatedRoute
	for i, prefix := range prefixes {
		for _, opt := range all[i] {
			gport, ok := c.exposedPortFor(opt.Ref)
			if !ok {
				continue
			}
			out = append(out, TranslatedRoute{Prefix: prefix, Option: RouteOption{
				Egress:   opt.Egress,
				Ref:      dataplane.PortRef{Dev: gsw, Port: gport},
				External: opt.External,
			}})
		}
	}
	return pl.PushInterdomain(out)
}

// RouteRequest asks for an end-to-end path from a source port in the
// controller's topology to an Internet prefix.
type RouteRequest struct {
	From        dataplane.PortRef
	Prefix      interdomain.PrefixID
	Objective   routing.Objective
	Constraints routing.Constraints
	// MaxTotalHops bounds internal + external hops (0 = unbounded), the
	// §4.2 example's "maximum end-to-end hop count of 14".
	MaxTotalHops int
	// MaxTotalRTT bounds the end-to-end round-trip latency.
	MaxTotalRTT time.Duration
}

// RouteResult is a computed end-to-end route.
type RouteResult struct {
	// Path is the internal path in the resolving controller's topology.
	Path *routing.Path
	// Option is the chosen egress and its external metrics.
	Option RouteOption
	// TotalHops is internal + external hops.
	TotalHops int
	// TotalRTT is the end-to-end round-trip estimate (2× internal one-way
	// latency + external RTT).
	TotalRTT time.Duration
	// ResolvedBy is the controller that satisfied the request.
	ResolvedBy *Controller
}

// ErrNoRoute is returned when no controller up to the root can satisfy a
// request.
var ErrNoRoute = errors.New("core: no admissible route")

// Route computes the best end-to-end route in this controller's own region
// (locally optimal, §4.2). It does not delegate; use RouteRecursive for
// the full leaf-to-root procedure.
func (c *Controller) Route(req RouteRequest) (*RouteResult, error) {
	opts := c.RouteOptions(req.Prefix)
	if len(opts) == 0 {
		return nil, ErrNoRoute
	}
	g := c.Graph()
	var best *RouteResult
	for _, opt := range opts {
		p, err := g.ShortestPath(req.From, opt.Ref, req.Objective, req.Constraints)
		if err != nil {
			continue
		}
		r := &RouteResult{
			Path:       p,
			Option:     opt,
			TotalHops:  p.Cost.Hops + opt.External.Hops,
			TotalRTT:   2*p.Cost.Latency + opt.External.RTT,
			ResolvedBy: c,
		}
		if best == nil || betterTotal(r, best, req.Objective) {
			best = r
		}
	}
	if best == nil {
		return nil, ErrNoRoute
	}
	if req.MaxTotalHops > 0 && best.TotalHops > req.MaxTotalHops {
		return nil, ErrNoRoute
	}
	if req.MaxTotalRTT > 0 && best.TotalRTT > req.MaxTotalRTT {
		return nil, ErrNoRoute
	}
	return best, nil
}

func betterTotal(a, b *RouteResult, obj routing.Objective) bool {
	if obj == routing.MinLatency {
		if a.TotalRTT != b.TotalRTT {
			return a.TotalRTT < b.TotalRTT
		}
		return a.TotalHops < b.TotalHops
	}
	if a.TotalHops != b.TotalHops {
		return a.TotalHops < b.TotalHops
	}
	return a.TotalRTT < b.TotalRTT
}

// RouteRecursive implements the §4.2 delegation procedure: try locally; on
// failure translate the source to the exposed G-switch port and delegate to
// the parent, up to the root.
func (c *Controller) RouteRecursive(req RouteRequest) (*RouteResult, error) {
	if res, err := c.Route(req); err == nil {
		return res, nil
	}
	parent := c.Parent()
	if parent == nil {
		return nil, ErrNoRoute
	}
	gport, ok := c.sourceGPort(req.From)
	if !ok {
		return nil, fmt.Errorf("%w: source %v not exposed to parent", ErrNoRoute, req.From)
	}
	c.mu.Lock()
	c.stats.DelegatedRequests++
	c.mu.Unlock()
	up := req
	up.From = dataplane.PortRef{Dev: c.GSwitchID(), Port: gport}
	return parent.RouteRecursive(up)
}
