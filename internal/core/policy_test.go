package core

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/pathimpl"
	"repro/internal/reca"
	"repro/internal/routing"
)

// policyFixture: S1(gA radio) — S2(firewall, DPI) — S3(egress E1), one leaf.
type policyFixture struct {
	net   *dataplane.Network
	leaf  *Controller
	radio dataplane.PortRef
	fw    *dataplane.Middlebox
	dpi   *dataplane.Middlebox
}

func buildPolicyFixture(t *testing.T) *policyFixture {
	t.Helper()
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3"} {
		net.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"S1", "S2"}, {"S2", "S3"}} {
		if _, err := net.Connect(pair[0], pair[1], 5*time.Millisecond, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rp, err := net.AddRadioPort("S1", "gA")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.AddEgress("E1", "S3", "isp")
	if err != nil {
		t.Fatal(err)
	}
	fw := &dataplane.Middlebox{ID: "FW1", Type: dataplane.MBFirewall,
		Attach: dataplane.PortRef{Dev: "S2"}, Capacity: 100, Load: 10}
	if err := net.AttachMiddlebox(fw); err != nil {
		t.Fatal(err)
	}
	dpi := &dataplane.Middlebox{ID: "DPI1", Type: dataplane.MBDPI,
		Attach: dataplane.PortRef{Dev: "S2"}, Capacity: 100, Load: 5}
	if err := net.AttachMiddlebox(dpi); err != nil {
		t.Fatal(err)
	}

	radio := dataplane.PortRef{Dev: "S1", Port: rp.ID}
	h, err := NewTwoLevel(net, "root", []LeafSpec{{
		ID:       "L1",
		Switches: []dataplane.DeviceID{"S1", "S2", "S3"},
		Radios: []reca.RadioAttachment{{
			ID: "gA", Attach: radio, Border: true, Constituents: []dataplane.DeviceID{"gA"},
		}},
		Middleboxes: []reca.MiddleboxAttachment{
			{ID: "FW1", Type: dataplane.MBFirewall, Attach: fw.Attach, Capacity: 100, Load: 10},
			{ID: "DPI1", Type: dataplane.MBDPI, Attach: dpi.Attach, Capacity: 100, Load: 5},
		},
		BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	leaf := h.Leaves[0]
	leaf.Mode = pathimpl.ModeSwap
	leaf.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfx", Egress: "E1", EgressSwitch: "S3",
		Metrics: interdomain.Metrics{Hops: 5, RTT: 10 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S3", Port: ep.Port})
	return &policyFixture{net: net, leaf: leaf, radio: radio, fw: fw, dpi: dpi}
}

func TestRouteWithPolicySingleMiddlebox(t *testing.T) {
	f := buildPolicyFixture(t)
	policy := dataplane.ServicePolicy{Name: "fw-only", Chain: []dataplane.MiddleboxType{dataplane.MBFirewall}}
	pr, err := f.leaf.RouteWithPolicy(RouteRequest{From: f.radio, Prefix: "pfx"}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Legs) != 2 {
		t.Fatalf("legs = %d", len(pr.Legs))
	}
	if len(pr.Waypoints) != 1 || pr.Waypoints[0] != f.fw.Attach {
		t.Fatalf("waypoints = %v", pr.Waypoints)
	}

	id, err := f.leaf.SetupPolicyPath(dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}, pr)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &dataplane.Packet{UE: "u1", DstPrefix: "pfx"}
	res, err := f.net.Inject("S1", f.radio.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("disposition = %v (%v)", res.Disposition, pkt)
	}
	if !policy.Satisfied(pkt.MiddleboxesVisited) {
		t.Fatalf("policy not satisfied: visited %v", pkt.MiddleboxesVisited)
	}
	if res.MaxLabelDepth > 1 {
		t.Fatalf("label invariant violated through middlebox: %d", res.MaxLabelDepth)
	}

	// teardown removes the steering
	if err := f.leaf.TeardownPath(id); err != nil {
		t.Fatal(err)
	}
	res2, _ := f.net.Inject("S1", f.radio.Port, &dataplane.Packet{UE: "u1", DstPrefix: "pfx"})
	if res2.Disposition != dataplane.DispPunted {
		t.Fatalf("after teardown: %v", res2.Disposition)
	}
}

func TestRouteWithPolicyChainOrder(t *testing.T) {
	f := buildPolicyFixture(t)
	policy := dataplane.ServicePolicy{Name: "fw-then-dpi",
		Chain: []dataplane.MiddleboxType{dataplane.MBFirewall, dataplane.MBDPI}}
	pr, err := f.leaf.RouteWithPolicy(RouteRequest{From: f.radio, Prefix: "pfx"}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Legs) != 3 {
		t.Fatalf("legs = %d", len(pr.Legs))
	}
	if _, err := f.leaf.SetupPolicyPath(dataplane.Match{InPort: dataplane.PortAny, UE: "u2", QoS: -1}, pr); err != nil {
		t.Fatal(err)
	}
	pkt := &dataplane.Packet{UE: "u2", DstPrefix: "pfx"}
	res, err := f.net.Inject("S1", f.radio.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("disposition = %v (%v)", res.Disposition, pkt)
	}
	if len(pkt.MiddleboxesVisited) != 2 ||
		pkt.MiddleboxesVisited[0] != dataplane.MBFirewall ||
		pkt.MiddleboxesVisited[1] != dataplane.MBDPI {
		t.Fatalf("visit order = %v", pkt.MiddleboxesVisited)
	}
	if !policy.Satisfied(pkt.MiddleboxesVisited) {
		t.Fatal("poset compliance")
	}
}

func TestRouteWithPolicyMissingType(t *testing.T) {
	f := buildPolicyFixture(t)
	policy := dataplane.ServicePolicy{Chain: []dataplane.MiddleboxType{dataplane.MBTranscoder}}
	if _, err := f.leaf.RouteWithPolicy(RouteRequest{From: f.radio, Prefix: "pfx"}, policy); err == nil {
		t.Fatal("missing middlebox type must fail locally (then delegate)")
	}
}

func TestRouteWithPolicyEmptyChain(t *testing.T) {
	f := buildPolicyFixture(t)
	pr, err := f.leaf.RouteWithPolicy(RouteRequest{From: f.radio, Prefix: "pfx"}, dataplane.ServicePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Legs) != 1 {
		t.Fatalf("empty chain should have one leg, got %d", len(pr.Legs))
	}
}

func TestMiddleboxPortsPrefersLeastUtilized(t *testing.T) {
	f := buildPolicyFixture(t)
	// add a second, busier firewall on S1
	fw2 := &dataplane.Middlebox{ID: "FW2", Type: dataplane.MBFirewall,
		Attach: dataplane.PortRef{Dev: "S1"}, Capacity: 100, Load: 90}
	if err := f.net.AttachMiddlebox(fw2); err != nil {
		t.Fatal(err)
	}
	cfg := f.leaf.Config()
	cfg.Middleboxes = append(cfg.Middleboxes, reca.MiddleboxAttachment{
		ID: "FW2", Type: dataplane.MBFirewall, Attach: fw2.Attach, Capacity: 100, Load: 90,
	})
	f.leaf.SetConfig(cfg)
	ports := f.leaf.middleboxPorts(dataplane.MBFirewall)
	if len(ports) != 2 {
		t.Fatalf("ports = %v", ports)
	}
	if ports[0] != f.fw.Attach {
		t.Fatalf("least-utilized instance should come first: %v", ports)
	}
}

func TestPolicyRouteObjectiveLatency(t *testing.T) {
	f := buildPolicyFixture(t)
	pr, err := f.leaf.RouteWithPolicy(RouteRequest{
		From: f.radio, Prefix: "pfx", Objective: routing.MinLatency,
	}, dataplane.ServicePolicy{Chain: []dataplane.MiddleboxType{dataplane.MBFirewall}})
	if err != nil {
		t.Fatal(err)
	}
	if pr.TotalCost.Latency <= 0 {
		t.Fatal("cost accounting")
	}
}
