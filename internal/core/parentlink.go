package core

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/interdomain"
)

// PathOwner is the handle a UE table row keeps on the controller that
// computed and owns its bearer path (§5.1 "whether the UE request has been
// handled locally or by the parent"). In one process the owner is a
// *Controller; in a distributed tree a child holds a northbound proxy that
// forwards teardown requests over the wire.
type PathOwner interface {
	// OwnerID is the owning controller's ID.
	OwnerID() string
	// TeardownPath releases the owned path.
	TeardownPath(id PathID) error
	// Path returns the owner's path record, when reachable. Remote proxies
	// report not-found: path-table introspection (chaos invariants) runs
	// in-process only.
	Path(id PathID) (PathRecord, bool)
}

// OwnerID implements PathOwner.
func (c *Controller) OwnerID() string { return c.ID }

// TranslatedRoute is one interdomain route option already translated into
// the parent's coordinates (egress ref on the child's exposed G-switch).
type TranslatedRoute struct {
	Prefix interdomain.PrefixID
	Option RouteOption
}

// ParentLink is the northbound a child controller speaks to its parent:
// delegation (§4.2), inter-region handover (§5.2), discovery-stack ascent
// (§4.1.2), interdomain propagation (§4.2), and abstraction refresh
// (§3.2, §5.3.2). AttachChild installs the in-process implementation;
// distributed deployments install a wire-backed one, so every upward code
// path in core is transport-agnostic.
type ParentLink interface {
	// ControllerID names the parent controller.
	ControllerID() string
	// DelegateBearer asks the parent to resolve and implement a bearer
	// path for a request already translated into parent coordinates.
	DelegateBearer(req RouteRequest, match dataplane.Match, demand float64) (PathID, PathOwner, error)
	// InterRegionHandover ascends a §5.2 handover to the lowest ancestor
	// seeing both G-BSes.
	InterRegionHandover(req HandoverRequest) (PathID, PathOwner, error)
	// TeardownOwned releases a path owned by the named ancestor.
	TeardownOwned(owner string, id PathID) error
	// PushInterdomain delivers translated interdomain route options; the
	// parent appends them and continues propagation upward.
	PushInterdomain(routes []TranslatedRoute) error
	// DiscoveryArrival reports a discovery frame that crossed this child's
	// border, already translated to the child's exposed G-switch port.
	// Fire-and-forget: discovery is periodic and self-healing.
	DiscoveryArrival(gport dataplane.PortID, f *discovery.Frame)
	// ChildRefreshed tells the parent this child's abstraction changed: it
	// re-reads features, re-runs discovery, and re-abstracts upward.
	ChildRefreshed() error
	// FabricUpdated pushes a bandwidth-threshold fabric update (§3.2) for
	// this child's G-switch.
	FabricUpdated(fab *dataplane.VFabric) error
}

// SetParentLink installs the child's northbound. AttachChild does this
// automatically for in-process children; remote attachments install a
// wire-backed link instead.
func (c *Controller) SetParentLink(pl ParentLink) {
	c.mu.Lock()
	c.parentLink = pl
	c.mu.Unlock()
}

// ParentLinkRef returns the installed northbound link, or nil at the root.
func (c *Controller) ParentLinkRef() ParentLink {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parentLink
}

// localParent is the in-process ParentLink: direct method calls on the
// parent controller, preserving the exact semantics the tree had before
// the northbound went onto the wire.
type localParent struct {
	parent *Controller
	child  *Controller
}

// ControllerID implements ParentLink.
func (lp localParent) ControllerID() string { return lp.parent.ID }

// DelegateBearer implements ParentLink.
func (lp localParent) DelegateBearer(req RouteRequest, match dataplane.Match, demand float64) (PathID, PathOwner, error) {
	return lp.parent.DelegateBearerSetup(req, match, demand)
}

// InterRegionHandover implements ParentLink.
func (lp localParent) InterRegionHandover(req HandoverRequest) (PathID, PathOwner, error) {
	return lp.parent.HandleInterRegionHandoverRequest(req)
}

// TeardownOwned implements ParentLink.
func (lp localParent) TeardownOwned(owner string, id PathID) error {
	return lp.parent.TeardownOwnedPath(owner, id)
}

// PushInterdomain implements ParentLink.
func (lp localParent) PushInterdomain(routes []TranslatedRoute) error {
	return lp.parent.AcceptTranslatedRoutes(routes)
}

// DiscoveryArrival implements ParentLink.
func (lp localParent) DiscoveryArrival(gport dataplane.PortID, f *discovery.Frame) {
	lp.parent.HandleDiscoveryArrival(lp.child.GSwitchID(), gport, f)
}

// ChildRefreshed implements ParentLink.
func (lp localParent) ChildRefreshed() error {
	lp.parent.RefreshChildAndReabstract(lp.child.GSwitchID())
	return nil
}

// FabricUpdated implements ParentLink.
func (lp localParent) FabricUpdated(fab *dataplane.VFabric) error {
	lp.parent.UpdateChildFabric(lp.child.GSwitchID(), fab)
	return nil
}

// DelegateBearerSetup resolves a bearer route delegated by a child — req
// is already in this controller's coordinates — and implements the path
// here, or keeps ascending when this region cannot satisfy the QoS
// either (§4.2 delegation procedure).
func (c *Controller) DelegateBearerSetup(req RouteRequest, match dataplane.Match, demand float64) (PathID, PathOwner, error) {
	if res, err := c.Route(req); err == nil {
		id, err := c.SetupPathWithDemand(match, res.Path, demand)
		if err != nil {
			return 0, nil, err
		}
		return id, c, nil
	}
	pl := c.ParentLinkRef()
	if pl == nil {
		return 0, nil, ErrNoRoute
	}
	gport, ok := c.sourceGPort(req.From)
	if !ok {
		return 0, nil, fmt.Errorf("%w: source %v not exposed to parent", ErrNoRoute, req.From)
	}
	c.mu.Lock()
	c.stats.DelegatedRequests++
	c.mu.Unlock()
	up := req
	up.From = dataplane.PortRef{Dev: c.GSwitchID(), Port: gport}
	return pl.DelegateBearer(up, match, demand)
}

// HandleInterRegionHandoverRequest runs the §5.2 ancestor procedure for a
// handover ascending from a child: implement the new path when both
// G-BSes are visible here, else keep delegating upward.
func (c *Controller) HandleInterRegionHandoverRequest(req HandoverRequest) (PathID, PathOwner, error) {
	return c.handleInterRegionHandover(req)
}

// TeardownOwnedPath releases a path on behalf of a descendant: locally
// when this controller owns it, otherwise forwarded up the tree toward
// the named owner.
func (c *Controller) TeardownOwnedPath(owner string, id PathID) error {
	if owner == c.ID {
		return c.TeardownPath(id)
	}
	pl := c.ParentLinkRef()
	if pl == nil {
		return fmt.Errorf("core: %s: no route to path owner %s", c.ID, owner)
	}
	return pl.TeardownOwned(owner, id)
}

// AcceptTranslatedRoutes appends interdomain route options pushed up by a
// child (already in this controller's coordinates) and continues the §4.2
// propagation toward the root.
func (c *Controller) AcceptTranslatedRoutes(routes []TranslatedRoute) error {
	c.mu.Lock()
	for _, tr := range routes {
		c.routes[tr.Prefix] = append(c.routes[tr.Prefix], tr.Option)
	}
	c.mu.Unlock()
	return c.propagateInterdomain()
}

// RefreshChildAndReabstract re-reads a refreshed child G-switch's
// features, rediscovers inter-G-switch links, and re-abstracts upward
// (§5.3.2 bottom-to-top update).
func (c *Controller) RefreshChildAndReabstract(gswitch dataplane.DeviceID) {
	if d := c.Device(gswitch); d != nil {
		c.refreshDevice(d)
	}
	c.RunDiscovery()
	c.Reabstract()
}

// UpdateChildFabric installs a child's updated virtual fabric on its
// G-switch record in place — ports are unchanged, so links survive and no
// rediscovery is needed (§3.2). Unknown G-switches are ignored, matching
// the pre-wire in-place update.
func (c *Controller) UpdateChildFabric(gswitch dataplane.DeviceID, fab *dataplane.VFabric) {
	if d, ok := c.NIB.Device(gswitch); ok {
		d.Fabric = fab
		c.NIB.PutDevice(d)
	}
}

// AdoptUERecords inserts UE table rows wholesale — the receiving side of
// a northbound UE-state transfer (§5.3.2). Rows already present for the
// same UEs are overwritten.
func (c *Controller) AdoptUERecords(rows []UERecord) {
	for i := range rows {
		r := rows[i]
		c.ue.put(&r)
	}
}
