package core

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/pathimpl"
	"repro/internal/reca"
)

// fig5 builds the Fig. 5 scenario: two leaf regions under a root.
//
//	Region L1: S1 (group gA on a radio port) — S2 (egress E-near)
//	Region L2: S3 (group gB on a radio port) — S4 (egress E-far)
//	Cross-region link: S2 — S3.
type fig5 struct {
	net        *dataplane.Network
	h          *Hierarchy
	l1, l2     *Controller
	root       *Controller
	radioA     dataplane.PortRef
	radioB     dataplane.PortRef
	nearEgress *dataplane.EgressPoint
	farEgress  *dataplane.EgressPoint
}

func buildFig5(t *testing.T, mode pathimpl.Mode) *fig5 {
	t.Helper()
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		net.AddSwitch(id)
	}
	mustLink := func(a, b dataplane.DeviceID) {
		if _, err := net.Connect(a, b, 5*time.Millisecond, 1000); err != nil {
			t.Fatal(err)
		}
	}
	mustLink("S1", "S2")
	mustLink("S2", "S3") // cross-region
	mustLink("S3", "S4")

	rpA, err := net.AddRadioPort("S1", "gA")
	if err != nil {
		t.Fatal(err)
	}
	rpB, err := net.AddRadioPort("S3", "gB")
	if err != nil {
		t.Fatal(err)
	}
	near, err := net.AddEgress("E-near", "S2", "isp-near")
	if err != nil {
		t.Fatal(err)
	}
	far, err := net.AddEgress("E-far", "S4", "isp-far")
	if err != nil {
		t.Fatal(err)
	}

	f := &fig5{
		net:        net,
		radioA:     dataplane.PortRef{Dev: "S1", Port: rpA.ID},
		radioB:     dataplane.PortRef{Dev: "S3", Port: rpB.ID},
		nearEgress: near,
		farEgress:  far,
	}
	h, err := NewTwoLevel(net, "root", []LeafSpec{
		{
			ID:       "L1",
			Switches: []dataplane.DeviceID{"S1", "S2"},
			Radios: []reca.RadioAttachment{
				{ID: "gA", Attach: f.radioA, Border: true, Constituents: []dataplane.DeviceID{"gA"}},
			},
			BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA", "b2": "gA"},
		},
		{
			ID:       "L2",
			Switches: []dataplane.DeviceID{"S3", "S4"},
			Radios: []reca.RadioAttachment{
				{ID: "gB", Attach: f.radioB, Border: true, Constituents: []dataplane.DeviceID{"gB"}},
			},
			BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b3": "gB"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.h = h
	f.l1, f.l2, f.root = h.Leaves[0], h.Leaves[1], h.Root
	f.l1.Mode = mode
	f.l2.Mode = mode
	f.root.Mode = mode

	// Interdomain: prefix pfxNear only via E-near (L1), pfxFar only via
	// E-far (L2).
	f.l1.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfxNear", Egress: "E-near", EgressSwitch: "S2",
			Metrics: interdomain.Metrics{Hops: 10, RTT: 20 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S2", Port: near.Port})
	f.l2.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfxFar", Egress: "E-far", EgressSwitch: "S4",
			Metrics: interdomain.Metrics{Hops: 8, RTT: 16 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S4", Port: far.Port})
	f.l1.PropagateInterdomain()
	f.l2.PropagateInterdomain()
	return f
}

func TestBootstrapLeafDiscovery(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	// L1 discovers exactly its intra-region link S1-S2.
	if got := f.l1.NIB.NumLinks(); got != 1 {
		t.Fatalf("L1 links = %d", got)
	}
	if got := f.l2.NIB.NumLinks(); got != 1 {
		t.Fatalf("L2 links = %d", got)
	}
	l := f.l1.NIB.Links()[0]
	if l.Latency != 5*time.Millisecond {
		t.Fatalf("discovered link latency = %v (meta not carried)", l.Latency)
	}
	if f.l1.StatsSnapshot().LinksDiscovered == 0 {
		t.Fatal("discovery counter")
	}
}

func TestBootstrapRootDiscoversCrossLink(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if got := f.root.NIB.NumLinks(); got != 1 {
		t.Fatalf("root links = %d, want exactly the cross-region link", got)
	}
	l := f.root.NIB.Links()[0]
	devs := map[dataplane.DeviceID]bool{l.A.Dev: true, l.B.Dev: true}
	if !devs["GS-L1"] || !devs["GS-L2"] {
		t.Fatalf("cross link endpoints = %v", l)
	}
}

func TestAbstractionExposure(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	ab := f.l1.Abstraction()
	// L1 exposes: dangling cross port (S2→S3), external port (E-near),
	// G-BS attach port for gA.
	var cross, ext, radio int
	for _, p := range ab.GSwitch.Ports {
		switch {
		case p.GBS != "":
			radio++
		case p.External:
			ext++
		default:
			cross++
		}
	}
	if cross != 1 || ext != 1 || radio != 1 {
		t.Fatalf("L1 exposure: cross=%d ext=%d radio=%d", cross, ext, radio)
	}
	// fabric covers all pairs
	if ab.GSwitch.Fabric.Len() != 3 {
		t.Fatalf("fabric pairs = %d", ab.GSwitch.Fabric.Len())
	}
	// root sees both G-switches with G-BSes
	gs := f.root.NIB.Devices(dataplane.KindGSwitch)
	if len(gs) != 2 {
		t.Fatalf("root devices = %d", len(gs))
	}
	for _, d := range gs {
		if len(d.GBSes) != 1 || !d.GBSes[0].Border {
			t.Fatalf("G-BS exposure: %+v", d.GBSes)
		}
	}
}

func TestLocalBearerPath(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	rec, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u1", BS: "b1", Prefix: "pfxNear", QoS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HandledBy != f.l1 {
		t.Fatalf("handled by %s, want L1", rec.HandledBy.OwnerID())
	}
	// Drive a packet from the UE through the radio port.
	pkt := &dataplane.Packet{UE: "u1", DstPrefix: "pfxNear", QoS: 1}
	res, err := f.net.Inject("S1", f.radioA.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("disposition = %v (%v)", res.Disposition, pkt)
	}
	if res.EgressPort.Dev != "S2" {
		t.Fatalf("egressed at %v, want S2 (E-near)", res.EgressPort)
	}
	if res.MaxLabelDepth > 1 {
		t.Fatalf("label depth %d violates the single-label invariant", res.MaxLabelDepth)
	}
	if pkt.LabelDepth() != 0 {
		t.Fatal("packet must leave the WAN unlabeled")
	}
}

func TestDelegatedBearerPathCrossesRegions(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	rec, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u2", BS: "b1", Prefix: "pfxFar", QoS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HandledBy != f.root {
		t.Fatalf("handled by %s, want root (delegation)", rec.HandledBy.OwnerID())
	}
	if f.l1.StatsSnapshot().DelegatedRequests == 0 {
		t.Fatal("delegation counter")
	}
	if f.l1.StatsSnapshot().RulesTranslated == 0 || f.l2.StatsSnapshot().RulesTranslated == 0 {
		t.Fatal("both leaves should have translated root rules")
	}

	pkt := &dataplane.Packet{UE: "u2", DstPrefix: "pfxFar", QoS: 2}
	res, err := f.net.Inject("S1", f.radioA.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("disposition = %v (%v)", res.Disposition, pkt)
	}
	if res.EgressPort.Dev != "S4" {
		t.Fatalf("egressed at %v, want S4 (E-far)", res.EgressPort)
	}
	// The §4.3 invariant: recursive label swapping keeps depth ≤ 1 on
	// every physical link even for a root-implemented path.
	if res.MaxLabelDepth != 1 {
		t.Fatalf("label depth = %d, want 1", res.MaxLabelDepth)
	}
	if pkt.LabelDepth() != 0 {
		t.Fatal("packet must leave unlabeled")
	}
	// Path: S1 → S2 → S3 → S4.
	devs := pkt.Path()
	want := []dataplane.DeviceID{"S1", "S2", "S3", "S4"}
	if len(devs) != len(want) {
		t.Fatalf("path = %v", devs)
	}
	for i := range want {
		if devs[i] != want[i] {
			t.Fatalf("path = %v, want %v", devs, want)
		}
	}
}

func TestStackModeDepthGrows(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeStack)
	_, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u3", BS: "b1", Prefix: "pfxFar", QoS: 1})
	if err != nil {
		t.Fatal(err)
	}
	pkt := &dataplane.Packet{UE: "u3", DstPrefix: "pfxFar", QoS: 1}
	res, err := f.net.Inject("S1", f.radioA.Port, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("stack-mode delivery broken: %v at %v (%v)", res.Disposition, res.EgressPort, pkt)
	}
	// Label stacking baseline: a 2-level path stacks 2 labels (§4.3).
	if res.MaxLabelDepth != 2 {
		t.Fatalf("stack-mode max depth = %d, want 2", res.MaxLabelDepth)
	}
	if pkt.LabelDepth() != 0 {
		t.Fatal("packet must still leave unlabeled")
	}
}

func TestBearerDeactivation(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	_, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u4", BS: "b1", Prefix: "pfxFar"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.l1.DeactivateBearer("u4"); err != nil {
		t.Fatal(err)
	}
	pkt := &dataplane.Packet{UE: "u4", DstPrefix: "pfxFar"}
	res, _ := f.net.Inject("S1", f.radioA.Port, pkt)
	if res.Disposition != dataplane.DispPunted {
		t.Fatalf("after teardown the packet should punt, got %v", res.Disposition)
	}
	if f.root.NumPaths() != 0 {
		t.Fatalf("root active paths = %d", f.root.NumPaths())
	}
}

func TestLocalVsGlobalOptimality(t *testing.T) {
	// §4.2: the root's path can beat the leaf's when the leaf's local
	// egress has worse external metrics. pfxBoth: terrible via E-near (20
	// ext hops), great via E-far (2 ext hops).
	f := buildFig5(t, pathimpl.ModeSwap)
	f.l1.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfxBoth", Egress: "E-near", EgressSwitch: "S2",
			Metrics: interdomain.Metrics{Hops: 20, RTT: 40 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S2", Port: f.nearEgress.Port})
	f.l2.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfxBoth", Egress: "E-far", EgressSwitch: "S4",
			Metrics: interdomain.Metrics{Hops: 2, RTT: 4 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S4", Port: f.farEgress.Port})
	f.l1.PropagateInterdomain()
	f.l2.PropagateInterdomain()

	// Leaf-local route: internal 1 hop + external 20 = 21 total.
	local, err := f.l1.Route(RouteRequest{From: f.radioA, Prefix: "pfxBoth"})
	if err != nil {
		t.Fatal(err)
	}
	if local.TotalHops != 21 {
		t.Fatalf("local total hops = %d", local.TotalHops)
	}
	// Root: internal 3 hops + external 2 = 5 total.
	gbsPort, ok := f.root.AttachOfGroup("gA")
	if !ok {
		t.Fatal("root has no gA attachment")
	}
	global, err := f.root.Route(RouteRequest{From: gbsPort, Prefix: "pfxBoth"})
	if err != nil {
		t.Fatal(err)
	}
	if global.TotalHops >= local.TotalHops {
		t.Fatalf("global (%d) should beat local (%d)", global.TotalHops, local.TotalHops)
	}
	if global.TotalHops != 5 {
		t.Fatalf("global total hops = %d, want 5", global.TotalHops)
	}

	// With an end-to-end constraint only the root can meet, the leaf
	// delegates (§4.2's example).
	res, err := f.l1.RouteRecursive(RouteRequest{From: f.radioA, Prefix: "pfxBoth", MaxTotalHops: 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolvedBy != f.root {
		t.Fatalf("resolved by %s, want root", res.ResolvedBy.ID)
	}
}

func TestIntraRegionHandover(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u5", BS: "b1", Prefix: "pfxNear"}); err != nil {
		t.Fatal(err)
	}
	// b2 is also in gA (same region)
	if err := f.l1.Handover("u5", "gA", "b2"); err != nil {
		t.Fatal(err)
	}
	rec, ok := f.l1.UE("u5")
	if !ok || rec.BS != "b2" {
		t.Fatalf("UE record after handover: %+v", rec)
	}
	if f.l1.StatsSnapshot().HandoversHandled != 1 {
		t.Fatal("handover counter")
	}
	// path still works
	pkt := &dataplane.Packet{UE: "u5", DstPrefix: "pfxNear"}
	res, _ := f.net.Inject("S1", f.radioA.Port, pkt)
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("post-handover packet: %v", res.Disposition)
	}
}

func TestInterRegionHandover(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "u6", BS: "b1", Prefix: "pfxFar"}); err != nil {
		t.Fatal(err)
	}
	// target b3 lives in gB under L2: inter-region, mediated by the root
	if err := f.l1.Handover("u6", "gB", "b3"); err != nil {
		t.Fatal(err)
	}
	if f.root.StatsSnapshot().InterRegionHandovers != 1 {
		t.Fatal("root inter-region handover counter")
	}
	rec, _ := f.l1.UE("u6")
	if rec.BS != "b3" {
		t.Fatalf("UE BS after handover = %s", rec.BS)
	}
	// new downlink/uplink path starts at gB's radio port on S3
	pkt := &dataplane.Packet{UE: "u6", DstPrefix: "pfxFar"}
	res, _ := f.net.Inject("S3", f.radioB.Port, pkt)
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("post-handover path: %v at %v", res.Disposition, res.EgressPort)
	}
	if res.MaxLabelDepth > 1 {
		t.Fatalf("label invariant violated: %d", res.MaxLabelDepth)
	}
}

func TestHierarchyHelpers(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if f.h.Controller("L1") != f.l1 || f.h.Controller("nope") != nil {
		t.Fatal("Controller lookup")
	}
	if f.h.LeafOf("S3") != f.l2 || f.h.LeafOf("ghost") != nil {
		t.Fatal("LeafOf lookup")
	}
	if f.root.Child(f.l1.GSwitchID()) != f.l1 {
		t.Fatal("Child lookup")
	}
	if len(f.root.Children()) != 2 {
		t.Fatal("Children")
	}
}

func TestDistributeInterdomain(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	tbl := interdomain.Generate(interdomain.GenParams{
		Seed: 1, NumPrefixes: 50, Snapshots: 1,
		Egresses: []interdomain.EgressSite{
			{ID: "E-near", Loc: dataplane.GeoPoint{X: 0, Y: 0}},
			{ID: "E-far", Loc: dataplane.GeoPoint{X: 1000, Y: 1000}},
		},
	})
	f.h.DistributeInterdomain(tbl, 0)
	pfx := tbl.Prefixes()[0]
	if len(f.l1.RouteOptions(pfx)) != 1 {
		t.Fatalf("L1 options = %v", f.l1.RouteOptions(pfx))
	}
	// root aggregates both egresses
	if len(f.root.RouteOptions(pfx)) != 2 {
		t.Fatalf("root options = %v", f.root.RouteOptions(pfx))
	}
	// old manually added routes are cleared
	if len(f.l1.RouteOptions("pfxNear")) != 0 {
		t.Fatal("ClearInterdomainRoutes not applied")
	}
}

func TestRouteErrors(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	if _, err := f.l1.Route(RouteRequest{From: f.radioA, Prefix: "unknown"}); err == nil {
		t.Fatal("unknown prefix should fail")
	}
	if _, err := f.root.RouteRecursive(RouteRequest{From: dataplane.PortRef{Dev: "GS-L1", Port: 99}, Prefix: "pfxNear"}); err == nil {
		t.Fatal("bad source should fail at root")
	}
	if _, err := f.l1.HandleBearerRequest(BearerRequest{UE: "x", BS: "ghost", Prefix: "pfxNear"}); err == nil {
		t.Fatal("unknown BS should fail")
	}
}

func TestLinkFailureUpdatesNIB(t *testing.T) {
	f := buildFig5(t, pathimpl.ModeSwap)
	var intra *dataplane.Link
	for _, l := range f.net.Links() {
		if (l.A.Dev == "S1" && l.B.Dev == "S2") || (l.A.Dev == "S2" && l.B.Dev == "S1") {
			intra = l
		}
	}
	if intra == nil {
		t.Fatal("no S1-S2 link")
	}
	f.net.SetLinkState(intra, false)
	// The record is retained, marked down — a later port-up restores it
	// without re-discovery.
	if f.l1.NIB.NumLinks() != 1 {
		t.Fatalf("L1 should retain the failed link record, has %d", f.l1.NIB.NumLinks())
	}
	if f.l1.NIB.NumUpLinks() != 0 {
		t.Fatalf("failed link still marked up (%d up)", f.l1.NIB.NumUpLinks())
	}
	// routing now fails inside L1
	if _, err := f.l1.Route(RouteRequest{From: f.radioA, Prefix: "pfxNear"}); err == nil {
		t.Fatal("route over failed link should fail")
	}
	// …and comes back when the link does, with no discovery round.
	f.net.SetLinkState(intra, true)
	if f.l1.NIB.NumUpLinks() != 1 {
		t.Fatalf("restored link not marked up (%d up)", f.l1.NIB.NumUpLinks())
	}
	if _, err := f.l1.Route(RouteRequest{From: f.radioA, Prefix: "pfxNear"}); err != nil {
		t.Fatalf("route after restore: %v", err)
	}
}
