package core

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/routing"
)

// Service policies (§2.1) direct traffic through a partially ordered set
// of middlebox types before it leaves the WAN: "A service policy is then
// met by directing traffic through a partially ordered set (also known as
// poset) of middlebox types. Given the location and utilization of
// middlebox instances, the controller can implement a poset using various
// combinations of physical instances."
//
// The controller implements a chain by routing leg-by-leg through chosen
// instances: source → mb₁ → … → mbₙ → egress. Every leg carries the same
// path label; at each waypoint switch the label is preserved across the
// middlebox bounce, so the §4.3 single-label invariant still holds.

// PolicyRoute is a policy-compliant end-to-end route.
type PolicyRoute struct {
	// Legs are the consecutive path segments: source→mb₁, mb₁→mb₂, …,
	// mbₙ→egress.
	Legs []*routing.Path
	// Waypoints are the chosen middlebox attachment ports, one per chain
	// element.
	Waypoints []dataplane.PortRef
	// Option is the chosen egress.
	Option RouteOption
	// TotalCost accumulates all legs.
	TotalCost routing.Cost
}

// middleboxPorts returns candidate attachment ports for a middlebox type
// in this controller's topology: physical attachments at leaves, child
// G-middlebox ports above. Candidates are ordered by utilization so the
// least-loaded instance is preferred.
func (c *Controller) middleboxPorts(mt dataplane.MiddleboxType) []dataplane.PortRef {
	type cand struct {
		ref  dataplane.PortRef
		util float64
	}
	var cands []cand
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	for _, m := range cfg.Middleboxes {
		if m.Type != mt {
			continue
		}
		util := 0.0
		if m.Capacity > 0 {
			util = m.Load / m.Capacity
		}
		cands = append(cands, cand{ref: m.Attach, util: util})
	}
	// stable order: utilization, then ref
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j], cands[j-1]
			if a.util < b.util || (a.util == b.util && (a.ref.Dev < b.ref.Dev ||
				(a.ref.Dev == b.ref.Dev && a.ref.Port < b.ref.Port))) {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			} else {
				break
			}
		}
	}
	out := make([]dataplane.PortRef, len(cands))
	for i, cd := range cands {
		out[i] = cd.ref
	}
	return out
}

// RouteWithPolicy computes a route from src to an egress for the prefix
// that traverses the policy chain in order. It fails when any chain
// element has no instance in this controller's region (§4.2: "it checks
// whether the middlebox poset can be met in its logical region").
func (c *Controller) RouteWithPolicy(req RouteRequest, policy dataplane.ServicePolicy) (*PolicyRoute, error) {
	opts := c.RouteOptions(req.Prefix)
	if len(opts) == 0 {
		return nil, ErrNoRoute
	}
	g := c.Graph()

	// Choose one instance per chain element: greedily the least-utilized
	// reachable candidate from the current waypoint.
	var waypoints []dataplane.PortRef
	var legs []*routing.Path
	var total routing.Cost
	cur := req.From
	for _, mt := range policy.Chain {
		cands := c.middleboxPorts(mt)
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: no %s instance in region of %s", ErrNoRoute, mt, c.ID)
		}
		var leg *routing.Path
		var chosen dataplane.PortRef
		for _, cand := range cands {
			p, err := g.ShortestPath(cur, cand, req.Objective, req.Constraints)
			if err != nil {
				continue
			}
			leg = p
			chosen = cand
			break
		}
		if leg == nil {
			return nil, fmt.Errorf("%w: no path to a %s instance", ErrNoRoute, mt)
		}
		legs = append(legs, leg)
		waypoints = append(waypoints, chosen)
		total = addCost(total, leg.Cost)
		cur = chosen
	}

	// Final leg to the best egress.
	var best *PolicyRoute
	for _, opt := range opts {
		p, err := g.ShortestPath(cur, opt.Ref, req.Objective, req.Constraints)
		if err != nil {
			continue
		}
		cand := &PolicyRoute{
			Legs:      append(append([]*routing.Path(nil), legs...), p),
			Waypoints: waypoints,
			Option:    opt,
			TotalCost: addCost(total, p.Cost),
		}
		if best == nil || cand.better(best, req.Objective) {
			best = cand
		}
	}
	if best == nil {
		return nil, ErrNoRoute
	}
	return best, nil
}

func (pr *PolicyRoute) better(o *PolicyRoute, obj routing.Objective) bool {
	if obj == routing.MinLatency {
		if pr.TotalCost.Latency != o.TotalCost.Latency {
			return pr.TotalCost.Latency < o.TotalCost.Latency
		}
		return pr.TotalCost.Hops < o.TotalCost.Hops
	}
	if pr.TotalCost.Hops != o.TotalCost.Hops {
		return pr.TotalCost.Hops < o.TotalCost.Hops
	}
	return pr.TotalCost.Latency < o.TotalCost.Latency
}

func addCost(a, b routing.Cost) routing.Cost {
	out := routing.Cost{
		Hops:       a.Hops + b.Hops,
		Latency:    a.Latency + b.Latency,
		Bottleneck: a.Bottleneck,
	}
	if a.Bottleneck == 0 || (b.Bottleneck > 0 && b.Bottleneck < a.Bottleneck) {
		out.Bottleneck = b.Bottleneck
	}
	return out
}

// SetupPolicyPath installs a policy-compliant path: every leg shares one
// path label; at each waypoint the traffic exits to the middlebox port and
// the return traffic (same port, same label) continues on the next leg.
func (c *Controller) SetupPolicyPath(match dataplane.Match, pr *PolicyRoute) (PathID, error) {
	if len(pr.Legs) == 0 {
		return 0, ErrEmptyPath
	}
	start := time.Now() //softmow:allow determinism wall clock feeds the setup-latency histogram only, never control decisions
	c.mu.Lock()
	c.nextPath++
	id := c.nextPath
	version := c.versions.Next()
	owner := fmt.Sprintf("%s/p%d", c.ID, id)
	c.mu.Unlock()

	// All legs accumulate into one batch: a waypoint switch shared by two
	// consecutive legs collects both rules behind a single barrier, and a
	// flush failure rolls the whole chain back before the record exists.
	label := c.alloc.Next()
	b := newRuleBatch()
	var devices []dataplane.DeviceID
	var total routing.Cost
	for i, leg := range pr.Legs {
		segs := leg.Segments()
		if len(segs) == 0 {
			return 0, ErrEmptyPath
		}
		total = addCost(total, leg.Cost)
		for _, seg := range segs {
			devices = append(devices, seg.Dev)
		}
		first := i == 0
		last := i == len(pr.Legs)-1
		c.appendPolicyLeg(b, match, label, leg, first, last, version)
	}
	if err := c.flushBatch(b, owner, version); err != nil {
		return 0, err
	}
	rec := &PathRecord{
		ID: id, Owner: owner, Match: match, Cost: total,
		Devices: dedupeDevices(devices), Active: true, Version: version,
	}
	c.mu.Lock()
	c.paths[id] = rec
	c.mu.Unlock()
	setupLatency.Observe(time.Since(start))
	return id, nil
}

func dedupeDevices(in []dataplane.DeviceID) []dataplane.DeviceID {
	seen := make(map[dataplane.DeviceID]bool, len(in))
	var out []dataplane.DeviceID
	for _, d := range in {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// appendPolicyLeg accumulates one leg's rules into b. The first leg
// classifies the flow and pushes the label; middle legs begin at a
// middlebox return port; the final leg ends with pop + egress.
func (c *Controller) appendPolicyLeg(b *ruleBatch, match dataplane.Match, label dataplane.Label, leg *routing.Path, first, last bool, version int) {
	segs := leg.Segments()
	for i, seg := range segs {
		var rule dataplane.Rule
		switch {
		case first && i == 0:
			m := match
			m.MatchNoLabel = true
			m.HasLabel = false
			m.InPort = seg.InPort
			rule = dataplane.Rule{Priority: 100 + version, Match: m,
				Actions: []dataplane.Action{dataplane.Push(label), dataplane.Output(seg.OutPort)}}
		case last && i == len(segs)-1:
			rule = dataplane.Rule{Priority: 60,
				Match:   dataplane.Match{InPort: seg.InPort, HasLabel: true, Label: label, QoS: -1},
				Actions: []dataplane.Action{dataplane.Pop(), dataplane.Output(seg.OutPort)}}
		default:
			// Transit — including the hand-off into a middlebox port at a
			// leg boundary and the continuation from it: the label rides
			// across the bounce untouched.
			rule = dataplane.Rule{Priority: 60,
				Match:   dataplane.Match{InPort: seg.InPort, HasLabel: true, Label: label, QoS: -1},
				Actions: []dataplane.Action{dataplane.Output(seg.OutPort)}}
		}
		b.add(seg.Dev, rule)
	}
}
