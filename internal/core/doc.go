// Package core implements the SoftMoW controller (§3.3): a modular node
// combining the network operating system (NOS — NIB, topology discovery,
// routing, path implementation), the recursive abstraction application
// (RecA — G-switch/G-BS/G-middlebox exposure, parent agent, rule
// translation), and operator applications (UE bearer management, mobility,
// region optimization). Controllers compose into a tree managed by the
// management plane (Hierarchy).
//
// # Rule programming
//
// All multi-rule operations accumulate rules into a per-device batch
// (ruleBatch) and flush it through flushBatch: each device receives its
// rules pipelined behind at most one barrier round trip (BatchInstaller),
// devices are programmed concurrently when remote (runPerDevice), and a
// failure anywhere rolls every touched device back by the operation's
// exact owner/version before any path record becomes visible. DESIGN.md
// §"Southbound rule programming" describes the protocol and why it
// preserves the fault-injection invariants.
//
// # Package layout
//
//   - controller.go — Controller, NIB/graph cache, device registry, stats
//   - mgmt.go — Hierarchy, the management plane bootstrapping a tree
//   - device.go — Device interface, in-process SwitchDevice, and the
//     logicalDevice that translates parent rules into child paths
//   - conndevice.go — ConnDevice, the wire-backed device over southbound
//   - batch.go — ruleBatch, flushBatch, runPerDevice, BatchInstaller
//   - pathsetup.go — path install/teardown/reroute and rule translation
//   - policy.go — middlebox service-policy routing and installation
//   - mobility.go — bearer admission, §5.1 handovers, UE table
//   - repair.go — §6 link/switch failure repair
//   - reconfig.go — §5.3.2 border-group reconfiguration
//   - routes.go, routeopt.go — recursive route resolution and options
//   - reca.go — the child side of recursive abstraction
//   - discovery.go — intra- and cross-region link discovery
//   - invariants.go — runtime self-checks shared with the chaos harness
package core
