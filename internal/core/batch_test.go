package core

import (
	"fmt"
	stdnet "net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/interdomain"
	"repro/internal/reca"
	"repro/internal/routing"
	"repro/internal/southbound"
)

// countingConn wraps a Conn and counts controller→device messages by type,
// so tests can meter southbound round trips directly at the wire.
type countingConn struct {
	southbound.Conn
	mu   sync.Mutex
	sent map[southbound.MsgType]int
}

func newCountingConn(inner southbound.Conn) *countingConn {
	return &countingConn{Conn: inner, sent: make(map[southbound.MsgType]int)}
}

func (c *countingConn) Send(m southbound.Msg) error {
	c.mu.Lock()
	c.sent[m.Type]++
	c.mu.Unlock()
	return c.Conn.Send(m)
}

func (c *countingConn) count(t southbound.MsgType) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent[t]
}

// dialCounted wires a real agent for sw over an in-process pipe and dials
// it through a counting wrapper.
func dialCounted(t *testing.T, net *dataplane.Network, sw dataplane.DeviceID) (*ConnDevice, *countingConn) {
	t.Helper()
	agent := southbound.NewSwitchAgent(net, net.Switch(sw))
	a, b := southbound.Pipe(64)
	cc := newCountingConn(a)
	go agent.Serve(b)
	dev, err := DialDevice(cc, "L1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	return dev, cc
}

// TestBatchRoundTripReduction is the acceptance check for the batched
// southbound: installing N rules on one device must cost one barrier round
// trip instead of N (≥ 2× fewer synchronous round trips per operation).
func TestBatchRoundTripReduction(t *testing.T) {
	net := dataplane.NewNetwork()
	net.AddSwitch("S1")
	net.AddSwitch("S2")
	if _, err := net.Connect("S1", "S2", time.Millisecond, 1000); err != nil {
		t.Fatal(err)
	}

	mkRules := func(n int) []dataplane.Rule {
		rules := make([]dataplane.Rule, n)
		for i := range rules {
			rules[i] = dataplane.Rule{
				Priority: 10 + i,
				Match:    dataplane.Match{InPort: dataplane.PortAny, UE: fmt.Sprintf("u%d", i), QoS: -1},
				Actions:  []dataplane.Action{dataplane.Output(1)},
				Owner:    "t", Version: 1,
			}
		}
		return rules
	}

	batched, bcc := dialCounted(t, net, "S1")
	if err := batched.InstallRules(mkRules(4)); err != nil {
		t.Fatal(err)
	}
	if got := net.Switch("S1").Table.Len(); got != 4 {
		t.Fatalf("batched install left %d rules, want 4", got)
	}
	if n := bcc.count(southbound.TypeFlowModBatch); n != 1 {
		t.Fatalf("batched install sent %d batch messages, want 1", n)
	}
	batchedBarriers := bcc.count(southbound.TypeBarrierRequest)
	if batchedBarriers != 1 {
		t.Fatalf("batched install used %d barriers, want 1", batchedBarriers)
	}

	perRule, pcc := dialCounted(t, net, "S2")
	perRule.DisableBatch = true
	if err := perRule.InstallRules(mkRules(4)); err != nil {
		t.Fatal(err)
	}
	perRuleBarriers := pcc.count(southbound.TypeBarrierRequest)
	if perRuleBarriers != 4 {
		t.Fatalf("per-rule install used %d barriers, want 4", perRuleBarriers)
	}
	if perRuleBarriers < 2*batchedBarriers {
		t.Fatalf("round-trip reduction %d→%d is below 2×", perRuleBarriers, batchedBarriers)
	}
}

// msgRecorder collects the messages a scripted device side received.
type msgRecorder struct {
	mu   sync.Mutex
	msgs []southbound.Msg
}

func (r *msgRecorder) add(m southbound.Msg) {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
}

func (r *msgRecorder) snapshot() []southbound.Msg {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]southbound.Msg(nil), r.msgs...)
}

// TestBarrierTimeoutRetryRollbackOrdering pins the fence protocol: a device
// that stops answering barriers must see, in order, the pipelined batch,
// BarrierRetries+1 barrier attempts, and then the version-exact rollback
// delete (itself fenced with the same bounded retry) — and the flush must
// report the fence failure.
func TestBarrierTimeoutRetryRollbackOrdering(t *testing.T) {
	a, b := southbound.Pipe(64)
	rec := &msgRecorder{}
	go func() {
		if _, err := southbound.Accept(b, "SX"); err != nil {
			return
		}
		for {
			m, err := b.Recv()
			if err != nil {
				return
			}
			if m.Type == southbound.TypeFeatureRequest {
				_ = b.Send(southbound.Msg{Type: southbound.TypeFeatureReply, Xid: m.Xid, Datapath: "SX",
					Body: southbound.FeatureReply{Device: "SX", Kind: dataplane.KindSwitch}})
				continue
			}
			rec.add(m) // swallow: barriers are never answered
		}
	}()

	dev, err := DialDevice(a, "L1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	dev.RequestTimeout = 20 * time.Millisecond
	dev.BarrierRetries = 2

	ctrl := NewController("L1", 1, 0)
	ctrl.AttachDevice(dev)

	batch := newRuleBatch()
	for i := 0; i < 2; i++ {
		batch.add("SX", dataplane.Rule{
			Priority: 10 + i,
			Match:    dataplane.Match{InPort: dataplane.PortAny, UE: fmt.Sprintf("u%d", i), QoS: -1},
			Actions:  []dataplane.Action{dataplane.Output(1)},
		})
	}
	err = ctrl.flushBatch(batch, "own", 7)
	if err == nil {
		t.Fatal("flush against a dead fence must fail")
	}
	if !strings.Contains(err.Error(), "fence failed after 3 attempts") {
		t.Fatalf("error does not report the bounded retry: %v", err)
	}

	// batch, 3 barrier attempts, rollback delete, 3 more barrier attempts.
	var msgs []southbound.Msg
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if msgs = rec.snapshot(); len(msgs) >= 8 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := []southbound.MsgType{
		southbound.TypeFlowModBatch,
		southbound.TypeBarrierRequest, southbound.TypeBarrierRequest, southbound.TypeBarrierRequest,
		southbound.TypeFlowMod,
		southbound.TypeBarrierRequest, southbound.TypeBarrierRequest, southbound.TypeBarrierRequest,
	}
	if len(msgs) != len(want) {
		t.Fatalf("device saw %d messages, want %d: %v", len(msgs), len(want), msgs)
	}
	for i, m := range msgs {
		if m.Type != want[i] {
			t.Fatalf("message %d = %v, want %v (full: %v)", i, m.Type, want[i], msgs)
		}
	}
	fm, ok := msgs[4].Body.(southbound.FlowMod)
	if !ok || fm.Command != southbound.FlowDeleteOwnerVersion || fm.Owner != "own" || fm.Version != 7 {
		t.Fatalf("rollback mod = %+v, want version-exact delete of own/7", msgs[4].Body)
	}
}

// killerConn forwards traffic until armed, then kills the connection on the
// first flow-programming message — the batch never reaches the device, as
// when a TCP session dies with writes still in flight.
type killerConn struct {
	southbound.Conn
	armed  atomic.Bool
	killed atomic.Bool
}

func (k *killerConn) Send(m southbound.Msg) error {
	if k.killed.Load() {
		return southbound.ErrClosed
	}
	if k.armed.Load() && (m.Type == southbound.TypeFlowModBatch || m.Type == southbound.TypeFlowMod) {
		k.killed.Store(true)
		_ = k.Conn.Close()
		return southbound.ErrClosed
	}
	return k.Conn.Send(m)
}

// TestConnKillMidBatchRollback kills a switch connection mid-batch during a
// multi-device policy-path flush and asserts the chaos invariants directly:
// rollback leaves no orphan rules anywhere, no path record is created, and
// traffic punts cleanly with label depth ≤ 1.
func TestConnKillMidBatchRollback(t *testing.T) {
	net := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3"} {
		net.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"S1", "S2"}, {"S2", "S3"}} {
		if _, err := net.Connect(pair[0], pair[1], time.Millisecond, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rp, _ := net.AddRadioPort("S1", "gA")
	ep, _ := net.AddEgress("E1", "S3", "isp")

	ctrl := NewController("L1", 1, 0)
	var killer *killerConn
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3"} {
		agent := southbound.NewSwitchAgent(net, net.Switch(id))
		a, b := southbound.Pipe(64)
		var conn southbound.Conn = a
		if id == "S2" {
			killer = &killerConn{Conn: a}
			conn = killer
		}
		go agent.Serve(b)
		dev, err := DialDevice(conn, ctrl.ID)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dev.Close() })
		ctrl.AttachDevice(dev)
	}
	ctrl.RunDiscovery()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && ctrl.NIB.NumLinks() < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	if ctrl.NIB.NumLinks() < 2 {
		t.Fatalf("discovery found %d links", ctrl.NIB.NumLinks())
	}

	// A two-leg policy route bouncing at S2 gives S2 two rules — a genuine
	// FlowModBatch — while S1 and S3 batch one rule each.
	var wp dataplane.PortRef
	for _, l := range ctrl.NIB.Links() {
		if l.A.Dev == "S2" && l.B.Dev == "S3" {
			wp = l.A
		} else if l.B.Dev == "S2" && l.A.Dev == "S3" {
			wp = l.B
		}
	}
	g := ctrl.Graph()
	leg1, err := g.ShortestPath(dataplane.PortRef{Dev: "S1", Port: rp.ID}, wp, routing.MinHops, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	leg2, err := g.ShortestPath(wp, dataplane.PortRef{Dev: "S3", Port: ep.Port}, routing.MinHops, routing.Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	killer.armed.Store(true)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	if _, err := ctrl.SetupPolicyPath(match, &PolicyRoute{Legs: []*routing.Path{leg1, leg2}}); err == nil {
		t.Fatal("setup across a killed connection must fail")
	}

	if n := ctrl.NumPaths(); n != 0 {
		t.Fatalf("failed setup left %d active path records", n)
	}
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3"} {
		if n := net.Switch(id).Table.Len(); n != 0 {
			t.Fatalf("orphan rules: %s still holds %d rules after rollback", id, n)
		}
	}
	res, err := net.Inject("S1", rp.ID, &dataplane.Packet{UE: "u1", DstPrefix: "pfx"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispPunted {
		t.Fatalf("disposition = %v, want punt at a clean table", res.Disposition)
	}
	if res.MaxLabelDepth > 1 {
		t.Fatalf("label depth %d violates the ≤1 invariant", res.MaxLabelDepth)
	}
}

// TestDialDeviceHandshakeBacklog covers the DialDevice bugfix: events that
// race the feature handshake must be buffered and replayed to the
// controller on attach instead of silently dropped.
func TestDialDeviceHandshakeBacklog(t *testing.T) {
	a, b := southbound.Pipe(64)
	go func() {
		if _, err := southbound.Accept(b, "SY"); err != nil {
			return
		}
		m, err := b.Recv() // the feature request
		if err != nil {
			return
		}
		// Two events race the handshake ahead of the reply.
		_ = b.Send(southbound.Msg{Type: southbound.TypePacketIn, Datapath: "SY",
			Body: southbound.PacketIn{InPort: 1, Packet: &dataplane.Packet{UE: "u1"}}})
		_ = b.Send(southbound.Msg{Type: southbound.TypePortStatus, Datapath: "SY",
			Body: southbound.PortStatus{Port: 1, Up: false}})
		_ = b.Send(southbound.Msg{Type: southbound.TypeFeatureReply, Xid: m.Xid, Datapath: "SY",
			Body: southbound.FeatureReply{Device: "SY", Kind: dataplane.KindSwitch}})
		for {
			m, err := b.Recv()
			if err != nil {
				return
			}
			if m.Type == southbound.TypeFeatureRequest {
				_ = b.Send(southbound.Msg{Type: southbound.TypeFeatureReply, Xid: m.Xid, Datapath: "SY",
					Body: southbound.FeatureReply{Device: "SY", Kind: dataplane.KindSwitch}})
			}
		}
	}()

	dev, err := DialDevice(a, "L1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })

	ctrl := NewController("L1", 1, 0)
	ctrl.AttachDevice(dev) // replays the backlog synchronously
	if got := ctrl.StatsSnapshot().PacketIns; got != 1 {
		t.Fatalf("backlogged packet-in not replayed: PacketIns = %d, want 1", got)
	}
}

// benchControlDelay emulates the one-way control-channel latency of a
// WAN-separated switch: agent replies are held back by this much, while
// controller→device writes stay free to pipeline. Loopback TCP is ~10µs
// round trip, which no real SoftMoW deployment sees; without this the
// benchmark measures goroutine overhead, not round trips.
const benchControlDelay = 200 * time.Microsecond

// delayedConn delays outbound messages; used on the agent side so every
// reply (and thus every blocking controller round trip) pays the delay.
type delayedConn struct {
	southbound.Conn
}

func (c delayedConn) Send(m southbound.Msg) error {
	time.Sleep(benchControlDelay)
	return c.Conn.Send(m)
}

// benchConnFixture builds a four-switch chain controlled over real
// binary-framed TCP southbound connections with emulated control-channel
// latency, so bearer setup pays genuine per-message round-trip costs.
// perRule disables batching and forces serial device order — the
// pre-batching baseline.
func benchConnFixture(b *testing.B, perRule bool) *Controller {
	b.Helper()
	southbound.RegisterGobTypes(&discovery.Frame{})
	dpn := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		dpn.AddSwitch(id)
	}
	for _, pair := range [][2]dataplane.DeviceID{{"S1", "S2"}, {"S2", "S3"}, {"S3", "S4"}} {
		if _, err := dpn.Connect(pair[0], pair[1], time.Millisecond, 1000); err != nil {
			b.Fatal(err)
		}
	}
	rp, _ := dpn.AddRadioPort("S1", "gA")
	ep, _ := dpn.AddEgress("E1", "S4", "isp")

	ctrl := NewController("L1", 1, 0)
	ctrl.SerialSouthbound = perRule
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		agent := southbound.NewSwitchAgent(dpn, dpn.Switch(id))
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ln.Close() })
		go func() {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			agent.Serve(delayedConn{Conn: southbound.NewBinConn(nc)})
		}()
		nc, err := stdnet.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		dev, err := DialDevice(southbound.NewBinConn(nc), ctrl.ID)
		if err != nil {
			b.Fatal(err)
		}
		dev.DisableBatch = perRule
		b.Cleanup(func() { dev.Close() })
		ctrl.AttachDevice(dev)
	}
	ctrl.SetConfig(reca.Config{Radios: []reca.RadioAttachment{
		{ID: "gA", Attach: dataplane.PortRef{Dev: "S1", Port: rp.ID}, Border: true}}})
	ctrl.SetRadioIndex(
		map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"},
		map[dataplane.DeviceID]dataplane.PortRef{"gA": {Dev: "S1", Port: rp.ID}})
	ctrl.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: "pfx", Egress: "E1", EgressSwitch: "S4",
		Metrics: interdomain.Metrics{Hops: 5, RTT: 10 * time.Millisecond},
	}}, dataplane.PortRef{Dev: "S4", Port: ep.Port})
	ctrl.RunDiscovery()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && ctrl.NIB.NumLinks() < 3 {
		time.Sleep(2 * time.Millisecond)
	}
	if ctrl.NIB.NumLinks() < 3 {
		b.Fatalf("TCP discovery found %d links, want 3", ctrl.NIB.NumLinks())
	}
	return ctrl
}

func benchBearerSetupConn(b *testing.B, perRule bool) {
	ctrl := benchConnFixture(b, perRule)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ue := fmt.Sprintf("u%d", i)
		rec, err := ctrl.HandleBearerRequest(BearerRequest{UE: ue, BS: "b1", Prefix: "pfx"})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := rec.HandledBy.TeardownPath(rec.PathID); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBearerSetupConn measures bearer admission over real
// binary-framed TCP southbound sessions. "batched" pipelines each
// switch's FlowMods behind a single asynchronously-completed barrier and
// fans switches out concurrently; "perrule" is the pre-batching baseline
// (one synchronous round trip per rule, switches programmed serially).
func BenchmarkBearerSetupConn(b *testing.B) {
	b.Run("batched", func(b *testing.B) { benchBearerSetupConn(b, false) })
	b.Run("perrule", func(b *testing.B) { benchBearerSetupConn(b, true) })
}
