package core

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/routing"
)

func TestRepairPathsAfterLinkFailure(t *testing.T) {
	f := buildRerouteFixture(t) // diamond: S1-{S2,S3}-S4
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	id, err := f.leaf.SetupPath(match, f.pathVia(t, routing.MinHops)) // via S2
	if err != nil {
		t.Fatal(err)
	}
	res := f.drive(t)
	if res.Packet.Path()[1] != "S2" {
		t.Fatalf("precondition: path via %v", res.Packet.Path())
	}

	// Fail the S1-S2 link and repair.
	var link *dataplane.Link
	for _, l := range f.net.Links() {
		if (l.A.Dev == "S1" && l.B.Dev == "S2") || (l.A.Dev == "S2" && l.B.Dev == "S1") {
			link = l
		}
	}
	f.net.SetLinkState(link, false) // prunes the NIB via PortStatus events
	ref := link.A
	if ref.Dev != "S1" {
		ref = link.B
	}
	repaired, failed := f.leaf.RepairPaths(ref)
	if len(failed) != 0 {
		t.Fatalf("failed paths: %v", failed)
	}
	if len(repaired) != 1 || repaired[0] != id {
		t.Fatalf("repaired = %v", repaired)
	}

	res = f.drive(t)
	if res.Disposition != dataplane.DispEgressed {
		t.Fatalf("post-repair delivery: %v", res.Disposition)
	}
	if res.Packet.Path()[1] != "S3" {
		t.Fatalf("repair should reroute via S3, went %v", res.Packet.Path())
	}
	if res.MaxLabelDepth > 1 {
		t.Fatal("label invariant across repair")
	}
}

func TestRepairDeactivatesUnreachablePaths(t *testing.T) {
	f := buildRerouteFixture(t)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	id, err := f.leaf.SetupPath(match, f.pathVia(t, routing.MinHops))
	if err != nil {
		t.Fatal(err)
	}
	// Fail BOTH diamond arms: no alternative exists.
	for _, l := range f.net.Links() {
		if l.A.Dev == "S1" || l.B.Dev == "S1" {
			f.net.SetLinkState(l, false)
		}
	}
	_, failed := f.leaf.RepairPaths(dataplane.PortRef{Dev: "S1", Port: 1})
	// the via-S2 path used S1 port 1
	if len(failed) != 1 || failed[0] != id {
		t.Fatalf("failed = %v", failed)
	}
	rec, _ := f.leaf.Path(id)
	if rec.Active {
		t.Fatal("unrepairable path must deactivate")
	}
	// traffic punts (reachable for recomputation) instead of blackholing
	res := f.drive(t)
	if res.Disposition != dataplane.DispPunted {
		t.Fatalf("disposition = %v", res.Disposition)
	}
}

func TestHandleLinkFailureEndToEnd(t *testing.T) {
	f := buildRerouteFixture(t)
	match := dataplane.Match{InPort: dataplane.PortAny, UE: "u1", QoS: -1}
	if _, err := f.leaf.SetupPath(match, f.pathVia(t, routing.MinHops)); err != nil {
		t.Fatal(err)
	}
	var link *dataplane.Link
	for _, l := range f.net.Links() {
		if (l.A.Dev == "S1" && l.B.Dev == "S2") || (l.A.Dev == "S2" && l.B.Dev == "S1") {
			link = l
		}
	}
	link.SetUp(false)
	ref := link.A
	if ref.Dev != "S1" {
		ref = link.B
	}
	repaired, failed := f.leaf.HandleLinkFailure(ref.Dev, ref.Port)
	if len(repaired) != 1 || len(failed) != 0 {
		t.Fatalf("repaired=%v failed=%v", repaired, failed)
	}
	// The failed link's record is retained, marked down, so a later
	// port-up can restore it without re-discovery.
	if f.leaf.NIB.NumLinks() != 4 {
		t.Fatalf("NIB links = %d, want 4 (record retained)", f.leaf.NIB.NumLinks())
	}
	if f.leaf.NIB.NumUpLinks() != 3 {
		t.Fatalf("up NIB links = %d, want 3 (one down)", f.leaf.NIB.NumUpLinks())
	}
	res := f.drive(t)
	if res.Disposition != dataplane.DispEgressed || res.Packet.Path()[1] != "S3" {
		t.Fatalf("post-failure: %v via %v", res.Disposition, res.Packet.Path())
	}
}
