package core

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/nib"
)

// RunDiscovery performs one discovery round (§4.1.2): the controller sends
// a link-discovery frame from every port of every registered device. Frames
// that cross a link controlled at this level return via
// HandleDiscoveryArrival and populate the NIB; frames crossing links owned
// by an ancestor are reported upward by the receiving side's RecA.
//
// Bootstrap runs rounds bottom-up: leaves first (discovering physical
// links), then each ancestor level (discovering inter-G-switch links), per
// §2.2 "Data plane switches and links ... are discovered sequentially from
// bottom to top; controllers at each level can discover their ... links in
// parallel."
func (c *Controller) RunDiscovery() {
	for _, d := range c.Devices() {
		fr := d.Features()
		for _, p := range fr.Ports {
			if !p.Up || p.External || p.Radio != "" {
				continue
			}
			f := &discovery.Frame{}
			f.Push(discovery.StackEntry{Controller: c.ID, Device: fr.Device, Port: p.ID})
			// A frame that cannot be emitted (port went down between the
			// Features snapshot and the emit) simply means the link is not
			// discovered this round — the next round retries every port.
			_ = d.EmitDiscovery(p.ID, f) //softmow:allow errdiscard discovery is periodic and self-healing, a lost frame is retried next round
		}
	}
}

// RediscoverDevice re-emits discovery frames from every eligible port of
// one device — the targeted companion of RunDiscovery. The liveness
// prober calls it when a suspect device's control channel heals, so the
// device's links re-enter the NIB (frames that complete the round trip
// re-Put their link with Up=true) without the cost of a topology-wide
// refresh.
func (c *Controller) RediscoverDevice(id dataplane.DeviceID) {
	d := c.Device(id)
	if d == nil {
		return
	}
	fr := d.Features()
	for _, p := range fr.Ports {
		if !p.Up || p.External || p.Radio != "" {
			continue
		}
		f := &discovery.Frame{}
		f.Push(discovery.StackEntry{Controller: c.ID, Device: fr.Device, Port: p.ID})
		// Same contract as RunDiscovery: an emit that fails means this
		// link is not rediscovered now; the next probe-recovery or
		// periodic round retries.
		_ = d.EmitDiscovery(p.ID, f) //softmow:allow errdiscard discovery is periodic and self-healing, a lost frame is retried next round
	}
}

// HandleDiscoveryArrival processes a discovery frame that re-entered the
// control plane at (dev, port) in this controller's topology (§4.1.2
// "return path"):
//
//   - if the popped stack entry carries this controller's ID, a link
//     between the entry's (device, port) and the arrival (dev, port) is
//     discovered and stored in the NIB;
//   - otherwise, if the stack is nonempty, the arrival point is translated
//     to this controller's exposed G-switch port and the frame is reported
//     to the parent;
//   - an empty stack (after popping a foreign entry) means the frame
//     cannot return to its initiator: it is dropped.
func (c *Controller) HandleDiscoveryArrival(dev dataplane.DeviceID, port dataplane.PortID, f *discovery.Frame) {
	entry, ok := f.Pop()
	if !ok {
		return
	}
	if entry.Controller == c.ID {
		c.NIB.PutLink(nib.Link{
			A:         dataplane.PortRef{Dev: entry.Device, Port: entry.Port},
			B:         dataplane.PortRef{Dev: dev, Port: port},
			Latency:   f.Meta.Latency,
			Bandwidth: f.Meta.Bandwidth,
			Up:        true,
		})
		c.mu.Lock()
		c.stats.LinksDiscovered++
		c.mu.Unlock()
		return
	}
	if f.Depth() == 0 {
		return // cannot return to the initiator: no link at any ancestor
	}
	pl := c.ParentLinkRef()
	ab := c.Abstraction()
	if pl == nil || ab == nil {
		return
	}
	// Translate the arrival point to the exposed border port.
	gport, ok := c.exposedPortFor(dataplane.PortRef{Dev: dev, Port: port})
	if !ok {
		return // arrival on a hidden port: not a border crossing
	}
	f.Receive = discovery.StackEntry{Controller: c.ID, Device: c.GSwitchID(), Port: gport}
	pl.DiscoveryArrival(gport, f)
}

// exposedPortFor maps an underlying (device, port) to this controller's
// exposed G-switch port.
func (c *Controller) exposedPortFor(ref dataplane.PortRef) (dataplane.PortID, bool) {
	ab := c.Abstraction()
	if ab == nil {
		return 0, false
	}
	for _, gp := range ab.GSwitch.Ports {
		if gp.Underlying == ref {
			return gp.ID, true
		}
	}
	return 0, false
}

// sourceGPort maps a path source in this controller's topology to the
// G-switch port exposed to the parent: directly for border ports and
// border G-BS attachments, via the aggregated internal G-BS for internal
// radio attachments.
func (c *Controller) sourceGPort(ref dataplane.PortRef) (dataplane.PortID, bool) {
	if gport, ok := c.exposedPortFor(ref); ok {
		return gport, true
	}
	ab := c.Abstraction()
	if ab == nil {
		return 0, false
	}
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	for _, r := range cfg.Radios {
		if r.Attach == ref && !r.Border {
			for _, g := range ab.GBSes {
				if !g.Border {
					return g.AttachPort, true
				}
			}
		}
	}
	return 0, false
}

// RecAEmitDiscovery relays a parent-originated discovery emission through
// this controller: the G-switch port is mapped to its underlying
// attachment, this controller's stack entry is pushed, and the emission
// recurses toward the physical plane (§4.1.2 "origination path").
func (c *Controller) RecAEmitDiscovery(gport dataplane.PortID, f *discovery.Frame) error {
	ab := c.Abstraction()
	if ab == nil {
		return fmt.Errorf("core: %s has no abstraction yet", c.ID)
	}
	gp := ab.GSwitch.PortByID(gport)
	if gp == nil {
		return fmt.Errorf("core: %s: no exposed port %d", c.ID, gport)
	}
	under := gp.Underlying
	d := c.Device(under.Dev)
	if d == nil {
		return fmt.Errorf("core: %s: underlying device %s not attached", c.ID, under.Dev)
	}
	f.Push(discovery.StackEntry{Controller: c.ID, Device: under.Dev, Port: under.Port})
	return d.EmitDiscovery(under.Port, f)
}
