package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/metrics"
	"repro/internal/nib"
	"repro/internal/pathimpl"
	"repro/internal/reca"
	"repro/internal/routing"
)

// Graph-cache observability (ONOS-style event-invalidated topology cache):
// hits return the cached graph with two atomic loads; misses rebuild from
// the NIB. rebuilds ≤ misses — concurrent misses coalesce on one build.
var (
	graphCacheHits   = metrics.NewCounter("core.graph.cache_hits")
	graphCacheMisses = metrics.NewCounter("core.graph.cache_misses")
	graphRebuilds    = metrics.NewCounter("core.graph.rebuilds")
	graphBuildTime   = metrics.NewDurationHist("core.graph.build_latency")
)

// cachedGraph pairs an immutable routing graph with the NIB generation it
// was built from.
type cachedGraph struct {
	gen uint64
	g   *routing.Graph
}

// Controller is one SoftMoW controller node.
type Controller struct {
	// ID is the globally unique controller identifier (§3.1).
	ID string
	// Level is the tree level; 1 for leaves.
	Level int
	// Index is the controller's global index, used for disjoint label
	// ranges.
	Index int
	// Mode selects recursive label swapping (default) or the stacking
	// baseline for path translation (§4.3).
	Mode pathimpl.Mode

	// SerialSouthbound forces batch flushes and removal fan-outs to visit
	// devices one at a time in deterministic (path, then sorted) order
	// instead of concurrently. The fault-injection harness sets it so a
	// seed replays to a byte-identical event log; it must be set before
	// the controller starts programming rules.
	SerialSouthbound bool

	// NIB is this controller's network information base (§4).
	NIB *nib.NIB

	// graphCache holds the last routing graph built from the NIB, tagged
	// with the NIB generation it reflects. NIB change events clear it
	// eagerly (Subscribe wiring in NewController); Graph() revalidates the
	// generation before returning, which also covers mutations that fire
	// no events (snapshot Restore during standby promotion).
	graphCache atomic.Pointer[cachedGraph]
	// graphBuildMu serializes rebuilds so concurrent misses coalesce into
	// one BuildGraph instead of racing N builds.
	graphBuildMu sync.Mutex

	mu sync.Mutex
	// parent is the tree parent, guarded by mu.
	parent *Controller
	// parentLink is the northbound channel to the parent (in-process or
	// wire-backed), guarded by mu.
	parentLink ParentLink
	// devices maps attached device IDs to adapters, guarded by mu.
	devices map[dataplane.DeviceID]Device
	// children maps child G-switch IDs to child controllers, guarded by mu.
	children map[dataplane.DeviceID]*Controller

	// cfg is the RecA configuration, guarded by mu.
	cfg reca.Config
	// abstraction is the last computed abstraction, guarded by mu.
	abstraction *reca.Abstraction

	// alloc and versions are internally synchronized (atomic counters).
	alloc    *pathimpl.Allocator
	versions *pathimpl.VersionCounter

	// routes holds interdomain routes known in this controller's region,
	// keyed by prefix; each option names the local egress port ref.
	// guarded by mu.
	routes map[interdomain.PrefixID][]RouteOption

	// paths maps path IDs to records, guarded by mu.
	paths map[PathID]*PathRecord
	// nextPath is the last allocated path ID, guarded by mu.
	nextPath PathID

	// ue is the sharded UE store; it carries its own striped locks
	// (ueshard.go), independent of mu.
	ue *ueState

	// stats counts controller activity, guarded by mu.
	stats Stats
}

// Stats counts controller activity, used by the evaluation and examples.
type Stats struct {
	PacketIns            int
	LinksDiscovered      int
	RulesInstalled       int
	RulesTranslated      int
	DelegatedRequests    int
	BearersHandled       int
	HandoversHandled     int
	InterRegionHandovers int
	Reabstractions       int
}

// NewController creates a controller with the given identity.
func NewController(id string, level, index int) *Controller {
	c := &Controller{
		ID:       id,
		Level:    level,
		Index:    index,
		NIB:      nib.New(),
		devices:  make(map[dataplane.DeviceID]Device),
		children: make(map[dataplane.DeviceID]*Controller),
		alloc:    pathimpl.NewAllocator(index),
		versions: &pathimpl.VersionCounter{},
		routes:   make(map[interdomain.PrefixID][]RouteOption),
		paths:    make(map[PathID]*PathRecord),
		ue:       newUEState(DefaultUEShards),
	}
	// Eager cache invalidation: any NIB change event drops the cached
	// routing graph immediately (freeing it for GC); the generation check
	// in Graph() is the correctness backstop for event-less mutations.
	c.NIB.Subscribe(func(nib.Event) { c.graphCache.Store(nil) })
	return c
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Parent returns the parent controller (nil at the root).
func (c *Controller) Parent() *Controller {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parent
}

// GSwitchID names the G-switch this controller exposes to its parent.
func (c *Controller) GSwitchID() dataplane.DeviceID {
	return reca.GSwitchID(c.ID)
}

// controllerBound is implemented by device adapters that deliver events to
// an owning controller (SwitchDevice, ConnDevice).
type controllerBound interface {
	setController(*Controller)
}

// AttachDevice registers a device under this controller's control and
// records it in the NIB from its feature reply. Event-capable adapters get
// their back-pointer wired so events flow to this controller.
func (c *Controller) AttachDevice(d Device) {
	if cb, ok := d.(controllerBound); ok {
		cb.setController(c)
	}
	c.mu.Lock()
	c.devices[d.ID()] = d
	c.mu.Unlock()
	c.refreshDevice(d)
}

// DetachDevice removes a device from this controller (region
// reconfiguration, §5.3.2).
func (c *Controller) DetachDevice(id dataplane.DeviceID) Device {
	c.mu.Lock()
	d := c.devices[id]
	delete(c.devices, id)
	c.mu.Unlock()
	if d != nil {
		c.NIB.RemoveDevice(id)
		if cb, ok := d.(controllerBound); ok {
			cb.setController(nil)
		}
	}
	return d
}

// AttachChild links a child controller under this one and registers its
// G-switch as a logical device.
func (c *Controller) AttachChild(child *Controller) {
	ld := &logicalDevice{child: child}
	child.mu.Lock()
	child.parent = c
	child.parentLink = localParent{parent: c, child: child}
	child.mu.Unlock()
	c.mu.Lock()
	c.children[child.GSwitchID()] = child
	c.devices[ld.ID()] = ld
	c.mu.Unlock()
	c.refreshDevice(ld)
}

// Device returns the controller's handle on a device, or nil.
func (c *Controller) Device(id dataplane.DeviceID) Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.devices[id]
}

// Devices returns all attached devices in deterministic order.
func (c *Controller) Devices() []Device {
	c.mu.Lock()
	ids := make([]dataplane.DeviceID, 0, len(c.devices))
	for id := range c.devices {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	dataplane.SortDeviceIDs(ids)
	out := make([]Device, 0, len(ids))
	for _, id := range ids {
		if d := c.Device(id); d != nil {
			out = append(out, d)
		}
	}
	return out
}

// Child returns the child controller exposing the given G-switch, or nil.
func (c *Controller) Child(gswitch dataplane.DeviceID) *Controller {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.children[gswitch]
}

// Children returns child controllers in deterministic order.
func (c *Controller) Children() []*Controller {
	c.mu.Lock()
	ids := make([]dataplane.DeviceID, 0, len(c.children))
	for id := range c.children {
		ids = append(ids, id)
	}
	kids := c.children
	c.mu.Unlock()
	dataplane.SortDeviceIDs(ids)
	out := make([]*Controller, 0, len(ids))
	for _, id := range ids {
		out = append(out, kids[id])
	}
	return out
}

// SetConfig installs the management-plane radio/middlebox configuration
// (§3.3: "The management plane bootstraps the recursive control plane").
func (c *Controller) SetConfig(cfg reca.Config) {
	c.mu.Lock()
	c.cfg = cfg
	c.mu.Unlock()
}

// Config returns the current configuration.
func (c *Controller) Config() reca.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

// refreshDevice (re)loads a device's features into the NIB — the G-switch
// discovery step of §4.1.1. Stale link records referencing ports the
// device no longer exposes are purged (re-abstraction after a region
// reconfiguration changes border port sets, §5.3.2).
func (c *Controller) refreshDevice(d Device) {
	fr := d.Features()
	dev := nib.Device{ID: fr.Device, Kind: fr.Kind, Fabric: fr.Fabric,
		GBSes: fr.GBSes, GMiddleboxes: fr.GMiddleboxes}
	ports := make(map[dataplane.PortID]bool, len(fr.Ports))
	for _, p := range fr.Ports {
		ports[p.ID] = true
		dev.Ports = append(dev.Ports, nib.PortRecord{
			ID: p.ID, Up: p.Up, External: p.External,
			ExternalDomain: p.ExternalDomain, Radio: p.Radio,
			Underlying: p.Underlying,
		})
	}
	c.NIB.PutDevice(dev)
	if fr.Kind == dataplane.KindGSwitch {
		// Re-abstraction renumbers a G-switch's border ports, so all its
		// link records are stale; the caller re-runs discovery.
		for _, l := range c.NIB.LinksOf(fr.Device) {
			c.NIB.RemoveLink(l.Key())
		}
		return
	}
	for _, l := range c.NIB.LinksOf(fr.Device) {
		for _, end := range []dataplane.PortRef{l.A, l.B} {
			if end.Dev == fr.Device && !ports[end.Port] {
				c.NIB.RemoveLink(l.Key())
			}
		}
	}
}

// RefreshDevices re-reads features from every device (after child
// re-abstraction or reconfiguration).
func (c *Controller) RefreshDevices() {
	for _, d := range c.Devices() {
		c.refreshDevice(d)
	}
}

// Graph returns the routing graph over the controller's current NIB view.
// The graph is cached and event-invalidated: it is rebuilt only when the
// NIB generation has advanced since the last build, so the steady-state
// hot path (bearer setup, reroute, policy, repair) pays two atomic loads
// instead of a full port-expanded reconstruction.
//
// Returned graphs are immutable snapshots, safe for concurrent use. A
// Graph() call that starts after a NIB mutation completes never returns a
// graph older than that mutation: the generation is read before the build,
// so a build racing a mutation is tagged stale and the next call rebuilds.
func (c *Controller) Graph() *routing.Graph {
	if cc := c.graphCache.Load(); cc != nil && cc.gen == c.NIB.Generation() {
		graphCacheHits.Inc()
		return cc.g
	}
	graphCacheMisses.Inc()
	c.graphBuildMu.Lock()
	defer c.graphBuildMu.Unlock()
	gen := c.NIB.Generation()
	if cc := c.graphCache.Load(); cc != nil && cc.gen == gen {
		return cc.g // another miss rebuilt while we waited for the lock
	}
	start := time.Now() //softmow:allow determinism wall clock feeds the graph-build histogram only, never control decisions
	g := routing.BuildGraph(c.NIB)
	graphBuildTime.Observe(time.Since(start))
	graphRebuilds.Inc()
	c.graphCache.Store(&cachedGraph{gen: gen, g: g})
	return g
}

// HandlePacketIn receives punted data-plane packets (table misses, explicit
// punts). The mobility application consumes bearer requests; everything
// else is counted and dropped.
func (c *Controller) HandlePacketIn(dev dataplane.DeviceID, inPort dataplane.PortID, p *dataplane.Packet) {
	c.mu.Lock()
	c.stats.PacketIns++
	c.mu.Unlock()
}

// HandlePortStatus reacts to link state changes: the NIB link record is
// updated and affected paths recomputed lazily (§6). The record is kept on
// port-down with Up=false — routing.BuildGraph already excludes down links
// — so a later port-up restores the link without a full re-discovery
// round; a flapped link is never lost from the NIB.
func (c *Controller) HandlePortStatus(dev dataplane.DeviceID, port dataplane.PortID, up bool) {
	ref := dataplane.PortRef{Dev: dev, Port: port}
	for _, l := range c.NIB.LinksOf(dev) {
		if l.A == ref || l.B == ref {
			c.NIB.SetLinkUp(l.Key(), up)
		}
	}
}

// String implements fmt.Stringer.
func (c *Controller) String() string {
	return fmt.Sprintf("controller(%s level=%d)", c.ID, c.Level)
}
