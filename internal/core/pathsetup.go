package core

import (
	"errors"
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/pathimpl"
	"repro/internal/routing"
)

// PathID identifies an installed path at the controller that set it up.
type PathID int

// PathRecord is the path-table entry the mobility application caches
// (§5.1).
type PathRecord struct {
	ID      PathID
	Owner   string
	Match   dataplane.Match
	Cost    routing.Cost
	Devices []dataplane.DeviceID
	Active  bool
	Version int

	// lastPath is the currently installed route, kept for reroute
	// rollback (nil for policy paths).
	lastPath *routing.Path
	// demand is the bandwidth reservation the path carries.
	demand float64
}

// ErrEmptyPath is returned for a path with no segments.
var ErrEmptyPath = errors.New("core: empty path")

// translationKind classifies a virtual rule for recursive translation.
type translationKind int

const (
	// kindClassify starts a path at a flow-classification point (a G-BS /
	// access switch).
	kindClassify translationKind = iota
	// kindTransit carries an ancestor's label across the region.
	kindTransit
	// kindTerminal ends the ancestor's path: labels pop before the final
	// output (an Internet egress or radio delivery).
	kindTerminal
)

// ruleCtx is the label context of one translated path installation.
type ruleCtx struct {
	kind translationKind
	// match is the flow match for classification rules.
	match dataplane.Match
	// labelIn is the ancestor label on packets entering the region
	// (transit/terminal).
	labelIn dataplane.Label
	// labelOut is the label packets must carry when leaving the region
	// (swap mode; NoLabel = leave unlabeled).
	labelOut dataplane.Label
	// pushChain lists ancestor labels to push at classification in stack
	// mode, bottom first (§4.3: "push the stack [R P]").
	pushChain []dataplane.Label
	// parentPops is the number of ancestor labels a terminal rule pops in
	// stack mode.
	parentPops int
	// demand is the bandwidth reservation (Mbps) each installed rule
	// carries (0 = best-effort).
	demand float64
}

// SetupPath implements the northbound PathSetup(match fields, path) API
// (§4.3): it installs an end-to-end path in this controller's topology.
// Rules on gigantic switches translate recursively in the children; every
// physical packet carries at most one label under ModeSwap.
func (c *Controller) SetupPath(match dataplane.Match, path *routing.Path) (PathID, error) {
	return c.SetupPathWithDemand(match, path, 0)
}

// SetupPathWithDemand installs a path whose rules reserve demandMbps on
// every traversed link (admission control against the §3.2 bandwidth
// metrics). Installation fails, with full rollback, when any link cannot
// admit the demand.
func (c *Controller) SetupPathWithDemand(match dataplane.Match, path *routing.Path, demandMbps float64) (PathID, error) {
	c.mu.Lock()
	c.nextPath++
	id := c.nextPath
	version := c.versions.Next()
	owner := fmt.Sprintf("%s/p%d", c.ID, id)
	c.mu.Unlock()

	ctx := ruleCtx{kind: kindClassify, match: match, demand: demandMbps}
	if err := c.installPathRules(ctx, path, owner, version); err != nil {
		for _, d := range c.Devices() {
			_ = d.RemoveRules(owner)
		}
		return 0, err
	}
	rec := &PathRecord{
		ID: id, Owner: owner, Match: match, Cost: path.Cost,
		Devices: path.Devices(), Active: true, Version: version,
		lastPath: path, demand: demandMbps,
	}
	c.mu.Lock()
	c.paths[id] = rec
	c.mu.Unlock()
	return id, nil
}

// Path returns a path record.
func (c *Controller) Path(id PathID) (PathRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.paths[id]
	if !ok {
		return PathRecord{}, false
	}
	return *r, true
}

// NumPaths reports active path count.
func (c *Controller) NumPaths() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.paths {
		if r.Active {
			n++
		}
	}
	return n
}

// TeardownPath removes a path's rules everywhere (recursively through
// children) and deactivates the record (§5.1 deactivatePath).
func (c *Controller) TeardownPath(id PathID) error {
	c.mu.Lock()
	rec, ok := c.paths[id]
	if ok {
		rec.Active = false
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown path %d", id)
	}
	for _, devID := range rec.Devices {
		if d := c.Device(devID); d != nil {
			_ = d.RemoveRules(rec.Owner)
		}
	}
	return nil
}

// PrepareReroute installs a new version of an active path alongside the
// old one (§6 consistent path setup: "the new path and packets are
// assigned a new version number"). New classification rules carry a higher
// priority, so new packets take the new path immediately, while "packets
// with the old version number can still use old rules to guarantee
// reachability". Call CommitReroute to retire the old version.
func (c *Controller) PrepareReroute(id PathID, newPath *routing.Path) error {
	c.mu.Lock()
	rec, ok := c.paths[id]
	if !ok || !rec.Active {
		c.mu.Unlock()
		return fmt.Errorf("core: path %d not active", id)
	}
	match := rec.Match
	owner := rec.Owner
	demand := rec.demand
	version := c.versions.Next()
	c.mu.Unlock()

	ctx := ruleCtx{kind: kindClassify, match: match, demand: demand}
	if err := c.installPathRules(ctx, newPath, owner, version); err != nil {
		// §6: on inconsistency, recompute — drop everything under the
		// owner and reinstall the previous route under a fresh version.
		for _, d := range c.Devices() {
			_ = d.RemoveRules(owner)
		}
		c.mu.Lock()
		old := rec.lastPath
		c.mu.Unlock()
		if old != nil {
			v2 := c.versions.Next()
			if rerr := c.installPathRules(ruleCtx{kind: kindClassify, match: match, demand: demand}, old, owner, v2); rerr == nil {
				c.mu.Lock()
				rec.Version = v2
				c.mu.Unlock()
			} else {
				c.mu.Lock()
				rec.Active = false
				c.mu.Unlock()
			}
		} else {
			c.mu.Lock()
			rec.Active = false
			c.mu.Unlock()
		}
		return err
	}
	c.mu.Lock()
	rec.Version = version
	rec.Cost = newPath.Cost
	rec.Devices = dedupeDevices(append(rec.Devices, newPath.Devices()...))
	rec.lastPath = newPath
	c.mu.Unlock()
	return nil
}

// CommitReroute removes the pre-update rule versions of a path, completing
// a consistent update.
func (c *Controller) CommitReroute(id PathID) error {
	c.mu.Lock()
	rec, ok := c.paths[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown path %d", id)
	}
	for _, devID := range rec.Devices {
		if d := c.Device(devID); d != nil {
			_ = d.RemoveRulesBefore(rec.Owner, rec.Version)
		}
	}
	return nil
}

// ReroutePath performs a full consistent update: make-before-break with
// versioned rules.
func (c *Controller) ReroutePath(id PathID, newPath *routing.Path) error {
	if err := c.PrepareReroute(id, newPath); err != nil {
		return err
	}
	return c.CommitReroute(id)
}

// TranslateRule is the RecA agent's entry point for virtual rules pushed
// by the parent onto this controller's exposed G-switch (§4.3): the rule
// is mapped onto internal paths between the referenced ports and installed
// recursively.
func (c *Controller) TranslateRule(r dataplane.Rule) error {
	c.mu.Lock()
	c.stats.RulesTranslated++
	c.mu.Unlock()
	ab := c.Abstraction()
	if ab == nil {
		return fmt.Errorf("core: %s: no abstraction for translation", c.ID)
	}

	dec := decodeActions(r.Actions)
	if !dec.hasOut {
		return fmt.Errorf("core: %s: virtual rule without output: %v", c.ID, &r)
	}
	outGp := ab.GSwitch.PortByID(dec.out)
	if outGp == nil {
		return fmt.Errorf("core: %s: virtual rule outputs to unknown port %d", c.ID, dec.out)
	}
	dst := outGp.Underlying
	g := c.Graph()

	if r.Match.MatchNoLabel {
		// Classification: fan out to the constituent attachments of the
		// G-BS referenced by the match's in-port (§4.3: installed "into
		// constituent access switches, each attached to a component
		// G-BS").
		srcs, err := c.classificationSources(r.Match.InPort)
		if err != nil {
			return err
		}
		ctx := ruleCtx{kind: kindClassify, pushChain: dec.pushes, demand: r.Demand}
		if n := len(dec.pushes); n > 0 {
			ctx.labelOut = dec.pushes[n-1]
		}
		for _, src := range srcs {
			p, err := g.ShortestPath(src, dst, routing.MinHops, routing.Constraints{})
			if err != nil {
				// Roll back earlier sources' rules so a mid-fan-out failure
				// leaves nothing behind, mirroring SetupPathWithDemand. The
				// removal is version-exact: older versions of the same owner
				// may still carry traffic mid-update (§6).
				_ = c.RemoveTranslatedVersion(r.Owner, r.Version)
				return fmt.Errorf("core: %s: no internal path %v->%v: %w", c.ID, src, dst, err)
			}
			ctx.match = r.Match
			ctx.match.InPort = src.Port
			if err := c.installPathRules(ctx, p, r.Owner, r.Version); err != nil {
				_ = c.RemoveTranslatedVersion(r.Owner, r.Version)
				return err
			}
		}
		return nil
	}

	if !r.Match.HasLabel {
		return fmt.Errorf("core: %s: virtual rule matches neither label nor flow: %v", c.ID, &r)
	}
	inGp := ab.GSwitch.PortByID(r.Match.InPort)
	if inGp == nil {
		return fmt.Errorf("core: %s: virtual rule from unknown port %d", c.ID, r.Match.InPort)
	}
	p, err := g.ShortestPath(inGp.Underlying, dst, routing.MinHops, routing.Constraints{})
	if err != nil {
		return fmt.Errorf("core: %s: no internal path %v->%v: %w", c.ID, inGp.Underlying, dst, err)
	}

	ctx := ruleCtx{labelIn: r.Match.Label, demand: r.Demand}
	switch {
	case dec.hasSwap:
		// Swap-mode region egress rule: carry labelIn across, leave with
		// the swapped-to label.
		ctx.kind = kindTransit
		ctx.labelOut = dec.swapTo
	case dec.pops > 0:
		ctx.kind = kindTerminal
		ctx.parentPops = dec.pops
	default:
		ctx.kind = kindTransit
		ctx.labelOut = r.Match.Label
	}
	if err := c.installPathRules(ctx, p, r.Owner, r.Version); err != nil {
		// installPathRules may have installed a prefix of the path's rules
		// before failing; remove exactly this version's residue.
		_ = c.RemoveTranslatedVersion(r.Owner, r.Version)
		return err
	}
	return nil
}

// RemoveTranslated removes, recursively, all rules installed under an
// owner tag.
func (c *Controller) RemoveTranslated(owner string) error {
	for _, d := range c.Devices() {
		_ = d.RemoveRules(owner)
	}
	return nil
}

// RemoveTranslatedBefore removes, recursively, an owner's rules older than
// version (§6 consistent updates).
func (c *Controller) RemoveTranslatedBefore(owner string, version int) error {
	for _, d := range c.Devices() {
		_ = d.RemoveRulesBefore(owner, version)
	}
	return nil
}

// RemoveTranslatedVersion removes, recursively, exactly an owner's rules of
// one version — rollback of a partial translation that must leave older
// live versions untouched.
func (c *Controller) RemoveTranslatedVersion(owner string, version int) error {
	for _, d := range c.Devices() {
		_ = d.RemoveRulesVersion(owner, version)
	}
	return nil
}

// classificationSources resolves a G-BS attach port to the underlying
// attachment points where classification rules must be installed.
func (c *Controller) classificationSources(gport dataplane.PortID) ([]dataplane.PortRef, error) {
	ab := c.Abstraction()
	gp := ab.GSwitch.PortByID(gport)
	if gp == nil || gp.GBS == "" {
		return nil, fmt.Errorf("core: %s: classification in-port %d is not a G-BS attachment", c.ID, gport)
	}
	var gbs *dataplane.GBSInfo
	for i := range ab.GBSes {
		if ab.GBSes[i].ID == gp.GBS {
			gbs = &ab.GBSes[i]
			break
		}
	}
	if gbs == nil {
		return nil, fmt.Errorf("core: %s: unknown G-BS %s", c.ID, gp.GBS)
	}
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	if gbs.Border {
		for _, r := range cfg.Radios {
			if r.ID == gbs.ID {
				return []dataplane.PortRef{r.Attach}, nil
			}
		}
		return nil, fmt.Errorf("core: %s: border G-BS %s has no attachment", c.ID, gbs.ID)
	}
	// Aggregated internal G-BS: classify at every internal attachment.
	var out []dataplane.PortRef
	for _, r := range cfg.Radios {
		if !r.Border {
			out = append(out, r.Attach)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: %s: internal G-BS %s has no attachments", c.ID, gbs.ID)
	}
	return out, nil
}

// decoded is the action summary of a virtual rule.
type decoded struct {
	out    dataplane.PortID
	hasOut bool
	pops   int
	pushes []dataplane.Label
	swapTo dataplane.Label
	hasSwap bool
}

func decodeActions(actions []dataplane.Action) decoded {
	var d decoded
	for _, a := range actions {
		switch a.Op {
		case dataplane.OpPopLabel:
			d.pops++
		case dataplane.OpPushLabel:
			d.pushes = append(d.pushes, a.Label)
		case dataplane.OpSwapLabel:
			d.swapTo = a.Label
			d.hasSwap = true
		case dataplane.OpOutput:
			d.out = a.Port
			d.hasOut = true
			return d
		}
	}
	return d
}

// installPathRules installs one path in this controller's topology under a
// label context. Rules landing on G-switch devices recurse into children.
func (c *Controller) installPathRules(ctx ruleCtx, path *routing.Path, owner string, version int) error {
	segs := path.Segments()
	if len(segs) == 0 {
		return ErrEmptyPath
	}
	install := func(devID dataplane.DeviceID, rule dataplane.Rule) error {
		d := c.Device(devID)
		if d == nil {
			return fmt.Errorf("core: %s: path device %s not attached", c.ID, devID)
		}
		rule.Owner = owner
		rule.Version = version
		rule.Demand = ctx.demand
		c.mu.Lock()
		c.stats.RulesInstalled++
		c.mu.Unlock()
		return d.InstallRule(rule)
	}

	stack := c.Mode == pathimpl.ModeStack

	if len(segs) == 1 {
		seg := segs[0]
		var rule dataplane.Rule
		switch ctx.kind {
		case kindClassify:
			m := ctx.match
			m.MatchNoLabel = true
			m.HasLabel = false
			m.InPort = seg.InPort
			var actions []dataplane.Action
			if stack {
				for _, l := range ctx.pushChain {
					actions = append(actions, dataplane.Push(l))
				}
			} else if ctx.labelOut != dataplane.NoLabel {
				actions = append(actions, dataplane.Push(ctx.labelOut))
			}
			actions = append(actions, dataplane.Output(seg.OutPort))
			rule = dataplane.Rule{Priority: 100 + version, Match: m, Actions: actions}
		case kindTransit:
			m := dataplane.Match{InPort: seg.InPort, HasLabel: true, Label: ctx.labelIn, QoS: -1}
			var actions []dataplane.Action
			if !stack && ctx.labelOut != ctx.labelIn && ctx.labelOut != dataplane.NoLabel {
				actions = append(actions, dataplane.Swap(ctx.labelOut))
			}
			actions = append(actions, dataplane.Output(seg.OutPort))
			rule = dataplane.Rule{Priority: 60, Match: m, Actions: actions}
		case kindTerminal:
			pops := ctx.parentPops
			if pops == 0 {
				pops = 1
			}
			actions := make([]dataplane.Action, 0, pops+1)
			for i := 0; i < pops; i++ {
				actions = append(actions, dataplane.Pop())
			}
			actions = append(actions, dataplane.Output(seg.OutPort))
			rule = dataplane.Rule{
				Priority: 60,
				Match:    dataplane.Match{InPort: seg.InPort, HasLabel: true, Label: ctx.labelIn, QoS: -1},
				Actions:  actions,
			}
		}
		return install(seg.Dev, rule)
	}

	local := c.alloc.Next()
	first, last := segs[0], segs[len(segs)-1]

	// Ingress.
	switch ctx.kind {
	case kindClassify:
		m := ctx.match
		m.MatchNoLabel = true
		m.HasLabel = false
		m.InPort = first.InPort
		var actions []dataplane.Action
		if stack {
			for _, l := range ctx.pushChain {
				actions = append(actions, dataplane.Push(l))
			}
		}
		actions = append(actions, dataplane.Push(local), dataplane.Output(first.OutPort))
		if err := install(first.Dev, dataplane.Rule{Priority: 100 + version, Match: m, Actions: actions}); err != nil {
			return err
		}
	default:
		mode := pathimpl.ModeSwap
		if stack {
			mode = pathimpl.ModeStack
		}
		if err := install(first.Dev, pathimpl.IngressRule(mode, ctx.labelIn, local, first.InPort, first.OutPort, owner, version)); err != nil {
			return err
		}
	}

	// Transit middles.
	for _, seg := range segs[1 : len(segs)-1] {
		if err := install(seg.Dev, pathimpl.TransitRule(local, seg.InPort, seg.OutPort, owner, version)); err != nil {
			return err
		}
	}

	// Egress.
	var actions []dataplane.Action
	switch ctx.kind {
	case kindTerminal:
		pops := 1
		if stack {
			pops += ctx.parentPops
		}
		actions = make([]dataplane.Action, 0, pops+1)
		for i := 0; i < pops; i++ {
			actions = append(actions, dataplane.Pop())
		}
		actions = append(actions, dataplane.Output(last.OutPort))
	default: // classify and transit share egress shape
		if stack || ctx.labelOut == dataplane.NoLabel {
			actions = []dataplane.Action{dataplane.Pop(), dataplane.Output(last.OutPort)}
		} else {
			actions = []dataplane.Action{dataplane.Swap(ctx.labelOut), dataplane.Output(last.OutPort)}
		}
	}
	return install(last.Dev, dataplane.Rule{
		Priority: 60,
		Match:    dataplane.Match{InPort: last.InPort, HasLabel: true, Label: local, QoS: -1},
		Actions:  actions,
	})
}
