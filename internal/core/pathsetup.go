package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/pathimpl"
	"repro/internal/routing"
	"repro/internal/southbound"
)

// PathID identifies an installed path at the controller that set it up.
type PathID int

// PathRecord is the path-table entry the mobility application caches
// (§5.1).
type PathRecord struct {
	ID      PathID
	Owner   string
	Match   dataplane.Match
	Cost    routing.Cost
	Devices []dataplane.DeviceID
	Active  bool
	Version int

	// lastPath is the currently installed route, kept for reroute
	// rollback (nil for policy paths).
	lastPath *routing.Path
	// demand is the bandwidth reservation the path carries.
	demand float64
}

// ErrEmptyPath is returned for a path with no segments.
var ErrEmptyPath = errors.New("core: empty path")

// translationKind classifies a virtual rule for recursive translation.
type translationKind int

const (
	// kindClassify starts a path at a flow-classification point (a G-BS /
	// access switch).
	kindClassify translationKind = iota
	// kindTransit carries an ancestor's label across the region.
	kindTransit
	// kindTerminal ends the ancestor's path: labels pop before the final
	// output (an Internet egress or radio delivery).
	kindTerminal
)

// ruleCtx is the label context of one translated path installation.
type ruleCtx struct {
	kind translationKind
	// match is the flow match for classification rules.
	match dataplane.Match
	// labelIn is the ancestor label on packets entering the region
	// (transit/terminal).
	labelIn dataplane.Label
	// labelOut is the label packets must carry when leaving the region
	// (swap mode; NoLabel = leave unlabeled).
	labelOut dataplane.Label
	// pushChain lists ancestor labels to push at classification in stack
	// mode, bottom first (§4.3: "push the stack [R P]").
	pushChain []dataplane.Label
	// parentPops is the number of ancestor labels a terminal rule pops in
	// stack mode.
	parentPops int
	// demand is the bandwidth reservation (Mbps) each installed rule
	// carries (0 = best-effort).
	demand float64
}

// SetupPath implements the northbound PathSetup(match fields, path) API
// (§4.3): it installs an end-to-end path in this controller's topology.
// Rules on gigantic switches translate recursively in the children; every
// physical packet carries at most one label under ModeSwap.
func (c *Controller) SetupPath(match dataplane.Match, path *routing.Path) (PathID, error) {
	return c.SetupPathWithDemand(match, path, 0)
}

// SetupPathWithDemand installs a path whose rules reserve demandMbps on
// every traversed link (admission control against the §3.2 bandwidth
// metrics). Installation fails, with full rollback, when any link cannot
// admit the demand.
func (c *Controller) SetupPathWithDemand(match dataplane.Match, path *routing.Path, demandMbps float64) (PathID, error) {
	start := time.Now() //softmow:allow determinism wall clock feeds the setup-latency histogram only, never control decisions
	c.mu.Lock()
	c.nextPath++
	id := c.nextPath
	version := c.versions.Next()
	owner := fmt.Sprintf("%s/p%d", c.ID, id)
	c.mu.Unlock()

	ctx := ruleCtx{kind: kindClassify, match: match, demand: demandMbps}
	if err := c.installPathRules(ctx, path, owner, version); err != nil {
		// flushBatch already scrubbed this (only) version from every
		// device the batch touched; nothing else carries the fresh owner.
		return 0, err
	}
	rec := &PathRecord{
		ID: id, Owner: owner, Match: match, Cost: path.Cost,
		Devices: path.Devices(), Active: true, Version: version,
		lastPath: path, demand: demandMbps,
	}
	c.mu.Lock()
	c.paths[id] = rec
	c.mu.Unlock()
	setupLatency.Observe(time.Since(start))
	return id, nil
}

// Path returns a path record.
func (c *Controller) Path(id PathID) (PathRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.paths[id]
	if !ok {
		return PathRecord{}, false
	}
	return *r, true
}

// NumPaths reports active path count.
func (c *Controller) NumPaths() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.paths {
		if r.Active {
			n++
		}
	}
	return n
}

// TeardownPath removes a path's rules everywhere (recursively through
// children) and deactivates the record (§5.1 deactivatePath).
func (c *Controller) TeardownPath(id PathID) error {
	c.mu.Lock()
	rec, ok := c.paths[id]
	if ok {
		rec.Active = false
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown path %d", id)
	}
	start := time.Now() //softmow:allow determinism wall clock feeds the teardown-latency histogram only, never control decisions
	devs := make([]Device, 0, len(rec.Devices))
	for _, devID := range rec.Devices {
		if d := c.Device(devID); d != nil {
			devs = append(devs, d)
		}
	}
	// Teardown is best-effort: the record is already deactivated, removals
	// are idempotent filters, and a device that failed here is either gone
	// (its rules died with it) or will be scrubbed by a later delete. The
	// deletes fan out with pipelined fences, so a multi-region path tears
	// down in one wire round trip.
	//softmow:allow errdiscard best-effort teardown of a deactivated path
	_ = c.fanPerDevice(devs,
		func(d Device, cb func(error)) bool {
			ar, ok := d.(asyncRemover)
			return ok && ar.tryRemoveRulesAsync(southbound.FlowDeleteOwner, rec.Owner, 0, cb)
		},
		func(d Device) error { return d.RemoveRules(rec.Owner) })
	teardownLatency.Observe(time.Since(start))
	return nil
}

// PrepareReroute installs a new version of an active path alongside the
// old one (§6 consistent path setup: "the new path and packets are
// assigned a new version number"). New classification rules carry a higher
// priority, so new packets take the new path immediately, while "packets
// with the old version number can still use old rules to guarantee
// reachability". Call CommitReroute to retire the old version.
func (c *Controller) PrepareReroute(id PathID, newPath *routing.Path) error {
	c.mu.Lock()
	rec, ok := c.paths[id]
	if !ok || !rec.Active {
		c.mu.Unlock()
		return fmt.Errorf("core: path %d not active", id)
	}
	match := rec.Match
	owner := rec.Owner
	demand := rec.demand
	version := c.versions.Next()
	c.mu.Unlock()

	ctx := ruleCtx{kind: kindClassify, match: match, demand: demand}
	if err := c.installPathRules(ctx, newPath, owner, version); err != nil {
		// §6: rollback is version-exact (flushBatch scrubbed only the new
		// version), so the old version's rules were never disturbed —
		// make-before-break means they kept carrying traffic throughout.
		// The record simply stays at its previous version; no
		// remove-everything-and-reinstall round is needed.
		return err
	}
	c.mu.Lock()
	rec.Version = version
	rec.Cost = newPath.Cost
	rec.Devices = dedupeDevices(append(rec.Devices, newPath.Devices()...))
	rec.lastPath = newPath
	c.mu.Unlock()
	return nil
}

// CommitReroute removes the pre-update rule versions of a path, completing
// a consistent update.
func (c *Controller) CommitReroute(id PathID) error {
	c.mu.Lock()
	rec, ok := c.paths[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown path %d", id)
	}
	devs := make([]Device, 0, len(rec.Devices))
	for _, devID := range rec.Devices {
		if d := c.Device(devID); d != nil {
			devs = append(devs, d)
		}
	}
	return c.fanPerDevice(devs,
		func(d Device, cb func(error)) bool {
			ar, ok := d.(asyncRemover)
			return ok && ar.tryRemoveRulesAsync(southbound.FlowDeleteOwnerBefore, rec.Owner, rec.Version, cb)
		},
		func(d Device) error { return d.RemoveRulesBefore(rec.Owner, rec.Version) })
}

// ReroutePath performs a full consistent update: make-before-break with
// versioned rules.
func (c *Controller) ReroutePath(id PathID, newPath *routing.Path) error {
	start := time.Now() //softmow:allow determinism wall clock feeds the reroute-latency histogram only, never control decisions
	if err := c.PrepareReroute(id, newPath); err != nil {
		return err
	}
	if err := c.CommitReroute(id); err != nil {
		return err
	}
	rerouteLatency.Observe(time.Since(start))
	return nil
}

// TranslateRule is the RecA agent's entry point for virtual rules pushed
// by the parent onto this controller's exposed G-switch (§4.3): the rule
// is mapped onto internal paths between the referenced ports and installed
// recursively.
func (c *Controller) TranslateRule(r dataplane.Rule) error {
	c.mu.Lock()
	c.stats.RulesTranslated++
	c.mu.Unlock()
	ab := c.Abstraction()
	if ab == nil {
		return fmt.Errorf("core: %s: no abstraction for translation", c.ID)
	}

	dec := decodeActions(r.Actions)
	if !dec.hasOut {
		return fmt.Errorf("core: %s: virtual rule without output: %v", c.ID, &r)
	}
	outGp := ab.GSwitch.PortByID(dec.out)
	if outGp == nil {
		return fmt.Errorf("core: %s: virtual rule outputs to unknown port %d", c.ID, dec.out)
	}
	dst := outGp.Underlying
	g := c.Graph()

	if r.Match.MatchNoLabel {
		// Classification: fan out to the constituent attachments of the
		// G-BS referenced by the match's in-port (§4.3: installed "into
		// constituent access switches, each attached to a component
		// G-BS").
		srcs, err := c.classificationSources(r.Match.InPort)
		if err != nil {
			return err
		}
		ctx := ruleCtx{kind: kindClassify, pushChain: dec.pushes, demand: r.Demand}
		if n := len(dec.pushes); n > 0 {
			ctx.labelOut = dec.pushes[n-1]
		}
		// The whole fan-out accumulates into one batch: every source's
		// route must exist before a single rule is programmed, shared
		// devices between sources collect all their rules behind one
		// barrier, and a flush failure rolls the entire fan-out back
		// version-exactly (older versions of the same owner may still
		// carry traffic mid-update, §6).
		b := newRuleBatch()
		for _, src := range srcs {
			p, err := g.ShortestPath(src, dst, routing.MinHops, routing.Constraints{})
			if err != nil {
				return fmt.Errorf("core: %s: no internal path %v->%v: %w", c.ID, src, dst, err)
			}
			ctx.match = r.Match
			ctx.match.InPort = src.Port
			if err := c.appendPathRules(b, ctx, p, r.Owner, r.Version); err != nil {
				return err
			}
		}
		return c.flushBatch(b, r.Owner, r.Version)
	}

	if !r.Match.HasLabel {
		return fmt.Errorf("core: %s: virtual rule matches neither label nor flow: %v", c.ID, &r)
	}
	inGp := ab.GSwitch.PortByID(r.Match.InPort)
	if inGp == nil {
		return fmt.Errorf("core: %s: virtual rule from unknown port %d", c.ID, r.Match.InPort)
	}
	p, err := g.ShortestPath(inGp.Underlying, dst, routing.MinHops, routing.Constraints{})
	if err != nil {
		return fmt.Errorf("core: %s: no internal path %v->%v: %w", c.ID, inGp.Underlying, dst, err)
	}

	ctx := ruleCtx{labelIn: r.Match.Label, demand: r.Demand}
	switch {
	case dec.hasSwap:
		// Swap-mode region egress rule: carry labelIn across, leave with
		// the swapped-to label.
		ctx.kind = kindTransit
		ctx.labelOut = dec.swapTo
	case dec.pops > 0:
		ctx.kind = kindTerminal
		ctx.parentPops = dec.pops
	default:
		ctx.kind = kindTransit
		ctx.labelOut = r.Match.Label
	}
	// A flush failure scrubs exactly this version from the path devices
	// (flushBatch rollback), which is all this call can have installed.
	return c.installPathRules(ctx, p, r.Owner, r.Version)
}

// RemoveTranslated removes, recursively, all rules installed under an
// owner tag.
func (c *Controller) RemoveTranslated(owner string) error {
	// Removals are idempotent filters; a detached device's rules died with
	// it, so there is no failure mode the parent could act on.
	_ = c.runPerDevice(c.Devices(), func(d Device) error { return d.RemoveRules(owner) }) //softmow:allow errdiscard idempotent delete, nothing for the parent to act on
	return nil
}

// RemoveTranslatedBefore removes, recursively, an owner's rules older than
// version (§6 consistent updates).
func (c *Controller) RemoveTranslatedBefore(owner string, version int) error {
	//softmow:allow errdiscard idempotent delete, nothing for the parent to act on
	_ = c.runPerDevice(c.Devices(), func(d Device) error { return d.RemoveRulesBefore(owner, version) })
	return nil
}

// RemoveTranslatedVersion removes, recursively, exactly an owner's rules of
// one version — rollback of a partial translation that must leave older
// live versions untouched.
func (c *Controller) RemoveTranslatedVersion(owner string, version int) error {
	//softmow:allow errdiscard idempotent delete, nothing for the parent to act on
	_ = c.runPerDevice(c.Devices(), func(d Device) error { return d.RemoveRulesVersion(owner, version) })
	return nil
}

// classificationSources resolves a G-BS attach port to the underlying
// attachment points where classification rules must be installed.
func (c *Controller) classificationSources(gport dataplane.PortID) ([]dataplane.PortRef, error) {
	ab := c.Abstraction()
	gp := ab.GSwitch.PortByID(gport)
	if gp == nil || gp.GBS == "" {
		return nil, fmt.Errorf("core: %s: classification in-port %d is not a G-BS attachment", c.ID, gport)
	}
	var gbs *dataplane.GBSInfo
	for i := range ab.GBSes {
		if ab.GBSes[i].ID == gp.GBS {
			gbs = &ab.GBSes[i]
			break
		}
	}
	if gbs == nil {
		return nil, fmt.Errorf("core: %s: unknown G-BS %s", c.ID, gp.GBS)
	}
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	if gbs.Border {
		for _, r := range cfg.Radios {
			if r.ID == gbs.ID {
				return []dataplane.PortRef{r.Attach}, nil
			}
		}
		return nil, fmt.Errorf("core: %s: border G-BS %s has no attachment", c.ID, gbs.ID)
	}
	// Aggregated internal G-BS: classify at every internal attachment.
	var out []dataplane.PortRef
	for _, r := range cfg.Radios {
		if !r.Border {
			out = append(out, r.Attach)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: %s: internal G-BS %s has no attachments", c.ID, gbs.ID)
	}
	return out, nil
}

// decoded is the action summary of a virtual rule.
type decoded struct {
	out    dataplane.PortID
	hasOut bool
	pops   int
	pushes []dataplane.Label
	swapTo dataplane.Label
	hasSwap bool
}

func decodeActions(actions []dataplane.Action) decoded {
	var d decoded
	for _, a := range actions {
		switch a.Op {
		case dataplane.OpPopLabel:
			d.pops++
		case dataplane.OpPushLabel:
			d.pushes = append(d.pushes, a.Label)
		case dataplane.OpSwapLabel:
			d.swapTo = a.Label
			d.hasSwap = true
		case dataplane.OpOutput:
			d.out = a.Port
			d.hasOut = true
			return d
		}
	}
	return d
}

// installPathRules installs one path in this controller's topology under a
// label context: the path's rules are accumulated into per-device batches
// and flushed concurrently across the path devices, one barrier per device
// (flushBatch). Rules landing on G-switch devices recurse into children.
func (c *Controller) installPathRules(ctx ruleCtx, path *routing.Path, owner string, version int) error {
	b := newRuleBatch()
	if err := c.appendPathRules(b, ctx, path, owner, version); err != nil {
		return err
	}
	return c.flushBatch(b, owner, version)
}

// appendPathRules constructs one path's rules under a label context and
// accumulates them into b; nothing is programmed until the batch is
// flushed with the same owner and version (which flushBatch stamps onto
// every rule — version is needed here only for classify-rule priorities).
func (c *Controller) appendPathRules(b *ruleBatch, ctx ruleCtx, path *routing.Path, owner string, version int) error {
	segs := path.Segments()
	if len(segs) == 0 {
		return ErrEmptyPath
	}
	install := func(devID dataplane.DeviceID, rule dataplane.Rule) error {
		rule.Demand = ctx.demand
		b.add(devID, rule)
		return nil
	}

	stack := c.Mode == pathimpl.ModeStack

	if len(segs) == 1 {
		seg := segs[0]
		var rule dataplane.Rule
		switch ctx.kind {
		case kindClassify:
			m := ctx.match
			m.MatchNoLabel = true
			m.HasLabel = false
			m.InPort = seg.InPort
			var actions []dataplane.Action
			if stack {
				for _, l := range ctx.pushChain {
					actions = append(actions, dataplane.Push(l))
				}
			} else if ctx.labelOut != dataplane.NoLabel {
				actions = append(actions, dataplane.Push(ctx.labelOut))
			}
			actions = append(actions, dataplane.Output(seg.OutPort))
			rule = dataplane.Rule{Priority: 100 + version, Match: m, Actions: actions}
		case kindTransit:
			m := dataplane.Match{InPort: seg.InPort, HasLabel: true, Label: ctx.labelIn, QoS: -1}
			var actions []dataplane.Action
			if !stack && ctx.labelOut != ctx.labelIn && ctx.labelOut != dataplane.NoLabel {
				actions = append(actions, dataplane.Swap(ctx.labelOut))
			}
			actions = append(actions, dataplane.Output(seg.OutPort))
			rule = dataplane.Rule{Priority: 60, Match: m, Actions: actions}
		case kindTerminal:
			pops := ctx.parentPops
			if pops == 0 {
				pops = 1
			}
			actions := make([]dataplane.Action, 0, pops+1)
			for i := 0; i < pops; i++ {
				actions = append(actions, dataplane.Pop())
			}
			actions = append(actions, dataplane.Output(seg.OutPort))
			rule = dataplane.Rule{
				Priority: 60,
				Match:    dataplane.Match{InPort: seg.InPort, HasLabel: true, Label: ctx.labelIn, QoS: -1},
				Actions:  actions,
			}
		}
		return install(seg.Dev, rule)
	}

	local := c.alloc.Next()
	first, last := segs[0], segs[len(segs)-1]

	// Ingress.
	switch ctx.kind {
	case kindClassify:
		m := ctx.match
		m.MatchNoLabel = true
		m.HasLabel = false
		m.InPort = first.InPort
		var actions []dataplane.Action
		if stack {
			for _, l := range ctx.pushChain {
				actions = append(actions, dataplane.Push(l))
			}
		}
		actions = append(actions, dataplane.Push(local), dataplane.Output(first.OutPort))
		if err := install(first.Dev, dataplane.Rule{Priority: 100 + version, Match: m, Actions: actions}); err != nil {
			return err
		}
	default:
		mode := pathimpl.ModeSwap
		if stack {
			mode = pathimpl.ModeStack
		}
		if err := install(first.Dev, pathimpl.IngressRule(mode, ctx.labelIn, local, first.InPort, first.OutPort, owner, version)); err != nil {
			return err
		}
	}

	// Transit middles.
	for _, seg := range segs[1 : len(segs)-1] {
		if err := install(seg.Dev, pathimpl.TransitRule(local, seg.InPort, seg.OutPort, owner, version)); err != nil {
			return err
		}
	}

	// Egress.
	var actions []dataplane.Action
	switch ctx.kind {
	case kindTerminal:
		pops := 1
		if stack {
			pops += ctx.parentPops
		}
		actions = make([]dataplane.Action, 0, pops+1)
		for i := 0; i < pops; i++ {
			actions = append(actions, dataplane.Pop())
		}
		actions = append(actions, dataplane.Output(last.OutPort))
	default: // classify and transit share egress shape
		if stack || ctx.labelOut == dataplane.NoLabel {
			actions = []dataplane.Action{dataplane.Pop(), dataplane.Output(last.OutPort)}
		} else {
			actions = []dataplane.Action{dataplane.Swap(ctx.labelOut), dataplane.Output(last.OutPort)}
		}
	}
	return install(last.Dev, dataplane.Rule{
		Priority: 60,
		Match:    dataplane.Match{InPort: last.InPort, HasLabel: true, Label: local, QoS: -1},
		Actions:  actions,
	})
}
