package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataplane"
	"repro/internal/metrics"
	"repro/internal/southbound"
)

// Southbound rule-programming observability. Batches and barriers count
// wire messages on ConnDevices; sync_roundtrips counts every blocking
// request round trip (the quantity batching exists to reduce). The
// histograms time whole logical operations — path setup, teardown,
// reroute — and individual batch flushes.
var (
	connBatches        = metrics.NewCounter("core.southbound.batches")
	connFlowMods       = metrics.NewCounter("core.southbound.flowmods")
	connBarriers       = metrics.NewCounter("core.southbound.barriers")
	connBarrierRetries = metrics.NewCounter("core.southbound.barrier_retries")
	connSyncRoundTrips = metrics.NewCounter("core.southbound.sync_roundtrips")
	// Adaptive-timeout observability: every accepted RTT sample, the
	// attempt timeouts the estimator armed, and barrier replies that
	// arrived after their fence expired (the spurious-retry fingerprint
	// adaptive timeouts exist to suppress).
	connRTTSamples          = metrics.NewCounter("core.southbound.rtt_samples")
	connRTTObserved         = metrics.NewDurationHist("core.southbound.rtt_observed")
	connRTTTimeout          = metrics.NewDurationHist("core.southbound.rtt_timeout")
	connStaleBarrierReplies = metrics.NewCounter("core.southbound.rtt_stale_replies")
	flushRollbacks          = metrics.NewCounter("core.southbound.flush_rollbacks")
	flushLatency            = metrics.NewDurationHist("core.southbound.flush_latency")
	setupLatency            = metrics.NewDurationHist("core.pathsetup.setup_latency")
	teardownLatency         = metrics.NewDurationHist("core.pathsetup.teardown_latency")
	rerouteLatency          = metrics.NewDurationHist("core.pathsetup.reroute_latency")
)

// BatchInstaller is the optional Device extension for batched rule
// programming: all rules land on the device fenced by at most one
// barrier round trip. On error the device may hold any prefix of the
// batch — callers are expected to roll the affected owner/version back
// with RemoveRulesVersion. Devices without the extension fall back to
// per-rule InstallRule (see installRules).
type BatchInstaller interface {
	InstallRules(rules []dataplane.Rule) error
}

// remoteDevice marks Device implementations whose rule programming
// leaves the process (a wire protocol round trip, or a delegation into a
// child controller). Only batches touching at least one remote device
// are fanned out concurrently: for in-process switches the goroutine
// hand-off costs more than the installs it would overlap, and keeping
// them serial preserves deterministic install order for the
// fault-injection harness's seed replay.
type remoteDevice interface {
	remoteSouthbound()
}

// RemoteSouthbound marks a Device implementation outside this package as
// remote for southbound fan-out purposes (see remoteDevice): embed it in
// any wrapper whose rule programming pays a wire round trip, so batches
// touching it flush concurrently across devices.
type RemoteSouthbound struct{}

func (RemoteSouthbound) remoteSouthbound() {}

// installRules programs a batch of rules on one device, via the
// BatchInstaller fast path when available.
func installRules(d Device, rules []dataplane.Rule) error {
	if bi, ok := d.(BatchInstaller); ok {
		return bi.InstallRules(rules)
	}
	for _, r := range rules {
		if err := d.InstallRule(r); err != nil {
			return err
		}
	}
	return nil
}

// ruleBatch accumulates the rules of one logical operation grouped per
// device, preserving first-touch device order so serial flushes install
// along the path direction.
type ruleBatch struct {
	order []dataplane.DeviceID
	rules map[dataplane.DeviceID][]dataplane.Rule
	size  int
}

func newRuleBatch() *ruleBatch {
	return &ruleBatch{rules: make(map[dataplane.DeviceID][]dataplane.Rule)}
}

func (b *ruleBatch) add(dev dataplane.DeviceID, r dataplane.Rule) {
	if _, seen := b.rules[dev]; !seen {
		b.order = append(b.order, dev)
	}
	b.rules[dev] = append(b.rules[dev], r)
	b.size++
}

// asyncInstaller is the optional Device extension for pipelined batch
// installs: the device enqueues the batch, fences it with a barrier-ID
// completion, and invokes the callback when the fence resolves. The
// callback runs on the device's receive or deadline goroutine and must
// not block.
type asyncInstaller interface {
	tryInstallRulesAsync(rules []dataplane.Rule, cb func(error)) bool
}

// asyncRemover is the delete-side counterpart of asyncInstaller, used for
// teardown and rollback fan-out.
type asyncRemover interface {
	tryRemoveRulesAsync(cmd southbound.FlowModCommand, owner string, version int, cb func(error)) bool
}

// fanPerDevice overlaps one action per device. Devices capable of
// asynchronous completion (ConnDevice) have their modifications and
// fences issued back to back and joined at the end, so N remote devices
// cost roughly one wire round trip of wall time — with no goroutine
// hand-off per device. Devices without the capability run through
// runPerDevice (concurrent for remote devices, serial otherwise). First
// error wins, and every device is always visited.
func (c *Controller) fanPerDevice(devs []Device, tryAsync func(Device, func(error)) bool, syncF func(Device) error) error {
	if c.SerialSouthbound || len(devs) == 0 {
		return c.runPerDevice(devs, syncF)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	var syncDevs []Device
	for _, d := range devs {
		wg.Add(1)
		if tryAsync(d, func(err error) { record(err); wg.Done() }) {
			continue
		}
		wg.Done()
		syncDevs = append(syncDevs, d)
	}
	if len(syncDevs) > 0 {
		record(c.runPerDevice(syncDevs, syncF))
	}
	wg.Wait()
	return firstErr
}

// runPerDevice applies f to every device, concurrently when the set
// contains a remote device (and the controller is not forced serial),
// first error wins. Serial runs visit devices in slice order and stop at
// the first error; concurrent runs always visit every device.
func (c *Controller) runPerDevice(devs []Device, f func(Device) error) error {
	concurrent := !c.SerialSouthbound && len(devs) > 1
	if concurrent {
		concurrent = false
		for _, d := range devs {
			if _, ok := d.(remoteDevice); ok {
				concurrent = true
				break
			}
		}
	}
	if !concurrent {
		for _, d := range devs {
			if err := f(d); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, d := range devs {
		wg.Add(1)
		go func(d Device) {
			defer wg.Done()
			if err := f(d); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	return firstErr
}

// flushBatch programs an accumulated batch: owner and version are
// stamped onto every rule, all devices are resolved up front (so an
// unknown device fails the operation before anything is installed), and
// the per-device batches fan out concurrently across remote devices —
// each fenced by a single barrier (ConnDevice.InstallRules). On any
// failure every device of the batch is scrubbed of exactly this version
// (RemoveRulesVersion), which cannot disturb older versions of the same
// owner still carrying traffic mid-update (§6).
func (c *Controller) flushBatch(b *ruleBatch, owner string, version int) error {
	if b == nil || b.size == 0 {
		return nil
	}
	start := time.Now() //softmow:allow determinism wall clock feeds the flush-latency histogram only, never control decisions
	devs := make([]Device, 0, len(b.order))
	for _, id := range b.order {
		d := c.Device(id)
		if d == nil {
			return fmt.Errorf("core: %s: path device %s not attached", c.ID, id)
		}
		rules := b.rules[id]
		for i := range rules {
			rules[i].Owner = owner
			rules[i].Version = version
		}
		devs = append(devs, d)
	}
	c.mu.Lock()
	c.stats.RulesInstalled += b.size
	c.mu.Unlock()
	err := c.fanPerDevice(devs,
		func(d Device, cb func(error)) bool {
			ai, ok := d.(asyncInstaller)
			return ok && ai.tryInstallRulesAsync(b.rules[d.ID()], cb)
		},
		func(d Device) error { return installRules(d, b.rules[d.ID()]) })
	if err != nil {
		flushRollbacks.Inc()
		// The install error is what the caller acts on; the scrub is
		// best-effort and idempotent (version filters match nothing once
		// removed), so its own error carries no extra signal. It stays
		// version-exact: only the batches this flush fenced are removed.
		//softmow:allow errdiscard rollback is best-effort, the install error propagates
		_ = c.fanPerDevice(devs,
			func(d Device, cb func(error)) bool {
				ar, ok := d.(asyncRemover)
				return ok && ar.tryRemoveRulesAsync(southbound.FlowDeleteOwnerVersion, owner, version, cb)
			},
			func(d Device) error { return d.RemoveRulesVersion(owner, version) })
		return err
	}
	flushLatency.Observe(time.Since(start))
	return nil
}
