// Package reca computes SoftMoW's recursive abstractions (§3.1–3.2): given
// a controller's NIB view and its radio/middlebox configuration, it builds
// the single G-switch (border ports + virtual fabric), the G-BSes (border
// BS groups exposed one-to-one, internal ones aggregated, §5.2), and one
// G-middlebox per middlebox type that the controller exposes to its parent.
//
// The same computation applies at every level: a leaf abstracts physical
// switches and BS groups; a non-leaf abstracts child G-switches and child
// G-BSes. Only the NIB contents differ.
package reca

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dataplane"
	"repro/internal/metrics"
	"repro/internal/nib"
	"repro/internal/routing"
)

// Recompute observability: how often abstractions are recomputed and how
// long the full recompute and its fabric fill take (§3.2 is the per-event
// hot path above the leaf level).
var (
	computeCount   = metrics.NewCounter("reca.compute.count")
	computeLatency = metrics.NewDurationHist("reca.compute.latency")
	fabricLatency  = metrics.NewDurationHist("reca.fabric.latency")
)

// RadioAttachment configures one radio device in the controller's scope: a
// physical BS group (leaf level) or a child-exposed G-BS (higher levels).
type RadioAttachment struct {
	ID dataplane.DeviceID
	// Attach is the switch port the radio device hangs off. Port 0 means
	// "the device itself" (leaf-level groups attach to their access switch
	// as a whole).
	Attach dataplane.PortRef
	// Border marks attachments that must be exposed one-to-one so
	// ancestors can run fine-grained region optimization (§5.2).
	Border bool
	// Centroid is the radio coverage centroid.
	Centroid dataplane.GeoPoint
	// Constituents lists underlying group IDs (itself, for leaf groups).
	Constituents []dataplane.DeviceID
}

// MiddleboxAttachment configures one middlebox instance (or child
// G-middlebox).
type MiddleboxAttachment struct {
	ID       dataplane.DeviceID
	Type     dataplane.MiddleboxType
	Attach   dataplane.PortRef
	Capacity float64
	Load     float64
}

// Config is the management-plane-supplied configuration for abstraction
// (§4.1: devices that do not speak the discovery protocol "can also be
// configured by the management plane").
type Config struct {
	Radios      []RadioAttachment
	Middleboxes []MiddleboxAttachment
}

// Stats summarizes what the controller discovered versus exposed — the
// Table 1 accounting.
type Stats struct {
	Devices      int
	Ports        int
	Links        int
	ExposedPorts int
}

// ExposedPct returns the Table 1 "Exposed Ports (%)" column.
func (s Stats) ExposedPct() float64 {
	if s.Ports == 0 {
		return 0
	}
	return float64(s.ExposedPorts) / float64(s.Ports) * 100
}

// Abstraction is the full set of logical entities a controller exposes.
type Abstraction struct {
	GSwitch      dataplane.GSwitchInfo
	GBSes        []dataplane.GBSInfo
	GMiddleboxes []dataplane.GMiddleboxInfo
	Stats        Stats
}

// GSwitchID names the G-switch a controller exposes.
func GSwitchID(controllerID string) dataplane.DeviceID {
	return dataplane.DeviceID("GS-" + controllerID)
}

// InternalGBSID names the aggregated internal G-BS (the "I_B" node of
// Fig. 7).
func InternalGBSID(controllerID string) dataplane.DeviceID {
	return dataplane.DeviceID("I-" + controllerID)
}

// Compute builds the abstraction for controller ctrlID from its NIB view
// and configuration.
func Compute(ctrlID string, n *nib.NIB, cfg Config) Abstraction {
	return ComputeWithGraph(ctrlID, n, cfg, nil)
}

// ComputeWithGraph is Compute with an optional prebuilt routing graph over
// n (the controller's cached graph); pass nil to have the fabric fill
// build its own. The graph must reflect n's current contents.
func ComputeWithGraph(ctrlID string, n *nib.NIB, cfg Config, g *routing.Graph) Abstraction {
	start := time.Now()
	defer func() {
		computeCount.Inc()
		computeLatency.Observe(time.Since(start))
	}()
	ab := Abstraction{GSwitch: dataplane.GSwitchInfo{ID: GSwitchID(ctrlID)}}

	// Index link endpoints: ports with a discovered internal link are
	// hidden; the rest are border or attachment ports.
	linked := make(map[dataplane.PortRef]bool)
	for _, l := range n.Links() {
		linked[l.A] = true
		linked[l.B] = true
		ab.Stats.Links++
	}
	attach := make(map[dataplane.PortRef]bool)
	for _, r := range cfg.Radios {
		if r.Attach.Port != 0 {
			attach[r.Attach] = true
		}
	}
	for _, m := range cfg.Middleboxes {
		if m.Attach.Port != 0 {
			attach[m.Attach] = true
		}
	}

	devices := n.Devices(dataplane.KindUnknown)
	nextGPort := dataplane.PortID(1)
	addGPort := func(gp dataplane.GPort) dataplane.PortID {
		gp.ID = nextGPort
		nextGPort++
		ab.GSwitch.Ports = append(ab.GSwitch.Ports, gp)
		return gp.ID
	}

	for _, d := range devices {
		if d.Kind != dataplane.KindSwitch && d.Kind != dataplane.KindGSwitch {
			continue
		}
		ab.Stats.Devices++
		for _, p := range d.Ports {
			ref := dataplane.PortRef{Dev: d.ID, Port: p.ID}
			// Radio and middlebox attachment ports are not switch-fabric
			// ports in the Table 1 accounting.
			if p.Radio != "" || attach[ref] {
				continue
			}
			ab.Stats.Ports++
			if !p.Up || linked[ref] {
				continue
			}
			// External (Internet/peering) or dangling (cross-region) port:
			// expose as a border port.
			addGPort(dataplane.GPort{
				Underlying:     ref,
				External:       p.External,
				ExternalDomain: p.ExternalDomain,
			})
			ab.Stats.ExposedPorts++
		}
	}

	// Radio exposure (§5.2): border attachments one-to-one; internal ones
	// aggregated into a single internal G-BS.
	var internal []RadioAttachment
	radios := append([]RadioAttachment(nil), cfg.Radios...)
	sort.Slice(radios, func(i, j int) bool { return radios[i].ID < radios[j].ID })
	for _, r := range radios {
		if !r.Border {
			internal = append(internal, r)
			continue
		}
		port := addGPort(dataplane.GPort{Underlying: r.Attach, GBS: r.ID})
		ab.GBSes = append(ab.GBSes, dataplane.GBSInfo{
			ID: r.ID, AttachPort: port, Border: true,
			Groups: constituentsOf(r), Centroid: r.Centroid,
		})
	}
	if len(internal) > 0 {
		// One internal G-BS; its attach port maps to the first internal
		// attachment (translation fans out to all constituents).
		port := addGPort(dataplane.GPort{Underlying: internal[0].Attach, GBS: InternalGBSID(ctrlID)})
		gbs := dataplane.GBSInfo{ID: InternalGBSID(ctrlID), AttachPort: port}
		var cx, cy float64
		for _, r := range internal {
			gbs.Groups = append(gbs.Groups, constituentsOf(r)...)
			cx += r.Centroid.X
			cy += r.Centroid.Y
		}
		gbs.Centroid = dataplane.GeoPoint{X: cx / float64(len(internal)), Y: cy / float64(len(internal))}
		ab.GBSes = append(ab.GBSes, gbs)
	}

	// G-middleboxes: aggregate per type (§3.1).
	byType := make(map[dataplane.MiddleboxType][]MiddleboxAttachment)
	for _, m := range cfg.Middleboxes {
		byType[m.Type] = append(byType[m.Type], m)
	}
	for _, mt := range dataplane.MiddleboxTypes() {
		ms := byType[mt]
		if len(ms) == 0 {
			continue
		}
		g := dataplane.GMiddleboxInfo{
			ID:   dataplane.DeviceID(fmt.Sprintf("GM-%s-%s", ctrlID, mt)),
			Type: mt,
		}
		for _, m := range ms {
			g.Capacity += m.Capacity
			g.Load += m.Load
			port := addGPort(dataplane.GPort{Underlying: m.Attach})
			g.AttachPorts = append(g.AttachPorts, port)
		}
		ab.GMiddleboxes = append(ab.GMiddleboxes, g)
	}

	ab.GSwitch.Fabric = computeFabric(n, g, ab.GSwitch.Ports)
	return ab
}

func constituentsOf(r RadioAttachment) []dataplane.DeviceID {
	if len(r.Constituents) > 0 {
		return append([]dataplane.DeviceID(nil), r.Constituents...)
	}
	return []dataplane.DeviceID{r.ID}
}

// fabricWorkers bounds the SSSP worker pool used by computeFabric; tests
// override it to force serial or heavily contended fills.
var fabricWorkers = runtime.GOMAXPROCS(0)

// fabricParallelThreshold is the minimum number of SSSP sweeps worth
// spawning goroutines for; below it the fill runs serially.
const fabricParallelThreshold = 4

// computeFabric fills the vFabric with shortest-path metrics between every
// exposed port pair (§3.2). Attach ports with Underlying.Port == 0 resolve
// to any port of the underlying device (intra-switch traversal is free).
//
// One SSSP per exposed port fills the whole fabric row (O(P·E log V)
// instead of O(P²·E log V)), and because the routing graph is immutable
// once built, the per-port sweeps are embarrassingly parallel: they fan
// out across a bounded worker pool, then the rows are committed to the
// fabric sequentially in port order so the result stays deterministic.
func computeFabric(n *nib.NIB, g *routing.Graph, ports []dataplane.GPort) *dataplane.VFabric {
	start := time.Now()
	defer func() { fabricLatency.Observe(time.Since(start)) }()
	if g == nil {
		g = routing.BuildGraph(n)
	}
	fabric := dataplane.NewVFabric()
	resolve := func(gp dataplane.GPort) (dataplane.PortRef, bool) {
		ref := gp.Underlying
		if ref.Port != 0 {
			return ref, g.HasNode(ref)
		}
		d, ok := n.Device(ref.Dev)
		if !ok || len(d.Ports) == 0 {
			return dataplane.PortRef{}, false
		}
		return dataplane.PortRef{Dev: ref.Dev, Port: d.Ports[0].ID}, true
	}
	resolved := make([]dataplane.PortRef, len(ports))
	oks := make([]bool, len(ports))
	sweeps := 0
	for i := range ports {
		resolved[i], oks[i] = resolve(ports[i])
		// The last port's row is never read (pairs are filled for j > i).
		if oks[i] && i < len(ports)-1 {
			sweeps++
		}
	}
	rows := make([]map[dataplane.PortRef]dataplane.PathMetrics, len(ports))
	workers := fabricWorkers
	if workers > sweeps {
		workers = sweeps
	}
	if workers < 1 || sweeps < fabricParallelThreshold {
		workers = 1
	}
	if workers == 1 {
		for i := 0; i < len(ports)-1; i++ {
			if oks[i] {
				rows[i] = g.MetricsFrom(resolved[i])
			}
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					rows[i] = g.MetricsFrom(resolved[i])
				}
			}()
		}
		for i := 0; i < len(ports)-1; i++ {
			if oks[i] {
				idx <- i
			}
		}
		close(idx)
		wg.Wait()
	}
	for i := 0; i < len(ports); i++ {
		row := rows[i]
		for j := i + 1; j < len(ports); j++ {
			if !oks[i] || !oks[j] {
				fabric.Set(ports[i].ID, ports[j].ID, dataplane.PathMetrics{})
				continue
			}
			m, ok := row[resolved[j]]
			if !ok {
				m = dataplane.PathMetrics{}
			}
			fabric.Set(ports[i].ID, ports[j].ID, m)
		}
	}
	return fabric
}

// HiddenLinkPct returns the share of total physical links hidden from an
// ancestor that sees only crossLinks of totalLinks (§7.3: "73% of total
// links are hidden at the root level").
func HiddenLinkPct(totalLinks, visibleLinks int) float64 {
	if totalLinks == 0 {
		return 0
	}
	return float64(totalLinks-visibleLinks) / float64(totalLinks) * 100
}

// SaneBandwidth clamps +Inf fabric bandwidths for display.
func SaneBandwidth(bw float64) float64 {
	if math.IsInf(bw, 1) {
		return math.MaxFloat64
	}
	return bw
}
