package reca

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/nib"
)

// gridNIB builds an n×n switch grid with 4 ports per switch. Dangling
// boundary ports (no link, up) are exposed as border ports by Compute, so
// an n×n grid yields 4(n-1) exposed ports — a many-border-port fabric fill.
func gridNIB(n int) *nib.NIB {
	nb := nib.New()
	id := func(r, c int) dataplane.DeviceID {
		return dataplane.DeviceID(fmt.Sprintf("SW%02d%02d", r, c))
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nb.PutDevice(nib.Device{ID: id(r, c), Kind: dataplane.KindSwitch,
				Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}, {ID: 3, Up: true}, {ID: 4, Up: true}}})
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				nb.PutLink(nib.Link{A: dataplane.PortRef{Dev: id(r, c), Port: 1},
					B: dataplane.PortRef{Dev: id(r, c+1), Port: 2},
					Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
			}
			if r+1 < n {
				nb.PutLink(nib.Link{A: dataplane.PortRef{Dev: id(r, c), Port: 3},
					B: dataplane.PortRef{Dev: id(r+1, c), Port: 4},
					Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
			}
		}
	}
	return nb
}

// TestComputeFabricParallelMatchesSerial pins the parallel fan-out to the
// serial fill: identical vFabric metrics for every port pair regardless of
// worker count.
func TestComputeFabricParallelMatchesSerial(t *testing.T) {
	nb := gridNIB(6)
	defer func(w int) { fabricWorkers = w }(fabricWorkers)

	fabricWorkers = 1
	serial := Compute("ctrl", nb, Config{})
	fabricWorkers = 8
	parallel := Compute("ctrl", nb, Config{})

	sf, pf := serial.GSwitch.Fabric, parallel.GSwitch.Fabric
	if sf.Len() != pf.Len() {
		t.Fatalf("fabric sizes differ: serial %d, parallel %d", sf.Len(), pf.Len())
	}
	if sf.Len() == 0 {
		t.Fatal("expected a non-empty fabric from the grid's dangling boundary ports")
	}
	for _, pp := range sf.Pairs() {
		sm, _ := sf.Get(pp.A, pp.B)
		pm, ok := pf.Get(pp.A, pp.B)
		if !ok || sm != pm {
			t.Fatalf("pair (%d,%d): serial %+v, parallel %+v (ok=%v)", pp.A, pp.B, sm, pm, ok)
		}
	}
}

// BenchmarkCompute measures a full abstraction recompute (border-port
// discovery + parallel fabric fill) over a 12×12 grid with 44 exposed
// border ports — the §3.2 recompute hot path.
func BenchmarkCompute(b *testing.B) {
	nb := gridNIB(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab := Compute("ctrl", nb, Config{})
		if ab.Stats.ExposedPorts == 0 {
			b.Fatal("no exposed ports")
		}
	}
}

// BenchmarkComputeSerial is BenchmarkCompute pinned to one fabric worker,
// isolating the parallel fan-out's contribution.
func BenchmarkComputeSerial(b *testing.B) {
	nb := gridNIB(12)
	defer func(w int) { fabricWorkers = w }(fabricWorkers)
	fabricWorkers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab := Compute("ctrl", nb, Config{})
		if ab.Stats.ExposedPorts == 0 {
			b.Fatal("no exposed ports")
		}
	}
}
