package reca

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/nib"
)

// leafNIB models a small leaf region:
//
//	SW1(p1 dangling-cross, p2) -- SW2(p1, p2, p3 external-egress)
//
// plus SW3 (access switch) linked to SW1.
func leafNIB() *nib.NIB {
	n := nib.New()
	n.PutDevice(nib.Device{ID: "SW1", Kind: dataplane.KindSwitch, Ports: []nib.PortRecord{
		{ID: 1, Up: true},              // dangling: cross-region port
		{ID: 2, Up: true},              // link to SW2
		{ID: 3, Up: true},              // link to SW3
		{ID: 4, Up: false},             // down port: ignored
	}})
	n.PutDevice(nib.Device{ID: "SW2", Kind: dataplane.KindSwitch, Ports: []nib.PortRecord{
		{ID: 1, Up: true},                                           // link to SW1
		{ID: 2, Up: true, External: true, ExternalDomain: "isp-1"},  // egress
	}})
	n.PutDevice(nib.Device{ID: "SW3", Kind: dataplane.KindSwitch, Ports: []nib.PortRecord{
		{ID: 1, Up: true}, // link to SW1
	}})
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "SW1", Port: 2}, B: dataplane.PortRef{Dev: "SW2", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "SW1", Port: 3}, B: dataplane.PortRef{Dev: "SW3", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
	return n
}

func leafConfig() Config {
	return Config{
		Radios: []RadioAttachment{
			{ID: "G0001", Attach: dataplane.PortRef{Dev: "SW3"}, Border: true,
				Centroid: dataplane.GeoPoint{X: 10, Y: 10}},
			{ID: "G0002", Attach: dataplane.PortRef{Dev: "SW3"},
				Centroid: dataplane.GeoPoint{X: 20, Y: 20}},
			{ID: "G0003", Attach: dataplane.PortRef{Dev: "SW3"},
				Centroid: dataplane.GeoPoint{X: 40, Y: 40}},
		},
		Middleboxes: []MiddleboxAttachment{
			{ID: "FW1", Type: dataplane.MBFirewall, Attach: dataplane.PortRef{Dev: "SW2"}, Capacity: 100, Load: 20},
			{ID: "FW2", Type: dataplane.MBFirewall, Attach: dataplane.PortRef{Dev: "SW1"}, Capacity: 50, Load: 10},
		},
	}
}

func TestComputeBorderPorts(t *testing.T) {
	ab := Compute("C1", leafNIB(), leafConfig())
	if ab.GSwitch.ID != "GS-C1" {
		t.Fatalf("gswitch id = %s", ab.GSwitch.ID)
	}
	// Border ports: SW1.1 (dangling) and SW2.2 (external). Down SW1.4 and
	// linked ports hidden.
	var borders, external int
	for _, p := range ab.GSwitch.Ports {
		if p.GBS == "" && p.Underlying.Port != 0 {
			if p.External {
				external++
				if p.ExternalDomain != "isp-1" {
					t.Fatalf("external domain = %q", p.ExternalDomain)
				}
			} else if p.Underlying == (dataplane.PortRef{Dev: "SW1", Port: 1}) {
				borders++
			}
		}
	}
	if external != 1 {
		t.Fatalf("external ports = %d", external)
	}
	if borders != 1 {
		t.Fatalf("cross-region border ports = %d", borders)
	}
}

func TestComputeStats(t *testing.T) {
	ab := Compute("C1", leafNIB(), leafConfig())
	if ab.Stats.Devices != 3 {
		t.Fatalf("devices = %d", ab.Stats.Devices)
	}
	if ab.Stats.Links != 2 {
		t.Fatalf("links = %d", ab.Stats.Links)
	}
	if ab.Stats.Ports != 7 { // SW1: 4 (one down), SW2: 2, SW3: 1
		t.Fatalf("ports = %d", ab.Stats.Ports)
	}
	if ab.Stats.ExposedPorts != 2 {
		t.Fatalf("exposed = %d", ab.Stats.ExposedPorts)
	}
	pct := ab.Stats.ExposedPct()
	if pct < 28.5 || pct > 28.6 {
		t.Fatalf("exposed pct = %v", pct)
	}
	if (Stats{}).ExposedPct() != 0 {
		t.Fatal("zero ports pct")
	}
}

func TestComputeGBSExposureRule(t *testing.T) {
	ab := Compute("C1", leafNIB(), leafConfig())
	// one border G-BS 1:1 plus one aggregated internal G-BS
	if len(ab.GBSes) != 2 {
		t.Fatalf("gbses = %+v", ab.GBSes)
	}
	var border, internal *dataplane.GBSInfo
	for i := range ab.GBSes {
		if ab.GBSes[i].Border {
			border = &ab.GBSes[i]
		} else {
			internal = &ab.GBSes[i]
		}
	}
	if border == nil || border.ID != "G0001" {
		t.Fatalf("border gbs = %+v", border)
	}
	if len(border.Groups) != 1 || border.Groups[0] != "G0001" {
		t.Fatalf("border constituents = %v", border.Groups)
	}
	if internal == nil || internal.ID != "I-C1" {
		t.Fatalf("internal gbs = %+v", internal)
	}
	if len(internal.Groups) != 2 {
		t.Fatalf("internal constituents = %v", internal.Groups)
	}
	if internal.Centroid.X != 30 || internal.Centroid.Y != 30 {
		t.Fatalf("internal centroid = %+v", internal.Centroid)
	}
	if border.AttachPort == 0 || internal.AttachPort == 0 {
		t.Fatal("G-BS attach ports must be exposed on the G-switch")
	}
	gp := ab.GSwitch.PortByID(border.AttachPort)
	if gp == nil || gp.GBS != "G0001" {
		t.Fatalf("border attach gport = %+v", gp)
	}
}

func TestComputeGMiddleboxAggregation(t *testing.T) {
	ab := Compute("C1", leafNIB(), leafConfig())
	if len(ab.GMiddleboxes) != 1 {
		t.Fatalf("gmiddleboxes = %+v", ab.GMiddleboxes)
	}
	gm := ab.GMiddleboxes[0]
	if gm.Type != dataplane.MBFirewall {
		t.Fatalf("type = %v", gm.Type)
	}
	if gm.Capacity != 150 || gm.Load != 30 {
		t.Fatalf("aggregate = %v/%v", gm.Load, gm.Capacity)
	}
	if len(gm.AttachPorts) != 2 {
		t.Fatalf("attach ports = %v", gm.AttachPorts)
	}
}

func TestComputeFabricMetrics(t *testing.T) {
	ab := Compute("C1", leafNIB(), leafConfig())
	fabric := ab.GSwitch.Fabric
	if fabric == nil || fabric.Len() == 0 {
		t.Fatal("no fabric")
	}
	// Find the cross-region border port (SW1.1) and external port (SW2.2).
	var crossPort, extPort dataplane.PortID
	for _, p := range ab.GSwitch.Ports {
		switch p.Underlying {
		case dataplane.PortRef{Dev: "SW1", Port: 1}:
			crossPort = p.ID
		case dataplane.PortRef{Dev: "SW2", Port: 2}:
			extPort = p.ID
		}
	}
	m, ok := fabric.Get(crossPort, extPort)
	if !ok || !m.Reachable {
		t.Fatalf("cross-ext pair = %+v %v", m, ok)
	}
	// SW1 -> SW2 is one link
	if m.Hops != 1 || m.Latency != 5*time.Millisecond {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Bandwidth != 1000 {
		t.Fatalf("bandwidth = %v", m.Bandwidth)
	}
}

func TestComputeFabricCoversGBSPorts(t *testing.T) {
	ab := Compute("C1", leafNIB(), leafConfig())
	var gbsPort, extPort dataplane.PortID
	for _, p := range ab.GSwitch.Ports {
		if p.GBS == "G0001" {
			gbsPort = p.ID
		}
		if p.External {
			extPort = p.ID
		}
	}
	m, ok := ab.GSwitch.Fabric.Get(gbsPort, extPort)
	if !ok || !m.Reachable {
		t.Fatalf("gbs-egress pair missing: %+v %v", m, ok)
	}
	// SW3 -> SW1 -> SW2: 2 links
	if m.Hops != 2 {
		t.Fatalf("gbs-egress hops = %d", m.Hops)
	}
}

func TestComputeOnNonLeafView(t *testing.T) {
	// A root view: two child G-switches with fabrics and a cross link.
	n := nib.New()
	f1 := dataplane.NewVFabric()
	f1.Set(1, 2, dataplane.PathMetrics{Hops: 3, Latency: 15 * time.Millisecond, Bandwidth: 800, Reachable: true})
	n.PutDevice(nib.Device{ID: "GS-A", Kind: dataplane.KindGSwitch,
		Ports:  []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true, External: true, ExternalDomain: "isp"}},
		Fabric: f1})
	f2 := dataplane.NewVFabric()
	f2.Set(1, 2, dataplane.PathMetrics{Hops: 2, Latency: 10 * time.Millisecond, Bandwidth: 900, Reachable: true})
	n.PutDevice(nib.Device{ID: "GS-B", Kind: dataplane.KindGSwitch,
		Ports:  []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}},
		Fabric: f2})
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "GS-A", Port: 1}, B: dataplane.PortRef{Dev: "GS-B", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})

	ab := Compute("root", n, Config{Radios: []RadioAttachment{
		{ID: "GBS-B1", Attach: dataplane.PortRef{Dev: "GS-B", Port: 2}, Border: true},
	}})
	if ab.Stats.Devices != 2 || ab.Stats.Links != 1 {
		t.Fatalf("stats = %+v", ab.Stats)
	}
	// GS-B.2 is a radio attach → not a border port; GS-A.2 is external.
	if ab.Stats.ExposedPorts != 1 {
		t.Fatalf("exposed = %d", ab.Stats.ExposedPorts)
	}
	// Fabric from the G-BS port to the external port prices the child
	// fabrics: GS-B(2→1: 2 hops) + link (1) + GS-A(1→2: 3 hops) = 6 hops.
	var gbsPort, extPort dataplane.PortID
	for _, p := range ab.GSwitch.Ports {
		if p.GBS != "" {
			gbsPort = p.ID
		} else if p.External {
			extPort = p.ID
		}
	}
	m, ok := ab.GSwitch.Fabric.Get(gbsPort, extPort)
	if !ok || !m.Reachable {
		t.Fatalf("pair missing")
	}
	if m.Hops != 6 {
		t.Fatalf("recursive hops = %d, want 6", m.Hops)
	}
	if m.Latency != 30*time.Millisecond {
		t.Fatalf("latency = %v", m.Latency)
	}
	if m.Bandwidth != 800 {
		t.Fatalf("bottleneck = %v", m.Bandwidth)
	}
}

func TestHiddenLinkPct(t *testing.T) {
	if got := HiddenLinkPct(100, 27); got != 73 {
		t.Fatalf("hidden pct = %v", got)
	}
	if HiddenLinkPct(0, 0) != 0 {
		t.Fatal("zero links")
	}
}

func TestComputeEmptyNIB(t *testing.T) {
	ab := Compute("C9", nib.New(), Config{})
	if len(ab.GSwitch.Ports) != 0 || len(ab.GBSes) != 0 || len(ab.GMiddleboxes) != 0 {
		t.Fatalf("empty abstraction = %+v", ab)
	}
	if ab.GSwitch.Fabric == nil {
		t.Fatal("fabric should exist even when empty")
	}
}

func TestUnreachablePairMarked(t *testing.T) {
	// Two disconnected switches, each with a dangling port.
	n := nib.New()
	n.PutDevice(nib.Device{ID: "SWA", Kind: dataplane.KindSwitch, Ports: []nib.PortRecord{{ID: 1, Up: true}}})
	n.PutDevice(nib.Device{ID: "SWB", Kind: dataplane.KindSwitch, Ports: []nib.PortRecord{{ID: 1, Up: true}}})
	ab := Compute("C1", n, Config{})
	if len(ab.GSwitch.Ports) != 2 {
		t.Fatalf("ports = %d", len(ab.GSwitch.Ports))
	}
	m, ok := ab.GSwitch.Fabric.Get(ab.GSwitch.Ports[0].ID, ab.GSwitch.Ports[1].ID)
	if !ok {
		t.Fatal("pair should be recorded")
	}
	if m.Reachable {
		t.Fatal("disconnected pair must be unreachable")
	}
}
