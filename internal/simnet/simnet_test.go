package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must run FIFO, got %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at time.Duration
	s.At(time.Second, func() {
		s.After(500*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1500*time.Millisecond {
		t.Fatalf("After fired at %v", at)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	s := New()
	ran := false
	s.After(-5*time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative After should clamp to now and still run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic when scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	ev := s.At(time.Second, func() { ran = true })
	s.Cancel(ev)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// double cancel is a no-op
	s.Cancel(ev)
	s.Cancel(nil)
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var got []int
	s.At(1*time.Second, func() { got = append(got, 1) })
	ev := s.At(2*time.Second, func() { got = append(got, 2) })
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.Cancel(ev)
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []int
	s.At(time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.At(3*time.Second, func() { got = append(got, 3) })
	end := s.RunUntil(2 * time.Second)
	if end != 2*time.Second {
		t.Fatalf("end = %v", end)
	}
	if len(got) != 2 {
		t.Fatalf("events at deadline should run: %v", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if len(got) != 3 {
		t.Fatalf("remaining event should run on next Run: %v", got)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func() { count++; s.Stop() })
	s.At(2*time.Second, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Stop should halt processing, count = %d", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("stopped event should stay queued")
	}
}

func TestStep(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func() { count++ })
	s.At(2*time.Second, func() { count++ })
	if !s.Step() {
		t.Fatal("step should run an event")
	}
	if count != 1 || s.Now() != time.Second {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
	s.Step()
	if s.Step() {
		t.Fatal("step on empty queue should be false")
	}
}

func TestProcessedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {})
	}
	s.Run()
	if s.Processed != 5 {
		t.Fatalf("Processed = %d", s.Processed)
	}
}

func TestNestedScheduling(t *testing.T) {
	// An event chain that reschedules itself n times must advance the
	// clock monotonically.
	s := New()
	var times []time.Duration
	var tick func()
	n := 0
	tick = func() {
		times = append(times, s.Now())
		n++
		if n < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if len(times) != 5 {
		t.Fatalf("ticks = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[i-1]+time.Second {
			t.Fatalf("non-monotone tick times %v", times)
		}
	}
}

func TestRNGDeterministicAndStreamIndependent(t *testing.T) {
	a1 := RNG(42, "alpha")
	a2 := RNG(42, "alpha")
	b := RNG(42, "beta")
	sameCount := 0
	for i := 0; i < 100; i++ {
		v1, v2, v3 := a1.Int63(), a2.Int63(), b.Int63()
		if v1 != v2 {
			t.Fatal("same seed+stream must reproduce")
		}
		if v1 == v3 {
			sameCount++
		}
	}
	if sameCount > 2 {
		t.Fatalf("streams look correlated: %d collisions", sameCount)
	}
}

// Property: for any set of non-negative offsets, events execute in
// nondecreasing time order.
func TestOrderPropertyQuick(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var ran []time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Millisecond
			s.At(d, func() { ran = append(ran, s.Now()) })
		}
		s.Run()
		if len(ran) != len(offsets) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
