// Package simnet provides the discrete-event simulation kernel used by the
// SoftMoW reproduction: a virtual clock, an event queue with deterministic
// tie-breaking, and a splittable deterministic random source.
//
// Every timing-sensitive experiment in the paper (discovery convergence,
// controller queuing delay, 48-hour handover time series) runs on virtual
// time so results are reproducible and independent of wall-clock load.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a closure scheduled to run at a virtual time.
type Event struct {
	At  time.Duration
	Run func()

	seq   uint64 // insertion order for deterministic FIFO tie-breaking
	index int    // heap index
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x interface{}) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; model concurrency by scheduling events.
type Sim struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	stopped bool

	// Processed counts events executed since construction (for tests and
	// runaway detection).
	Processed int
}

// New returns a simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a bug in the model.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	ev := &Event{At: t, Run: fn, seq: s.nextSeq}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-run or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(s.queue) || s.queue[ev.index] != ev {
		return
	}
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (s *Sim) Run() time.Duration {
	return s.RunUntil(1<<62 - 1)
}

// RunUntil executes events with At ≤ deadline (or until Stop/drain) and
// advances the clock to min(deadline, last event time). Events scheduled at
// exactly the deadline are executed.
func (s *Sim) RunUntil(deadline time.Duration) time.Duration {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		ev := s.queue[0]
		if ev.At > deadline {
			break
		}
		heap.Pop(&s.queue)
		ev.index = -1
		s.now = ev.At
		s.Processed++
		ev.Run()
	}
	if s.now < deadline && len(s.queue) == 0 {
		// Clock does not advance past the last event when draining; callers
		// that need the deadline reached can schedule a sentinel.
		return s.now
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Step executes exactly one event if one is queued, returning whether an
// event ran.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	ev.index = -1
	s.now = ev.At
	s.Processed++
	ev.Run()
	return true
}

// RNG derives a deterministic child random source from a root seed and a
// stream label, so independent model components draw from uncorrelated but
// reproducible streams.
func RNG(seed int64, stream string) *rand.Rand {
	h := int64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(stream); i++ {
		h ^= int64(stream[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}
