// Package interdomain models external (beyond the cellular WAN) path
// quality: per-(egress point, destination prefix) hop counts and RTTs.
//
// The paper drives Fig. 8/9 from the iPlane dataset — traceroutes from
// PlanetLab nodes to Internet destinations, replayed over multiple
// snapshots to capture routing changes (§7.2). We substitute a synthetic
// generator with the same essential structure: each destination prefix has
// a (virtual) location, so egress points closer to the prefix see fewer
// external hops and lower RTT, and successive snapshots jitter the metrics
// the way interdomain routing changes do.
package interdomain

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dataplane"
	"repro/internal/simnet"
)

// PrefixID identifies one Internet destination prefix.
type PrefixID string

// Metrics is the externally measured path quality from one egress point to
// one prefix (§4.2: "the network performance of each selected route is
// measured (e.g., hops, latency)").
type Metrics struct {
	Hops int
	RTT  time.Duration
}

// Route is one selected interdomain route: the RCP-style selection result a
// leaf controller advertises up the hierarchy (§4.2).
type Route struct {
	Prefix PrefixID
	// Egress names the egress point the route exits through.
	Egress string
	// EgressSwitch is the data-plane switch hosting the egress.
	EgressSwitch dataplane.DeviceID
	Metrics      Metrics
}

// GenParams configures table generation.
type GenParams struct {
	Seed        int64
	NumPrefixes int
	// Egresses lists the egress points with their geographic locations
	// (used for spatial correlation).
	Egresses []EgressSite
	// Snapshots is the number of routing snapshots (≥ 1).
	Snapshots int
	// PlaneSize matches the topology plane; prefixes are placed on a
	// surrounding ring to model destinations outside the WAN.
	PlaneSize float64
	// BaseHops is the minimum external hop count (paper example: egress
	// points "10 hops away from the address prefix").
	BaseHops int
}

func (p *GenParams) defaults() {
	if p.NumPrefixes == 0 {
		p.NumPrefixes = 11590 // Fig. 8 destination count
	}
	if p.Snapshots == 0 {
		p.Snapshots = 3
	}
	if p.PlaneSize == 0 {
		p.PlaneSize = 1000
	}
	if p.BaseHops == 0 {
		p.BaseHops = 8
	}
}

// EgressSite is an egress point and its location.
type EgressSite struct {
	ID  string
	Loc dataplane.GeoPoint
}

// Table holds per-snapshot external metrics for every (egress, prefix)
// pair.
type Table struct {
	prefixes []PrefixID
	egresses []string
	// metrics[snapshot][egressIdx][prefixIdx]
	metrics [][][]Metrics
	eIdx    map[string]int
	pIdx    map[PrefixID]int
}

// Generate builds a deterministic table.
func Generate(p GenParams) *Table {
	p.defaults()
	rng := simnet.RNG(p.Seed, "interdomain")
	t := &Table{
		eIdx: make(map[string]int, len(p.Egresses)),
		pIdx: make(map[PrefixID]int, p.NumPrefixes),
	}
	for i, e := range p.Egresses {
		t.egresses = append(t.egresses, e.ID)
		t.eIdx[e.ID] = i
	}

	// Each prefix has an anchor: the peering location through which it is
	// best reached. 70% anchor inside the metro plane (CDNs, regional
	// ISPs — egress choice matters a lot, the PAM'14 path-inflation
	// effect); 30% sit on a far ring (remote destinations, roughly
	// egress-insensitive).
	type ploc struct {
		id  PrefixID
		loc dataplane.GeoPoint
	}
	plocs := make([]ploc, p.NumPrefixes)
	center := dataplane.GeoPoint{X: p.PlaneSize / 2, Y: p.PlaneSize / 2}
	for i := 0; i < p.NumPrefixes; i++ {
		id := PrefixID(fmt.Sprintf("pfx%05d", i))
		var loc dataplane.GeoPoint
		if rng.Float64() < 0.7 {
			loc = dataplane.GeoPoint{X: rng.Float64() * p.PlaneSize, Y: rng.Float64() * p.PlaneSize}
		} else {
			angle := rng.Float64() * 2 * 3.141592653589793
			radius := p.PlaneSize * (1 + 2*rng.Float64())
			loc = dataplane.GeoPoint{
				X: center.X + radius*cos(angle),
				Y: center.Y + radius*sin(angle),
			}
		}
		plocs[i] = ploc{id, loc}
		t.prefixes = append(t.prefixes, id)
		t.pIdx[id] = i
	}

	// Per-snapshot metrics: hops grow with distance; RTT correlates with
	// hops; snapshots add jitter representing interdomain route changes.
	// The distance sensitivity reproduces the PAM'14 observation the paper
	// builds on: distant egress points inflate external paths badly.
	hopsPerUnit := 30.0 / (3 * p.PlaneSize) // strong vantage-point affinity
	t.metrics = make([][][]Metrics, p.Snapshots)
	for s := 0; s < p.Snapshots; s++ {
		t.metrics[s] = make([][]Metrics, len(p.Egresses))
		for e, site := range p.Egresses {
			row := make([]Metrics, p.NumPrefixes)
			for i, pl := range plocs {
				// Long-haul transit beyond the metro is efficient: the
				// egress-sensitive part of the path is the local detour,
				// so the distance term saturates at ~1.2 plane sizes.
				d := site.Loc.Dist(pl.loc)
				if max := 1.2 * p.PlaneSize; d > max {
					d = max
				}
				hops := p.BaseHops + int(d*hopsPerUnit) + rng.Intn(3)
				if s > 0 {
					hops += rng.Intn(3) - 1 // snapshot jitter, may improve
					if hops < 1 {
						hops = 1
					}
				}
				// ~2 ms per external hop plus distance propagation.
				rtt := time.Duration(hops)*2*time.Millisecond +
					time.Duration(d*25)*time.Microsecond
				row[i] = Metrics{Hops: hops, RTT: rtt}
			}
			t.metrics[s][e] = row
		}
	}
	return t
}

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }

// Prefixes returns all prefix IDs.
func (t *Table) Prefixes() []PrefixID { return t.prefixes }

// Egresses returns all egress IDs the table covers.
func (t *Table) Egresses() []string { return t.egresses }

// Snapshots reports the number of routing snapshots.
func (t *Table) Snapshots() int { return len(t.metrics) }

// Lookup returns the metrics for (egress, prefix) in a snapshot.
func (t *Table) Lookup(snapshot int, egress string, prefix PrefixID) (Metrics, bool) {
	if snapshot < 0 || snapshot >= len(t.metrics) {
		return Metrics{}, false
	}
	e, ok := t.eIdx[egress]
	if !ok {
		return Metrics{}, false
	}
	p, ok := t.pIdx[prefix]
	if !ok {
		return Metrics{}, false
	}
	return t.metrics[snapshot][e][p], true
}

// SelectRoutes performs the RCP-style route selection a leaf controller
// runs on behalf of one gateway switch (§4.2): for every prefix, the
// egress's measured route in the given snapshot. egressSwitch annotates the
// resulting routes.
func (t *Table) SelectRoutes(snapshot int, egress string, egressSwitch dataplane.DeviceID) []Route {
	e, ok := t.eIdx[egress]
	if !ok || snapshot < 0 || snapshot >= len(t.metrics) {
		return nil
	}
	routes := make([]Route, len(t.prefixes))
	for i, pfx := range t.prefixes {
		routes[i] = Route{
			Prefix: pfx, Egress: egress, EgressSwitch: egressSwitch,
			Metrics: t.metrics[snapshot][e][i],
		}
	}
	return routes
}

// BestEgress returns, for one prefix, the egress (among candidates; nil
// means all) with minimal external hops, ties broken by RTT.
func (t *Table) BestEgress(snapshot int, prefix PrefixID, candidates []string) (string, Metrics, bool) {
	cands := candidates
	if cands == nil {
		cands = t.egresses
	}
	var (
		bestID string
		best   Metrics
		found  bool
	)
	for _, id := range cands {
		m, ok := t.Lookup(snapshot, id, prefix)
		if !ok {
			continue
		}
		if !found || m.Hops < best.Hops || (m.Hops == best.Hops && m.RTT < best.RTT) {
			bestID, best, found = id, m, true
		}
	}
	return bestID, best, found
}
