package interdomain

import (
	"testing"

	"repro/internal/dataplane"
)

func twoEgressTable(seed int64, prefixes int) *Table {
	return Generate(GenParams{
		Seed:        seed,
		NumPrefixes: prefixes,
		Egresses: []EgressSite{
			{ID: "E1", Loc: dataplane.GeoPoint{X: 0, Y: 500}},
			{ID: "E2", Loc: dataplane.GeoPoint{X: 1000, Y: 500}},
		},
		Snapshots: 3,
	})
}

func TestGenerateShape(t *testing.T) {
	tb := twoEgressTable(1, 100)
	if len(tb.Prefixes()) != 100 {
		t.Fatalf("prefixes = %d", len(tb.Prefixes()))
	}
	if len(tb.Egresses()) != 2 {
		t.Fatalf("egresses = %v", tb.Egresses())
	}
	if tb.Snapshots() != 3 {
		t.Fatalf("snapshots = %d", tb.Snapshots())
	}
}

func TestGenerateDefaultPrefixCount(t *testing.T) {
	tb := Generate(GenParams{Seed: 1, Egresses: []EgressSite{{ID: "E1"}}, Snapshots: 1, NumPrefixes: 0})
	if len(tb.Prefixes()) != 11590 {
		t.Fatalf("default prefix count should match Fig. 8 (11590), got %d", len(tb.Prefixes()))
	}
}

func TestDeterministic(t *testing.T) {
	a, b := twoEgressTable(5, 50), twoEgressTable(5, 50)
	for _, pfx := range a.Prefixes() {
		ma, _ := a.Lookup(0, "E1", pfx)
		mb, _ := b.Lookup(0, "E1", pfx)
		if ma != mb {
			t.Fatalf("nondeterministic metrics for %s", pfx)
		}
	}
}

func TestLookupBounds(t *testing.T) {
	tb := twoEgressTable(1, 10)
	if _, ok := tb.Lookup(-1, "E1", "pfx00001"); ok {
		t.Fatal("negative snapshot")
	}
	if _, ok := tb.Lookup(99, "E1", "pfx00001"); ok {
		t.Fatal("snapshot out of range")
	}
	if _, ok := tb.Lookup(0, "nope", "pfx00001"); ok {
		t.Fatal("unknown egress")
	}
	if _, ok := tb.Lookup(0, "E1", "nope"); ok {
		t.Fatal("unknown prefix")
	}
	if m, ok := tb.Lookup(0, "E1", "pfx00001"); !ok || m.Hops < 1 || m.RTT <= 0 {
		t.Fatalf("valid lookup: %v %v", m, ok)
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Prefixes nearer E1 should, on aggregate, have fewer hops via E1 than
	// via E2 — the property that makes egress diversity matter (Fig. 8).
	tb := twoEgressTable(2, 2000)
	e1Wins, e2Wins := 0, 0
	for _, pfx := range tb.Prefixes() {
		m1, _ := tb.Lookup(0, "E1", pfx)
		m2, _ := tb.Lookup(0, "E2", pfx)
		switch {
		case m1.Hops < m2.Hops:
			e1Wins++
		case m2.Hops < m1.Hops:
			e2Wins++
		}
	}
	if e1Wins == 0 || e2Wins == 0 {
		t.Fatalf("no egress diversity: e1=%d e2=%d", e1Wins, e2Wins)
	}
	// both should win a sizeable share given symmetric placement
	if e1Wins < 400 || e2Wins < 400 {
		t.Fatalf("suspiciously skewed: e1=%d e2=%d", e1Wins, e2Wins)
	}
}

func TestSnapshotJitter(t *testing.T) {
	tb := twoEgressTable(3, 500)
	changed := 0
	for _, pfx := range tb.Prefixes() {
		m0, _ := tb.Lookup(0, "E1", pfx)
		m1, _ := tb.Lookup(1, "E1", pfx)
		if m0.Hops != m1.Hops {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("snapshots should differ (routing changes)")
	}
	if changed == 500 {
		t.Fatal("snapshots should remain correlated")
	}
}

func TestSelectRoutes(t *testing.T) {
	tb := twoEgressTable(1, 25)
	routes := tb.SelectRoutes(0, "E1", "SW9")
	if len(routes) != 25 {
		t.Fatalf("routes = %d", len(routes))
	}
	for _, r := range routes {
		if r.Egress != "E1" || r.EgressSwitch != "SW9" {
			t.Fatalf("route annotation: %+v", r)
		}
		m, _ := tb.Lookup(0, "E1", r.Prefix)
		if r.Metrics != m {
			t.Fatal("route metrics mismatch")
		}
	}
	if tb.SelectRoutes(0, "nope", "SW9") != nil {
		t.Fatal("unknown egress should be nil")
	}
	if tb.SelectRoutes(9, "E1", "SW9") != nil {
		t.Fatal("bad snapshot should be nil")
	}
}

func TestBestEgress(t *testing.T) {
	tb := twoEgressTable(1, 200)
	for _, pfx := range tb.Prefixes()[:50] {
		id, m, ok := tb.BestEgress(0, pfx, nil)
		if !ok {
			t.Fatal("best egress not found")
		}
		for _, e := range tb.Egresses() {
			em, _ := tb.Lookup(0, e, pfx)
			if em.Hops < m.Hops {
				t.Fatalf("BestEgress(%s) = %s (%d hops) but %s has %d", pfx, id, m.Hops, e, em.Hops)
			}
		}
	}
	// restricted candidates
	id, _, ok := tb.BestEgress(0, tb.Prefixes()[0], []string{"E2"})
	if !ok || id != "E2" {
		t.Fatalf("restricted best = %s %v", id, ok)
	}
	if _, _, ok := tb.BestEgress(0, tb.Prefixes()[0], []string{"nope"}); ok {
		t.Fatal("unknown candidates should fail")
	}
}
