package nib

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
)

// Device is one NIB device record.
type Device struct {
	ID    dataplane.DeviceID
	Kind  dataplane.DeviceKind
	Ports []PortRecord
	// Fabric holds vFabric annotations for G-switch devices.
	Fabric *dataplane.VFabric
	// GBSes and GMiddleboxes record logical radio/middlebox devices
	// attached to a G-switch.
	GBSes        []dataplane.GBSInfo
	GMiddleboxes []dataplane.GMiddleboxInfo
}

// PortRecord is one device port in the NIB.
type PortRecord struct {
	ID             dataplane.PortID
	Up             bool
	External       bool
	ExternalDomain string
	// Radio names the BS group served through this port, if any.
	Radio dataplane.DeviceID
	// Underlying is the physical (device, port) a G-switch border port
	// maps to, when the exposing controller chose to reveal it. A cluster
	// launcher uses it to stitch inter-G-switch links between region
	// processes without rediscovery; zero for physical ports.
	Underlying dataplane.PortRef
}

// PortByID returns the device's port record, or nil.
func (d *Device) PortByID(id dataplane.PortID) *PortRecord {
	for i := range d.Ports {
		if d.Ports[i].ID == id {
			return &d.Ports[i]
		}
	}
	return nil
}

// Link is one NIB link record between two device ports, annotated with the
// §3.2 metrics.
type Link struct {
	A, B      dataplane.PortRef
	Latency   time.Duration
	Bandwidth float64
	Up        bool
}

// Key returns the canonical (orientation-independent) link key.
func (l Link) Key() LinkKey { return NewLinkKey(l.A, l.B) }

// LinkKey canonically identifies a link by its endpoints.
type LinkKey struct {
	A, B dataplane.PortRef
}

// NewLinkKey normalizes endpoint order.
func NewLinkKey(a, b dataplane.PortRef) LinkKey {
	if b.Dev < a.Dev || (b.Dev == a.Dev && b.Port < a.Port) {
		a, b = b, a
	}
	return LinkKey{A: a, B: b}
}

// EventKind classifies NIB change events.
type EventKind int

const (
	// EvDeviceAdded fires on device registration or update.
	EvDeviceAdded EventKind = iota
	// EvDeviceRemoved fires on device removal.
	EvDeviceRemoved
	// EvLinkAdded fires when a link is discovered or updated.
	EvLinkAdded
	// EvLinkRemoved fires when a link is removed or goes down.
	EvLinkRemoved
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvDeviceAdded:
		return "device-added"
	case EvDeviceRemoved:
		return "device-removed"
	case EvLinkAdded:
		return "link-added"
	case EvLinkRemoved:
		return "link-removed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one NIB change notification.
type Event struct {
	Kind   EventKind
	Device dataplane.DeviceID // device events
	Link   LinkKey            // link events
}

// Subscriber receives NIB change events. Callbacks run synchronously under
// no NIB lock; subscribers may re-enter the NIB.
type Subscriber func(Event)

// NIB is a concurrency-safe network information base.
type NIB struct {
	mu sync.RWMutex
	// devices holds the device records, guarded by mu.
	devices map[dataplane.DeviceID]*Device
	// links holds the link records, guarded by mu.
	links map[LinkKey]*Link
	// gen counts mutations; it is bumped inside the write critical section
	// of every state-changing operation, so any reader that observes a
	// generation value and then acquires the NIB lock sees at least all
	// mutations up to that generation. Consumers (the controller's routing
	// graph cache) compare generations to detect staleness without
	// subscribing to individual events.
	gen atomic.Uint64

	subMu sync.RWMutex
	// subs holds the change subscribers, guarded by subMu.
	subs map[int]Subscriber
	// nextS is the next subscriber id, guarded by subMu.
	nextS int

	log *EventLog
}

// New returns an empty NIB with an attached event log.
func New() *NIB {
	return &NIB{
		devices: make(map[dataplane.DeviceID]*Device),
		links:   make(map[LinkKey]*Link),
		subs:    make(map[int]Subscriber),
		log:     NewEventLog(),
	}
}

// Log exposes the NIB's durable event log (§6 failover).
func (n *NIB) Log() *EventLog { return n.log }

// Generation returns the NIB's mutation counter. It advances on every
// state change (device put/remove, link put/remove, Up-flag flip, snapshot
// restore) and never otherwise, so equal generations imply an unchanged
// topology view.
func (n *NIB) Generation() uint64 { return n.gen.Load() }

// PutDevice inserts or replaces a device record (copied).
func (n *NIB) PutDevice(d Device) {
	n.mu.Lock()
	dc := d
	dc.Ports = append([]PortRecord(nil), d.Ports...)
	dc.GBSes = append([]dataplane.GBSInfo(nil), d.GBSes...)
	dc.GMiddleboxes = append([]dataplane.GMiddleboxInfo(nil), d.GMiddleboxes...)
	if d.Fabric != nil {
		dc.Fabric = d.Fabric.Clone()
	}
	n.devices[d.ID] = &dc
	n.gen.Add(1)
	n.mu.Unlock()
	n.notify(Event{Kind: EvDeviceAdded, Device: d.ID})
}

// RemoveDevice deletes a device and all links touching it.
func (n *NIB) RemoveDevice(id dataplane.DeviceID) {
	n.mu.Lock()
	_, existed := n.devices[id]
	delete(n.devices, id)
	var dropped []LinkKey
	for k := range n.links {
		if k.A.Dev == id || k.B.Dev == id {
			dropped = append(dropped, k)
		}
	}
	// Sort so the EvLinkRemoved notifications below fire in a
	// map-iteration-independent order — subscribers append to the replayable
	// event log.
	sort.Slice(dropped, func(i, j int) bool {
		if dropped[i].A != dropped[j].A {
			return less(dropped[i].A, dropped[j].A)
		}
		return less(dropped[i].B, dropped[j].B)
	})
	for _, k := range dropped {
		delete(n.links, k)
	}
	if existed || len(dropped) > 0 {
		n.gen.Add(1)
	}
	n.mu.Unlock()
	if existed {
		n.notify(Event{Kind: EvDeviceRemoved, Device: id})
	}
	for _, k := range dropped {
		n.notify(Event{Kind: EvLinkRemoved, Link: k})
	}
}

// Device returns a copy of the device record.
func (n *NIB) Device(id dataplane.DeviceID) (Device, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	d, ok := n.devices[id]
	if !ok {
		return Device{}, false
	}
	return *d, true
}

// Devices returns all devices sorted by ID, optionally filtered by kind
// (pass dataplane.KindUnknown for all).
func (n *NIB) Devices(kind dataplane.DeviceKind) []Device {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Device, 0, len(n.devices))
	for _, d := range n.devices {
		if kind == dataplane.KindUnknown || d.Kind == kind {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumDevices reports the device count.
func (n *NIB) NumDevices() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.devices)
}

// PutLink inserts or updates a link record.
func (n *NIB) PutLink(l Link) {
	k := l.Key()
	n.mu.Lock()
	lc := l
	n.links[k] = &lc
	n.gen.Add(1)
	n.mu.Unlock()
	n.notify(Event{Kind: EvLinkAdded, Link: k})
}

// SetLinkUp flips a link record's Up flag in place, keeping the record so
// a later port-up can restore it (§6: flapped links must survive in the
// NIB; routing.BuildGraph skips down links). It fires EvLinkRemoved on a
// down transition and EvLinkAdded on an up transition, and reports whether
// the record exists.
func (n *NIB) SetLinkUp(k LinkKey, up bool) bool {
	n.mu.Lock()
	l, ok := n.links[k]
	changed := ok && l.Up != up
	if changed {
		l.Up = up
		n.gen.Add(1)
	}
	n.mu.Unlock()
	if changed {
		kind := EvLinkRemoved
		if up {
			kind = EvLinkAdded
		}
		n.notify(Event{Kind: kind, Link: k})
	}
	return ok
}

// NumUpLinks reports the number of link records currently marked up.
func (n *NIB) NumUpLinks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c := 0
	for _, l := range n.links {
		if l.Up {
			c++
		}
	}
	return c
}

// RemoveLink deletes a link record.
func (n *NIB) RemoveLink(k LinkKey) {
	n.mu.Lock()
	_, existed := n.links[k]
	delete(n.links, k)
	if existed {
		n.gen.Add(1)
	}
	n.mu.Unlock()
	if existed {
		n.notify(Event{Kind: EvLinkRemoved, Link: k})
	}
}

// LinkByKey returns a copy of the link record.
func (n *NIB) LinkByKey(k LinkKey) (Link, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[k]
	if !ok {
		return Link{}, false
	}
	return *l, true
}

// Links returns all link records in deterministic order.
func (n *NIB) Links() []Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Link, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].Key(), out[j].Key()
		if ki.A != kj.A {
			return less(ki.A, kj.A)
		}
		return less(ki.B, kj.B)
	})
	return out
}

func less(a, b dataplane.PortRef) bool {
	if a.Dev != b.Dev {
		return a.Dev < b.Dev
	}
	return a.Port < b.Port
}

// NumLinks reports the link count.
func (n *NIB) NumLinks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.links)
}

// LinksOf returns links incident to a device.
func (n *NIB) LinksOf(id dataplane.DeviceID) []Link {
	var out []Link
	for _, l := range n.Links() {
		if l.A.Dev == id || l.B.Dev == id {
			out = append(out, l)
		}
	}
	return out
}

// Subscribe registers a change subscriber and returns an unsubscribe
// function.
func (n *NIB) Subscribe(s Subscriber) (cancel func()) {
	n.subMu.Lock()
	id := n.nextS
	n.nextS++
	n.subs[id] = s
	n.subMu.Unlock()
	return func() {
		n.subMu.Lock()
		delete(n.subs, id)
		n.subMu.Unlock()
	}
}

func (n *NIB) notify(ev Event) {
	// Subscribers run in registration order, not map order: callbacks can
	// have observable side effects (cache invalidation, event-log appends),
	// so their invocation order must not depend on map iteration.
	n.subMu.RLock()
	ids := make([]int, 0, len(n.subs))
	for id := range n.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	subs := make([]Subscriber, 0, len(ids))
	for _, id := range ids {
		subs = append(subs, n.subs[id])
	}
	n.subMu.RUnlock()
	for _, s := range subs {
		s(ev)
	}
}

// Snapshot captures a deep copy of the NIB contents for standby
// synchronization.
func (n *NIB) Snapshot() *Snapshot {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := &Snapshot{}
	for _, d := range n.devices {
		dc := *d
		dc.Ports = append([]PortRecord(nil), d.Ports...)
		if d.Fabric != nil {
			dc.Fabric = d.Fabric.Clone()
		}
		s.Devices = append(s.Devices, dc)
	}
	for _, l := range n.links {
		s.Links = append(s.Links, *l)
	}
	sort.Slice(s.Devices, func(i, j int) bool { return s.Devices[i].ID < s.Devices[j].ID })
	sort.Slice(s.Links, func(i, j int) bool {
		ki, kj := s.Links[i].Key(), s.Links[j].Key()
		if ki.A != kj.A {
			return less(ki.A, kj.A)
		}
		return less(ki.B, kj.B)
	})
	return s
}

// Restore replaces the NIB contents from a snapshot without firing
// subscriber events (used during standby promotion). The generation still
// advances so stale derived state (cached routing graphs) is invalidated
// even though no events fire.
func (n *NIB) Restore(s *Snapshot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.gen.Add(1)
	n.devices = make(map[dataplane.DeviceID]*Device, len(s.Devices))
	for i := range s.Devices {
		d := s.Devices[i]
		n.devices[d.ID] = &d
	}
	n.links = make(map[LinkKey]*Link, len(s.Links))
	for i := range s.Links {
		l := s.Links[i]
		n.links[l.Key()] = &l
	}
}

// Snapshot is a point-in-time copy of NIB contents.
type Snapshot struct {
	Devices []Device
	Links   []Link
}
