package nib

import (
	"sync"
)

// EventLog implements the §6 failure-recovery discipline: "When the master
// controller receives an event, it first logs the event arrival in the NIB,
// and then processes it. When the master fails, the hot standby ... checks
// the event logs and redoes unfinished events."
//
// Entries move through logged → finished (done or failed); a standby
// replays all logged-but-not-finished entries on promotion. The log also
// serves as the delta source for incremental snapshots (ha.SharedStore):
// a checkpoint records the log's low-water mark, after which everything
// below it can be truncated — promotion then replays snapshot + delta
// instead of the full history.
type EventLog struct {
	mu      sync.Mutex
	entries map[uint64]*LogEntry
	order   []uint64
	nextID  uint64
	// lwm is the low-water mark: every entry with ID < lwm is finished
	// (done, failed, or already truncated). Guarded by mu.
	lwm uint64
}

// LogEntry is one logged control-plane event.
type LogEntry struct {
	ID   uint64
	Kind string
	// Payload carries whatever the application needs to redo the event.
	Payload interface{}
	Done    bool
	// Failed marks a finished entry whose processing returned an error;
	// replicas replaying the log skip failed entries (they had no effect).
	Failed bool
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog {
	return &EventLog{entries: make(map[uint64]*LogEntry)}
}

// Append records an event arrival and returns its ID. Call MarkDone (or
// MarkOutcome) once the event has been fully processed.
func (l *EventLog) Append(kind string, payload interface{}) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	l.entries[id] = &LogEntry{ID: id, Kind: kind, Payload: payload}
	l.order = append(l.order, id)
	return id
}

// MarkDone marks an entry successfully processed. Unknown IDs are ignored.
func (l *EventLog) MarkDone(id uint64) {
	l.MarkOutcome(id, false)
}

// MarkOutcome finishes an entry with its processing outcome and advances
// the low-water mark past every finished prefix entry. Unknown IDs are
// ignored.
func (l *EventLog) MarkOutcome(id uint64, failed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return
	}
	e.Done = true
	e.Failed = failed
	for l.lwm < l.nextID {
		p, ok := l.entries[l.lwm]
		if ok && !p.Done {
			break
		}
		// Missing entries were truncated or compacted, which requires
		// them to have been finished.
		l.lwm++
	}
}

// LowWaterMark returns the lowest ID not yet finished: every entry with a
// smaller ID is done or failed. A checkpoint taken at mark m plus the
// entries from m onward reconstruct the full history.
func (l *EventLog) LowWaterMark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lwm
}

// NextID returns the ID the next Append will assign — the total number of
// entries ever logged.
func (l *EventLog) NextID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID
}

// Entry returns a copy of one entry by ID.
func (l *EventLog) Entry(id uint64) (LogEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return LogEntry{}, false
	}
	return *e, true
}

// Unfinished returns copies of all logged-but-not-finished entries in
// arrival order — exactly what a promoted standby must redo.
func (l *EventLog) Unfinished() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEntry
	for _, id := range l.order {
		if e := l.entries[id]; e != nil && !e.Done {
			out = append(out, *e)
		}
	}
	return out
}

// EntriesSince returns copies of the retained entries with ID ≥ from, in
// arrival order — the delta a standby replays on top of a checkpoint taken
// at low-water mark `from`.
func (l *EventLog) EntriesSince(from uint64) []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEntry
	for _, id := range l.order {
		if id < from {
			continue
		}
		if e := l.entries[id]; e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Entries returns copies of every retained entry in arrival order (the
// replay-from-genesis source; after truncation "genesis" is the oldest
// retained entry).
func (l *EventLog) Entries() []LogEntry {
	return l.EntriesSince(0)
}

// Len reports the number of retained entries.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// TruncateThrough drops every finished entry with ID < upto, returning how
// many were removed. Unfinished entries are always retained regardless of
// position — promotion redo must still see them — so callers pass the
// low-water mark recorded in a committed checkpoint.
func (l *EventLog) TruncateThrough(upto uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	kept := l.order[:0]
	for _, id := range l.order {
		e := l.entries[id]
		if e != nil && id < upto && e.Done {
			delete(l.entries, id)
			removed++
			continue
		}
		kept = append(kept, id)
	}
	l.order = kept
	return removed
}

// Compact drops all finished entries, bounding memory on long runs that do
// not checkpoint. Snapshot-driven truncation (TruncateThrough) is the
// bounded-recovery variant: it keeps the delta above the checkpoint.
func (l *EventLog) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.order[:0]
	for _, id := range l.order {
		if e := l.entries[id]; e != nil && !e.Done {
			kept = append(kept, id)
		} else {
			delete(l.entries, id)
		}
	}
	l.order = kept
}
