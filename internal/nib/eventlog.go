package nib

import (
	"sync"
)

// EventLog implements the §6 failure-recovery discipline: "When the master
// controller receives an event, it first logs the event arrival in the NIB,
// and then processes it. When the master fails, the hot standby ... checks
// the event logs and redoes unfinished events."
//
// Entries move through logged → done; a standby replays all logged-but-not-
// done entries on promotion.
type EventLog struct {
	mu      sync.Mutex
	entries map[uint64]*LogEntry
	order   []uint64
	nextID  uint64
}

// LogEntry is one logged control-plane event.
type LogEntry struct {
	ID   uint64
	Kind string
	// Payload carries whatever the application needs to redo the event.
	Payload interface{}
	Done    bool
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog {
	return &EventLog{entries: make(map[uint64]*LogEntry)}
}

// Append records an event arrival and returns its ID. Call MarkDone once
// the event has been fully processed.
func (l *EventLog) Append(kind string, payload interface{}) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	l.entries[id] = &LogEntry{ID: id, Kind: kind, Payload: payload}
	l.order = append(l.order, id)
	return id
}

// MarkDone marks an entry processed. Unknown IDs are ignored.
func (l *EventLog) MarkDone(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[id]; ok {
		e.Done = true
	}
}

// Unfinished returns copies of all logged-but-not-done entries in arrival
// order — exactly what a promoted standby must redo.
func (l *EventLog) Unfinished() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEntry
	for _, id := range l.order {
		if e := l.entries[id]; e != nil && !e.Done {
			out = append(out, *e)
		}
	}
	return out
}

// Len reports the total number of logged entries.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Compact drops completed entries, bounding memory on long runs.
func (l *EventLog) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.order[:0]
	for _, id := range l.order {
		if e := l.entries[id]; e != nil && !e.Done {
			kept = append(kept, id)
		} else {
			delete(l.entries, id)
		}
	}
	l.order = kept
}
