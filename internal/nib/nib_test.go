package nib

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataplane"
)

func dev(id dataplane.DeviceID, kind dataplane.DeviceKind) Device {
	return Device{ID: id, Kind: kind, Ports: []PortRecord{{ID: 1, Up: true}}}
}

func link(a dataplane.DeviceID, ap dataplane.PortID, b dataplane.DeviceID, bp dataplane.PortID) Link {
	return Link{
		A: dataplane.PortRef{Dev: a, Port: ap}, B: dataplane.PortRef{Dev: b, Port: bp},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true,
	}
}

func TestPutAndGetDevice(t *testing.T) {
	n := New()
	n.PutDevice(dev("SW1", dataplane.KindSwitch))
	d, ok := n.Device("SW1")
	if !ok || d.Kind != dataplane.KindSwitch {
		t.Fatalf("device = %+v ok=%v", d, ok)
	}
	if _, ok := n.Device("missing"); ok {
		t.Fatal("missing device should not be found")
	}
	if n.NumDevices() != 1 {
		t.Fatalf("NumDevices = %d", n.NumDevices())
	}
}

func TestPutDeviceCopies(t *testing.T) {
	n := New()
	d := dev("SW1", dataplane.KindSwitch)
	d.Fabric = dataplane.NewVFabric()
	d.Fabric.Set(1, 2, dataplane.PathMetrics{Bandwidth: 10, Reachable: true})
	n.PutDevice(d)
	d.Ports[0].Up = false
	d.Fabric.Set(1, 2, dataplane.PathMetrics{Bandwidth: 99, Reachable: true})
	got, _ := n.Device("SW1")
	if !got.Ports[0].Up {
		t.Fatal("NIB must copy ports")
	}
	if m, _ := got.Fabric.Get(1, 2); m.Bandwidth != 10 {
		t.Fatal("NIB must copy fabric")
	}
}

func TestDevicesFilterByKind(t *testing.T) {
	n := New()
	n.PutDevice(dev("SW1", dataplane.KindSwitch))
	n.PutDevice(dev("GS1", dataplane.KindGSwitch))
	n.PutDevice(dev("SW0", dataplane.KindSwitch))
	all := n.Devices(dataplane.KindUnknown)
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
	if all[0].ID != "GS1" {
		t.Fatalf("expected sorted order, got %v", all[0].ID)
	}
	sws := n.Devices(dataplane.KindSwitch)
	if len(sws) != 2 {
		t.Fatalf("switches = %d", len(sws))
	}
}

func TestLinkKeyNormalization(t *testing.T) {
	a := dataplane.PortRef{Dev: "B", Port: 2}
	b := dataplane.PortRef{Dev: "A", Port: 9}
	if NewLinkKey(a, b) != NewLinkKey(b, a) {
		t.Fatal("link keys must be orientation-independent")
	}
	// same device, different ports
	c := dataplane.PortRef{Dev: "A", Port: 1}
	if NewLinkKey(b, c) != NewLinkKey(c, b) {
		t.Fatal("same-device normalization")
	}
}

func TestPutLinkAndLookup(t *testing.T) {
	n := New()
	l := link("A", 1, "B", 2)
	n.PutLink(l)
	got, ok := n.LinkByKey(NewLinkKey(
		dataplane.PortRef{Dev: "B", Port: 2}, dataplane.PortRef{Dev: "A", Port: 1}))
	if !ok || got.Latency != 5*time.Millisecond {
		t.Fatalf("link lookup: %+v %v", got, ok)
	}
	if n.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d", n.NumLinks())
	}
}

func TestRemoveDeviceCascadesLinks(t *testing.T) {
	n := New()
	n.PutDevice(dev("A", dataplane.KindSwitch))
	n.PutDevice(dev("B", dataplane.KindSwitch))
	n.PutDevice(dev("C", dataplane.KindSwitch))
	n.PutLink(link("A", 1, "B", 1))
	n.PutLink(link("B", 2, "C", 1))
	n.RemoveDevice("B")
	if n.NumLinks() != 0 {
		t.Fatalf("links touching removed device must go: %d", n.NumLinks())
	}
	if n.NumDevices() != 2 {
		t.Fatalf("devices = %d", n.NumDevices())
	}
}

func TestLinksOf(t *testing.T) {
	n := New()
	n.PutLink(link("A", 1, "B", 1))
	n.PutLink(link("B", 2, "C", 1))
	n.PutLink(link("C", 2, "D", 1))
	ls := n.LinksOf("B")
	if len(ls) != 2 {
		t.Fatalf("LinksOf(B) = %d", len(ls))
	}
}

func TestSubscriptions(t *testing.T) {
	n := New()
	var events []Event
	cancel := n.Subscribe(func(e Event) { events = append(events, e) })
	n.PutDevice(dev("A", dataplane.KindSwitch))
	n.PutLink(link("A", 1, "B", 1))
	n.RemoveLink(NewLinkKey(dataplane.PortRef{Dev: "A", Port: 1}, dataplane.PortRef{Dev: "B", Port: 1}))
	n.RemoveDevice("A")
	want := []EventKind{EvDeviceAdded, EvLinkAdded, EvLinkRemoved, EvDeviceRemoved}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i, e := range events {
		if e.Kind != want[i] {
			t.Fatalf("event %d = %v want %v", i, e.Kind, want[i])
		}
	}
	cancel()
	n.PutDevice(dev("Z", dataplane.KindSwitch))
	if len(events) != len(want) {
		t.Fatal("cancelled subscriber still notified")
	}
}

func TestRemoveMissingNoEvents(t *testing.T) {
	n := New()
	count := 0
	n.Subscribe(func(Event) { count++ })
	n.RemoveDevice("ghost")
	n.RemoveLink(LinkKey{})
	if count != 0 {
		t.Fatalf("phantom events: %d", count)
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := New()
	n.PutDevice(dev("A", dataplane.KindSwitch))
	n.PutDevice(dev("B", dataplane.KindGSwitch))
	n.PutLink(link("A", 1, "B", 1))
	snap := n.Snapshot()

	m := New()
	fired := false
	m.Subscribe(func(Event) { fired = true })
	m.Restore(snap)
	if fired {
		t.Fatal("Restore must not fire events")
	}
	if m.NumDevices() != 2 || m.NumLinks() != 1 {
		t.Fatalf("restored %d devices %d links", m.NumDevices(), m.NumLinks())
	}
	// snapshot isolation: mutating original does not affect restored copy
	n.RemoveDevice("A")
	if m.NumDevices() != 2 {
		t.Fatal("restored NIB aliases source")
	}
}

// Property: after any sequence of puts, Links() has no duplicate keys and
// lookup by either orientation succeeds.
func TestLinkSetPropertyQuick(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		n := New()
		for _, p := range pairs {
			a := dataplane.PortRef{Dev: dataplane.DeviceID(rune('A' + p[0]%8)), Port: 1}
			b := dataplane.PortRef{Dev: dataplane.DeviceID(rune('A' + p[1]%8)), Port: 2}
			n.PutLink(Link{A: a, B: b, Up: true})
		}
		seen := map[LinkKey]bool{}
		for _, l := range n.Links() {
			k := l.Key()
			if seen[k] {
				return false
			}
			seen[k] = true
			if _, ok := n.LinkByKey(NewLinkKey(l.B, l.A)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog()
	id1 := l.Append("handover", "req-1")
	id2 := l.Append("bearer", "req-2")
	id3 := l.Append("handover", "req-3")
	l.MarkDone(id2)
	unf := l.Unfinished()
	if len(unf) != 2 || unf[0].ID != id1 || unf[1].ID != id3 {
		t.Fatalf("unfinished = %+v", unf)
	}
	if unf[0].Payload != "req-1" {
		t.Fatalf("payload = %v", unf[0].Payload)
	}
	l.MarkDone(999) // unknown, no-op
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	l.Compact()
	if l.Len() != 2 {
		t.Fatalf("compact kept %d", l.Len())
	}
	if len(l.Unfinished()) != 2 {
		t.Fatal("compact lost unfinished entries")
	}
}

func TestEventLogOrderPreserved(t *testing.T) {
	l := NewEventLog()
	for i := 0; i < 10; i++ {
		l.Append("k", i)
	}
	unf := l.Unfinished()
	for i := 1; i < len(unf); i++ {
		if unf[i].ID < unf[i-1].ID {
			t.Fatal("unfinished entries must keep arrival order")
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvDeviceAdded, EvDeviceRemoved, EvLinkAdded, EvLinkRemoved}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Fatal("duplicate event kind string")
		}
		seen[k.String()] = true
	}
}

func TestDevicePortByID(t *testing.T) {
	d := dev("A", dataplane.KindSwitch)
	if d.PortByID(1) == nil {
		t.Fatal("port 1 should exist")
	}
	if d.PortByID(9) != nil {
		t.Fatal("port 9 should not exist")
	}
}

// TestGenerationAdvancesOnMutations checks that every state-changing
// operation bumps the generation, no-ops do not, and event-less Restore
// still advances it (the routing-graph cache keys off this counter).
func TestGenerationAdvancesOnMutations(t *testing.T) {
	n := New()
	g0 := n.Generation()

	n.PutDevice(dev("A", dataplane.KindSwitch))
	n.PutDevice(dev("B", dataplane.KindSwitch))
	if n.Generation() != g0+2 {
		t.Fatalf("generation after 2 PutDevice = %d, want %d", n.Generation(), g0+2)
	}

	l := link("A", 1, "B", 1)
	n.PutLink(l)
	g := n.Generation()
	if g != g0+3 {
		t.Fatalf("generation after PutLink = %d, want %d", g, g0+3)
	}

	// Up-flag flip bumps; repeating the same state is a no-op.
	if !n.SetLinkUp(l.Key(), false) {
		t.Fatal("SetLinkUp should find the record")
	}
	if n.Generation() != g+1 {
		t.Fatalf("generation after down-flip = %d, want %d", n.Generation(), g+1)
	}
	n.SetLinkUp(l.Key(), false) // no change
	if n.Generation() != g+1 {
		t.Fatalf("no-op SetLinkUp moved the generation to %d", n.Generation())
	}

	// Reads never move it.
	_ = n.Links()
	_ = n.Devices(dataplane.KindUnknown)
	_, _ = n.Device("A")
	_ = n.Snapshot()
	if n.Generation() != g+1 {
		t.Fatalf("reads moved the generation to %d", n.Generation())
	}

	// Removing a missing link is a no-op; removing a real one bumps.
	n.RemoveLink(NewLinkKey(dataplane.PortRef{Dev: "X", Port: 1}, dataplane.PortRef{Dev: "Y", Port: 1}))
	if n.Generation() != g+1 {
		t.Fatalf("no-op RemoveLink moved the generation to %d", n.Generation())
	}
	n.RemoveLink(l.Key())
	if n.Generation() != g+2 {
		t.Fatalf("generation after RemoveLink = %d, want %d", n.Generation(), g+2)
	}

	// RemoveDevice bumps once (even when it cascades links); removing a
	// missing device is a no-op.
	n.RemoveDevice("missing")
	if n.Generation() != g+2 {
		t.Fatalf("no-op RemoveDevice moved the generation to %d", n.Generation())
	}
	n.RemoveDevice("A")
	if n.Generation() != g+3 {
		t.Fatalf("generation after RemoveDevice = %d, want %d", n.Generation(), g+3)
	}

	// Restore fires no events but must still advance the generation.
	snap := n.Snapshot()
	before := n.Generation()
	n.Restore(snap)
	if n.Generation() <= before {
		t.Fatalf("Restore did not advance the generation (%d -> %d)", before, n.Generation())
	}
}
