package nib

import (
	"fmt"
	"sync"
	"testing"
)

func TestEventLogLowWaterMarkAdvances(t *testing.T) {
	l := NewEventLog()
	a := l.Append("op", 1)
	b := l.Append("op", 2)
	c := l.Append("op", 3)
	if lwm := l.LowWaterMark(); lwm != a {
		t.Fatalf("lwm = %d before any outcome, want %d", lwm, a)
	}
	// Finishing out of order must not advance past the oldest unfinished.
	l.MarkOutcome(b, false)
	if lwm := l.LowWaterMark(); lwm != a {
		t.Fatalf("lwm = %d with %d still open, want %d", lwm, a, a)
	}
	// A failed outcome still finishes the entry for watermark purposes.
	l.MarkOutcome(a, true)
	if lwm := l.LowWaterMark(); lwm != c {
		t.Fatalf("lwm = %d after finishing %d and %d, want %d", lwm, a, b, c)
	}
	l.MarkOutcome(c, false)
	if lwm, next := l.LowWaterMark(), l.NextID(); lwm != next {
		t.Fatalf("fully drained log: lwm %d != next id %d", lwm, next)
	}
}

func TestEventLogTruncateKeepsUnfinished(t *testing.T) {
	l := NewEventLog()
	var ids []uint64
	for i := 0; i < 10; i++ {
		ids = append(ids, l.Append("op", i))
	}
	for _, id := range ids[:8] {
		if id != ids[3] { // leave one straggler open below the cut
			l.MarkOutcome(id, false)
		}
	}
	removed := l.TruncateThrough(ids[8])
	if removed != 7 {
		t.Fatalf("removed %d finished entries, want 7", removed)
	}
	if _, ok := l.Entry(ids[3]); !ok {
		t.Fatal("truncation dropped an unfinished entry")
	}
	if _, ok := l.Entry(ids[2]); ok {
		t.Fatal("truncation kept a finished entry below the cut")
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("len = %d after truncation, want 3 (one open + two above cut)", got)
	}
	// The below-cut survivor still leads the Unfinished scan, ahead of
	// the two entries above the cut that never finished.
	unf := l.Unfinished()
	if len(unf) != 3 || unf[0].ID != ids[3] {
		t.Fatalf("unfinished = %+v, want entry %d first of 3", unf, ids[3])
	}
}

func TestEventLogEntriesSince(t *testing.T) {
	l := NewEventLog()
	var ids []uint64
	for i := 0; i < 6; i++ {
		ids = append(ids, l.Append("op", i))
	}
	got := l.EntriesSince(ids[3])
	if len(got) != 3 {
		t.Fatalf("EntriesSince(%d) returned %d entries, want 3", ids[3], len(got))
	}
	for i, e := range got {
		if e.ID != ids[3+i] {
			t.Fatalf("delta entry %d has ID %d, want %d (order must be append order)", i, e.ID, ids[3+i])
		}
	}
	if all := l.EntriesSince(0); len(all) != 6 {
		t.Fatalf("EntriesSince(0) returned %d entries, want the full log", len(all))
	}
}

// TestEventLogConcurrentAppendTruncate stress-drives the append → finish →
// truncate pipeline from many goroutines under -race: the low-water mark
// must stay monotonic and truncation must never drop an unfinished entry.
func TestEventLogConcurrentAppendTruncate(t *testing.T) {
	l := NewEventLog()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := l.Append("op", fmt.Sprintf("w%d-%d", w, i))
				l.MarkOutcome(id, i%7 == 0)
				if i%13 == 0 {
					l.TruncateThrough(l.LowWaterMark())
				}
				if i%31 == 0 {
					_ = l.Unfinished()
					_ = l.EntriesSince(l.LowWaterMark())
				}
			}
		}(w)
	}
	wg.Wait()
	if lwm, next := l.LowWaterMark(), l.NextID(); lwm != next {
		t.Fatalf("all entries finished but lwm %d != next %d", lwm, next)
	}
	l.TruncateThrough(l.LowWaterMark())
	if n := l.Len(); n != 0 {
		t.Fatalf("%d finished entries survived final truncation", n)
	}
}
