// Package nib implements the SoftMoW network information base (§4): the
// per-controller store of devices, links and their metrics, with change
// subscriptions (used by the management plane, §5.3.2) and a durable event
// log consumed by the hot-standby failover protocol (§6).
//
// Each controller's NIB holds only that controller's own view — physical
// topology at leaves, logical topology above — never global state.
//
// # Event log lifecycle
//
// EventLog is the write-ahead log behind §6 failover. An entry moves
// through three states:
//
//	Append        → logged, unfinished (a crash here redoes the entry)
//	MarkOutcome   → finished: done, or failed (the op itself errored)
//	TruncateThrough → dropped, once a checkpoint covers it
//
// The log maintains a low-water mark: the oldest unfinished entry's ID
// (or NextID when fully drained). Finishing entries out of order holds
// the mark at the oldest straggler, so everything below the mark is
// guaranteed finished. The HA layer (internal/ha) captures its replica
// checkpoints at the mark and then truncates the finished prefix:
// promotion replays only the checkpoint's delta, keeping recovery
// O(delta) instead of O(history) and the retained log bounded by the
// snapshot cadence. Unfinished entries are never truncated, no matter
// how far the cut advances — they are exactly the work a promoted
// standby must redo.
package nib
