package regionopt_test

import (
	"fmt"

	"repro/internal/apps/regionopt"
	"repro/internal/dataplane"
	"repro/internal/ltetrace"
)

// Example reproduces the paper's Fig. 7 walkthrough: border G-BS 3 sits in
// region B but hands most of its traffic to region A, so the greedy
// optimizer re-associates it (§5.3.1: "the controller selects border G-BS
// 3 for the reconfiguration since it gives the maximum gain").
func Example() {
	g := ltetrace.NewHandoverGraph()
	g.Add("gbs3", "IA", 400) // toward region A's internal aggregate
	g.Add("gbs3", "gbs4", 100)
	g.Add("gbs3", "IB", 200) // toward its own region B
	g.Add("gbs3", "gbs2", 100)
	g.Add("gbs4", "IA", 400)
	g.Add("gbs2", "IB", 300)

	res := regionopt.Optimize(regionopt.Problem{
		Graph: g,
		Assign: regionopt.Assignment{
			"gbs2": "B", "gbs3": "B", "IB": "B",
			"gbs4": "A", "IA": "A",
		},
		Movable: map[dataplane.DeviceID]bool{"gbs2": true, "gbs3": true, "gbs4": true},
	})
	for _, m := range res.Moves {
		fmt.Printf("move %s: %s -> %s (gain %d)\n", m.GBS, m.From, m.To, m.Gain)
	}
	fmt.Printf("inter-region handovers: %d -> %d\n", res.Before, res.After)
	// Output:
	// move gbs3: B -> A (gain 200)
	// inter-region handovers: 500 -> 300
}
