package regionopt

import (
	"testing"
	"testing/quick"

	"repro/internal/dataplane"
	"repro/internal/ltetrace"
)

// paperExample reproduces Fig. 7b: border G-BSes 2, 3, 4, internal I_A and
// I_B. Edges (weights from the figure): 3–IB 200, 3–2 100(within B),
// 3–IA 500 wait — encoded below to make "gain 200 (=500-200-100)" hold for
// moving G-BS 3 from B to A.
func paperExample() (*ltetrace.HandoverGraph, Assignment, map[dataplane.DeviceID]bool) {
	g := ltetrace.NewHandoverGraph()
	// G-BS 3 (region B): 500 toward region A nodes, 200+100 toward B nodes.
	g.Add("gbs3", "IA", 400)
	g.Add("gbs3", "gbs4", 100) // gbs4 in A
	g.Add("gbs3", "IB", 200)
	g.Add("gbs3", "gbs2", 100) // gbs2 in B
	// Other cross traffic not involving gbs3; gbs4 is firmly tied to its
	// own region A so moving it has negative gain.
	g.Add("gbs2", "gbs4", 100)
	g.Add("gbs2", "IA", 100)
	g.Add("gbs4", "IB", 100)
	g.Add("gbs4", "IA", 400)
	assign := Assignment{
		"gbs2": "B", "gbs3": "B", "IB": "B",
		"gbs4": "A", "IA": "A",
	}
	movable := map[dataplane.DeviceID]bool{"gbs2": true, "gbs3": true, "gbs4": true}
	return g, assign, movable
}

func TestCrossWeight(t *testing.T) {
	g, assign, _ := paperExample()
	// cross edges: 3-IA 400, 3-gbs4 100, 2-gbs4 100, 2-IA 100, 4-IB 100 = 800
	if got := CrossWeight(g, assign); got != 800 {
		t.Fatalf("cross = %d", got)
	}
}

func TestGreedyPicksMaxGain(t *testing.T) {
	g, assign, movable := paperExample()
	res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable, MaxMoves: 1})
	if len(res.Moves) != 1 {
		t.Fatalf("moves = %+v", res.Moves)
	}
	m := res.Moves[0]
	// moving gbs3 B→A: gain = (400+100) - (200+100) = 200, the maximum
	if m.GBS != "gbs3" || m.From != "B" || m.To != "A" || m.Gain != 200 {
		t.Fatalf("move = %+v", m)
	}
	if res.After != res.Before-200 {
		t.Fatalf("after = %d, before = %d", res.After, res.Before)
	}
}

func TestOptimizeNeverIncreasesCross(t *testing.T) {
	g, assign, movable := paperExample()
	res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable})
	if res.After > res.Before {
		t.Fatalf("optimization increased handovers: %d -> %d", res.Before, res.After)
	}
	for _, m := range res.Moves {
		if m.Gain <= 0 {
			t.Fatalf("non-positive gain move: %+v", m)
		}
	}
	// the result assignment must reflect the moves
	if res.Assign["gbs3"] == "B" && len(res.Moves) > 0 && res.Moves[0].GBS == "gbs3" {
		t.Fatal("assignment not updated")
	}
	if got := CrossWeight(g, res.Assign); got != res.After {
		t.Fatalf("After (%d) must equal recomputed cross weight (%d)", res.After, got)
	}
}

func TestInternalGBSNeverMoves(t *testing.T) {
	g, assign, movable := paperExample()
	res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable})
	if res.Assign["IA"] != "A" || res.Assign["IB"] != "B" {
		t.Fatal("internal G-BS moved")
	}
}

func TestLoadBoundsBlockMoves(t *testing.T) {
	g, assign, movable := paperExample()
	load := map[dataplane.DeviceID]float64{
		"gbs2": 100, "gbs3": 100, "gbs4": 100, "IA": 500, "IB": 500,
	}
	// Region A is at its upper bound: no move into A allowed.
	bounds := map[string]Bounds{
		"A": {Lower: 0, Upper: 600},
		"B": {Lower: 0, Upper: 10000},
	}
	res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable, Load: load, Bounds: bounds})
	for _, m := range res.Moves {
		if m.To == "A" {
			t.Fatalf("move into saturated region: %+v", m)
		}
	}
	// lower bound: region B cannot drop below 600
	bounds = map[string]Bounds{
		"B": {Lower: 650, Upper: 10000},
	}
	res = Optimize(Problem{Graph: g, Assign: assign, Movable: movable, Load: load, Bounds: bounds})
	for _, m := range res.Moves {
		if m.From == "B" {
			t.Fatalf("move drained region below lower bound: %+v", m)
		}
	}
}

func TestAdjacencyConstraint(t *testing.T) {
	g, assign, movable := paperExample()
	noAdj := func(from, to string) bool { return false }
	res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable, Adjacent: noAdj})
	if len(res.Moves) != 0 {
		t.Fatalf("moves despite no adjacency: %+v", res.Moves)
	}
}

func TestBoundsFromInitial(t *testing.T) {
	b := BoundsFromInitial(map[string]float64{"A": 1000}, 0.3)
	if b["A"].Lower != 700 || b["A"].Upper != 1300 {
		t.Fatalf("bounds = %+v", b["A"])
	}
}

func TestTermination(t *testing.T) {
	// A symmetric graph where a naive algorithm might oscillate: greedy
	// with strictly positive gains must terminate.
	g := ltetrace.NewHandoverGraph()
	g.Add("x", "y", 10)
	assign := Assignment{"x": "A", "y": "B"}
	movable := map[dataplane.DeviceID]bool{"x": true, "y": true}
	res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable})
	// first move collapses x,y into one region; after that no cross edges
	if res.After != 0 {
		t.Fatalf("after = %d", res.After)
	}
	if len(res.Moves) != 1 {
		t.Fatalf("moves = %+v", res.Moves)
	}
}

// Property: for random graphs and assignments, Optimize terminates, never
// increases cross weight, respects movable flags, and After equals the
// recomputed cross weight.
func TestOptimizePropertyQuick(t *testing.T) {
	f := func(edges [][3]uint8, regionOf []uint8) bool {
		g := ltetrace.NewHandoverGraph()
		nodes := map[dataplane.DeviceID]bool{}
		for _, e := range edges {
			a := dataplane.DeviceID(rune('a' + e[0]%12))
			b := dataplane.DeviceID(rune('a' + e[1]%12))
			g.Add(a, b, int(e[2]%50)+1)
			nodes[a] = true
			nodes[b] = true
		}
		assign := Assignment{}
		movable := map[dataplane.DeviceID]bool{}
		i := 0
		for _, n := range g.Nodes() {
			r := "R0"
			if len(regionOf) > 0 && regionOf[i%len(regionOf)]%2 == 1 {
				r = "R1"
			}
			assign[n] = r
			movable[n] = i%3 != 0 // some nodes fixed
			i++
		}
		res := Optimize(Problem{Graph: g, Assign: assign, Movable: movable})
		if res.After > res.Before {
			return false
		}
		if CrossWeight(g, res.Assign) != res.After {
			return false
		}
		for n, ok := range movable {
			if !ok && res.Assign[n] != assign[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{"x": "A"}
	c := a.Clone()
	c["x"] = "B"
	if a["x"] != "A" {
		t.Fatal("clone aliases")
	}
}
