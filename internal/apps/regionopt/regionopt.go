// Package regionopt implements SoftMoW's region optimization algorithm
// (§5.3.1): a greedy local search that re-associates border G-BSes between
// sibling regions to minimize the inter-region handovers the initiator
// controller must mediate, subject to per-region control-plane load bounds.
//
// The algorithm is pure — it consumes a handover graph, an assignment and
// load data, and produces a move sequence — so it is usable both by the
// live reconfiguration protocol (internal/core) and by the trace-driven
// Fig. 12 simulation.
package regionopt

import (
	"sort"

	"repro/internal/dataplane"
	"repro/internal/ltetrace"
)

// Assignment maps each G-BS node of the handover graph to its region (the
// child G-switch it is currently associated with).
type Assignment map[dataplane.DeviceID]string

// Clone copies an assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Bounds are the §5.3.1 per-region control-plane load constraints: "we
// assume we have the lower bound LBi and the upper bound UBi on the amount
// of control plane loads ... that each G-switch (or actual child
// controller) can handle."
type Bounds struct {
	Lower, Upper float64
}

// BoundsFromInitial derives bounds as ±pct of the initial load, matching
// the evaluation setup ("each GS should not handle more (less) than 30% of
// their maximum (minimum) initial cellular loads").
func BoundsFromInitial(initial map[string]float64, pct float64) map[string]Bounds {
	out := make(map[string]Bounds, len(initial))
	for r, v := range initial {
		out[r] = Bounds{Lower: v * (1 - pct), Upper: v * (1 + pct)}
	}
	return out
}

// Problem is one optimization instance at an initiator controller.
type Problem struct {
	// Graph is the handover graph over G-BSes (border G-BSes exposed
	// one-to-one plus aggregated internal G-BSes).
	Graph *ltetrace.HandoverGraph
	// Assign is the current G-BS → region association.
	Assign Assignment
	// Movable marks border G-BSes eligible for re-association; internal
	// G-BSes are never movable.
	Movable map[dataplane.DeviceID]bool
	// Load is each G-BS's control-plane load contribution (e.g. UE
	// arrivals per minute).
	Load map[dataplane.DeviceID]float64
	// Bounds constrain each region's total load. Regions without bounds
	// are unconstrained.
	Bounds map[string]Bounds
	// Adjacent reports whether a border G-BS may move between two regions
	// (the source and destination G-switches must share an inter-G-switch
	// link). Nil means all region pairs are adjacent.
	Adjacent func(from, to string) bool
	// MaxMoves caps iterations (0 = unlimited; the algorithm always
	// terminates because every move has strictly positive gain).
	MaxMoves int
}

// Move is one applied re-association.
type Move struct {
	GBS      dataplane.DeviceID
	From, To string
	Gain     int
}

// Result is the optimization outcome.
type Result struct {
	Moves  []Move
	Before int // inter-region handovers before
	After  int // after
	Assign Assignment
	// RegionLoad is the final per-region load.
	RegionLoad map[string]float64
}

// CrossWeight sums handover-graph edge weights whose endpoints lie in
// different regions — the inter-region handover load the initiator handles.
func CrossWeight(g *ltetrace.HandoverGraph, assign Assignment) int {
	total := 0
	for _, e := range g.Edges() {
		ra, oka := assign[e.Key.A]
		rb, okb := assign[e.Key.B]
		if oka && okb && ra != rb {
			total += e.Weight
		}
	}
	return total
}

// Optimize runs the greedy algorithm: at each step it selects the movable
// border G-BS and destination region yielding the maximum positive gain
// (reduction in inter-region handovers) that respects load bounds, applies
// it, and repeats until no positive gain remains.
func Optimize(p Problem) Result {
	assign := p.Assign.Clone()
	res := Result{Before: CrossWeight(p.Graph, p.Assign), Assign: assign}

	regionLoad := make(map[string]float64)
	regions := map[string]bool{}
	for gbs, r := range assign {
		regionLoad[r] += p.Load[gbs]
		regions[r] = true
	}
	regionList := make([]string, 0, len(regions))
	for r := range regions {
		regionList = append(regionList, r)
	}
	sort.Strings(regionList)

	// crossTo[gbs][region] = total edge weight from gbs into that region.
	crossTo := func(gbs dataplane.DeviceID, region string) int {
		total := 0
		for _, e := range p.Graph.NeighborWeights(gbs) {
			other := e.Key.A
			if other == gbs {
				other = e.Key.B
			}
			if assign[other] == region {
				total += e.Weight
			}
		}
		return total
	}

	movable := make([]dataplane.DeviceID, 0, len(p.Movable))
	for gbs, ok := range p.Movable {
		if ok {
			movable = append(movable, gbs)
		}
	}
	dataplane.SortDeviceIDs(movable)

	for {
		if p.MaxMoves > 0 && len(res.Moves) >= p.MaxMoves {
			break
		}
		var best *Move
		for _, gbs := range movable {
			from, ok := assign[gbs]
			if !ok {
				continue
			}
			stay := crossTo(gbs, from)
			for _, to := range regionList {
				if to == from {
					continue
				}
				if p.Adjacent != nil && !p.Adjacent(from, to) {
					continue
				}
				gain := crossTo(gbs, to) - stay
				if gain <= 0 {
					continue
				}
				if !loadOK(p, regionLoad, gbs, from, to) {
					continue
				}
				if best == nil || gain > best.Gain ||
					(gain == best.Gain && (gbs < best.GBS || (gbs == best.GBS && to < best.To))) {
					best = &Move{GBS: gbs, From: from, To: to, Gain: gain}
				}
			}
		}
		if best == nil {
			break
		}
		assign[best.GBS] = best.To
		regionLoad[best.From] -= p.Load[best.GBS]
		regionLoad[best.To] += p.Load[best.GBS]
		res.Moves = append(res.Moves, *best)
	}

	res.After = CrossWeight(p.Graph, assign)
	res.RegionLoad = regionLoad
	return res
}

func loadOK(p Problem, regionLoad map[string]float64, gbs dataplane.DeviceID, from, to string) bool {
	l := p.Load[gbs]
	if b, ok := p.Bounds[from]; ok && regionLoad[from]-l < b.Lower {
		return false
	}
	if b, ok := p.Bounds[to]; ok && regionLoad[to]+l > b.Upper {
		return false
	}
	return true
}
