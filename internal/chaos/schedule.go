package chaos

import "fmt"

// FailoverSchedule plans one master crash injected into a live workload
// run (the tentpole of the failover-under-fire experiment). Op indices
// count arrivals at the HA wrapper, 1-based:
//
//   - ops before KillAt-LostCommits follow the full log→process→commit
//     discipline;
//   - the LostCommits ops right before KillAt execute and are acknowledged,
//     but the master dies before committing them — the §6 window the
//     promoted standby re-delivers and the duplicate detector must catch;
//   - the Abandon ops starting at KillAt are logged but never processed by
//     the dying master: their callers block until the promoted standby
//     redoes them from the log;
//   - everything later blocks until recovery completes, then flows through
//     the new master.
//
// SnapshotEvery is the store's checkpoint cadence for the run; 0 means
// promotion rebuilds by full-history replay (the O(history) baseline the
// incremental-snapshot pass is measured against).
type FailoverSchedule struct {
	KillAt        int
	LostCommits   int
	Abandon       int
	SnapshotEvery int
}

// Normalized validates the schedule against a run of `events` ops driven
// by `workers` concurrent lanes, clamping the windows to values that
// cannot deadlock the driver: the Abandon window must fit within the
// lanes' blocking capacity (each abandoned op parks its lane until the
// promotion redo releases it), and both windows must fit inside the run.
func (s FailoverSchedule) Normalized(events, workers int) (FailoverSchedule, error) {
	if s.KillAt <= 0 {
		return s, fmt.Errorf("chaos: failover KillAt must be positive, got %d", s.KillAt)
	}
	if s.LostCommits < 0 || s.Abandon < 1 {
		return s, fmt.Errorf("chaos: failover windows out of range (lost=%d abandon=%d)", s.LostCommits, s.Abandon)
	}
	if s.Abandon > workers {
		s.Abandon = workers
	}
	if s.LostCommits >= s.KillAt {
		s.LostCommits = s.KillAt - 1
	}
	if s.KillAt+s.Abandon > events {
		return s, fmt.Errorf("chaos: failover window [%d, %d) exceeds the %d-op run",
			s.KillAt, s.KillAt+s.Abandon, events)
	}
	return s, nil
}
