package chaos

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/nib"
)

// bearerReplica is the harness's replicated application state: the set of
// bearers a controller's HA pair has committed, folded from its event log.
// It satisfies the ha.StateMachine contract — per-UE last-writer-wins, so
// at-least-once redelivery of an entry during delta replay is harmless —
// and serializes deterministically (sorted rows) so replica convergence
// can be checked by byte comparison.
type bearerReplica struct {
	// rows maps UE → "BS Group Prefix".
	rows map[string]string
}

func newBearerReplica() *bearerReplica {
	return &bearerReplica{rows: make(map[string]string)}
}

// Apply folds one committed log entry: bearer-new installs the UE's row,
// bearer-del removes it. Other kinds (crash markers, noops) are ignored.
func (r *bearerReplica) Apply(e nib.LogEntry) {
	switch e.Kind {
	case "bearer-new":
		if pb, ok := e.Payload.(*pendingBearer); ok && pb != nil {
			r.rows[pb.b.UE] = fmt.Sprintf("%s %s %s", pb.b.BS, pb.b.Group, pb.b.Prefix)
		}
	case "bearer-del":
		if ue, ok := e.Payload.(string); ok {
			delete(r.rows, ue)
		}
	}
}

// Snapshot serializes the rows sorted by UE, one per line.
func (r *bearerReplica) Snapshot() []byte {
	ues := make([]string, 0, len(r.rows))
	for ue := range r.rows {
		ues = append(ues, ue)
	}
	sort.Strings(ues)
	var b strings.Builder
	for _, ue := range ues {
		fmt.Fprintf(&b, "%s %s\n", ue, r.rows[ue])
	}
	return []byte(b.String())
}

// Restore replaces the rows from a Snapshot serialization.
func (r *bearerReplica) Restore(b []byte) {
	r.rows = make(map[string]string)
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		ue, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		r.rows[ue] = rest
	}
}
