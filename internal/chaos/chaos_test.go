package chaos

import (
	"reflect"
	"testing"
)

// TestChaosInvariants is the tier-1 bounded chaos run: a fixed seed drives
// a 3-region two-level hierarchy through 220 randomized fault events with
// every invariant checked after each one. The seed is chosen so every
// event family actually fires.
func TestChaosInvariants(t *testing.T) {
	h, err := New(Options{Seed: 7, Regions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(220); err != nil {
		for _, line := range h.EventLog() {
			t.Log(line)
		}
		t.Fatal(err)
	}
	s := h.Stats()
	t.Logf("stats: %+v", s)
	if s.Events != 220 {
		t.Fatalf("events=%d want 220", s.Events)
	}
	if s.BearersAdded == 0 || s.LinkFails == 0 || s.LinkRestores == 0 ||
		s.Flaps == 0 || s.SilentPortDowns == 0 || s.InstallFaults == 0 ||
		s.Failovers == 0 || s.Reconfigs == 0 || s.Teardowns == 0 {
		t.Fatalf("seed did not exercise every event family: %+v", s)
	}
	if s.FaultsInjected == 0 {
		t.Fatalf("no install fault actually fired: %+v", s)
	}
}

// TestChaosSeedReplay asserts determinism: the same seed reproduces the
// byte-identical event log, and a different seed diverges.
func TestChaosSeedReplay(t *testing.T) {
	run := func(seed int64) []string {
		h, err := New(Options{Seed: seed, Regions: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Run(80); err != nil {
			t.Fatal(err)
		}
		return h.EventLog()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different event logs")
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical event logs")
	}
}

// TestFaultPlanSkip checks the single-shot arming discipline.
func TestFaultPlanSkip(t *testing.T) {
	p := &FaultPlan{}
	if err := p.fail("s"); err != nil {
		t.Fatal("disarmed plan must not fire")
	}
	p.Arm(2)
	if p.fail("s") != nil || p.fail("s") != nil {
		t.Fatal("skipped installs must pass")
	}
	if p.fail("s") == nil {
		t.Fatal("third install must fail")
	}
	if p.fail("s") != nil {
		t.Fatal("plan must self-disarm after firing")
	}
	if !p.Disarm() {
		t.Fatal("Disarm must report the fault fired")
	}
	p.Arm(5)
	if p.fail("s") != nil {
		t.Fatal("skip budget not exhausted — must pass")
	}
	if p.Disarm() {
		t.Fatal("Disarm must report the fault never fired")
	}
}
