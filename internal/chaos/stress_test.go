package chaos

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestConcurrentMobilityStress hammers two regions with concurrent
// attach, intra- and inter-region handover, bearer teardown, and detach
// on a deliberately overlapping UE set (every worker draws from the same
// 48 UEs), then verifies the global invariants — no orphan rules, UE/path
// coherence, label depth ≤ 1 on every surviving bearer — and finally
// drains everything and asserts the data plane is empty. Run under -race
// this is the sharded UE store's interleaving torture test: the workers
// constantly collide on the same UEs, so correctness depends entirely on
// the per-UE operation locks.
func TestConcurrentMobilityStress(t *testing.T) {
	h, err := New(Options{Seed: 7, Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 8
		opsPerW   = 300
		sharedUEs = 48
	)
	leaves := []*core.Controller{
		h.groupLeaf[h.regions[0].group],
		h.groupLeaf[h.regions[1].group],
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := simnet.RNG(7, fmt.Sprintf("stress/worker%d", w))
			for i := 0; i < opsPerW; i++ {
				ue := fmt.Sprintf("su%d", rng.Intn(sharedUEs))
				src := rng.Intn(2)
				reg, dst := &h.regions[src], &h.regions[1-src]
				// Every op may legitimately fail (the UE may be detached,
				// homed in the other region, or mid-collision); the point is
				// that no interleaving corrupts state, which the invariant
				// sweep below decides.
				switch rng.Intn(5) {
				case 0, 1: // attach / bearer re-setup
					// QoS 0 matches the harness's probe packets.
					_, _ = leaves[src].HandleBearerRequest(core.BearerRequest{
						UE: ue, BS: reg.bses[rng.Intn(len(reg.bses))],
						Prefix: reg.prefix, QoS: 0,
					})
				case 2: // intra-region handover
					_ = leaves[src].Handover(ue, reg.group, reg.bses[rng.Intn(len(reg.bses))])
				case 3: // inter-region handover
					_ = leaves[src].Handover(ue, dst.group, dst.bses[rng.Intn(len(dst.bses))])
				case 4:
					if rng.Intn(2) == 0 {
						_ = leaves[src].DeactivateBearer(ue)
					} else {
						_ = leaves[src].Detach(ue)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stress: %v", err)
	}

	// Probe every surviving active bearer end to end: it must egress at
	// its prefix's peering port with label depth ≤ 1 (§4.3).
	for _, c := range h.hier.All {
		for _, rec := range c.UERecords() {
			if !rec.Active || rec.Group == "" {
				continue
			}
			res, err := h.probe(&bearer{UE: rec.UE, Group: rec.Group, Prefix: rec.Prefix})
			if err != nil {
				t.Fatalf("probe %s: %v", rec.UE, err)
			}
			if !h.probeOK(&bearer{UE: rec.UE, Group: rec.Group, Prefix: rec.Prefix}, res) {
				t.Fatalf("bearer %s after stress: disposition=%v egress=%v depth=%d",
					rec.UE, res.Disposition, res.EgressPort, res.MaxLabelDepth)
			}
		}
	}

	// Drain: detach every UE everywhere, then the data plane must be empty.
	for _, c := range h.hier.All {
		for _, rec := range c.UERecords() {
			if err := c.Detach(rec.UE); err != nil {
				t.Fatalf("drain detach %s at %s: %v", rec.UE, c.ID, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
	for _, c := range h.hier.All {
		if n := c.NumPaths(); n != 0 {
			t.Fatalf("%s still holds %d active paths after drain", c.ID, n)
		}
		if n := c.UECount(); n != 0 {
			t.Fatalf("%s still holds %d UE rows after drain", c.ID, n)
		}
	}
	for _, sw := range h.net.Switches() {
		if n := len(sw.Table.Rules()); n != 0 {
			t.Fatalf("switch %s still holds %d rules after drain", sw.ID, n)
		}
	}
}
