package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/ha"
	"repro/internal/interdomain"
	"repro/internal/nib"
	"repro/internal/reca"
	"repro/internal/routing"
	"repro/internal/simnet"
)

// bearerDemand is the per-bearer bandwidth reservation in Mbps, small
// enough that admission control never rejects under the default caps but
// nonzero so reservations are exercised through repair and teardown.
const bearerDemand = 5

// Options configures a harness run.
type Options struct {
	// Seed feeds the deterministic PRNG; the same seed replays the same
	// event sequence.
	Seed int64
	// Regions is the number of leaf regions in the ring (default 3, min 2).
	Regions int
	// MaxBearers caps concurrently active bearers (default 10 per region).
	MaxBearers int
	// SnapshotEvery checkpoints each pair's replica every N committed log
	// entries and truncates the log below the checkpoint's low-water mark;
	// 0 disables snapshotting, so promotion rebuilds replay the full
	// retained history.
	SnapshotEvery int
	// Verbose streams every event line to LogTo as it happens.
	Verbose bool
	// LogTo receives event lines when Verbose is set.
	LogTo io.Writer
}

// Stats counts what the harness injected and observed.
type Stats struct {
	Events          int
	BearersAdded    int
	BearerFailures  int
	Teardowns       int
	LinkFails       int
	LinkRestores    int
	Flaps           int
	SilentPortDowns int
	InstallFaults   int
	FaultsInjected  int
	Failovers       int
	Reconfigs       int
	Redos           int
	Retries         int
	// RedoneOnPromote counts unfinished log entries promoted standbys
	// re-executed; ReplayedOnPromote counts finished entries their replica
	// rebuilds replayed on top of a checkpoint (or genesis).
	RedoneOnPromote   int
	ReplayedOnPromote int
}

// bearer is one harness-tracked UE bearer.
type bearer struct {
	UE     string
	BS     dataplane.DeviceID
	Group  dataplane.DeviceID
	Prefix interdomain.PrefixID
	// Broken marks a bearer whose path could not be (re)established; its
	// traffic must punt until a restore heals the partition.
	Broken bool
}

// pendingBearer is the write-ahead-log payload for a bearer request logged
// but not processed before a master crash; the promoted standby redoes it.
type pendingBearer struct{ b *bearer }

// regionInfo is the static description of one ring region.
type regionInfo struct {
	group     dataplane.DeviceID
	access    dataplane.DeviceID
	bses      []dataplane.DeviceID
	attach    dataplane.PortRef
	prefix    interdomain.PrefixID
	egressRef dataplane.PortRef
	routes    []interdomain.Route
	homeLeaf  string
}

// Harness owns the simulated deployment and the fault-event generator.
type Harness struct {
	opt  Options
	net  *dataplane.Network
	hier *core.Hierarchy
	sim  *simnet.Sim
	rng  *rand.Rand
	plan *FaultPlan

	pairs   map[string]*ha.Pair
	pairIDs []string

	regions   []regionInfo
	groupLeaf map[dataplane.DeviceID]*core.Controller
	wrappers  map[dataplane.DeviceID]*FaultyDevice

	bearers map[string]*bearer
	nextUE  int
	nextSB  int

	events int
	log    []string
	stats  Stats
}

// New builds the topology, hierarchy, HA pairs, and interdomain state.
func New(opt Options) (*Harness, error) {
	if opt.Regions == 0 {
		opt.Regions = 3
	}
	if opt.Regions < 2 {
		return nil, fmt.Errorf("chaos: need at least 2 regions, got %d", opt.Regions)
	}
	if opt.MaxBearers == 0 {
		opt.MaxBearers = 10 * opt.Regions
	}
	h := &Harness{
		opt:       opt,
		sim:       simnet.New(),
		rng:       simnet.RNG(opt.Seed, "chaos-events"),
		plan:      &FaultPlan{},
		pairs:     make(map[string]*ha.Pair),
		groupLeaf: make(map[dataplane.DeviceID]*core.Controller),
		wrappers:  make(map[dataplane.DeviceID]*FaultyDevice),
		bearers:   make(map[string]*bearer),
	}
	if err := h.buildTopology(); err != nil {
		return nil, err
	}
	h.buildPairs()
	h.redistributeRoutes()
	return h, nil
}

// buildTopology creates R diamond regions (access A, middles Ma/Mb, egress
// E) joined in a ring E(k)—A(k+1), one border BS group per access switch,
// and one egress prefix per region, then bootstraps the 2-level hierarchy
// with every physical device wrapped in a FaultyDevice.
func (h *Harness) buildTopology() error {
	net := dataplane.NewNetwork()
	R := h.opt.Regions
	type wiring struct {
		switches []dataplane.DeviceID
		radio    reca.RadioAttachment
		bsGroup  map[dataplane.DeviceID]dataplane.DeviceID
	}
	wirings := make([]wiring, 0, R)
	for k := 0; k < R; k++ {
		a := dataplane.DeviceID(fmt.Sprintf("A%d", k))
		ma := dataplane.DeviceID(fmt.Sprintf("M%da", k))
		mb := dataplane.DeviceID(fmt.Sprintf("M%db", k))
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		for _, id := range []dataplane.DeviceID{a, ma, mb, e} {
			net.AddSwitch(id)
		}
		for _, c := range []struct {
			x, y dataplane.DeviceID
			lat  time.Duration
		}{{a, ma, 2 * time.Millisecond}, {a, mb, 3 * time.Millisecond},
			{ma, e, 2 * time.Millisecond}, {mb, e, 3 * time.Millisecond}} {
			if _, err := net.Connect(c.x, c.y, c.lat, 1000); err != nil {
				return err
			}
		}
		g := dataplane.DeviceID(fmt.Sprintf("g%d", k))
		rp, err := net.AddRadioPort(a, g)
		if err != nil {
			return err
		}
		ep, err := net.AddEgress(fmt.Sprintf("X%d", k), e, fmt.Sprintf("isp%d", k))
		if err != nil {
			return err
		}
		prefix := interdomain.PrefixID(fmt.Sprintf("pfx%d", k))
		attach := dataplane.PortRef{Dev: a, Port: rp.ID}
		bses := []dataplane.DeviceID{
			dataplane.DeviceID(fmt.Sprintf("b%d-0", k)),
			dataplane.DeviceID(fmt.Sprintf("b%d-1", k)),
		}
		h.regions = append(h.regions, regionInfo{
			group:     g,
			access:    a,
			bses:      bses,
			attach:    attach,
			prefix:    prefix,
			egressRef: dataplane.PortRef{Dev: e, Port: ep.Port},
			routes: []interdomain.Route{{
				Prefix: prefix, Egress: ep.ID, EgressSwitch: e,
				Metrics: interdomain.Metrics{Hops: 2, RTT: 8 * time.Millisecond},
			}},
			homeLeaf: fmt.Sprintf("L%d", k),
		})
		wirings = append(wirings, wiring{
			switches: []dataplane.DeviceID{a, ma, mb, e},
			radio:    reca.RadioAttachment{ID: g, Attach: attach, Border: true},
			bsGroup:  map[dataplane.DeviceID]dataplane.DeviceID{bses[0]: g, bses[1]: g},
		})
	}
	// Ring of cross-region links: E(k) — A(k+1 mod R).
	for k := 0; k < R; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		a := dataplane.DeviceID(fmt.Sprintf("A%d", (k+1)%R))
		if _, err := net.Connect(e, a, 4*time.Millisecond, 1000); err != nil {
			return err
		}
	}

	var leaves []*core.Controller
	for k := 0; k < R; k++ {
		leaf := core.NewController(h.regions[k].homeLeaf, 1, k)
		// Serial rule programming: the positional FaultPlan and the
		// replayable event log both depend on a seed-deterministic
		// install order, which concurrent batch fan-out would break.
		leaf.SerialSouthbound = true
		for _, swID := range wirings[k].switches {
			inner := core.NewSwitchDevice(net, net.Switch(swID))
			// Attach the inner adapter first so the controller back-pointer
			// (and with it port-status / packet-in delivery) is wired, then
			// shadow it with the fault wrapper for the install path.
			leaf.AttachDevice(inner)
			w := &FaultyDevice{Inner: inner, Plan: h.plan}
			leaf.AttachDevice(w)
			h.wrappers[swID] = w
		}
		leaf.SetConfig(reca.Config{Radios: []reca.RadioAttachment{wirings[k].radio}})
		leaf.SetRadioIndex(wirings[k].bsGroup,
			map[dataplane.DeviceID]dataplane.PortRef{h.regions[k].group: h.regions[k].attach})
		leaf.RunDiscovery()
		leaf.ComputeAbstraction()
		h.groupLeaf[h.regions[k].group] = leaf
		leaves = append(leaves, leaf)
	}
	root := core.NewController("root", 2, R)
	root.SerialSouthbound = true
	for _, leaf := range leaves {
		root.AttachChild(leaf)
	}
	root.RunDiscovery()
	core.RefreshDerived(root)

	h.net = net
	h.hier = &core.Hierarchy{
		Net: net, Root: root, Leaves: leaves,
		All: append(append([]*core.Controller{}, leaves...), root),
	}
	return nil
}

// buildPairs starts one master/standby HA pair per controller, each with a
// replicated bearer state machine and (when configured) incremental
// snapshotting, and a replica-rebuilding promotion path.
func (h *Harness) buildPairs() {
	for _, c := range h.hier.All {
		store := ha.NewSharedStore()
		store.SnapshotEvery = h.opt.SnapshotEvery
		store.SetStateMachine(newBearerReplica())
		p := ha.NewPair(h.sim, store, c.ID+"-m", c.ID+"-s", h.redoFunc())
		p.NewReplica = func() ha.StateMachine { return newBearerReplica() }
		h.pairs[c.ID] = p
		h.pairIDs = append(h.pairIDs, c.ID)
	}
	sort.Strings(h.pairIDs)
}

// redoFunc is the promoted standby's WAL redo handler: it re-executes a
// bearer request the dead master logged but never finished. The returned
// error becomes the entry's recorded outcome, so a failed redo is marked
// failed in the log and skipped by replica rebuilds.
func (h *Harness) redoFunc() func(nib.LogEntry) error {
	return func(e nib.LogEntry) error {
		pb, ok := e.Payload.(*pendingBearer)
		if !ok || pb == nil {
			return nil
		}
		leaf := h.groupLeaf[pb.b.Group]
		if err := h.installBearer(leaf, pb.b); err != nil {
			h.stats.BearerFailures++
			h.logf("redo bearer-new %s FAILED: %v", pb.b.UE, err)
			return err
		}
		h.bearers[pb.b.UE] = pb.b
		h.stats.BearersAdded++
		h.logf("redo bearer-new %s g=%s pfx=%s", pb.b.UE, pb.b.Group, pb.b.Prefix)
		return nil
	}
}

// redistributeRoutes reloads the interdomain snapshot: each region's route
// enters at the leaf owning its egress switch and propagates to the root
// (mirroring Hierarchy.DistributeInterdomain). Re-run after every
// reconfiguration, since re-abstraction renumbers the exposed border ports
// the root's stored options reference.
func (h *Harness) redistributeRoutes() {
	for _, c := range h.hier.All {
		c.ClearInterdomainRoutes()
	}
	for i := range h.regions {
		r := &h.regions[i]
		h.hier.Controller(r.homeLeaf).AddInterdomainRoutes(r.routes, r.egressRef)
	}
	for _, leaf := range h.hier.Leaves {
		leaf.PropagateInterdomain()
	}
}

// Stats returns a snapshot of the counters.
func (h *Harness) Stats() Stats { return h.stats }

// EventLog returns the deterministic event trace (one line per action);
// two runs with equal Options produce byte-identical logs.
func (h *Harness) EventLog() []string {
	return append([]string(nil), h.log...)
}

// Run executes n randomized fault events, checking every invariant after
// each one. It returns the first violation, annotated with the event
// number and seed for replay.
func (h *Harness) Run(n int) error {
	if h.events == 0 {
		if err := h.CheckInvariants(); err != nil {
			return fmt.Errorf("chaos: pre-flight (seed %d): %w", h.opt.Seed, err)
		}
	}
	for i := 0; i < n; i++ {
		if err := h.step(); err != nil {
			return err
		}
	}
	return nil
}

func (h *Harness) step() error {
	h.events++
	h.stats.Events++
	h.advance()
	var err error
	switch kind := h.pickEvent(); kind {
	case evBearerNew:
		err = h.evBearerNew()
	case evBearerDel:
		err = h.evBearerDel()
	case evLinkDown:
		err = h.evLinkDown()
	case evLinkUp:
		err = h.evLinkUp()
	case evFlap:
		err = h.evFlap()
	case evPortDown:
		err = h.evPortDown()
	case evInstallFault:
		err = h.evInstallFault()
	case evFailover:
		err = h.evFailover()
	case evReconfig:
		err = h.evReconfig()
	}
	if err == nil {
		if perr := h.probeAndRedo(); perr != nil {
			err = perr
		}
	}
	if err == nil {
		err = h.CheckInvariants()
	}
	if err != nil {
		return fmt.Errorf("chaos: event %d (replay with seed %d): %w", h.events, h.opt.Seed, err)
	}
	return nil
}

// advance moves virtual time forward 20–150 ms so heartbeats, failover
// detection, and promotions interleave with the data-plane events.
func (h *Harness) advance() {
	d := time.Duration(20+h.rng.Intn(131)) * time.Millisecond
	h.sim.RunUntil(h.sim.Now() + d)
}

const (
	evBearerNew = iota
	evBearerDel
	evLinkDown
	evLinkUp
	evFlap
	evPortDown
	evInstallFault
	evFailover
	evReconfig
)

// pickEvent draws the next event kind from the currently applicable set.
func (h *Harness) pickEvent() int {
	type cand struct{ kind, weight int }
	var cands []cand
	if len(h.bearers) < h.opt.MaxBearers {
		cands = append(cands, cand{evBearerNew, 4})
	}
	if len(h.bearers) > 0 {
		cands = append(cands, cand{evBearerDel, 2})
	}
	// Cap concurrent failures at two links so the network keeps healing:
	// with the whole ring down nothing routes and reconfigurations (which
	// need a consistent abstraction, i.e. all links up) never fire.
	if len(h.upLinks()) > 0 && len(h.downLinks()) < 2 {
		cands = append(cands, cand{evLinkDown, 3}, cand{evFlap, 2}, cand{evPortDown, 1})
	}
	if len(h.downLinks()) > 0 {
		cands = append(cands, cand{evLinkUp, 5})
	}
	cands = append(cands, cand{evInstallFault, 2}, cand{evFailover, 1})
	if h.allLinksUp() {
		cands = append(cands, cand{evReconfig, 2})
	}
	total := 0
	for _, c := range cands {
		total += c.weight
	}
	r := h.rng.Intn(total)
	for _, c := range cands {
		if r < c.weight {
			return c.kind
		}
		r -= c.weight
	}
	return evBearerNew
}

func (h *Harness) upLinks() []*dataplane.Link {
	var out []*dataplane.Link
	for _, l := range h.net.Links() {
		if l.Up() {
			out = append(out, l)
		}
	}
	return out
}

func (h *Harness) downLinks() []*dataplane.Link {
	var out []*dataplane.Link
	for _, l := range h.net.Links() {
		if !l.Up() {
			out = append(out, l)
		}
	}
	return out
}

func (h *Harness) allLinksUp() bool { return len(h.downLinks()) == 0 }

func linkName(l *dataplane.Link) string {
	return fmt.Sprintf("%s:%d-%s:%d", l.A.Dev, l.A.Port, l.B.Dev, l.B.Port)
}

func (h *Harness) sortedBearers() []string {
	out := make([]string, 0, len(h.bearers))
	for ue := range h.bearers {
		out = append(out, ue)
	}
	sort.Strings(out)
	return out
}

// newBearer draws a fresh bearer: a random BS group, one of its base
// stations, and a random destination prefix (possibly in another region,
// forcing delegation to the root).
func (h *Harness) newBearer() *bearer {
	reg := &h.regions[h.rng.Intn(len(h.regions))]
	bs := reg.bses[h.rng.Intn(len(reg.bses))]
	prefix := h.regions[h.rng.Intn(len(h.regions))].prefix
	h.nextUE++
	return &bearer{UE: fmt.Sprintf("ue%04d", h.nextUE), BS: bs, Group: reg.group, Prefix: prefix}
}

// installBearer issues the mobility-app bearer request at the given leaf.
func (h *Harness) installBearer(leaf *core.Controller, b *bearer) error {
	_, err := leaf.HandleBearerRequest(core.BearerRequest{
		UE: b.UE, BS: b.BS, Prefix: b.Prefix, QoS: 0,
		Constraints: routing.Constraints{MinBandwidth: bearerDemand},
		Objective:   routing.MinHops,
	})
	return err
}

// requestBearer routes the request through the owning leaf's HA pair so
// every bearer event follows the §6 log-process-done discipline.
func (h *Harness) requestBearer(b *bearer) error {
	leaf := h.groupLeaf[b.Group]
	return h.pairs[leaf.ID].HandleEvent("bearer-new", &pendingBearer{b: b}, func() error {
		return h.installBearer(leaf, b)
	})
}

// deactivate tears a bearer down through the owning leaf's HA pair.
func (h *Harness) deactivate(b *bearer) error {
	leaf := h.groupLeaf[b.Group]
	return h.pairs[leaf.ID].HandleEvent("bearer-del", b.UE, func() error {
		return leaf.DeactivateBearer(b.UE)
	})
}

func (h *Harness) evBearerNew() error {
	b := h.newBearer()
	if err := h.requestBearer(b); err != nil {
		h.stats.BearerFailures++
		h.logf("bearer-new %s g=%s pfx=%s FAILED: %v", b.UE, b.Group, b.Prefix, err)
		return nil // acceptable while partitioned; invariants still checked
	}
	h.bearers[b.UE] = b
	h.stats.BearersAdded++
	h.logf("bearer-new %s g=%s pfx=%s", b.UE, b.Group, b.Prefix)
	return nil
}

func (h *Harness) evBearerDel() error {
	ues := h.sortedBearers()
	b := h.bearers[ues[h.rng.Intn(len(ues))]]
	if err := h.deactivate(b); err != nil {
		return fmt.Errorf("teardown of %s failed: %w", b.UE, err)
	}
	delete(h.bearers, b.UE)
	h.stats.Teardowns++
	h.logf("bearer-del %s", b.UE)
	return nil
}

// setLink flips one physical link. Endpoint switch hooks deliver the
// port-status events to the owning leaves; for cross-region links the
// harness additionally relays the status to the root against the exposed
// G-switch border ports, standing in for the RecA vport-status path.
func (h *Harness) setLink(l *dataplane.Link, up bool) {
	h.net.SetLinkState(l, up)
	la, lb := h.hier.LeafOf(l.A.Dev), h.hier.LeafOf(l.B.Dev)
	if la == nil || lb == nil || la == lb {
		return
	}
	root := h.hier.Root
	if gp, ok := la.ExposedPortFor(l.A); ok {
		root.HandlePortStatus(la.GSwitchID(), gp, up)
	}
	if gp, ok := lb.ExposedPortFor(l.B); ok {
		root.HandlePortStatus(lb.GSwitchID(), gp, up)
	}
}

// repairAt triggers §6 path repair at the level owning the failed link.
func (h *Harness) repairAt(l *dataplane.Link) {
	la, lb := h.hier.LeafOf(l.A.Dev), h.hier.LeafOf(l.B.Dev)
	if la != nil && la == lb {
		rep, failed := la.HandleLinkFailure(l.A.Dev, l.A.Port)
		h.logf("  repair@%s: %d rerouted, %d failed", la.ID, len(rep), len(failed))
		return
	}
	root := h.hier.Root
	if la != nil {
		if gp, ok := la.ExposedPortFor(l.A); ok {
			rep, failed := root.HandleLinkFailure(la.GSwitchID(), gp)
			h.logf("  repair@root: %d rerouted, %d failed", len(rep), len(failed))
			return
		}
	}
	if lb != nil {
		if gp, ok := lb.ExposedPortFor(l.B); ok {
			rep, failed := root.HandleLinkFailure(lb.GSwitchID(), gp)
			h.logf("  repair@root: %d rerouted, %d failed", len(rep), len(failed))
		}
	}
}

func (h *Harness) evLinkDown() error {
	ups := h.upLinks()
	l := ups[h.rng.Intn(len(ups))]
	h.logf("link-down %s", linkName(l))
	h.setLink(l, false)
	h.repairAt(l)
	h.stats.LinkFails++
	return nil
}

func (h *Harness) evLinkUp() error {
	downs := h.downLinks()
	l := downs[h.rng.Intn(len(downs))]
	h.setLink(l, true)
	h.stats.LinkRestores++
	h.logf("link-up %s", linkName(l))
	return nil
}

func (h *Harness) evFlap() error {
	ups := h.upLinks()
	l := ups[h.rng.Intn(len(ups))]
	h.logf("flap %s", linkName(l))
	for i := 0; i < 2; i++ {
		h.setLink(l, false)
		h.repairAt(l)
		h.setLink(l, true)
	}
	h.stats.Flaps++
	return nil
}

// evPortDown takes a link down without informing the repair path — only
// the port-status events fire. Affected bearers blackhole until the
// per-event probe sweep notices and re-routes them.
func (h *Harness) evPortDown() error {
	ups := h.upLinks()
	l := ups[h.rng.Intn(len(ups))]
	h.setLink(l, false)
	h.stats.SilentPortDowns++
	h.logf("port-down %s (no repair trigger)", linkName(l))
	return nil
}

func (h *Harness) evInstallFault() error {
	skip := h.rng.Intn(3)
	h.plan.Arm(skip)
	b := h.newBearer()
	err := h.requestBearer(b)
	fired := h.plan.Disarm()
	if fired {
		h.stats.FaultsInjected++
	}
	h.stats.InstallFaults++
	if err != nil {
		h.stats.BearerFailures++
		h.logf("install-fault(skip=%d fired=%t) bearer-new %s FAILED: %v", skip, fired, b.UE, err)
		return nil // the no-orphan invariant verifies the rollback
	}
	h.bearers[b.UE] = b
	h.stats.BearersAdded++
	h.logf("install-fault(skip=%d fired=%t) bearer-new %s ok", skip, fired, b.UE)
	return nil
}

// evFailover crashes one controller's master mid-event: a bearer request
// is logged (write-ahead) but not processed, the master dies, and the
// promoted standby must redo it. A fresh standby then re-arms the pair.
func (h *Harness) evFailover() error {
	id := h.pairIDs[h.rng.Intn(len(h.pairIDs))]
	pair := h.pairs[id]
	pb := &pendingBearer{b: h.newBearer()}
	pair.LogOnly("bearer-new", pb)
	pair.KillMaster()
	h.logf("failover %s (bearer %s logged, unprocessed)", id, pb.b.UE)
	h.sim.RunUntil(h.sim.Now() + 600*time.Millisecond)
	if n := pair.MasterCount(); n != 1 {
		return fmt.Errorf("pair %s has %d masters after failover", id, n)
	}
	ps := pair.LastPromotion()
	if !ps.Converged {
		return fmt.Errorf("pair %s replica diverged on promotion (snapshot seq %d, %d replayed)",
			id, ps.Rebuild.SnapshotSeq, ps.Rebuild.Replayed)
	}
	h.stats.RedoneOnPromote += ps.Redone
	h.stats.ReplayedOnPromote += ps.Rebuild.Replayed
	h.nextSB++
	pair.AttachStandby(fmt.Sprintf("%s-sb%d", id, h.nextSB), h.redoFunc())
	h.stats.Failovers++
	return nil
}

// evReconfig runs the §5.3.2 protocol: drain the group's bearers, hand its
// access switch to another leaf, refresh the root's derived state and
// interdomain snapshot, and re-request the drained bearers at the target.
func (h *Harness) evReconfig() error {
	reg := &h.regions[h.rng.Intn(len(h.regions))]
	src := h.groupLeaf[reg.group]
	var dsts []*core.Controller
	for _, leaf := range h.hier.Leaves {
		if leaf != src {
			dsts = append(dsts, leaf)
		}
	}
	dst := dsts[h.rng.Intn(len(dsts))]

	var drained []*bearer
	for _, ue := range h.sortedBearers() {
		b := h.bearers[ue]
		if b.Group != reg.group {
			continue
		}
		if err := h.deactivate(b); err != nil {
			return fmt.Errorf("reconfig drain of %s: %w", ue, err)
		}
		delete(h.bearers, ue)
		drained = append(drained, b)
	}
	// Re-home the moved access switch's event hook first: the transfer
	// protocol runs discovery on both leaves, and the inner adapter (not
	// the wrapper) carries the controller back-pointer, so it must point
	// at the target before those discovery rounds. The transfer's own
	// AttachDevice then shadows the inner with the wrapper again for the
	// install path, exactly as at construction.
	dst.AttachDevice(h.wrappers[reg.access].Inner)
	if err := h.hier.TransferBorderGroup(reg.group, src, dst); err != nil {
		return fmt.Errorf("reconfig %s %s->%s: %w", reg.group, src.ID, dst.ID, err)
	}
	h.groupLeaf[reg.group] = dst
	core.RefreshDerived(h.hier.Root)
	h.redistributeRoutes()
	h.stats.Reconfigs++
	h.logf("reconfig %s %s->%s (%d bearers re-homed)", reg.group, src.ID, dst.ID, len(drained))
	for _, b := range drained {
		if err := h.requestBearer(b); err != nil {
			b.Broken = true
			h.stats.BearerFailures++
			h.logf("  re-home %s FAILED: %v", b.UE, err)
		}
		h.bearers[b.UE] = b
	}
	return nil
}

// probe injects one packet for the bearer at its group's radio attachment
// and walks the data plane.
func (h *Harness) probe(b *bearer) (dataplane.TraversalResult, error) {
	leaf := h.groupLeaf[b.Group]
	attach, ok := leaf.AttachOfGroup(b.Group)
	if !ok {
		return dataplane.TraversalResult{}, fmt.Errorf("group %s has no attachment at %s", b.Group, leaf.ID)
	}
	return h.net.Inject(attach.Dev, attach.Port,
		&dataplane.Packet{UE: b.UE, DstPrefix: string(b.Prefix), QoS: 0})
}

// expectedEgress returns the peering port traffic for a prefix must exit.
func (h *Harness) expectedEgress(p interdomain.PrefixID) dataplane.PortRef {
	for i := range h.regions {
		if h.regions[i].prefix == p {
			return h.regions[i].egressRef
		}
	}
	return dataplane.PortRef{}
}

func (h *Harness) probeOK(b *bearer, res dataplane.TraversalResult) bool {
	return res.Disposition == dataplane.DispEgressed &&
		res.EgressPort == h.expectedEgress(b.Prefix) &&
		res.MaxLabelDepth <= 1
}

// expectPunt verifies a broken bearer's traffic reaches the control plane
// for recomputation instead of blackholing or looping (§6).
func (h *Harness) expectPunt(b *bearer) error {
	res, err := h.probe(b)
	if err != nil {
		return err
	}
	if res.Disposition != dataplane.DispPunted {
		return fmt.Errorf("broken bearer %s: disposition %v, want punted", b.UE, res.Disposition)
	}
	return nil
}

// probeAndRedo is invariant 3's enforcement sweep: every active bearer
// must egress correctly with label depth ≤ 1; bearers that do not are
// re-routed (deactivate + re-request) exactly once, and bearers that
// cannot be re-routed are marked broken and must punt until healed.
// Broken bearers are retried first, so restores heal them promptly.
func (h *Harness) probeAndRedo() error {
	for _, ue := range h.sortedBearers() {
		b := h.bearers[ue]
		if b.Broken {
			if err := h.requestBearer(b); err == nil {
				b.Broken = false
				h.stats.Retries++
				h.logf("  retry %s restored", ue)
			} else {
				if perr := h.expectPunt(b); perr != nil {
					return perr
				}
				continue
			}
		}
		res, err := h.probe(b)
		if err != nil {
			return err
		}
		if h.probeOK(b, res) {
			continue
		}
		h.stats.Redos++
		if err := h.deactivate(b); err != nil {
			return fmt.Errorf("redo of %s: deactivate: %w", ue, err)
		}
		if err := h.requestBearer(b); err != nil {
			b.Broken = true
			h.logf("  bearer %s broken: %v", ue, err)
			if perr := h.expectPunt(b); perr != nil {
				return perr
			}
			continue
		}
		res, err = h.probe(b)
		if err != nil {
			return err
		}
		if !h.probeOK(b, res) {
			return fmt.Errorf("bearer %s unreachable after redo: disposition=%v egress=%v labeldepth=%d",
				ue, res.Disposition, res.EgressPort, res.MaxLabelDepth)
		}
		h.logf("  redo %s rerouted", ue)
	}
	return nil
}

func (h *Harness) logf(format string, args ...interface{}) {
	line := fmt.Sprintf("[%8s #%04d] ", h.sim.Now(), h.events) + fmt.Sprintf(format, args...)
	h.log = append(h.log, line)
	if h.opt.Verbose && h.opt.LogTo != nil {
		fmt.Fprintln(h.opt.LogTo, line)
	}
}
