package chaos

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/southbound"
)

// FaultPlan is a single-shot install-fault injector shared by every
// FaultyDevice in a harness: Arm schedules one failure after skipping a
// configurable number of installs, so the fault lands at a randomized
// position inside a multi-rule path setup (first hop, mid-path, or during a
// classification fan-out).
type FaultPlan struct {
	mu sync.Mutex
	// armed reports whether a fault is scheduled, guarded by mu.
	armed bool
	// skip counts installs to let through before failing one, guarded by mu.
	skip int
	// injected records whether the armed fault fired, guarded by mu.
	injected bool
}

// Arm schedules the next install fault: the plan lets `skip` InstallRule
// calls through, fails the one after, then disarms itself.
func (p *FaultPlan) Arm(skip int) {
	p.mu.Lock()
	p.armed = true
	p.skip = skip
	p.injected = false
	p.mu.Unlock()
}

// Disarm clears the plan and reports whether the armed fault actually fired
// (a short path may need fewer installs than the skip count).
func (p *FaultPlan) Disarm() bool {
	p.mu.Lock()
	fired := p.injected
	p.armed = false
	p.mu.Unlock()
	return fired
}

// fail decides whether this install call is the one to break.
func (p *FaultPlan) fail(dev dataplane.DeviceID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.armed || p.injected {
		return nil
	}
	if p.skip > 0 {
		p.skip--
		return nil
	}
	p.injected = true
	return fmt.Errorf("chaos: injected install fault on %s", dev)
}

// FaultyDevice wraps a controller's device handle and fails InstallRule
// according to the shared FaultPlan. Everything else forwards to the inner
// device, so discovery, rule removal, and feature reads are unaffected.
//
// The wrapper intentionally does not receive controller events itself: the
// inner SwitchDevice stays registered as the switch hook (attach the inner
// device first, then the wrapper, so the controller back-pointer is wired
// on the inner adapter while rule installs route through the wrapper).
type FaultyDevice struct {
	Inner core.Device
	Plan  *FaultPlan
}

// ID implements core.Device.
func (d *FaultyDevice) ID() dataplane.DeviceID { return d.Inner.ID() }

// Features implements core.Device.
func (d *FaultyDevice) Features() southbound.FeatureReply { return d.Inner.Features() }

// InstallRule implements core.Device, consulting the fault plan first.
func (d *FaultyDevice) InstallRule(r dataplane.Rule) error {
	if err := d.Plan.fail(d.Inner.ID()); err != nil {
		return err
	}
	return d.Inner.InstallRule(r)
}

// InstallRules implements core.BatchInstaller so batched flushes stay
// fault-injectable: the plan is consulted per rule, so an armed fault can
// land mid-batch, leaving the already-applied prefix behind exactly like
// a device that aborted a FlowModBatch partway — the controller's
// version-exact rollback must then scrub it.
func (d *FaultyDevice) InstallRules(rules []dataplane.Rule) error {
	for _, r := range rules {
		if err := d.Plan.fail(d.Inner.ID()); err != nil {
			return err
		}
		if err := d.Inner.InstallRule(r); err != nil {
			return err
		}
	}
	return nil
}

// RemoveRules implements core.Device.
func (d *FaultyDevice) RemoveRules(owner string) error { return d.Inner.RemoveRules(owner) }

// RemoveRulesBefore implements core.Device.
func (d *FaultyDevice) RemoveRulesBefore(owner string, version int) error {
	return d.Inner.RemoveRulesBefore(owner, version)
}

// RemoveRulesVersion implements core.Device.
func (d *FaultyDevice) RemoveRulesVersion(owner string, version int) error {
	return d.Inner.RemoveRulesVersion(owner, version)
}

// EmitDiscovery implements core.Device.
func (d *FaultyDevice) EmitDiscovery(port dataplane.PortID, f *discovery.Frame) error {
	return d.Inner.EmitDiscovery(port, f)
}
