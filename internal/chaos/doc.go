// Package chaos is a randomized fault-injection harness for the SoftMoW
// reproduction: it builds a multi-region two-level controller hierarchy
// over a ring of diamond regions, then drives it through an interleaved
// stream of failure events — link failures and restores, flaps, silent
// port-downs, rule-install faults (including faults landing mid-way
// through a batched flush), controller failovers with write-ahead redo
// (internal/ha), and §5.3.2 border-group reconfigurations — while
// checking global invariants after every event:
//
//  1. no orphaned rules: every physical flow rule belongs to an active
//     path record (matching version) at some controller in the hierarchy;
//  2. NIB/data-plane link consistency: intra-region links are mirrored in
//     the owning leaf's NIB and cross-region links in the root's NIB, with
//     Up flags matching the physical state;
//  3. end-to-end reachability: every active bearer's traffic egresses at
//     the expected peering point with at most one label per physical
//     packet (ModeSwap, §4.3), and every broken bearer's traffic punts
//     (never blackholes or loops);
//  4. single mastership: each controller's HA pair has exactly one master.
//
// All randomness derives from one seed (simnet.RNG), every iteration order
// is sorted, and the data plane is driven in-process on one goroutine, so
// a printed seed replays the identical event sequence. For the same
// reason the harness sets Controller.SerialSouthbound on every
// controller: batched rule programming stays pipelined per device, but
// devices are flushed in deterministic order so the positional FaultPlan
// injector and the byte-compared event log are reproducible.
//
// Entry points: New builds the WAN and its controller hierarchy from
// Options, Harness.Run drives the event stream, and cmd/chaos wraps both
// behind flags (-seed, -events, -regions, -metrics).
package chaos
