package chaos

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/nib"
)

// CheckInvariants verifies the harness's global safety properties against
// the live hierarchy and data plane. Reachability (invariant 3) is
// enforced separately by probeAndRedo, which needs the repair machinery.
func (h *Harness) CheckInvariants() error {
	if err := h.checkNoOrphanRules(); err != nil {
		return err
	}
	if err := h.checkLinkConsistency(); err != nil {
		return err
	}
	if err := h.checkUEConsistency(); err != nil {
		return err
	}
	if err := h.checkMastership(); err != nil {
		return err
	}
	return h.checkReplicaConvergence()
}

// checkUEConsistency asserts every controller's UE table is coherent with
// the path store and the radio index: an active row's owning controller
// still holds its path record as active, a row's serving group (when the
// UE has not roamed away) is the group its BS actually camps on and that
// group has a radio attachment. A violation means a concurrent mobility
// operation tore a row and its path apart.
func (h *Harness) checkUEConsistency() error {
	for _, c := range h.hier.All {
		for _, rec := range c.UERecords() {
			if rec.Active {
				if rec.HandledBy == nil {
					return fmt.Errorf("%s: active UE %s has no owning controller", c.ID, rec.UE)
				}
				p, ok := rec.HandledBy.Path(rec.PathID)
				if !ok {
					return fmt.Errorf("%s: active UE %s points at unknown path %d on %s",
						c.ID, rec.UE, rec.PathID, rec.HandledBy.OwnerID())
				}
				if !p.Active {
					return fmt.Errorf("%s: active UE %s points at deactivated path %d on %s",
						c.ID, rec.UE, rec.PathID, rec.HandledBy.OwnerID())
				}
			}
			if rec.Group != "" {
				g, ok := c.GroupOfBS(rec.BS)
				if !ok {
					return fmt.Errorf("%s: UE %s camps on %s, unknown to the radio index", c.ID, rec.UE, rec.BS)
				}
				if g != rec.Group {
					return fmt.Errorf("%s: UE %s row says group %s, radio index says %s",
						c.ID, rec.UE, rec.Group, g)
				}
				if _, ok := c.AttachOfGroup(rec.Group); !ok {
					return fmt.Errorf("%s: UE %s group %s has no radio attachment", c.ID, rec.UE, rec.Group)
				}
			}
		}
	}
	return nil
}

// checkNoOrphanRules asserts every rule installed on a physical switch is
// owned by a path record some controller still considers active, at the
// record's current version. A violation means a rollback, repair, or
// teardown leaked state into the data plane.
func (h *Harness) checkNoOrphanRules() error {
	owners := make(map[string]core.PathOwnerInfo)
	for _, c := range h.hier.All {
		for owner, info := range c.PathOwners() {
			owners[owner] = info
		}
	}
	for _, sw := range h.net.Switches() {
		for _, r := range sw.Table.Rules() {
			info, ok := owners[r.Owner]
			if !ok {
				return fmt.Errorf("orphan rule on %s: owner %q unknown to every controller (%+v)", sw.ID, r.Owner, r)
			}
			if !info.Active {
				return fmt.Errorf("orphan rule on %s: owner %q is deactivated (%+v)", sw.ID, r.Owner, r)
			}
			if r.Version != info.Version {
				return fmt.Errorf("stale rule on %s: owner %q version %d, path record at %d (%+v)",
					sw.ID, r.Owner, r.Version, info.Version, r)
			}
		}
	}
	return nil
}

// checkLinkConsistency asserts the NIB view matches the physical link
// state at both levels: every intra-region link is recorded (with the
// right Up flag) in the owning leaf's NIB, every cross-region link in the
// root's NIB between the exposed G-switch border ports, and no NIB record
// contradicts the data plane.
func (h *Harness) checkLinkConsistency() error {
	for _, l := range h.net.Links() {
		la, lb := h.hier.LeafOf(l.A.Dev), h.hier.LeafOf(l.B.Dev)
		switch {
		case la == nil || lb == nil:
			return fmt.Errorf("link %s touches a switch no leaf owns", linkName(l))
		case la == lb:
			rec, ok := la.NIB.LinkByKey(nib.NewLinkKey(l.A, l.B))
			if !ok {
				return fmt.Errorf("leaf %s NIB lost link %s", la.ID, linkName(l))
			}
			if rec.Up != l.Up() {
				return fmt.Errorf("leaf %s NIB link %s up=%t, physical up=%t",
					la.ID, linkName(l), rec.Up, l.Up())
			}
		default:
			gpa, oka := la.ExposedPortFor(l.A)
			gpb, okb := lb.ExposedPortFor(l.B)
			if !oka || !okb {
				return fmt.Errorf("cross link %s not exposed as border ports (%t,%t)", linkName(l), oka, okb)
			}
			key := nib.NewLinkKey(
				dataplane.PortRef{Dev: la.GSwitchID(), Port: gpa},
				dataplane.PortRef{Dev: lb.GSwitchID(), Port: gpb})
			rec, ok := h.hier.Root.NIB.LinkByKey(key)
			if !ok {
				return fmt.Errorf("root NIB lost cross link %s (g-ports %s:%d-%s:%d)",
					linkName(l), la.GSwitchID(), gpa, lb.GSwitchID(), gpb)
			}
			if rec.Up != l.Up() {
				return fmt.Errorf("root NIB cross link %s up=%t, physical up=%t",
					linkName(l), rec.Up, l.Up())
			}
		}
	}
	// The reverse direction: every leaf NIB record must describe a real,
	// state-matching physical link (leaf NIBs hold only intra-region links).
	for _, leaf := range h.hier.Leaves {
		for _, rec := range leaf.NIB.Links() {
			l := h.net.LinkAt(rec.A)
			if l == nil {
				return fmt.Errorf("leaf %s NIB has phantom link %s:%d-%s:%d",
					leaf.ID, rec.A.Dev, rec.A.Port, rec.B.Dev, rec.B.Port)
			}
			if l.Up() != rec.Up {
				return fmt.Errorf("leaf %s NIB record %s:%d-%s:%d up=%t, physical up=%t",
					leaf.ID, rec.A.Dev, rec.A.Port, rec.B.Dev, rec.B.Port, rec.Up, l.Up())
			}
		}
	}
	return nil
}

// checkMastership asserts every controller's HA pair has exactly one
// master — no split-brain, no headless controller.
func (h *Harness) checkMastership() error {
	for _, id := range h.pairIDs {
		if n := h.pairs[id].MasterCount(); n != 1 {
			return fmt.Errorf("pair %s has %d masters", id, n)
		}
	}
	return nil
}

// checkReplicaConvergence rebuilds every pair's replica from its shared
// store — committed checkpoint plus delta replay when one exists, genesis
// replay otherwise — and asserts byte equality with the live replica. The
// snapshot/truncation pipeline must never lose or duplicate a committed
// effect, no matter where the last checkpoint landed.
func (h *Harness) checkReplicaConvergence() error {
	for _, id := range h.pairIDs {
		store := h.pairs[id].Store
		live := store.StateMachineSnapshot()
		if live == nil {
			continue
		}
		fresh := newBearerReplica()
		st := store.Rebuild(fresh)
		if got := fresh.Snapshot(); !bytes.Equal(got, live) {
			return fmt.Errorf("pair %s replica divergence after rebuild (fromSnapshot=%t replayed=%d): rebuilt %d bytes, live %d bytes",
				id, st.FromSnapshot, st.Replayed, len(got), len(live))
		}
	}
	return nil
}
