package netem

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Process-wide impairment counters, aggregated across every live link (a
// workload run also keeps per-link Stats; these feed the runtime metrics
// dump and the loadgen impairment report).
var (
	netemSent          = metrics.NewCounter("netem.sent")
	netemDelivered     = metrics.NewCounter("netem.delivered")
	netemDropLoss      = metrics.NewCounter("netem.dropped_loss")
	netemDropOverflow  = metrics.NewCounter("netem.dropped_overflow")
	netemDropPartition = metrics.NewCounter("netem.dropped_partition")
	netemReordered     = metrics.NewCounter("netem.reordered")
	netemDelay         = metrics.NewDurationHist("netem.delay")
)

// Stats counts one link's frame fates. Snapshot with Link.Stats.
type Stats struct {
	// Sent counts Send calls that were not rejected by Close.
	Sent int64 `json:"sent"`
	// Delivered counts frames handed to the sink.
	Delivered int64 `json:"delivered"`
	// DroppedLoss counts frames dropped by the i.i.d. or Gilbert–Elliott
	// loss model.
	DroppedLoss int64 `json:"dropped_loss"`
	// DroppedOverflow counts frames tail-dropped by the rate-cap queue
	// bound.
	DroppedOverflow int64 `json:"dropped_overflow"`
	// DroppedPartition counts frames dropped inside a partition window
	// or while the link was forced down.
	DroppedPartition int64 `json:"dropped_partition"`
	// Reordered counts frames exempted from FIFO delivery.
	Reordered int64 `json:"reordered"`
}

// Add accumulates o into s — aggregation across the links of a cluster.
func (s *Stats) Add(o Stats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.DroppedLoss += o.DroppedLoss
	s.DroppedOverflow += o.DroppedOverflow
	s.DroppedPartition += o.DroppedPartition
	s.Reordered += o.Reordered
}

// Deliver is a Link's sink: it receives each surviving payload when its
// impaired delivery time arrives. It runs on the scheduler's callback
// goroutine, so it must not block indefinitely.
type Deliver func(payload interface{})

// Link applies a Profile to a one-way stream of opaque payloads: Send
// stamps each frame with the impairment pipeline's verdict (drop, or a
// delivery time composed of queueing, serialization, propagation, and
// jitter) and the scheduler delivers survivors to the sink in FIFO order
// unless the profile reorders them.
//
// All impairment randomness comes from the per-link seeded RNG, never
// from the clock, so a Link driven by a SimScheduler produces a delivery
// trace that is a pure function of (seed, profile, send sequence).
type Link struct {
	sched Scheduler
	sink  Deliver
	own   *WallScheduler // stopped on Close when the link owns its scheduler

	mu sync.Mutex
	// prof is the active impairment profile, guarded by mu.
	prof Profile
	// rng is the per-link random source, guarded by mu.
	rng *rand.Rand
	// geBad records the Gilbert–Elliott chain state, guarded by mu.
	geBad bool
	// lastDue is the FIFO delivery horizon: the latest scheduled
	// delivery time of any non-reordered frame, guarded by mu.
	lastDue time.Duration
	// busyUntil is when the rate-capped serializer frees up, guarded by mu.
	busyUntil time.Duration
	// down forces a partition regardless of profile windows, guarded by mu.
	down bool
	// closed records Close, guarded by mu.
	closed bool
	// stats counts frame fates, guarded by mu.
	stats Stats

	// inflight tracks deliveries past the closed check, so Close can
	// wait out any sink call already in progress.
	inflight sync.WaitGroup
}

// NewLink creates a link delivering through sched to sink under prof,
// drawing impairment randomness from rng. The caller owns sched's
// lifecycle. rng may be nil for a profile that needs no randomness
// (pure delay/rate/partition); a randomized profile with a nil rng
// falls back to a fixed-seed source.
func NewLink(sched Scheduler, sink Deliver, prof Profile, rng *rand.Rand) *Link {
	if rng == nil {
		rng = LinkRNG(0, "default")
	}
	return &Link{sched: sched, sink: sink, prof: prof, rng: rng}
}

// NewWallLink creates a link with its own private WallScheduler, stopped
// automatically on Close. This is the production path for wrapping live
// connections.
func NewWallLink(sink Deliver, prof Profile, rng *rand.Rand) *Link {
	ws := NewWallScheduler()
	l := NewLink(ws, sink, prof, rng)
	l.own = ws
	return l
}

// SetProfile swaps the active impairment profile. Frames already
// scheduled keep their original delivery times; the Gilbert–Elliott chain
// state and rate-cap backlog carry over. Used by the workload harness to
// bootstrap on a clean link and activate impairment once the handshake is
// done.
func (l *Link) SetProfile(p Profile) {
	l.mu.Lock()
	l.prof = p
	l.mu.Unlock()
}

// SetDown forces the link into (or out of) a partition immediately,
// independent of the profile's scheduled windows. Frames sent while down
// are dropped; frames already in flight still arrive, as light already
// on the fiber does.
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
}

// Stats snapshots the link's frame-fate counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Send runs payload (size bytes on the wire, for the rate model) through
// the impairment pipeline. A dropped frame still returns nil — the sender
// of a datagram on a lossy WAN gets no error either; only a closed link
// reports ErrClosed.
func (l *Link) Send(payload interface{}, size int) error {
	now := l.sched.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.stats.Sent++
	netemSent.Inc()

	// Partition: forced down or inside a scheduled window.
	if l.down || l.prof.Partitioned(now) {
		l.stats.DroppedPartition++
		l.mu.Unlock()
		netemDropPartition.Inc()
		return nil
	}

	// Loss: the Gilbert–Elliott chain advances per frame when configured,
	// otherwise a single i.i.d. draw.
	if ge := l.prof.GE; ge != nil {
		if l.geBad {
			if l.rng.Float64() < ge.PBG {
				l.geBad = false
			}
		} else if l.rng.Float64() < ge.PGB {
			l.geBad = true
		}
		lossP := ge.LossGood
		if l.geBad {
			lossP = ge.LossBad
		}
		if lossP > 0 && l.rng.Float64() < lossP {
			l.stats.DroppedLoss++
			l.mu.Unlock()
			netemDropLoss.Inc()
			return nil
		}
	} else if l.prof.Loss > 0 && l.rng.Float64() < l.prof.Loss {
		l.stats.DroppedLoss++
		l.mu.Unlock()
		netemDropLoss.Inc()
		return nil
	}

	// Rate cap: frames serialize one after another at RateMbps; the
	// backlog (bytes not yet on the wire) is tail-dropped past QueueBytes.
	base := now
	if l.prof.RateMbps > 0 {
		bytesPerSec := l.prof.RateMbps * 1e6 / 8
		if l.prof.QueueBytes > 0 && l.busyUntil > now {
			backlog := int(float64(l.busyUntil-now) / float64(time.Second) * bytesPerSec)
			if backlog+size > l.prof.QueueBytes {
				l.stats.DroppedOverflow++
				l.mu.Unlock()
				netemDropOverflow.Inc()
				return nil
			}
		}
		txTime := time.Duration(float64(size) / bytesPerSec * float64(time.Second))
		start := now
		if l.busyUntil > start {
			start = l.busyUntil
		}
		l.busyUntil = start + txTime
		base = l.busyUntil
	}

	// Delay + jitter, then FIFO chaining: a frame never overtakes an
	// earlier one unless the reorder model exempts it.
	due := base + l.prof.Delay + l.prof.jitterDraw(l.rng)
	reordered := false
	if l.prof.Reorder > 0 && l.rng.Float64() < l.prof.Reorder {
		reordered = true
		due += l.prof.reorderGap()
		l.stats.Reordered++
	} else {
		if due < l.lastDue {
			due = l.lastDue
		}
		l.lastDue = due
	}
	l.mu.Unlock()
	if reordered {
		netemReordered.Inc()
	}
	netemDelay.Observe(due - now)

	l.sched.At(due, func() {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		l.inflight.Add(1)
		l.stats.Delivered++
		l.mu.Unlock()
		netemDelivered.Inc()
		l.sink(payload)
		l.inflight.Done()
	})
	return nil
}

// Close stops the link: subsequent Sends fail with ErrClosed, scheduled
// but undelivered frames are dropped, and any sink call already in
// progress completes before Close returns — after Close, the sink is
// never invoked again. Idempotent.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if l.own != nil {
			l.own.Stop()
		}
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.inflight.Wait()
	if l.own != nil {
		l.own.Stop()
	}
	return nil
}
