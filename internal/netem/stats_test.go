package netem_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simnet"
)

// TestLossConverges: measured i.i.d. loss over many frames converges to
// the configured probability (tolerance ≫ 3σ of the binomial).
func TestLossConverges(t *testing.T) {
	const n = 20000
	const p = 0.05
	sim := simnet.New()
	delivered := 0
	l := netem.NewLink(netem.NewSimScheduler(sim), func(interface{}) { delivered++ },
		netem.Profile{Loss: p}, netem.LinkRNG(1, "loss"))
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(i)*time.Microsecond, func() { _ = l.Send(i, 100) })
	}
	sim.Run()
	measured := 1 - float64(delivered)/n
	// 3σ ≈ 0.0046 at n=20000; allow 0.008.
	if math.Abs(measured-p) > 0.008 {
		t.Fatalf("measured loss %.4f, configured %.2f", measured, p)
	}
	st := l.Stats()
	if int(st.DroppedLoss)+delivered != n {
		t.Fatalf("drops (%d) + deliveries (%d) != sends (%d)", st.DroppedLoss, delivered, n)
	}
}

// TestJitterConverges: with uniform jitter the mean extra delay converges
// to Jitter/2 (frames spaced wider than the jitter range, so FIFO
// chaining never inflates the measurement).
func TestJitterConverges(t *testing.T) {
	const n = 20000
	jitter := 200 * time.Microsecond
	delay := time.Millisecond
	sim := simnet.New()
	var sumExtra time.Duration
	count := 0
	sendAt := make(map[int]time.Duration, n)
	l := netem.NewLink(netem.NewSimScheduler(sim), func(p interface{}) {
		i := p.(int)
		sumExtra += sim.Now() - sendAt[i] - delay
		count++
	}, netem.Profile{Delay: delay, Jitter: jitter}, netem.LinkRNG(2, "jitter"))
	for i := 0; i < n; i++ {
		i := i
		at := time.Duration(i) * time.Millisecond
		sim.At(at, func() {
			sendAt[i] = sim.Now()
			_ = l.Send(i, 100)
		})
	}
	sim.Run()
	if count != n {
		t.Fatalf("delivered %d/%d on a loss-free link", count, n)
	}
	mean := sumExtra / time.Duration(n)
	want := jitter / 2
	// SEM ≈ 0.4µs at n=20000; allow ±10µs.
	if diff := mean - want; diff < -10*time.Microsecond || diff > 10*time.Microsecond {
		t.Fatalf("mean jitter %v, want ≈%v", mean, want)
	}
}

// TestReorderConverges: the measured reorder rate converges to the
// configured probability, and reordered frames actually arrive out of
// order (inversions observed in the delivery sequence).
func TestReorderConverges(t *testing.T) {
	const n = 20000
	const p = 0.1
	prof := netem.Profile{Delay: time.Millisecond, Reorder: p, ReorderGap: 500 * time.Microsecond}
	sim := simnet.New()
	var order []int
	l := netem.NewLink(netem.NewSimScheduler(sim), func(pay interface{}) {
		order = append(order, pay.(int))
	}, prof, netem.LinkRNG(3, "reorder"))
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(i)*100*time.Microsecond, func() { _ = l.Send(i, 100) })
	}
	sim.Run()
	st := l.Stats()
	measured := float64(st.Reordered) / n
	if math.Abs(measured-p) > 0.01 {
		t.Fatalf("measured reorder rate %.4f, configured %.2f", measured, p)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("reorder model produced zero out-of-order deliveries")
	}
}

// TestGilbertElliottConverges: measured loss converges to the chain's
// stationary rate, and drops are burstier than i.i.d. (mean drop-run
// length well above 1).
func TestGilbertElliottConverges(t *testing.T) {
	const n = 30000
	ge := &netem.GilbertElliott{PGB: 0.05, PBG: 0.25, LossBad: 0.5}
	// Stationary bad fraction = PGB/(PGB+PBG) = 1/6 → loss ≈ 0.0833.
	want := ge.LossBad * ge.PGB / (ge.PGB + ge.PBG)
	sim := simnet.New()
	got := make([]bool, n)
	l := netem.NewLink(netem.NewSimScheduler(sim), func(p interface{}) {
		got[p.(int)] = true
	}, netem.Profile{GE: ge}, netem.LinkRNG(4, "ge"))
	for i := 0; i < n; i++ {
		i := i
		sim.At(time.Duration(i)*time.Microsecond, func() { _ = l.Send(i, 100) })
	}
	sim.Run()
	drops, runs, runLen := 0, 0, 0
	sumRun := 0
	for i := 0; i < n; i++ {
		if !got[i] {
			drops++
			runLen++
		} else if runLen > 0 {
			runs++
			sumRun += runLen
			runLen = 0
		}
	}
	if runLen > 0 {
		runs++
		sumRun += runLen
	}
	measured := float64(drops) / n
	if math.Abs(measured-want) > 0.015 {
		t.Fatalf("measured GE loss %.4f, stationary rate %.4f", measured, want)
	}
	meanRun := float64(sumRun) / float64(runs)
	// Given a drop, the next frame drops with P(stay bad)·LossBad = 0.375,
	// so mean run ≈ 1.6 — far above the i.i.d. ≈ 1.09 at this rate.
	if meanRun < 1.25 {
		t.Fatalf("mean drop-run length %.2f: burst loss looks i.i.d.", meanRun)
	}
}
