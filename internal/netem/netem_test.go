package netem_test

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simnet"
	"repro/internal/testutil/leakcheck"
)

// simTrace replays frames through a link on virtual time and returns the
// delivery trace: "payload@virtualNanos" per delivered frame, in order.
func simTrace(t *testing.T, seed int64, prof netem.Profile, frames int, gap time.Duration) []string {
	t.Helper()
	sim := simnet.New()
	var trace []string
	l := netem.NewLink(netem.NewSimScheduler(sim), func(p interface{}) {
		trace = append(trace, fmt.Sprintf("%v@%d", p, sim.Now()))
	}, prof, netem.LinkRNG(seed, "trace"))
	for i := 0; i < frames; i++ {
		i := i
		sim.At(time.Duration(i)*gap, func() {
			if err := l.Send(i, 200); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
	}
	sim.Run()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return trace
}

func digestOf(trace []string) string {
	h := fnv.New64a()
	for _, line := range trace {
		_, _ = h.Write([]byte(line)) //softmow:allow errdiscard hash.Hash Write cannot fail
		_, _ = h.Write([]byte{'\n'}) //softmow:allow errdiscard hash.Hash Write cannot fail
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestReplayDeterminism: the full impairment pipeline on virtual time is a
// pure function of (seed, profile, send sequence) — two runs produce
// byte-identical delivery traces, and a different seed does not.
func TestReplayDeterminism(t *testing.T) {
	prof := netem.Profile{
		Delay:   2 * time.Millisecond,
		Jitter:  500 * time.Microsecond,
		Loss:    0.05,
		Reorder: 0.05,
	}
	a := digestOf(simTrace(t, 42, prof, 2000, 100*time.Microsecond))
	b := digestOf(simTrace(t, 42, prof, 2000, 100*time.Microsecond))
	if a != b {
		t.Fatalf("same seed diverged: %s vs %s", a, b)
	}
	c := digestOf(simTrace(t, 43, prof, 2000, 100*time.Microsecond))
	if a == c {
		t.Fatalf("different seeds produced identical impairment traces: %s", a)
	}
}

// TestFIFOWithoutReorder: with reordering disabled, jitter never lets a
// frame overtake an earlier one.
func TestFIFOWithoutReorder(t *testing.T) {
	prof := netem.Profile{Delay: time.Millisecond, Jitter: 2 * time.Millisecond}
	trace := simTrace(t, 7, prof, 1000, 10*time.Microsecond)
	if len(trace) != 1000 {
		t.Fatalf("lost frames on a loss-free link: %d/1000", len(trace))
	}
	for i, line := range trace {
		var got int
		var at int64
		if _, err := fmt.Sscanf(line, "%d@%d", &got, &at); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if got != i {
			t.Fatalf("frame %d delivered in position %d: FIFO violated", got, i)
		}
	}
}

// TestRateCapOverflow: a rate-capped link serializes frames back-to-back
// and tail-drops past the queue bound, all deterministically.
func TestRateCapOverflow(t *testing.T) {
	// 0.8 Mbit/s = 100 kB/s: a 1000-byte frame takes 10ms to serialize.
	prof := netem.Profile{RateMbps: 0.8, QueueBytes: 4500}
	sim := simnet.New()
	var got []string
	l := netem.NewLink(netem.NewSimScheduler(sim), func(p interface{}) {
		got = append(got, fmt.Sprintf("%v@%v", p, sim.Now()))
	}, prof, nil)
	sim.At(0, func() {
		for i := 0; i < 10; i++ {
			if err := l.Send(i, 1000); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	sim.Run()
	want := "0@10ms|1@20ms|2@30ms|3@40ms"
	if s := strings.Join(got, "|"); s != want {
		t.Fatalf("rate-capped deliveries = %s, want %s", s, want)
	}
	st := l.Stats()
	if st.DroppedOverflow != 6 {
		t.Fatalf("DroppedOverflow = %d, want 6", st.DroppedOverflow)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPartitionWindow: frames sent inside a scheduled window vanish;
// frames outside it are unaffected.
func TestPartitionWindow(t *testing.T) {
	prof := netem.Profile{Windows: []netem.Window{{From: 5 * time.Millisecond, To: 10 * time.Millisecond}}}
	sim := simnet.New()
	var got []int
	l := netem.NewLink(netem.NewSimScheduler(sim), func(p interface{}) {
		got = append(got, p.(int))
	}, prof, nil)
	for i := 1; i <= 12; i++ {
		i := i
		sim.At(time.Duration(i)*time.Millisecond, func() { _ = l.Send(i, 100) })
	}
	sim.Run()
	want := []int{1, 2, 3, 4, 10, 11, 12}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	if st := l.Stats(); st.DroppedPartition != 5 {
		t.Fatalf("DroppedPartition = %d, want 5", st.DroppedPartition)
	}
}

// TestSetDown: a forced partition drops frames until lifted, independent
// of the profile.
func TestSetDown(t *testing.T) {
	sim := simnet.New()
	var got []int
	l := netem.NewLink(netem.NewSimScheduler(sim), func(p interface{}) {
		got = append(got, p.(int))
	}, netem.Profile{}, nil)
	sim.At(0, func() { _ = l.Send(1, 100) })
	sim.At(time.Millisecond, func() { l.SetDown(true) })
	sim.At(2*time.Millisecond, func() { _ = l.Send(2, 100) })
	sim.At(3*time.Millisecond, func() { l.SetDown(false) })
	sim.At(4*time.Millisecond, func() { _ = l.Send(3, 100) })
	sim.Run()
	if fmt.Sprint(got) != "[1 3]" {
		t.Fatalf("delivered %v, want [1 3]", got)
	}
	if st := l.Stats(); st.DroppedPartition != 1 {
		t.Fatalf("DroppedPartition = %d, want 1", st.DroppedPartition)
	}
}

// TestWallLinkCloseOrdering: after Close returns, the sink is never
// invoked again — queued frames die with the link. This is the regression
// test for the old DelayedConn race where a queued frame could land on
// the inner conn after Close returned.
func TestWallLinkCloseOrdering(t *testing.T) {
	defer leakcheck.Check(t)
	for round := 0; round < 50; round++ {
		var mu sync.Mutex
		closeReturned := false
		l := netem.NewWallLink(func(p interface{}) {
			mu.Lock()
			if closeReturned {
				t.Errorf("round %d: frame %v delivered after Close returned", round, p)
			}
			mu.Unlock()
		}, netem.Profile{Delay: 200 * time.Microsecond}, nil)
		for i := 0; i < 20; i++ {
			if err := l.Send(i, 100); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		// Race Close against the deliveries coming due.
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		mu.Lock()
		closeReturned = true
		mu.Unlock()
		if err := l.Send(99, 100); err == nil {
			t.Fatal("Send after Close succeeded")
		}
	}
	// Give any (buggy) stragglers a chance to fire before leakcheck.
	time.Sleep(2 * time.Millisecond)
}

// TestWallLinkDelivers: the production wall-clock path actually delivers
// frames, in order, after roughly the configured delay.
func TestWallLinkDelivers(t *testing.T) {
	defer leakcheck.Check(t)
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	start := time.Now() //softmow:allow determinism test measures wall latency of the wall scheduler
	l := netem.NewWallLink(func(p interface{}) {
		mu.Lock()
		got = append(got, p.(int))
		n := len(got)
		mu.Unlock()
		if n == 5 {
			close(done)
		}
	}, netem.Profile{Delay: 2 * time.Millisecond}, nil)
	for i := 0; i < 5; i++ {
		if err := l.Send(i, 100); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("frames not delivered")
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("delivered after %v, before the 2ms delay elapsed", elapsed)
	}
	mu.Lock()
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("delivered %v, want [0 1 2 3 4]", got)
	}
	mu.Unlock()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
