package netem

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Scheduler is the injectable clock behind a Link: Now reports link-local
// time (time since the scheduler's epoch) and At schedules a callback at
// an absolute link-local time. Production links run on a WallScheduler;
// determinism tests run the identical pipeline on a SimScheduler so
// delivery traces are pure functions of (seed, profile).
type Scheduler interface {
	// Now returns the current link-local time.
	Now() time.Duration
	// At schedules fn to run at link-local time t (immediately if t is
	// in the past). Callbacks run sequentially per scheduler.
	At(t time.Duration, fn func())
}

// wallEvent is one pending WallScheduler callback.
type wallEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// wallQueue is a min-heap of pending events ordered by due time with
// insertion-order tie-breaking.
type wallQueue []wallEvent

func (q wallQueue) Len() int { return len(q) }
func (q wallQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q wallQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *wallQueue) Push(x interface{}) { *q = append(*q, x.(wallEvent)) }

// Pop implements heap.Interface.
func (q *wallQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1].fn = nil
	*q = old[:n-1]
	return ev
}

// WallScheduler drives Link callbacks off the wall clock with a single
// timer goroutine. The wall clock here only shapes measured latency; it
// never feeds replayable state (impairment decisions are drawn from the
// link's seeded RNG, not from time), so seed determinism of the workload
// digests is unaffected.
type WallScheduler struct {
	epoch time.Time

	mu sync.Mutex
	// q holds pending events, guarded by mu.
	q wallQueue
	// seq is the next insertion sequence number, guarded by mu.
	seq uint64
	// stopped records Stop, guarded by mu.
	stopped bool

	wake chan struct{} // cap 1, kicked on enqueue
	done chan struct{} // closed on Stop
	loop sync.WaitGroup
}

// NewWallScheduler starts a wall-clock scheduler; the caller must Stop it.
func NewWallScheduler() *WallScheduler {
	s := &WallScheduler{
		epoch: time.Now(), //softmow:allow determinism wall epoch shapes measured latency only, never replayable state
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	s.loop.Add(1)
	go s.run()
	return s
}

// Now implements Scheduler.
func (s *WallScheduler) Now() time.Duration {
	return time.Now().Sub(s.epoch) //softmow:allow determinism wall clock shapes measured latency only, never replayable state
}

// At implements Scheduler.
func (s *WallScheduler) At(t time.Duration, fn func()) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	heap.Push(&s.q, wallEvent{at: t, seq: s.seq, fn: fn})
	s.seq++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Stop terminates the timer goroutine and waits for it to exit; pending
// callbacks are dropped, as frames in flight are when a link dies.
// Idempotent.
func (s *WallScheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.loop.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.done)
	s.loop.Wait()
}

// run is the timer goroutine: it fires due events in order and sleeps
// until the next due time otherwise.
func (s *WallScheduler) run() {
	defer s.loop.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		s.mu.Lock()
		var fn func()
		wait := time.Duration(-1)
		if len(s.q) > 0 {
			if now := s.Now(); s.q[0].at <= now {
				fn = heap.Pop(&s.q).(wallEvent).fn
			} else {
				wait = s.q[0].at - now
			}
		}
		s.mu.Unlock()
		if fn != nil {
			fn()
			continue
		}
		if wait < 0 {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				return
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-s.done:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// SimScheduler adapts a simnet.Sim discrete-event simulator to the
// Scheduler interface, so the exact production impairment pipeline can be
// replayed on virtual time in determinism tests.
type SimScheduler struct {
	sim *simnet.Sim
}

// NewSimScheduler wraps sim. The caller drives the simulation (Run /
// RunUntil); the scheduler only enqueues.
func NewSimScheduler(sim *simnet.Sim) *SimScheduler {
	return &SimScheduler{sim: sim}
}

// Now implements Scheduler.
func (s *SimScheduler) Now() time.Duration { return s.sim.Now() }

// At implements Scheduler. Past times are clamped to now (simnet.At
// panics on the past; a frame due "now" is simply next in line).
func (s *SimScheduler) At(t time.Duration, fn func()) {
	if now := s.sim.Now(); t < now {
		t = now
	}
	s.sim.At(t, fn)
}
