// Package netem models impaired WAN control channels: a seed-deterministic
// link-impairment pipeline (one-way delay, jitter, i.i.d. and burst loss,
// reordering, rate caps with queue-overflow drops, scheduled partition
// windows) expressed as composable Profiles and applied by a Link delivery
// scheduler.
//
// SoftMoW's controller tree spans a continent-scale cellular WAN, so the
// control channel between a leaf controller and its switches — and between
// a child controller and its parent — is itself a WAN path. A clean
// fixed-delay model (the old southbound.DelayedConn) answers none of the
// operational questions the paper raises: do barrier fences, discovery
// convergence, and handover latency degrade gracefully when the WAN does?
// netem provides the missing axis: impairment profiles with the fidelity
// of Linux tc-netem (delay/jitter/loss/reorder/rate) but driven by an
// injectable clock and a per-link seeded RNG so replay digests stay
// byte-identical across runs.
//
// Layering: netem knows nothing about the southbound message types — a
// Link carries opaque payloads to a sink function. The southbound package
// adapts Conn endpoints onto Links (ImpairedConn), keeping exactly one
// delivery-scheduling implementation in the tree.
package netem

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/simnet"
)

// ErrClosed is returned by Link.Send after Close.
var ErrClosed = errors.New("netem: link closed")

// JitterDist selects the jitter distribution of a Profile.
type JitterDist string

// Jitter distributions. Uniform draws an extra delay uniformly from
// [0, Jitter); Normal draws |N(0, Jitter)| (half-normal, so Jitter is the
// scale parameter and the tail is unbounded — FIFO chaining in the Link
// keeps late draws from reordering frames unless Reorder fires).
const (
	JitterUniform JitterDist = "uniform"
	JitterNormal  JitterDist = "normal"
)

// GilbertElliott parameterizes the two-state burst-loss channel model:
// the chain moves good→bad with probability PGB per frame and bad→good
// with PBG, dropping frames with probability LossGood in the good state
// and LossBad in the bad state. The stationary loss rate is
// LossGood·PBG/(PGB+PBG) + LossBad·PGB/(PGB+PBG).
type GilbertElliott struct {
	// PGB is the per-frame good→bad transition probability.
	PGB float64 `json:"p_gb"`
	// PBG is the per-frame bad→good transition probability.
	PBG float64 `json:"p_bg"`
	// LossGood is the drop probability while in the good state
	// (usually 0 or small).
	LossGood float64 `json:"loss_good,omitempty"`
	// LossBad is the drop probability while in the bad state
	// (usually large — bursts).
	LossBad float64 `json:"loss_bad"`
}

// Window is a scheduled partition interval in link-local time (time since
// the link's scheduler epoch): frames sent with From ≤ now < To are
// dropped as if the link were physically cut.
type Window struct {
	// From is the inclusive start of the partition.
	From time.Duration `json:"from"`
	// To is the exclusive end of the partition.
	To time.Duration `json:"to"`
}

// Profile is a composable description of one-way link impairment. The
// zero value is a clean, zero-delay link. All fields are JSON-tagged so a
// profile can cross the multi-process region-config wire verbatim.
type Profile struct {
	// Delay is the fixed one-way propagation delay added to every frame.
	Delay time.Duration `json:"delay,omitempty"`
	// Jitter is the scale of the random extra delay per frame (see
	// JitterDist for the distribution).
	Jitter time.Duration `json:"jitter,omitempty"`
	// Dist selects the jitter distribution; empty means JitterUniform.
	Dist JitterDist `json:"jitter_dist,omitempty"`
	// Loss is the i.i.d. per-frame drop probability in [0,1). Ignored
	// when GE is set — the burst model subsumes it.
	Loss float64 `json:"loss,omitempty"`
	// GE, when non-nil, replaces i.i.d. loss with the Gilbert–Elliott
	// burst-loss chain.
	GE *GilbertElliott `json:"ge,omitempty"`
	// Reorder is the probability that a frame is exempted from FIFO
	// delivery and held back ReorderGap extra, letting later frames
	// overtake it.
	Reorder float64 `json:"reorder,omitempty"`
	// ReorderGap is the extra hold applied to reordered frames; zero
	// defaults to the frame's jitter scale (or 1ms if jitter is zero).
	ReorderGap time.Duration `json:"reorder_gap,omitempty"`
	// RateMbps caps the link's serialization rate in megabits per
	// second; zero means unlimited.
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// QueueBytes bounds the rate-cap backlog: a frame that would push
	// the queued byte count past this limit is dropped (tail drop).
	// Zero with a rate cap means an unbounded queue.
	QueueBytes int `json:"queue_bytes,omitempty"`
	// Windows are scheduled partition intervals in link-local time.
	Windows []Window `json:"windows,omitempty"`
}

// IsZero reports whether the profile is the clean zero-delay link (every
// impairment dimension off).
func (p *Profile) IsZero() bool {
	return p.Delay == 0 && p.Jitter == 0 && p.Loss == 0 && p.GE == nil &&
		p.Reorder == 0 && p.RateMbps == 0 && len(p.Windows) == 0
}

// Partitioned reports whether link-local time now falls inside a
// scheduled partition window.
func (p *Profile) Partitioned(now time.Duration) bool {
	for _, w := range p.Windows {
		if now >= w.From && now < w.To {
			return true
		}
	}
	return false
}

// jitterDraw samples the extra per-frame delay from the configured
// distribution using the link's private RNG.
func (p *Profile) jitterDraw(rng *rand.Rand) time.Duration {
	if p.Jitter <= 0 {
		return 0
	}
	switch p.Dist {
	case JitterNormal:
		d := time.Duration(rng.NormFloat64() * float64(p.Jitter))
		if d < 0 {
			d = -d
		}
		return d
	default: // JitterUniform
		return time.Duration(rng.Int63n(int64(p.Jitter)))
	}
}

// reorderGap returns the effective hold-back applied to reordered frames.
func (p *Profile) reorderGap() time.Duration {
	if p.ReorderGap > 0 {
		return p.ReorderGap
	}
	if p.Jitter > 0 {
		return p.Jitter
	}
	return time.Millisecond
}

// LinkRNG derives the deterministic per-link random source for a link
// identified by name under a root seed, so every link draws from an
// uncorrelated but reproducible stream (same derivation as simnet.RNG).
func LinkRNG(seed int64, name string) *rand.Rand {
	return simnet.RNG(seed, "netem/"+name)
}
