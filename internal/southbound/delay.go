package southbound

import (
	"math/rand"
	"time"

	"repro/internal/netem"
)

// ImpairedConn applies a netem impairment profile to the Send leg of a
// Conn: every Send traverses the modeled WAN link (delay, jitter, loss,
// reordering, rate cap, partitions) before reaching the inner connection,
// while Recv stays immediate — the opposite leg is modeled by wrapping
// the peer's conn instead. Wrapping the connection an agent serves
// therefore impairs the device→controller leg (replies and events), so
// one wrapped direction models the full round trip, exactly as the old
// constant-delay wrapper did.
//
// Dropped frames still return nil from Send — a datagram sender on a
// lossy WAN gets no error either; recovery is the protocol's job (the
// ConnDevice fence pipeline retries timed-out barriers, discovery
// re-emits, liveness probes re-ping).
type ImpairedConn struct {
	inner Conn
	link  *netem.Link
}

// DelayedConn is the historical name for the constant-delay special case;
// it is now an ImpairedConn running a pure-delay profile.
type DelayedConn = ImpairedConn

// NewImpairedConn wraps inner so every Send traverses a WAN link impaired
// per prof, drawing impairment randomness from rng (nil is fine for
// profiles with no random dimension; see netem.LinkRNG for deriving
// per-link seeded streams). The link runs on its own wall-clock
// scheduler, stopped on Close.
func NewImpairedConn(inner Conn, prof netem.Profile, rng *rand.Rand) *ImpairedConn {
	c := &ImpairedConn{inner: inner}
	c.link = netem.NewWallLink(c.deliver, prof, rng)
	return c
}

// NewDelayedConn wraps inner so every Send is delivered delay later —
// the trivial Profile{Delay: d} impairment, kept as a compat alias so
// existing call sites read unchanged.
func NewDelayedConn(inner Conn, delay time.Duration) *DelayedConn {
	return NewImpairedConn(inner, netem.Profile{Delay: delay}, nil)
}

// Link exposes the underlying netem link for live reconfiguration
// (SetProfile to activate impairment after a clean bootstrap, SetDown to
// force a partition) and per-link Stats.
func (c *ImpairedConn) Link() *netem.Link { return c.link }

// deliver is the link's sink: a surviving frame lands on the inner conn.
func (c *ImpairedConn) deliver(payload interface{}) {
	// The inner conn is gone; this frame and everything behind it dies
	// with it, exactly as frames in flight do on a real broken link.
	_ = c.inner.Send(payload.(Msg)) //softmow:allow errdiscard frames in flight die with a broken link; recovery is the fence/probe protocol's job
}

// Send implements Conn: the message enters the impairment pipeline and
// the call returns immediately (an agent emitting a reply is not the
// party paying the propagation time — the wire is).
func (c *ImpairedConn) Send(m Msg) error {
	if err := c.link.Send(m, wireSize(&m)); err != nil {
		return ErrClosed
	}
	return nil
}

// Recv implements Conn, unimpaired (the opposite leg is modeled by
// wrapping the peer's conn instead).
func (c *ImpairedConn) Recv() (Msg, error) { return c.inner.Recv() }

// Close implements Conn. The inner conn closes first so a delivery
// blocked on a full in-process pipe unblocks, then the link shuts down:
// after Close returns, no queued frame is ever delivered to the inner
// conn — frames in flight die, as they do when a real link is cut.
func (c *ImpairedConn) Close() error {
	err := c.inner.Close()
	if cerr := c.link.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// wireSize estimates m's encoded frame size in bytes for the netem rate
// model. It deliberately trades exactness for zero allocation on the
// Send path: fixed header plus a per-body-type estimate that scales with
// the variable-length parts that matter (batch length, port count).
func wireSize(m *Msg) int {
	const header = 16 // length prefix + type + xid + datapath
	switch b := m.Body.(type) {
	case FlowMod:
		return header + 96
	case FlowModBatch:
		return header + 8 + 96*len(b.Mods)
	case FeatureReply:
		return header + 64 + 32*len(b.Ports)
	case PacketIn, PacketOut:
		return header + 128
	case Echo:
		return header + 8 + len(b.Payload)
	case Frag:
		return header + 8 + len(b.Data)
	default:
		return header + 32
	}
}
