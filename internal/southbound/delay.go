package southbound

import (
	"sync"
	"time"
)

// DelayedConn wraps a Conn and holds every Send back by a fixed duration,
// emulating the one-way propagation delay of a WAN control channel.
// Sends are pipelined, not stop-and-wait: a burst of messages is released
// as the same burst one delay later, exactly like frames in flight on a
// long link. Wrapping the connection an agent serves therefore delays the
// device→controller leg (replies and events) while controller→device
// stays immediate — one wrapped direction models the full round trip.
//
// The wall clock here only shapes measured latency; it never feeds
// replayable state, so the workload harness's seed determinism is
// unaffected.
type DelayedConn struct {
	inner Conn
	delay time.Duration

	mu     sync.Mutex
	q      []delayedMsg // guarded by mu; FIFO, popped only by forward
	head   int          // guarded by mu; index of the first unsent entry
	closed bool         // guarded by mu

	wake chan struct{} // cap 1, kicked on enqueue
	done chan struct{} // closed on Close
}

type delayedMsg struct {
	m   Msg
	due time.Time
}

// NewDelayedConn wraps inner so every Send is delivered delay later.
func NewDelayedConn(inner Conn, delay time.Duration) *DelayedConn {
	c := &DelayedConn{
		inner: inner,
		delay: delay,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go c.forward()
	return c
}

// Send implements Conn: the message is queued for delivery one delay from
// now and the call returns immediately (an agent emitting a reply is not
// the party paying the propagation time — the wire is).
func (c *DelayedConn) Send(m Msg) error {
	due := time.Now().Add(c.delay) //softmow:allow determinism emulated propagation delay shapes measured latency only, never replayable state
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.q = append(c.q, delayedMsg{m: m, due: due})
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return nil
}

// Recv implements Conn, undelayed (the opposite leg is modeled by
// wrapping the peer's conn instead).
func (c *DelayedConn) Recv() (Msg, error) { return c.inner.Recv() }

// Close implements Conn. Queued but undelivered messages are dropped, as
// frames in flight are when a link dies.
func (c *DelayedConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.inner.Close()
}

// forward is the wire: it releases queued messages to the inner conn when
// their delay elapses, preserving FIFO order.
func (c *DelayedConn) forward() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		c.mu.Lock()
		var next delayedMsg
		have := c.head < len(c.q)
		if have {
			next = c.q[c.head]
		} else if c.head > 0 {
			// Fully drained: release the backing array.
			c.q, c.head = nil, 0
		}
		c.mu.Unlock()
		if !have {
			select {
			case <-c.wake:
				continue
			case <-c.done:
				return
			}
		}
		// Emulated propagation delay shapes measured latency only, never
		// replayable state.
		if d := time.Until(next.due); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-c.done:
				return
			}
		}
		c.mu.Lock()
		c.head++
		c.mu.Unlock()
		if err := c.inner.Send(next.m); err != nil {
			// The inner conn is gone; everything behind this message dies
			// with it, exactly as it would on a real broken link.
			return
		}
	}
}
