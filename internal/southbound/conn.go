package southbound

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/dataplane"
)

// Conn is a bidirectional message channel between a controller and a
// device (or between two controllers, for the RecA agent's parent link).
type Conn interface {
	// Send enqueues a message; it fails after Close.
	Send(Msg) error
	// Recv blocks until a message arrives or the connection closes, in
	// which case it returns io.EOF.
	Recv() (Msg, error)
	// Close tears down both directions. Idempotent.
	Close() error
}

// ErrClosed is returned by Send on a closed connection.
var ErrClosed = errors.New("southbound: connection closed")

// chanConn is one end of an in-process connection.
type chanConn struct {
	out chan<- Msg
	in  <-chan Msg

	mu sync.Mutex
	// closed records a local Close, guarded by mu.
	closed bool
	done   chan struct{} // shared between both ends
}

// Pipe returns two connected in-process Conn endpoints with the given
// buffer depth per direction. Closing either end closes both.
func Pipe(buffer int) (Conn, Conn) {
	ab := make(chan Msg, buffer)
	ba := make(chan Msg, buffer)
	done := make(chan struct{})
	a := &chanConn{out: ab, in: ba, done: done}
	b := &chanConn{out: ba, in: ab, done: done}
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m Msg) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

// Recv implements Conn.
func (c *chanConn) Recv() (Msg, error) {
	// Prefer buffered messages so close doesn't drop in-flight traffic: a
	// closed connection keeps yielding queued messages until the buffer is
	// empty, then reports io.EOF.
	select {
	case m := <-c.in:
		return m, nil
	default:
	}
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		select {
		case m := <-c.in:
			return m, nil
		default:
			return Msg{}, io.EOF
		}
	}
}

// Close implements Conn.
func (c *chanConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return nil
}

// gobConn frames messages with encoding/gob over a net.Conn for
// distributed deployments. Encoders and decoders are guarded so a gobConn
// may be shared by a sender and a receiver goroutine.
type gobConn struct {
	nc   net.Conn
	encM sync.Mutex
	// enc is the shared stream encoder, guarded by encM.
	enc  *gob.Encoder
	decM sync.Mutex
	// dec is the shared stream decoder, guarded by decM.
	dec *gob.Decoder

	closeOnce sync.Once
	closeErr  error
}

// NewGobConn wraps a net.Conn in the gob codec.
func NewGobConn(nc net.Conn) Conn {
	return &gobConn{nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}
}

// Send implements Conn.
func (g *gobConn) Send(m Msg) error {
	g.encM.Lock()
	defer g.encM.Unlock()
	if err := g.enc.Encode(&m); err != nil {
		return fmt.Errorf("southbound: encode: %w", err)
	}
	return nil
}

// Recv implements Conn.
func (g *gobConn) Recv() (Msg, error) {
	g.decM.Lock()
	defer g.decM.Unlock()
	var m Msg
	if err := g.dec.Decode(&m); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return Msg{}, io.EOF
		}
		return Msg{}, fmt.Errorf("southbound: decode: %w", err)
	}
	return m, nil
}

// Close implements Conn.
func (g *gobConn) Close() error {
	g.closeOnce.Do(func() { g.closeErr = g.nc.Close() })
	return g.closeErr
}

// RegisterGobTypes registers every Body payload type plus control payloads
// supplied by higher layers with encoding/gob. Callers sending custom
// Control payloads over gob connections must register them too.
func RegisterGobTypes(extra ...interface{}) {
	gob.Register(Hello{})
	gob.Register(Echo{})
	gob.Register(FeatureRequest{})
	gob.Register(FeatureReply{})
	gob.Register(PacketIn{})
	gob.Register(PacketOut{})
	gob.Register(FlowMod{})
	gob.Register(FlowModBatch{})
	gob.Register(PortStatus{})
	gob.Register(RoleRequest{})
	gob.Register(RoleReply{})
	gob.Register(Barrier{})
	gob.Register(Error{})
	gob.Register(NbFabric{})
	gob.Register(&dataplane.Packet{})
	for _, e := range extra {
		gob.Register(e)
	}
}

// Handshake performs the Hello exchange from the initiating side and
// verifies version compatibility.
func Handshake(c Conn, sender string) error {
	if err := c.Send(Msg{Type: TypeHello, Body: Hello{Sender: sender, Version: ProtocolVersion}}); err != nil {
		return err
	}
	m, err := c.Recv()
	if err != nil {
		return err
	}
	if m.Type != TypeHello {
		return fmt.Errorf("southbound: expected hello, got %v", m.Type)
	}
	h, ok := m.Body.(Hello)
	if !ok {
		return fmt.Errorf("southbound: malformed hello body %T", m.Body)
	}
	if h.Version != ProtocolVersion {
		return fmt.Errorf("southbound: version mismatch: local %d, peer %d", ProtocolVersion, h.Version)
	}
	return nil
}

// Accept answers a Hello from the passive side.
func Accept(c Conn, sender string) (peer string, err error) {
	m, err := c.Recv()
	if err != nil {
		return "", err
	}
	if m.Type != TypeHello {
		return "", fmt.Errorf("southbound: expected hello, got %v", m.Type)
	}
	h, ok := m.Body.(Hello)
	if !ok {
		return "", fmt.Errorf("southbound: malformed hello body %T", m.Body)
	}
	if h.Version != ProtocolVersion {
		// Best-effort courtesy notice: the handshake is failing anyway, and
		// the error below already carries the full diagnosis.
		_ = c.Send(Msg{Type: TypeError, Body: Error{Code: ErrCodeVersionMismatch, Message: "version mismatch"}}) //softmow:allow errdiscard best-effort notice on an already-failing handshake
		return "", fmt.Errorf("southbound: version mismatch: local %d, peer %d", ProtocolVersion, h.Version)
	}
	if err := c.Send(Msg{Type: TypeHello, Body: Hello{Sender: sender, Version: ProtocolVersion}}); err != nil {
		return "", err
	}
	return h.Sender, nil
}
