package southbound

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"repro/internal/dataplane"
)

// Binary wire format (DESIGN.md §7). Each message is one length-prefixed
// frame:
//
//	offset size  field
//	0      4     payload length N, big endian (excludes these 4 bytes)
//	4      1     wire version (WireVersion)
//	5      1     message type (MsgType)
//	6      4     xid, big endian
//	10     2     datapath length L, big endian
//	12     L     datapath bytes
//	12+L   …     body (per-type layout below)
//
// Hot-path bodies (flow mods, barriers, errors, hellos, port/role events)
// are hand-encoded with fixed-width integers and length-prefixed strings.
// Cold bodies that carry interface values or deep structure (FeatureReply,
// PacketIn, PacketOut) are nested as one gob blob — they flow once per
// dial or per punted packet, not per rule, so self-describing overhead is
// irrelevant there and the hot path never pays for reflection.

// WireVersion is the binary framing version byte. Decoders reject frames
// carrying any other value, giving the format room to evolve.
const WireVersion = 1

// MaxFrameSize bounds one frame's payload ON THE WIRE. Oversized length
// prefixes are rejected before any allocation, so a corrupt or hostile
// peer cannot make Recv allocate unbounded memory. Logical messages whose
// encoding exceeds this limit are carried as a run of TypeFrag
// continuation frames (each itself within the limit) and reassembled by
// the receiving BinConn, up to MaxAssembledSize.
const MaxFrameSize = 1 << 20

// MaxAssembledSize bounds a reassembled logical frame: the largest
// payload AppendFrame will produce and DecodeFrame will accept. A large
// region's northbound abstraction or prefix snapshot can exceed one wire
// frame, but 16 MiB of control state on one message indicates a bug or a
// hostile peer.
const MaxAssembledSize = 16 << 20

// String length limits within a frame: generic strings (owners, names,
// prefixes) carry a 2-byte length; echo payloads a 4-byte one.
const maxWireString = math.MaxUint16

type wireError struct{ msg string }

func (e *wireError) Error() string { return "southbound: wire: " + e.msg }

func wireErrorf(format string, args ...interface{}) error {
	return &wireError{msg: fmt.Sprintf(format, args...)}
}

// AppendFrame appends the frame encoding of m (length prefix included) to
// dst and returns the extended slice. Encoding into a caller-owned buffer
// keeps the hot path allocation-free: Send reuses one pooled buffer per
// write.
func AppendFrame(dst []byte, m *Msg) ([]byte, error) {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length, patched below
	dst = append(dst, WireVersion, byte(m.Type))
	dst = binary.BigEndian.AppendUint32(dst, m.Xid)
	var err error
	if dst, err = appendString(dst, string(m.Datapath)); err != nil {
		return nil, err
	}
	if dst, err = appendBody(dst, m); err != nil {
		return nil, err
	}
	payload := len(dst) - lenAt - 4
	if payload > MaxAssembledSize {
		return nil, wireErrorf("frame payload %d exceeds limit %d", payload, MaxAssembledSize)
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(payload))
	return dst, nil
}

func appendBody(dst []byte, m *Msg) ([]byte, error) {
	switch m.Type {
	case TypeHello:
		b, ok := m.Body.(Hello)
		if !ok {
			return nil, wireErrorf("hello body is %T", m.Body)
		}
		var err error
		if dst, err = appendString(dst, b.Sender); err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint32(dst, uint32(int32(b.Version))), nil

	case TypeEchoRequest, TypeEchoReply:
		b, ok := m.Body.(Echo)
		if !ok {
			return nil, wireErrorf("echo body is %T", m.Body)
		}
		return appendLongString(dst, b.Payload)

	case TypeFeatureRequest:
		return dst, nil

	case TypeBarrierRequest, TypeBarrierReply:
		return dst, nil

	case TypeFlowMod:
		b, ok := m.Body.(FlowMod)
		if !ok {
			return nil, wireErrorf("flow-mod body is %T", m.Body)
		}
		return appendFlowMod(dst, &b)

	case TypeFlowModBatch:
		b, ok := m.Body.(FlowModBatch)
		if !ok {
			return nil, wireErrorf("flow-mod-batch body is %T", m.Body)
		}
		if len(b.Mods) > maxWireString {
			return nil, wireErrorf("batch of %d mods exceeds limit", len(b.Mods))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(b.Mods)))
		var err error
		for i := range b.Mods {
			if dst, err = appendFlowMod(dst, &b.Mods[i]); err != nil {
				return nil, err
			}
		}
		return dst, nil

	case TypePortStatus:
		b, ok := m.Body.(PortStatus)
		if !ok {
			return nil, wireErrorf("port-status body is %T", m.Body)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Port)))
		return appendBool(dst, b.Up), nil

	case TypeRoleRequest:
		b, ok := m.Body.(RoleRequest)
		if !ok {
			return nil, wireErrorf("role-request body is %T", m.Body)
		}
		var err error
		if dst, err = appendString(dst, b.Controller); err != nil {
			return nil, err
		}
		return append(dst, byte(b.Role)), nil

	case TypeRoleReply:
		b, ok := m.Body.(RoleReply)
		if !ok {
			return nil, wireErrorf("role-reply body is %T", m.Body)
		}
		var err error
		if dst, err = appendString(dst, b.Controller); err != nil {
			return nil, err
		}
		return append(dst, byte(b.Role)), nil

	case TypeError:
		b, ok := m.Body.(Error)
		if !ok {
			return nil, wireErrorf("error body is %T", m.Body)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Code)))
		return appendString(dst, b.Message)

	case TypeFrag:
		b, ok := m.Body.(Frag)
		if !ok {
			return nil, wireErrorf("frag body is %T", m.Body)
		}
		dst = appendBool(dst, b.Last)
		if len(b.Data) > MaxFrameSize {
			return nil, wireErrorf("fragment of %d bytes exceeds limit", len(b.Data))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Data)))
		return append(dst, b.Data...), nil

	case TypeNbBearer:
		b, ok := m.Body.(NbBearer)
		if !ok {
			return nil, wireErrorf("nb-bearer body is %T", m.Body)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.From)))
		var err error
		if dst, err = appendString(dst, b.Prefix); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Objective)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.MaxHops)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.MaxLatency))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(b.MinBandwidth))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.MaxTotalHops)))
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.MaxTotalRTT))
		if dst, err = appendMatch(dst, &b.Match); err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(b.Demand)), nil

	case TypeNbPathReply:
		b, ok := m.Body.(NbPathReply)
		if !ok {
			return nil, wireErrorf("nb-path-reply body is %T", m.Body)
		}
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.Path))
		var err error
		if dst, err = appendString(dst, b.Owner); err != nil {
			return nil, err
		}
		return appendString(dst, b.Err)

	case TypeNbHandover:
		b, ok := m.Body.(NbHandover)
		if !ok {
			return nil, wireErrorf("nb-handover body is %T", m.Body)
		}
		var err error
		for _, s := range []string{b.UE, string(b.SrcGBS), string(b.SrcBS),
			string(b.DstGBS), string(b.DstBS), b.Prefix} {
			if dst, err = appendString(dst, s); err != nil {
				return nil, err
			}
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.QoS)))
		return binary.BigEndian.AppendUint32(dst, uint32(int32(b.Objective))), nil

	case TypeNbTeardown:
		b, ok := m.Body.(NbTeardown)
		if !ok {
			return nil, wireErrorf("nb-teardown body is %T", m.Body)
		}
		var err error
		if dst, err = appendString(dst, b.Owner); err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(dst, uint64(b.Path)), nil

	case TypeNbAck:
		b, ok := m.Body.(NbAck)
		if !ok {
			return nil, wireErrorf("nb-ack body is %T", m.Body)
		}
		return appendString(dst, b.Err)

	case TypeNbInterdomain:
		b, ok := m.Body.(NbInterdomain)
		if !ok {
			return nil, wireErrorf("nb-interdomain body is %T", m.Body)
		}
		if len(b.Options) > maxWireString {
			return nil, wireErrorf("%d route options exceed limit", len(b.Options))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(b.Options)))
		var err error
		for _, o := range b.Options {
			if dst, err = appendString(dst, o.Prefix); err != nil {
				return nil, err
			}
			if dst, err = appendString(dst, o.Egress); err != nil {
				return nil, err
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(o.Port)))
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(o.Hops)))
			dst = binary.BigEndian.AppendUint64(dst, uint64(o.RTT))
		}
		return dst, nil

	case TypeNbReabstract:
		return dst, nil

	case TypeNbUEState:
		b, ok := m.Body.(NbUEState)
		if !ok {
			return nil, wireErrorf("nb-ue-state body is %T", m.Body)
		}
		if len(b.Rows) > math.MaxInt32 {
			return nil, wireErrorf("%d ue rows exceed limit", len(b.Rows))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Rows)))
		var err error
		for _, r := range b.Rows {
			for _, s := range []string{r.UE, string(r.BS), string(r.Group), r.Prefix} {
				if dst, err = appendString(dst, s); err != nil {
					return nil, err
				}
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.QoS)))
			dst = binary.BigEndian.AppendUint64(dst, uint64(r.Path))
			if dst, err = appendString(dst, r.Owner); err != nil {
				return nil, err
			}
			dst = appendBool(dst, r.Active)
		}
		return dst, nil

	case TypeFeatureReply, TypePacketIn, TypePacketOut, TypeNbFabric:
		return appendGobBody(dst, m)

	default:
		return nil, wireErrorf("cannot encode message type %d", int(m.Type))
	}
}

func appendFlowMod(dst []byte, fm *FlowMod) ([]byte, error) {
	dst = append(dst, byte(fm.Command))
	var err error
	if dst, err = appendRule(dst, &fm.Rule); err != nil {
		return nil, err
	}
	if dst, err = appendString(dst, fm.Owner); err != nil {
		return nil, err
	}
	return binary.BigEndian.AppendUint32(dst, uint32(int32(fm.Version))), nil
}

// appendMatch encodes a flow match: in-port, label predicate, UE/IP/prefix
// selectors, QoS. Shared by the rule encoding and the northbound bearer
// delegation body.
func appendMatch(dst []byte, m *dataplane.Match) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.InPort)))
	dst = appendBool(dst, m.HasLabel)
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Label))
	dst = appendBool(dst, m.MatchNoLabel)
	var err error
	for _, s := range []string{m.UE, m.SrcIP, m.DstPrefix} {
		if dst, err = appendString(dst, s); err != nil {
			return nil, err
		}
	}
	return binary.BigEndian.AppendUint32(dst, uint32(int32(m.QoS))), nil
}

func appendRule(dst []byte, r *dataplane.Rule) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.Priority)))
	var err error
	if dst, err = appendMatch(dst, &r.Match); err != nil {
		return nil, err
	}
	if len(r.Actions) > maxWireString {
		return nil, wireErrorf("%d actions exceed limit", len(r.Actions))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Actions)))
	for _, a := range r.Actions {
		dst = append(dst, byte(a.Op))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(a.Port)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(a.Label))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(r.Version)))
	if dst, err = appendString(dst, r.Owner); err != nil {
		return nil, err
	}
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Demand)), nil
}

// appendGobBody nests the body as a length-prefixed gob blob. One-shot
// encoders resend type descriptors per message; acceptable because these
// bodies are off the rule-programming hot path.
func appendGobBody(dst []byte, m *Msg) ([]byte, error) {
	registerWireGob()
	var buf bytes.Buffer
	// Encode through the envelope so interface-valued fields (PacketIn
	// Control payloads) reuse the registrations the gob codec relies on.
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, wireErrorf("gob body: %v", err)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(buf.Len()))
	return append(dst, buf.Bytes()...), nil
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > maxWireString {
		return nil, wireErrorf("string of %d bytes exceeds limit", len(s))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendLongString(dst []byte, s string) ([]byte, error) {
	if len(s) > MaxAssembledSize {
		return nil, wireErrorf("payload of %d bytes exceeds limit", len(s))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...), nil
}

// frameReader is a bounds-checked cursor over one frame payload. Every
// read reports truncation through ok instead of panicking, which is what
// lets DecodeFrame run over fuzzer-generated garbage safely.
type frameReader struct {
	b   []byte
	off int
}

func (fr *frameReader) take(n int) ([]byte, bool) {
	if n < 0 || len(fr.b)-fr.off < n {
		return nil, false
	}
	out := fr.b[fr.off : fr.off+n]
	fr.off += n
	return out, true
}

func (fr *frameReader) u8() (byte, bool) {
	b, ok := fr.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (fr *frameReader) u16() (uint16, bool) {
	b, ok := fr.take(2)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b), true
}

func (fr *frameReader) u32() (uint32, bool) {
	b, ok := fr.take(4)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}

func (fr *frameReader) u64() (uint64, bool) {
	b, ok := fr.take(8)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint64(b), true
}

func (fr *frameReader) i32() (int, bool) {
	v, ok := fr.u32()
	return int(int32(v)), ok
}

func (fr *frameReader) boolean() (bool, bool) {
	v, ok := fr.u8()
	return v != 0, ok
}

func (fr *frameReader) str() (string, bool) {
	n, ok := fr.u16()
	if !ok {
		return "", false
	}
	b, ok := fr.take(int(n))
	if !ok {
		return "", false
	}
	return string(b), true
}

func (fr *frameReader) longStr() (string, bool) {
	n, ok := fr.u32()
	if !ok || n > MaxAssembledSize {
		return "", false
	}
	b, ok := fr.take(int(n))
	if !ok {
		return "", false
	}
	return string(b), true
}

var errTruncated = &wireError{msg: "truncated frame"}

// DecodeFrame parses one frame payload (the bytes after the 4-byte length
// prefix) into a Msg. It never panics on malformed input: truncated,
// oversized, or trailing-garbage frames return an error.
func DecodeFrame(payload []byte) (Msg, error) {
	if len(payload) > MaxAssembledSize {
		return Msg{}, wireErrorf("frame payload %d exceeds limit %d", len(payload), MaxAssembledSize)
	}
	fr := &frameReader{b: payload}
	ver, ok := fr.u8()
	if !ok {
		return Msg{}, errTruncated
	}
	if ver != WireVersion {
		return Msg{}, wireErrorf("unsupported wire version %d (want %d)", ver, WireVersion)
	}
	mt, ok := fr.u8()
	if !ok {
		return Msg{}, errTruncated
	}
	m := Msg{Type: MsgType(mt)}
	if m.Xid, ok = fr.u32(); !ok {
		return Msg{}, errTruncated
	}
	dp, ok := fr.str()
	if !ok {
		return Msg{}, errTruncated
	}
	m.Datapath = dataplane.DeviceID(dp)
	if err := decodeBody(fr, &m); err != nil {
		return Msg{}, err
	}
	if fr.off != len(fr.b) {
		return Msg{}, wireErrorf("%d trailing bytes after %s body", len(fr.b)-fr.off, m.Type)
	}
	return m, nil
}

func decodeBody(fr *frameReader, m *Msg) error {
	switch m.Type {
	case TypeHello:
		var b Hello
		var ok bool
		if b.Sender, ok = fr.str(); !ok {
			return errTruncated
		}
		if b.Version, ok = fr.i32(); !ok {
			return errTruncated
		}
		m.Body = b
		return nil

	case TypeEchoRequest, TypeEchoReply:
		p, ok := fr.longStr()
		if !ok {
			return errTruncated
		}
		m.Body = Echo{Payload: p}
		return nil

	case TypeFeatureRequest:
		m.Body = FeatureRequest{}
		return nil

	case TypeBarrierRequest, TypeBarrierReply:
		m.Body = Barrier{}
		return nil

	case TypeFlowMod:
		fm, err := decodeFlowMod(fr)
		if err != nil {
			return err
		}
		m.Body = fm
		return nil

	case TypeFlowModBatch:
		n, ok := fr.u16()
		if !ok {
			return errTruncated
		}
		b := FlowModBatch{}
		if n > 0 {
			b.Mods = make([]FlowMod, 0, min(int(n), 1024))
			for i := 0; i < int(n); i++ {
				fm, err := decodeFlowMod(fr)
				if err != nil {
					return err
				}
				b.Mods = append(b.Mods, fm)
			}
		}
		m.Body = b
		return nil

	case TypePortStatus:
		var b PortStatus
		port, ok := fr.i32()
		if !ok {
			return errTruncated
		}
		b.Port = dataplane.PortID(port)
		if b.Up, ok = fr.boolean(); !ok {
			return errTruncated
		}
		m.Body = b
		return nil

	case TypeRoleRequest:
		ctrl, role, err := decodeRoleBody(fr)
		if err != nil {
			return err
		}
		m.Body = RoleRequest{Controller: ctrl, Role: role}
		return nil

	case TypeRoleReply:
		ctrl, role, err := decodeRoleBody(fr)
		if err != nil {
			return err
		}
		m.Body = RoleReply{Controller: ctrl, Role: role}
		return nil

	case TypeError:
		var b Error
		var ok bool
		if b.Code, ok = fr.i32(); !ok {
			return errTruncated
		}
		if b.Message, ok = fr.str(); !ok {
			return errTruncated
		}
		m.Body = b
		return nil

	case TypeFrag:
		var b Frag
		var ok bool
		if b.Last, ok = fr.boolean(); !ok {
			return errTruncated
		}
		n, ok := fr.u32()
		if !ok || n > MaxFrameSize {
			return errTruncated
		}
		data, ok := fr.take(int(n))
		if !ok {
			return errTruncated
		}
		// The payload slice aliases the receive scratch buffer; fragments
		// outlive the frame they arrived in, so copy.
		b.Data = append([]byte(nil), data...)
		m.Body = b
		return nil

	case TypeNbBearer:
		var b NbBearer
		from, ok := fr.i32()
		if !ok {
			return errTruncated
		}
		b.From = dataplane.PortID(from)
		if b.Prefix, ok = fr.str(); !ok {
			return errTruncated
		}
		if b.Objective, ok = fr.i32(); !ok {
			return errTruncated
		}
		if b.MaxHops, ok = fr.i32(); !ok {
			return errTruncated
		}
		lat, ok := fr.u64()
		if !ok {
			return errTruncated
		}
		b.MaxLatency = time.Duration(lat)
		bw, ok := fr.u64()
		if !ok {
			return errTruncated
		}
		b.MinBandwidth = math.Float64frombits(bw)
		if b.MaxTotalHops, ok = fr.i32(); !ok {
			return errTruncated
		}
		rtt, ok := fr.u64()
		if !ok {
			return errTruncated
		}
		b.MaxTotalRTT = time.Duration(rtt)
		if err := decodeMatch(fr, &b.Match); err != nil {
			return err
		}
		demand, ok := fr.u64()
		if !ok {
			return errTruncated
		}
		b.Demand = math.Float64frombits(demand)
		m.Body = b
		return nil

	case TypeNbPathReply:
		var b NbPathReply
		path, ok := fr.u64()
		if !ok {
			return errTruncated
		}
		b.Path = int64(path)
		if b.Owner, ok = fr.str(); !ok {
			return errTruncated
		}
		if b.Err, ok = fr.str(); !ok {
			return errTruncated
		}
		m.Body = b
		return nil

	case TypeNbHandover:
		var b NbHandover
		var ok bool
		var s [6]string
		for i := range s {
			if s[i], ok = fr.str(); !ok {
				return errTruncated
			}
		}
		b.UE = s[0]
		b.SrcGBS = dataplane.DeviceID(s[1])
		b.SrcBS = dataplane.DeviceID(s[2])
		b.DstGBS = dataplane.DeviceID(s[3])
		b.DstBS = dataplane.DeviceID(s[4])
		b.Prefix = s[5]
		if b.QoS, ok = fr.i32(); !ok {
			return errTruncated
		}
		if b.Objective, ok = fr.i32(); !ok {
			return errTruncated
		}
		m.Body = b
		return nil

	case TypeNbTeardown:
		var b NbTeardown
		var ok bool
		if b.Owner, ok = fr.str(); !ok {
			return errTruncated
		}
		path, ok := fr.u64()
		if !ok {
			return errTruncated
		}
		b.Path = int64(path)
		m.Body = b
		return nil

	case TypeNbAck:
		var b NbAck
		var ok bool
		if b.Err, ok = fr.str(); !ok {
			return errTruncated
		}
		m.Body = b
		return nil

	case TypeNbInterdomain:
		n, ok := fr.u16()
		if !ok {
			return errTruncated
		}
		b := NbInterdomain{}
		if n > 0 {
			b.Options = make([]NbRouteOption, 0, min(int(n), 1024))
			for i := 0; i < int(n); i++ {
				var o NbRouteOption
				if o.Prefix, ok = fr.str(); !ok {
					return errTruncated
				}
				if o.Egress, ok = fr.str(); !ok {
					return errTruncated
				}
				port, ok := fr.i32()
				if !ok {
					return errTruncated
				}
				o.Port = dataplane.PortID(port)
				if o.Hops, ok = fr.i32(); !ok {
					return errTruncated
				}
				rtt, ok := fr.u64()
				if !ok {
					return errTruncated
				}
				o.RTT = time.Duration(rtt)
				b.Options = append(b.Options, o)
			}
		}
		m.Body = b
		return nil

	case TypeNbReabstract:
		m.Body = NbReabstract{}
		return nil

	case TypeNbUEState:
		n, ok := fr.u32()
		if !ok {
			return errTruncated
		}
		b := NbUEState{}
		if n > 0 {
			b.Rows = make([]NbUERow, 0, min(int(n), 4096))
			for i := 0; i < int(n); i++ {
				var r NbUERow
				var s [4]string
				for j := range s {
					if s[j], ok = fr.str(); !ok {
						return errTruncated
					}
				}
				r.UE = s[0]
				r.BS = dataplane.DeviceID(s[1])
				r.Group = dataplane.DeviceID(s[2])
				r.Prefix = s[3]
				if r.QoS, ok = fr.i32(); !ok {
					return errTruncated
				}
				path, ok := fr.u64()
				if !ok {
					return errTruncated
				}
				r.Path = int64(path)
				if r.Owner, ok = fr.str(); !ok {
					return errTruncated
				}
				if r.Active, ok = fr.boolean(); !ok {
					return errTruncated
				}
				b.Rows = append(b.Rows, r)
			}
		}
		m.Body = b
		return nil

	case TypeFeatureReply, TypePacketIn, TypePacketOut, TypeNbFabric:
		return decodeGobBody(fr, m)

	default:
		return wireErrorf("cannot decode message type %d", int(m.Type))
	}
}

func decodeRoleBody(fr *frameReader) (string, Role, error) {
	ctrl, ok := fr.str()
	if !ok {
		return "", 0, errTruncated
	}
	role, ok := fr.u8()
	if !ok {
		return "", 0, errTruncated
	}
	return ctrl, Role(role), nil
}

func decodeFlowMod(fr *frameReader) (FlowMod, error) {
	var fm FlowMod
	cmd, ok := fr.u8()
	if !ok {
		return fm, errTruncated
	}
	fm.Command = FlowModCommand(cmd)
	if err := decodeRule(fr, &fm.Rule); err != nil {
		return fm, err
	}
	if fm.Owner, ok = fr.str(); !ok {
		return fm, errTruncated
	}
	if fm.Version, ok = fr.i32(); !ok {
		return fm, errTruncated
	}
	return fm, nil
}

// decodeMatch is the inverse of appendMatch.
func decodeMatch(fr *frameReader, m *dataplane.Match) error {
	inPort, ok := fr.i32()
	if !ok {
		return errTruncated
	}
	m.InPort = dataplane.PortID(inPort)
	if m.HasLabel, ok = fr.boolean(); !ok {
		return errTruncated
	}
	label, ok := fr.u32()
	if !ok {
		return errTruncated
	}
	m.Label = dataplane.Label(label)
	if m.MatchNoLabel, ok = fr.boolean(); !ok {
		return errTruncated
	}
	if m.UE, ok = fr.str(); !ok {
		return errTruncated
	}
	if m.SrcIP, ok = fr.str(); !ok {
		return errTruncated
	}
	if m.DstPrefix, ok = fr.str(); !ok {
		return errTruncated
	}
	if m.QoS, ok = fr.i32(); !ok {
		return errTruncated
	}
	return nil
}

func decodeRule(fr *frameReader, r *dataplane.Rule) error {
	var ok bool
	if r.Priority, ok = fr.i32(); !ok {
		return errTruncated
	}
	if err := decodeMatch(fr, &r.Match); err != nil {
		return err
	}
	nActs, ok := fr.u16()
	if !ok {
		return errTruncated
	}
	if nActs > 0 {
		r.Actions = make([]dataplane.Action, 0, min(int(nActs), 256))
		for i := 0; i < int(nActs); i++ {
			op, ok := fr.u8()
			if !ok {
				return errTruncated
			}
			port, ok := fr.i32()
			if !ok {
				return errTruncated
			}
			label, ok := fr.u32()
			if !ok {
				return errTruncated
			}
			r.Actions = append(r.Actions, dataplane.Action{
				Op: dataplane.ActionOp(op), Port: dataplane.PortID(port),
				Label: dataplane.Label(label),
			})
		}
	}
	if r.Version, ok = fr.i32(); !ok {
		return errTruncated
	}
	if r.Owner, ok = fr.str(); !ok {
		return errTruncated
	}
	demand, ok := fr.u64()
	if !ok {
		return errTruncated
	}
	r.Demand = math.Float64frombits(demand)
	return nil
}

func decodeGobBody(fr *frameReader, m *Msg) error {
	n, ok := fr.u32()
	if !ok || n > MaxAssembledSize {
		return errTruncated
	}
	blob, ok := fr.take(int(n))
	if !ok {
		return errTruncated
	}
	registerWireGob()
	var inner Msg
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&inner); err != nil {
		return wireErrorf("gob body: %v", err)
	}
	if inner.Type != m.Type {
		return wireErrorf("gob body type %s under %s envelope", inner.Type, m.Type)
	}
	m.Body = inner.Body
	return nil
}
