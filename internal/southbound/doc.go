// Package southbound defines the OpenFlow-like control protocol spoken
// between SoftMoW controllers and data-plane devices — physical switches at
// the leaf level, and gigantic (logical) devices exposed by child
// controllers at higher levels (§3.3: "NOS communicates with switches
// (logical or physical) using a southbound API, e.g. OpenFlow API extended
// to support our virtual fabric feature").
//
// Two transports are provided: an in-process channel pair (Pipe) for
// simulations, and a gob-encoded length-delimited TCP codec (NewGobConn)
// for distributed deployments. Both satisfy the Conn interface.
//
// # Message model
//
// Every exchange is a Msg carrying a MsgType, a transaction ID (Xid) for
// request/reply correlation, and a typed Body (messages.go). Rule
// programming is asynchronous: TypeFlowMod and TypeFlowModBatch are not
// individually acknowledged; the controller fences a logical group of
// modifications with one TypeBarrierRequest, and a device reports
// failures via TypeError referencing the offending Xid. A
// TypeFlowModBatch is applied strictly in order and aborts at the first
// failing FlowMod, so after an error the device holds exactly a prefix
// of the batch — the controller rolls that prefix back by owner/version
// (see internal/core's flushBatch). DESIGN.md §"Southbound rule
// programming" specifies the full protocol and its failure semantics.
//
// # Package layout
//
//   - messages.go — wire types: MsgType, Msg, FlowMod, FlowModBatch,
//     FeatureReply, PacketIn/Out, PortStatus, roles, errors
//   - conn.go — Conn interface, Pipe, the gob/TCP codec, handshakes
//     (Dial/Accept), and gob type registration
//   - agent.go — SwitchAgent, the device-side endpoint serving a
//     physical switch to one or more controllers with role arbitration
package southbound
