package southbound

import (
	"sort"
	"sync"
	"time"

	"repro/internal/dataplane"
	"repro/internal/metrics"
)

// droppedSends counts device-to-controller messages lost on dead or closing
// connections. Sends to a closed peer are expected during teardown (Serve's
// exit prunes the peer), but a growing counter on a healthy deployment
// points at a controller that stopped draining its connection.
var droppedSends = metrics.NewCounter("southbound.dropped_sends")

// LinkMetaFiller lets control payloads (link-discovery frames) learn the
// properties of the physical link they cross, as the paper's leaf
// controllers record in the frame's meta data field (§4.1.2).
type LinkMetaFiller interface {
	FillLinkMeta(latency time.Duration, bandwidthMbps float64)
}

// SwitchAgent is the device-side protocol endpoint for a physical switch.
// It serves any number of controller connections with per-connection roles:
// master and equal controllers may modify state, slaves only observe, and
// data-plane events are duplicated to every attached controller (the
// behaviour §6 relies on for hot-standby failover and §5.3.2 for the
// equal-role region handover).
type SwitchAgent struct {
	Net *dataplane.Network
	Sw  *dataplane.Switch

	mu sync.Mutex
	// conns maps live controller connections to their peers, guarded by mu.
	conns map[Conn]*agentPeer
}

type agentPeer struct {
	name string
	role Role
	conn Conn
}

// NewSwitchAgent wires an agent to a switch and installs itself as the
// switch's controller hook.
func NewSwitchAgent(net *dataplane.Network, sw *dataplane.Switch) *SwitchAgent {
	a := &SwitchAgent{Net: net, Sw: sw, conns: make(map[Conn]*agentPeer)}
	sw.SetHook(a)
	return a
}

// PacketIn implements dataplane.ControllerHook: punted packets are
// duplicated to every attached controller.
func (a *SwitchAgent) PacketIn(sw dataplane.DeviceID, inPort dataplane.PortID, p *dataplane.Packet) {
	a.broadcast(Msg{
		Type:     TypePacketIn,
		Datapath: sw,
		Body:     PacketIn{InPort: inPort, Packet: p},
	})
}

// PortStatus implements dataplane.ControllerHook.
func (a *SwitchAgent) PortStatus(sw dataplane.DeviceID, port dataplane.PortID, up bool) {
	a.broadcast(Msg{
		Type:     TypePortStatus,
		Datapath: sw,
		Body:     PortStatus{Port: port, Up: up},
	})
}

// ControlIn forwards an encapsulated control payload (e.g. a link-discovery
// frame arriving on a port) to all controllers.
func (a *SwitchAgent) ControlIn(inPort dataplane.PortID, control interface{}) {
	a.broadcast(Msg{
		Type:     TypePacketIn,
		Datapath: a.Sw.ID,
		Body:     PacketIn{InPort: inPort, Control: control},
	})
}

// send delivers one message to a peer, counting (rather than silently
// dropping) failures: a send can only fail when the connection is closed or
// its transport died, and the peer is then pruned by Serve's exit.
func (a *SwitchAgent) send(p *agentPeer, m Msg) {
	if err := p.conn.Send(m); err != nil {
		droppedSends.Inc()
	}
}

func (a *SwitchAgent) broadcast(m Msg) {
	a.mu.Lock()
	peers := make([]*agentPeer, 0, len(a.conns))
	for _, p := range a.conns {
		peers = append(peers, p)
	}
	a.mu.Unlock()
	// Deliver in deterministic (controller-name) order, not map order:
	// controllers append these events to replayable logs.
	sort.Slice(peers, func(i, j int) bool { return peers[i].name < peers[j].name })
	for _, p := range peers {
		a.send(p, m)
	}
}

// Roles returns a snapshot of attached controller names and roles.
func (a *SwitchAgent) Roles() map[string]Role {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]Role, len(a.conns))
	for _, p := range a.conns {
		out[p.name] = p.role
	}
	return out
}

// Serve accepts the Hello handshake on c and then processes controller
// requests until the connection closes. It is typically run in its own
// goroutine per controller connection. The initial role is master.
func (a *SwitchAgent) Serve(c Conn) error {
	peerName, err := Accept(c, string(a.Sw.ID))
	if err != nil {
		return err
	}
	peer := &agentPeer{name: peerName, role: RoleMaster, conn: c}
	a.mu.Lock()
	a.conns[c] = peer
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.conns, c)
		a.mu.Unlock()
	}()

	for {
		m, err := c.Recv()
		if err != nil {
			return nil // connection closed
		}
		a.handle(peer, m)
	}
}

func (a *SwitchAgent) handle(peer *agentPeer, m Msg) {
	switch m.Type {
	case TypeEchoRequest:
		body, _ := m.Body.(Echo)
		a.send(peer, Msg{Type: TypeEchoReply, Xid: m.Xid, Datapath: a.Sw.ID, Body: body})

	case TypeFeatureRequest:
		a.send(peer, Msg{Type: TypeFeatureReply, Xid: m.Xid, Datapath: a.Sw.ID, Body: a.features()})

	case TypeFlowMod:
		if peer.role == RoleSlave || peer.role == RoleNone {
			a.send(peer, Msg{Type: TypeError, Xid: m.Xid, Datapath: a.Sw.ID,
				Body: Error{Code: ErrCodePermission, Message: "slave may not modify flows"}})
			return
		}
		fm, ok := m.Body.(FlowMod)
		if !ok {
			a.send(peer, Msg{Type: TypeError, Xid: m.Xid, Datapath: a.Sw.ID,
				Body: Error{Code: ErrCodeBadRequest, Message: "malformed flow-mod"}})
			return
		}
		if err := a.applyFlowMod(fm); err != nil {
			a.send(peer, Msg{Type: TypeError, Xid: m.Xid, Datapath: a.Sw.ID,
				Body: Error{Code: ErrCodeBadRequest, Message: err.Error()}})
		}

	case TypeFlowModBatch:
		if peer.role == RoleSlave || peer.role == RoleNone {
			a.send(peer, Msg{Type: TypeError, Xid: m.Xid, Datapath: a.Sw.ID,
				Body: Error{Code: ErrCodePermission, Message: "slave may not modify flows"}})
			return
		}
		fb, ok := m.Body.(FlowModBatch)
		if !ok {
			a.send(peer, Msg{Type: TypeError, Xid: m.Xid, Datapath: a.Sw.ID,
				Body: Error{Code: ErrCodeBadRequest, Message: "malformed flow-mod batch"}})
			return
		}
		// Mods apply strictly in order; the first failure aborts the rest,
		// leaving the already-applied prefix in place. The controller's
		// fence observes the error and rolls the partial version back.
		for _, fm := range fb.Mods {
			if err := a.applyFlowMod(fm); err != nil {
				a.send(peer, Msg{Type: TypeError, Xid: m.Xid, Datapath: a.Sw.ID,
					Body: Error{Code: ErrCodeBadRequest, Message: err.Error()}})
				return
			}
		}

	case TypePacketOut:
		po, ok := m.Body.(PacketOut)
		if !ok {
			return
		}
		a.packetOut(peer, m.Xid, po)

	case TypeRoleRequest:
		rr, ok := m.Body.(RoleRequest)
		if !ok {
			return
		}
		peer.role = rr.Role
		a.send(peer, Msg{Type: TypeRoleReply, Xid: m.Xid, Datapath: a.Sw.ID,
			Body: RoleReply{Controller: peer.name, Role: rr.Role}})

	case TypeBarrierRequest:
		a.send(peer, Msg{Type: TypeBarrierReply, Xid: m.Xid, Datapath: a.Sw.ID, Body: Barrier{}})
	}
}

// applyFlowMod executes one FlowMod against the switch. Only FlowAdd can
// fail (admission control in the data plane); the delete commands are
// idempotent filters.
func (a *SwitchAgent) applyFlowMod(fm FlowMod) error {
	switch fm.Command {
	case FlowAdd:
		return a.Net.InstallRule(a.Sw.ID, fm.Rule)
	case FlowDeleteOwner:
		a.Net.RemoveRulesOwner(a.Sw.ID, fm.Owner, nil)
	case FlowDeleteVersion:
		a.Net.RemoveRulesIf(a.Sw.ID, func(r *dataplane.Rule) bool { return r.Version == fm.Version })
	case FlowDeleteOwnerBefore:
		a.Net.RemoveRulesOwner(a.Sw.ID, fm.Owner, func(r *dataplane.Rule) bool {
			return r.Version < fm.Version
		})
	case FlowDeleteOwnerVersion:
		a.Net.RemoveRulesOwner(a.Sw.ID, fm.Owner, func(r *dataplane.Rule) bool {
			return r.Version == fm.Version
		})
	}
	return nil
}

func (a *SwitchAgent) features() FeatureReply {
	return BuildFeatures(a.Sw)
}

// BuildFeatures constructs the FeatureReply for a physical switch. It is
// shared by the protocol agent and the in-process device adapter.
func BuildFeatures(sw *dataplane.Switch) FeatureReply {
	fr := FeatureReply{Device: sw.ID, Kind: dataplane.KindSwitch}
	for _, p := range sw.Ports() {
		up := p.Link == nil || p.Link.Up()
		fr.Ports = append(fr.Ports, PortInfo{
			ID: p.ID, Up: up, External: p.External,
			ExternalDomain: p.ExternalDomain, Radio: p.Radio,
		})
	}
	return fr
}

// packetOut emits a payload from a switch port. Control payloads crossing a
// physical link are delivered to the far switch's agent as a PacketIn —
// this is the data-plane leg of the recursive link discovery protocol
// (§4.1.2). Data packets are injected into the traversal engine on the far
// side.
func (a *SwitchAgent) packetOut(peer *agentPeer, xid uint32, po PacketOut) {
	if peer.role == RoleSlave || peer.role == RoleNone {
		return
	}
	port := a.Sw.PortByID(po.OutPort)
	if port == nil {
		a.send(peer, Msg{Type: TypeError, Xid: xid, Datapath: a.Sw.ID,
			Body: Error{Code: ErrCodeUnknownPort, Message: "packet-out on unknown port"}})
		return
	}
	if port.External || port.Link == nil || !port.Link.Up() {
		return // discovery frames die on external or down ports
	}
	far, ok := port.Link.Other(a.Sw.ID)
	if !ok {
		return
	}
	farSw := a.Net.Switch(far.Dev)
	if farSw == nil {
		return
	}
	if po.Control != nil {
		if f, ok := po.Control.(LinkMetaFiller); ok {
			f.FillLinkMeta(port.Link.Latency, port.Link.Available())
		}
		if h := farSw.Hook(); h != nil {
			if agent, ok := h.(*SwitchAgent); ok {
				agent.ControlIn(far.Port, po.Control)
			}
		}
		return
	}
	if po.Packet != nil {
		// A rejected injection means the packet died in the data plane
		// (unknown far switch, no matching rule) — exactly what happens to a
		// real frame, so there is nothing to report to the sending peer.
		_, _ = a.Net.Inject(far.Dev, far.Port, po.Packet) //softmow:allow errdiscard packet loss is data-plane behaviour, not an agent fault
	}
}
