package southbound

import (
	"testing"
	"time"

	"repro/internal/dataplane"
)

// testHarness wires a two-switch network with agents and returns controller
// ends of the connections.
type testHarness struct {
	net    *dataplane.Network
	agents map[dataplane.DeviceID]*SwitchAgent
}

func newHarness(t *testing.T, ids ...dataplane.DeviceID) *testHarness {
	t.Helper()
	h := &testHarness{net: dataplane.NewNetwork(), agents: make(map[dataplane.DeviceID]*SwitchAgent)}
	for _, id := range ids {
		sw := h.net.AddSwitch(id)
		h.agents[id] = NewSwitchAgent(h.net, sw)
	}
	return h
}

// connect dials a controller connection to a switch agent and completes the
// handshake.
func (h *testHarness) connect(t *testing.T, ctrl string, sw dataplane.DeviceID) Conn {
	t.Helper()
	c, d := Pipe(64)
	go h.agents[sw].Serve(d)
	if err := Handshake(c, ctrl); err != nil {
		t.Fatal(err)
	}
	return c
}

func recvType(t *testing.T, c Conn, want MsgType) Msg {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		done := make(chan Msg, 1)
		errc := make(chan error, 1)
		go func() {
			m, err := c.Recv()
			if err != nil {
				errc <- err
				return
			}
			done <- m
		}()
		select {
		case m := <-done:
			if m.Type == want {
				return m
			}
			// skip unrelated events
		case err := <-errc:
			t.Fatalf("recv: %v", err)
		case <-deadline:
			t.Fatalf("timeout waiting for %v", want)
		}
	}
}

func TestAgentEcho(t *testing.T) {
	h := newHarness(t, "SW1")
	c := h.connect(t, "ctrl", "SW1")
	defer c.Close()
	c.Send(Msg{Type: TypeEchoRequest, Xid: 5, Body: Echo{Payload: "ping"}})
	m := recvType(t, c, TypeEchoReply)
	if m.Xid != 5 || m.Body.(Echo).Payload != "ping" {
		t.Fatalf("echo mangled: %+v", m)
	}
}

func TestAgentFeatures(t *testing.T) {
	h := newHarness(t, "SW1", "SW2")
	h.net.Connect("SW1", "SW2", time.Millisecond, 100)
	h.net.AddEgress("E1", "SW1", "isp")
	c := h.connect(t, "ctrl", "SW1")
	defer c.Close()
	c.Send(Msg{Type: TypeFeatureRequest, Xid: 1, Body: FeatureRequest{}})
	m := recvType(t, c, TypeFeatureReply)
	fr := m.Body.(FeatureReply)
	if fr.Device != "SW1" || fr.Kind != dataplane.KindSwitch {
		t.Fatalf("features: %+v", fr)
	}
	if len(fr.Ports) != 2 {
		t.Fatalf("ports = %d", len(fr.Ports))
	}
	foundExt := false
	for _, p := range fr.Ports {
		if p.External && p.ExternalDomain == "isp" {
			foundExt = true
		}
	}
	if !foundExt {
		t.Fatal("external port not reported")
	}
}

func TestAgentFlowMod(t *testing.T) {
	h := newHarness(t, "SW1")
	c := h.connect(t, "ctrl", "SW1")
	defer c.Close()
	c.Send(Msg{Type: TypeFlowMod, Body: FlowMod{
		Command: FlowAdd,
		Rule: dataplane.Rule{Priority: 3, Match: dataplane.AnyMatch(),
			Actions: []dataplane.Action{dataplane.Drop()}, Owner: "ctrl"},
	}})
	// barrier to sequence
	c.Send(Msg{Type: TypeBarrierRequest, Xid: 9, Body: Barrier{}})
	recvType(t, c, TypeBarrierReply)
	if h.net.Switch("SW1").Table.Len() != 1 {
		t.Fatal("flow not installed")
	}
	c.Send(Msg{Type: TypeFlowMod, Body: FlowMod{Command: FlowDeleteOwner, Owner: "ctrl"}})
	c.Send(Msg{Type: TypeBarrierRequest, Body: Barrier{}})
	recvType(t, c, TypeBarrierReply)
	if h.net.Switch("SW1").Table.Len() != 0 {
		t.Fatal("flow not removed")
	}
}

func TestSlaveCannotModify(t *testing.T) {
	h := newHarness(t, "SW1")
	c := h.connect(t, "standby", "SW1")
	defer c.Close()
	c.Send(Msg{Type: TypeRoleRequest, Xid: 2, Body: RoleRequest{Controller: "standby", Role: RoleSlave}})
	m := recvType(t, c, TypeRoleReply)
	if m.Body.(RoleReply).Role != RoleSlave {
		t.Fatalf("role reply: %+v", m)
	}
	c.Send(Msg{Type: TypeFlowMod, Body: FlowMod{Command: FlowAdd,
		Rule: dataplane.Rule{Priority: 1, Match: dataplane.AnyMatch()}}})
	em := recvType(t, c, TypeError)
	if em.Body.(Error).Code != ErrCodePermission {
		t.Fatalf("expected permission error, got %+v", em)
	}
	if h.net.Switch("SW1").Table.Len() != 0 {
		t.Fatal("slave installed a rule")
	}
}

func TestEventsDuplicatedToAllControllers(t *testing.T) {
	h := newHarness(t, "SW1")
	master := h.connect(t, "master", "SW1")
	standby := h.connect(t, "standby", "SW1")
	defer master.Close()
	defer standby.Close()

	// punt a packet via table miss
	h.net.Inject("SW1", dataplane.PortAny, &dataplane.Packet{UE: "u1"})

	for _, c := range []Conn{master, standby} {
		m := recvType(t, c, TypePacketIn)
		pi := m.Body.(PacketIn)
		if pi.Packet == nil || pi.Packet.UE != "u1" {
			t.Fatalf("packet-in mangled: %+v", pi)
		}
	}
}

func TestPacketOutControlCrossesLink(t *testing.T) {
	h := newHarness(t, "SW1", "SW2")
	h.net.Connect("SW1", "SW2", time.Millisecond, 100)
	c1 := h.connect(t, "ctrl", "SW1")
	c2 := h.connect(t, "ctrl", "SW2")
	defer c1.Close()
	defer c2.Close()

	c1.Send(Msg{Type: TypePacketOut, Body: PacketOut{OutPort: 1, Control: "discovery-frame"}})
	m := recvType(t, c2, TypePacketIn)
	pi := m.Body.(PacketIn)
	if pi.Control != "discovery-frame" {
		t.Fatalf("control payload mangled: %+v", pi)
	}
	if pi.InPort != 1 {
		t.Fatalf("in-port = %d", pi.InPort)
	}
}

func TestPacketOutOnDownLinkDropped(t *testing.T) {
	h := newHarness(t, "SW1", "SW2")
	l, _ := h.net.Connect("SW1", "SW2", time.Millisecond, 100)
	c1 := h.connect(t, "ctrl", "SW1")
	c2 := h.connect(t, "ctrl", "SW2")
	defer c1.Close()
	defer c2.Close()
	l.SetUp(false)
	c1.Send(Msg{Type: TypePacketOut, Body: PacketOut{OutPort: 1, Control: "x"}})
	// run an echo round-trip to ensure the packet-out was processed
	c1.Send(Msg{Type: TypeEchoRequest, Body: Echo{}})
	recvType(t, c1, TypeEchoReply)
	// SW2 must not have received anything: verify with a non-blocking probe
	probe := make(chan Msg, 1)
	go func() {
		m, err := c2.Recv()
		if err == nil {
			probe <- m
		}
	}()
	select {
	case m := <-probe:
		t.Fatalf("unexpected delivery over down link: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPacketOutUnknownPort(t *testing.T) {
	h := newHarness(t, "SW1")
	c := h.connect(t, "ctrl", "SW1")
	defer c.Close()
	c.Send(Msg{Type: TypePacketOut, Xid: 3, Body: PacketOut{OutPort: 42, Control: "x"}})
	m := recvType(t, c, TypeError)
	if m.Body.(Error).Code != ErrCodeUnknownPort {
		t.Fatalf("error = %+v", m)
	}
}

func TestPortStatusBroadcast(t *testing.T) {
	h := newHarness(t, "SW1", "SW2")
	l, _ := h.net.Connect("SW1", "SW2", time.Millisecond, 100)
	c := h.connect(t, "ctrl", "SW1")
	defer c.Close()
	h.net.SetLinkState(l, false)
	m := recvType(t, c, TypePortStatus)
	ps := m.Body.(PortStatus)
	if ps.Up || ps.Port != 1 {
		t.Fatalf("port status: %+v", ps)
	}
}

func TestRolesSnapshot(t *testing.T) {
	h := newHarness(t, "SW1")
	c := h.connect(t, "m", "SW1")
	defer c.Close()
	c.Send(Msg{Type: TypeEchoRequest, Body: Echo{}})
	recvType(t, c, TypeEchoReply)
	roles := h.agents["SW1"].Roles()
	if roles["m"] != RoleMaster {
		t.Fatalf("roles = %v", roles)
	}
}
