package southbound

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// WriteDeadliner is implemented by connections whose Send can be bounded
// by a per-write deadline. ConnDevice derives the timeout from its own
// RequestTimeout at dial, so a stalled peer surfaces as a Send error
// instead of wedging every sender on the conn (the gob codec's failure
// mode).
type WriteDeadliner interface {
	// SetWriteTimeout bounds each subsequent Send; 0 disables the bound.
	SetWriteTimeout(time.Duration)
}

// framePool recycles frame encode buffers across sends and connections.
var framePool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

// BinConn frames messages with the hand-rolled binary codec (codec.go)
// over a net.Conn. Encoding appends into a pooled buffer and decoding
// reads into a per-conn scratch slice, so steady-state sends and receives
// of hot-path messages do not allocate.
type BinConn struct {
	nc net.Conn

	wM sync.Mutex // serializes writers on nc

	rM sync.Mutex
	// rbuf is the receive scratch buffer, guarded by rM.
	rbuf []byte

	// writeTimeout bounds each Send in nanoseconds (0 = unbounded).
	writeTimeout atomic.Int64

	closeOnce sync.Once
	closeErr  error
	closed    atomic.Bool
}

// NewBinConn wraps a net.Conn in the binary codec.
func NewBinConn(nc net.Conn) *BinConn {
	return &BinConn{nc: nc}
}

// NewWireConn wraps nc in the default binary codec, or in the legacy gob
// codec when useGob is set — the compatibility flag for peers that predate
// the binary framing.
func NewWireConn(nc net.Conn, useGob bool) Conn {
	if useGob {
		return NewGobConn(nc)
	}
	return NewBinConn(nc)
}

// SetWriteTimeout implements WriteDeadliner.
func (c *BinConn) SetWriteTimeout(d time.Duration) {
	c.writeTimeout.Store(int64(d))
}

// fragChunkSize is the largest Frag.Data slice Send will emit per
// continuation frame. The margin below MaxFrameSize covers the frame
// header plus the fragment body's own fields, keeping every wire frame of
// a fragmented run within the hard per-frame limit.
const fragChunkSize = MaxFrameSize - 64

// Send implements Conn. With a write timeout set, the socket write is
// armed with a deadline; a peer that stops reading fails the Send within
// the timeout instead of blocking it (and every queued sender behind wM)
// forever. Close from another goroutine also unblocks an in-flight write.
// A logical frame whose payload exceeds MaxFrameSize is transparently
// split into a contiguous run of TypeFrag frames.
func (c *BinConn) Send(m Msg) error {
	bufp := framePool.Get().(*[]byte)
	buf, err := AppendFrame((*bufp)[:0], &m)
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	*bufp = buf[:0]

	if len(buf)-4 > MaxFrameSize {
		err := c.sendFragmented(buf[4:])
		framePool.Put(bufp)
		return err
	}

	c.wM.Lock()
	if wt := time.Duration(c.writeTimeout.Load()); wt > 0 {
		deadline := time.Now().Add(wt) //softmow:allow determinism write-deadline arming only, never feeds replayable state
		if err := c.nc.SetWriteDeadline(deadline); err != nil {
			c.wM.Unlock()
			framePool.Put(bufp)
			return c.sendErr(err)
		}
	}
	_, werr := c.nc.Write(buf)
	c.wM.Unlock()
	framePool.Put(bufp)
	if werr != nil {
		return c.sendErr(werr)
	}
	return nil
}

// sendFragmented writes one oversized logical payload as a run of
// TypeFrag wire frames. The writer lock is held across the whole run so
// frames from concurrent senders can never interleave into it; the
// receiver reassembles the run back into the original payload.
func (c *BinConn) sendFragmented(payload []byte) error {
	fbufp := framePool.Get().(*[]byte)
	defer framePool.Put(fbufp)
	c.wM.Lock()
	defer c.wM.Unlock()
	for off := 0; off < len(payload); {
		n := len(payload) - off
		if n > fragChunkSize {
			n = fragChunkSize
		}
		chunk := payload[off : off+n]
		off += n
		fbuf, err := AppendFrame((*fbufp)[:0], &Msg{
			Type: TypeFrag,
			Body: Frag{Last: off == len(payload), Data: chunk},
		})
		if err != nil {
			return err
		}
		*fbufp = fbuf[:0]
		if wt := time.Duration(c.writeTimeout.Load()); wt > 0 {
			deadline := time.Now().Add(wt) //softmow:allow determinism write-deadline arming only, never feeds replayable state
			if err := c.nc.SetWriteDeadline(deadline); err != nil {
				return c.sendErr(err)
			}
		}
		if _, err := c.nc.Write(fbuf); err != nil {
			return c.sendErr(err)
		}
	}
	return nil
}

func (c *BinConn) sendErr(err error) error {
	if c.closed.Load() || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("southbound: write deadline exceeded: %w", err)
	}
	return fmt.Errorf("southbound: write: %w", err)
}

// Recv implements Conn. A run of TypeFrag frames is reassembled into the
// original logical frame before decoding; anything else decodes directly.
func (c *BinConn) Recv() (Msg, error) {
	c.rM.Lock()
	defer c.rM.Unlock()
	var assembled []byte
	for {
		payload, err := c.readFrameLocked()
		if err != nil {
			return Msg{}, err
		}
		m, err := DecodeFrame(payload)
		if err != nil {
			return Msg{}, err
		}
		if m.Type != TypeFrag {
			if assembled != nil {
				// The sender holds its writer lock across a fragment run,
				// so an interleaved frame means a broken peer.
				return Msg{}, wireErrorf("%s frame inside fragment run", m.Type)
			}
			return m, nil
		}
		f, ok := m.Body.(Frag)
		if !ok {
			return Msg{}, wireErrorf("frag body is %T", m.Body)
		}
		if len(assembled)+len(f.Data) > MaxAssembledSize {
			return Msg{}, wireErrorf("reassembled frame exceeds limit %d", MaxAssembledSize)
		}
		assembled = append(assembled, f.Data...)
		if f.Last {
			return DecodeFrame(assembled)
		}
	}
}

// readFrameLocked reads one length-prefixed wire frame into the receive scratch
// buffer and returns its payload. The returned slice is only valid until
// the next readFrameLocked call.
func (c *BinConn) readFrameLocked() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return nil, c.recvErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		// The stream is unrecoverable past a bogus length; fail hard.
		return nil, wireErrorf("frame payload %d exceeds limit %d", n, MaxFrameSize)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	payload := c.rbuf[:n]
	if _, err := io.ReadFull(c.nc, payload); err != nil {
		return nil, c.recvErr(err)
	}
	return payload, nil
}

func (c *BinConn) recvErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return io.EOF
	}
	return fmt.Errorf("southbound: read: %w", err)
}

// Close implements Conn. It also unblocks any Send stalled inside the
// socket write.
func (c *BinConn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.closeErr = c.nc.Close()
	})
	return c.closeErr
}

// wireGobOnce backs registerWireGob.
var wireGobOnce sync.Once

// registerWireGob ensures the standard body types are gob-registered
// before a gob-nested body (FeatureReply, PacketIn, PacketOut) is encoded
// or decoded, without requiring every binary-codec user to call
// RegisterGobTypes. Custom Control payloads still need explicit
// registration, exactly as on the gob codec.
func registerWireGob() {
	wireGobOnce.Do(func() { RegisterGobTypes() })
}
