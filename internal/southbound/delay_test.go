package southbound

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/testutil/leakcheck"
)

// recordingConn counts Sends and flags any Send that arrives after the
// test marks the wrapper's Close as returned.
type recordingConn struct {
	closeReturned *atomic.Bool

	mu sync.Mutex
	// sent counts delivered messages, guarded by mu.
	sent int
	// late counts deliveries after Close returned, guarded by mu.
	late int
}

func (r *recordingConn) Send(m Msg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent++
	if r.closeReturned.Load() {
		r.late++
	}
	return nil
}

func (r *recordingConn) Recv() (Msg, error) { return Msg{}, io.EOF }
func (r *recordingConn) Close() error       { return nil }

// TestImpairedConnCloseOrdering is the regression test for the old
// DelayedConn race: a queued frame must never land on the inner conn
// after Close returns. Races Close against deliveries coming due across
// many rounds and phases.
func TestImpairedConnCloseOrdering(t *testing.T) {
	defer leakcheck.Check(t)
	for round := 0; round < 100; round++ {
		var closeReturned atomic.Bool
		inner := &recordingConn{closeReturned: &closeReturned}
		c := NewDelayedConn(inner, 100*time.Microsecond)
		for i := 0; i < 20; i++ {
			if err := c.Send(Msg{Type: TypeEchoReply, Xid: uint32(i)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		// Vary the phase so some rounds close before anything is due,
		// some mid-burst, some after everything delivered.
		time.Sleep(time.Duration(round%8) * 50 * time.Microsecond)
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		closeReturned.Store(true)
		if err := c.Send(Msg{Type: TypeEchoReply}); err == nil {
			t.Fatal("Send after Close succeeded")
		}
	}
	// Let any (buggy) straggler goroutine fire before checking.
	time.Sleep(2 * time.Millisecond)
}

// TestImpairedConnCloseLate verifies the post-Close delivery count is
// actually zero (recordingConn.late) rather than merely racing clean.
func TestImpairedConnCloseLate(t *testing.T) {
	var closeReturned atomic.Bool
	inner := &recordingConn{closeReturned: &closeReturned}
	c := NewDelayedConn(inner, 500*time.Microsecond)
	for i := 0; i < 50; i++ {
		if err := c.Send(Msg{Type: TypeEchoReply, Xid: uint32(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	closeReturned.Store(true)
	time.Sleep(5 * time.Millisecond)
	inner.mu.Lock()
	defer inner.mu.Unlock()
	if inner.late != 0 {
		t.Fatalf("%d frames delivered after Close returned", inner.late)
	}
}

// TestDelayedConnCompat: the compat constructor still behaves as the old
// constant-delay wrapper — frames arrive in order, no earlier than the
// configured delay, and none are lost.
func TestDelayedConnCompat(t *testing.T) {
	defer leakcheck.Check(t)
	a, b := Pipe(64)
	c := NewDelayedConn(a, 2*time.Millisecond)
	start := time.Now()
	const n = 10
	for i := 0; i < n; i++ {
		if err := c.Send(Msg{Type: TypeEchoReply, Xid: uint32(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Xid != uint32(i) {
			t.Fatalf("recv %d: got xid %d, FIFO violated", i, m.Xid)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("burst arrived after %v, before the 2ms delay elapsed", elapsed)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("recv on closed pipe: %v, want EOF", err)
	}
}

// TestImpairedConnLossRecoversNothing: a lossy profile drops frames
// silently — Send still reports success, the link stats record the drop.
func TestImpairedConnLossRecoversNothing(t *testing.T) {
	defer leakcheck.Check(t)
	a, b := Pipe(1024)
	c := NewImpairedConn(a, netem.Profile{Loss: 0.5}, netem.LinkRNG(9, "test-loss"))
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Send(Msg{Type: TypeEchoReply, Xid: uint32(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	st := c.Link().Stats()
	if st.DroppedLoss == 0 || st.DroppedLoss == n {
		t.Fatalf("DroppedLoss = %d out of %d sends: loss model inert or total", st.DroppedLoss, n)
	}
	// Drain what survived; then tear down.
	survivors := int(st.Sent - st.DroppedLoss)
	for i := 0; i < survivors; i++ {
		if _, err := b.Recv(); err != nil {
			// Remaining survivors may still be in flight; that's fine —
			// the point of the count is the drop accounting above.
			break
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
