package southbound

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/testutil/leakcheck"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()
	defer b.Close()
	if err := a.Send(Msg{Type: TypeEchoRequest, Xid: 7, Body: Echo{Payload: "hi"}}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeEchoRequest || m.Xid != 7 || m.Body.(Echo).Payload != "hi" {
		t.Fatalf("got %+v", m)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	leakcheck.Check(t)
	a, b := Pipe(0)
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("err = %v, want EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipeSendAfterClose(t *testing.T) {
	a, b := Pipe(1)
	b.Close()
	if err := a.Send(Msg{Type: TypeHello}); err == nil {
		// buffered message may be accepted before close observed; second
		// send must fail
		if err2 := a.Send(Msg{Type: TypeHello}); err2 == nil {
			t.Fatal("send after close should eventually fail")
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal("close must be idempotent across both ends")
	}
}

func TestPipeDrainAfterClose(t *testing.T) {
	a, b := Pipe(4)
	a.Send(Msg{Type: TypeEchoRequest})
	a.Close()
	// message sent before close should still be receivable
	if m, err := b.Recv(); err != nil || m.Type != TypeEchoRequest {
		t.Fatalf("drain failed: %v %v", m, err)
	}
}

func TestPipeDrainsFullBufferAfterClose(t *testing.T) {
	leakcheck.Check(t)
	// Every message buffered before close must be delivered, in order,
	// before Recv reports EOF — not just one racing message.
	a, b := Pipe(8)
	const n = 5
	for i := 0; i < n; i++ {
		if err := a.Send(Msg{Type: TypeEchoRequest, Xid: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("message %d lost after close: %v", i, err)
		}
		if m.Xid != uint32(i+1) {
			t.Fatalf("message %d reordered: xid=%d", i, m.Xid)
		}
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("err after drain = %v, want EOF", err)
	}
}

func TestHandshake(t *testing.T) {
	a, b := Pipe(2)
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var peer string
	var acceptErr error
	go func() {
		defer wg.Done()
		peer, acceptErr = Accept(b, "switch-1")
	}()
	if err := Handshake(a, "ctrl-1"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}
	if peer != "ctrl-1" {
		t.Fatalf("peer = %q", peer)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	a, b := Pipe(2)
	defer a.Close()
	defer b.Close()
	go func() {
		a.Send(Msg{Type: TypeHello, Body: Hello{Sender: "old", Version: 99}})
	}()
	if _, err := Accept(b, "sw"); err == nil {
		t.Fatal("version mismatch should fail")
	}
}

func TestHandshakeWrongFirstMessage(t *testing.T) {
	a, b := Pipe(2)
	defer a.Close()
	defer b.Close()
	go a.Send(Msg{Type: TypeEchoRequest})
	if _, err := Accept(b, "sw"); err == nil {
		t.Fatal("non-hello first message should fail")
	}
}

func TestGobConnOverTCP(t *testing.T) {
	RegisterGobTypes()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		msg Msg
		err error
	}
	got := make(chan result, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			got <- result{err: err}
			return
		}
		c := NewGobConn(nc)
		defer c.Close()
		m, err := c.Recv()
		got <- result{msg: m, err: err}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewGobConn(nc)
	defer c.Close()

	fabric := dataplane.NewVFabric()
	fabric.Set(1, 2, dataplane.PathMetrics{Hops: 3, Latency: 5 * time.Millisecond, Bandwidth: 800, Reachable: true})
	sent := Msg{
		Type:     TypeFeatureReply,
		Xid:      42,
		Datapath: "GS1",
		Body: FeatureReply{
			Device: "GS1",
			Kind:   dataplane.KindGSwitch,
			Ports:  []PortInfo{{ID: 1, Up: true}, {ID: 2, Up: true, External: true, ExternalDomain: "isp"}},
		},
	}
	if err := c.Send(sent); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.msg.Type != TypeFeatureReply || r.msg.Datapath != "GS1" || r.msg.Xid != 42 {
		t.Fatalf("envelope mangled: %+v", r.msg)
	}
	body, ok := r.msg.Body.(FeatureReply)
	if !ok {
		t.Fatalf("body type %T", r.msg.Body)
	}
	if len(body.Ports) != 2 || !body.Ports[1].External {
		t.Fatalf("ports mangled: %+v", body.Ports)
	}
}

func TestGobConnEOFOnClose(t *testing.T) {
	leakcheck.Check(t)
	RegisterGobTypes()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errc := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		c := NewGobConn(nc)
		_, err = c.Recv()
		errc <- err
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewGobConn(nc)
	c.Close()
	if err := <-errc; err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestPacketOverGob(t *testing.T) {
	RegisterGobTypes()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	got := make(chan Msg, 1)
	go func() {
		nc, _ := ln.Accept()
		c := NewGobConn(nc)
		m, _ := c.Recv()
		got <- m
	}()
	nc, _ := net.Dial("tcp", ln.Addr().String())
	c := NewGobConn(nc)
	defer c.Close()
	pkt := &dataplane.Packet{UE: "ue9", DstPrefix: "p1", QoS: 5}
	pkt.PushLabel(77)
	if err := c.Send(Msg{Type: TypePacketIn, Body: PacketIn{InPort: 3, Packet: pkt}}); err != nil {
		t.Fatal(err)
	}
	m := <-got
	pi := m.Body.(PacketIn)
	if pi.Packet.UE != "ue9" {
		t.Fatalf("packet mangled: %+v", pi.Packet)
	}
	if l, ok := pi.Packet.TopLabel(); !ok || l != 77 {
		t.Fatalf("label lost over the wire: %v %v", l, ok)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	types := []MsgType{TypeHello, TypeEchoRequest, TypeEchoReply, TypeFeatureRequest,
		TypeFeatureReply, TypePacketIn, TypePacketOut, TypeFlowMod, TypePortStatus,
		TypeRoleRequest, TypeRoleReply, TypeBarrierRequest, TypeBarrierReply, TypeError}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if MsgType(99).String() != "msgtype(99)" {
		t.Fatal("unknown type string")
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleMaster.String() != "master" || RoleEqual.String() != "equal" ||
		RoleSlave.String() != "slave" || RoleNone.String() != "none" {
		t.Fatal("role strings")
	}
}
