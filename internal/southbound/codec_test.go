package southbound

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/testutil/leakcheck"
)

// sampleMsgs covers every message type the codec encodes, with
// representative field values (negative ports, wildcards, label stacks,
// multi-rule batches).
func sampleMsgs() []Msg {
	fab := dataplane.NewVFabric()
	fab.Set(1, 2, dataplane.PathMetrics{Hops: 3, Latency: 5 * time.Millisecond, Bandwidth: 1000})
	pkt := &dataplane.Packet{UE: "ue0000001", SrcIP: "10.0.0.1", DstPrefix: "pfx1", QoS: 1}
	rule := dataplane.Rule{
		Priority: 107,
		Match: dataplane.Match{
			InPort: dataplane.PortAny, HasLabel: true, Label: 42,
			UE: "ue0000001", SrcIP: "10.0.0.1", DstPrefix: "pfx1", QoS: -1,
		},
		Actions: []dataplane.Action{dataplane.Push(9), dataplane.Output(3)},
		Version: 7, Owner: "L0/p12", Demand: 1.5,
	}
	return []Msg{
		{Type: TypeHello, Body: Hello{Sender: "L0", Version: ProtocolVersion}},
		{Type: TypeEchoRequest, Xid: 1, Body: Echo{Payload: "ping"}},
		{Type: TypeEchoReply, Xid: 1, Body: Echo{Payload: "ping"}},
		{Type: TypeFeatureRequest, Xid: 2, Datapath: "A0", Body: FeatureRequest{}},
		{Type: TypeFeatureReply, Xid: 2, Datapath: "A0", Body: FeatureReply{
			Device: "A0", Kind: dataplane.KindSwitch,
			Ports:  []PortInfo{{ID: 1, Up: true}, {ID: 2, Up: false, External: true, ExternalDomain: "isp0"}},
			Fabric: fab,
		}},
		{Type: TypePacketIn, Xid: 3, Datapath: "A0", Body: PacketIn{InPort: 1, Packet: pkt}},
		{Type: TypePacketOut, Xid: 4, Datapath: "A0", Body: PacketOut{OutPort: 2, Packet: pkt}},
		{Type: TypeFlowMod, Xid: 5, Datapath: "A0", Body: FlowMod{Command: FlowAdd, Rule: rule}},
		{Type: TypeFlowMod, Xid: 6, Datapath: "A0", Body: FlowMod{
			Command: FlowDeleteOwnerVersion, Owner: "L0/p12", Version: 7,
		}},
		{Type: TypePortStatus, Xid: 0, Datapath: "E0", Body: PortStatus{Port: 4, Up: false}},
		{Type: TypeRoleRequest, Xid: 7, Datapath: "A0", Body: RoleRequest{Controller: "L1", Role: RoleEqual}},
		{Type: TypeRoleReply, Xid: 7, Datapath: "A0", Body: RoleReply{Controller: "L1", Role: RoleEqual}},
		{Type: TypeBarrierRequest, Xid: 8, Datapath: "A0", Body: Barrier{}},
		{Type: TypeBarrierReply, Xid: 8, Datapath: "A0", Body: Barrier{}},
		{Type: TypeError, Xid: 9, Datapath: "A0", Body: Error{Code: ErrCodeBadRequest, Message: "no such port"}},
		{Type: TypeFlowModBatch, Xid: 10, Datapath: "A0", Body: FlowModBatch{Mods: []FlowMod{
			{Command: FlowAdd, Rule: rule},
			{Command: FlowDeleteOwnerBefore, Owner: "L0/p12", Version: 9},
		}}},
		{Type: TypeNbBearer, Xid: 11, Datapath: "gsw-L0", Body: NbBearer{
			From: 3, Prefix: "pfx2", Objective: 1, MaxHops: 8,
			MaxLatency: 20 * time.Millisecond, MinBandwidth: 50,
			MaxTotalHops: 12, MaxTotalRTT: 80 * time.Millisecond,
			Match: rule.Match, Demand: 2.5,
		}},
		{Type: TypeNbPathReply, Xid: 11, Datapath: "gsw-L0", Body: NbPathReply{
			Path: 9001, Owner: "root", Err: "",
		}},
		{Type: TypeNbHandover, Xid: 12, Datapath: "gsw-L0", Body: NbHandover{
			UE: "ue0000001", SrcGBS: "g0", SrcBS: "b0-1",
			DstGBS: "g1", DstBS: "b1-2", Prefix: "pfx1", QoS: 1, Objective: 0,
		}},
		{Type: TypeNbTeardown, Xid: 13, Datapath: "gsw-L0", Body: NbTeardown{Owner: "root", Path: 9001}},
		{Type: TypeNbAck, Xid: 13, Datapath: "gsw-L0", Body: NbAck{Err: "no such path"}},
		{Type: TypeNbInterdomain, Xid: 14, Datapath: "gsw-L0", Body: NbInterdomain{Options: []NbRouteOption{
			{Prefix: "pfx9", Egress: "X0", Port: 4, Hops: 3, RTT: 12 * time.Millisecond},
			{Prefix: "pfx8", Egress: "X1", Port: 2, Hops: 5, RTT: 30 * time.Millisecond},
		}}},
		{Type: TypeNbFabric, Xid: 15, Datapath: "gsw-L0", Body: NbFabric{Fabric: fab}},
		{Type: TypeNbReabstract, Xid: 16, Datapath: "gsw-L0", Body: NbReabstract{}},
		{Type: TypeNbUEState, Xid: 17, Datapath: "gsw-L0", Body: NbUEState{Rows: []NbUERow{
			{UE: "ue0000001", BS: "b0-1", Group: "g0", Prefix: "pfx1", QoS: 1, Path: 9001, Owner: "root", Active: true},
			{UE: "ue0000002", BS: "b0-2", Group: "g0", Prefix: "pfx2", QoS: 2, Path: 0, Owner: "", Active: false},
		}}},
	}
}

// frameOnlyMsgs are messages exercised at the frame codec layer but never
// sent through a BinConn as-is: a conn-level Send of TypeFrag would start
// a fragment run on the receiver.
func frameOnlyMsgs() []Msg {
	return []Msg{
		{Type: TypeFrag, Body: Frag{Last: false, Data: []byte{1, 2, 3, 4}}},
		{Type: TypeFrag, Body: Frag{Last: true}},
	}
}

// encodePayload returns the frame payload (length prefix stripped).
func encodePayload(t testing.TB, m Msg) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, &m)
	if err != nil {
		t.Fatalf("AppendFrame(%s): %v", m.Type, err)
	}
	return buf[4:]
}

func TestFrameRoundTripAllTypes(t *testing.T) {
	for _, m := range append(sampleMsgs(), frameOnlyMsgs()...) {
		payload := encodePayload(t, m)
		got, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("DecodeFrame(%s): %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", m.Type, got, m)
		}
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	for _, m := range sampleMsgs() {
		payload := encodePayload(t, m)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeFrame(payload[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded without error", m.Type, cut, len(payload))
			}
		}
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	valid := encodePayload(t, Msg{Type: TypeBarrierRequest, Xid: 1, Datapath: "A0", Body: Barrier{}})

	t.Run("wrong wire version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = WireVersion + 1
		if _, err := DecodeFrame(bad); err == nil || !strings.Contains(err.Error(), "wire version") {
			t.Fatalf("got %v, want wire version error", err)
		}
	})
	t.Run("unknown message type", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[1] = 0xEE
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatal("unknown message type decoded without error")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), valid...), 0xFF)
		if _, err := DecodeFrame(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("got %v, want trailing-bytes error", err)
		}
	})
	t.Run("oversized payload", func(t *testing.T) {
		if _, err := DecodeFrame(make([]byte, MaxAssembledSize+1)); err == nil {
			t.Fatal("oversized payload decoded without error")
		}
	})
	t.Run("oversized encode", func(t *testing.T) {
		big := Msg{Type: TypeEchoRequest, Body: Echo{Payload: strings.Repeat("x", MaxAssembledSize)}}
		if _, err := AppendFrame(nil, &big); err == nil {
			t.Fatal("oversized frame encoded without error")
		}
	})
}

// TestBinConnOverTCP exercises the binary codec end to end over a real
// socket, including a gob-nested body.
func TestBinConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewWireConn(nc, false)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewWireConn(nc, false)
	defer client.Close()
	server := <-accepted
	defer server.Close()

	for _, m := range sampleMsgs() {
		if err := client.Send(m); err != nil {
			t.Fatalf("Send(%s): %v", m.Type, err)
		}
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv(%s): %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s over TCP mismatch:\n got %#v\nwant %#v", m.Type, got, m)
		}
	}
}

// TestBinConnFragmentation pins the oversize round trip: a logical frame
// whose payload exceeds MaxFrameSize crosses a real socket as a run of
// TypeFrag frames and reassembles to the original message; ordinary
// frames interleave cleanly after it.
func TestBinConnFragmentation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *BinConn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewBinConn(nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewBinConn(nc)
	defer client.Close()
	server := <-accepted
	defer server.Close()

	rows := make([]NbUERow, 0, 60_000)
	for i := 0; i < 60_000; i++ {
		rows = append(rows, NbUERow{
			UE: fmt.Sprintf("ue%07d", i), BS: "b0-1", Group: "g0",
			Prefix: "pfx1", QoS: 1, Path: int64(i), Owner: "root", Active: i%2 == 0,
		})
	}
	big := Msg{Type: TypeNbUEState, Xid: 42, Datapath: "gsw-L0", Body: NbUEState{Rows: rows}}
	if enc, err := AppendFrame(nil, &big); err != nil {
		t.Fatal(err)
	} else if len(enc)-4 <= MaxFrameSize {
		t.Fatalf("test payload %d bytes does not exceed MaxFrameSize", len(enc)-4)
	}
	small := Msg{Type: TypeBarrierRequest, Xid: 43, Datapath: "A0", Body: Barrier{}}

	sendErr := make(chan error, 1)
	go func() {
		if err := client.Send(big); err != nil {
			sendErr <- err
			return
		}
		sendErr <- client.Send(small)
	}()
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("Recv oversized: %v", err)
	}
	if !reflect.DeepEqual(got, big) {
		t.Errorf("oversized frame mismatch: got %d rows, want %d",
			len(got.Body.(NbUEState).Rows), len(rows))
	}
	got, err = server.Recv()
	if err != nil {
		t.Fatalf("Recv after fragment run: %v", err)
	}
	if !reflect.DeepEqual(got, small) {
		t.Errorf("frame after fragment run mismatch: %#v", got)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// TestWireConnGobCompat verifies the compatibility flag: both ends on
// NewWireConn(useGob=true) interop through the legacy gob codec.
func TestWireConnGobCompat(t *testing.T) {
	RegisterGobTypes()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewWireConn(nc, true)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewWireConn(nc, true)
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if err := Handshake(clientHalf{client, server}, "L0"); err != nil {
		t.Fatalf("handshake over gob compat: %v", err)
	}
	m := Msg{Type: TypeFlowMod, Xid: 3, Datapath: "A0", Body: FlowMod{
		Command: FlowAdd,
		Rule:    dataplane.Rule{Priority: 10, Match: dataplane.AnyMatch(), Owner: "L0/p1"},
	}}
	if err := client.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("gob compat mismatch: got %#v want %#v", got, m)
	}
}

// clientHalf adapts a (client, server) pair into one loopback Conn for
// Handshake, echoing the server side.
type clientHalf struct {
	c Conn
	s Conn
}

func (h clientHalf) Send(m Msg) error {
	if err := h.c.Send(m); err != nil {
		return err
	}
	got, err := h.s.Recv()
	if err != nil {
		return err
	}
	return h.s.Send(got) // server answers hello with its own; echo suffices for version check
}
func (h clientHalf) Recv() (Msg, error) { return h.c.Recv() }
func (h clientHalf) Close() error       { return h.c.Close() }

// TestBinConnWriteDeadline pins the satellite-2 fix: a Send blocked on a
// peer that stopped reading fails within the configured write timeout
// instead of wedging forever (the gob codec's failure mode).
func TestBinConnWriteDeadline(t *testing.T) {
	client, _ := tcpPair(t)
	client.SetWriteTimeout(100 * time.Millisecond)

	big := Msg{Type: TypeEchoRequest, Body: Echo{Payload: strings.Repeat("x", 256<<10)}}
	start := time.Now()
	var sendErr error
	for i := 0; i < 1000; i++ { // fill the socket buffers until a write blocks
		if sendErr = client.Send(big); sendErr != nil {
			break
		}
	}
	elapsed := time.Since(start)
	if sendErr == nil {
		t.Fatal("Send never failed against a peer that stopped reading")
	}
	if !strings.Contains(sendErr.Error(), "deadline") {
		t.Fatalf("Send failed with %v, want a write-deadline error", sendErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Send took %v to fail, deadline is 100ms", elapsed)
	}
}

// TestBinConnCloseUnblocksSend pins the other half of satellite 2: with no
// write timeout, Close from another goroutine still unblocks a stalled
// Send promptly.
func TestBinConnCloseUnblocksSend(t *testing.T) {
	leakcheck.Check(t)
	client, _ := tcpPair(t)

	big := Msg{Type: TypeEchoRequest, Body: Echo{Payload: strings.Repeat("x", 256<<10)}}
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < 1000; i++ {
			if err := client.Send(big); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	time.Sleep(200 * time.Millisecond) // let the sender wedge in a blocked write
	client.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Send drained 1000 large frames into a peer that never reads")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked 5s after Close")
	}
}

// tcpPair returns a BinConn client whose server end accepts the connection
// and then never reads, with cleanup registered.
func tcpPair(t *testing.T) (*BinConn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewBinConn(nc)
	t.Cleanup(func() { client.Close() })
	server := <-accepted
	t.Cleanup(func() { server.Close() })
	return client, server
}

// FuzzFrameDecode feeds arbitrary payloads to the decoder: it must never
// panic, and anything it accepts must re-encode and re-decode to an
// equivalent message. Gob-nested bodies (feature replies, packet in/out)
// are exempt from the deep-equality check — gob tolerates value shapes
// (NaNs, aliasing) whose equality Go cannot decide structurally; their
// canonical round trip is pinned by TestFrameRoundTripAllTypes instead.
func FuzzFrameDecode(f *testing.F) {
	for _, m := range append(sampleMsgs(), frameOnlyMsgs()...) {
		f.Add(encodePayload(f, m))
	}
	f.Add([]byte{})
	f.Add([]byte{WireVersion})
	f.Add([]byte{WireVersion, byte(TypeFlowModBatch), 0, 0, 0, 1, 0, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFrame(data)
		if err != nil {
			return
		}
		enc, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%#v)", err, m)
		}
		m2, err := DecodeFrame(enc[4:])
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v (%#v)", err, m)
		}
		switch m.Type {
		case TypeFeatureReply, TypePacketIn, TypePacketOut, TypeNbFabric:
			if m2.Type != m.Type || m2.Xid != m.Xid || m2.Datapath != m.Datapath {
				t.Fatalf("gob-body envelope mismatch: %#v vs %#v", m2, m)
			}
		default:
			// Hand-coded bodies are canonical: byte-compare a second encode,
			// which also holds for NaN floats where DeepEqual would not.
			enc2, err := AppendFrame(nil, &m2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("round trip not canonical:\n 1st %x\n 2nd %x", enc, enc2)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzFrameDecode. Run with SOFTMOW_WRITE_CORPUS=1 after a
// wire-format change.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SOFTMOW_WRITE_CORPUS") == "" {
		t.Skip("corpus generator; set SOFTMOW_WRITE_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range append(sampleMsgs(), frameOnlyMsgs()...) {
		write(fmt.Sprintf("seed-%02d-%s", i, m.Type), encodePayload(t, m))
	}
	write("seed-truncated", encodePayload(t, sampleMsgs()[7])[:9])
	write("seed-batch-huge-count", []byte{WireVersion, byte(TypeFlowModBatch), 0, 0, 0, 1, 0, 0, 0xFF, 0xFF})
	write("seed-ue-state-huge-count", []byte{WireVersion, byte(TypeNbUEState), 0, 0, 0, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
}
