package southbound

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dataplane"
)

// sampleMsgs covers every message type the codec encodes, with
// representative field values (negative ports, wildcards, label stacks,
// multi-rule batches).
func sampleMsgs() []Msg {
	fab := dataplane.NewVFabric()
	fab.Set(1, 2, dataplane.PathMetrics{Hops: 3, Latency: 5 * time.Millisecond, Bandwidth: 1000})
	pkt := &dataplane.Packet{UE: "ue0000001", SrcIP: "10.0.0.1", DstPrefix: "pfx1", QoS: 1}
	rule := dataplane.Rule{
		Priority: 107,
		Match: dataplane.Match{
			InPort: dataplane.PortAny, HasLabel: true, Label: 42,
			UE: "ue0000001", SrcIP: "10.0.0.1", DstPrefix: "pfx1", QoS: -1,
		},
		Actions: []dataplane.Action{dataplane.Push(9), dataplane.Output(3)},
		Version: 7, Owner: "L0/p12", Demand: 1.5,
	}
	return []Msg{
		{Type: TypeHello, Body: Hello{Sender: "L0", Version: ProtocolVersion}},
		{Type: TypeEchoRequest, Xid: 1, Body: Echo{Payload: "ping"}},
		{Type: TypeEchoReply, Xid: 1, Body: Echo{Payload: "ping"}},
		{Type: TypeFeatureRequest, Xid: 2, Datapath: "A0", Body: FeatureRequest{}},
		{Type: TypeFeatureReply, Xid: 2, Datapath: "A0", Body: FeatureReply{
			Device: "A0", Kind: dataplane.KindSwitch,
			Ports:  []PortInfo{{ID: 1, Up: true}, {ID: 2, Up: false, External: true, ExternalDomain: "isp0"}},
			Fabric: fab,
		}},
		{Type: TypePacketIn, Xid: 3, Datapath: "A0", Body: PacketIn{InPort: 1, Packet: pkt}},
		{Type: TypePacketOut, Xid: 4, Datapath: "A0", Body: PacketOut{OutPort: 2, Packet: pkt}},
		{Type: TypeFlowMod, Xid: 5, Datapath: "A0", Body: FlowMod{Command: FlowAdd, Rule: rule}},
		{Type: TypeFlowMod, Xid: 6, Datapath: "A0", Body: FlowMod{
			Command: FlowDeleteOwnerVersion, Owner: "L0/p12", Version: 7,
		}},
		{Type: TypePortStatus, Xid: 0, Datapath: "E0", Body: PortStatus{Port: 4, Up: false}},
		{Type: TypeRoleRequest, Xid: 7, Datapath: "A0", Body: RoleRequest{Controller: "L1", Role: RoleEqual}},
		{Type: TypeRoleReply, Xid: 7, Datapath: "A0", Body: RoleReply{Controller: "L1", Role: RoleEqual}},
		{Type: TypeBarrierRequest, Xid: 8, Datapath: "A0", Body: Barrier{}},
		{Type: TypeBarrierReply, Xid: 8, Datapath: "A0", Body: Barrier{}},
		{Type: TypeError, Xid: 9, Datapath: "A0", Body: Error{Code: ErrCodeBadRequest, Message: "no such port"}},
		{Type: TypeFlowModBatch, Xid: 10, Datapath: "A0", Body: FlowModBatch{Mods: []FlowMod{
			{Command: FlowAdd, Rule: rule},
			{Command: FlowDeleteOwnerBefore, Owner: "L0/p12", Version: 9},
		}}},
	}
}

// encodePayload returns the frame payload (length prefix stripped).
func encodePayload(t testing.TB, m Msg) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, &m)
	if err != nil {
		t.Fatalf("AppendFrame(%s): %v", m.Type, err)
	}
	return buf[4:]
}

func TestFrameRoundTripAllTypes(t *testing.T) {
	for _, m := range sampleMsgs() {
		payload := encodePayload(t, m)
		got, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("DecodeFrame(%s): %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", m.Type, got, m)
		}
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	for _, m := range sampleMsgs() {
		payload := encodePayload(t, m)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeFrame(payload[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded without error", m.Type, cut, len(payload))
			}
		}
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	valid := encodePayload(t, Msg{Type: TypeBarrierRequest, Xid: 1, Datapath: "A0", Body: Barrier{}})

	t.Run("wrong wire version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = WireVersion + 1
		if _, err := DecodeFrame(bad); err == nil || !strings.Contains(err.Error(), "wire version") {
			t.Fatalf("got %v, want wire version error", err)
		}
	})
	t.Run("unknown message type", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[1] = 0xEE
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatal("unknown message type decoded without error")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), valid...), 0xFF)
		if _, err := DecodeFrame(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("got %v, want trailing-bytes error", err)
		}
	})
	t.Run("oversized payload", func(t *testing.T) {
		if _, err := DecodeFrame(make([]byte, MaxFrameSize+1)); err == nil {
			t.Fatal("oversized payload decoded without error")
		}
	})
	t.Run("oversized encode", func(t *testing.T) {
		big := Msg{Type: TypeEchoRequest, Body: Echo{Payload: strings.Repeat("x", MaxFrameSize)}}
		if _, err := AppendFrame(nil, &big); err == nil {
			t.Fatal("oversized frame encoded without error")
		}
	})
}

// TestBinConnOverTCP exercises the binary codec end to end over a real
// socket, including a gob-nested body.
func TestBinConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewWireConn(nc, false)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewWireConn(nc, false)
	defer client.Close()
	server := <-accepted
	defer server.Close()

	for _, m := range sampleMsgs() {
		if err := client.Send(m); err != nil {
			t.Fatalf("Send(%s): %v", m.Type, err)
		}
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv(%s): %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s over TCP mismatch:\n got %#v\nwant %#v", m.Type, got, m)
		}
	}
}

// TestWireConnGobCompat verifies the compatibility flag: both ends on
// NewWireConn(useGob=true) interop through the legacy gob codec.
func TestWireConnGobCompat(t *testing.T) {
	RegisterGobTypes()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewWireConn(nc, true)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewWireConn(nc, true)
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if err := Handshake(clientHalf{client, server}, "L0"); err != nil {
		t.Fatalf("handshake over gob compat: %v", err)
	}
	m := Msg{Type: TypeFlowMod, Xid: 3, Datapath: "A0", Body: FlowMod{
		Command: FlowAdd,
		Rule:    dataplane.Rule{Priority: 10, Match: dataplane.AnyMatch(), Owner: "L0/p1"},
	}}
	if err := client.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("gob compat mismatch: got %#v want %#v", got, m)
	}
}

// clientHalf adapts a (client, server) pair into one loopback Conn for
// Handshake, echoing the server side.
type clientHalf struct {
	c Conn
	s Conn
}

func (h clientHalf) Send(m Msg) error {
	if err := h.c.Send(m); err != nil {
		return err
	}
	got, err := h.s.Recv()
	if err != nil {
		return err
	}
	return h.s.Send(got) // server answers hello with its own; echo suffices for version check
}
func (h clientHalf) Recv() (Msg, error) { return h.c.Recv() }
func (h clientHalf) Close() error       { return h.c.Close() }

// TestBinConnWriteDeadline pins the satellite-2 fix: a Send blocked on a
// peer that stopped reading fails within the configured write timeout
// instead of wedging forever (the gob codec's failure mode).
func TestBinConnWriteDeadline(t *testing.T) {
	client, _ := tcpPair(t)
	client.SetWriteTimeout(100 * time.Millisecond)

	big := Msg{Type: TypeEchoRequest, Body: Echo{Payload: strings.Repeat("x", 256<<10)}}
	start := time.Now()
	var sendErr error
	for i := 0; i < 1000; i++ { // fill the socket buffers until a write blocks
		if sendErr = client.Send(big); sendErr != nil {
			break
		}
	}
	elapsed := time.Since(start)
	if sendErr == nil {
		t.Fatal("Send never failed against a peer that stopped reading")
	}
	if !strings.Contains(sendErr.Error(), "deadline") {
		t.Fatalf("Send failed with %v, want a write-deadline error", sendErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Send took %v to fail, deadline is 100ms", elapsed)
	}
}

// TestBinConnCloseUnblocksSend pins the other half of satellite 2: with no
// write timeout, Close from another goroutine still unblocks a stalled
// Send promptly.
func TestBinConnCloseUnblocksSend(t *testing.T) {
	client, _ := tcpPair(t)

	big := Msg{Type: TypeEchoRequest, Body: Echo{Payload: strings.Repeat("x", 256<<10)}}
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < 1000; i++ {
			if err := client.Send(big); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	time.Sleep(200 * time.Millisecond) // let the sender wedge in a blocked write
	client.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Send drained 1000 large frames into a peer that never reads")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked 5s after Close")
	}
}

// tcpPair returns a BinConn client whose server end accepts the connection
// and then never reads, with cleanup registered.
func tcpPair(t *testing.T) (*BinConn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewBinConn(nc)
	t.Cleanup(func() { client.Close() })
	server := <-accepted
	t.Cleanup(func() { server.Close() })
	return client, server
}

// FuzzFrameDecode feeds arbitrary payloads to the decoder: it must never
// panic, and anything it accepts must re-encode and re-decode to an
// equivalent message. Gob-nested bodies (feature replies, packet in/out)
// are exempt from the deep-equality check — gob tolerates value shapes
// (NaNs, aliasing) whose equality Go cannot decide structurally; their
// canonical round trip is pinned by TestFrameRoundTripAllTypes instead.
func FuzzFrameDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(encodePayload(f, m))
	}
	f.Add([]byte{})
	f.Add([]byte{WireVersion})
	f.Add([]byte{WireVersion, byte(TypeFlowModBatch), 0, 0, 0, 1, 0, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFrame(data)
		if err != nil {
			return
		}
		enc, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%#v)", err, m)
		}
		m2, err := DecodeFrame(enc[4:])
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v (%#v)", err, m)
		}
		switch m.Type {
		case TypeFeatureReply, TypePacketIn, TypePacketOut:
			if m2.Type != m.Type || m2.Xid != m.Xid || m2.Datapath != m.Datapath {
				t.Fatalf("gob-body envelope mismatch: %#v vs %#v", m2, m)
			}
		default:
			// Hand-coded bodies are canonical: byte-compare a second encode,
			// which also holds for NaN floats where DeepEqual would not.
			enc2, err := AppendFrame(nil, &m2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("round trip not canonical:\n 1st %x\n 2nd %x", enc, enc2)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzFrameDecode. Run with SOFTMOW_WRITE_CORPUS=1 after a
// wire-format change.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SOFTMOW_WRITE_CORPUS") == "" {
		t.Skip("corpus generator; set SOFTMOW_WRITE_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range sampleMsgs() {
		write(fmt.Sprintf("seed-%02d-%s", i, m.Type), encodePayload(t, m))
	}
	write("seed-truncated", encodePayload(t, sampleMsgs()[7])[:9])
	write("seed-batch-huge-count", []byte{WireVersion, byte(TypeFlowModBatch), 0, 0, 0, 1, 0, 0, 0xFF, 0xFF})
}
