package southbound

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
)

// MsgType enumerates protocol message types. The values are wire
// contract: the binary codec (codec.go) writes the enum value as the
// frame's type byte, so new types must be appended at the end of the
// iota block, never inserted.
type MsgType int

const (
	// TypeHello opens a channel.
	TypeHello MsgType = iota
	// TypeEchoRequest / TypeEchoReply implement liveness probing.
	TypeEchoRequest
	// TypeEchoReply answers an echo request with the same Xid.
	TypeEchoReply
	// TypeFeatureRequest asks a device to describe itself; G-switches
	// answer with their virtual fabric (the SoftMoW OpenFlow extension).
	TypeFeatureRequest
	// TypeFeatureReply carries the FeatureReply body back to the controller.
	TypeFeatureReply
	// TypePacketIn punts a packet (or an encapsulated control payload such
	// as a link-discovery message) from device to controller.
	TypePacketIn
	// TypePacketOut sends a payload out of a device port.
	TypePacketOut
	// TypeFlowMod installs or removes flow rules.
	TypeFlowMod
	// TypePortStatus notifies link up/down.
	TypePortStatus
	// TypeRoleRequest / TypeRoleReply manage controller roles during
	// region reconfiguration (§5.3.2, OFPCR_ROLE_EQUAL et al.).
	TypeRoleRequest
	// TypeRoleReply acknowledges the role a device granted.
	TypeRoleReply
	// TypeBarrierRequest / TypeBarrierReply fence rule installation.
	TypeBarrierRequest
	// TypeBarrierReply signals every earlier message has been processed.
	TypeBarrierReply
	// TypeError reports a device-side failure for a prior request.
	TypeError
	// TypeFlowModBatch carries several FlowMods applied in order as one
	// message, cutting per-rule round trips; it is appended to the enum so
	// single-FlowMod peers stay wire compatible.
	TypeFlowModBatch
	// TypeFrag is a transport-level continuation frame: a logical frame
	// whose payload exceeds MaxFrameSize is split into a run of TypeFrag
	// frames that the receiving BinConn reassembles before decoding
	// (northbound abstraction snapshots can exceed one frame).
	TypeFrag
	// TypeNbBearer is a child→parent northbound bearer delegation: the
	// child could not satisfy a route locally and asks the parent to
	// resolve and implement it (§4.2 delegation over the wire).
	TypeNbBearer
	// TypeNbPathReply answers TypeNbBearer / TypeNbHandover with the path
	// ID and owning controller, or an error.
	TypeNbPathReply
	// TypeNbHandover is a child→parent inter-region handover request
	// ascending toward the lowest common ancestor (§5.2).
	TypeNbHandover
	// TypeNbTeardown asks an ancestor to tear down a path it owns (§5.1
	// "request bearer deactivation from its parent via RecA").
	TypeNbTeardown
	// TypeNbAck acknowledges a northbound request that carries no result
	// payload (teardown, interdomain push, fabric update, reabstract,
	// UE-state transfer).
	TypeNbAck
	// TypeNbInterdomain pushes a child's translated interdomain route
	// options to the parent (§4.2 "sends it to the parent (with
	// translation to the G-switch)").
	TypeNbInterdomain
	// TypeNbFabric pushes an updated virtual fabric to the parent when the
	// bandwidth drift exceeds the notification threshold (§3.2).
	TypeNbFabric
	// TypeNbReabstract tells the parent the child's abstraction changed:
	// the parent re-reads features, re-runs discovery, and reabstracts
	// upward (§5.3.2 bottom-up update).
	TypeNbReabstract
	// TypeNbUEState transfers UE table rows to a controller adopting them
	// (§5.3.2 state transfer during region reconfiguration).
	TypeNbUEState
)

// PeerRequest reports whether a message type is a northbound request a
// child controller originates toward its parent. The parent's ConnDevice
// pump classifies these BEFORE xid-based reply routing: child requests
// carry the child's own xid counter, whose values collide with the
// parent's fence xids, so without the type filter a child request could
// falsely complete an outstanding fence. TypeNbUEState flows
// parent→child only and is deliberately excluded.
func (t MsgType) PeerRequest() bool {
	switch t {
	case TypeNbBearer, TypeNbHandover, TypeNbTeardown, TypeNbInterdomain,
		TypeNbFabric, TypeNbReabstract:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeHello: "hello", TypeEchoRequest: "echo-req", TypeEchoReply: "echo-rep",
		TypeFeatureRequest: "feature-req", TypeFeatureReply: "feature-rep",
		TypePacketIn: "packet-in", TypePacketOut: "packet-out",
		TypeFlowMod: "flow-mod", TypePortStatus: "port-status",
		TypeRoleRequest: "role-req", TypeRoleReply: "role-rep",
		TypeBarrierRequest: "barrier-req", TypeBarrierReply: "barrier-rep",
		TypeError: "error", TypeFlowModBatch: "flow-mod-batch",
		TypeFrag: "frag", TypeNbBearer: "nb-bearer", TypeNbPathReply: "nb-path-rep",
		TypeNbHandover: "nb-handover", TypeNbTeardown: "nb-teardown",
		TypeNbAck: "nb-ack", TypeNbInterdomain: "nb-interdomain",
		TypeNbFabric: "nb-fabric", TypeNbReabstract: "nb-reabstract",
		TypeNbUEState: "nb-ue-state",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", int(t))
}

// Msg is the protocol envelope. Body holds one of the typed payload structs
// below according to Type. On the wire the envelope is framed by the
// binary codec — length prefix, version byte, type byte, xid, datapath —
// with the body hand-encoded per type (see codec.go for the layout and
// DESIGN.md §7 for the frame table).
type Msg struct {
	Type MsgType
	// Xid correlates requests and replies.
	Xid uint32
	// Datapath identifies the device the message concerns.
	Datapath dataplane.DeviceID
	Body     interface{}
}

// Role is a controller's role toward a device (§5.3.2).
type Role int

const (
	// RoleMaster is the default single-controller role.
	RoleMaster Role = iota
	// RoleEqual grants a second controller full event visibility during a
	// region handover (OFPCR_ROLE_EQUAL).
	RoleEqual
	// RoleSlave receives events but may not install rules.
	RoleSlave
	// RoleNone detaches the controller.
	RoleNone
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleMaster:
		return "master"
	case RoleEqual:
		return "equal"
	case RoleSlave:
		return "slave"
	case RoleNone:
		return "none"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Hello is the Body of TypeHello.
type Hello struct {
	// Sender names the connecting entity (controller or device ID).
	Sender string
	// Version is the protocol version; mismatches are rejected.
	Version int
}

// ProtocolVersion is the current protocol version.
const ProtocolVersion = 1

// Echo is the Body of TypeEchoRequest/TypeEchoReply.
type Echo struct {
	Payload string
}

// FeatureRequest is the Body of TypeFeatureRequest.
type FeatureRequest struct{}

// PortInfo describes one device port in a FeatureReply.
type PortInfo struct {
	ID             dataplane.PortID
	Up             bool
	External       bool
	ExternalDomain string
	// Radio names the BS group served through this port, if any.
	Radio dataplane.DeviceID
	// Underlying is the child-topology port a G-switch border port maps
	// to (zero for physical switch ports). Cluster launchers use it to
	// identify cross-region ports when injecting inter-G-switch links the
	// distributed deployment cannot discover in-band.
	Underlying dataplane.PortRef
}

// FeatureReply is the Body of TypeFeatureReply. For gigantic switches,
// Fabric carries the virtual-fabric annotations and GBSes/GMiddleboxes the
// attached logical radio and middlebox devices (§3.1–3.2).
type FeatureReply struct {
	Device dataplane.DeviceID
	Kind   dataplane.DeviceKind
	Ports  []PortInfo
	// Fabric is nil for physical switches.
	Fabric *dataplane.VFabric
	// GBSes lists attached gigantic base stations (G-switch replies only).
	GBSes []dataplane.GBSInfo
	// GMiddleboxes lists attached gigantic middleboxes.
	GMiddleboxes []dataplane.GMiddleboxInfo
}

// PacketIn is the Body of TypePacketIn.
type PacketIn struct {
	InPort dataplane.PortID
	// Packet is set for punted data-plane packets.
	Packet *dataplane.Packet
	// Control is set for encapsulated control payloads (discovery
	// messages, interdomain route advertisements, bearer requests...).
	Control interface{}
}

// PacketOut is the Body of TypePacketOut.
type PacketOut struct {
	OutPort dataplane.PortID
	Packet  *dataplane.Packet
	Control interface{}
}

// FlowModCommand selects install vs delete.
type FlowModCommand int

const (
	// FlowAdd installs a rule.
	FlowAdd FlowModCommand = iota
	// FlowDeleteOwner removes rules by owner.
	FlowDeleteOwner
	// FlowDeleteVersion removes rules by version.
	FlowDeleteVersion
	// FlowDeleteOwnerBefore removes an owner's rules with a version older
	// than the given one (consistent path updates, §6).
	FlowDeleteOwnerBefore
	// FlowDeleteOwnerVersion removes exactly an owner's rules of one
	// version (rollback of a partially installed update, §6).
	FlowDeleteOwnerVersion
)

// FlowMod is the Body of TypeFlowMod.
type FlowMod struct {
	Command FlowModCommand
	Rule    dataplane.Rule
	// Owner / Version select rules for the delete commands.
	Owner   string
	Version int
}

// FlowModBatch is the Body of TypeFlowModBatch. The device applies Mods
// strictly in order and stops at the first failure, replying with a single
// TypeError carrying the batch Xid; mods after the failing one are not
// applied. A successful batch is acknowledged only implicitly — the sender
// fences it with one TypeBarrierRequest per logical operation instead of one
// per rule, which is where the round-trip reduction comes from.
type FlowModBatch struct {
	Mods []FlowMod
}

// PortStatus is the Body of TypePortStatus.
type PortStatus struct {
	Port dataplane.PortID
	Up   bool
}

// RoleRequest is the Body of TypeRoleRequest.
type RoleRequest struct {
	Controller string
	Role       Role
}

// RoleReply is the Body of TypeRoleReply.
type RoleReply struct {
	Controller string
	Role       Role
}

// Barrier is the Body of barrier messages.
type Barrier struct{}

// Error is the Body of TypeError.
type Error struct {
	Code    int
	Message string
}

// Error codes.
const (
	ErrCodeBadRequest = iota + 1
	ErrCodeVersionMismatch
	ErrCodePermission
	ErrCodeUnknownPort
)

// Frag is the Body of TypeFrag: one piece of a logical frame whose
// encoding exceeds MaxFrameSize. Fragments of one logical frame are sent
// contiguously on the conn (the sender holds its write lock across the
// run); Last marks the final piece.
type Frag struct {
	Last bool
	Data []byte
}

// NbBearer is the Body of TypeNbBearer: a route request the child could
// not satisfy locally, translated to the child's exposed G-switch
// (Datapath names the G-switch; From is the exposed source gport). The
// parent resolves it recursively, implements the path with the given
// match and bandwidth demand, and answers with an NbPathReply.
type NbBearer struct {
	// From is the source gport on the child's G-switch.
	From dataplane.PortID
	// Prefix is the destination prefix.
	Prefix string
	// Objective selects the routing objective (routing.Objective).
	Objective int
	// MaxHops / MaxLatency / MinBandwidth carry routing.Constraints.
	MaxHops      int
	MaxLatency   time.Duration
	MinBandwidth float64
	// MaxTotalHops / MaxTotalRTT bound internal + external totals.
	MaxTotalHops int
	MaxTotalRTT  time.Duration
	// Match is the flow match the implemented path classifies on.
	Match dataplane.Match
	// Demand is the per-link bandwidth reservation in Mbps.
	Demand float64
}

// NbPathReply is the Body of TypeNbPathReply: the outcome of a bearer
// delegation or handover request. Err is empty on success.
type NbPathReply struct {
	// Path is the path ID at the owning controller.
	Path int64
	// Owner is the ID of the controller that resolved and owns the path.
	Owner string
	Err   string
}

// NbHandover is the Body of TypeNbHandover, mirroring core's §5.2
// HandoverRequest.
type NbHandover struct {
	UE        string
	SrcGBS    dataplane.DeviceID
	SrcBS     dataplane.DeviceID
	DstGBS    dataplane.DeviceID
	DstBS     dataplane.DeviceID
	Prefix    string
	QoS       int
	Objective int
}

// NbTeardown is the Body of TypeNbTeardown: tear down path Path at the
// ancestor controller named Owner. The receiving parent executes it
// itself or forwards it up the tree; the reply is an NbAck.
type NbTeardown struct {
	Owner string
	Path  int64
}

// NbAck is the Body of TypeNbAck. Err is empty on success.
type NbAck struct {
	Err string
}

// NbRouteOption is one translated interdomain route option in an
// NbInterdomain push: the egress name, the gport on the child's exposed
// G-switch, and the externally measured metrics.
type NbRouteOption struct {
	Prefix string
	Egress string
	Port   dataplane.PortID
	Hops   int
	RTT    time.Duration
}

// NbInterdomain is the Body of TypeNbInterdomain: the child's interdomain
// route options translated to its exposed G-switch ports, in the child's
// deterministic (sorted-prefix, option-append) order. The parent appends
// them in exactly this order — Route() tie-breaks on append order, so the
// order is replay-visible.
type NbInterdomain struct {
	Options []NbRouteOption
}

// NbFabric is the Body of TypeNbFabric: the child's updated virtual
// fabric (gob-nested — fabrics are deep structure off the hot path).
type NbFabric struct {
	Fabric *dataplane.VFabric
}

// NbReabstract is the Body of TypeNbReabstract.
type NbReabstract struct{}

// NbUERow is one transferred UE table row in an NbUEState message. Owner
// names the controller owning the row's path; the adopting controller
// rebinds it to itself or to a northbound proxy.
type NbUERow struct {
	UE     string
	BS     dataplane.DeviceID
	Group  dataplane.DeviceID
	Prefix string
	QoS    int
	Path   int64
	Owner  string
	Active bool
}

// NbUEState is the Body of TypeNbUEState: UE rows for the receiver to
// adopt (§5.3.2). Answered with an NbAck.
type NbUEState struct {
	Rows []NbUERow
}
