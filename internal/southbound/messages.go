package southbound

import (
	"fmt"

	"repro/internal/dataplane"
)

// MsgType enumerates protocol message types. The values are wire
// contract: the binary codec (codec.go) writes the enum value as the
// frame's type byte, so new types must be appended at the end of the
// iota block, never inserted.
type MsgType int

const (
	// TypeHello opens a channel.
	TypeHello MsgType = iota
	// TypeEchoRequest / TypeEchoReply implement liveness probing.
	TypeEchoRequest
	// TypeEchoReply answers an echo request with the same Xid.
	TypeEchoReply
	// TypeFeatureRequest asks a device to describe itself; G-switches
	// answer with their virtual fabric (the SoftMoW OpenFlow extension).
	TypeFeatureRequest
	// TypeFeatureReply carries the FeatureReply body back to the controller.
	TypeFeatureReply
	// TypePacketIn punts a packet (or an encapsulated control payload such
	// as a link-discovery message) from device to controller.
	TypePacketIn
	// TypePacketOut sends a payload out of a device port.
	TypePacketOut
	// TypeFlowMod installs or removes flow rules.
	TypeFlowMod
	// TypePortStatus notifies link up/down.
	TypePortStatus
	// TypeRoleRequest / TypeRoleReply manage controller roles during
	// region reconfiguration (§5.3.2, OFPCR_ROLE_EQUAL et al.).
	TypeRoleRequest
	// TypeRoleReply acknowledges the role a device granted.
	TypeRoleReply
	// TypeBarrierRequest / TypeBarrierReply fence rule installation.
	TypeBarrierRequest
	// TypeBarrierReply signals every earlier message has been processed.
	TypeBarrierReply
	// TypeError reports a device-side failure for a prior request.
	TypeError
	// TypeFlowModBatch carries several FlowMods applied in order as one
	// message, cutting per-rule round trips; it is appended to the enum so
	// single-FlowMod peers stay wire compatible.
	TypeFlowModBatch
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeHello: "hello", TypeEchoRequest: "echo-req", TypeEchoReply: "echo-rep",
		TypeFeatureRequest: "feature-req", TypeFeatureReply: "feature-rep",
		TypePacketIn: "packet-in", TypePacketOut: "packet-out",
		TypeFlowMod: "flow-mod", TypePortStatus: "port-status",
		TypeRoleRequest: "role-req", TypeRoleReply: "role-rep",
		TypeBarrierRequest: "barrier-req", TypeBarrierReply: "barrier-rep",
		TypeError: "error", TypeFlowModBatch: "flow-mod-batch",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", int(t))
}

// Msg is the protocol envelope. Body holds one of the typed payload structs
// below according to Type. On the wire the envelope is framed by the
// binary codec — length prefix, version byte, type byte, xid, datapath —
// with the body hand-encoded per type (see codec.go for the layout and
// DESIGN.md §7 for the frame table).
type Msg struct {
	Type MsgType
	// Xid correlates requests and replies.
	Xid uint32
	// Datapath identifies the device the message concerns.
	Datapath dataplane.DeviceID
	Body     interface{}
}

// Role is a controller's role toward a device (§5.3.2).
type Role int

const (
	// RoleMaster is the default single-controller role.
	RoleMaster Role = iota
	// RoleEqual grants a second controller full event visibility during a
	// region handover (OFPCR_ROLE_EQUAL).
	RoleEqual
	// RoleSlave receives events but may not install rules.
	RoleSlave
	// RoleNone detaches the controller.
	RoleNone
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleMaster:
		return "master"
	case RoleEqual:
		return "equal"
	case RoleSlave:
		return "slave"
	case RoleNone:
		return "none"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Hello is the Body of TypeHello.
type Hello struct {
	// Sender names the connecting entity (controller or device ID).
	Sender string
	// Version is the protocol version; mismatches are rejected.
	Version int
}

// ProtocolVersion is the current protocol version.
const ProtocolVersion = 1

// Echo is the Body of TypeEchoRequest/TypeEchoReply.
type Echo struct {
	Payload string
}

// FeatureRequest is the Body of TypeFeatureRequest.
type FeatureRequest struct{}

// PortInfo describes one device port in a FeatureReply.
type PortInfo struct {
	ID             dataplane.PortID
	Up             bool
	External       bool
	ExternalDomain string
	// Radio names the BS group served through this port, if any.
	Radio dataplane.DeviceID
}

// FeatureReply is the Body of TypeFeatureReply. For gigantic switches,
// Fabric carries the virtual-fabric annotations and GBSes/GMiddleboxes the
// attached logical radio and middlebox devices (§3.1–3.2).
type FeatureReply struct {
	Device dataplane.DeviceID
	Kind   dataplane.DeviceKind
	Ports  []PortInfo
	// Fabric is nil for physical switches.
	Fabric *dataplane.VFabric
	// GBSes lists attached gigantic base stations (G-switch replies only).
	GBSes []dataplane.GBSInfo
	// GMiddleboxes lists attached gigantic middleboxes.
	GMiddleboxes []dataplane.GMiddleboxInfo
}

// PacketIn is the Body of TypePacketIn.
type PacketIn struct {
	InPort dataplane.PortID
	// Packet is set for punted data-plane packets.
	Packet *dataplane.Packet
	// Control is set for encapsulated control payloads (discovery
	// messages, interdomain route advertisements, bearer requests...).
	Control interface{}
}

// PacketOut is the Body of TypePacketOut.
type PacketOut struct {
	OutPort dataplane.PortID
	Packet  *dataplane.Packet
	Control interface{}
}

// FlowModCommand selects install vs delete.
type FlowModCommand int

const (
	// FlowAdd installs a rule.
	FlowAdd FlowModCommand = iota
	// FlowDeleteOwner removes rules by owner.
	FlowDeleteOwner
	// FlowDeleteVersion removes rules by version.
	FlowDeleteVersion
	// FlowDeleteOwnerBefore removes an owner's rules with a version older
	// than the given one (consistent path updates, §6).
	FlowDeleteOwnerBefore
	// FlowDeleteOwnerVersion removes exactly an owner's rules of one
	// version (rollback of a partially installed update, §6).
	FlowDeleteOwnerVersion
)

// FlowMod is the Body of TypeFlowMod.
type FlowMod struct {
	Command FlowModCommand
	Rule    dataplane.Rule
	// Owner / Version select rules for the delete commands.
	Owner   string
	Version int
}

// FlowModBatch is the Body of TypeFlowModBatch. The device applies Mods
// strictly in order and stops at the first failure, replying with a single
// TypeError carrying the batch Xid; mods after the failing one are not
// applied. A successful batch is acknowledged only implicitly — the sender
// fences it with one TypeBarrierRequest per logical operation instead of one
// per rule, which is where the round-trip reduction comes from.
type FlowModBatch struct {
	Mods []FlowMod
}

// PortStatus is the Body of TypePortStatus.
type PortStatus struct {
	Port dataplane.PortID
	Up   bool
}

// RoleRequest is the Body of TypeRoleRequest.
type RoleRequest struct {
	Controller string
	Role       Role
}

// RoleReply is the Body of TypeRoleReply.
type RoleReply struct {
	Controller string
	Role       Role
}

// Barrier is the Body of barrier messages.
type Barrier struct{}

// Error is the Body of TypeError.
type Error struct {
	Code    int
	Message string
}

// Error codes.
const (
	ErrCodeBadRequest = iota + 1
	ErrCodeVersionMismatch
	ErrCodePermission
	ErrCodeUnknownPort
)
