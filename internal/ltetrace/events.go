package ltetrace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dataplane"
	"repro/internal/simnet"
)

// EventKind classifies trace events (the paper's trace is bearer-level and
// "includes various events such as radio bearer creation, UE arrival to
// the network, UE handover between base stations", §7.1).
type EventKind int

const (
	// EvUEAttach is a UE arriving to the network (device power-on).
	EvUEAttach EventKind = iota
	// EvUEDetach is a UE going idle/leaving.
	EvUEDetach
	// EvBearerCreate is a radio-bearer creation.
	EvBearerCreate
	// EvBearerDelete is a radio-bearer timeout/deletion.
	EvBearerDelete
	// EvHandover is a UE handover between base stations.
	EvHandover
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvUEAttach:
		return "ue-attach"
	case EvUEDetach:
		return "ue-detach"
	case EvBearerCreate:
		return "bearer-create"
	case EvBearerDelete:
		return "bearer-delete"
	case EvHandover:
		return "handover"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one trace record.
type Event struct {
	At   time.Duration
	Kind EventKind
	UE   string
	BS   dataplane.DeviceID
	// Target is the handover target BS (EvHandover only).
	Target dataplane.DeviceID
	// QoS is the bearer QoS class (EvBearerCreate only).
	QoS int
}

// SampleEvents draws a concrete event stream for minutes [from, to),
// thinning every rate by scale (0 < scale ≤ 1) so integration tests can run
// at laptop scale while preserving the trace's structure. Events are in
// nondecreasing time order.
func (m *Model) SampleEvents(from, to int, scale float64) []Event {
	if scale <= 0 {
		return nil
	}
	if scale > 1 {
		scale = 1
	}
	rng := simnet.RNG(m.Params.Seed, fmt.Sprintf("events/%d-%d", from, to))
	var events []Event
	ueSeq := 0
	nextUE := func() string {
		ueSeq++
		return fmt.Sprintf("ue%07d", ueSeq%m.Params.NumUEs)
	}
	for minute := from; minute < to; minute++ {
		base := time.Duration(minute) * time.Minute
		for i, id := range m.BSIDs {
			jitter := func() time.Duration {
				return time.Duration(rng.Int63n(int64(time.Minute)))
			}
			for c := poisson(rng, m.UEArrivalRate(i, minute)*scale); c > 0; c-- {
				events = append(events, Event{At: base + jitter(), Kind: EvUEAttach, UE: nextUE(), BS: id})
			}
			for c := poisson(rng, m.BearerRate(i, minute)*scale); c > 0; c-- {
				events = append(events, Event{
					At: base + jitter(), Kind: EvBearerCreate, UE: nextUE(), BS: id,
					QoS: 1 + rng.Intn(4),
				})
			}
			for c := poisson(rng, m.HandoverRate(i, minute)*scale); c > 0; c-- {
				tgt := m.pickNeighbor(rng, i)
				events = append(events, Event{
					At: base + jitter(), Kind: EvHandover, UE: nextUE(),
					BS: id, Target: m.BSIDs[tgt],
				})
			}
		}
	}
	sortEvents(events)
	return events
}

// pickNeighbor draws a handover target by gravity share.
func (m *Model) pickNeighbor(rng interface{ Float64() float64 }, i int) int {
	u := rng.Float64()
	var acc float64
	for x, s := range m.shares[i] {
		acc += s
		if u <= acc {
			return m.neighbors[i][x]
		}
	}
	return m.neighbors[i][len(m.neighbors[i])-1]
}

// poisson draws a Poisson variate with mean lambda (Knuth for small means,
// normal approximation above 30).
func poisson(rng interface {
	Float64() float64
	NormFloat64() float64
}, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}
