// Package ltetrace synthesizes the LTE workload the paper measures from a
// proprietary week-long bearer-level trace of a large metropolitan network
// (~1000+ base stations, ~1M devices; §7.1). The generator reproduces the
// trace's statistical structure used by the evaluation:
//
//   - per-minute bearer-arrival, UE-arrival and handover rates per base
//     station with diurnal peaks and heavy-tailed per-BS popularity
//     (Fig. 11a–c);
//   - geographically local handover graphs that vary across time-of-day
//     (Fig. 12, §5.3.1);
//   - the BS-group inference algorithm of §7.1 (greedy minimum-weight edge
//     removal, components of at most 6 stations, ring intra-group
//     topology).
package ltetrace

import (
	"sort"

	"repro/internal/dataplane"
)

// EdgeKey is an unordered pair of handover-graph nodes.
type EdgeKey struct {
	A, B dataplane.DeviceID
}

// NewEdgeKey normalizes node order.
func NewEdgeKey(a, b dataplane.DeviceID) EdgeKey {
	if b < a {
		a, b = b, a
	}
	return EdgeKey{A: a, B: b}
}

// HandoverGraph counts handovers between node pairs over a time window
// (§5.3.1: "each node of the graph is a G-BS and an edge shows the number
// of handovers in the past time window between two nodes"). Nodes may be
// base stations, BS groups or G-BSes depending on the aggregation level.
type HandoverGraph struct {
	counts map[EdgeKey]int
	nodes  map[dataplane.DeviceID]bool
}

// NewHandoverGraph returns an empty graph.
func NewHandoverGraph() *HandoverGraph {
	return &HandoverGraph{
		counts: make(map[EdgeKey]int),
		nodes:  make(map[dataplane.DeviceID]bool),
	}
}

// AddNode ensures a node exists (isolated nodes matter for group
// inference).
func (g *HandoverGraph) AddNode(n dataplane.DeviceID) {
	g.nodes[n] = true
}

// Add accumulates n handovers between a and b.
func (g *HandoverGraph) Add(a, b dataplane.DeviceID, n int) {
	if a == b || n == 0 {
		return
	}
	g.nodes[a] = true
	g.nodes[b] = true
	g.counts[NewEdgeKey(a, b)] += n
}

// Weight returns the handover count between a and b.
func (g *HandoverGraph) Weight(a, b dataplane.DeviceID) int {
	return g.counts[NewEdgeKey(a, b)]
}

// Nodes returns all nodes in deterministic order.
func (g *HandoverGraph) Nodes() []dataplane.DeviceID {
	out := make([]dataplane.DeviceID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	return dataplane.SortDeviceIDs(out)
}

// NumNodes reports the node count.
func (g *HandoverGraph) NumNodes() int { return len(g.nodes) }

// Edge is one weighted handover-graph edge.
type Edge struct {
	Key    EdgeKey
	Weight int
}

// Edges returns all positive-weight edges in deterministic order.
func (g *HandoverGraph) Edges() []Edge {
	out := make([]Edge, 0, len(g.counts))
	for k, w := range g.counts {
		if w > 0 {
			out = append(out, Edge{Key: k, Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.A != out[j].Key.A {
			return out[i].Key.A < out[j].Key.A
		}
		return out[i].Key.B < out[j].Key.B
	})
	return out
}

// TotalWeight sums all edge weights.
func (g *HandoverGraph) TotalWeight() int {
	total := 0
	for _, w := range g.counts {
		total += w
	}
	return total
}

// NeighborWeights returns, for node n, each neighbor and the edge weight,
// in deterministic order.
func (g *HandoverGraph) NeighborWeights(n dataplane.DeviceID) []Edge {
	var out []Edge
	for k, w := range g.counts {
		if w <= 0 {
			continue
		}
		if k.A == n || k.B == n {
			out = append(out, Edge{Key: k, Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.A != out[j].Key.A {
			return out[i].Key.A < out[j].Key.A
		}
		return out[i].Key.B < out[j].Key.B
	})
	return out
}

// Clone deep-copies the graph.
func (g *HandoverGraph) Clone() *HandoverGraph {
	c := NewHandoverGraph()
	for n := range g.nodes {
		c.nodes[n] = true
	}
	for k, w := range g.counts {
		c.counts[k] = w
	}
	return c
}

// Merge adds every edge (and node) of o into g.
func (g *HandoverGraph) Merge(o *HandoverGraph) {
	for n := range o.nodes {
		g.nodes[n] = true
	}
	for k, w := range o.counts {
		g.nodes[k.A] = true
		g.nodes[k.B] = true
		g.counts[k] += w
	}
}

// Relabel builds a new graph with nodes mapped through f; edges whose
// endpoints map to the same node are dropped (they become internal). This
// is how BS-level graphs aggregate to group-level and G-BS-level graphs.
func (g *HandoverGraph) Relabel(f func(dataplane.DeviceID) dataplane.DeviceID) *HandoverGraph {
	out := NewHandoverGraph()
	for n := range g.nodes {
		out.AddNode(f(n))
	}
	for k, w := range g.counts {
		out.Add(f(k.A), f(k.B), w)
	}
	return out
}
