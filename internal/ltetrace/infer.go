package ltetrace

import (
	"fmt"
	"sort"

	"repro/internal/dataplane"
)

// InferGroups runs the paper's BS-group inference algorithm (§7.1):
//
//	"We assume each group has at most 6 base stations organized based on
//	the ring topology. Our algorithm aims to find groups maximizing the
//	weight of intra-group edges in the global handover graph. The optimal
//	solution is NP-hard, so we design a greedy algorithm. In each
//	iteration, the edge with the lowest weight is removed and then
//	strongly connected components with fewer than 6 base stations are
//	computed. We remove the components from the working graph and mark
//	each as a new BS group."
//
// The returned groups partition the graph's nodes; every group has at most
// dataplane.MaxGroupSize members and ring topology. Isolated nodes become
// singleton groups.
func InferGroups(g *HandoverGraph) []*dataplane.BSGroup {
	var memberSets [][]dataplane.DeviceID

	// Live adjacency, maintained across removals so each component check
	// only walks the touched component.
	adj := make(map[dataplane.DeviceID]map[dataplane.DeviceID]bool, len(g.nodes))
	for n := range g.nodes {
		adj[n] = make(map[dataplane.DeviceID]bool)
	}
	for k, w := range g.counts {
		if w <= 0 {
			continue
		}
		if adj[k.A] == nil {
			adj[k.A] = make(map[dataplane.DeviceID]bool)
		}
		if adj[k.B] == nil {
			adj[k.B] = make(map[dataplane.DeviceID]bool)
		}
		adj[k.A][k.B] = true
		adj[k.B][k.A] = true
	}

	// componentOf walks the component containing start but gives up (nil)
	// as soon as it exceeds MaxGroupSize — only small components are ever
	// extracted, so larger ones need no full enumeration.
	componentOf := func(start dataplane.DeviceID) []dataplane.DeviceID {
		visited := map[dataplane.DeviceID]bool{start: true}
		stack := []dataplane.DeviceID{start}
		var comp []dataplane.DeviceID
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			if len(comp) > dataplane.MaxGroupSize {
				return nil
			}
			for nb := range adj[cur] {
				if !visited[nb] {
					visited[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		return dataplane.SortDeviceIDs(comp)
	}
	extract := func(comp []dataplane.DeviceID) {
		memberSets = append(memberSets, comp)
		for _, n := range comp {
			for nb := range adj[n] {
				delete(adj[nb], n)
			}
			delete(adj, n)
		}
	}
	tryExtract := func(seed dataplane.DeviceID) {
		if _, alive := adj[seed]; !alive {
			return
		}
		if comp := componentOf(seed); comp != nil {
			extract(comp)
		}
	}

	// Initial pass: extract components that already fit.
	for _, n := range g.Nodes() {
		tryExtract(n)
	}

	// Removal order is fully determined up front — edge weights never
	// change — so pre-sorting ascending (ties by key, matching Edges()
	// order) reproduces the paper's lightest-edge-first loop while only
	// re-examining the components the removal actually touched.
	edges := g.Edges()
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Weight < edges[j].Weight })
	for _, e := range edges {
		a, b := e.Key.A, e.Key.B
		if adj[a] == nil || !adj[a][b] {
			continue // endpoint extracted already
		}
		delete(adj[a], b)
		delete(adj[b], a)
		tryExtract(a)
		tryExtract(b)
	}
	// Whatever remains is edge-free: singleton groups.
	var rest []dataplane.DeviceID
	for n := range adj {
		rest = append(rest, n)
	}
	dataplane.SortDeviceIDs(rest)
	for _, n := range rest {
		if _, alive := adj[n]; alive {
			extract([]dataplane.DeviceID{n})
		}
	}

	// Deterministic group numbering: by smallest member ID.
	sort.Slice(memberSets, func(i, j int) bool { return memberSets[i][0] < memberSets[j][0] })
	groups := make([]*dataplane.BSGroup, 0, len(memberSets))
	for i, members := range memberSets {
		grp := dataplane.NewBSGroup(
			dataplane.DeviceID(fmt.Sprintf("G%04d", i)), dataplane.TopoRing, "")
		for _, m := range members {
			if err := grp.AddMember(m); err != nil {
				panic(err) // components are bounded by MaxGroupSize
			}
		}
		groups = append(groups, grp)
	}
	return groups
}

// IntraGroupWeight sums the handover weight captured inside groups — the
// objective the greedy algorithm maximizes.
func IntraGroupWeight(g *HandoverGraph, groups []*dataplane.BSGroup) int {
	groupOf := make(map[dataplane.DeviceID]int)
	for i, grp := range groups {
		for _, m := range grp.Members() {
			groupOf[m] = i
		}
	}
	total := 0
	for k, w := range g.counts {
		ga, oka := groupOf[k.A]
		gb, okb := groupOf[k.B]
		if oka && okb && ga == gb {
			total += w
		}
	}
	return total
}
