package ltetrace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataplane"
	"repro/internal/simnet"
)

// Params configures the workload model. Zero values select paper-scale
// defaults (1000 base stations, 1M UEs, metropolitan plane).
type Params struct {
	Seed int64
	// NumBS is the base-station count (paper: "more than 1000").
	NumBS int
	// NumUEs is the subscriber population (paper: ~1 million).
	NumUEs int
	// PlaneSize matches the topology coordinate plane.
	PlaneSize float64
	// Hotspots is the number of dense urban clusters.
	Hotspots int
	// NeighborCount is the number of geographic neighbors eligible as
	// handover targets per BS.
	NeighborCount int
	// PeakBearerPerBS is the peak-hour per-BS bearer arrival rate per
	// minute. The Fig. 11a per-leaf aggregate reaches ~1e5/min with ~250
	// BSes per leaf region.
	PeakBearerPerBS float64
	// PeakUEArrivalPerBS is the peak per-BS UE attach rate per minute
	// (Fig. 11b: 1000–3000 per leaf).
	PeakUEArrivalPerBS float64
	// PeakHandoverPerBS is the peak per-BS handover rate per minute
	// (Fig. 11c: 1000–4000 per leaf).
	PeakHandoverPerBS float64
}

func (p *Params) defaults() {
	if p.NumBS == 0 {
		p.NumBS = 1000
	}
	if p.NumUEs == 0 {
		p.NumUEs = 1_000_000
	}
	if p.PlaneSize == 0 {
		p.PlaneSize = 1000
	}
	if p.Hotspots == 0 {
		p.Hotspots = 6
	}
	if p.NeighborCount == 0 {
		p.NeighborCount = 8
	}
	if p.PeakBearerPerBS == 0 {
		p.PeakBearerPerBS = 250
	}
	if p.PeakUEArrivalPerBS == 0 {
		p.PeakUEArrivalPerBS = 8
	}
	if p.PeakHandoverPerBS == 0 {
		p.PeakHandoverPerBS = 10
	}
}

// Model is a deterministic synthetic LTE workload.
type Model struct {
	Params Params
	// BSIDs lists base-station IDs in index order.
	BSIDs []dataplane.DeviceID
	// Locs maps base stations to plane locations.
	Locs map[dataplane.DeviceID]dataplane.GeoPoint
	// Groups are the inferred BS groups (§7.1 algorithm), ring topology,
	// access switches unassigned (set when composing with a topology).
	Groups []*dataplane.BSGroup
	// GroupOf maps each BS to its group.
	GroupOf map[dataplane.DeviceID]dataplane.DeviceID

	idx       map[dataplane.DeviceID]int
	weights   []float64 // per-BS activity weight, mean 1
	neighbors [][]int
	shares    [][]float64 // handover share toward each neighbor, sums to 1
	noiseSeed int64
}

// New builds a model. Same params → identical model.
func New(p Params) *Model {
	p.defaults()
	rng := simnet.RNG(p.Seed, "ltetrace")
	m := &Model{
		Params:  p,
		Locs:    make(map[dataplane.DeviceID]dataplane.GeoPoint, p.NumBS),
		GroupOf: make(map[dataplane.DeviceID]dataplane.DeviceID),
		idx:     make(map[dataplane.DeviceID]int, p.NumBS),
		// mix the seed for the per-(bs,minute) noise hash
		noiseSeed: p.Seed*0x9E3779B9 + 0x85EBCA6B,
	}

	// Hotspot centers: dense metro cores.
	centers := make([]dataplane.GeoPoint, p.Hotspots)
	for i := range centers {
		centers[i] = dataplane.GeoPoint{
			X: (0.15 + 0.7*rng.Float64()) * p.PlaneSize,
			Y: (0.15 + 0.7*rng.Float64()) * p.PlaneSize,
		}
	}

	// Base stations: 60% clustered near hotspots, 40% uniform suburbs.
	for i := 0; i < p.NumBS; i++ {
		id := dataplane.DeviceID(fmt.Sprintf("BS%04d", i))
		var loc dataplane.GeoPoint
		if rng.Float64() < 0.6 && len(centers) > 0 {
			c := centers[rng.Intn(len(centers))]
			spread := p.PlaneSize * 0.06
			loc = dataplane.GeoPoint{
				X: clamp(c.X+rng.NormFloat64()*spread, 0, p.PlaneSize),
				Y: clamp(c.Y+rng.NormFloat64()*spread, 0, p.PlaneSize),
			}
		} else {
			loc = dataplane.GeoPoint{X: rng.Float64() * p.PlaneSize, Y: rng.Float64() * p.PlaneSize}
		}
		m.BSIDs = append(m.BSIDs, id)
		m.Locs[id] = loc
		m.idx[id] = i
	}

	// Heavy-tailed activity weights (lognormal), normalized to mean 1.
	m.weights = make([]float64, p.NumBS)
	var sum float64
	for i := range m.weights {
		m.weights[i] = math.Exp(rng.NormFloat64() * 0.6)
		sum += m.weights[i]
	}
	for i := range m.weights {
		m.weights[i] *= float64(p.NumBS) / sum
	}

	m.buildNeighbors()
	m.inferGroups()
	return m
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// buildNeighbors finds each BS's k nearest neighbors and gravity shares.
func (m *Model) buildNeighbors() {
	n := len(m.BSIDs)
	k := m.Params.NeighborCount
	m.neighbors = make([][]int, n)
	m.shares = make([][]float64, n)
	type nd struct {
		j int
		d float64
	}
	for i := 0; i < n; i++ {
		li := m.Locs[m.BSIDs[i]]
		nds := make([]nd, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			nds = append(nds, nd{j, li.Dist(m.Locs[m.BSIDs[j]])})
		}
		sort.Slice(nds, func(a, b int) bool { return nds[a].d < nds[b].d })
		kk := k
		if kk > len(nds) {
			kk = len(nds)
		}
		nbrs := make([]int, kk)
		shares := make([]float64, kk)
		var tot float64
		for x := 0; x < kk; x++ {
			nbrs[x] = nds[x].j
			// gravity: closer, busier neighbors attract more handovers
			shares[x] = m.weights[nds[x].j] / (nds[x].d + 1)
			tot += shares[x]
		}
		for x := range shares {
			shares[x] /= tot
		}
		m.neighbors[i] = nbrs
		m.shares[i] = shares
	}
}

// inferGroups builds a representative busy-window handover graph at the BS
// level and runs the §7.1 inference.
func (m *Model) inferGroups() {
	g := m.HandoverGraphBS(12*60, 15*60) // a midday window
	for _, id := range m.BSIDs {
		g.AddNode(id)
	}
	m.Groups = InferGroups(g)
	for _, grp := range m.Groups {
		for _, member := range grp.Members() {
			m.GroupOf[member] = grp.ID
		}
	}
}

// MinutesPerDay is the diurnal period.
const MinutesPerDay = 24 * 60

// Diurnal returns the time-of-day load multiplier in (0, 1]: a midday
// shoulder and an evening peak, floored overnight — the double-peak shape
// visible in Fig. 12's load curve.
func Diurnal(minute int) float64 {
	mod := minute % MinutesPerDay
	if mod < 0 {
		mod += MinutesPerDay
	}
	h := float64(mod) / 60
	day := gauss(h, 13, 3.5)
	eve := gauss(h, 20, 2.5)
	v := 0.25 + 0.45*day + 0.75*eve
	if v > 1 {
		v = 1
	}
	return v
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-d * d / 2)
}

// noise returns a deterministic pseudo-random multiplier in [1-a, 1+a] for
// (stream, bs, minute).
func (m *Model) noise(stream, bs, minute int, a float64) float64 {
	h := uint64(m.noiseSeed)
	for _, v := range [3]uint64{uint64(stream) + 1, uint64(bs) + 1, uint64(minute) + 1} {
		h ^= v
		h *= 0x100000001B3
		h ^= h >> 29
	}
	u := float64(h%(1<<20)) / float64(1<<20) // [0,1)
	return 1 + a*(2*u-1)
}

const (
	streamBearer = iota
	streamUE
	streamHandover
)

// BearerRate returns the expected bearer arrivals per minute at BS index i
// during the given trace minute.
func (m *Model) BearerRate(i, minute int) float64 {
	return m.Params.PeakBearerPerBS * m.weights[i] * Diurnal(minute) * m.noise(streamBearer, i, minute, 0.2)
}

// UEArrivalRate returns the expected UE attaches per minute at BS index i.
func (m *Model) UEArrivalRate(i, minute int) float64 {
	return m.Params.PeakUEArrivalPerBS * m.weights[i] * Diurnal(minute) * m.noise(streamUE, i, minute, 0.25)
}

// HandoverRate returns the expected outgoing handovers per minute at BS
// index i.
func (m *Model) HandoverRate(i, minute int) float64 {
	return m.Params.PeakHandoverPerBS * m.weights[i] * Diurnal(minute) * m.noise(streamHandover, i, minute, 0.25)
}

// Index returns the model index of a BS ID.
func (m *Model) Index(id dataplane.DeviceID) (int, bool) {
	i, ok := m.idx[id]
	return i, ok
}

// HandoverGraphBS accumulates expected BS-level handover counts over trace
// minutes [from, to).
func (m *Model) HandoverGraphBS(from, to int) *HandoverGraph {
	g := NewHandoverGraph()
	n := len(m.BSIDs)
	// Sum the diurnal-weighted rate per BS over the window, then split
	// across neighbors by gravity share.
	for i := 0; i < n; i++ {
		var total float64
		for t := from; t < to; t++ {
			total += m.HandoverRate(i, t)
		}
		for x, j := range m.neighbors[i] {
			cnt := int(total * m.shares[i][x])
			if cnt > 0 {
				g.Add(m.BSIDs[i], m.BSIDs[j], cnt)
			}
		}
	}
	return g
}

// HandoverGraphGroups aggregates a window's handover graph to the BS-group
// level (the granularity leaf controllers log at, §5.3.1).
func (m *Model) HandoverGraphGroups(from, to int) *HandoverGraph {
	bs := m.HandoverGraphBS(from, to)
	return bs.Relabel(func(id dataplane.DeviceID) dataplane.DeviceID {
		if gid, ok := m.GroupOf[id]; ok {
			return gid
		}
		return id
	})
}

// GroupCentroids returns each group's location centroid.
func (m *Model) GroupCentroids() map[dataplane.DeviceID]dataplane.GeoPoint {
	out := make(map[dataplane.DeviceID]dataplane.GeoPoint, len(m.Groups))
	for _, g := range m.Groups {
		out[g.ID] = g.Centroid(m.Locs)
	}
	return out
}

// RegionLoads sums per-minute loads over the BSes assigned to each of k
// regions. assign maps BS ID → region index. Returns bearer, UE-arrival
// and handover aggregates indexed by region.
func (m *Model) RegionLoads(assign map[dataplane.DeviceID]int, k, minute int) (bearer, ue, ho []float64) {
	bearer = make([]float64, k)
	ue = make([]float64, k)
	ho = make([]float64, k)
	for i, id := range m.BSIDs {
		r, ok := assign[id]
		if !ok || r < 0 || r >= k {
			continue
		}
		bearer[r] += m.BearerRate(i, minute)
		ue[r] += m.UEArrivalRate(i, minute)
		ho[r] += m.HandoverRate(i, minute)
	}
	return bearer, ue, ho
}
