package ltetrace

import "testing"

// BenchmarkModelRates measures per-minute rate queries (the inner loop of
// the Fig. 11 and Fig. 12 drivers).
func BenchmarkModelRates(b *testing.B) {
	m := New(Params{Seed: 1, NumBS: 200})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := i % len(m.BSIDs)
		minute := i % MinutesPerDay
		_ = m.BearerRate(bs, minute)
		_ = m.UEArrivalRate(bs, minute)
		_ = m.HandoverRate(bs, minute)
	}
}

// BenchmarkHandoverGraph measures building one 3-hour group-level handover
// graph (one Fig. 12 window).
func BenchmarkHandoverGraph(b *testing.B) {
	m := New(Params{Seed: 1, NumBS: 200})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := m.HandoverGraphGroups(12*60, 15*60)
		if g.TotalWeight() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkInferGroups measures the §7.1 BS-group inference.
func BenchmarkInferGroups(b *testing.B) {
	m := New(Params{Seed: 1, NumBS: 200})
	base := m.HandoverGraphBS(12*60, 15*60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := InferGroups(base.Clone())
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}
