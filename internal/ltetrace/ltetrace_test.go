package ltetrace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataplane"
)

func smallModel() *Model {
	return New(Params{Seed: 1, NumBS: 80, NumUEs: 10000, Hotspots: 3})
}

func TestHandoverGraphBasics(t *testing.T) {
	g := NewHandoverGraph()
	g.Add("a", "b", 5)
	g.Add("b", "a", 3) // same undirected edge
	if g.Weight("a", "b") != 8 {
		t.Fatalf("weight = %d", g.Weight("a", "b"))
	}
	g.Add("a", "a", 100) // self loops ignored
	g.Add("a", "c", 0)   // zero counts ignored
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	g.AddNode("iso")
	if g.NumNodes() != 3 {
		t.Fatal("isolated node not added")
	}
	if g.TotalWeight() != 8 {
		t.Fatalf("total = %d", g.TotalWeight())
	}
	if len(g.Edges()) != 1 {
		t.Fatalf("edges = %v", g.Edges())
	}
}

func TestHandoverGraphCloneMerge(t *testing.T) {
	g := NewHandoverGraph()
	g.Add("a", "b", 2)
	c := g.Clone()
	c.Add("a", "b", 3)
	if g.Weight("a", "b") != 2 {
		t.Fatal("clone aliases")
	}
	g.Merge(c)
	if g.Weight("a", "b") != 7 {
		t.Fatalf("merge weight = %d", g.Weight("a", "b"))
	}
}

func TestHandoverGraphRelabel(t *testing.T) {
	g := NewHandoverGraph()
	g.Add("a1", "a2", 5) // same group → internal, dropped
	g.Add("a1", "b1", 7) // cross-group
	grp := func(id dataplane.DeviceID) dataplane.DeviceID {
		return dataplane.DeviceID(id[:1])
	}
	r := g.Relabel(grp)
	if r.Weight("a", "b") != 7 {
		t.Fatalf("cross weight = %d", r.Weight("a", "b"))
	}
	if r.Weight("a", "a") != 0 {
		t.Fatal("internal edges must drop")
	}
	if r.NumNodes() != 2 {
		t.Fatalf("nodes = %v", r.Nodes())
	}
}

func TestNeighborWeights(t *testing.T) {
	g := NewHandoverGraph()
	g.Add("a", "b", 1)
	g.Add("a", "c", 2)
	g.Add("b", "c", 3)
	nw := g.NeighborWeights("a")
	if len(nw) != 2 {
		t.Fatalf("neighbors of a = %v", nw)
	}
}

func TestInferGroupsRespectsMaxSize(t *testing.T) {
	// A heavy 10-clique must be split into groups of at most 6.
	g := NewHandoverGraph()
	ids := make([]dataplane.DeviceID, 10)
	for i := range ids {
		ids[i] = dataplane.DeviceID(rune('a' + i))
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			g.Add(ids[i], ids[j], 10+i+j)
		}
	}
	groups := InferGroups(g)
	seen := map[dataplane.DeviceID]bool{}
	total := 0
	for _, grp := range groups {
		if grp.Size() > dataplane.MaxGroupSize {
			t.Fatalf("group %s has %d members", grp.ID, grp.Size())
		}
		for _, m := range grp.Members() {
			if seen[m] {
				t.Fatalf("BS %s in two groups", m)
			}
			seen[m] = true
			total++
		}
	}
	if total != 10 {
		t.Fatalf("partition covers %d of 10", total)
	}
}

func TestInferGroupsKeepsHeavyEdgesTogether(t *testing.T) {
	// two triangles with heavy internal edges, one feather-weight bridge
	g := NewHandoverGraph()
	tri := func(a, b, c dataplane.DeviceID) {
		g.Add(a, b, 100)
		g.Add(b, c, 100)
		g.Add(a, c, 100)
	}
	tri("a", "b", "c")
	tri("x", "y", "z")
	g.Add("c", "x", 1)
	groups := InferGroups(g)
	if len(groups) != 1 && len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	// The 6-node whole graph fits one group; either way intra weight must
	// retain all heavy edges.
	if w := IntraGroupWeight(g, groups); w < 600 {
		t.Fatalf("intra-group weight = %d, heavy edges split", w)
	}
}

func TestInferGroupsSplitsAtLightEdge(t *testing.T) {
	// two 5-cliques joined by a light edge: 10 nodes cannot fit one group,
	// and the split should happen at the light bridge.
	g := NewHandoverGraph()
	mk := func(base rune) []dataplane.DeviceID {
		ids := make([]dataplane.DeviceID, 5)
		for i := range ids {
			ids[i] = dataplane.DeviceID(rune(int(base) + i))
		}
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.Add(ids[i], ids[j], 50)
			}
		}
		return ids
	}
	left := mk('a')
	right := mk('p')
	g.Add(left[4], right[0], 1)
	groups := InferGroups(g)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	groupOf := map[dataplane.DeviceID]dataplane.DeviceID{}
	for _, grp := range groups {
		for _, m := range grp.Members() {
			groupOf[m] = grp.ID
		}
	}
	if groupOf[left[0]] == groupOf[right[0]] {
		t.Fatal("cliques should separate at the light bridge")
	}
	if groupOf[left[0]] != groupOf[left[4]] {
		t.Fatal("left clique split")
	}
}

func TestInferGroupsIsolatedNodes(t *testing.T) {
	g := NewHandoverGraph()
	g.AddNode("lonely1")
	g.AddNode("lonely2")
	groups := InferGroups(g)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, grp := range groups {
		if grp.Size() != 1 {
			t.Fatal("isolated nodes become singleton groups")
		}
	}
}

// Property: inference always partitions nodes into groups of ≤ 6.
func TestInferGroupsPartitionQuick(t *testing.T) {
	f := func(edges [][3]uint8) bool {
		g := NewHandoverGraph()
		for _, e := range edges {
			a := dataplane.DeviceID(rune('a' + e[0]%20))
			b := dataplane.DeviceID(rune('a' + e[1]%20))
			g.Add(a, b, int(e[2])+1)
		}
		nodes := g.Nodes()
		groups := InferGroups(g)
		seen := map[dataplane.DeviceID]bool{}
		for _, grp := range groups {
			if grp.Size() > dataplane.MaxGroupSize {
				return false
			}
			for _, m := range grp.Members() {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalShape(t *testing.T) {
	for minute := 0; minute < MinutesPerDay; minute++ {
		v := Diurnal(minute)
		if v <= 0 || v > 1 {
			t.Fatalf("diurnal(%d) = %v", minute, v)
		}
	}
	night := Diurnal(4 * 60)
	evening := Diurnal(20 * 60)
	midday := Diurnal(13 * 60)
	if evening <= night || midday <= night {
		t.Fatalf("peaks must exceed night: night=%v midday=%v evening=%v", night, midday, evening)
	}
	if evening <= midday {
		t.Fatalf("evening should be the higher peak: %v vs %v", evening, midday)
	}
	if Diurnal(10) != Diurnal(10+MinutesPerDay) {
		t.Fatal("diurnal must be periodic")
	}
	if Diurnal(-60) != Diurnal(MinutesPerDay-60) {
		t.Fatal("negative minutes must wrap")
	}
}

func TestModelDeterministic(t *testing.T) {
	a, b := smallModel(), smallModel()
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("group counts differ")
	}
	for i, id := range a.BSIDs {
		if b.BSIDs[i] != id || a.Locs[id] != b.Locs[id] {
			t.Fatal("placement differs")
		}
		if a.BearerRate(i, 600) != b.BearerRate(i, 600) {
			t.Fatal("rates differ")
		}
	}
}

func TestModelGroupsCoverAllBSes(t *testing.T) {
	m := smallModel()
	covered := 0
	for _, g := range m.Groups {
		covered += g.Size()
		if g.Size() > dataplane.MaxGroupSize {
			t.Fatalf("group %s too big: %d", g.ID, g.Size())
		}
		if g.Topology != dataplane.TopoRing {
			t.Fatal("paper groups are rings")
		}
	}
	if covered != len(m.BSIDs) {
		t.Fatalf("groups cover %d of %d BSes", covered, len(m.BSIDs))
	}
	for _, id := range m.BSIDs {
		if _, ok := m.GroupOf[id]; !ok {
			t.Fatalf("BS %s ungrouped", id)
		}
	}
}

func TestRatesPositiveAndDiurnal(t *testing.T) {
	m := smallModel()
	var peakSum, nightSum float64
	for i := range m.BSIDs {
		peakSum += m.HandoverRate(i, 20*60)
		nightSum += m.HandoverRate(i, 4*60)
		if m.BearerRate(i, 100) < 0 || m.UEArrivalRate(i, 100) < 0 {
			t.Fatal("negative rate")
		}
	}
	if peakSum <= nightSum*1.5 {
		t.Fatalf("peak handover load should dominate night: %v vs %v", peakSum, nightSum)
	}
}

func TestHandoverGraphBSLocality(t *testing.T) {
	m := smallModel()
	g := m.HandoverGraphBS(12*60, 13*60)
	if g.TotalWeight() == 0 {
		t.Fatal("empty handover graph")
	}
	// handovers must connect geographically close BSes: check the mean
	// edge distance is far below the plane diagonal
	var sum float64
	var count int
	for _, e := range g.Edges() {
		sum += m.Locs[e.Key.A].Dist(m.Locs[e.Key.B])
		count++
	}
	mean := sum / float64(count)
	if mean > m.Params.PlaneSize/4 {
		t.Fatalf("handover edges not local: mean dist %v", mean)
	}
}

func TestHandoverGraphGroupsDropsInternal(t *testing.T) {
	m := smallModel()
	bs := m.HandoverGraphBS(12*60, 13*60)
	grp := m.HandoverGraphGroups(12 * 60, 13 * 60)
	if grp.TotalWeight() >= bs.TotalWeight() {
		t.Fatalf("group aggregation should drop intra-group handovers: %d vs %d",
			grp.TotalWeight(), bs.TotalWeight())
	}
	for _, e := range grp.Edges() {
		if e.Key.A == e.Key.B {
			t.Fatal("self edge after relabel")
		}
	}
}

func TestRegionLoads(t *testing.T) {
	m := smallModel()
	assign := make(map[dataplane.DeviceID]int)
	for i, id := range m.BSIDs {
		assign[id] = i % 4
	}
	bearer, ue, ho := m.RegionLoads(assign, 4, 13*60)
	for r := 0; r < 4; r++ {
		if bearer[r] <= 0 || ue[r] <= 0 || ho[r] <= 0 {
			t.Fatalf("region %d has zero load", r)
		}
	}
	var total float64
	for i := range m.BSIDs {
		total += m.BearerRate(i, 13*60)
	}
	var sum float64
	for _, v := range bearer {
		sum += v
	}
	if math.Abs(total-sum) > 1e-6 {
		t.Fatalf("region loads must sum to total: %v vs %v", sum, total)
	}
}

func TestSampleEvents(t *testing.T) {
	m := smallModel()
	events := m.SampleEvents(13*60, 13*60+2, 0.02)
	if len(events) == 0 {
		t.Fatal("no events sampled")
	}
	kinds := map[EventKind]int{}
	for i, e := range events {
		kinds[e.Kind]++
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("events out of order")
		}
		if e.Kind == EvHandover {
			if e.Target == "" || e.Target == e.BS {
				t.Fatalf("bad handover target: %+v", e)
			}
		}
		if e.Kind == EvBearerCreate && (e.QoS < 1 || e.QoS > 4) {
			t.Fatalf("bad QoS: %+v", e)
		}
	}
	if kinds[EvBearerCreate] == 0 || kinds[EvHandover] == 0 || kinds[EvUEAttach] == 0 {
		t.Fatalf("kinds = %v", kinds)
	}
	// bearer events dominate (paper: 1e5 bearers vs 1e3 attaches per min)
	if kinds[EvBearerCreate] < kinds[EvUEAttach] {
		t.Fatalf("bearer events should dominate: %v", kinds)
	}
}

func TestSampleEventsEdgeCases(t *testing.T) {
	m := smallModel()
	if ev := m.SampleEvents(0, 1, 0); ev != nil {
		t.Fatal("zero scale should be nil")
	}
	a := m.SampleEvents(600, 601, 0.01)
	b := m.SampleEvents(600, 601, 0.01)
	if len(a) != len(b) {
		t.Fatal("sampling must be deterministic")
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	if poisson(r, 0) != 0 {
		t.Fatal("zero lambda")
	}
	// mean of small-lambda draws
	var sum int
	const n = 3000
	for i := 0; i < n; i++ {
		sum += poisson(r, 3)
	}
	mean := float64(sum) / n
	if mean < 2.5 || mean > 3.5 {
		t.Fatalf("poisson(3) mean = %v", mean)
	}
	// large lambda path
	var sum2 int
	for i := 0; i < n; i++ {
		sum2 += poisson(r, 100)
	}
	mean2 := float64(sum2) / n
	if mean2 < 95 || mean2 > 105 {
		t.Fatalf("poisson(100) mean = %v", mean2)
	}
}

func TestEventKindStrings(t *testing.T) {
	ks := []EventKind{EvUEAttach, EvUEDetach, EvBearerCreate, EvBearerDelete, EvHandover}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.String()] {
			t.Fatal("duplicate kind string")
		}
		seen[k.String()] = true
	}
}

