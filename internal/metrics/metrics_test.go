package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("expected zero summary, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Count != 1 || s.Min != 42 || s.Max != 42 || s.Median != 42 || s.Mean != 42 {
		t.Fatalf("bad summary for single value: %+v", s)
	}
	if s.Stddev != 0 {
		t.Fatalf("stddev of single value should be 0, got %v", s.Stddev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.Count != 10 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almostEq(s.Mean, 5.5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !almostEq(s.Median, 5.5, 1e-12) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{5, 1, 9}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("q0.5 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.25); !almostEq(q, 2.5, 1e-12) {
		t.Fatalf("interpolated quantile = %v", q)
	}
}

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
	if m := Mean([]float64{2, 4}); m != 3 {
		t.Fatalf("mean = %v", m)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFInverse(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if v := c.Inverse(0.25); v != 10 {
		t.Fatalf("Inverse(0.25) = %v", v)
	}
	if v := c.Inverse(0.75); v != 30 {
		t.Fatalf("Inverse(0.75) = %v", v)
	}
	if v := c.Inverse(1); v != 40 {
		t.Fatalf("Inverse(1) = %v", v)
	}
	if v := c.Inverse(0); v != 10 {
		t.Fatalf("Inverse(0) = %v", v)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 {
		t.Fatal("empty CDF should have Len 0")
	}
	if c.At(1) != 0 {
		t.Fatal("At on empty should be 0")
	}
	if !math.IsNaN(c.Inverse(0.5)) {
		t.Fatal("Inverse on empty should be NaN")
	}
	if pts := c.Points(5); pts != nil {
		t.Fatal("Points on empty should be nil")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	pts := NewCDF(xs).Points(50)
	if len(pts) != 50 {
		t.Fatalf("len(points) = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X {
			t.Fatalf("CDF x values must be nondecreasing: %v then %v", pts[i-1], pts[i])
		}
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("CDF y values must be increasing")
		}
	}
	if !almostEq(pts[len(pts)-1].Y, 1.0, 1e-12) {
		t.Fatalf("last probability should be 1, got %v", pts[len(pts)-1].Y)
	}
}

// Property: CDF.At is a valid CDF — monotone nondecreasing and within [0,1];
// and Inverse is a quasi-inverse: At(Inverse(p)) >= p.
func TestCDFPropertyQuick(t *testing.T) {
	f := func(raw []float64, probe float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		v := c.At(probe)
		if v < 0 || v > 1 {
			return false
		}
		// monotonicity around probe
		if c.At(probe+1) < v {
			return false
		}
		p = math.Abs(math.Mod(p, 1))
		inv := c.Inverse(p)
		return c.At(inv) >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile matches sort-based rank selection at extremes.
func TestQuantilePropertyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return Quantile(xs, 0) == s[0] && Quantile(xs, 1) == s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts, min, width := Histogram(xs, 5)
	if min != 0 {
		t.Fatalf("min = %v", min)
	}
	if !almostEq(width, 1.8, 1e-12) {
		t.Fatalf("width = %v", width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram loses values: %d != %d", total, len(xs))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _, width := Histogram([]float64{5, 5, 5}, 4)
	if width != 0 {
		t.Fatalf("width = %v", width)
	}
	if counts[0] != 3 {
		t.Fatalf("all values should land in bin 0: %v", counts)
	}
	if c, _, _ := Histogram(nil, 3); c != nil {
		t.Fatal("empty histogram should be nil")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1: Demo", "Name", "Ports", "Pct")
	tb.AddRow("Leaf A", 218, 26.0)
	tb.AddRow("Leaf B", 213, 18.5)
	out := tb.String()
	if !strings.Contains(out, "Table 1: Demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Leaf A") || !strings.Contains(out, "218") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "26") {
		t.Fatalf("float formatting broken:\n%s", out)
	}
	if !strings.Contains(out, "18.50") {
		t.Fatalf("fractional float should keep decimals:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("ragged row dropped:\n%s", out)
	}
}

func TestReductionPct(t *testing.T) {
	if r := ReductionPct(100, 64); !almostEq(r, 36, 1e-12) {
		t.Fatalf("reduction = %v", r)
	}
	if r := ReductionPct(0, 10); r != 0 {
		t.Fatalf("reduction with zero base = %v", r)
	}
	if r := ReductionPct(50, 75); !almostEq(r, -50, 1e-12) {
		t.Fatalf("negative reduction = %v", r)
	}
}
