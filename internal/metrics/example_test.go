package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// ExampleSummarize shows the five-number summary the experiment drivers
// report for every distribution.
func ExampleSummarize() {
	s := metrics.Summarize([]float64{10, 20, 30, 40, 50})
	fmt.Printf("min=%.0f median=%.0f max=%.0f mean=%.0f\n", s.Min, s.Median, s.Max, s.Mean)
	// Output: min=10 median=30 max=50 mean=30
}

// ExampleNewCDF shows empirical-CDF queries as used for the Fig. 9 and
// Fig. 11 curves.
func ExampleNewCDF() {
	c := metrics.NewCDF([]float64{1, 2, 3, 4})
	fmt.Printf("P[X<=2]=%.2f  p75=%.0f\n", c.At(2), c.Inverse(0.75))
	// Output: P[X<=2]=0.50  p75=3
}

// ExampleTable renders experiment output in the paper's table style.
func ExampleTable() {
	t := metrics.NewTable("Demo", "Leaf", "Links")
	t.AddRow("A", 80)
	t.AddRow("B", 99)
	fmt.Print(t.String())
	// Output:
	// Demo
	// Leaf  Links
	// -----------
	// A     80
	// B     99
}
