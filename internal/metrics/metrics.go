package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual five-number summary plus mean and count for a
// sample of float64 observations.
type Summary struct {
	Count  int
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P85    float64
	P95    float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary over xs. It does not modify xs. An empty
// input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sumsq float64
	for _, v := range s {
		sum += v
		sumsq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(s),
		Min:    s[0],
		P25:    quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.50),
		P75:    quantileSorted(s, 0.75),
		P85:    quantileSorted(s, 0.85),
		P95:    quantileSorted(s, 0.95),
		Max:    s[len(s)-1],
		Mean:   mean,
		Stddev: math.Sqrt(variance),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// CDF is an empirical cumulative distribution function over a fixed sample.
// The zero value is empty; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, then sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the number of underlying observations.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P[X ≤ x], the fraction of observations ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want count of values <= x, so search for the first value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the smallest x such that P[X ≤ x] ≥ p (the p-quantile of
// the empirical distribution).
func (c *CDF) Inverse(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points samples the CDF at n evenly spaced probability levels and returns
// (value, probability) pairs suitable for plotting a CDF curve.
func (c *CDF) Points(n int) []Point {
	if n <= 0 || len(c.sorted) == 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		pts = append(pts, Point{X: c.Inverse(p), Y: p})
	}
	return pts
}

// Point is an (x, y) pair on a plotted curve.
type Point struct {
	X, Y float64
}

// Histogram buckets xs into nbins equal-width bins over [min, max] and
// returns the per-bin counts along with the bin width. Values exactly at the
// upper edge fall into the last bin.
func Histogram(xs []float64, nbins int) (counts []int, min, width float64) {
	if len(xs) == 0 || nbins <= 0 {
		return nil, 0, 0
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	counts = make([]int, nbins)
	if max == min {
		counts[0] = len(xs)
		return counts, min, 0
	}
	width = (max - min) / float64(nbins)
	for _, v := range xs {
		i := int((v - min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, min, width
}

// Table renders rows of experiment output with aligned columns, in the style
// of the paper's tables. Header cells define the column count; extra row
// cells are dropped, missing cells rendered empty.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many data rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table with box-drawing-free ASCII alignment.
func (t *Table) String() string {
	ncol := len(t.Header)
	widths := make([]int, ncol)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i := 0; i < ncol && i < len(row); i++ {
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == ncol-1 {
				b.WriteString(cell) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := ncol*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// ReductionPct returns the percentage reduction from base to improved, e.g.
// ReductionPct(100, 64) == 36. Returns 0 when base is 0.
func ReductionPct(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - improved) / base * 100
}
