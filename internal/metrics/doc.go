// Package metrics provides the reproduction's measurement plumbing:
// small statistical helpers for the evaluation harness (empirical CDFs,
// percentiles, summary statistics, fixed-width table rendering) plus a
// process-global runtime metrics registry (NewCounter, NewDurationHist)
// used by the controller hot paths — graph-cache hits, southbound
// batches/barriers/round trips, and per-operation setup latency
// histograms. RuntimeCounters snapshots the counters and WriteRuntime
// renders the whole registry; cmd/chaos -metrics prints it after a run.
//
// The package is deliberately dependency-free and allocation-conscious so
// it can be used inside benchmark loops.
package metrics
