package metrics

// Runtime observability: lock-free counters and fixed-bucket latency
// histograms for the control plane's hot paths (graph-cache hits/misses,
// abstraction recompute latency). Unlike the statistical helpers in this
// package, these are written on the request path, so every operation is a
// single atomic and observation never allocates.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for concurrent
// use. Obtain named instances from NewCounter so they appear in
// WriteRuntime dumps.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the number of power-of-two latency buckets: bucket b
// holds observations in [2^b, 2^(b+1)) microseconds, with bucket 0 also
// absorbing sub-microsecond observations and the last bucket everything
// beyond ~2^30 µs (≈18 min).
const histBuckets = 31

// DurationHist is a log₂-bucketed latency histogram safe for concurrent
// use. Observations cost a handful of atomic adds; quantiles are
// approximate (upper bucket bound).
type DurationHist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *DurationHist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.counts[histBucket(ns)].Add(1)
}

func histBucket(ns int64) int {
	us := ns / 1000
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// histBucketUpper is bucket b's exclusive upper bound.
func histBucketUpper(b int) time.Duration {
	return time.Duration(int64(1)<<(b+1)) * time.Microsecond
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot summarizes the histogram. Quantiles interpolate linearly
// within their log₂ bucket (see quantile).
func (h *DurationHist) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Max: time.Duration(h.max.Load())}
	if s.Count == 0 {
		return s
	}
	s.Mean = time.Duration(h.sum.Load() / s.Count)
	s.P50 = h.quantile(0.50)
	s.P95 = h.quantile(0.95)
	s.P99 = h.quantile(0.99)
	return s
}

// quantile estimates the q-quantile by locating the log₂ bucket holding
// the target observation and interpolating linearly inside it: the
// bucket's samples are assumed uniformly spread between its bounds, and
// the target's rank within the bucket (counted from the middle of its
// sample, hence the +0.5) picks the point. Returning the bucket's upper
// bound — the old behavior — overstated every quantile by up to 2× and
// collapsed distinct distributions onto identical round values.
func (h *DurationHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var before int64
	for b := 0; b < histBuckets; b++ {
		inBucket := h.counts[b].Load()
		if before+inBucket > target {
			upper := histBucketUpper(b)
			lower := time.Duration(0)
			if b > 0 {
				lower = upper / 2
			}
			frac := (float64(target-before) + 0.5) / float64(inBucket)
			v := lower + time.Duration(frac*float64(upper-lower))
			if m := time.Duration(h.max.Load()); v > m {
				return m
			}
			return v
		}
		before += inBucket
	}
	return time.Duration(h.max.Load())
}

// runtimeReg is the process-wide registry behind NewCounter /
// NewDurationHist. Registration is rare (package init); reads and writes
// of the instruments themselves never touch the registry lock.
var runtimeReg = struct {
	mu sync.Mutex
	// counters maps metric names to counters, guarded by mu.
	counters map[string]*Counter
	// hists maps metric names to histograms, guarded by mu.
	hists map[string]*DurationHist
}{
	counters: make(map[string]*Counter),
	hists:    make(map[string]*DurationHist),
}

// NewCounter returns the named process-wide counter, creating it on first
// use. Repeated calls with one name share one instance.
func NewCounter(name string) *Counter {
	runtimeReg.mu.Lock()
	defer runtimeReg.mu.Unlock()
	if c, ok := runtimeReg.counters[name]; ok {
		return c
	}
	c := &Counter{}
	runtimeReg.counters[name] = c
	return c
}

// NewDurationHist returns the named process-wide latency histogram,
// creating it on first use.
func NewDurationHist(name string) *DurationHist {
	runtimeReg.mu.Lock()
	defer runtimeReg.mu.Unlock()
	if h, ok := runtimeReg.hists[name]; ok {
		return h
	}
	h := &DurationHist{}
	runtimeReg.hists[name] = h
	return h
}

// RuntimeCounters snapshots every registered counter by name.
func RuntimeCounters() map[string]int64 {
	runtimeReg.mu.Lock()
	defer runtimeReg.mu.Unlock()
	out := make(map[string]int64, len(runtimeReg.counters))
	for name, c := range runtimeReg.counters {
		out[name] = c.Value()
	}
	return out
}

// WriteRuntime renders all registered counters and histograms to w in
// deterministic (sorted) order.
func WriteRuntime(w io.Writer) {
	runtimeReg.mu.Lock()
	cnames := make([]string, 0, len(runtimeReg.counters))
	for name := range runtimeReg.counters {
		cnames = append(cnames, name)
	}
	hnames := make([]string, 0, len(runtimeReg.hists))
	for name := range runtimeReg.hists {
		hnames = append(hnames, name)
	}
	counters := runtimeReg.counters
	hists := runtimeReg.hists
	runtimeReg.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(hnames)
	for _, name := range cnames {
		fmt.Fprintf(w, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range hnames {
		s := hists[name].Snapshot()
		fmt.Fprintf(w, "%s count=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
			name, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
	}
}
