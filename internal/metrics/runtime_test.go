package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("test.counter.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if NewCounter("test.counter.concurrent") != c {
		t.Fatal("same name must return the same counter instance")
	}
}

func TestDurationHistSnapshot(t *testing.T) {
	h := NewDurationHist("test.hist.snapshot")
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", s.Max)
	}
	wantMean := (90*time.Millisecond + 10*100*time.Millisecond) / 100
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean, wantMean)
	}
	// P50 falls in the 1ms bucket ([1ms, 2ms) upper bound 2.048ms); P95 in
	// the 100ms bucket, clamped to the observed max.
	if s.P50 > 3*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1-2ms", s.P50)
	}
	if s.P95 != 100*time.Millisecond {
		t.Fatalf("p95 = %v, want clamped to max 100ms", s.P95)
	}
}

func TestDurationHistConcurrent(t *testing.T) {
	h := NewDurationHist("test.hist.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
}

func TestWriteRuntime(t *testing.T) {
	NewCounter("test.write.a").Add(3)
	NewDurationHist("test.write.h").Observe(5 * time.Millisecond)
	var b strings.Builder
	WriteRuntime(&b)
	out := b.String()
	if !strings.Contains(out, "test.write.a 3") {
		t.Fatalf("counter line missing from dump:\n%s", out)
	}
	if !strings.Contains(out, "test.write.h count=1") {
		t.Fatalf("hist line missing from dump:\n%s", out)
	}
	if snap := RuntimeCounters(); snap["test.write.a"] != 3 {
		t.Fatalf("RuntimeCounters = %v", snap["test.write.a"])
	}
}
