package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("test.counter.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if NewCounter("test.counter.concurrent") != c {
		t.Fatal("same name must return the same counter instance")
	}
}

func TestDurationHistSnapshot(t *testing.T) {
	h := NewDurationHist("test.hist.snapshot")
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", s.Max)
	}
	wantMean := (90*time.Millisecond + 10*100*time.Millisecond) / 100
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean, wantMean)
	}
	// P50 falls in the 1ms bucket ([1ms, 2ms) upper bound 2.048ms); P95 in
	// the 100ms bucket, clamped to the observed max.
	if s.P50 > 3*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1-2ms", s.P50)
	}
	if s.P95 != 100*time.Millisecond {
		t.Fatalf("p95 = %v, want clamped to max 100ms", s.P95)
	}
}

// TestDurationHistQuantileInterpolation pins the sub-bucket linear
// interpolation exactly. The pre-fix quantile returned the bucket's upper
// bound, so every distribution landing in the [8.192ms, 16.384ms) bucket
// reported the identical p50 of 16384000ns regardless of where its mass
// sat — BENCH_workload.json showed the same 8192000 p50 for operations
// with visibly different means.
func TestDurationHistQuantileInterpolation(t *testing.T) {
	h := NewDurationHist("test.hist.interp")
	// 100 samples in the [1.024ms, 2.048ms) bucket, 100 in the
	// [2.048ms, 4.096ms) bucket, max well above both.
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond)
	}
	s := h.Snapshot()
	// p50: target rank 100 is the first sample of the second bucket:
	// lower 2048µs + (0+0.5)/100 of the 2048µs bucket width = 2058.24µs.
	if want := time.Duration(2058240); s.P50 != want {
		t.Fatalf("p50 = %v (%dns), want %v", s.P50, s.P50.Nanoseconds(), want)
	}
	// p99: rank 198 → 2048µs + 98.5/100·2048µs = 4065.28µs, clamped to
	// the observed max of 3ms.
	if want := 3 * time.Millisecond; s.P99 != want {
		t.Fatalf("p99 = %v, want clamped to max %v", s.P99, want)
	}
}

// TestDurationHistQuantilesDifferWithinBucket pins that quantiles of a
// single-bucket distribution now spread across the bucket instead of all
// collapsing onto its upper bound.
func TestDurationHistQuantilesDifferWithinBucket(t *testing.T) {
	h := NewDurationHist("test.hist.withinbucket")
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond) // keeps max above the interpolated values
	s := h.Snapshot()
	// Rank 50 of 101 → 1024µs + 50.5/100·1024µs = 1541.12µs.
	if want := time.Duration(1541120); s.P50 != want {
		t.Fatalf("p50 = %v (%dns), want %v", s.P50, s.P50.Nanoseconds(), want)
	}
	// Rank 99 still lands in the same bucket: 1024µs + 99.5/100·1024µs.
	if want := time.Duration(2042880); s.P99 != want {
		t.Fatalf("p99 = %v (%dns), want %v", s.P99, s.P99.Nanoseconds(), want)
	}
	if s.P50 == s.P99 {
		t.Fatal("p50 and p99 collapsed onto the same value within one bucket")
	}
}

// TestDurationHistZeroBucketQuantile pins interpolation from the lowest
// bucket, whose lower bound is 0, not upper/2.
func TestDurationHistZeroBucketQuantile(t *testing.T) {
	h := NewDurationHist("test.hist.zerobucket")
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Microsecond)
	}
	h.Observe(5 * time.Microsecond)
	s := h.Snapshot()
	// Bucket 0 spans [0, 2µs): rank 5 of 11 → 0 + 5.5/10·2µs = 1.1µs.
	if want := time.Duration(1100); s.P50 != want {
		t.Fatalf("p50 = %v (%dns), want %v", s.P50, s.P50.Nanoseconds(), want)
	}
}

func TestDurationHistConcurrent(t *testing.T) {
	h := NewDurationHist("test.hist.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
}

func TestWriteRuntime(t *testing.T) {
	NewCounter("test.write.a").Add(3)
	NewDurationHist("test.write.h").Observe(5 * time.Millisecond)
	var b strings.Builder
	WriteRuntime(&b)
	out := b.String()
	if !strings.Contains(out, "test.write.a 3") {
		t.Fatalf("counter line missing from dump:\n%s", out)
	}
	if !strings.Contains(out, "test.write.h count=1") {
		t.Fatalf("hist line missing from dump:\n%s", out)
	}
	if snap := RuntimeCounters(); snap["test.write.a"] != 3 {
		t.Fatalf("RuntimeCounters = %v", snap["test.write.a"])
	}
}
