package ha

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/nib"
	"repro/internal/simnet"
)

// journalSM is a minimal replica for snapshot tests: an append-only
// journal of committed entries, serialized line-per-entry. Entries are
// keyed by log ID, so identical event sequences produce identical bytes.
type journalSM struct {
	lines []string
}

func (j *journalSM) Apply(e nib.LogEntry) {
	j.lines = append(j.lines, fmt.Sprintf("%d:%v", e.ID, e.Payload))
}
func (j *journalSM) Snapshot() []byte { return []byte(strings.Join(j.lines, "\n")) }
func (j *journalSM) Restore(b []byte) {
	j.lines = nil
	if len(b) > 0 {
		j.lines = strings.Split(string(b), "\n")
	}
}

// snapPair builds a pair whose store checkpoints every `every` commits.
func snapPair(every int, redo func(nib.LogEntry) error) (*simnet.Sim, *Pair) {
	sim := simnet.New()
	store := NewSharedStore()
	store.SnapshotEvery = every
	store.SetStateMachine(&journalSM{})
	p := NewPair(sim, store, "C1-master", "C1-standby", redo)
	p.NewReplica = func() StateMachine { return &journalSM{} }
	return sim, p
}

func driveEvents(t *testing.T, p *Pair, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := p.HandleEvent("op", fmt.Sprintf("ev-%d", i), func() error { return nil }); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
}

func TestSnapshotCadenceTruncatesLog(t *testing.T) {
	_, p := snapPair(4, nil)
	driveEvents(t, p, 10)
	cp := p.Store.Checkpoint()
	if cp == nil {
		t.Fatal("no checkpoint after 10 commits at cadence 4")
	}
	if cp.NextID == 0 || len(cp.State) == 0 {
		t.Fatalf("empty checkpoint: %+v", cp)
	}
	if n := p.Store.Log.Len(); n >= 10 {
		t.Fatalf("log holds %d entries, truncation never fired", n)
	}
	// The rebuilt replica must equal the live one byte-for-byte.
	fresh := &journalSM{}
	st := p.Store.Rebuild(fresh)
	if !st.FromSnapshot {
		t.Fatal("rebuild ignored the committed checkpoint")
	}
	if got, want := fresh.Snapshot(), p.Store.StateMachineSnapshot(); !bytes.Equal(got, want) {
		t.Fatalf("rebuild diverged:\n%s\nvs live\n%s", got, want)
	}
}

// TestReplayEquivalence drives the identical event sequence through a
// snapshotting store and a full-history store: the rebuilt replicas must
// be byte-identical, with the snapshot rebuild replaying only the delta.
func TestReplayEquivalence(t *testing.T) {
	_, snap := snapPair(8, nil)
	_, full := snapPair(0, nil)
	driveEvents(t, snap, 50)
	driveEvents(t, full, 50)

	sRep, fRep := &journalSM{}, &journalSM{}
	sSt := snap.Store.Rebuild(sRep)
	fSt := full.Store.Rebuild(fRep)
	if !bytes.Equal(sRep.Snapshot(), fRep.Snapshot()) {
		t.Fatalf("snapshot rebuild != genesis rebuild:\n%s\nvs\n%s", sRep.Snapshot(), fRep.Snapshot())
	}
	if !sSt.FromSnapshot || fSt.FromSnapshot {
		t.Fatalf("fromSnapshot: snap=%t full=%t", sSt.FromSnapshot, fSt.FromSnapshot)
	}
	if fSt.Replayed != 50 {
		t.Fatalf("genesis rebuild replayed %d entries, want 50", fSt.Replayed)
	}
	if sSt.Replayed >= fSt.Replayed {
		t.Fatalf("snapshot rebuild replayed %d entries, not cheaper than %d from genesis",
			sSt.Replayed, fSt.Replayed)
	}
}

// TestPromotionMidSnapshotWrite crashes the master while a snapshot
// capture is open: the promotion must use the previous committed
// checkpoint — never the torn pending one — and still converge.
func TestPromotionMidSnapshotWrite(t *testing.T) {
	_, p := snapPair(4, nil)
	driveEvents(t, p, 8) // at least one committed checkpoint
	committed := p.Store.Checkpoint()
	if committed == nil {
		t.Fatal("no committed checkpoint to fall back on")
	}

	w := p.Store.BeginSnapshot()
	if w == nil {
		t.Fatal("could not open a snapshot capture")
	}
	driveEvents(t, p, 5)         // commits land while the capture is open
	p.LogOnly("op", "in-flight") // and one entry dies unprocessed

	if !p.PromoteNow() {
		t.Fatal("promotion failed")
	}
	ps := p.LastPromotion()
	if !ps.Converged {
		t.Fatal("promoted replica diverged from the master's")
	}
	if !ps.Rebuild.FromSnapshot || ps.Rebuild.SnapshotSeq != committed.Seq {
		t.Fatalf("promotion used checkpoint seq %d (fromSnapshot=%t), want committed seq %d",
			ps.Rebuild.SnapshotSeq, ps.Rebuild.FromSnapshot, committed.Seq)
	}
	if ps.Redone != 1 {
		t.Fatalf("redone %d entries, want the 1 in-flight", ps.Redone)
	}
	if p.MasterCount() != 1 {
		t.Fatalf("master count %d after promotion", p.MasterCount())
	}

	// The abandoned writer must not wedge future captures.
	w.Abandon()
	if w2 := p.Store.BeginSnapshot(); w2 == nil {
		t.Fatal("snapshot capture wedged after abandoning the torn writer")
	} else {
		w2.Commit()
	}
}

// TestPendingSnapshotNeverVisible pins the two-phase rule: a begun but
// uncommitted capture is invisible to Checkpoint() and rebuilds.
func TestPendingSnapshotNeverVisible(t *testing.T) {
	_, p := snapPair(0, nil) // no auto-cadence; manual captures only
	driveEvents(t, p, 3)
	w := p.Store.BeginSnapshot()
	if w == nil {
		t.Fatal("could not open capture")
	}
	if cp := p.Store.Checkpoint(); cp != nil {
		t.Fatalf("pending capture leaked as committed checkpoint %+v", cp)
	}
	fresh := &journalSM{}
	if st := p.Store.Rebuild(fresh); st.FromSnapshot {
		t.Fatal("rebuild consumed a pending capture")
	}
	w.Commit()
	if cp := p.Store.Checkpoint(); cp == nil {
		t.Fatal("committed capture not visible")
	}
}
