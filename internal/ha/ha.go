// Package ha implements SoftMoW's controller failure recovery (§6): every
// logical node in the controller tree runs a master and a hot-standby
// instance sharing a reliable NIB store and event log. The standby detects
// master failure via heartbeats and takes over immediately, redoing any
// events the master logged but did not finish.
//
// Heartbeats run on virtual time (internal/simnet) so failover behaviour is
// deterministic and testable.
package ha

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/nib"
	"repro/internal/simnet"
)

// Role is an instance's current role.
type Role int

const (
	// RoleStandby observes and waits.
	RoleStandby Role = iota
	// RoleMaster processes events.
	RoleMaster
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleMaster {
		return "master"
	}
	return "standby"
}

// SharedStore is the reliable storage both instances share (§6: "NIB is
// decoupled from the controller logic and stored in a reliable storage
// system (e.g. Zookeeper). The NIB is shared between the master and
// standby").
type SharedStore struct {
	NIB *nib.NIB
	Log *nib.EventLog
}

// NewSharedStore creates a store with a fresh NIB (whose event log is
// reused as the shared log).
func NewSharedStore() *SharedStore {
	n := nib.New()
	return &SharedStore{NIB: n, Log: n.Log()}
}

// Instance is one controller instance of a logical node.
type Instance struct {
	ID string

	mu sync.Mutex
	// role is the current HA role, guarded by mu.
	role Role
	// alive reports instance liveness, guarded by mu.
	alive bool
	// redo is invoked for each unfinished log entry on promotion.
	// guarded by mu.
	redo func(nib.LogEntry)
	// processed counts events this instance fully handled, guarded by mu.
	processed int
}

// NewInstance creates a live instance in the given role.
func NewInstance(id string, role Role, redo func(nib.LogEntry)) *Instance {
	return &Instance{ID: id, role: role, alive: true, redo: redo}
}

// Role returns the current role.
func (i *Instance) Role() Role {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.role
}

// Alive reports liveness.
func (i *Instance) Alive() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.alive
}

// Processed reports how many events this instance completed.
func (i *Instance) Processed() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.processed
}

// Pair manages a master/standby instance pair over a shared store.
type Pair struct {
	Store *SharedStore

	// HeartbeatInterval is how often the master beats.
	HeartbeatInterval time.Duration
	// FailureTimeout is how long the standby waits before declaring the
	// master dead (must exceed HeartbeatInterval).
	FailureTimeout time.Duration

	mu sync.Mutex
	// sim is the driving simulator; set at construction, immutable after.
	sim *simnet.Sim
	// master is the current master instance, guarded by mu.
	master *Instance
	// standby is the current standby instance, guarded by mu.
	standby *Instance
	// lastBeat is the sim time of the last heartbeat, guarded by mu.
	lastBeat time.Duration
	// Failovers counts promotions, guarded by mu.
	Failovers int
}

// NewPair creates a pair with default timing (100 ms beats, 350 ms
// timeout) and starts the heartbeat machinery on the simulator.
func NewPair(sim *simnet.Sim, store *SharedStore, masterID, standbyID string, redo func(nib.LogEntry)) *Pair {
	p := &Pair{
		Store:             store,
		HeartbeatInterval: 100 * time.Millisecond,
		FailureTimeout:    350 * time.Millisecond,
		sim:               sim,
		master:            NewInstance(masterID, RoleMaster, redo),
		standby:           NewInstance(standbyID, RoleStandby, redo),
		lastBeat:          sim.Now(),
	}
	p.scheduleBeat()
	p.scheduleCheck()
	return p
}

// Master returns the current master instance (nil if both failed).
func (p *Pair) Master() *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.master != nil && p.master.Alive() && p.master.Role() == RoleMaster {
		return p.master
	}
	if p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleMaster {
		return p.standby
	}
	return nil
}

// Standby returns the standby instance (nil after promotion or failure).
func (p *Pair) Standby() *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleStandby {
		return p.standby
	}
	return nil
}

// HandleEvent runs one control-plane event through the write-ahead log
// discipline: log arrival → process → mark done. Returns an error when no
// master is available.
func (p *Pair) HandleEvent(kind string, payload interface{}, process func()) error {
	m := p.Master()
	if m == nil {
		return fmt.Errorf("ha: no live master")
	}
	id := p.Store.Log.Append(kind, payload)
	process()
	p.Store.Log.MarkDone(id)
	m.mu.Lock()
	m.processed++
	m.mu.Unlock()
	return nil
}

// LogOnly records an event arrival without completing it — used to model a
// master crashing mid-event.
func (p *Pair) LogOnly(kind string, payload interface{}) uint64 {
	return p.Store.Log.Append(kind, payload)
}

// AttachStandby installs a fresh standby instance after a failover, making
// the pair survivable again: the promoted instance moves into the master
// slot and the new instance takes the standby slot. The heartbeat clock
// resets so the newcomer isn't immediately promoted off stale state.
func (p *Pair) AttachStandby(id string, redo func(nib.LogEntry)) *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleMaster {
		p.master = p.standby
	}
	s := NewInstance(id, RoleStandby, redo)
	p.standby = s
	p.lastBeat = p.sim.Now()
	return s
}

// KillMaster fails the master instance; the standby will detect the missed
// heartbeats and promote itself.
func (p *Pair) KillMaster() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.master != nil {
		p.master.mu.Lock()
		p.master.alive = false
		p.master.mu.Unlock()
	}
}

func (p *Pair) scheduleBeat() {
	p.sim.After(p.HeartbeatInterval, func() {
		p.mu.Lock()
		if p.master != nil && p.master.Alive() {
			p.lastBeat = p.sim.Now()
		}
		p.mu.Unlock()
		p.scheduleBeat()
	})
}

func (p *Pair) scheduleCheck() {
	p.sim.After(p.FailureTimeout / 2, func() {
		p.check()
		p.scheduleCheck()
	})
}

func (p *Pair) check() {
	p.mu.Lock()
	stale := p.sim.Now()-p.lastBeat > p.FailureTimeout
	canPromote := stale && p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleStandby &&
		(p.master == nil || !p.master.Alive())
	p.mu.Unlock()
	if !canPromote {
		return
	}
	p.promote()
}

// promote switches the standby to master and redoes unfinished events (§6:
// "the hot standby detects this and immediately checks the event logs and
// redo unfinished events").
func (p *Pair) promote() {
	p.mu.Lock()
	s := p.standby
	if s == nil {
		p.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.role = RoleMaster
	redo := s.redo
	s.mu.Unlock()
	p.Failovers++
	p.mu.Unlock()

	for _, entry := range p.Store.Log.Unfinished() {
		if redo != nil {
			redo(entry)
		}
		p.Store.Log.MarkDone(entry.ID)
		s.mu.Lock()
		s.processed++
		s.mu.Unlock()
	}
}

// MasterCount reports how many live instances currently claim mastership —
// must never exceed 1.
func (p *Pair) MasterCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	count := 0
	for _, in := range []*Instance{p.master, p.standby} {
		if in != nil && in.Alive() && in.Role() == RoleMaster {
			count++
		}
	}
	return count
}
