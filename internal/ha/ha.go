package ha

import (
	"errors"
	"sync"
	"time"

	"repro/internal/nib"
	"repro/internal/simnet"
)

// ErrNoMaster is returned by HandleEvent when neither instance of a pair
// currently holds mastership (master dead, standby not yet promoted).
// Callers in the failover path treat it as retryable: the op blocks until
// the standby promotes, preserving exactly-once execution.
var ErrNoMaster = errors.New("ha: no live master")

// Role is an instance's current role.
type Role int

const (
	// RoleStandby observes and waits.
	RoleStandby Role = iota
	// RoleMaster processes events.
	RoleMaster
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleMaster {
		return "master"
	}
	return "standby"
}

// SharedStore is the reliable storage both instances share (§6: "NIB is
// decoupled from the controller logic and stored in a reliable storage
// system (e.g. Zookeeper). The NIB is shared between the master and
// standby"). Beyond the NIB and event log it optionally replicates an
// application StateMachine and checkpoints it incrementally (snapshot.go).
type SharedStore struct {
	NIB *nib.NIB
	Log *nib.EventLog

	// SnapshotEvery triggers an inline checkpoint after this many committed
	// entries; 0 disables snapshotting (the log then grows until Compact).
	// Set at bootstrap, before events flow.
	SnapshotEvery int

	mu sync.Mutex
	// sm is the live replica state machine, guarded by mu.
	sm StateMachine
	// sinceSnap counts commits since the last committed checkpoint,
	// guarded by mu.
	sinceSnap int
	// snapSeq is the sequence number of the last committed checkpoint,
	// guarded by mu.
	snapSeq int
	// checkpoint is the last committed checkpoint, guarded by mu.
	checkpoint *Checkpoint
	// writing reports an in-progress snapshot capture, guarded by mu.
	writing bool
}

// NewSharedStore creates a store with a fresh NIB (whose event log is
// reused as the shared log).
func NewSharedStore() *SharedStore {
	n := nib.New()
	return &SharedStore{NIB: n, Log: n.Log()}
}

// Instance is one controller instance of a logical node.
type Instance struct {
	ID string

	mu sync.Mutex
	// role is the current HA role, guarded by mu.
	role Role
	// alive reports instance liveness, guarded by mu.
	alive bool
	// redo is invoked for each unfinished log entry on promotion; its error
	// becomes the entry's recorded outcome. guarded by mu.
	redo func(nib.LogEntry) error
	// processed counts events this instance fully handled, guarded by mu.
	processed int
}

// NewInstance creates a live instance in the given role.
func NewInstance(id string, role Role, redo func(nib.LogEntry) error) *Instance {
	return &Instance{ID: id, role: role, alive: true, redo: redo}
}

// Role returns the current role.
func (i *Instance) Role() Role {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.role
}

// Alive reports liveness.
func (i *Instance) Alive() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.alive
}

// Processed reports how many events this instance completed.
func (i *Instance) Processed() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.processed
}

// Pair manages a master/standby instance pair over a shared store.
type Pair struct {
	Store *SharedStore

	// HeartbeatInterval is how often the master beats.
	HeartbeatInterval time.Duration
	// FailureTimeout is how long the standby waits before declaring the
	// master dead (must exceed HeartbeatInterval).
	FailureTimeout time.Duration

	// NewReplica, when set, makes promotion rebuild application state from
	// the store (checkpoint + delta replay) into a fresh StateMachine and
	// adopt it as the live replica, recording the rebuild cost and whether
	// it converged with the pre-failure replica. Set at bootstrap.
	NewReplica func() StateMachine

	// OnPromote, when set, runs after a completed promotion with its
	// measured stats — the hook the chaos/workload drivers use to re-attach
	// devices to the promoted master and unblock held traffic. Set at
	// bootstrap.
	OnPromote func(PromotionStats)

	mu sync.Mutex
	// sim is the driving simulator; set at construction, immutable after.
	sim *simnet.Sim
	// master is the current master instance, guarded by mu.
	master *Instance
	// standby is the current standby instance, guarded by mu.
	standby *Instance
	// lastBeat is the sim time of the last heartbeat, guarded by mu.
	lastBeat time.Duration
	// Failovers counts promotions, guarded by mu.
	Failovers int
	// lastPromotion records the most recent promotion's measured cost,
	// guarded by mu.
	lastPromotion PromotionStats
}

// NewPair creates a pair with default timing (100 ms beats, 350 ms
// timeout) and starts the heartbeat machinery on the simulator.
func NewPair(sim *simnet.Sim, store *SharedStore, masterID, standbyID string, redo func(nib.LogEntry) error) *Pair {
	p := &Pair{
		Store:             store,
		HeartbeatInterval: 100 * time.Millisecond,
		FailureTimeout:    350 * time.Millisecond,
		sim:               sim,
		master:            NewInstance(masterID, RoleMaster, redo),
		standby:           NewInstance(standbyID, RoleStandby, redo),
		lastBeat:          sim.Now(),
	}
	p.scheduleBeat()
	p.scheduleCheck()
	return p
}

// Master returns the current master instance (nil if both failed).
func (p *Pair) Master() *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.master != nil && p.master.Alive() && p.master.Role() == RoleMaster {
		return p.master
	}
	if p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleMaster {
		return p.standby
	}
	return nil
}

// Standby returns the standby instance (nil after promotion or failure).
func (p *Pair) Standby() *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleStandby {
		return p.standby
	}
	return nil
}

// HandleEvent runs one control-plane event through the write-ahead log
// discipline: log arrival → process → commit outcome (which also applies
// successful entries to the replicated StateMachine and checkpoints on
// cadence). Returns ErrNoMaster when no master is available, else the
// process error.
func (p *Pair) HandleEvent(kind string, payload interface{}, process func() error) error {
	m := p.Master()
	if m == nil {
		return ErrNoMaster
	}
	id := p.Store.Log.Append(kind, payload)
	err := process()
	p.Store.Commit(id, err)
	m.mu.Lock()
	m.processed++
	m.mu.Unlock()
	return err
}

// LogOnly records an event arrival without completing it — used to model a
// master crashing mid-event.
func (p *Pair) LogOnly(kind string, payload interface{}) uint64 {
	return p.Store.Log.Append(kind, payload)
}

// AttachStandby installs a fresh standby instance after a failover, making
// the pair survivable again: the promoted instance moves into the master
// slot and the new instance takes the standby slot. The heartbeat clock
// resets so the newcomer isn't immediately promoted off stale state.
func (p *Pair) AttachStandby(id string, redo func(nib.LogEntry) error) *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleMaster {
		p.master = p.standby
	}
	s := NewInstance(id, RoleStandby, redo)
	p.standby = s
	p.lastBeat = p.sim.Now()
	return s
}

// KillMaster fails the master instance; the standby will detect the missed
// heartbeats and promote itself.
func (p *Pair) KillMaster() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.master != nil {
		p.master.mu.Lock()
		p.master.alive = false
		p.master.mu.Unlock()
	}
}

// PromoteNow fails the master and promotes the standby synchronously,
// without waiting for the heartbeat timeout — the planned-failover path
// chaos schedules use so the blackout window is the promotion itself, not
// detection latency. Reports whether a promotion actually ran (false when
// no live standby exists or it is already master).
func (p *Pair) PromoteNow() bool {
	p.KillMaster()
	p.mu.Lock()
	can := p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleStandby
	p.mu.Unlock()
	if !can {
		return false
	}
	return p.promote()
}

func (p *Pair) scheduleBeat() {
	p.sim.After(p.HeartbeatInterval, func() {
		p.mu.Lock()
		if p.master != nil && p.master.Alive() {
			p.lastBeat = p.sim.Now()
		}
		p.mu.Unlock()
		p.scheduleBeat()
	})
}

func (p *Pair) scheduleCheck() {
	p.sim.After(p.FailureTimeout/2, func() {
		p.check()
		p.scheduleCheck()
	})
}

func (p *Pair) check() {
	p.mu.Lock()
	stale := p.sim.Now()-p.lastBeat > p.FailureTimeout
	canPromote := stale && p.standby != nil && p.standby.Alive() && p.standby.Role() == RoleStandby &&
		(p.master == nil || !p.master.Alive())
	p.mu.Unlock()
	if !canPromote {
		return
	}
	p.promote()
}

// wallClock reads the real clock for promotion-latency measurement. Virtual
// (sim) time cannot measure promotion cost: the redo/rebuild work runs
// between sim steps, so sim.Now() would report zero.
func wallClock() time.Time {
	return time.Now() //softmow:allow determinism latency measurement only, never feeds back into control flow
}

// promote switches the standby to master and redoes unfinished events (§6:
// "the hot standby detects this and immediately checks the event logs and
// redo unfinished events"). When NewReplica is set the promoted standby
// first rebuilds application state from checkpoint + delta; redone entries
// are then committed through the store so the adopted replica sees them.
// Reports whether this call performed the promotion (false if the standby
// was already master or missing — promote is idempotent under the
// heartbeat-check vs PromoteNow race).
func (p *Pair) promote() bool {
	start := wallClock()
	p.mu.Lock()
	s := p.standby
	if s == nil {
		p.mu.Unlock()
		return false
	}
	s.mu.Lock()
	if s.role != RoleStandby || !s.alive {
		s.mu.Unlock()
		p.mu.Unlock()
		return false
	}
	s.role = RoleMaster
	redo := s.redo
	s.mu.Unlock()
	p.Failovers++
	newReplica := p.NewReplica
	onPromote := p.OnPromote
	p.mu.Unlock()

	stats := PromotionStats{Converged: true}
	if newReplica != nil {
		sm := newReplica()
		stats.Rebuild = p.Store.Rebuild(sm)
		stats.Converged = p.Store.AdoptReplica(sm)
	}
	for _, entry := range p.Store.Log.Unfinished() {
		var err error
		if redo != nil {
			err = redo(entry)
		}
		p.Store.Commit(entry.ID, err)
		s.mu.Lock()
		s.processed++
		s.mu.Unlock()
		stats.Redone++
	}
	stats.Latency = wallClock().Sub(start)
	mPromotions.Inc()
	mPromotionLatency.Observe(stats.Latency)
	mRedoneEntries.Add(int64(stats.Redone))
	mReplayedEntries.Add(int64(stats.Rebuild.Replayed))

	p.mu.Lock()
	p.lastPromotion = stats
	p.mu.Unlock()
	if onPromote != nil {
		onPromote(stats)
	}
	return true
}

// LastPromotion returns the measured stats of the most recent promotion
// (zero value before any failover).
func (p *Pair) LastPromotion() PromotionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastPromotion
}

// MasterCount reports how many live instances currently claim mastership —
// must never exceed 1.
func (p *Pair) MasterCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	count := 0
	for _, in := range []*Instance{p.master, p.standby} {
		if in != nil && in.Alive() && in.Role() == RoleMaster {
			count++
		}
	}
	return count
}
