package ha

import (
	"testing"
	"time"

	"repro/internal/nib"
	"repro/internal/simnet"
)

func newPair(redo func(nib.LogEntry) error) (*simnet.Sim, *Pair) {
	sim := simnet.New()
	store := NewSharedStore()
	return sim, NewPair(sim, store, "C1-master", "C1-standby", redo)
}

func TestNormalOperation(t *testing.T) {
	sim, p := newPair(nil)
	processed := 0
	if err := p.HandleEvent("bearer", "req1", func() error { processed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if processed != 1 {
		t.Fatal("event not processed")
	}
	if len(p.Store.Log.Unfinished()) != 0 {
		t.Fatal("completed event left unfinished")
	}
	sim.RunUntil(2 * time.Second)
	if p.Failovers != 0 {
		t.Fatal("spurious failover")
	}
	if p.Master().ID != "C1-master" {
		t.Fatal("master changed without failure")
	}
	if p.MasterCount() != 1 {
		t.Fatalf("master count = %d", p.MasterCount())
	}
}

func TestFailoverPromotesStandby(t *testing.T) {
	var redone []nib.LogEntry
	sim, p := newPair(func(e nib.LogEntry) error { redone = append(redone, e); return nil })

	// master logs an event but crashes before finishing it
	p.LogOnly("handover", "ho-42")
	p.KillMaster()
	sim.RunUntil(2 * time.Second)

	if p.Failovers != 1 {
		t.Fatalf("failovers = %d", p.Failovers)
	}
	m := p.Master()
	if m == nil || m.ID != "C1-standby" {
		t.Fatalf("master = %+v", m)
	}
	if len(redone) != 1 || redone[0].Payload != "ho-42" {
		t.Fatalf("redone = %+v", redone)
	}
	if len(p.Store.Log.Unfinished()) != 0 {
		t.Fatal("unfinished events after replay")
	}
	if p.MasterCount() != 1 {
		t.Fatalf("master count = %d", p.MasterCount())
	}
	if p.Standby() != nil {
		t.Fatal("standby should be gone after promotion")
	}
}

func TestFailoverPreservesCompletedWork(t *testing.T) {
	var redone []nib.LogEntry
	sim, p := newPair(func(e nib.LogEntry) error { redone = append(redone, e); return nil })
	p.HandleEvent("bearer", "done-1", func() error { return nil })
	p.LogOnly("bearer", "pending-1")
	p.LogOnly("bearer", "pending-2")
	p.KillMaster()
	sim.RunUntil(2 * time.Second)

	if len(redone) != 2 {
		t.Fatalf("redone = %+v", redone)
	}
	if redone[0].Payload != "pending-1" || redone[1].Payload != "pending-2" {
		t.Fatalf("replay order wrong: %+v", redone)
	}
}

func TestNewMasterServesEvents(t *testing.T) {
	sim, p := newPair(nil)
	p.KillMaster()
	sim.RunUntil(2 * time.Second)
	count := 0
	if err := p.HandleEvent("bearer", "x", func() error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatal("promoted master should process events")
	}
	if p.Master().Processed() == 0 {
		t.Fatal("processed counter")
	}
}

func TestNoMasterErrors(t *testing.T) {
	sim, p := newPair(nil)
	p.KillMaster()
	// kill standby too, before promotion
	s := p.Standby()
	s.mu.Lock()
	s.alive = false
	s.mu.Unlock()
	sim.RunUntil(2 * time.Second)
	if err := p.HandleEvent("x", nil, func() error { return nil }); err == nil {
		t.Fatal("expected error with no live master")
	}
	if p.MasterCount() != 0 {
		t.Fatalf("master count = %d", p.MasterCount())
	}
}

func TestFailoverTimingRespectsTimeout(t *testing.T) {
	sim := simnet.New()
	store := NewSharedStore()
	p := NewPair(sim, store, "m", "s", nil)
	p.KillMaster()
	// before the failure timeout elapses, no promotion
	sim.RunUntil(p.FailureTimeout - 50*time.Millisecond)
	if p.Failovers != 0 {
		t.Fatal("premature failover")
	}
	sim.RunUntil(2 * time.Second)
	if p.Failovers != 1 {
		t.Fatal("failover never happened")
	}
}

func TestAtMostOneMasterAlways(t *testing.T) {
	sim, p := newPair(nil)
	for i := 0; i < 20; i++ {
		sim.RunUntil(time.Duration(i) * 100 * time.Millisecond)
		if p.MasterCount() > 1 {
			t.Fatalf("two masters at %v", sim.Now())
		}
	}
	p.KillMaster()
	for i := 20; i < 60; i++ {
		sim.RunUntil(time.Duration(i) * 100 * time.Millisecond)
		if p.MasterCount() > 1 {
			t.Fatalf("two masters at %v", sim.Now())
		}
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleMaster.String() != "master" || RoleStandby.String() != "standby" {
		t.Fatal("role strings")
	}
}

func TestSharedStoreWiring(t *testing.T) {
	s := NewSharedStore()
	if s.NIB == nil || s.Log == nil {
		t.Fatal("store incomplete")
	}
	if s.NIB.Log() != s.Log {
		t.Fatal("log must be the NIB's log")
	}
}
