package ha

import (
	"bytes"
	"time"

	"repro/internal/metrics"
	"repro/internal/nib"
)

// Incremental snapshots with event-log truncation. Without them the shared
// event log grows without bound and a standby joining cold must replay the
// whole history — promotion cost O(history). A SharedStore configured with
// SnapshotEvery periodically folds the replica state machine into a
// Checkpoint at the log's low-water mark and truncates everything below
// it; a rebuild then restores the checkpoint and replays only the delta —
// promotion cost O(delta).
//
// Snapshot writes are two-phase (BeginSnapshot captures, Commit installs)
// so a promotion racing a snapshot write never observes a torn checkpoint:
// until Commit, rebuilds use the previous committed checkpoint and a
// longer delta, both of which are fully consistent.

// StateMachine is the deterministic application state a SharedStore
// replicates from the event log: the master applies each successfully
// committed entry, checkpoints serialize the accumulated state, and a
// promoted standby rebuilds it from checkpoint + delta.
//
// Apply is invoked in commit order, which may differ from log (arrival)
// order across independent keys, and a delta replay may re-deliver entries
// that were committed above the low-water mark before the checkpoint was
// captured. Implementations must therefore be per-key last-writer-wins (or
// otherwise idempotent under at-least-once redelivery) with per-key apply
// order matching log order — the discipline every caller in this repo
// satisfies by serializing operations per UE/bearer.
type StateMachine interface {
	// Apply folds one successfully committed log entry into the state.
	Apply(e nib.LogEntry)
	// Snapshot serializes the state deterministically (equal states must
	// produce equal bytes — convergence checks compare serializations).
	Snapshot() []byte
	// Restore replaces the state from a Snapshot serialization.
	Restore(b []byte)
}

// Checkpoint is one committed incremental snapshot of the replica state.
type Checkpoint struct {
	// Seq numbers checkpoints from 1.
	Seq int
	// NextID is the log's low-water mark at capture: the serialized state
	// folds in every entry below it, so a rebuild replays from NextID.
	NextID uint64
	// State is the replica's serialized state at capture.
	State []byte
}

// ReplayStats describes one standby rebuild (Rebuild).
type ReplayStats struct {
	// FromSnapshot reports whether a committed checkpoint seeded the
	// rebuild (false = replay from genesis).
	FromSnapshot bool
	// SnapshotSeq and SnapshotBytes identify the seeding checkpoint.
	SnapshotSeq   int
	SnapshotBytes int
	// Replayed counts delta entries applied on top of the seed state;
	// Skipped counts finished-but-failed entries the replay ignored.
	Replayed int
	Skipped  int
}

// PromotionStats records the most recent promotion's measured cost.
type PromotionStats struct {
	// Latency is the wall-clock promotion duration: log scan, redo of
	// unfinished entries, and (when a replica factory is configured) the
	// standby's state rebuild.
	Latency time.Duration
	// Redone counts unfinished entries the promoted standby re-executed.
	Redone int
	// Rebuild is the state-rebuild cost (zero value when no replica
	// factory is configured).
	Rebuild ReplayStats
	// Converged reports whether the rebuilt replica byte-matched the live
	// replica state (vacuously true without a replica factory).
	Converged bool
}

// ha.* runtime metrics: promotion cost and snapshot lifecycle.
var (
	mPromotions       = metrics.NewCounter("ha.promotions")
	mPromotionLatency = metrics.NewDurationHist("ha.promotion_latency")
	mRedoneEntries    = metrics.NewCounter("ha.redone_entries")
	mReplayedEntries  = metrics.NewCounter("ha.replayed_entries")
	mSnapshots        = metrics.NewCounter("ha.snapshots")
	mSnapshotBytes    = metrics.NewCounter("ha.snapshot_bytes")
	mTruncated        = metrics.NewCounter("ha.truncated_entries")
)

// SetStateMachine installs the live replica the store applies committed
// entries to. Bootstrap only: call before any events flow.
func (s *SharedStore) SetStateMachine(sm StateMachine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sm = sm
}

// StateMachineSnapshot serializes the live replica (nil without one) — the
// convergence baseline invariant checks compare rebuilds against.
func (s *SharedStore) StateMachineSnapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sm == nil {
		return nil
	}
	return s.sm.Snapshot()
}

// Commit finishes a logged entry with its processing outcome: the log
// records done/failed, a successful entry is applied to the live replica,
// and — when SnapshotEvery is configured — a due checkpoint is captured
// and committed inline.
func (s *SharedStore) Commit(id uint64, opErr error) {
	// The outcome mark (which advances the log's low-water mark) and the
	// replica apply must be atomic with respect to snapshot capture: if
	// the mark landed outside the lock, a concurrent BeginSnapshot could
	// observe a low-water mark covering this entry while its state bytes
	// predate the apply — and the subsequent truncation would drop the
	// entry's effect from every future rebuild.
	s.mu.Lock()
	s.Log.MarkOutcome(id, opErr != nil)
	if opErr == nil && s.sm != nil {
		if e, ok := s.Log.Entry(id); ok {
			s.sm.Apply(e)
		}
	}
	s.sinceSnap++
	due := s.SnapshotEvery > 0 && s.sm != nil && !s.writing && s.sinceSnap >= s.SnapshotEvery
	s.mu.Unlock()
	if due {
		if w := s.BeginSnapshot(); w != nil {
			w.Commit()
		}
	}
}

// SnapshotWriter is an in-progress snapshot capture. The captured state is
// not visible to rebuilds until Commit; Abandon discards it.
type SnapshotWriter struct {
	store *SharedStore
	cp    Checkpoint
}

// BeginSnapshot captures the live replica state and the log's low-water
// mark into a pending checkpoint, returning nil when no replica is
// installed or another capture is in progress. The caller commits (or
// abandons) the writer; promotion between Begin and Commit uses the
// previous committed checkpoint — never the pending one.
func (s *SharedStore) BeginSnapshot() *SnapshotWriter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sm == nil || s.writing {
		return nil
	}
	s.writing = true
	return &SnapshotWriter{
		store: s,
		cp: Checkpoint{
			Seq:    s.snapSeq + 1,
			NextID: s.Log.LowWaterMark(),
			State:  s.sm.Snapshot(),
		},
	}
}

// Commit installs the captured checkpoint as the committed one, truncates
// the log below its low-water mark, and resets the snapshot cadence.
func (w *SnapshotWriter) Commit() {
	s := w.store
	s.mu.Lock()
	cp := w.cp
	s.checkpoint = &cp
	s.snapSeq = cp.Seq
	s.sinceSnap = 0
	s.writing = false
	s.mu.Unlock()
	removed := s.Log.TruncateThrough(cp.NextID)
	mSnapshots.Inc()
	mSnapshotBytes.Add(int64(len(cp.State)))
	mTruncated.Add(int64(removed))
}

// Abandon discards the pending capture (a crashed master mid-write).
func (w *SnapshotWriter) Abandon() {
	w.store.mu.Lock()
	w.store.writing = false
	w.store.mu.Unlock()
}

// Checkpoint returns the committed checkpoint (nil before the first
// Commit). The pending state of an in-progress writer is never returned.
func (s *SharedStore) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.checkpoint == nil {
		return nil
	}
	cp := *s.checkpoint
	return &cp
}

// Rebuild reconstructs application state into sm: restore the committed
// checkpoint if one exists and replay the delta above its low-water mark,
// else replay the retained log from genesis. Only finished, successful
// entries are applied — unfinished ones are the promotion redo's job.
func (s *SharedStore) Rebuild(sm StateMachine) ReplayStats {
	s.mu.Lock()
	cp := s.checkpoint
	s.mu.Unlock()
	var st ReplayStats
	from := uint64(0)
	if cp != nil {
		sm.Restore(cp.State)
		st.FromSnapshot = true
		st.SnapshotSeq = cp.Seq
		st.SnapshotBytes = len(cp.State)
		from = cp.NextID
	}
	for _, e := range s.Log.EntriesSince(from) {
		if !e.Done {
			continue
		}
		if e.Failed {
			st.Skipped++
			continue
		}
		sm.Apply(e)
		st.Replayed++
	}
	return st
}

// AdoptReplica installs a rebuilt replica as the live one, reporting
// whether it byte-converged with the state it replaces (true when there
// was no previous replica). The §6 promotion protocol calls this after
// Rebuild: the promoted standby's reconstructed view takes over, and a
// divergence means the snapshot/delta pipeline lost or duplicated effects.
func (s *SharedStore) AdoptReplica(sm StateMachine) (converged bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	converged = true
	if s.sm != nil {
		converged = bytes.Equal(s.sm.Snapshot(), sm.Snapshot())
	}
	s.sm = sm
	return converged
}
