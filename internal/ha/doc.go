// Package ha implements SoftMoW's controller failure recovery (§6): every
// logical node in the controller tree runs a master and a hot-standby
// instance sharing a reliable NIB store and event log. The standby detects
// master failure via heartbeats and takes over immediately, redoing any
// events the master logged but did not finish.
//
// # Write-ahead discipline
//
// Pair.HandleEvent is the only mutation path: log the event arrival
// (nib.EventLog.Append), process it, then Commit the outcome. A master that
// dies between Append and Commit leaves an unfinished entry; the promoted
// standby redoes exactly those. Commit also folds successful entries into
// the replicated StateMachine, so the store always holds enough to rebuild
// application state.
//
// # Incremental snapshots and bounded-loss promotion
//
// With SharedStore.SnapshotEvery set, every N committed entries the store
// captures a Checkpoint — the serialized StateMachine plus the log's
// low-water mark — and truncates finished entries below the mark. A
// promoted standby with Pair.NewReplica configured then rebuilds by
// restoring the checkpoint and replaying only the delta above it:
// promotion cost is O(delta), not O(history). Snapshot capture is
// two-phase (BeginSnapshot / Commit / Abandon) so a promotion racing a
// snapshot write never observes a torn checkpoint. Replay is at-least-once
// — entries committed above the low-water mark before capture can be both
// in the checkpoint and in the delta — so StateMachine implementations
// must be per-key last-writer-wins (see the StateMachine contract).
//
// Promotion is measured: PromotionStats records wall-clock latency, redone
// and replayed entry counts, snapshot size, and whether the rebuilt
// replica byte-converged with the pre-failure one; the same numbers feed
// the ha.* runtime metrics.
//
// Heartbeats run on virtual time (internal/simnet) so failover behaviour
// is deterministic and testable; Pair.PromoteNow gives chaos schedules a
// synchronous promotion for planned failovers under live workload.
package ha
