package routing

import (
	"errors"
	"math"
	"time"

	"repro/internal/dataplane"
)

// Objective selects the path-cost order.
type Objective int

const (
	// MinHops minimizes hop count, breaking ties by latency (the paper's
	// default for internal path computation, §4.2).
	MinHops Objective = iota
	// MinLatency minimizes latency, breaking ties by hops (for
	// delay-sensitive service policies, §2.2).
	MinLatency
)

// Constraints bound admissible paths (from bearer-request QoS, §5.1).
// Zero values mean unconstrained.
type Constraints struct {
	MaxHops    int
	MaxLatency time.Duration
	// MinBandwidth requires every traversed edge to have at least this
	// many Mbps available.
	MinBandwidth float64
}

// Cost is a path's accumulated metrics.
type Cost struct {
	Hops    int
	Latency time.Duration
	// Bottleneck is the minimum available bandwidth along the path.
	Bottleneck float64
}

// less orders costs under an objective (lexicographic).
func (c Cost) less(o Cost, obj Objective) bool {
	if obj == MinLatency {
		if c.Latency != o.Latency {
			return c.Latency < o.Latency
		}
		return c.Hops < o.Hops
	}
	if c.Hops != o.Hops {
		return c.Hops < o.Hops
	}
	return c.Latency < o.Latency
}

// violates reports whether the cost breaks constraints.
func (c Cost) violates(ct Constraints) bool {
	if ct.MaxHops > 0 && c.Hops > ct.MaxHops {
		return true
	}
	if ct.MaxLatency > 0 && c.Latency > ct.MaxLatency {
		return true
	}
	return false
}

// Path is a computed route: the port-ref sequence alternating device
// traversals and link crossings, plus total cost.
type Path struct {
	// Points is the node sequence (device, port) from source to
	// destination, inclusive.
	Points []dataplane.PortRef
	Cost   Cost
	// LinkCrossings marks, for each step i → i+1, whether it is a link
	// crossing (true) or an intra-device traversal (false).
	LinkCrossings []bool
}

// Devices returns the distinct device sequence along the path.
func (p *Path) Devices() []dataplane.DeviceID {
	var out []dataplane.DeviceID
	for _, pt := range p.Points {
		if len(out) == 0 || out[len(out)-1] != pt.Dev {
			out = append(out, pt.Dev)
		}
	}
	return out
}

// Segments returns per-device (device, inPort, outPort) triples: the unit
// of rule installation. The first segment's inPort is the source point's
// port; the last segment's outPort is the destination port.
func (p *Path) Segments() []Segment {
	var segs []Segment
	i := 0
	for i < len(p.Points) {
		j := i
		for j+1 < len(p.Points) && p.Points[j+1].Dev == p.Points[i].Dev {
			j++
		}
		segs = append(segs, Segment{
			Dev:     p.Points[i].Dev,
			InPort:  p.Points[i].Port,
			OutPort: p.Points[j].Port,
		})
		i = j + 1
	}
	return segs
}

// Segment is one device's traversal along a path.
type Segment struct {
	Dev     dataplane.DeviceID
	InPort  dataplane.PortID
	OutPort dataplane.PortID
}

// ErrNoPath is returned when no admissible path exists.
var ErrNoPath = errors.New("routing: no admissible path")

// pqEntry is one heap element: a node plus the tentative cost it was
// enqueued with (lazy-deletion Dijkstra).
type pqEntry struct {
	node int32
	cost Cost
}

// costHeap is a hand-rolled binary min-heap over pqEntry values ordered by
// an Objective. Value storage on a reused backing slice keeps the relax
// loop allocation-free (container/heap boxes every Push through
// interface{} and forced per-item index bookkeeping that nothing read).
type costHeap struct {
	entries []pqEntry
	obj     Objective
}

func (h *costHeap) reset(obj Objective) {
	h.entries = h.entries[:0]
	h.obj = obj
}

func (h *costHeap) push(e pqEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.entries[i].cost.less(h.entries[p].cost, h.obj) {
			break
		}
		h.entries[i], h.entries[p] = h.entries[p], h.entries[i]
		i = p
	}
}

func (h *costHeap) pop() pqEntry {
	top := h.entries[0]
	n := len(h.entries) - 1
	h.entries[0] = h.entries[n]
	h.entries = h.entries[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.entries[l].cost.less(h.entries[m].cost, h.obj) {
			m = l
		}
		if r < n && h.entries[r].cost.less(h.entries[m].cost, h.obj) {
			m = r
		}
		if m == i {
			break
		}
		h.entries[i], h.entries[m] = h.entries[m], h.entries[i]
		i = m
	}
	return top
}

// scratch is the reusable per-SSSP working state, sized to the graph's
// node count and pooled on the Graph so steady-state path computations
// allocate nothing but their results.
type scratch struct {
	dist     []Cost
	seen     []bool
	prev     []int32
	prevLink []bool
	heap     costHeap
}

func newScratch(n int) *scratch {
	return &scratch{
		dist:     make([]Cost, n),
		seen:     make([]bool, n),
		prev:     make([]int32, n),
		prevLink: make([]bool, n),
		heap:     costHeap{entries: make([]pqEntry, 0, n)},
	}
}

// unreached is the Dijkstra initialization sentinel: any real cost
// compares less under both objectives.
var unreached = Cost{Hops: math.MaxInt32, Latency: time.Duration(math.MaxInt64 / 4)}

// sssp is the single relax loop shared by ShortestPath, MetricsFrom, and
// PairMetrics: Dijkstra from s under obj and ct. When dst >= 0 the search
// stops as soon as dst is settled; trackPrev records predecessors for path
// reconstruction. After it returns, sc.seen marks exactly the settled
// (reachable, constraint-admissible) nodes and sc.dist their final costs.
func (g *Graph) sssp(sc *scratch, s, dst int, obj Objective, ct Constraints, trackPrev bool) {
	n := len(g.refs)
	for i := 0; i < n; i++ {
		sc.dist[i] = unreached
		sc.seen[i] = false
	}
	if trackPrev {
		for i := 0; i < n; i++ {
			sc.prev[i] = -1
			sc.prevLink[i] = false
		}
	}
	sc.dist[s] = Cost{Bottleneck: math.Inf(1)}
	sc.heap.reset(obj)
	sc.heap.push(pqEntry{node: int32(s), cost: sc.dist[s]})
	for len(sc.heap.entries) > 0 {
		it := sc.heap.pop()
		u := int(it.node)
		if sc.seen[u] {
			continue
		}
		sc.seen[u] = true
		if u == dst {
			return
		}
		du := sc.dist[u]
		for _, e := range g.adj[u] {
			if sc.seen[e.to] {
				continue
			}
			if ct.MinBandwidth > 0 && e.bandwidth < ct.MinBandwidth {
				continue
			}
			nc := Cost{
				Hops:       du.Hops + e.hops,
				Latency:    du.Latency + e.latency,
				Bottleneck: math.Min(du.Bottleneck, e.bandwidth),
			}
			if nc.violates(ct) {
				continue
			}
			if nc.less(sc.dist[e.to], obj) {
				sc.dist[e.to] = nc
				if trackPrev {
					sc.prev[e.to] = int32(u)
					sc.prevLink[e.to] = e.link
				}
				sc.heap.push(pqEntry{node: int32(e.to), cost: nc})
			}
		}
	}
}

// ShortestPath computes the optimal path from src to dst under the
// objective and constraints. src and dst are port refs present in the
// graph.
func (g *Graph) ShortestPath(src, dst dataplane.PortRef, obj Objective, ct Constraints) (*Path, error) {
	s, ok := g.nodes[src]
	if !ok {
		return nil, ErrNoPath
	}
	d, ok := g.nodes[dst]
	if !ok {
		return nil, ErrNoPath
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	g.sssp(sc, s, d, obj, ct, true)
	if !sc.seen[d] {
		return nil, ErrNoPath
	}
	if sc.dist[d].violates(ct) {
		return nil, ErrNoPath
	}
	// Reconstruct; only the returned Path's slices escape.
	length := 1
	for at := d; sc.prev[at] != -1; at = int(sc.prev[at]) {
		length++
	}
	p := &Path{Cost: sc.dist[d], Points: make([]dataplane.PortRef, length)}
	if length > 1 {
		p.LinkCrossings = make([]bool, length-1)
	}
	at := d
	for i := length - 1; ; i-- {
		p.Points[i] = g.refs[at]
		if sc.prev[at] == -1 {
			break
		}
		p.LinkCrossings[i-1] = sc.prevLink[at]
		at = int(sc.prev[at])
	}
	return p, nil
}

// MetricsFrom runs one single-source shortest-path computation (MinHops
// objective) and returns the vFabric metrics from src to every reachable
// port ref. It is the bulk variant of PairMetrics used when abstracting
// regions with many border ports (one SSSP per exposed port instead of one
// Dijkstra per pair). The graph is immutable once built, so concurrent
// MetricsFrom calls are safe — the abstraction recompute fans them out
// across a worker pool.
func (g *Graph) MetricsFrom(src dataplane.PortRef) map[dataplane.PortRef]dataplane.PathMetrics {
	s, ok := g.nodes[src]
	if !ok {
		return nil
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	g.sssp(sc, s, -1, MinHops, Constraints{}, false)
	n := len(g.refs)
	out := make(map[dataplane.PortRef]dataplane.PathMetrics, n)
	for i := 0; i < n; i++ {
		if !sc.seen[i] {
			continue
		}
		out[g.refs[i]] = dataplane.PathMetrics{
			Latency:   sc.dist[i].Latency,
			Hops:      sc.dist[i].Hops,
			Bandwidth: sc.dist[i].Bottleneck,
			Reachable: true,
		}
	}
	return out
}

// PairMetrics computes the vFabric annotation for a border-port pair: the
// MinHops shortest path's cost, with the bottleneck bandwidth of that path
// (§3.2). Returns an unreachable PathMetrics when no path exists. Only the
// cost triple is computed — no predecessor tracking or path
// reconstruction — since it is called O(ports²) from the abstraction
// recompute.
func (g *Graph) PairMetrics(a, b dataplane.PortRef) dataplane.PathMetrics {
	s, ok := g.nodes[a]
	if !ok {
		return dataplane.PathMetrics{}
	}
	d, ok := g.nodes[b]
	if !ok {
		return dataplane.PathMetrics{}
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	g.sssp(sc, s, d, MinHops, Constraints{}, false)
	if !sc.seen[d] {
		return dataplane.PathMetrics{}
	}
	// Same-device pairs traverse only the switch backplane; +Inf propagates
	// through gob and min() correctly, so it is kept as-is.
	c := sc.dist[d]
	return dataplane.PathMetrics{
		Latency:   c.Latency,
		Hops:      c.Hops,
		Bandwidth: c.Bottleneck,
		Reachable: true,
	}
}
