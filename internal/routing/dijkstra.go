package routing

import (
	"container/heap"
	"errors"
	"math"
	"time"

	"repro/internal/dataplane"
)

// Objective selects the path-cost order.
type Objective int

const (
	// MinHops minimizes hop count, breaking ties by latency (the paper's
	// default for internal path computation, §4.2).
	MinHops Objective = iota
	// MinLatency minimizes latency, breaking ties by hops (for
	// delay-sensitive service policies, §2.2).
	MinLatency
)

// Constraints bound admissible paths (from bearer-request QoS, §5.1).
// Zero values mean unconstrained.
type Constraints struct {
	MaxHops    int
	MaxLatency time.Duration
	// MinBandwidth requires every traversed edge to have at least this
	// many Mbps available.
	MinBandwidth float64
}

// Cost is a path's accumulated metrics.
type Cost struct {
	Hops    int
	Latency time.Duration
	// Bottleneck is the minimum available bandwidth along the path.
	Bottleneck float64
}

// less orders costs under an objective (lexicographic).
func (c Cost) less(o Cost, obj Objective) bool {
	if obj == MinLatency {
		if c.Latency != o.Latency {
			return c.Latency < o.Latency
		}
		return c.Hops < o.Hops
	}
	if c.Hops != o.Hops {
		return c.Hops < o.Hops
	}
	return c.Latency < o.Latency
}

// violates reports whether the cost breaks constraints.
func (c Cost) violates(ct Constraints) bool {
	if ct.MaxHops > 0 && c.Hops > ct.MaxHops {
		return true
	}
	if ct.MaxLatency > 0 && c.Latency > ct.MaxLatency {
		return true
	}
	return false
}

// Path is a computed route: the port-ref sequence alternating device
// traversals and link crossings, plus total cost.
type Path struct {
	// Points is the node sequence (device, port) from source to
	// destination, inclusive.
	Points []dataplane.PortRef
	Cost   Cost
	// LinkCrossings marks, for each step i → i+1, whether it is a link
	// crossing (true) or an intra-device traversal (false).
	LinkCrossings []bool
}

// Devices returns the distinct device sequence along the path.
func (p *Path) Devices() []dataplane.DeviceID {
	var out []dataplane.DeviceID
	for _, pt := range p.Points {
		if len(out) == 0 || out[len(out)-1] != pt.Dev {
			out = append(out, pt.Dev)
		}
	}
	return out
}

// Segments returns per-device (device, inPort, outPort) triples: the unit
// of rule installation. The first segment's inPort is the source point's
// port; the last segment's outPort is the destination port.
func (p *Path) Segments() []Segment {
	var segs []Segment
	i := 0
	for i < len(p.Points) {
		j := i
		for j+1 < len(p.Points) && p.Points[j+1].Dev == p.Points[i].Dev {
			j++
		}
		segs = append(segs, Segment{
			Dev:     p.Points[i].Dev,
			InPort:  p.Points[i].Port,
			OutPort: p.Points[j].Port,
		})
		i = j + 1
	}
	return segs
}

// Segment is one device's traversal along a path.
type Segment struct {
	Dev     dataplane.DeviceID
	InPort  dataplane.PortID
	OutPort dataplane.PortID
}

// ErrNoPath is returned when no admissible path exists.
var ErrNoPath = errors.New("routing: no admissible path")

type pqItem struct {
	node  int
	cost  Cost
	index int
}

type pq struct {
	items []*pqItem
	obj   Objective
}

func (q pq) Len() int            { return len(q.items) }
func (q pq) Less(i, j int) bool  { return q.items[i].cost.less(q.items[j].cost, q.obj) }
func (q pq) Swap(i, j int)       { q.items[i], q.items[j] = q.items[j], q.items[i]; q.items[i].index = i; q.items[j].index = j }
func (q *pq) Push(x interface{}) { it := x.(*pqItem); it.index = len(q.items); q.items = append(q.items, it) }
func (q *pq) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// ShortestPath computes the optimal path from src to dst under the
// objective and constraints. src and dst are port refs present in the
// graph.
func (g *Graph) ShortestPath(src, dst dataplane.PortRef, obj Objective, ct Constraints) (*Path, error) {
	s, ok := g.nodes[src]
	if !ok {
		return nil, ErrNoPath
	}
	d, ok := g.nodes[dst]
	if !ok {
		return nil, ErrNoPath
	}
	n := len(g.refs)
	dist := make([]Cost, n)
	seen := make([]bool, n)
	prev := make([]int, n)
	prevLink := make([]bool, n)
	for i := range dist {
		dist[i] = Cost{Hops: math.MaxInt32, Latency: time.Duration(math.MaxInt64 / 4), Bottleneck: 0}
		prev[i] = -1
	}
	dist[s] = Cost{Bottleneck: math.Inf(1)}
	q := &pq{obj: obj}
	heap.Push(q, &pqItem{node: s, cost: dist[s]})
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.node
		if seen[u] {
			continue
		}
		seen[u] = true
		if u == d {
			break
		}
		for _, e := range g.adj[u] {
			if seen[e.to] {
				continue
			}
			if ct.MinBandwidth > 0 && e.bandwidth < ct.MinBandwidth {
				continue
			}
			nc := Cost{
				Hops:       dist[u].Hops + e.hops,
				Latency:    dist[u].Latency + e.latency,
				Bottleneck: math.Min(dist[u].Bottleneck, e.bandwidth),
			}
			if nc.violates(ct) {
				continue
			}
			if nc.less(dist[e.to], obj) {
				dist[e.to] = nc
				prev[e.to] = u
				prevLink[e.to] = e.link
				heap.Push(q, &pqItem{node: e.to, cost: nc})
			}
		}
	}
	if !seen[d] && prev[d] == -1 && s != d {
		return nil, ErrNoPath
	}
	if dist[d].violates(ct) {
		return nil, ErrNoPath
	}
	// Reconstruct.
	var rev []int
	var revLink []bool
	for at := d; at != -1; at = prev[at] {
		rev = append(rev, at)
		if prev[at] != -1 {
			revLink = append(revLink, prevLink[at])
		}
	}
	p := &Path{Cost: dist[d]}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Points = append(p.Points, g.refs[rev[i]])
	}
	for i := len(revLink) - 1; i >= 0; i-- {
		p.LinkCrossings = append(p.LinkCrossings, revLink[i])
	}
	return p, nil
}

// MetricsFrom runs one single-source shortest-path computation (MinHops
// objective) and returns the vFabric metrics from src to every reachable
// port ref. It is the bulk variant of PairMetrics used when abstracting
// regions with many border ports (one SSSP per exposed port instead of one
// Dijkstra per pair).
func (g *Graph) MetricsFrom(src dataplane.PortRef) map[dataplane.PortRef]dataplane.PathMetrics {
	s, ok := g.nodes[src]
	if !ok {
		return nil
	}
	n := len(g.refs)
	dist := make([]Cost, n)
	seen := make([]bool, n)
	reached := make([]bool, n)
	for i := range dist {
		dist[i] = Cost{Hops: math.MaxInt32, Latency: time.Duration(math.MaxInt64 / 4)}
	}
	dist[s] = Cost{Bottleneck: math.Inf(1)}
	reached[s] = true
	q := &pq{obj: MinHops}
	heap.Push(q, &pqItem{node: s, cost: dist[s]})
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.node
		if seen[u] {
			continue
		}
		seen[u] = true
		for _, e := range g.adj[u] {
			if seen[e.to] {
				continue
			}
			nc := Cost{
				Hops:       dist[u].Hops + e.hops,
				Latency:    dist[u].Latency + e.latency,
				Bottleneck: math.Min(dist[u].Bottleneck, e.bandwidth),
			}
			if nc.less(dist[e.to], MinHops) {
				dist[e.to] = nc
				reached[e.to] = true
				heap.Push(q, &pqItem{node: e.to, cost: nc})
			}
		}
	}
	out := make(map[dataplane.PortRef]dataplane.PathMetrics, n)
	for i := 0; i < n; i++ {
		if !reached[i] {
			continue
		}
		out[g.refs[i]] = dataplane.PathMetrics{
			Latency:   dist[i].Latency,
			Hops:      dist[i].Hops,
			Bandwidth: dist[i].Bottleneck,
			Reachable: true,
		}
	}
	return out
}

// PairMetrics computes the vFabric annotation for a border-port pair: the
// MinHops shortest path's cost, with the bottleneck bandwidth of that path
// (§3.2). Returns an unreachable PathMetrics when no path exists.
func (g *Graph) PairMetrics(a, b dataplane.PortRef) dataplane.PathMetrics {
	p, err := g.ShortestPath(a, b, MinHops, Constraints{})
	if err != nil {
		return dataplane.PathMetrics{}
	}
	// Same-device pairs traverse only the switch backplane; +Inf propagates
	// through gob and min() correctly, so it is kept as-is.
	bw := p.Cost.Bottleneck
	return dataplane.PathMetrics{
		Latency:   p.Cost.Latency,
		Hops:      p.Cost.Hops,
		Bandwidth: bw,
		Reachable: true,
	}
}
