package routing

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/nib"
)

// lineNIB builds SW1(p1,p2) -- SW2(p1,p2) -- SW3(p1,p2): links SW1.2-SW2.1
// and SW2.2-SW3.1, each 5ms/1000Mbps.
func lineNIB() *nib.NIB {
	n := nib.New()
	for _, id := range []dataplane.DeviceID{"SW1", "SW2", "SW3"} {
		n.PutDevice(nib.Device{ID: id, Kind: dataplane.KindSwitch,
			Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}})
	}
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "SW1", Port: 2}, B: dataplane.PortRef{Dev: "SW2", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "SW2", Port: 2}, B: dataplane.PortRef{Dev: "SW3", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
	return n
}

func TestShortestPathLine(t *testing.T) {
	g := BuildGraph(lineNIB())
	p, err := g.ShortestPath(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "SW3", Port: 2},
		MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost.Hops != 2 {
		t.Fatalf("hops = %d", p.Cost.Hops)
	}
	if p.Cost.Latency != 10*time.Millisecond {
		t.Fatalf("latency = %v", p.Cost.Latency)
	}
	if p.Cost.Bottleneck != 1000 {
		t.Fatalf("bottleneck = %v", p.Cost.Bottleneck)
	}
	devs := p.Devices()
	if len(devs) != 3 || devs[0] != "SW1" || devs[2] != "SW3" {
		t.Fatalf("devices = %v", devs)
	}
	segs := p.Segments()
	if len(segs) != 3 {
		t.Fatalf("segments = %v", segs)
	}
	if segs[0] != (Segment{Dev: "SW1", InPort: 1, OutPort: 2}) {
		t.Fatalf("seg0 = %+v", segs[0])
	}
	if segs[1] != (Segment{Dev: "SW2", InPort: 1, OutPort: 2}) {
		t.Fatalf("seg1 = %+v", segs[1])
	}
	if segs[2] != (Segment{Dev: "SW3", InPort: 1, OutPort: 2}) {
		t.Fatalf("seg2 = %+v", segs[2])
	}
}

func TestNoPath(t *testing.T) {
	n := lineNIB()
	n.PutDevice(nib.Device{ID: "ISOLATED", Kind: dataplane.KindSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}}})
	g := BuildGraph(n)
	_, err := g.ShortestPath(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "ISOLATED", Port: 1},
		MinHops, Constraints{})
	if err != ErrNoPath {
		t.Fatalf("err = %v", err)
	}
	_, err = g.ShortestPath(
		dataplane.PortRef{Dev: "ghost", Port: 1},
		dataplane.PortRef{Dev: "SW1", Port: 1},
		MinHops, Constraints{})
	if err != ErrNoPath {
		t.Fatalf("unknown src err = %v", err)
	}
}

func TestDownLinkExcluded(t *testing.T) {
	n := lineNIB()
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "SW1", Port: 2}, B: dataplane.PortRef{Dev: "SW2", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: false})
	g := BuildGraph(n)
	_, err := g.ShortestPath(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "SW3", Port: 2},
		MinHops, Constraints{})
	if err != ErrNoPath {
		t.Fatalf("path through down link: %v", err)
	}
}

// diamondNIB: SW1 -> {short: SW2 (fast link), long: SW3 -> SW4} -> SW5
// The 2-hop route has high latency, the 3-hop route low latency.
func diamondNIB() *nib.NIB {
	n := nib.New()
	mk := func(id dataplane.DeviceID, ports int) {
		var pr []nib.PortRecord
		for i := 1; i <= ports; i++ {
			pr = append(pr, nib.PortRecord{ID: dataplane.PortID(i), Up: true})
		}
		n.PutDevice(nib.Device{ID: id, Kind: dataplane.KindSwitch, Ports: pr})
	}
	mk("SW1", 3)
	mk("SW2", 2)
	mk("SW3", 2)
	mk("SW4", 2)
	mk("SW5", 3)
	link := func(a dataplane.DeviceID, ap dataplane.PortID, b dataplane.DeviceID, bp dataplane.PortID, lat time.Duration, bw float64) {
		n.PutLink(nib.Link{A: dataplane.PortRef{Dev: a, Port: ap}, B: dataplane.PortRef{Dev: b, Port: bp},
			Latency: lat, Bandwidth: bw, Up: true})
	}
	// short path: SW1.2 - SW2.1, SW2.2 - SW5.1 (50ms each, 100Mbps)
	link("SW1", 2, "SW2", 1, 50*time.Millisecond, 100)
	link("SW2", 2, "SW5", 1, 50*time.Millisecond, 100)
	// long path: SW1.3 - SW3.1, SW3.2 - SW4.1, SW4.2 - SW5.2 (5ms each, 1000Mbps)
	link("SW1", 3, "SW3", 1, 5*time.Millisecond, 1000)
	link("SW3", 2, "SW4", 1, 5*time.Millisecond, 1000)
	link("SW4", 2, "SW5", 2, 5*time.Millisecond, 1000)
	return n
}

func TestObjectives(t *testing.T) {
	g := BuildGraph(diamondNIB())
	src := dataplane.PortRef{Dev: "SW1", Port: 1}
	dst := dataplane.PortRef{Dev: "SW5", Port: 3}

	byHops, err := g.ShortestPath(src, dst, MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if byHops.Cost.Hops != 2 {
		t.Fatalf("min-hops path has %d hops", byHops.Cost.Hops)
	}

	byLat, err := g.ShortestPath(src, dst, MinLatency, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if byLat.Cost.Latency != 15*time.Millisecond || byLat.Cost.Hops != 3 {
		t.Fatalf("min-latency path = %+v", byLat.Cost)
	}
}

func TestConstraints(t *testing.T) {
	g := BuildGraph(diamondNIB())
	src := dataplane.PortRef{Dev: "SW1", Port: 1}
	dst := dataplane.PortRef{Dev: "SW5", Port: 3}

	// bandwidth constraint forces the long path
	p, err := g.ShortestPath(src, dst, MinHops, Constraints{MinBandwidth: 500})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost.Hops != 3 {
		t.Fatalf("bandwidth-constrained path hops = %d", p.Cost.Hops)
	}

	// max-hops excludes the long path, max-latency excludes the short one
	if _, err := g.ShortestPath(src, dst, MinHops, Constraints{MaxHops: 2, MaxLatency: 20 * time.Millisecond}); err != ErrNoPath {
		t.Fatalf("jointly infeasible constraints should fail: %v", err)
	}
	p, err = g.ShortestPath(src, dst, MinHops, Constraints{MaxLatency: 20 * time.Millisecond})
	if err != nil || p.Cost.Hops != 3 {
		t.Fatalf("latency-constrained: %v %+v", err, p)
	}
}

func TestGSwitchTraversalPricing(t *testing.T) {
	// GS1 with fabric 1<->2 (3 hops, 15ms), linked to SW9.
	n := nib.New()
	fabric := dataplane.NewVFabric()
	fabric.Set(1, 2, dataplane.PathMetrics{Hops: 3, Latency: 15 * time.Millisecond, Bandwidth: 500, Reachable: true})
	n.PutDevice(nib.Device{ID: "GS1", Kind: dataplane.KindGSwitch,
		Ports:  []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}},
		Fabric: fabric})
	n.PutDevice(nib.Device{ID: "SW9", Kind: dataplane.KindSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}})
	n.PutLink(nib.Link{A: dataplane.PortRef{Dev: "GS1", Port: 2}, B: dataplane.PortRef{Dev: "SW9", Port: 1},
		Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
	g := BuildGraph(n)
	p, err := g.ShortestPath(
		dataplane.PortRef{Dev: "GS1", Port: 1},
		dataplane.PortRef{Dev: "SW9", Port: 2},
		MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops inside GS1 + 1 link hop
	if p.Cost.Hops != 4 {
		t.Fatalf("hops = %d", p.Cost.Hops)
	}
	if p.Cost.Latency != 20*time.Millisecond {
		t.Fatalf("latency = %v", p.Cost.Latency)
	}
	if p.Cost.Bottleneck != 500 {
		t.Fatalf("bottleneck = %v", p.Cost.Bottleneck)
	}
}

func TestUnreachableFabricPairExcluded(t *testing.T) {
	n := nib.New()
	fabric := dataplane.NewVFabric()
	fabric.Set(1, 2, dataplane.PathMetrics{Reachable: false})
	n.PutDevice(nib.Device{ID: "GS1", Kind: dataplane.KindGSwitch,
		Ports:  []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}},
		Fabric: fabric})
	g := BuildGraph(n)
	if _, err := g.ShortestPath(
		dataplane.PortRef{Dev: "GS1", Port: 1},
		dataplane.PortRef{Dev: "GS1", Port: 2},
		MinHops, Constraints{}); err != ErrNoPath {
		t.Fatalf("unreachable fabric pair must not route: %v", err)
	}
}

func TestPairMetrics(t *testing.T) {
	g := BuildGraph(lineNIB())
	m := g.PairMetrics(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "SW3", Port: 2})
	if !m.Reachable || m.Hops != 2 || m.Latency != 10*time.Millisecond || m.Bandwidth != 1000 {
		t.Fatalf("metrics = %+v", m)
	}
	// same-switch pair: reachable with infinite backplane bandwidth
	m2 := g.PairMetrics(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "SW1", Port: 2})
	if !m2.Reachable || m2.Hops != 0 || !math.IsInf(m2.Bandwidth, 1) {
		t.Fatalf("same-switch metrics = %+v", m2)
	}
	// unreachable
	n := lineNIB()
	n.PutDevice(nib.Device{ID: "X", Kind: dataplane.KindSwitch, Ports: []nib.PortRecord{{ID: 1, Up: true}}})
	m3 := BuildGraph(n).PairMetrics(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "X", Port: 1})
	if m3.Reachable {
		t.Fatal("unreachable pair reported reachable")
	}
}

func TestSameNodePath(t *testing.T) {
	g := BuildGraph(lineNIB())
	ref := dataplane.PortRef{Dev: "SW1", Port: 1}
	p, err := g.ShortestPath(ref, ref, MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost.Hops != 0 || len(p.Points) != 1 {
		t.Fatalf("trivial path = %+v", p)
	}
}

func TestGlobalVsLocalOptimality(t *testing.T) {
	// The §4.2 example: a leaf sees only its region (path via E2); the root
	// sees both regions via G-switch fabrics and finds the shorter exit.
	// Model: region 2 internal path costs 3 hops to E2; crossing to region
	// 1 costs 1 hop and E1 is right there.
	leafView := nib.New()
	leafView.PutDevice(nib.Device{ID: "SW2", Kind: dataplane.KindSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}})
	leafView.PutDevice(nib.Device{ID: "SW3", Kind: dataplane.KindSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}})
	leafView.PutDevice(nib.Device{ID: "SW4", Kind: dataplane.KindSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}})
	addLink := func(n *nib.NIB, a dataplane.DeviceID, ap dataplane.PortID, b dataplane.DeviceID, bp dataplane.PortID) {
		n.PutLink(nib.Link{A: dataplane.PortRef{Dev: a, Port: ap}, B: dataplane.PortRef{Dev: b, Port: bp},
			Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
	}
	addLink(leafView, "SW2", 2, "SW3", 1)
	addLink(leafView, "SW3", 2, "SW4", 1)
	leafPath, err := BuildGraph(leafView).ShortestPath(
		dataplane.PortRef{Dev: "SW2", Port: 1},
		dataplane.PortRef{Dev: "SW4", Port: 2}, // E2 egress
		MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	// Root view: GS1 (region 1, egress at port 2), GS2 (region 2, ingress
	// port 1 = the G-BS attach, cross port 3), cross-region link.
	rootView := nib.New()
	f1 := dataplane.NewVFabric()
	f1.Set(1, 2, dataplane.PathMetrics{Hops: 0, Latency: 0, Bandwidth: 1000, Reachable: true})
	rootView.PutDevice(nib.Device{ID: "GS1", Kind: dataplane.KindGSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}}, Fabric: f1})
	f2 := dataplane.NewVFabric()
	f2.Set(1, 3, dataplane.PathMetrics{Hops: 0, Latency: 0, Bandwidth: 1000, Reachable: true})
	f2.Set(1, 2, dataplane.PathMetrics{Hops: 2, Latency: 10 * time.Millisecond, Bandwidth: 1000, Reachable: true})
	rootView.PutDevice(nib.Device{ID: "GS2", Kind: dataplane.KindGSwitch,
		Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}, {ID: 3, Up: true}}, Fabric: f2})
	addLink(rootView, "GS2", 3, "GS1", 1)

	rootPath, err := BuildGraph(rootView).ShortestPath(
		dataplane.PortRef{Dev: "GS2", Port: 1},
		dataplane.PortRef{Dev: "GS1", Port: 2}, // E1 egress
		MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if rootPath.Cost.Hops >= leafPath.Cost.Hops {
		t.Fatalf("root should beat leaf: root %d vs leaf %d hops", rootPath.Cost.Hops, leafPath.Cost.Hops)
	}
}

func TestLinkCrossingsAlternation(t *testing.T) {
	g := BuildGraph(lineNIB())
	p, err := g.ShortestPath(
		dataplane.PortRef{Dev: "SW1", Port: 1},
		dataplane.PortRef{Dev: "SW3", Port: 2},
		MinHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.LinkCrossings) != len(p.Points)-1 {
		t.Fatalf("crossings = %d points = %d", len(p.LinkCrossings), len(p.Points))
	}
	links := 0
	for _, c := range p.LinkCrossings {
		if c {
			links++
		}
	}
	if links != p.Cost.Hops {
		t.Fatalf("link crossings %d != hops %d", links, p.Cost.Hops)
	}
}

func TestMetricsFromMatchesPairMetrics(t *testing.T) {
	g := BuildGraph(diamondNIB())
	src := dataplane.PortRef{Dev: "SW1", Port: 1}
	row := g.MetricsFrom(src)
	for _, dst := range []dataplane.PortRef{
		{Dev: "SW5", Port: 3}, {Dev: "SW2", Port: 2}, {Dev: "SW4", Port: 1},
	} {
		want := g.PairMetrics(src, dst)
		got, ok := row[dst]
		if !ok || got.Hops != want.Hops || got.Latency != want.Latency {
			t.Fatalf("MetricsFrom(%v)[%v] = %+v ok=%v, want %+v", src, dst, got, ok, want)
		}
	}
	if g.MetricsFrom(dataplane.PortRef{Dev: "ghost", Port: 1}) != nil {
		t.Fatal("unknown source should be nil")
	}
}
