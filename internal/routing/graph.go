// Package routing implements the SoftMoW routing core service (§4.2):
// constrained shortest paths over a controller's topology view, where the
// topology may mix physical switches (free internal traversal) and gigantic
// switches (traversal priced by the child-exposed virtual fabric, §3.2).
//
// The graph is port-expanded: nodes are (device, port) pairs. A link
// contributes one hop plus its latency; traversing a device from one port
// to another contributes that device's internal metrics — zero for physical
// switches, the vFabric entry for G-switches. This makes a parent's
// shortest-path computation consistent with the physical topology
// underneath (local vs global optimality, §4.2).
package routing

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/dataplane"
	"repro/internal/nib"
)

// Graph is a port-expanded routing graph built from a NIB. Once built it
// is immutable, so it may be shared freely across goroutines (the
// controller caches one per NIB generation); per-query Dijkstra scratch
// state lives in an internal pool, making all path computations safe to
// run concurrently.
type Graph struct {
	nodes map[dataplane.PortRef]int
	refs  []dataplane.PortRef
	adj   [][]edge

	// scratchPool recycles per-SSSP working state ([]Cost/[]bool/heap
	// slices sized to the node count) so steady-state queries are
	// allocation-free.
	scratchPool sync.Pool
}

func (g *Graph) getScratch() *scratch {
	return g.scratchPool.Get().(*scratch)
}

func (g *Graph) putScratch(sc *scratch) {
	g.scratchPool.Put(sc)
}

type edge struct {
	to      int
	hops    int
	latency time.Duration
	// bandwidth is the available bandwidth bound (Mbps); math.Inf(1) for
	// unconstrained internal traversal.
	bandwidth float64
	// link marks link edges (vs intra-device edges); used to reconstruct
	// installable paths.
	link bool
}

// BuildGraph constructs a routing graph from a controller's NIB view.
func BuildGraph(n *nib.NIB) *Graph {
	g := &Graph{nodes: make(map[dataplane.PortRef]int)}

	id := func(ref dataplane.PortRef) int {
		if i, ok := g.nodes[ref]; ok {
			return i
		}
		i := len(g.refs)
		g.nodes[ref] = i
		g.refs = append(g.refs, ref)
		g.adj = append(g.adj, nil)
		return i
	}

	// Intra-device edges.
	for _, d := range n.Devices(dataplane.KindUnknown) {
		switch d.Kind {
		case dataplane.KindSwitch:
			// Physical switch: free traversal between all port pairs.
			ports := d.Ports
			for i := 0; i < len(ports); i++ {
				for j := 0; j < len(ports); j++ {
					if i == j {
						continue
					}
					a := id(dataplane.PortRef{Dev: d.ID, Port: ports[i].ID})
					b := id(dataplane.PortRef{Dev: d.ID, Port: ports[j].ID})
					g.adj[a] = append(g.adj[a], edge{to: b, bandwidth: math.Inf(1)})
				}
			}
		case dataplane.KindGSwitch:
			// G-switch: traversal priced by the virtual fabric.
			if d.Fabric == nil {
				continue
			}
			for _, pp := range d.Fabric.Pairs() {
				m, _ := d.Fabric.Get(pp.A, pp.B)
				if !m.Reachable {
					continue
				}
				a := id(dataplane.PortRef{Dev: d.ID, Port: pp.A})
				b := id(dataplane.PortRef{Dev: d.ID, Port: pp.B})
				e := edge{hops: m.Hops, latency: m.Latency, bandwidth: m.Bandwidth}
				g.adj[a] = append(g.adj[a], edge{to: b, hops: e.hops, latency: e.latency, bandwidth: e.bandwidth})
				g.adj[b] = append(g.adj[b], edge{to: a, hops: e.hops, latency: e.latency, bandwidth: e.bandwidth})
			}
		}
	}

	// Link edges.
	for _, l := range n.Links() {
		if !l.Up {
			continue
		}
		a := id(l.A)
		b := id(l.B)
		g.adj[a] = append(g.adj[a], edge{to: b, hops: 1, latency: l.Latency, bandwidth: l.Bandwidth, link: true})
		g.adj[b] = append(g.adj[b], edge{to: a, hops: 1, latency: l.Latency, bandwidth: l.Bandwidth, link: true})
	}

	// Deterministic adjacency order.
	for i := range g.adj {
		sort.Slice(g.adj[i], func(x, y int) bool { return g.less(g.adj[i][x], g.adj[i][y]) })
	}
	nn := len(g.refs)
	g.scratchPool.New = func() interface{} { return newScratch(nn) }
	return g
}

func (g *Graph) less(a, b edge) bool {
	ra, rb := g.refs[a.to], g.refs[b.to]
	if ra.Dev != rb.Dev {
		return ra.Dev < rb.Dev
	}
	if ra.Port != rb.Port {
		return ra.Port < rb.Port
	}
	return !a.link && b.link
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.refs) }

// HasNode reports whether a port ref is present.
func (g *Graph) HasNode(ref dataplane.PortRef) bool {
	_, ok := g.nodes[ref]
	return ok
}
