package routing

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/nib"
)

// gridNIB builds an n×n switch grid with 4 ports per switch.
func gridNIB(n int) *nib.NIB {
	nb := nib.New()
	id := func(r, c int) dataplane.DeviceID {
		return dataplane.DeviceID(fmt.Sprintf("SW%02d%02d", r, c))
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nb.PutDevice(nib.Device{ID: id(r, c), Kind: dataplane.KindSwitch,
				Ports: []nib.PortRecord{{ID: 1, Up: true}, {ID: 2, Up: true}, {ID: 3, Up: true}, {ID: 4, Up: true}}})
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				nb.PutLink(nib.Link{A: dataplane.PortRef{Dev: id(r, c), Port: 1},
					B: dataplane.PortRef{Dev: id(r, c+1), Port: 2},
					Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
			}
			if r+1 < n {
				nb.PutLink(nib.Link{A: dataplane.PortRef{Dev: id(r, c), Port: 3},
					B: dataplane.PortRef{Dev: id(r+1, c), Port: 4},
					Latency: 5 * time.Millisecond, Bandwidth: 1000, Up: true})
			}
		}
	}
	return nb
}

// BenchmarkBuildGraph measures routing-graph construction over a
// 324-switch NIB (the evaluation's scale class).
func BenchmarkBuildGraph(b *testing.B) {
	nb := gridNIB(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildGraph(nb)
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkShortestPath measures one corner-to-corner constrained Dijkstra.
func BenchmarkShortestPath(b *testing.B) {
	g := BuildGraph(gridNIB(18))
	src := dataplane.PortRef{Dev: "SW0000", Port: 1}
	dst := dataplane.PortRef{Dev: "SW1717", Port: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPath(src, dst, MinHops, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsFrom measures one SSSP sweep (the per-port fabric fill).
func BenchmarkMetricsFrom(b *testing.B) {
	g := BuildGraph(gridNIB(18))
	src := dataplane.PortRef{Dev: "SW0909", Port: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row := g.MetricsFrom(src); len(row) == 0 {
			b.Fatal("empty row")
		}
	}
}

// BenchmarkPairMetrics measures the cost-only pair query (no path
// reconstruction) used O(ports²) by the abstraction recompute.
func BenchmarkPairMetrics(b *testing.B) {
	g := BuildGraph(gridNIB(18))
	src := dataplane.PortRef{Dev: "SW0000", Port: 1}
	dst := dataplane.PortRef{Dev: "SW1717", Port: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := g.PairMetrics(src, dst); !m.Reachable {
			b.Fatal("unreachable")
		}
	}
}

// BenchmarkShortestPathParallel runs corner-to-corner Dijkstras from all
// procs at once, exercising scratch-pool contention (the abstraction
// recompute's access pattern).
func BenchmarkShortestPathParallel(b *testing.B) {
	g := BuildGraph(gridNIB(18))
	src := dataplane.PortRef{Dev: "SW0000", Port: 1}
	dst := dataplane.PortRef{Dev: "SW1717", Port: 1}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.ShortestPath(src, dst, MinHops, Constraints{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
