package northbound_test

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/northbound"
	"repro/internal/pathimpl"
	"repro/internal/reca"
	"repro/internal/southbound"
	"repro/internal/testutil/leakcheck"
)

// tcpPair returns the two ends of one real TCP connection over loopback.
func tcpPair(t *testing.T) (parent, child net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { r.c.Close(); dial.Close() })
	return r.c, dial
}

// distTree is the core package's Fig. 5 scenario with the control tree
// split across real TCP northbound attachments: the data plane is shared
// (it simulates the physical network), but every parent↔child exchange —
// feature reads, rule installs, fences, discovery, delegation — rides the
// wire.
type distTree struct {
	net            *dataplane.Network
	root, l1, l2   *core.Controller
	devs           []*core.ConnDevice
	links          []*northbound.ParentConn
	radioA, radioB dataplane.PortRef
}

func buildDist(t *testing.T) *distTree {
	t.Helper()
	// Every goroutine the tree spawns — ParentConn serve loops, device
	// pumps, peer-request handlers — must be gone after the cleanup below.
	leakcheck.Check(t)
	dpn := dataplane.NewNetwork()
	for _, id := range []dataplane.DeviceID{"S1", "S2", "S3", "S4"} {
		dpn.AddSwitch(id)
	}
	mustLink := func(a, b dataplane.DeviceID) {
		if _, err := dpn.Connect(a, b, 5*time.Millisecond, 1000); err != nil {
			t.Fatal(err)
		}
	}
	mustLink("S1", "S2")
	mustLink("S2", "S3") // cross-region
	mustLink("S3", "S4")
	rpA, err := dpn.AddRadioPort("S1", "gA")
	if err != nil {
		t.Fatal(err)
	}
	rpB, err := dpn.AddRadioPort("S3", "gB")
	if err != nil {
		t.Fatal(err)
	}
	near, err := dpn.AddEgress("E-near", "S2", "isp-near")
	if err != nil {
		t.Fatal(err)
	}
	far, err := dpn.AddEgress("E-far", "S4", "isp-far")
	if err != nil {
		t.Fatal(err)
	}

	dt := &distTree{
		net:    dpn,
		radioA: dataplane.PortRef{Dev: "S1", Port: rpA.ID},
		radioB: dataplane.PortRef{Dev: "S3", Port: rpB.ID},
	}
	dt.l1 = core.NewController("L1", 1, 0)
	if err := core.BootstrapLeaf(dpn, dt.l1, core.LeafSpec{
		ID:       "L1",
		Switches: []dataplane.DeviceID{"S1", "S2"},
		Radios: []reca.RadioAttachment{
			{ID: "gA", Attach: dt.radioA, Border: true, Constituents: []dataplane.DeviceID{"gA"}},
		},
		BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA", "b2": "gA"},
	}); err != nil {
		t.Fatal(err)
	}
	dt.l2 = core.NewController("L2", 1, 1)
	if err := core.BootstrapLeaf(dpn, dt.l2, core.LeafSpec{
		ID:       "L2",
		Switches: []dataplane.DeviceID{"S3", "S4"},
		Radios: []reca.RadioAttachment{
			{ID: "gB", Attach: dt.radioB, Border: true, Constituents: []dataplane.DeviceID{"gB"}},
		},
		BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b3": "gB"},
	}); err != nil {
		t.Fatal(err)
	}
	dt.root = core.NewController("root", 2, 2)
	dt.l1.Mode = pathimpl.ModeSwap
	dt.l2.Mode = pathimpl.ModeSwap
	dt.root.Mode = pathimpl.ModeSwap

	for _, leaf := range []*core.Controller{dt.l1, dt.l2} {
		pc, cc := tcpPair(t)
		type cres struct {
			p   *northbound.ParentConn
			err error
		}
		ch := make(chan cres, 1)
		leaf := leaf
		go func() {
			p, err := northbound.Connect(leaf, southbound.NewBinConn(cc))
			ch <- cres{p, err}
		}()
		d, err := northbound.AttachRemoteChild(dt.root, southbound.NewBinConn(pc))
		if err != nil {
			t.Fatal(err)
		}
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		dt.devs = append(dt.devs, d)
		dt.links = append(dt.links, r.p)
	}
	t.Cleanup(func() {
		for _, p := range dt.links {
			p.Close()
		}
		for _, d := range dt.devs {
			d.Close()
		}
		for _, d := range dt.devs {
			d.WaitStopped()
		}
	})

	// Distributed finishLevel: in-band discovery over the wire, then the
	// derived config from the remotely learned G-switch exposures.
	dt.root.RunDiscovery()
	if err := northbound.FenceDiscovery(dt.devs); err != nil {
		t.Fatal(err)
	}
	core.RefreshDerived(dt.root)

	dt.l1.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfxNear", Egress: "E-near", EgressSwitch: "S2",
			Metrics: interdomain.Metrics{Hops: 10, RTT: 20 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S2", Port: near.Port})
	dt.l2.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfxFar", Egress: "E-far", EgressSwitch: "S4",
			Metrics: interdomain.Metrics{Hops: 8, RTT: 16 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S4", Port: far.Port})
	if err := dt.l1.PropagateInterdomainErr(); err != nil {
		t.Fatal(err)
	}
	if err := dt.l2.PropagateInterdomainErr(); err != nil {
		t.Fatal(err)
	}
	return dt
}

func (dt *distTree) totalRules() int {
	n := 0
	for _, sw := range dt.net.Switches() {
		n += sw.Table.Len()
	}
	return n
}

func TestDistributedBootstrapDiscoversCrossLink(t *testing.T) {
	dt := buildDist(t)
	if got := dt.root.NIB.NumLinks(); got != 1 {
		t.Fatalf("root links = %d, want exactly the cross-region link", got)
	}
	l := dt.root.NIB.Links()[0]
	devs := map[dataplane.DeviceID]bool{l.A.Dev: true, l.B.Dev: true}
	if !devs["GS-L1"] || !devs["GS-L2"] {
		t.Fatalf("cross link endpoints = %v", l)
	}
	for _, id := range []dataplane.DeviceID{"GS-L1", "GS-L2"} {
		rec, ok := dt.root.NIB.Device(id)
		if !ok || rec.Kind != dataplane.KindGSwitch {
			t.Fatalf("root NIB missing G-switch %s", id)
		}
		if len(rec.GBSes) != 1 {
			t.Fatalf("%s exposes %d G-BSes", id, len(rec.GBSes))
		}
	}
}

func TestDistributedDelegation(t *testing.T) {
	dt := buildDist(t)
	base := dt.totalRules()
	rec, err := dt.l1.HandleBearerRequest(core.BearerRequest{UE: "u1", BS: "b1", Prefix: "pfxFar"})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Active || rec.HandledBy.OwnerID() != "root" {
		t.Fatalf("delegated bearer: active=%v owner=%s", rec.Active, rec.HandledBy.OwnerID())
	}
	res, err := dt.net.Inject("S1", dt.radioA.Port, &dataplane.Packet{UE: "u1", DstPrefix: "pfxFar"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("delegated path: %v at %v", res.Disposition, res.EgressPort)
	}
	// Detach tears the root-owned path down via the remote-owner proxy:
	// the teardown ascends L1's wire, the root removes rules in both
	// regions over the children's wires.
	if err := dt.l1.Detach("u1"); err != nil {
		t.Fatal(err)
	}
	if got := dt.totalRules(); got != base {
		t.Fatalf("rules after detach = %d, want baseline %d", got, base)
	}
	if pr, ok := dt.root.Path(rec.PathID); !ok || pr.Active {
		t.Fatalf("root path after remote teardown: ok=%v active=%v", ok, pr.Active)
	}
}

func TestDistributedNoRouteCrossesWire(t *testing.T) {
	dt := buildDist(t)
	_, err := dt.l1.HandleBearerRequest(core.BearerRequest{UE: "u2", BS: "b1", Prefix: "pfxNowhere"})
	if !errors.Is(err, core.ErrNoRoute) {
		t.Fatalf("want ErrNoRoute through the wire, got %v", err)
	}
}

func TestDistributedInterRegionHandover(t *testing.T) {
	dt := buildDist(t)
	if _, err := dt.l1.HandleBearerRequest(core.BearerRequest{UE: "u6", BS: "b1", Prefix: "pfxFar"}); err != nil {
		t.Fatal(err)
	}
	if err := dt.l1.Handover("u6", "gB", "b3"); err != nil {
		t.Fatal(err)
	}
	if dt.root.StatsSnapshot().InterRegionHandovers != 1 {
		t.Fatal("root inter-region handover counter")
	}
	rec, _ := dt.l1.UE("u6")
	if rec.BS != "b3" || rec.HandledBy.OwnerID() != "root" {
		t.Fatalf("UE after handover: BS=%s owner=%s", rec.BS, rec.HandledBy.OwnerID())
	}
	res, err := dt.net.Inject("S3", dt.radioB.Port, &dataplane.Packet{UE: "u6", DstPrefix: "pfxFar"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != dataplane.DispEgressed || res.EgressPort.Dev != "S4" {
		t.Fatalf("post-handover path: %v at %v", res.Disposition, res.EgressPort)
	}
}

func TestDistributedInterdomainPush(t *testing.T) {
	dt := buildDist(t)
	far := dt.root.RouteOptions("pfxFar")
	if len(far) != 1 || far[0].Ref.Dev != "GS-L2" || far[0].Egress != "E-far" {
		t.Fatalf("root pfxFar options = %+v", far)
	}
	near := dt.root.RouteOptions("pfxNear")
	if len(near) != 1 || near[0].Ref.Dev != "GS-L1" {
		t.Fatalf("root pfxNear options = %+v", near)
	}
	if near[0].External.Hops != 10 || near[0].External.RTT != 20*time.Millisecond {
		t.Fatalf("external metrics lost in transit: %+v", near[0].External)
	}
}

func TestDistributedFabricAndReabstract(t *testing.T) {
	dt := buildDist(t)
	pl := dt.l1.ParentLinkRef()
	if pl == nil {
		t.Fatal("leaf has no parent link")
	}
	fab := dt.l1.Abstraction().GSwitch.Fabric
	if err := pl.FabricUpdated(fab); err != nil {
		t.Fatal(err)
	}
	rec, ok := dt.root.NIB.Device("GS-L1")
	if !ok || rec.Fabric == nil {
		t.Fatal("root NIB fabric not updated over the wire")
	}
	before := dt.root.StatsSnapshot().Reabstractions
	dt.l1.Reabstract()
	if got := dt.root.StatsSnapshot().Reabstractions; got <= before {
		t.Fatalf("root reabstractions = %d, want > %d", got, before)
	}
}

func TestTransferUEStateFragmented(t *testing.T) {
	dt := buildDist(t)
	// Enough rows that the encoded NbUEState exceeds MaxFrameSize: the
	// transfer must ride the chunked Frag path end to end.
	const n = 40000
	rows := make([]core.UERecord, n)
	for i := range rows {
		rows[i] = core.UERecord{
			UE: fmt.Sprintf("xfer%06d", i), BS: "b1", Group: "gA",
			Prefix: "pfxNear", QoS: 1, PathID: core.PathID(i + 1),
			HandledBy: dt.root, Active: true,
		}
	}
	if err := northbound.TransferUEState(dt.devs[0], rows); err != nil {
		t.Fatal(err)
	}
	if got := dt.l1.UECount(); got != n {
		t.Fatalf("child adopted %d rows, want %d", got, n)
	}
	rec, ok := dt.l1.UE("xfer000123")
	if !ok || rec.HandledBy.OwnerID() != "root" || !rec.Active {
		t.Fatalf("adopted row = %+v ok=%v", rec, ok)
	}
}

func TestParentConnDrainIdle(t *testing.T) {
	dt := buildDist(t)
	if _, err := dt.l1.HandleBearerRequest(core.BearerRequest{UE: "u9", BS: "b1", Prefix: "pfxFar"}); err != nil {
		t.Fatal(err)
	}
	if err := dt.links[0].Drain(time.Second); err != nil {
		t.Fatalf("Drain with nothing in flight: %v", err)
	}
}

// TestConnDeviceDrain exercises the SIGTERM half of a region teardown: a
// device with a fence stuck behind an unresponsive peer must report the
// in-flight work within the timeout, and report clean once the conn is
// closed and the work failed over.
func TestConnDeviceDrain(t *testing.T) {
	pc, cc := tcpPair(t)
	go func() {
		conn := southbound.NewBinConn(cc)
		if _, err := southbound.Accept(conn, "SW1"); err != nil {
			return
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if m.Type == southbound.TypeFeatureRequest {
				_ = conn.Send(southbound.Msg{Type: southbound.TypeFeatureReply, Xid: m.Xid,
					Body: southbound.FeatureReply{Device: "SW1", Kind: dataplane.KindSwitch}})
			}
			// Swallow everything else: mods and fences never complete.
		}
	}()
	d, err := core.DialDevice(southbound.NewBinConn(pc), "C")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Drain(time.Second); err != nil {
		t.Fatalf("Drain on idle device: %v", err)
	}
	installed := make(chan error, 1)
	go func() { installed <- d.InstallRule(dataplane.Rule{Owner: "t", Priority: 1}) }()
	var drainErr error
	for i := 0; i < 500; i++ {
		drainErr = d.Drain(2 * time.Millisecond)
		if drainErr != nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if drainErr == nil {
		t.Fatal("Drain never observed the in-flight fence")
	}
	d.Close()
	if err := d.Drain(time.Second); err != nil {
		t.Fatalf("Drain after close: %v", err)
	}
	if err := <-installed; err == nil {
		t.Fatal("install against a dead peer reported success")
	}
}
