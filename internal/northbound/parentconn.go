package northbound

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/interdomain"
	"repro/internal/southbound"
)

// ParentConn is the child-side endpoint of a wire northbound attachment.
// One goroutine (serve) owns the receive side and processes parent
// requests in arrival order, but virtual-rule modifications are only
// *dispatched* there — each message's mods translate on their own
// goroutine, and a barrier snapshots the modifications that arrived
// before it and replies once exactly those have completed. The fence
// stays true (every earlier mod has fully translated into the region,
// southbound fences included) while concurrent parent operations overlap
// their translation round trips instead of serializing behind one
// another — with several region processes delegating into one parent,
// the serve loop would otherwise become the cluster-wide bottleneck.
// Replies to the child's own northbound requests are routed to their
// waiters by transaction ID.
//
// ParentConn implements core.ParentLink, so installing it on a controller
// routes every upward code path (delegation, handover ascent, teardown
// forwarding, interdomain propagation, discovery ascent, reabstraction)
// over the wire with unchanged semantics.
type ParentConn struct {
	child *core.Controller
	conn  southbound.Conn
	// gswitch is the child's exposed G-switch ID, stamped as the datapath
	// on every outbound message.
	gswitch dataplane.DeviceID
	// parentID is the parent controller's ID, learned from its Hello.
	parentID string

	mu sync.Mutex
	// pending maps outstanding child-request xids to their reply
	// channels, guarded by mu.
	pending map[uint32]chan southbound.Msg
	// closed records connection teardown, guarded by mu.
	closed bool
	// serveDone is closed when the serve goroutine exits, so Close can
	// wait for the receive side to be fully quiescent.
	serveDone chan struct{}

	xid atomic.Uint32

	// modsInFlight tracks modification messages dispatched off the serve
	// loop and not yet fenced; owned by the serve goroutine (appended on
	// mod arrival, swapped out whole by the next barrier), so it needs no
	// lock.
	modsInFlight []*modTask

	// RequestTimeout bounds each northbound round trip. Delegated bearer
	// setups fan out into southbound installs at the parent, so the bound
	// is looser than a single device round trip.
	RequestTimeout time.Duration
}

// Connect answers the parent's southbound handshake on conn on behalf of
// child (presenting the child's G-switch ID as the device name), installs
// the resulting link as the child's ParentLink, and starts the serve
// loop. The caller establishes the transport — typically a TCP dial
// toward the parent's listener — and hands the conn over; after Connect
// returns, the child's northbound is live.
func Connect(child *core.Controller, conn southbound.Conn) (*ParentConn, error) {
	southbound.RegisterGobTypes(&discovery.Frame{})
	parentID, err := southbound.Accept(conn, string(child.GSwitchID()))
	if err != nil {
		return nil, err
	}
	p := &ParentConn{
		child:          child,
		conn:           conn,
		gswitch:        child.GSwitchID(),
		parentID:       parentID,
		pending:        make(map[uint32]chan southbound.Msg),
		serveDone:      make(chan struct{}),
		RequestTimeout: 30 * time.Second,
	}
	if wd, ok := conn.(southbound.WriteDeadliner); ok {
		wd.SetWriteTimeout(p.RequestTimeout)
	}
	child.SetParentLink(p)
	go p.serve()
	return p, nil
}

// ParentID returns the parent controller's ID learned during the
// handshake.
func (p *ParentConn) ParentID() string { return p.parentID }

// serve owns the receive side until the connection dies.
func (p *ParentConn) serve() {
	defer close(p.serveDone)
	defer p.failAll()
	for {
		m, err := p.conn.Recv()
		if err != nil {
			return
		}
		p.handle(m)
	}
}

// send transmits one reply or event toward the parent.
func (p *ParentConn) send(m southbound.Msg) {
	m.Datapath = p.gswitch
	_ = p.conn.Send(m) //softmow:allow errdiscard a reply that cannot be sent means the conn died; the parent's fences time out and its teardown resolves the rest
}

func (p *ParentConn) sendErr(xid uint32, code int, msg string) {
	p.send(southbound.Msg{Type: southbound.TypeError, Xid: xid,
		Body: southbound.Error{Code: code, Message: msg}})
}

// handle answers one parent request, or completes one child request.
// Mod messages are dispatched to their own goroutines and fenced by the
// next barrier's snapshot; everything else runs inline on the serve
// goroutine in arrival order (discovery emissions in particular must
// stay ordered ahead of the barriers that fence them). Child-originated
// waits never run here (they block on application goroutines), so inline
// handling cannot deadlock.
func (p *ParentConn) handle(m southbound.Msg) {
	switch m.Type {
	case southbound.TypeEchoRequest:
		body, _ := m.Body.(southbound.Echo)
		p.send(southbound.Msg{Type: southbound.TypeEchoReply, Xid: m.Xid, Body: body})

	case southbound.TypeFeatureRequest:
		p.send(southbound.Msg{Type: southbound.TypeFeatureReply, Xid: m.Xid, Body: p.child.RecAFeatures()})

	case southbound.TypeFlowMod:
		fm, ok := m.Body.(southbound.FlowMod)
		if !ok {
			p.sendErr(m.Xid, southbound.ErrCodeBadRequest, "malformed flow-mod body")
			return
		}
		p.startMods(m.Xid, []southbound.FlowMod{fm})

	case southbound.TypeFlowModBatch:
		fb, ok := m.Body.(southbound.FlowModBatch)
		if !ok {
			p.sendErr(m.Xid, southbound.ErrCodeBadRequest, "malformed flow-mod batch body")
			return
		}
		p.startMods(m.Xid, fb.Mods)

	case southbound.TypeBarrierRequest:
		// Fence exactly the modifications that arrived before this
		// barrier: snapshot the in-flight set (later mods start a fresh
		// one) and reply when all of them have fully translated into the
		// child's region. The wait runs off the serve goroutine so
		// translation round trips of back-to-back parent operations
		// overlap; the parent matches replies by xid, so fence replies
		// completing out of order are harmless.
		tasks := p.modsInFlight
		p.modsInFlight = nil
		go p.completeFence(m.Xid, tasks)

	case southbound.TypePacketOut:
		po, ok := m.Body.(southbound.PacketOut)
		if !ok {
			return
		}
		if f, isFrame := po.Control.(*discovery.Frame); isFrame {
			_ = p.child.RecAEmitDiscovery(po.OutPort, f) //softmow:allow errdiscard discovery is periodic and self-healing, a lost frame is retried next round
		}

	case southbound.TypeNbUEState:
		st, ok := m.Body.(southbound.NbUEState)
		if !ok {
			p.send(southbound.Msg{Type: southbound.TypeNbAck, Xid: m.Xid,
				Body: southbound.NbAck{Err: "malformed ue-state body"}})
			return
		}
		p.child.AdoptUERecords(p.adoptRows(st.Rows))
		p.send(southbound.Msg{Type: southbound.TypeNbAck, Xid: m.Xid, Body: southbound.NbAck{}})

	case southbound.TypeEchoReply, southbound.TypeNbPathReply, southbound.TypeNbAck:
		p.mu.Lock()
		ch, ok := p.pending[m.Xid]
		if ok {
			delete(p.pending, m.Xid)
		}
		p.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// modTask is one modification message in flight between its dispatch and
// the barrier that fences it; err is written before done closes.
type modTask struct {
	xid  uint32
	done chan struct{}
	err  error
}

// startMods dispatches one modification message's mods onto their own
// goroutine and records the task for the next fence. Within the message,
// mods translate strictly in order and the first failure aborts the rest
// — the SwitchAgent batch contract; across messages, ordering is the
// parent's job (it fences before issuing a dependent operation, e.g. a
// teardown only ever follows its setup's completed barrier).
func (p *ParentConn) startMods(xid uint32, mods []southbound.FlowMod) {
	t := &modTask{xid: xid, done: make(chan struct{})}
	p.modsInFlight = append(p.modsInFlight, t)
	go func() {
		defer close(t.done)
		for _, fm := range mods {
			if err := p.applyMod(fm); err != nil {
				t.err = err
				return
			}
		}
	}()
}

// completeFence waits for every snapshotted modification, reports each
// failure under its own message xid (the parent stashes mod errors per
// xid and consumes them at fence completion, so errors must precede the
// barrier reply on the conn), then acknowledges the fence.
func (p *ParentConn) completeFence(xid uint32, tasks []*modTask) {
	for _, t := range tasks {
		<-t.done
		if t.err != nil {
			p.sendErr(t.xid, southbound.ErrCodeBadRequest, t.err.Error())
		}
	}
	p.send(southbound.Msg{Type: southbound.TypeBarrierReply, Xid: xid, Body: southbound.Barrier{}})
}

// applyMod executes one virtual-rule modification against the child's
// RecA — the wire face of the parent's logicalDevice calls (§4.3).
func (p *ParentConn) applyMod(fm southbound.FlowMod) error {
	switch fm.Command {
	case southbound.FlowAdd:
		return p.child.TranslateRule(fm.Rule)
	case southbound.FlowDeleteOwner:
		return p.child.RemoveTranslated(fm.Owner)
	case southbound.FlowDeleteOwnerBefore:
		return p.child.RemoveTranslatedBefore(fm.Owner, fm.Version)
	case southbound.FlowDeleteOwnerVersion:
		return p.child.RemoveTranslatedVersion(fm.Owner, fm.Version)
	default:
		// FlowDeleteVersion is ownerless: a G-switch cannot scope it to a
		// tenant's translated rules, and no parent-side caller emits it.
		return fmt.Errorf("northbound: unsupported flow-mod command %d on a G-switch", fm.Command)
	}
}

// adoptRows rebinds transferred UE rows to live path owners: rows this
// child owns bind to it directly; rows owned by an ancestor bind to a
// proxy that forwards teardowns back up the wire.
func (p *ParentConn) adoptRows(rows []southbound.NbUERow) []core.UERecord {
	out := make([]core.UERecord, len(rows))
	for i, r := range rows {
		var owner core.PathOwner = remoteOwner{id: r.Owner, child: p.child}
		if r.Owner == p.child.ID {
			owner = p.child
		}
		out[i] = core.UERecord{
			UE:     r.UE,
			BS:     r.BS,
			Group:  r.Group,
			Prefix: interdomain.PrefixID(r.Prefix),
			QoS:    r.QoS,
			PathID: core.PathID(r.Path), HandledBy: owner, Active: r.Active,
		}
	}
	return out
}

// request performs one synchronous northbound round trip.
func (p *ParentConn) request(m southbound.Msg) (southbound.Msg, error) {
	x := p.xid.Add(1)
	m.Xid = x
	m.Datapath = p.gswitch
	ch := make(chan southbound.Msg, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return southbound.Msg{}, southbound.ErrClosed
	}
	p.pending[x] = ch
	p.mu.Unlock()
	if err := p.conn.Send(m); err != nil {
		p.mu.Lock()
		delete(p.pending, x)
		p.mu.Unlock()
		return southbound.Msg{}, err
	}
	t := time.NewTimer(p.RequestTimeout)
	defer t.Stop()
	select {
	case reply, ok := <-ch:
		if !ok {
			return southbound.Msg{}, southbound.ErrClosed
		}
		if e, isErr := reply.Body.(southbound.Error); isErr {
			return southbound.Msg{}, fmt.Errorf("northbound: %s: %s", p.parentID, e.Message)
		}
		return reply, nil
	case <-t.C:
		p.mu.Lock()
		delete(p.pending, x)
		p.mu.Unlock()
		return southbound.Msg{}, fmt.Errorf("northbound: %s request to %s timed out after %v", m.Type, p.parentID, p.RequestTimeout)
	}
}

// failAll marks the conn closed and wakes every waiter with ErrClosed.
func (p *ParentConn) failAll() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pend := p.pending
	p.pending = make(map[uint32]chan southbound.Msg)
	p.mu.Unlock()
	// Every waiter gets the same closed-channel signal, so completion
	// order across the map iteration is unobservable.
	for _, ch := range pend {
		close(ch)
	}
}

// Close tears down the connection, fails every outstanding request, and
// waits for the serve goroutine to exit — after Close returns, the link
// has no goroutine left running.
func (p *ParentConn) Close() error {
	p.failAll()
	err := p.conn.Close()
	<-p.serveDone
	return err
}

// Drain waits until the child has no northbound request in flight, or the
// timeout elapses. A region process calls it on SIGTERM so a cluster
// teardown never abandons a delegation or teardown mid-flight.
func (p *ParentConn) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //softmow:allow determinism shutdown pacing only, never feeds replayable state
	for {
		p.mu.Lock()
		n := len(p.pending)
		closed := p.closed
		p.mu.Unlock()
		if n == 0 || closed {
			return nil
		}
		if !time.Now().Before(deadline) { //softmow:allow determinism shutdown pacing only, never feeds replayable state
			return fmt.Errorf("northbound: %d requests to %s still in flight after %v", n, p.parentID, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ControllerID implements core.ParentLink.
func (p *ParentConn) ControllerID() string { return p.parentID }

// DelegateBearer implements core.ParentLink: the §4.2 delegation request,
// carrying the leftover constraint budget, rides one NbBearer frame and
// blocks until the parent's NbPathReply.
func (p *ParentConn) DelegateBearer(req core.RouteRequest, match dataplane.Match, demand float64) (core.PathID, core.PathOwner, error) {
	reply, err := p.request(southbound.Msg{Type: southbound.TypeNbBearer, Body: southbound.NbBearer{
		From:         req.From.Port,
		Prefix:       string(req.Prefix),
		Objective:    int(req.Objective),
		MaxHops:      req.Constraints.MaxHops,
		MaxLatency:   req.Constraints.MaxLatency,
		MinBandwidth: req.Constraints.MinBandwidth,
		MaxTotalHops: req.MaxTotalHops,
		MaxTotalRTT:  req.MaxTotalRTT,
		Match:        match,
		Demand:       demand,
	}})
	return p.pathReply(reply, err)
}

// InterRegionHandover implements core.ParentLink: the §5.2 ascent toward
// the lowest common ancestor of the source and destination G-BSes.
func (p *ParentConn) InterRegionHandover(req core.HandoverRequest) (core.PathID, core.PathOwner, error) {
	reply, err := p.request(southbound.Msg{Type: southbound.TypeNbHandover, Body: southbound.NbHandover{
		UE:     req.UE,
		SrcGBS: req.SrcGBS, SrcBS: req.SrcBS,
		DstGBS: req.DstGBS, DstBS: req.DstBS,
		Prefix: string(req.Prefix), QoS: req.QoS, Objective: int(req.Objective),
	}})
	return p.pathReply(reply, err)
}

// TeardownOwned implements core.ParentLink: a teardown for a path owned at
// or above the parent is forwarded up the tree until it reaches its owner.
func (p *ParentConn) TeardownOwned(owner string, id core.PathID) error {
	reply, err := p.request(southbound.Msg{Type: southbound.TypeNbTeardown,
		Body: southbound.NbTeardown{Owner: owner, Path: int64(id)}})
	return ackErr(reply, err)
}

// PushInterdomain implements core.ParentLink. The child's translated
// options ride one message in the child's deterministic (sorted-prefix)
// order, which the parent preserves on append — Route() tie-breaks on
// insertion order, so preserving it keeps distributed route selection
// byte-identical to the in-process tree.
func (p *ParentConn) PushInterdomain(routes []core.TranslatedRoute) error {
	opts := make([]southbound.NbRouteOption, len(routes))
	for i, tr := range routes {
		opts[i] = southbound.NbRouteOption{
			Prefix: string(tr.Prefix),
			Egress: tr.Option.Egress,
			Port:   tr.Option.Ref.Port,
			Hops:   tr.Option.External.Hops,
			RTT:    tr.Option.External.RTT,
		}
	}
	reply, err := p.request(southbound.Msg{Type: southbound.TypeNbInterdomain,
		Body: southbound.NbInterdomain{Options: opts}})
	return ackErr(reply, err)
}

// DiscoveryArrival implements core.ParentLink: the translated frame rides
// a Packet-In event (xid 0), exactly how a physical switch reports a
// frame's return — the parent's ConnDevice dispatches it to
// HandleDiscoveryArrival like any other punted control packet.
func (p *ParentConn) DiscoveryArrival(gport dataplane.PortID, f *discovery.Frame) {
	p.send(southbound.Msg{Type: southbound.TypePacketIn,
		Body: southbound.PacketIn{InPort: gport, Control: f}})
}

// ChildRefreshed implements core.ParentLink (§5.3.2 bottom-up refresh):
// the parent re-reads this child's features and reabstracts.
func (p *ParentConn) ChildRefreshed() error {
	reply, err := p.request(southbound.Msg{Type: southbound.TypeNbReabstract, Body: southbound.NbReabstract{}})
	return ackErr(reply, err)
}

// FabricUpdated implements core.ParentLink (§3.2 threshold update): the
// recomputed virtual fabric replaces the parent's copy in place.
func (p *ParentConn) FabricUpdated(fab *dataplane.VFabric) error {
	reply, err := p.request(southbound.Msg{Type: southbound.TypeNbFabric, Body: southbound.NbFabric{Fabric: fab}})
	return ackErr(reply, err)
}

// pathReply decodes a delegation/handover response into the ParentLink
// return shape.
func (p *ParentConn) pathReply(m southbound.Msg, err error) (core.PathID, core.PathOwner, error) {
	if err != nil {
		return 0, nil, err
	}
	r, ok := m.Body.(southbound.NbPathReply)
	if !ok {
		return 0, nil, fmt.Errorf("northbound: malformed path reply body %T", m.Body)
	}
	if r.Err != "" {
		return 0, nil, remoteErr(r.Err)
	}
	var owner core.PathOwner = remoteOwner{id: r.Owner, child: p.child}
	return core.PathID(r.Path), owner, nil
}

// ackErr decodes an NbAck response.
func ackErr(m southbound.Msg, err error) error {
	if err != nil {
		return err
	}
	a, ok := m.Body.(southbound.NbAck)
	if !ok {
		return fmt.Errorf("northbound: malformed ack body %T", m.Body)
	}
	if a.Err != "" {
		return remoteErr(a.Err)
	}
	return nil
}

// remoteErr rehydrates an error string carried over the wire. ErrNoRoute
// is restored as a wrapped sentinel so errors.Is keeps working across the
// process boundary — admission control branches on it.
func remoteErr(s string) error {
	if strings.Contains(s, core.ErrNoRoute.Error()) {
		return fmt.Errorf("%w (remote: %s)", core.ErrNoRoute, s)
	}
	return errors.New(s)
}

// remoteOwner is a PathOwner proxy for a path owned by an ancestor
// reachable only over the wire: teardowns forward up through the child's
// own ParentLink until they reach the owner; path-table introspection
// reports not-found, as remote tables are not readable.
type remoteOwner struct {
	id    string
	child *core.Controller
}

// OwnerID implements core.PathOwner.
func (o remoteOwner) OwnerID() string { return o.id }

// TeardownPath implements core.PathOwner by forwarding toward the owner.
func (o remoteOwner) TeardownPath(id core.PathID) error {
	return o.child.TeardownOwnedPath(o.id, id)
}

// Path implements core.PathOwner; remote path tables are not
// introspectable, so every lookup reports not-found.
func (o remoteOwner) Path(core.PathID) (core.PathRecord, bool) {
	return core.PathRecord{}, false
}
