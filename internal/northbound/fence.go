package northbound

import "repro/internal/core"

// FenceDiscovery flushes in-band discovery across a distributed tree
// after the parent's RunDiscovery. Over a wire, emissions and arrivals
// ride asynchronous frames: a Packet-Out to one child can surface as a
// Packet-In on a *different* child's connection (the frame crossed a
// region border). Two barrier rounds settle everything:
//
//  1. the first round's fences sit behind every Packet-Out in each
//     child's receive stream, so when they complete every child has
//     emitted its frames and written the resulting Packet-Ins — on
//     whichever conn the frames returned through;
//  2. the second round's fences sit behind those Packet-Ins in each
//     parent-side receive stream, and the device pump dispatches events
//     in stream order, so when they complete every discovered link is in
//     the parent's NIB.
func FenceDiscovery(devs []*core.ConnDevice) error {
	for round := 0; round < 2; round++ {
		for _, d := range devs {
			if err := d.Barrier(); err != nil {
				return err
			}
		}
	}
	return nil
}
