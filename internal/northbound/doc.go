// Package northbound puts the SoftMoW parent↔child controller channel on
// the southbound wire framing, so a controller tree can span processes
// and machines (§7.1's distributed deployment) without changing any core
// semantics.
//
// The design reuses the southbound protocol for the parent→child
// direction: to its parent a child controller IS a device — the exposed
// G-switch — so feature reads, virtual-rule installs (FlowMod/Batch),
// barrier fences, and discovery emissions (PacketOut) ride the exact
// messages a physical switch answers, served by the child's RecA instead
// of a switch agent (ParentConn.handle). The child→parent direction adds
// the TypeNb* request family (delegation §4.2, handover ascent §5.2,
// teardown forwarding §5.1, interdomain propagation §4.2, fabric and
// abstraction refresh §3.2/§5.3.2); the parent's ConnDevice routes those
// by type to this package's dispatcher before any xid table is consulted,
// because child xids are drawn from the child's own counter.
//
// Both directions share one connection per (parent, child) edge:
//
//	parent process                         child process
//	core.DialDevice ── Hello ──────────▶ southbound.Accept
//	ConnDevice (pump, fences)  ◀─wire─▶  ParentConn (serve loop)
//	  └ SetPeerHandler → servePeer         └ installed as core.ParentLink
//
// AttachRemoteChild is the parent-side entry point; Connect is the
// child-side one. In-process attachment (core.AttachChild) is untouched —
// the ParentLink seam in core makes the transport invisible to every
// upward code path.
package northbound
