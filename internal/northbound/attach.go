package northbound

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/interdomain"
	"repro/internal/routing"
	"repro/internal/southbound"
)

// AttachRemoteChild attaches a child controller reachable over conn to
// parent. The parent dials the southbound handshake (the child's Connect
// answers with its G-switch abstraction), child-originated northbound
// requests are dispatched to the parent's delegation/handover/teardown
// entry points, and the G-switch joins the parent's device table exactly
// like an in-process child's. The returned device handle is used for
// link stitching (PortInfo.Underlying) and UE-state pushes.
func AttachRemoteChild(parent *core.Controller, conn southbound.Conn) (*core.ConnDevice, error) {
	southbound.RegisterGobTypes(&discovery.Frame{})
	d, err := core.DialDevice(conn, parent.ID)
	if err != nil {
		return nil, err
	}
	d.SetPeerHandler(func(m southbound.Msg) { servePeer(parent, conn, m) })
	parent.AttachDevice(d)
	return d, nil
}

// servePeer answers one child-originated northbound request. It runs on
// its own goroutine (the device pump spawns one per request) because
// every handler below may issue synchronous southbound work back over
// this same connection — delegation installs rules on the requesting
// child, among others — and must not block the pump that completes those
// fences.
func servePeer(parent *core.Controller, conn southbound.Conn, m southbound.Msg) {
	var reply southbound.Msg
	switch b := m.Body.(type) {
	case southbound.NbBearer:
		id, owner, err := parent.DelegateBearerSetup(core.RouteRequest{
			From:      dataplane.PortRef{Dev: m.Datapath, Port: b.From},
			Prefix:    interdomain.PrefixID(b.Prefix),
			Objective: routing.Objective(b.Objective),
			Constraints: routing.Constraints{
				MaxHops:      b.MaxHops,
				MaxLatency:   b.MaxLatency,
				MinBandwidth: b.MinBandwidth,
			},
			MaxTotalHops: b.MaxTotalHops,
			MaxTotalRTT:  b.MaxTotalRTT,
		}, b.Match, b.Demand)
		reply = southbound.Msg{Type: southbound.TypeNbPathReply, Body: pathReplyBody(id, owner, err)}

	case southbound.NbHandover:
		id, owner, err := parent.HandleInterRegionHandoverRequest(core.HandoverRequest{
			UE:     b.UE,
			SrcGBS: b.SrcGBS, SrcBS: b.SrcBS,
			DstGBS: b.DstGBS, DstBS: b.DstBS,
			Prefix: interdomain.PrefixID(b.Prefix), QoS: b.QoS,
			Objective: routing.Objective(b.Objective),
		})
		reply = southbound.Msg{Type: southbound.TypeNbPathReply, Body: pathReplyBody(id, owner, err)}

	case southbound.NbTeardown:
		err := parent.TeardownOwnedPath(b.Owner, core.PathID(b.Path))
		reply = southbound.Msg{Type: southbound.TypeNbAck, Body: ackBody(err)}

	case southbound.NbInterdomain:
		routes := make([]core.TranslatedRoute, len(b.Options))
		for i, o := range b.Options {
			routes[i] = core.TranslatedRoute{
				Prefix: interdomain.PrefixID(o.Prefix),
				Option: core.RouteOption{
					Egress:   o.Egress,
					Ref:      dataplane.PortRef{Dev: m.Datapath, Port: o.Port},
					External: interdomain.Metrics{Hops: o.Hops, RTT: o.RTT},
				},
			}
		}
		reply = southbound.Msg{Type: southbound.TypeNbAck, Body: ackBody(parent.AcceptTranslatedRoutes(routes))}

	case southbound.NbFabric:
		parent.UpdateChildFabric(m.Datapath, b.Fabric)
		reply = southbound.Msg{Type: southbound.TypeNbAck, Body: southbound.NbAck{}}

	case southbound.NbReabstract:
		parent.RefreshChildAndReabstract(m.Datapath)
		reply = southbound.Msg{Type: southbound.TypeNbAck, Body: southbound.NbAck{}}

	default:
		reply = southbound.Msg{Type: southbound.TypeNbAck,
			Body: southbound.NbAck{Err: fmt.Sprintf("unsupported northbound request %v", m.Type)}}
	}
	reply.Xid = m.Xid
	reply.Datapath = m.Datapath
	_ = conn.Send(reply) //softmow:allow errdiscard a reply that cannot be sent means the conn died; the child's request times out and the conn teardown resolves the rest

}

// pathReplyBody flattens a delegation/handover result for the wire. Only
// the owner's identity crosses; the requesting child rebinds it to a
// teardown-forwarding proxy on its side.
func pathReplyBody(id core.PathID, owner core.PathOwner, err error) southbound.NbPathReply {
	if err != nil {
		return southbound.NbPathReply{Err: err.Error()}
	}
	return southbound.NbPathReply{Path: int64(id), Owner: owner.OwnerID()}
}

// ackBody flattens an error for the wire.
func ackBody(err error) southbound.NbAck {
	if err != nil {
		return southbound.NbAck{Err: err.Error()}
	}
	return southbound.NbAck{}
}

// TransferUEState pushes UE table rows to the child behind d and waits
// for its acknowledgement — the parent-side half of a §5.3.2 state
// transfer after a reconfiguration moves base stations between regions.
func TransferUEState(d *core.ConnDevice, rows []core.UERecord) error {
	wire := make([]southbound.NbUERow, len(rows))
	for i, r := range rows {
		wire[i] = southbound.NbUERow{
			UE: r.UE, BS: r.BS, Group: r.Group,
			Prefix: string(r.Prefix), QoS: r.QoS,
			Path: int64(r.PathID), Owner: r.HandledBy.OwnerID(), Active: r.Active,
		}
	}
	reply, err := d.Request(southbound.Msg{Type: southbound.TypeNbUEState,
		Body: southbound.NbUEState{Rows: wire}})
	return ackErr(reply, err)
}
