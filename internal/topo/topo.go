// Package topo generates RocketFuel-class ISP topologies for the SoftMoW
// evaluation (§7.1 builds the data plane from the RocketFuel dataset; we
// substitute a deterministic synthetic generator with the same structural
// features: PoP-clustered switches, short intra-PoP links, a long-haul
// inter-PoP backbone, and geographic placement so regions have meaningful
// neighborhoods).
//
// The package also provides the balanced region partitioner used to create
// "approximately equal-sized logical regions with similar cellular loads"
// (§7.1) and egress-point placement for the Fig. 8/9 experiments.
package topo

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dataplane"
	"repro/internal/simnet"
)

// Params configures topology generation. Zero values select evaluation
// defaults matching the paper (321 switches, 5 ms links, 1 Gbps).
type Params struct {
	Seed        int64
	NumSwitches int
	NumPoPs     int
	// ChordsPerPoP adds intra-PoP redundancy beyond the PoP ring.
	ChordsPerPoP int
	// BackboneNeighbors connects each PoP to its n nearest PoPs.
	BackboneNeighbors int
	// LongHaulLinks adds extra far-apart PoP pairs for path diversity.
	LongHaulLinks int
	// FixedLatency, when nonzero, sets every link's latency (the paper
	// uses 5 ms); otherwise latency is distance-proportional.
	FixedLatency time.Duration
	// BandwidthMbps is the per-link capacity (paper: 1 Gbps).
	BandwidthMbps float64
	// PlaneSize is the side of the square coordinate plane.
	PlaneSize float64
}

func (p *Params) defaults() {
	if p.NumSwitches == 0 {
		p.NumSwitches = 321
	}
	if p.NumPoPs == 0 {
		p.NumPoPs = p.NumSwitches / 8
		if p.NumPoPs < 4 {
			p.NumPoPs = 4
		}
	}
	if p.ChordsPerPoP == 0 {
		p.ChordsPerPoP = 2
	}
	if p.BackboneNeighbors == 0 {
		p.BackboneNeighbors = 5
	}
	if p.LongHaulLinks == 0 {
		// RocketFuel-class ISP maps are rich in long-haul redundancy; the
		// Table 1 root row implies roughly a quarter of all links cross
		// region boundaries.
		p.LongHaulLinks = p.NumPoPs * 5 / 2
	}
	if p.FixedLatency == 0 {
		p.FixedLatency = 5 * time.Millisecond
	}
	if p.BandwidthMbps == 0 {
		p.BandwidthMbps = 1000
	}
	if p.PlaneSize == 0 {
		p.PlaneSize = 1000
	}
}

// PoP is one point of presence: a cluster of co-located switches.
type PoP struct {
	ID       int
	Center   dataplane.GeoPoint
	Switches []dataplane.DeviceID
}

// Topology is a generated data plane plus placement metadata.
type Topology struct {
	Net       *dataplane.Network
	PoPs      []PoP
	Locations map[dataplane.DeviceID]dataplane.GeoPoint
	PoPOf     map[dataplane.DeviceID]int
	Params    Params
}

// SwitchIDs returns all switch IDs in deterministic order.
func (t *Topology) SwitchIDs() []dataplane.DeviceID {
	ids := make([]dataplane.DeviceID, 0, len(t.Locations))
	for _, sw := range t.Net.Switches() {
		ids = append(ids, sw.ID)
	}
	return ids
}

// Generate builds a topology from params. Same params → same topology.
func Generate(p Params) *Topology {
	p.defaults()
	rng := simnet.RNG(p.Seed, "topo")
	t := &Topology{
		Net:       dataplane.NewNetwork(),
		Locations: make(map[dataplane.DeviceID]dataplane.GeoPoint),
		PoPOf:     make(map[dataplane.DeviceID]int),
		Params:    p,
	}

	// Place PoP centers with minimum-separation rejection sampling so the
	// plane is covered reasonably evenly.
	minSep := p.PlaneSize / math.Sqrt(float64(p.NumPoPs)) / 2
	for i := 0; i < p.NumPoPs; i++ {
		var c dataplane.GeoPoint
		for try := 0; ; try++ {
			c = dataplane.GeoPoint{X: rng.Float64() * p.PlaneSize, Y: rng.Float64() * p.PlaneSize}
			ok := true
			for _, q := range t.PoPs {
				if c.Dist(q.Center) < minSep {
					ok = false
					break
				}
			}
			if ok || try > 50 {
				break
			}
		}
		t.PoPs = append(t.PoPs, PoP{ID: i, Center: c})
	}

	// Assign switches to PoPs: each PoP gets an even share, remainders to
	// the first PoPs; switches scatter around their PoP center.
	swIdx := 0
	for i := range t.PoPs {
		share := p.NumSwitches / p.NumPoPs
		if i < p.NumSwitches%p.NumPoPs {
			share++
		}
		for j := 0; j < share; j++ {
			id := dataplane.DeviceID(fmt.Sprintf("SW%03d", swIdx))
			swIdx++
			t.Net.AddSwitch(id)
			spread := minSep / 2
			loc := dataplane.GeoPoint{
				X: t.PoPs[i].Center.X + (rng.Float64()-0.5)*spread,
				Y: t.PoPs[i].Center.Y + (rng.Float64()-0.5)*spread,
			}
			t.Locations[id] = loc
			t.PoPOf[id] = i
			t.PoPs[i].Switches = append(t.PoPs[i].Switches, id)
		}
	}

	latency := func(a, b dataplane.DeviceID) time.Duration {
		if p.FixedLatency > 0 {
			return p.FixedLatency
		}
		// ~5 µs/km propagation on the synthetic plane (1 unit = 1 km).
		d := t.Locations[a].Dist(t.Locations[b])
		l := time.Duration(d*5) * time.Microsecond
		if l < time.Millisecond {
			l = time.Millisecond
		}
		return l
	}
	connect := func(a, b dataplane.DeviceID) {
		if _, err := t.Net.Connect(a, b, latency(a, b), p.BandwidthMbps); err != nil {
			panic(err) // generation bug
		}
	}

	// Intra-PoP: ring plus random chords.
	for i := range t.PoPs {
		sws := t.PoPs[i].Switches
		n := len(sws)
		if n == 0 {
			continue
		}
		for j := 0; j < n-1; j++ {
			connect(sws[j], sws[j+1])
		}
		if n > 2 {
			connect(sws[n-1], sws[0])
		}
		for c := 0; c < p.ChordsPerPoP && n > 3; c++ {
			a := rng.Intn(n)
			b := (a + 2 + rng.Intn(n-3)) % n
			connect(sws[a], sws[b])
		}
	}

	// Backbone: each PoP links its gateway switch to the gateways of its
	// nearest neighbors; duplicate pairs are skipped.
	gateway := func(pop int) dataplane.DeviceID { return t.PoPs[pop].Switches[0] }
	linked := make(map[[2]int]bool)
	addBackbone := func(a, b int) {
		if a == b {
			return
		}
		k := [2]int{a, b}
		if a > b {
			k = [2]int{b, a}
		}
		if linked[k] {
			return
		}
		linked[k] = true
		connect(gateway(a), gateway(b))
	}
	for i := range t.PoPs {
		type nd struct {
			j int
			d float64
		}
		var nds []nd
		for j := range t.PoPs {
			if i == j {
				continue
			}
			nds = append(nds, nd{j, t.PoPs[i].Center.Dist(t.PoPs[j].Center)})
		}
		sort.Slice(nds, func(a, b int) bool { return nds[a].d < nds[b].d })
		for k := 0; k < p.BackboneNeighbors && k < len(nds); k++ {
			addBackbone(i, nds[k].j)
		}
	}
	// Long-haul diversity links between random far PoPs.
	for c := 0; c < p.LongHaulLinks; c++ {
		a := rng.Intn(len(t.PoPs))
		b := rng.Intn(len(t.PoPs))
		addBackbone(a, b)
	}

	// Guarantee global connectivity: union the PoP graph and link any
	// disconnected component to the nearest connected PoP.
	t.ensureConnected(addBackbone)
	return t
}

// ensureConnected links PoP-level components until the switch graph is one
// component.
func (t *Topology) ensureConnected(addBackbone func(a, b int)) {
	for {
		comp := t.components()
		if len(comp) <= 1 {
			return
		}
		// Link the first switch's PoP of component 1 to the nearest PoP in
		// component 0.
		popIn := func(c []dataplane.DeviceID) int { return t.PoPOf[c[0]] }
		base := popIn(comp[0])
		other := popIn(comp[1])
		addBackbone(base, other)
	}
}

// components returns the connected components of the switch graph.
func (t *Topology) components() [][]dataplane.DeviceID {
	visited := make(map[dataplane.DeviceID]bool)
	var comps [][]dataplane.DeviceID
	for _, sw := range t.Net.Switches() {
		if visited[sw.ID] {
			continue
		}
		var comp []dataplane.DeviceID
		queue := []dataplane.DeviceID{sw.ID}
		visited[sw.ID] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for _, adj := range t.Net.Neighbors(cur) {
				if !visited[adj.Remote.Dev] {
					visited[adj.Remote.Dev] = true
					queue = append(queue, adj.Remote.Dev)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// NearestSwitch returns the switch closest to loc.
func (t *Topology) NearestSwitch(loc dataplane.GeoPoint) dataplane.DeviceID {
	best := dataplane.DeviceID("")
	bestD := math.Inf(1)
	for _, sw := range t.Net.Switches() {
		if d := t.Locations[sw.ID].Dist(loc); d < bestD {
			bestD = d
			best = sw.ID
		}
	}
	return best
}

// PlaceEgressPoints selects k geographically spread switches (farthest-
// point sampling over PoP gateways) and registers an egress point on each,
// returning the egress points. This models the Fig. 8 sweep over 2/4/8
// Internet egress points.
func (t *Topology) PlaceEgressPoints(k int) []*dataplane.EgressPoint {
	if k <= 0 || len(t.PoPs) == 0 {
		return nil
	}
	chosen := t.SpreadPoPs(k)
	eps := make([]*dataplane.EgressPoint, 0, k)
	for i, pop := range chosen {
		sw := t.PoPs[pop].Switches[0]
		ep, err := t.Net.AddEgress(fmt.Sprintf("E%d", i+1), sw, fmt.Sprintf("isp-%d", i+1))
		if err != nil {
			panic(err)
		}
		eps = append(eps, ep)
	}
	return eps
}

// SpreadPoPs returns k PoP indices chosen by farthest-point sampling, so
// the selection covers the plane.
func (t *Topology) SpreadPoPs(k int) []int {
	if k > len(t.PoPs) {
		k = len(t.PoPs)
	}
	if k == 0 {
		return nil
	}
	chosen := []int{0}
	for len(chosen) < k {
		bestPoP, bestD := -1, -1.0
		for i := range t.PoPs {
			already := false
			for _, c := range chosen {
				if c == i {
					already = true
					break
				}
			}
			if already {
				continue
			}
			// distance to nearest chosen
			d := math.Inf(1)
			for _, c := range chosen {
				if dd := t.PoPs[i].Center.Dist(t.PoPs[c].Center); dd < d {
					d = dd
				}
			}
			if d > bestD {
				bestD = d
				bestPoP = i
			}
		}
		chosen = append(chosen, bestPoP)
	}
	return chosen
}
