package topo

import (
	"testing"
	"time"

	"repro/internal/dataplane"
)

func defaultTopo(t *testing.T) *Topology {
	t.Helper()
	return Generate(Params{Seed: 1})
}

func TestGenerateDefaults(t *testing.T) {
	tp := defaultTopo(t)
	if got := tp.Net.NumSwitches(); got != 321 {
		t.Fatalf("switches = %d, want 321 (paper default)", got)
	}
	if len(tp.PoPs) == 0 {
		t.Fatal("no PoPs")
	}
	if len(tp.Locations) != 321 {
		t.Fatalf("locations = %d", len(tp.Locations))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 7, NumSwitches: 64})
	b := Generate(Params{Seed: 7, NumSwitches: 64})
	if len(a.Net.Links()) != len(b.Net.Links()) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Net.Links()), len(b.Net.Links()))
	}
	la, lb := a.Net.Links(), b.Net.Links()
	for i := range la {
		if la[i].A != lb[i].A || la[i].B != lb[i].B {
			t.Fatalf("link %d differs: %v vs %v", i, la[i], lb[i])
		}
	}
	for id, loc := range a.Locations {
		if b.Locations[id] != loc {
			t.Fatalf("location of %s differs", id)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Params{Seed: 1, NumSwitches: 64})
	b := Generate(Params{Seed: 2, NumSwitches: 64})
	same := true
	for id, loc := range a.Locations {
		if b.Locations[id] != loc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different placements")
	}
}

func TestGenerateConnected(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42} {
		tp := Generate(Params{Seed: seed, NumSwitches: 100})
		comps := tp.components()
		if len(comps) != 1 {
			t.Fatalf("seed %d: %d components", seed, len(comps))
		}
	}
}

func TestGenerateFixedLatency(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 50})
	for _, l := range tp.Net.Links() {
		if l.Latency != 5*time.Millisecond {
			t.Fatalf("paper default latency is 5ms, got %v", l.Latency)
		}
		if l.Bandwidth != 1000 {
			t.Fatalf("paper default bandwidth is 1Gbps, got %v", l.Bandwidth)
		}
	}
}

func TestGenerateDistanceLatency(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 50, FixedLatency: -1})
	sawDifferent := false
	var first time.Duration
	for i, l := range tp.Net.Links() {
		if l.Latency < time.Millisecond {
			t.Fatalf("latency floor violated: %v", l.Latency)
		}
		if i == 0 {
			first = l.Latency
		} else if l.Latency != first {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Fatal("distance-based latencies should vary")
	}
}

func TestSmallTopology(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 8, NumPoPs: 2})
	if tp.Net.NumSwitches() != 8 {
		t.Fatalf("switches = %d", tp.Net.NumSwitches())
	}
	if len(tp.components()) != 1 {
		t.Fatal("small topology must be connected")
	}
}

func TestNearestSwitch(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 30})
	for _, sw := range tp.Net.Switches()[:5] {
		if got := tp.NearestSwitch(tp.Locations[sw.ID]); got != sw.ID {
			t.Fatalf("nearest to %s's own location = %s", sw.ID, got)
		}
	}
}

func TestPlaceEgressPoints(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 100})
	eps := tp.PlaceEgressPoints(8)
	if len(eps) != 8 {
		t.Fatalf("egress = %d", len(eps))
	}
	seen := map[dataplane.DeviceID]bool{}
	for _, ep := range eps {
		if seen[ep.Switch] {
			t.Fatalf("duplicate egress switch %s", ep.Switch)
		}
		seen[ep.Switch] = true
		if !tp.Net.Switch(ep.Switch).IsEgress {
			t.Fatal("egress switch not marked")
		}
	}
	if len(tp.Net.EgressPoints()) != 8 {
		t.Fatal("network egress registry")
	}
}

func TestSpreadPoPsCoverage(t *testing.T) {
	tp := Generate(Params{Seed: 3, NumSwitches: 160})
	idx := tp.SpreadPoPs(4)
	if len(idx) != 4 {
		t.Fatalf("spread = %v", idx)
	}
	// pairwise distances should all be substantial relative to plane size
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			d := tp.PoPs[idx[i]].Center.Dist(tp.PoPs[idx[j]].Center)
			if d < tp.Params.PlaneSize/10 {
				t.Fatalf("spread PoPs too close: %v", d)
			}
		}
	}
	if got := tp.SpreadPoPs(10000); len(got) != len(tp.PoPs) {
		t.Fatal("k larger than PoPs should clamp")
	}
	if tp.SpreadPoPs(0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestPartitionBalancedConnected(t *testing.T) {
	tp := Generate(Params{Seed: 1})
	for _, k := range []int{4, 8} {
		regions := Partition(tp, k)
		if len(regions) != k {
			t.Fatalf("regions = %d", len(regions))
		}
		total := 0
		for _, r := range regions {
			total += len(r.Switches)
			if !IsConnected(tp, r) {
				t.Fatalf("region %s disconnected (size %d)", r.ID, len(r.Switches))
			}
		}
		if total != 321 {
			t.Fatalf("partition loses switches: %d", total)
		}
		if spread := SizeSpread(regions); spread > 321/k {
			t.Fatalf("k=%d imbalanced: spread %d", k, spread)
		}
	}
}

func TestPartitionNamesAndIndex(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 64})
	regions := Partition(tp, 4)
	if regions[0].ID != "A" || regions[3].ID != "D" {
		t.Fatalf("region names: %s..%s", regions[0].ID, regions[3].ID)
	}
	idx := RegionOf(regions)
	if len(idx) != 64 {
		t.Fatalf("index size = %d", len(idx))
	}
	for i, r := range regions {
		for _, s := range r.Switches {
			if idx[s] != i {
				t.Fatal("index inconsistent")
			}
			if !r.Contains(s) {
				t.Fatal("Contains inconsistent")
			}
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	tp := Generate(Params{Seed: 1, NumSwitches: 10, NumPoPs: 2})
	if Partition(tp, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
	regions := Partition(tp, 100)
	total := 0
	for _, r := range regions {
		total += len(r.Switches)
	}
	if total != 10 {
		t.Fatalf("k>n partition total = %d", total)
	}
}

func TestCrossRegionLinks(t *testing.T) {
	tp := Generate(Params{Seed: 1})
	regions := Partition(tp, 4)
	cross := CrossRegionLinks(tp, regions)
	if len(cross) == 0 {
		t.Fatal("4-way partition of a connected graph must cut some links")
	}
	if len(cross) >= len(tp.Net.Links()) {
		t.Fatal("not all links can be cross-region")
	}
	idx := RegionOf(regions)
	for _, l := range cross {
		if idx[l.A.Dev] == idx[l.B.Dev] {
			t.Fatal("intra-region link reported as cross-region")
		}
	}
}

func TestRegionNameOverflow(t *testing.T) {
	if regionName(0) != "A" || regionName(25) != "Z" || regionName(26) != "R26" {
		t.Fatalf("names: %s %s %s", regionName(0), regionName(25), regionName(26))
	}
}
