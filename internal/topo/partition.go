package topo

import (
	"fmt"
	"sort"

	"repro/internal/dataplane"
)

// Region is one leaf controller's physical region: a connected,
// approximately equal-sized set of switches (§7.1).
type Region struct {
	ID       string
	Switches []dataplane.DeviceID
}

// Contains reports membership.
func (r *Region) Contains(id dataplane.DeviceID) bool {
	for _, s := range r.Switches {
		if s == id {
			return true
		}
	}
	return false
}

// Partition splits the topology's switch graph into k connected regions of
// approximately equal size using round-robin growth from geographically
// spread seeds: each region repeatedly claims the unassigned switch
// adjacent to it that lies geographically closest to its seed, so regions
// stay both connected and compact even on topologies with long-haul
// redundancy links. Regions are labeled "A", "B", ... as in Table 1.
func Partition(t *Topology, k int) []Region {
	if k <= 0 {
		return nil
	}
	switches := t.SwitchIDs()
	if k > len(switches) {
		k = len(switches)
	}

	seedPoPs := t.SpreadPoPs(k)
	assigned := make(map[dataplane.DeviceID]int, len(switches))
	regions := make([]Region, k)
	seedLoc := make([]dataplane.GeoPoint, k)
	// candidates[i] holds unassigned switches adjacent to region i.
	candidates := make([]map[dataplane.DeviceID]bool, k)
	claim := func(i int, sw dataplane.DeviceID) {
		assigned[sw] = i
		regions[i].Switches = append(regions[i].Switches, sw)
		for _, adj := range t.Net.Neighbors(sw) {
			if _, ok := assigned[adj.Remote.Dev]; !ok {
				candidates[i][adj.Remote.Dev] = true
			}
		}
	}
	for i := 0; i < k; i++ {
		regions[i] = Region{ID: regionName(i)}
		candidates[i] = make(map[dataplane.DeviceID]bool)
		var seed dataplane.DeviceID
		if i < len(seedPoPs) {
			seed = t.PoPs[seedPoPs[i]].Switches[0]
		}
		if _, taken := assigned[seed]; taken || seed == "" {
			// more regions than PoPs, or seed collision on tiny
			// topologies: fall back to any unassigned switch
			for _, s := range switches {
				if _, ok := assigned[s]; !ok {
					seed = s
					break
				}
			}
		}
		seedLoc[i] = t.Locations[seed]
		claim(i, seed)
	}

	remaining := len(switches) - k
	for remaining > 0 {
		progress := false
		for i := 0; i < k && remaining > 0; i++ {
			// claim the geographically closest adjacent unassigned switch
			var best dataplane.DeviceID
			bestD := 0.0
			for sw := range candidates[i] {
				if _, taken := assigned[sw]; taken {
					delete(candidates[i], sw)
					continue
				}
				d := t.Locations[sw].Dist(seedLoc[i])
				if best == "" || d < bestD || (d == bestD && sw < best) {
					best, bestD = sw, d
				}
			}
			if best == "" {
				continue
			}
			delete(candidates[i], best)
			claim(i, best)
			remaining--
			progress = true
		}
		if !progress {
			// Disconnected leftovers (cannot happen on generated
			// topologies, which are connected): assign to smallest region.
			for _, s := range switches {
				if _, ok := assigned[s]; !ok {
					smallest := 0
					for i := 1; i < k; i++ {
						if len(regions[i].Switches) < len(regions[smallest].Switches) {
							smallest = i
						}
					}
					assigned[s] = smallest
					regions[smallest].Switches = append(regions[smallest].Switches, s)
					remaining--
				}
			}
		}
	}
	for i := range regions {
		dataplane.SortDeviceIDs(regions[i].Switches)
	}
	return regions
}

func regionName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("R%d", i)
}

// RegionOf builds a reverse index from switch to region index.
func RegionOf(regions []Region) map[dataplane.DeviceID]int {
	m := make(map[dataplane.DeviceID]int)
	for i, r := range regions {
		for _, s := range r.Switches {
			m[s] = i
		}
	}
	return m
}

// CrossRegionLinks returns the physical links whose endpoints lie in
// different regions — the links only an ancestor controller may discover
// (§4.1).
func CrossRegionLinks(t *Topology, regions []Region) []*dataplane.Link {
	idx := RegionOf(regions)
	var out []*dataplane.Link
	for _, l := range t.Net.Links() {
		ra, oka := idx[l.A.Dev]
		rb, okb := idx[l.B.Dev]
		if oka && okb && ra != rb {
			out = append(out, l)
		}
	}
	return out
}

// IsConnected reports whether the switches of region r form one connected
// component in the topology's switch graph restricted to r.
func IsConnected(t *Topology, r Region) bool {
	if len(r.Switches) == 0 {
		return true
	}
	in := make(map[dataplane.DeviceID]bool, len(r.Switches))
	for _, s := range r.Switches {
		in[s] = true
	}
	visited := map[dataplane.DeviceID]bool{r.Switches[0]: true}
	queue := []dataplane.DeviceID{r.Switches[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, adj := range t.Net.Neighbors(cur) {
			nb := adj.Remote.Dev
			if in[nb] && !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(visited) == len(r.Switches)
}

// SizeSpread returns the difference between the largest and smallest
// region sizes.
func SizeSpread(regions []Region) int {
	if len(regions) == 0 {
		return 0
	}
	sizes := make([]int, len(regions))
	for i, r := range regions {
		sizes[i] = len(r.Switches)
	}
	sort.Ints(sizes)
	return sizes[len(sizes)-1] - sizes[0]
}
