package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PortPair is an unordered pair of G-switch border ports. Construct with
// NewPortPair so lookups are orientation-independent.
type PortPair struct {
	A, B PortID
}

// NewPortPair normalizes the pair so A ≤ B.
func NewPortPair(a, b PortID) PortPair {
	if a > b {
		a, b = b, a
	}
	return PortPair{A: a, B: b}
}

// PathMetrics are the three per-port-pair annotations a virtual fabric
// exposes (§3.2): latency, hop count, and available bandwidth of the best
// internal path connecting the two border ports.
type PathMetrics struct {
	Latency   time.Duration
	Hops      int
	Bandwidth float64 // available Mbps on the bottleneck link
	// Reachable is false when no internal path connects the pair.
	Reachable bool
}

// Better reports whether m is a strictly better path than o under the
// lexicographic (hops, latency) order used by the routing service.
func (m PathMetrics) Better(o PathMetrics) bool {
	if !m.Reachable {
		return false
	}
	if !o.Reachable {
		return true
	}
	if m.Hops != o.Hops {
		return m.Hops < o.Hops
	}
	return m.Latency < o.Latency
}

// VFabric is a G-switch's virtual switch fabric: per-port-pair path metrics
// over the child region's internal topology (§3.2). The zero value is
// empty; construct with NewVFabric.
type VFabric struct {
	pairs map[PortPair]PathMetrics
}

// NewVFabric returns an empty fabric.
func NewVFabric() *VFabric {
	return &VFabric{pairs: make(map[PortPair]PathMetrics)}
}

// Set records metrics for a port pair (orientation-insensitive).
func (v *VFabric) Set(a, b PortID, m PathMetrics) {
	v.pairs[NewPortPair(a, b)] = m
}

// Get returns the metrics for a port pair.
func (v *VFabric) Get(a, b PortID) (PathMetrics, bool) {
	m, ok := v.pairs[NewPortPair(a, b)]
	return m, ok
}

// Len reports the number of annotated pairs.
func (v *VFabric) Len() int { return len(v.pairs) }

// Pairs returns the annotated pairs in deterministic order.
func (v *VFabric) Pairs() []PortPair {
	out := make([]PortPair, 0, len(v.pairs))
	for pp := range v.pairs {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Clone deep-copies the fabric.
func (v *VFabric) Clone() *VFabric {
	c := NewVFabric()
	for pp, m := range v.pairs {
		c.pairs[pp] = m
	}
	return c
}

// DiffExceeds reports whether any pair's available bandwidth differs from
// old by more than thresholdMbps — the trigger for a child to push a
// vFabric update to its parent (§3.2).
func (v *VFabric) DiffExceeds(old *VFabric, thresholdMbps float64) bool {
	if old == nil {
		return v.Len() > 0
	}
	if v.Len() != old.Len() {
		return true
	}
	for pp, m := range v.pairs {
		om, ok := old.pairs[pp]
		if !ok {
			return true
		}
		d := m.Bandwidth - om.Bandwidth
		if d < 0 {
			d = -d
		}
		if d > thresholdMbps {
			return true
		}
		if m.Reachable != om.Reachable {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (v *VFabric) String() string {
	var b strings.Builder
	b.WriteString("vfabric{")
	for i, pp := range v.Pairs() {
		if i > 0 {
			b.WriteString(", ")
		}
		m := v.pairs[pp]
		fmt.Fprintf(&b, "%d-%d:%dh/%v/%.0fM", pp.A, pp.B, m.Hops, m.Latency, m.Bandwidth)
	}
	b.WriteString("}")
	return b.String()
}

// GSwitchInfo describes a gigantic switch as exposed to a parent
// controller: its border ports and virtual fabric (§3.1).
type GSwitchInfo struct {
	ID DeviceID
	// Ports lists the exposed border ports with their provenance.
	Ports []GPort
	// Fabric holds the per-port-pair metrics.
	Fabric *VFabric
}

// GPort is one exposed border port of a G-switch. It remembers the
// underlying (child-level) attachment so the child controller can translate
// parent rules back down (§4.3).
type GPort struct {
	ID PortID
	// Underlying is the child-topology port this border port maps to.
	Underlying PortRef
	// External marks Internet/peering-facing ports.
	External bool
	// ExternalDomain is the peer domain for external ports.
	ExternalDomain string
	// GBS is set when the port attaches a G-BS rather than a border link.
	GBS DeviceID
}

// PortByID returns the GPort with the given ID, or nil.
func (g *GSwitchInfo) PortByID(id PortID) *GPort {
	for i := range g.Ports {
		if g.Ports[i].ID == id {
			return &g.Ports[i]
		}
	}
	return nil
}

// GBSInfo describes a gigantic base station exposed to a parent (§3.1).
type GBSInfo struct {
	ID DeviceID
	// AttachPort is the G-switch port the G-BS connects to.
	AttachPort PortID
	// Border marks G-BSes abstracting border BS groups, which must be
	// exposed one-to-one for fine-grained region optimization (§5.2).
	Border bool
	// Groups lists the underlying BS group IDs (or child G-BS IDs).
	Groups []DeviceID
	// Centroid is the radio-coverage centroid, used by region optimization.
	Centroid GeoPoint
}

// GMiddleboxInfo describes a gigantic middlebox: all instances of one type
// in a region (§3.1).
type GMiddleboxInfo struct {
	ID       DeviceID
	Type     MiddleboxType
	Capacity float64 // sum of constituent capacities
	Load     float64 // sum of constituent loads
	// AttachPorts lists G-switch ports the instances hang off.
	AttachPorts []PortID
}

// Utilization returns Load/Capacity clamped to [0,1].
func (g *GMiddleboxInfo) Utilization() float64 {
	if g.Capacity <= 0 {
		return 0
	}
	u := g.Load / g.Capacity
	if u > 1 {
		u = 1
	}
	return u
}
