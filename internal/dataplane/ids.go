// Package dataplane models the SoftMoW physical data plane: programmable
// switches with label-capable flow tables, links annotated with latency and
// bandwidth, base stations organized into BS groups, middleboxes, and
// Internet egress points.
//
// The model substitutes for the paper's Mininet/Open vSwitch data plane
// (§7.1). It is a functional simulator: packets injected into the network
// traverse flow tables hop by hop, applying label push/pop/swap and output
// actions, while the traversal engine records per-hop label depth so the
// paper's single-label invariant (§4.3) can be checked mechanically.
package dataplane

import "fmt"

// DeviceID identifies any data-plane device (switch, base station,
// middlebox, or their gigantic logical counterparts).
type DeviceID string

// PortID identifies a port on a device. Port numbering is per-device and
// starts at 1; PortAny matches any port in a flow rule.
type PortID int

// PortAny is the wildcard in-port used in flow rule matches.
const PortAny PortID = -1

// DeviceKind classifies data-plane devices, mirroring the paper's NIB
// device-type field (§4).
type DeviceKind int

const (
	// KindUnknown is the zero value for devices not yet classified.
	KindUnknown DeviceKind = iota
	// KindSwitch is a physical programmable core switch.
	KindSwitch
	// KindGSwitch is a gigantic (logical) switch exposed by a child
	// controller (§3.1).
	KindGSwitch
	// KindBaseStation is a physical eNodeB-class base station.
	KindBaseStation
	// KindGBS is a gigantic base station abstracting one or more BS groups.
	KindGBS
	// KindMiddlebox is a physical middlebox instance.
	KindMiddlebox
	// KindGMiddlebox aggregates same-type middlebox instances.
	KindGMiddlebox
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindGSwitch:
		return "g-switch"
	case KindBaseStation:
		return "base-station"
	case KindGBS:
		return "g-bs"
	case KindMiddlebox:
		return "middlebox"
	case KindGMiddlebox:
		return "g-middlebox"
	default:
		return "unknown"
	}
}

// PortRef names one endpoint of a link: a device and one of its ports.
type PortRef struct {
	Dev  DeviceID
	Port PortID
}

// String implements fmt.Stringer.
func (p PortRef) String() string { return fmt.Sprintf("%s:%d", p.Dev, p.Port) }

// Label is an MPLS-style forwarding label. Labels are allocated per
// controller from disjoint ranges so a rule's owner is recoverable in
// debugging output (§4.3).
type Label uint32

// NoLabel is the zero Label, never allocated to a path.
const NoLabel Label = 0

// MiddleboxType enumerates the middlebox functions mentioned in §2.1.
type MiddleboxType int

// The middlebox functions named in §2.1's service-policy examples:
// firewalls, intrusion detection, DPI, video transcoders, noise
// cancellation, charging, and rate limiting.
const (
	MBFirewall MiddleboxType = iota
	MBIDS
	MBDPI
	MBTranscoder
	MBNoiseCancel
	MBCharging
	MBRateLimiter
	numMiddleboxTypes
)

// String implements fmt.Stringer.
func (m MiddleboxType) String() string {
	switch m {
	case MBFirewall:
		return "firewall"
	case MBIDS:
		return "ids"
	case MBDPI:
		return "dpi"
	case MBTranscoder:
		return "transcoder"
	case MBNoiseCancel:
		return "noise-cancel"
	case MBCharging:
		return "charging"
	case MBRateLimiter:
		return "rate-limiter"
	default:
		return fmt.Sprintf("mbtype(%d)", int(m))
	}
}

// MiddleboxTypes lists all modeled middlebox types.
func MiddleboxTypes() []MiddleboxType {
	ts := make([]MiddleboxType, numMiddleboxTypes)
	for i := range ts {
		ts[i] = MiddleboxType(i)
	}
	return ts
}
